package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	obstrace "repro/internal/obs/trace"
)

// chdir moves into a temp dir for the duration of a test (the CLI
// works with relative paths).
func chdir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return dir
}

func TestCLIGenerateSampleAttack(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "8000", "-seed", "1", "-out", "data", "-truth", "truth.json"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("truth.json"); err != nil {
		t.Fatal("truth.json not written")
	}
	if err := cmdSample([]string{"-in", "data", "-out", "sampled", "-window", "1m", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("sampled")
	if err != nil || len(entries) == 0 {
		t.Fatalf("no sampled output: %v", err)
	}
	if err := cmdAttack([]string{"-in", "sampled", "-truth", "truth.json", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIGeneratePresets(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-preset", "bogus", "-out", "d"}); err == nil {
		t.Fatal("bogus preset should error")
	}
	// The real presets are too large for a test; validated in geolife.
}

func TestCLIKMeansAndDJClusterAndRTree(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "6000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-in", "data", "-out", "sampled", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKMeans([]string{"-in", "sampled", "-k", "3", "-maxiter", "10", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKMeans([]string{"-in", "sampled", "-distance", "nonsense"}); err == nil {
		t.Fatal("bad distance should error")
	}
	if err := cmdDJCluster([]string{"-in", "sampled", "-chunk", "1", "-top", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRTree([]string{"-in", "sampled", "-curve", "hilbert", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLISanitize(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "1", "-traces", "3000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSanitize([]string{"-in", "data", "-out", "masked", "-mechanism", "gaussian", "-sigma", "50", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSanitize([]string{"-in", "data", "-out", "cloaked", "-mechanism", "cloak", "-cell", "300", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSanitize([]string{"-in", "data", "-out", "x", "-mechanism", "nope"}); err == nil {
		t.Fatal("unknown mechanism should error")
	}
}

func TestCLIVisualize(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "2000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVisualize([]string{"-in", "data", "-out", "map.svg", "-title", "test"}); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile("map.svg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "<svg") {
		t.Fatal("not an SVG")
	}
}

func TestCLIConvertRoundTrip(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "3000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdConvert([]string{"-in", "data", "-out", "plttree", "-from", "rec", "-to", "plt"}); err != nil {
		t.Fatal(err)
	}
	// GeoLife layout: <user>/Trajectory/*.plt
	matches, _ := filepath.Glob("plttree/*/Trajectory/*.plt")
	if len(matches) == 0 {
		t.Fatal("no .plt session files written")
	}
	if err := cmdConvert([]string{"-in", "plttree", "-out", "back", "-from", "plt", "-to", "rec"}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir("back")
	if len(entries) != 2 {
		t.Fatalf("back-converted users = %d, want 2", len(entries))
	}
	if err := cmdConvert([]string{"-in", "data", "-out", "x", "-from", "bogus"}); err == nil {
		t.Fatal("bad format should error")
	}
	if err := cmdConvert([]string{}); err == nil {
		t.Fatal("missing paths should error")
	}
}

func TestCLIErrorsOnMissingInput(t *testing.T) {
	chdir(t)
	for name, run := range map[string]func([]string) error{
		"sample":    cmdSample,
		"kmeans":    cmdKMeans,
		"djcluster": cmdDJCluster,
		"rtree":     cmdRTree,
		"attack":    cmdAttack,
		"sanitize":  cmdSanitize,
		"visualize": cmdVisualize,
	} {
		if err := run([]string{"-in", "does-not-exist"}); err == nil {
			t.Errorf("%s: want error for missing input", name)
		}
	}
}

func TestCLIStatsSocialMMC(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "10000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-in", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSocial([]string{"-in", "data", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMMC([]string{"-in", "data", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLISampleJSONReport(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "1", "-traces", "2000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-in", "data", "-out", "s", "-report", "job.json", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile("job.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"map_input_records"`) {
		t.Fatalf("report missing counters: %s", body)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	data, readErr := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatalf("command failed: %v", runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(data)
}

func TestCLIAnalyzeKMeansRun(t *testing.T) {
	chdir(t)
	// An empty trace store is a hint, not an error.
	if out := captureStdout(t, func() error { return cmdAnalyze(nil) }); !strings.Contains(out, "no traces") {
		t.Errorf("empty-store analyze output: %q", out)
	}
	if err := cmdGenerate([]string{"-users", "2", "-traces", "6000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-in", "data", "-out", "sampled", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	// The k-means run of the acceptance criterion: cluster commands
	// mirror causal traces next to job history by default.
	if err := cmdKMeans([]string{"-in", "sampled", "-k", "3", "-maxiter", "4", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(defaultHistoryDir, "_trace", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no mirrored trace files: %v %v", files, err)
	}

	// The bare command lists every stored trace.
	list := captureStdout(t, func() error { return cmdAnalyze(nil) })
	if !strings.Contains(list, "seq") || !strings.Contains(list, "kmeans") {
		t.Errorf("trace listing missing kmeans run:\n%s", list)
	}

	// Analyze the k-means trace (findable by root-name prefix via a
	// contained job, or here by its sequence number: sampling ran first).
	out := captureStdout(t, func() error { return cmdAnalyze([]string{"-json", "2"}) })
	var a struct {
		Root   string `json:"root"`
		WallUs int64  `json:"wall_us"`
		Jobs   []struct {
			Job    string `json:"job"`
			WallUs int64  `json:"wall_us"`
			Path   []struct {
				Kind string `json:"kind"`
			} `json:"path"`
			Phases []struct {
				Phase string  `json:"phase"`
				DurUs int64   `json:"dur_us"`
				Pct   float64 `json:"pct"`
			} `json:"phases"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(out), &a); err != nil {
		t.Fatalf("analyze -json output not JSON: %v\n%s", err, out)
	}
	if !strings.HasPrefix(a.Root, "kmeans:") {
		t.Fatalf("analyzed root %q, want the kmeans span", a.Root)
	}
	if len(a.Jobs) == 0 {
		t.Fatal("no jobs in the k-means analysis")
	}
	// Acceptance criterion: per-phase critical-path durations sum to
	// within 5% of each job's recorded wall-clock.
	for _, j := range a.Jobs {
		if j.WallUs <= 0 || len(j.Phases) == 0 || len(j.Path) == 0 {
			t.Fatalf("degenerate job analysis: %+v", j)
		}
		var sum int64
		for _, p := range j.Phases {
			sum += p.DurUs
		}
		diff := sum - j.WallUs
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(j.WallUs) {
			t.Errorf("job %s: phase durations sum to %dµs, wall %dµs (off by %.1f%%, want ≤5%%)",
				j.Job, sum, j.WallUs, 100*float64(diff)/float64(j.WallUs))
		}
	}

	// The default ASCII report names the critical path and attribution.
	report := captureStdout(t, func() error { return cmdAnalyze([]string{"2"}) })
	for _, want := range []string{"critical path", "%"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// -chrome exports a valid Perfetto-loadable trace_event file.
	_ = captureStdout(t, func() error { return cmdAnalyze([]string{"-chrome", "kmeans-trace.json", "2"}) })
	data, err := os.ReadFile("kmeans-trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obstrace.DecodeChrome(data); err != nil {
		t.Fatalf("exported Chrome trace invalid: %v", err)
	}

	if err := cmdAnalyze([]string{"no-such-trace"}); err == nil {
		t.Fatal("analyze of unknown key should error")
	}
}

func TestCLIHistoryRoundTrip(t *testing.T) {
	chdir(t)
	// An empty store is not an error — just a hint.
	if err := cmdHistory(nil); err != nil {
		t.Fatalf("history over empty dir: %v", err)
	}
	if err := cmdGenerate([]string{"-users", "2", "-traces", "6000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	// Cluster commands mirror job history to -historydir by default.
	if err := cmdSample([]string{"-in", "data", "-out", "sampled", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(defaultHistoryDir, "_history", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no mirrored history records: %v %v", files, err)
	}
	if !strings.Contains(files[0], "sampling") {
		t.Errorf("history file %q does not name the job", files[0])
	}
	if err := cmdHistory(nil); err != nil {
		t.Fatalf("history list: %v", err)
	}
	for _, args := range [][]string{
		{"sampling"},          // by job name
		{"1"},                 // by sequence number
		{"-json", "sampling"}, // JSON dump
	} {
		if err := cmdHistory(args); err != nil {
			t.Fatalf("history %v: %v", args, err)
		}
	}
	if err := cmdHistory([]string{"no-such-job"}); err == nil {
		t.Fatal("history of unknown job should error")
	}
}
