package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves into a temp dir for the duration of a test (the CLI
// works with relative paths).
func chdir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return dir
}

func TestCLIGenerateSampleAttack(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "8000", "-seed", "1", "-out", "data", "-truth", "truth.json"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("truth.json"); err != nil {
		t.Fatal("truth.json not written")
	}
	if err := cmdSample([]string{"-in", "data", "-out", "sampled", "-window", "1m", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("sampled")
	if err != nil || len(entries) == 0 {
		t.Fatalf("no sampled output: %v", err)
	}
	if err := cmdAttack([]string{"-in", "sampled", "-truth", "truth.json", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIGeneratePresets(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-preset", "bogus", "-out", "d"}); err == nil {
		t.Fatal("bogus preset should error")
	}
	// The real presets are too large for a test; validated in geolife.
}

func TestCLIKMeansAndDJClusterAndRTree(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "6000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-in", "data", "-out", "sampled", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKMeans([]string{"-in", "sampled", "-k", "3", "-maxiter", "10", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKMeans([]string{"-in", "sampled", "-distance", "nonsense"}); err == nil {
		t.Fatal("bad distance should error")
	}
	if err := cmdDJCluster([]string{"-in", "sampled", "-chunk", "1", "-top", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRTree([]string{"-in", "sampled", "-curve", "hilbert", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLISanitize(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "1", "-traces", "3000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSanitize([]string{"-in", "data", "-out", "masked", "-mechanism", "gaussian", "-sigma", "50", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSanitize([]string{"-in", "data", "-out", "cloaked", "-mechanism", "cloak", "-cell", "300", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSanitize([]string{"-in", "data", "-out", "x", "-mechanism", "nope"}); err == nil {
		t.Fatal("unknown mechanism should error")
	}
}

func TestCLIVisualize(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "2000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVisualize([]string{"-in", "data", "-out", "map.svg", "-title", "test"}); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile("map.svg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "<svg") {
		t.Fatal("not an SVG")
	}
}

func TestCLIConvertRoundTrip(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "3000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdConvert([]string{"-in", "data", "-out", "plttree", "-from", "rec", "-to", "plt"}); err != nil {
		t.Fatal(err)
	}
	// GeoLife layout: <user>/Trajectory/*.plt
	matches, _ := filepath.Glob("plttree/*/Trajectory/*.plt")
	if len(matches) == 0 {
		t.Fatal("no .plt session files written")
	}
	if err := cmdConvert([]string{"-in", "plttree", "-out", "back", "-from", "plt", "-to", "rec"}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir("back")
	if len(entries) != 2 {
		t.Fatalf("back-converted users = %d, want 2", len(entries))
	}
	if err := cmdConvert([]string{"-in", "data", "-out", "x", "-from", "bogus"}); err == nil {
		t.Fatal("bad format should error")
	}
	if err := cmdConvert([]string{}); err == nil {
		t.Fatal("missing paths should error")
	}
}

func TestCLIErrorsOnMissingInput(t *testing.T) {
	chdir(t)
	for name, run := range map[string]func([]string) error{
		"sample":    cmdSample,
		"kmeans":    cmdKMeans,
		"djcluster": cmdDJCluster,
		"rtree":     cmdRTree,
		"attack":    cmdAttack,
		"sanitize":  cmdSanitize,
		"visualize": cmdVisualize,
	} {
		if err := run([]string{"-in", "does-not-exist"}); err == nil {
			t.Errorf("%s: want error for missing input", name)
		}
	}
}

func TestCLIStatsSocialMMC(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "2", "-traces", "10000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-in", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSocial([]string{"-in", "data", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMMC([]string{"-in", "data", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLISampleJSONReport(t *testing.T) {
	chdir(t)
	if err := cmdGenerate([]string{"-users", "1", "-traces", "2000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-in", "data", "-out", "s", "-report", "job.json", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile("job.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"map_input_records"`) {
		t.Fatalf("report missing counters: %s", body)
	}
}

func TestCLIHistoryRoundTrip(t *testing.T) {
	chdir(t)
	// An empty store is not an error — just a hint.
	if err := cmdHistory(nil); err != nil {
		t.Fatalf("history over empty dir: %v", err)
	}
	if err := cmdGenerate([]string{"-users", "2", "-traces", "6000", "-out", "data"}); err != nil {
		t.Fatal(err)
	}
	// Cluster commands mirror job history to -historydir by default.
	if err := cmdSample([]string{"-in", "data", "-out", "sampled", "-chunk", "1"}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(defaultHistoryDir, "_history", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no mirrored history records: %v %v", files, err)
	}
	if !strings.Contains(files[0], "sampling") {
		t.Errorf("history file %q does not name the job", files[0])
	}
	if err := cmdHistory(nil); err != nil {
		t.Fatalf("history list: %v", err)
	}
	for _, args := range [][]string{
		{"sampling"},          // by job name
		{"1"},                 // by sequence number
		{"-json", "sampling"}, // JSON dump
	} {
		if err := cmdHistory(args); err != nil {
			t.Fatalf("history %v: %v", args, err)
		}
	}
	if err := cmdHistory([]string{"no-such-job"}); err == nil {
		t.Fatal("history of unknown job should error")
	}
}
