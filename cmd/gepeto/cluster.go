// The multi-process cluster commands: `gepeto jobtracker` drives a
// k-means job through the RPC backend over real TCP, and `gepeto
// worker` is one tasktracker process. Together they form a local
// Hadoop-style deployment: one jobtracker process owning the namenode
// (DFS) and scheduler, N worker processes executing tasks, all task
// input/intermediate/output bytes crossing process boundaries.
//
//	gepeto jobtracker -in data -workers 3 -addr-file jt.addr &
//	gepeto worker -node node-00 -addr-file jt.addr &
//	gepeto worker -node node-01 -addr-file jt.addr &
//	gepeto worker -node node-02 -addr-file jt.addr &
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/rpc"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/mapreduce"
)

// resolveJTAddr returns the jobtracker address from -jobtracker or,
// when set, by polling -addr-file until the jobtracker writes it.
func resolveJTAddr(addr, addrFile string, timeout time.Duration) (string, error) {
	if addr != "" {
		return addr, nil
	}
	if addrFile == "" {
		return "", fmt.Errorf("one of -jobtracker or -addr-file is required")
	}
	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil {
			if s := strings.TrimSpace(string(data)); s != "" {
				return s, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no jobtracker address in %s after %v", addrFile, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	node := fs.String("node", "", "cluster node ID this worker serves (e.g. node-00); required")
	slots := fs.Int("slots", 4, "concurrent task slots")
	jtAddr := fs.String("jobtracker", "", "jobtracker address (host:port)")
	addrFile := fs.String("addr-file", "", "file to read the jobtracker address from (written by `gepeto jobtracker -addr-file`)")
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on for task assignments")
	heartbeat := fs.Duration("heartbeat", 250*time.Millisecond, "heartbeat period")
	overhead := fs.Duration("task-overhead", 0, "artificial per-task startup sleep (fault-drill pacing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" {
		return fmt.Errorf("-node is required")
	}
	jt, err := resolveJTAddr(*jtAddr, *addrFile, 10*time.Second)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	w := rpc.NewWorker(rpc.WorkerConfig{
		Node: *node, Slots: *slots,
		Transport:      &rpc.TCPNetwork{},
		JobtrackerAddr: jt,
		Addr:           ln.Addr().String(),
		HeartbeatEvery: *heartbeat,
		TaskOverhead:   *overhead,
	})
	go func() {
		// Serve returns when the listener closes at process exit.
		if serr := rpc.Serve(ln, w.Server()); serr != nil {
			return
		}
	}()
	fmt.Fprintf(os.Stderr, "worker %s: %d slots, listening on %s, jobtracker %s\n",
		*node, *slots, ln.Addr(), jt)
	if err := w.Run(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "worker %s: stopped (ran %d tasks)\n", *node, w.TasksRun())
	return nil
}

func cmdJobtracker(args []string) error {
	fs := flag.NewFlagSet("jobtracker", flag.ExitOnError)
	in := fs.String("in", "data", "input path: directory containing the input files")
	k := fs.Int("k", 11, "number of clusters outputted by the algorithm")
	distName := fs.String("distance", "squaredeuclidean",
		"name of the metric used for measuring distance between points (squaredeuclidean|euclidean|haversine|manhattan)")
	delta := fs.Float64("convergencedelta", 1e-4, "value used for determining the convergence after each iteration (degrees)")
	maxIter := fs.Int("maxiter", 150, "maximum number of iterations")
	combiner := fs.Bool("combiner", false, "enable the map-side partial-sum combiner")
	seed := fs.Int64("seed", 1, "initial-centroid seed")
	nodes := fs.Int("nodes", 3, "cluster nodes (each needs a registered worker)")
	racks := fs.Int("racks", 2, "racks the nodes spread over")
	slots := fs.Int("slots", 4, "task slots per node (must match the workers')")
	chunkMB := fs.Int64("chunk", 64, "DFS chunk size in MB")
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (workers poll it)")
	workers := fs.Int("workers", 3, "worker processes to wait for before submitting the job")
	wait := fs.Duration("wait", 30*time.Second, "how long to wait for workers")
	grace := fs.Duration("grace", 2*time.Second, "heartbeat grace before a silent worker is declared lost")
	centroidsOut := fs.String("centroids-out", "", "also write the final centroid lines to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	metric, err := geo.ParseMetric(*distName)
	if err != nil {
		return err
	}
	c, err := cluster.NewUniform(*nodes, *racks, *slots)
	if err != nil {
		return err
	}
	filesystem, err := dfs.New(c, dfs.Config{ChunkSize: *chunkMB << 20})
	if err != nil {
		return err
	}
	tcp := &rpc.TCPNetwork{}
	jt := rpc.NewJobtracker(rpc.JobtrackerConfig{
		Cluster: c, FS: filesystem, Transport: tcp, HeartbeatGrace: *grace,
	})
	defer jt.Stop()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		if serr := rpc.Serve(ln, jt.Server()); serr != nil {
			return // listener closed at teardown
		}
	}()
	fmt.Fprintf(os.Stderr, "jobtracker listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	if err := jt.WaitForWorkers(*workers, *wait); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d workers registered: %s\n", *workers, strings.Join(jt.Workers(), " "))

	ds, err := geolife.ReadRecordsLocal(*in)
	if err != nil {
		return err
	}
	if err := geolife.WriteRecords(filesystem, "input", ds); err != nil {
		return err
	}
	engine := mapreduce.NewEngine(c, filesystem, mapreduce.Options{Executor: jt.Executor()})
	fmt.Printf("k-means on %d traces (%d worker processes)\n", ds.NumTraces(), *workers)
	res, err := gepeto.KMeansMR(engine, []string{"input"}, "input-kmeans-work", gepeto.KMeansOptions{
		K: *k, Distance: metric, ConvergenceDelta: *delta,
		MaxIter: *maxIter, UseCombiner: *combiner, Seed: *seed,
	})
	if err != nil {
		return err
	}
	var total time.Duration
	for _, ir := range res.IterationResults {
		total += ir.Wall
	}
	fmt.Printf("iterations=%d converged=%v mean-iter=%v total=%v\n",
		res.Iterations, res.Converged,
		(total / time.Duration(res.Iterations)).Round(time.Millisecond),
		total.Round(time.Millisecond))
	fmt.Print(centroidLines(res))
	if *centroidsOut != "" {
		if err := os.WriteFile(*centroidsOut, []byte(centroidLines(res)), 0o644); err != nil {
			return err
		}
	}
	jt.ShutdownWorkers()
	return nil
}

// centroidLines renders the final clustering in the exact format
// cmdKMeans prints, so in-process and multi-process runs diff cleanly.
func centroidLines(res *gepeto.KMeansResult) string {
	var sb strings.Builder
	for i, c := range res.Centroids {
		fmt.Fprintf(&sb, "  centroid %2d at %s (%d traces)\n", i, c, res.Sizes[i])
	}
	return sb.String()
}
