// The multi-process cluster commands: `gepeto jobtracker` drives a
// k-means job through the RPC backend over real TCP, and `gepeto
// worker` is one tasktracker process. Together they form a local
// Hadoop-style deployment: one jobtracker process owning the namenode
// (DFS) and scheduler, N worker processes executing tasks, all task
// input/intermediate/output bytes crossing process boundaries.
//
//	gepeto jobtracker -in data -workers 3 -addr-file jt.addr &
//	gepeto worker -node node-00 -addr-file jt.addr &
//	gepeto worker -node node-01 -addr-file jt.addr &
//	gepeto worker -node node-02 -addr-file jt.addr &
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/rpc"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
)

// resolveJTAddr returns the jobtracker address from -jobtracker or,
// when set, by polling -addr-file until the jobtracker writes it.
func resolveJTAddr(addr, addrFile string, timeout time.Duration) (string, error) {
	if addr != "" {
		return addr, nil
	}
	if addrFile == "" {
		return "", fmt.Errorf("one of -jobtracker or -addr-file is required")
	}
	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil {
			if s := strings.TrimSpace(string(data)); s != "" {
				return s, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no jobtracker address in %s after %v", addrFile, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	node := fs.String("node", "", "cluster node ID this worker serves (e.g. node-00); required")
	slots := fs.Int("slots", 4, "concurrent task slots")
	jtAddr := fs.String("jobtracker", "", "jobtracker address (host:port)")
	addrFile := fs.String("addr-file", "", "file to read the jobtracker address from (written by `gepeto jobtracker -addr-file`)")
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on for task assignments")
	heartbeat := fs.Duration("heartbeat", 250*time.Millisecond, "heartbeat period")
	overhead := fs.Duration("task-overhead", 0, "artificial per-task startup sleep (fault-drill pacing)")
	logLevel := fs.String("log-level", "warn", "structured log level (debug|info|warn|error|off)")
	clockSkew := fs.Duration("clock-skew", 0, "artificial offset added to this worker's clock (drill for the jobtracker's clock alignment)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" {
		return fmt.Errorf("-node is required")
	}
	logger, err := obs.NewLevelLogger(*logLevel)
	if err != nil {
		return err
	}
	jt, err := resolveJTAddr(*jtAddr, *addrFile, 10*time.Second)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	w := rpc.NewWorker(rpc.WorkerConfig{
		Node: *node, Slots: *slots,
		Transport:      &rpc.TCPNetwork{},
		JobtrackerAddr: jt,
		Addr:           ln.Addr().String(),
		HeartbeatEvery: *heartbeat,
		TaskOverhead:   *overhead,
		Logger:         logger.With("worker", *node),
		ClockSkew:      *clockSkew,
	})
	go func() {
		// Serve returns when the listener closes at process exit.
		if serr := rpc.Serve(ln, w.Server()); serr != nil {
			return
		}
	}()
	fmt.Fprintf(os.Stderr, "worker %s: %d slots, listening on %s, jobtracker %s\n",
		*node, *slots, ln.Addr(), jt)
	if err := w.Run(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "worker %s: stopped (ran %d tasks)\n", *node, w.TasksRun())
	return nil
}

func cmdJobtracker(args []string) error {
	fs := flag.NewFlagSet("jobtracker", flag.ExitOnError)
	in := fs.String("in", "data", "input path: directory containing the input files")
	k := fs.Int("k", 11, "number of clusters outputted by the algorithm")
	distName := fs.String("distance", "squaredeuclidean",
		"name of the metric used for measuring distance between points (squaredeuclidean|euclidean|haversine|manhattan)")
	delta := fs.Float64("convergencedelta", 1e-4, "value used for determining the convergence after each iteration (degrees)")
	maxIter := fs.Int("maxiter", 150, "maximum number of iterations")
	combiner := fs.Bool("combiner", false, "enable the map-side partial-sum combiner")
	seed := fs.Int64("seed", 1, "initial-centroid seed")
	nodes := fs.Int("nodes", 3, "cluster nodes (each needs a registered worker)")
	racks := fs.Int("racks", 2, "racks the nodes spread over")
	slots := fs.Int("slots", 4, "task slots per node (must match the workers')")
	chunkMB := fs.Int64("chunk", 64, "DFS chunk size in MB")
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (workers poll it)")
	workers := fs.Int("workers", 3, "worker processes to wait for before submitting the job")
	wait := fs.Duration("wait", 30*time.Second, "how long to wait for workers")
	grace := fs.Duration("grace", 2*time.Second, "heartbeat grace before a silent worker is declared lost")
	centroidsOut := fs.String("centroids-out", "", "also write the final centroid lines to this file")
	status := fs.String("status", "",
		`serve live cluster status (/cluster, federated /metrics, /trace/, /analyze/) on this address (":0" picks a port)`)
	statusFile := fs.String("status-file", "", "write the status server's bound address to this file")
	historyDir := fs.String("historydir", defaultHistoryDir,
		`local directory mirroring job history and traces ("" disables the mirror)`)
	linger := fs.Duration("linger", 0,
		"keep the status server (and jobtracker) up this long after the job finishes; SIGINT/SIGTERM ends early")
	logLevel := fs.String("log-level", "warn", "structured log level (debug|info|warn|error|off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	metric, err := geo.ParseMetric(*distName)
	if err != nil {
		return err
	}
	logger, err := obs.NewLevelLogger(*logLevel)
	if err != nil {
		return err
	}
	c, err := cluster.NewUniform(*nodes, *racks, *slots)
	if err != nil {
		return err
	}
	filesystem, err := dfs.New(c, dfs.Config{ChunkSize: *chunkMB << 20})
	if err != nil {
		return err
	}

	// Observability plane: one registry shared by the jobtracker's own
	// telemetry and the event-derived cluster counters (MetricsSink),
	// plus the causal-trace collector persisted beside job history.
	tracker := obs.NewTracker()
	reg := obs.NewRegistry()
	var store *obstrace.Store
	var hist *obs.History
	if *historyDir != "" {
		store = obstrace.NewStore(obs.NewDirFS(*historyDir))
		hist = obs.NewHistory(obs.NewDirFS(*historyDir))
	}
	collector := obstrace.NewCollector(store, 0)
	bus := obs.NewBus(tracker, obs.NewMetricsSink(reg), collector)

	tcp := &rpc.TCPNetwork{}
	jt := rpc.NewJobtracker(rpc.JobtrackerConfig{
		Cluster: c, FS: filesystem, Transport: tcp, HeartbeatGrace: *grace,
		Obs: bus, Registry: reg, Logger: logger,
	})
	defer jt.Stop()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		if serr := rpc.Serve(ln, jt.Server()); serr != nil {
			return // listener closed at teardown
		}
	}()
	fmt.Fprintf(os.Stderr, "jobtracker listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}

	var srv *obs.StatusServer
	if *status != "" {
		// The registry is deliberately NOT handed to the server: the
		// jobtracker's merged snapshot (own registry + synthesized
		// cluster gauges + federated per-worker series) is the single
		// source, so no family is rendered twice.
		srv, err = obs.NewStatusServer(*status, tracker, nil, hist)
		if err != nil {
			return err
		}
		srv.Extra = func() string {
			var sb strings.Builder
			obs.WriteMetricPoints(&sb, jt.MetricsSnapshot())
			return sb.String()
		}
		srv.ExtraJSON = jt.MetricsSnapshot
		srv.Handle("/cluster", jt.ClusterHandler())
		srv.Handle("/cluster.json", jt.ClusterHandler())
		src := obstrace.Multi(collector, store)
		srv.Handle("/trace/", obstrace.TraceHandler("/trace/", src))
		srv.Handle("/analyze/", obstrace.AnalyzeHandler("/analyze/", src, obstrace.Options{}))
		fmt.Fprintf(os.Stderr, "status server listening on %s\n", srv.URL())
		if *statusFile != "" {
			if err := os.WriteFile(*statusFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
				return err
			}
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "status server shutdown: %v\n", err)
			}
		}()
	}

	if err := jt.WaitForWorkers(*workers, *wait); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d workers registered: %s\n", *workers, strings.Join(jt.Workers(), " "))

	ds, err := geolife.ReadRecordsLocal(*in)
	if err != nil {
		return err
	}
	if err := geolife.WriteRecords(filesystem, "input", ds); err != nil {
		return err
	}
	engine := mapreduce.NewEngine(c, filesystem, mapreduce.Options{
		Executor: jt.Executor(), Obs: bus, History: hist,
	})
	fmt.Printf("k-means on %d traces (%d worker processes)\n", ds.NumTraces(), *workers)
	res, err := gepeto.KMeansMR(engine, []string{"input"}, "input-kmeans-work", gepeto.KMeansOptions{
		K: *k, Distance: metric, ConvergenceDelta: *delta,
		MaxIter: *maxIter, UseCombiner: *combiner, Seed: *seed,
	})
	if err != nil {
		return err
	}
	var total time.Duration
	for _, ir := range res.IterationResults {
		total += ir.Wall
	}
	fmt.Printf("iterations=%d converged=%v mean-iter=%v total=%v\n",
		res.Iterations, res.Converged,
		(total / time.Duration(res.Iterations)).Round(time.Millisecond),
		total.Round(time.Millisecond))
	fmt.Print(centroidLines(res))
	if *centroidsOut != "" {
		if err := os.WriteFile(*centroidsOut, []byte(centroidLines(res)), 0o644); err != nil {
			return err
		}
	}
	if *linger > 0 && srv != nil {
		// Workers keep heartbeating (and federating metrics) while the
		// status server lingers, so /cluster and /metrics can be
		// scraped after the job — a smoke test's observation window.
		fmt.Fprintf(os.Stderr, "job done; status server lingering %v on %s (SIGINT/SIGTERM to exit)\n",
			*linger, srv.URL())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "interrupted; shutting down")
		case <-time.After(*linger):
		}
		signal.Stop(sig)
	}
	jt.ShutdownWorkers()
	return nil
}

// cmdCluster renders a live jobtracker's /cluster.json as the worker
// table — heartbeat ages, busy slots, in-flight attempts, per-worker
// task and RPC tallies, clock offsets, and lost workers.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	status := fs.String("status", "", "jobtracker status server address (host:port)")
	statusFile := fs.String("status-file", "", "file to read the status address from (written by `gepeto jobtracker -status-file`)")
	asJSON := fs.Bool("json", false, "print the raw cluster state JSON instead of the table")
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr, err := resolveJTAddr(*status, *statusFile, *timeout)
	if err != nil {
		return fmt.Errorf("resolving status address: %w (pass -status or -status-file)", err)
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get("http://" + addr + "/cluster.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /cluster.json: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if *asJSON {
		fmt.Print(string(body))
		return nil
	}
	var st rpc.ClusterState
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("decoding cluster state: %v", err)
	}
	fmt.Print(rpc.RenderClusterTable(st))
	return nil
}

// centroidLines renders the final clustering in the exact format
// cmdKMeans prints, so in-process and multi-process runs diff cleanly.
func centroidLines(res *gepeto.KMeansResult) string {
	var sb strings.Builder
	for i, c := range res.Centroids {
		fmt.Fprintf(&sb, "  centroid %2d at %s (%d traces)\n", i, c, res.Sizes[i])
	}
	return sb.String()
}
