// Command gepeto is the command-line front end of the MapReduced
// GEPETO toolkit. It operates on local directories of .rec trace files
// (one file per user, "user TAB lat,lon,alt,unix" lines), spins up an
// in-process simulated Hadoop cluster, and runs the paper's
// algorithms:
//
//	gepeto generate   synthesize a GeoLife-like dataset (+ ground truth)
//	gepeto sample     down-sampling (§V)
//	gepeto kmeans     MapReduced k-means clustering (§VI)
//	gepeto djcluster  MapReduced DJ-Cluster (§VII)
//	gepeto rtree      MapReduce R-tree construction (§VII-C)
//	gepeto attack     POI inference attack + optional evaluation
//	gepeto sanitize   geo-sanitization (gaussian | cloak)
//	gepeto visualize  render a dataset to SVG
//	gepeto convert    GeoLife PLT tree <-> .rec directory conversion
//
// Run "gepeto <command> -h" for each command's flags (the k-means
// flags mirror the paper's Table II runtime arguments).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/gepeto/synth"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/obs/perf"
	obstrace "repro/internal/obs/trace"
	"repro/internal/privacy"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "generate":
		err = cmdGenerate(args)
	case "synth":
		err = cmdSynth(args)
	case "sample":
		err = cmdSample(args)
	case "kmeans":
		err = cmdKMeans(args)
	case "djcluster":
		err = cmdDJCluster(args)
	case "rtree":
		err = cmdRTree(args)
	case "attack":
		err = cmdAttack(args)
	case "sanitize":
		err = cmdSanitize(args)
	case "visualize":
		err = cmdVisualize(args)
	case "convert":
		err = cmdConvert(args)
	case "stats":
		err = cmdStats(args)
	case "social":
		err = cmdSocial(args)
	case "mmc":
		err = cmdMMC(args)
	case "jobtracker":
		err = cmdJobtracker(args)
	case "worker":
		err = cmdWorker(args)
	case "cluster":
		err = cmdCluster(args)
	case "history":
		err = cmdHistory(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gepeto: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gepeto %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gepeto <command> [flags]

commands:
  generate   synthesize a GeoLife-like dataset (+ ground-truth JSON)
  synth      stream a million-user MMC-driven corpus into DFS, optionally
             running k-means over it under a bounded shuffle budget
  sample     down-sample a dataset (map-only MapReduce job, paper §V)
  kmeans     MapReduced k-means clustering (paper §VI)
  djcluster  MapReduced DJ-Cluster density clustering (paper §VII)
  rtree      MapReduce R-tree construction (paper §VII-C)
  attack     run the POI inference attack, optionally score vs truth
  sanitize   apply a geo-sanitization mechanism (gaussian | cloak)
  visualize  render a dataset (and optional attack output) to SVG
  convert    convert between GeoLife PLT directory layout and .rec dirs
  stats      summarise a dataset (users, sessions, density, extent)
  social     co-location social-link discovery (two chained MR jobs)
  mmc        build Mobility Markov Chains per user and evaluate prediction
  jobtracker run a k-means job on out-of-process workers over TCP
  worker     one tasktracker process serving a jobtracker
  cluster    live worker table from a jobtracker's status server
  history    list stored job runs and render per-node attempt timelines
  analyze    critical-path / straggler / shuffle-skew report from traces

cluster commands also accept -status ADDR (live jobtracker status +
/metrics + /trace/ + /analyze/ + pprof over HTTP) and -historydir DIR
(job-history and trace mirror, read back by "gepeto history" and
"gepeto analyze").

run "gepeto <command> -h" for flags`)
}

// defaultHistoryDir is where cluster commands mirror job history and
// where `gepeto history` looks by default.
const defaultHistoryDir = ".gepeto/history"

// clusterFlags adds the shared simulated-deployment flags plus the
// observability flags (-status, -historydir).
func clusterFlags(fs *flag.FlagSet) (nodes, racks, slots *int, chunkMB *int64) {
	nodes = fs.Int("nodes", 7, "worker nodes in the simulated cluster")
	racks = fs.Int("racks", 2, "racks the nodes spread over")
	slots = fs.Int("slots", 4, "task slots per node")
	chunkMB = fs.Int64("chunk", 64, "DFS chunk size in MB (paper uses 64 and 32)")
	fs.StringVar(&obsCfg.status, "status", "",
		`serve live jobtracker status, /metrics and pprof on this address (e.g. ":8042"; ":0" picks a port)`)
	fs.StringVar(&obsCfg.historyDir, "historydir", defaultHistoryDir,
		`local directory mirroring job history for "gepeto history" ("" disables the mirror)`)
	return
}

// obsCfg carries the parsed observability flags into deployAndLoad
// (package-level because clusterFlags' return signature predates it).
var obsCfg struct {
	status     string
	historyDir string
}

// deployAndLoad builds a toolkit and uploads the local dataset dir.
// When -status or -historydir is set it attaches the observability
// bus: a causal-trace collector (persisted beside the job history so
// "gepeto analyze" works post-mortem) and, under -status, the live
// status server with /trace/ + /analyze/ endpoints, a runtime sampler,
// and graceful shutdown on SIGINT. The returned closer tears all of it
// down (always safe to call).
func deployAndLoad(nodes, racks, slots int, chunkMB int64, inDir string) (*core.Toolkit, *trace.Dataset, func(), error) {
	tk, closer, err := deploy(nodes, racks, slots, chunkMB)
	if err != nil {
		return nil, nil, nil, err
	}
	ds, err := geolife.ReadRecordsLocal(inDir)
	if err != nil {
		closer()
		return nil, nil, nil, err
	}
	if err := tk.Upload(ds, "input"); err != nil {
		closer()
		return nil, nil, nil, err
	}
	return tk, ds, closer, nil
}

// deploy builds the simulated cluster and observability wiring without
// loading any dataset — commands that generate their input directly in
// DFS (gepeto synth) use it to skip the in-memory local load.
func deploy(nodes, racks, slots int, chunkMB int64) (*core.Toolkit, func(), error) {
	cfg := core.ClusterConfig{
		Nodes: nodes, Racks: racks, SlotsPerNode: slots, ChunkSize: chunkMB << 20,
		HistoryDir: obsCfg.historyDir,
	}
	var tracker *obs.Tracker
	var reg *obs.Registry
	var collector *obstrace.Collector
	var store *obstrace.Store
	if obsCfg.status != "" || obsCfg.historyDir != "" {
		tracker = obs.NewTracker()
		reg = obs.NewRegistry()
		if obsCfg.historyDir != "" {
			store = obstrace.NewStore(obs.NewDirFS(obsCfg.historyDir))
		}
		collector = obstrace.NewCollector(store, 0)
		cfg.Obs = obs.NewBus(tracker, obs.NewMetricsSink(reg), collector)
	}
	tk, err := core.NewToolkit(cfg)
	if err != nil {
		return nil, nil, err
	}
	closer := func() {}
	if obsCfg.status != "" {
		srv, err := obs.NewStatusServer(obsCfg.status, tracker, reg, tk.History())
		if err != nil {
			return nil, nil, err
		}
		srv.Extra = dfsGauges(tk)
		src := obstrace.Multi(collector, store)
		srv.Handle("/trace/", obstrace.TraceHandler("/trace/", src))
		srv.Handle("/analyze/", obstrace.AnalyzeHandler("/analyze/", src, obstrace.Options{}))
		// Latest BENCH_*.json trajectory record, so a deployed cluster
		// exposes the perf point its build was measured at.
		srv.Handle("/perf", perf.Handler("."))
		stopSampler := obs.StartRuntimeSampler(reg, time.Second)
		fmt.Fprintf(os.Stderr, "status server listening on %s\n", srv.URL())
		// Drain the server gracefully both on normal teardown and on
		// SIGINT, so the listener never outlives the process's work.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		shutdown := func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "status server shutdown: %v\n", err)
			}
			stopSampler()
		}
		go func() {
			if _, ok := <-sig; ok {
				fmt.Fprintln(os.Stderr, "interrupted; shutting down status server")
				shutdown()
				os.Exit(130)
			}
		}()
		closer = func() {
			signal.Stop(sig)
			close(sig)
			shutdown()
		}
	}
	return tk, closer, nil
}

// dfsGauges appends the file system's storage and I/O state to each
// /metrics scrape (gauges are read on demand, not event-driven).
func dfsGauges(tk *core.Toolkit) func() string {
	return func() string {
		s := tk.FS().Stats()
		io := tk.FS().IOStats()
		return fmt.Sprintf(`# HELP dfs_files Files stored in the simulated DFS.
# TYPE dfs_files gauge
dfs_files %d
# HELP dfs_blocks Block replicas stored across datanodes.
# TYPE dfs_blocks gauge
dfs_blocks %d
# HELP dfs_logical_bytes Logical data size excluding replication.
# TYPE dfs_logical_bytes gauge
dfs_logical_bytes %d
# HELP dfs_bytes_read_total Chunk bytes served to readers.
# TYPE dfs_bytes_read_total counter
dfs_bytes_read_total %d
# HELP dfs_bytes_written_total Logical bytes accepted by Create.
# TYPE dfs_bytes_written_total counter
dfs_bytes_written_total %d
# HELP dfs_chunks_read_total Chunk reads served.
# TYPE dfs_chunks_read_total counter
dfs_chunks_read_total %d
`, s.Files, s.Blocks, s.Bytes, io.BytesRead, io.BytesWritten, io.ChunksRead)
	}
}

// saveOutput downloads a DFS directory and writes it locally.
func saveOutput(tk *core.Toolkit, dfsDir, localDir string) error {
	out, err := tk.Download(dfsDir)
	if err != nil {
		return err
	}
	return geolife.WriteRecordsLocal(localDir, out)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	users := fs.Int("users", 10, "number of users")
	traces := fs.Int("traces", 100_000, "total number of traces")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "data", "output directory for .rec files")
	truthPath := fs.String("truth", "", "optional path for the ground-truth JSON")
	preset := fs.String("preset", "", `paper preset: "paper90" or "paper178" (overrides -users/-traces)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := geolife.Config{Users: *users, TotalTraces: *traces, Seed: *seed}
	switch *preset {
	case "paper90":
		cfg = geolife.Paper90(*seed)
	case "paper178":
		cfg = geolife.Paper178(*seed)
	case "":
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	start := time.Now()
	ds, truth := geolife.GenerateWithTruth(cfg)
	if err := geolife.WriteRecordsLocal(*out, ds); err != nil {
		return err
	}
	if *truthPath != "" {
		if err := geolife.SaveTruth(*truthPath, truth); err != nil {
			return err
		}
	}
	fmt.Printf("generated %d traces for %d users into %s in %v\n",
		ds.NumTraces(), len(ds.Trails), *out, time.Since(start).Round(time.Millisecond))
	return nil
}

// cmdSynth is the memory-wall workflow: fit MMC templates on a GeoLife
// sample, stream N synthetic users into DFS as RCIO blocks (no full
// corpus in memory), and optionally run a k-means iteration over them
// with a spill-forcing shuffle budget, printing the spill counters
// that prove the external shuffle engaged.
func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	users := fs.Int("users", 100_000, "synthetic users to generate")
	perUser := fs.Int("per-user", 8, "traces per user")
	seed := fs.Int64("seed", 1, "generator seed (equal seeds give equal bytes)")
	templates := fs.Int("templates", 12, "GeoLife sample users the MMC templates are fitted on")
	out := fs.String("out", "synth", "DFS directory for the generated RCIO block files")
	run := fs.String("run", "", `optional pipeline over the corpus: "kmeans" (one iteration)`)
	k := fs.Int("k", 11, "clusters for -run kmeans")
	iters := fs.Int("maxiter", 1, "iterations for -run kmeans")
	budgetMB := fs.Float64("shuffle-budget-mb", 0,
		"MaxShuffleBytes per map task in MiB (0 = unbounded in-memory shuffle)")
	compress := fs.Bool("compress-spill", true, "DEFLATE-compress spill run files")
	combiner := fs.Bool("combiner", true, "enable the k-means combiner (applied in-spill too)")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tk, closeObs, err := deploy(*nodes, *racks, *slots, *chunkMB)
	if err != nil {
		return err
	}
	defer closeObs()
	stats, err := synth.ToDFS(tk.FS(), *out, synth.Options{
		Users: *users, TracesPerUser: *perUser, Seed: *seed, TemplateUsers: *templates,
	})
	if err != nil {
		return err
	}
	fmt.Printf("synth: %d users, %d traces in %d RCIO files (%.1f MiB) — fit %v, generate %v\n",
		stats.Users, stats.Traces, stats.Files, float64(stats.Bytes)/(1<<20),
		stats.FitWall.Round(time.Millisecond), stats.GenWall.Round(time.Millisecond))
	if *run == "" {
		return nil
	}
	if *run != "kmeans" {
		return fmt.Errorf("unknown -run pipeline %q", *run)
	}
	budget := int64(*budgetMB * (1 << 20))
	res, err := tk.KMeans(*out, gepeto.KMeansOptions{
		K: *k, MaxIter: *iters, UseCombiner: *combiner, Seed: *seed,
		MaxShuffleBytes: budget, CompressSpill: *compress,
	})
	if err != nil {
		return err
	}
	var total time.Duration
	var spillFiles, spillBytes, spilled, shuffleBytes int64
	for _, ir := range res.IterationResults {
		total += ir.Wall
		spillFiles += ir.Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleSpillFiles)
		spillBytes += ir.Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleSpillBytes)
		spilled += ir.Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleSpilledRecords)
		shuffleBytes += ir.Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleBytes)
	}
	fmt.Printf("kmeans: %d iterations in %v (budget %g MiB/task)\n",
		res.Iterations, total.Round(time.Millisecond), *budgetMB)
	fmt.Printf("shuffle: %d records into runs, %d bytes; spill files %d, spill bytes on DFS %d\n",
		spilled, shuffleBytes, spillFiles, spillBytes)
	if budget > 0 && spillFiles == 0 {
		fmt.Println("note: budget never tripped — no map task exceeded it")
	}
	return nil
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	in := fs.String("in", "data", "input directory")
	out := fs.String("out", "sampled", "output directory")
	window := fs.Duration("window", time.Minute, "sampling window")
	techName := fs.String("technique", "upper", `representative choice: "upper" or "middle"`)
	reportPath := fs.String("report", "", "write the job report (counters, tasks, timings) as JSON to this file")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tech, err := gepeto.ParseSamplingTechnique(*techName)
	if err != nil {
		return err
	}
	tk, ds, closeObs, err := deployAndLoad(*nodes, *racks, *slots, *chunkMB, *in)
	if err != nil {
		return err
	}
	defer closeObs()
	res, err := tk.Sample("input", "output", *window, tech)
	if err != nil {
		return err
	}
	if err := saveOutput(tk, "output", *out); err != nil {
		return err
	}
	if *reportPath != "" {
		data, err := json.MarshalIndent(res.Report(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportPath, data, 0o644); err != nil {
			return err
		}
	}
	outRecords := res.Counters.Value(mapreduce.CounterGroupTask, mapreduce.CounterMapOutputRecords)
	fmt.Printf("sampling window=%v technique=%s: %d -> %d traces (%.1fx) | %d mappers, wall %v\n",
		*window, tech, ds.NumTraces(), outRecords,
		float64(ds.NumTraces())/float64(outRecords), res.MapTasks, res.Wall.Round(time.Millisecond))
	return nil
}

func cmdKMeans(args []string) error {
	fs := flag.NewFlagSet("kmeans", flag.ExitOnError)
	// Runtime arguments per the paper's Table II.
	in := fs.String("in", "data", "input path: directory containing the input files")
	k := fs.Int("k", 11, "number of clusters outputted by the algorithm")
	distName := fs.String("distance", "squaredeuclidean",
		"name of the metric used for measuring distance between points (squaredeuclidean|euclidean|haversine|manhattan)")
	delta := fs.Float64("convergencedelta", 1e-4, "value used for determining the convergence after each iteration (degrees)")
	maxIter := fs.Int("maxiter", 150, "maximum number of iterations")
	combiner := fs.Bool("combiner", false, "enable the map-side partial-sum combiner")
	plusplus := fs.Bool("plusplus", false, "use k-means++ seeding instead of uniform random")
	seed := fs.Int64("seed", 1, "initial-centroid seed")
	centroidsOut := fs.String("centroids-out", "", "also write the final centroid lines to this file")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	metric, err := geo.ParseMetric(*distName)
	if err != nil {
		return err
	}
	tk, ds, closeObs, err := deployAndLoad(*nodes, *racks, *slots, *chunkMB, *in)
	if err != nil {
		return err
	}
	defer closeObs()
	fmt.Printf("k-means on %d traces (%s)\n", ds.NumTraces(), tk.Describe())
	res, err := tk.KMeans("input", gepeto.KMeansOptions{
		K: *k, Distance: metric, ConvergenceDelta: *delta,
		MaxIter: *maxIter, UseCombiner: *combiner, Seed: *seed, PlusPlusInit: *plusplus,
	})
	if err != nil {
		return err
	}
	var total time.Duration
	for _, ir := range res.IterationResults {
		total += ir.Wall
	}
	fmt.Printf("iterations=%d converged=%v mean-iter=%v total=%v\n",
		res.Iterations, res.Converged,
		(total / time.Duration(res.Iterations)).Round(time.Millisecond),
		total.Round(time.Millisecond))
	fmt.Print(centroidLines(res))
	if *centroidsOut != "" {
		if err := os.WriteFile(*centroidsOut, []byte(centroidLines(res)), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func cmdDJCluster(args []string) error {
	fs := flag.NewFlagSet("djcluster", flag.ExitOnError)
	in := fs.String("in", "data", "input directory")
	radius := fs.Float64("r", 25, "neighborhood radius in meters")
	minPts := fs.Int("minpts", 4, "minimum points per neighborhood")
	maxSpeed := fs.Float64("maxspeed", 2, "preprocessing speed threshold (km/h)")
	dupRadius := fs.Float64("dupradius", 1, "duplicate-removal radius (meters)")
	global := fs.Bool("global", false, "cluster across users (default: per-user POIs)")
	curve := fs.String("curve", "zorder", "space-filling curve for the R-tree build (zorder|hilbert)")
	topN := fs.Int("top", 10, "clusters to print")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tk, ds, closeObs, err := deployAndLoad(*nodes, *racks, *slots, *chunkMB, *in)
	if err != nil {
		return err
	}
	defer closeObs()
	fmt.Printf("DJ-Cluster on %d traces (%s)\n", ds.NumTraces(), tk.Describe())
	res, err := tk.DJCluster("input", gepeto.DJClusterOptions{
		RadiusMeters: *radius, MinPts: *minPts, MaxSpeedKmh: *maxSpeed,
		DupRadiusMeters: *dupRadius, PerUser: !*global,
		RTree: gepeto.RTreeBuildOptions{Curve: *curve},
	})
	if err != nil {
		return err
	}
	fmt.Printf("preprocessing: %d -> %d (speed filter) -> %d (dedup)\n",
		res.InputTraces, res.AfterSpeedFilter, res.AfterDedup)
	fmt.Printf("clusters=%d noise=%d\n", len(res.Clusters), res.Noise)
	for i, c := range res.Clusters {
		if i >= *topN {
			fmt.Printf("  ... and %d more\n", len(res.Clusters)-*topN)
			break
		}
		fmt.Printf("  %s user=%s size=%d centroid=%s\n", c.ID, c.User, len(c.Members), c.Centroid)
	}
	return nil
}

func cmdRTree(args []string) error {
	fs := flag.NewFlagSet("rtree", flag.ExitOnError)
	in := fs.String("in", "data", "input directory")
	curve := fs.String("curve", "zorder", "space-filling curve (zorder|hilbert)")
	partitions := fs.Int("partitions", 0, "number of partitions (default: cluster slots)")
	sample := fs.Int("sample", 200, "objects sampled per chunk in phase 1")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tk, ds, closeObs, err := deployAndLoad(*nodes, *racks, *slots, *chunkMB, *in)
	if err != nil {
		return err
	}
	defer closeObs()
	start := time.Now()
	entries, height, results, err := tk.BuildRTree("input", gepeto.RTreeBuildOptions{
		Curve: *curve, Partitions: *partitions, SamplePerChunk: *sample,
	})
	if err != nil {
		return err
	}
	fmt.Printf("R-tree over %d traces via %s curve: %d entries, height %d, built in %v\n",
		ds.NumTraces(), *curve, entries, height, time.Since(start).Round(time.Millisecond))
	for _, r := range results {
		fmt.Printf("  %s: %d map / %d reduce tasks, wall %v\n", r.Job, r.MapTasks, r.ReduceTasks, r.Wall.Round(time.Millisecond))
	}
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	in := fs.String("in", "data", "input directory")
	truthPath := fs.String("truth", "", "ground-truth JSON to score the attack against")
	window := fs.Duration("window", time.Minute, "down-sampling window before clustering")
	radius := fs.Float64("r", 25, "DJ-Cluster neighborhood radius (meters)")
	minPts := fs.Int("minpts", 4, "DJ-Cluster MinPts")
	matchRadius := fs.Float64("match", 50, "POI match radius for scoring (meters)")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tk, ds, closeObs, err := deployAndLoad(*nodes, *racks, *slots, *chunkMB, *in)
	if err != nil {
		return err
	}
	defer closeObs()
	fmt.Printf("POI inference attack on %d traces / %d users\n", ds.NumTraces(), len(ds.Trails))
	opts := gepeto.DefaultDJClusterOptions()
	opts.RadiusMeters = *radius
	opts.MinPts = *minPts
	pois, _, err := tk.AttackPOI("input", *window, opts)
	if err != nil {
		return err
	}
	byUser := map[string][]privacy.POI{}
	for _, p := range pois {
		byUser[p.User] = append(byUser[p.User], p)
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		fmt.Printf("user %s:\n", u)
		for _, p := range byUser[u] {
			fmt.Printf("  %-8s at %s (%d visits, %d night, %d work-hours)\n",
				p.Label, p.Center, p.Visits, p.NightVisits, p.WorkHourVisits)
		}
	}
	if *truthPath != "" {
		truth, err := geolife.LoadTruth(*truthPath)
		if err != nil {
			return err
		}
		rep := core.EvaluatePOIAttack(pois, truth, *matchRadius)
		fmt.Printf("evaluation (match radius %.0fm): homes %d/%d, works %d/%d, precision %.2f, recall %.2f\n",
			rep.MatchRadius, rep.HomeRecovered, rep.Users, rep.WorkRecovered, rep.Users,
			rep.POIPrecision, rep.POIRecall)
	}
	return nil
}

func cmdSanitize(args []string) error {
	fs := flag.NewFlagSet("sanitize", flag.ExitOnError)
	in := fs.String("in", "data", "input directory")
	out := fs.String("out", "sanitized", "output directory")
	mech := fs.String("mechanism", "gaussian", "gaussian | cloak")
	sigma := fs.Float64("sigma", 100, "gaussian noise scale (meters)")
	cell := fs.Float64("cell", 200, "cloaking grid cell (meters)")
	seed := fs.Int64("seed", 1, "noise seed")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tk, ds, closeObs, err := deployAndLoad(*nodes, *racks, *slots, *chunkMB, *in)
	if err != nil {
		return err
	}
	defer closeObs()
	switch *mech {
	case "gaussian":
		if _, err := tk.SanitizeGaussian("input", "output", *sigma, *seed); err != nil {
			return err
		}
	case "cloak":
		if _, err := tk.SanitizeCloaking("input", "output", *cell); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mechanism %q", *mech)
	}
	if err := saveOutput(tk, "output", *out); err != nil {
		return err
	}
	sanitized, err := geolife.ReadRecordsLocal(*out)
	if err != nil {
		return err
	}
	rep := privacy.MeasureUtility(ds, sanitized)
	fmt.Printf("%s: %d traces sanitized; mean distortion %.1fm, max %.1fm, retention %.0f%%\n",
		*mech, sanitized.NumTraces(), rep.MeanDistortionMeters, rep.MaxDistortionMeters, rep.Retention*100)
	return nil
}

func cmdVisualize(args []string) error {
	fs := flag.NewFlagSet("visualize", flag.ExitOnError)
	in := fs.String("in", "data", "input directory")
	out := fs.String("out", "map.svg", "output SVG file")
	width := fs.Int("width", 1000, "canvas width")
	height := fs.Int("height", 800, "canvas height")
	title := fs.String("title", "", "optional title")
	heat := fs.Bool("heatmap", false, "render a density heatmap instead of polylines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := geolife.ReadRecordsLocal(*in)
	if err != nil {
		return err
	}
	var c *viz.Canvas
	if *heat {
		h := viz.NewHeatmap(viz.BoundsOf(ds), *width/12, *height/12)
		h.AddDataset(ds)
		c = h.RenderSVG(*width, *height)
	} else {
		c = viz.RenderDataset(ds, *width, *height)
	}
	if *title != "" {
		c.AddTitle(*title)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.WriteSVG(f); err != nil {
		return err
	}
	fmt.Printf("rendered %d trails (%d traces) to %s\n", len(ds.Trails), ds.NumTraces(), *out)
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input path (.rec directory or GeoLife PLT tree)")
	out := fs.String("out", "", "output path")
	from := fs.String("from", "rec", `input format: "rec" or "plt"`)
	to := fs.String("to", "plt", `output format: "rec" or "plt"`)
	gap := fs.Duration("sessiongap", 30*time.Minute, "gap starting a new .plt session file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	var ds *trace.Dataset
	var err error
	switch *from {
	case "rec":
		ds, err = geolife.ReadRecordsLocal(*in)
	case "plt":
		ds, err = geolife.ReadPLTDir(*in)
	default:
		return fmt.Errorf("unknown input format %q", *from)
	}
	if err != nil {
		return err
	}
	switch *to {
	case "rec":
		err = geolife.WriteRecordsLocal(*out, ds)
	case "plt":
		err = geolife.WritePLTDir(*out, ds, *gap)
	default:
		return fmt.Errorf("unknown output format %q", *to)
	}
	if err != nil {
		return err
	}
	fmt.Printf("converted %d traces (%d users) from %s to %s\n",
		ds.NumTraces(), len(ds.Trails), *from, *to)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "data", "input directory")
	gap := fs.Duration("sessiongap", 30*time.Minute, "gap separating recording sessions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := geolife.ReadRecordsLocal(*in)
	if err != nil {
		return err
	}
	bounds := viz.BoundsOf(ds)
	fmt.Printf("dataset: %d traces, %d users\n", ds.NumTraces(), len(ds.Trails))
	fmt.Printf("extent: %s to %s\n", bounds.Min, bounds.Max)
	totalSessions := 0
	var gapSumSec float64
	var gapCount int
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		sessions := geolife.SessionsOf(tr, *gap)
		totalSessions += len(sessions)
		for _, s := range sessions {
			for j := 1; j < len(s.Traces); j++ {
				gapSumSec += s.Traces[j].Time.Sub(s.Traces[j-1].Time).Seconds()
				gapCount++
			}
		}
		first, last := tr.Span()
		fmt.Printf("  user %s: %6d traces, %3d sessions, %s .. %s\n",
			tr.User, len(tr.Traces), len(sessions),
			first.Format("2006-01-02"), last.Format("2006-01-02"))
	}
	if gapCount > 0 {
		fmt.Printf("sessions: %d total; mean intra-session sampling interval %.1fs\n",
			totalSessions, gapSumSec/float64(gapCount))
	}
	return nil
}

func cmdSocial(args []string) error {
	fs := flag.NewFlagSet("social", flag.ExitOnError)
	in := fs.String("in", "data", "input directory")
	cell := fs.Float64("cell", 50, "co-location cell size (meters)")
	window := fs.Int64("window", 600, "co-location window (seconds)")
	minShared := fs.Int("minshared", 3, "minimum shared windows to report a link")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tk, ds, closeObs, err := deployAndLoad(*nodes, *racks, *slots, *chunkMB, *in)
	if err != nil {
		return err
	}
	defer closeObs()
	links, results, err := privacy.DiscoverSocialLinksMR(tk.Engine(), []string{"input"}, "social-work",
		privacy.SocialOptions{CellMeters: *cell, WindowSeconds: *window, MinSharedWindows: *minShared})
	if err != nil {
		return err
	}
	fmt.Printf("co-location attack over %d traces via %d MapReduce jobs: %d links\n",
		ds.NumTraces(), len(results), len(links))
	for _, l := range links {
		fmt.Printf("  %s <-> %s: %d shared windows\n", l.UserA, l.UserB, l.SharedWindows)
	}
	return nil
}

func cmdMMC(args []string) error {
	fs := flag.NewFlagSet("mmc", flag.ExitOnError)
	in := fs.String("in", "data", "input directory (preprocessed traces work best)")
	window := fs.Duration("window", time.Minute, "down-sampling window before clustering")
	radius := fs.Float64("attach", 50, "POI attach radius (meters)")
	nodes, racks, slots, chunkMB := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tk, _, closeObs, err := deployAndLoad(*nodes, *racks, *slots, *chunkMB, *in)
	if err != nil {
		return err
	}
	defer closeObs()
	// POIs per user from the clustering attack; then MMCs in one job.
	pois, _, err := tk.AttackPOI("input", *window, gepeto.DefaultDJClusterOptions())
	if err != nil {
		return err
	}
	userPOIs := map[string][]geo.Point{}
	for _, p := range pois {
		userPOIs[p.User] = append(userPOIs[p.User], p.Center)
	}
	pre, err := tk.Download("input-attack-sampled-dj-work/preprocessed")
	if err != nil {
		return err
	}
	if err := tk.Upload(pre, "mmc-input"); err != nil {
		return err
	}
	chains, _, err := privacy.BuildMMCsMR(tk.Engine(), []string{"mmc-input"}, "mmc-out", userPOIs, *radius)
	if err != nil {
		return err
	}
	users := make([]string, 0, len(chains))
	for u := range chains {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		m := chains[u]
		pi := m.StationaryDistribution()
		fmt.Printf("user %s: %d states\n", u, len(m.States))
		for i, s := range m.States {
			next, p, _ := m.PredictNext(i)
			fmt.Printf("  state %d at %s: %.0f%% of time; most likely next: state %d (p=%.2f)\n",
				i, s, pi[i]*100, next, p)
		}
	}
	return nil
}

func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	dir := fs.String("dir", defaultHistoryDir, "history directory (as mirrored by -historydir)")
	width := fs.Int("width", 72, "timeline width in columns")
	asJSON := fs.Bool("json", false, "dump matching records as JSON instead of rendering")
	if err := fs.Parse(args); err != nil {
		return err
	}
	hist := obs.NewHistory(obs.NewDirFS(*dir))
	if fs.NArg() == 0 {
		recs, err := hist.List()
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			fmt.Printf("no job history under %s (run a cluster command with -historydir)\n", *dir)
			return nil
		}
		fmt.Printf("%-4s %-28s %-22s %10s %5s %8s %9s\n",
			"seq", "job", "submitted", "wall", "maps", "reduces", "attempts")
		for _, r := range recs {
			fmt.Printf("%-4d %-28s %-22s %10s %5d %8d %9d\n",
				r.Seq, r.Job, r.Start().Format("2006-01-02T15:04:05"),
				time.Duration(r.WallMs)*time.Millisecond,
				r.MapTasks, r.ReduceTasks, len(r.Attempts))
		}
		return nil
	}
	for _, key := range fs.Args() {
		rec, ok := hist.Find(key)
		if !ok {
			return fmt.Errorf("no history record matches %q in %s", key, *dir)
		}
		if *asJSON {
			data, err := json.MarshalIndent(rec, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			continue
		}
		fmt.Print(obs.RenderTimeline(rec, *width))
	}
	return nil
}

// cmdAnalyze reads stored causal traces (mirrored by cluster commands
// under -historydir) and prints the bottleneck report: critical path
// with per-phase attribution, stragglers, and shuffle skew. With no
// arguments it lists the stored traces.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	dir := fs.String("dir", defaultHistoryDir, "trace directory (as mirrored by -historydir)")
	slow := fs.Float64("slow", 1.5, "straggler threshold: multiple of the phase median attempt duration")
	skew := fs.Float64("skew", 2.0, "skew threshold: multiple of the mean partition volume")
	chrome := fs.String("chrome", "", "write the trace as Chrome trace_event JSON to this file (open in Perfetto)")
	asJSON := fs.Bool("json", false, "print the analysis as JSON instead of the ASCII report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st := obstrace.NewStore(obs.NewDirFS(*dir))
	if fs.NArg() == 0 {
		trees, err := st.List()
		if err != nil {
			return err
		}
		if len(trees) == 0 {
			fmt.Printf("no traces under %s (run a cluster command with -historydir)\n", *dir)
			return nil
		}
		fmt.Printf("%-4s %-32s %-22s %10s %5s\n", "seq", "root", "started", "wall", "jobs")
		for _, t := range trees {
			fmt.Printf("%-4d %-32s %-22s %10s %5d\n",
				t.Seq, t.Root.Name, t.Start().Format("2006-01-02T15:04:05"),
				time.Duration(t.WallUs())*time.Microsecond, len(t.Root.Jobs()))
		}
		return nil
	}
	opts := obstrace.Options{StragglerFactor: *slow, SkewFactor: *skew}
	for _, key := range fs.Args() {
		t, ok := st.Find(key)
		if !ok {
			return fmt.Errorf("no trace matches %q in %s", key, *dir)
		}
		if *chrome != "" {
			data, err := obstrace.EncodeChrome(t)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*chrome, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (load it at https://ui.perfetto.dev)\n", *chrome)
		}
		a := obstrace.AnalyzeTree(t, opts)
		if *asJSON {
			data, err := json.MarshalIndent(a, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			continue
		}
		obstrace.WriteReport(os.Stdout, t, a)
	}
	return nil
}
