package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/perf"
)

// TestPerfSubcommandWritesAndCompares exercises the acceptance path:
// two back-to-back suite runs whose -compare passes within the default
// noise threshold. A reduced scale and workload subset keep it quick.
func TestPerfSubcommandWritesAndCompares(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-dir", dir, "-scale", "1024", "-workloads", "sampling,mmc-attack,shuffle-merge"}

	var out1, err1 strings.Builder
	if code := runPerf(args, &out1, &err1); code != 0 {
		t.Fatalf("first run exit %d\nstderr: %s", code, err1.String())
	}
	first := filepath.Join(dir, "BENCH_0001.json")
	if _, err := os.Stat(first); err != nil {
		t.Fatalf("first record not written: %v", err)
	}
	if !strings.Contains(out1.String(), "| sampling |") {
		t.Fatalf("summary table missing:\n%s", out1.String())
	}

	var out2, err2 strings.Builder
	code := runPerf(append(args, "-compare", first), &out2, &err2)
	if code != 0 {
		t.Fatalf("compare run exit %d\nstdout: %s\nstderr: %s", code, out2.String(), err2.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_0002.json")); err != nil {
		t.Fatalf("second record not auto-numbered: %v", err)
	}
	if !strings.Contains(out2.String(), "No regressions beyond the noise threshold.") {
		t.Fatalf("compare output missing all-clear:\n%s", out2.String())
	}

	rec, err := perf.ReadRecord(first)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "BENCH_0001" || len(rec.Workloads) != 3 {
		t.Fatalf("record contents wrong: %+v", rec)
	}
}

func TestPerfSubcommandCompareFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	// A fabricated baseline so fast the real run must regress past it.
	base := &perf.Record{
		Schema: perf.SchemaVersion, Scale: 1024, Seed: 1,
		Workloads: []perf.WorkloadResult{
			{Name: "shuffle-merge", WallUs: 1, Records: 1, RecordsPerSec: 1e12},
		},
	}
	basePath := filepath.Join(dir, "BENCH_0001.json")
	if err := perf.WriteRecord(basePath, base); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	code := runPerf([]string{"-dir", dir, "-scale", "1024", "-workloads", "shuffle-merge",
		"-threshold", "0.01", "-slack", "1", "-compare", basePath}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (regression)\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "**REGRESSION**") {
		t.Fatalf("regression banner missing:\n%s", out.String())
	}
}

func TestPerfSubcommandList(t *testing.T) {
	var out, errb strings.Builder
	if code := runPerf([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, name := range perf.WorkloadNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}
}

func TestPerfSubcommandBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := runPerf([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	if code := runPerf([]string{"-workloads", "no-such-workload"}, &out, &errb); code != 2 {
		t.Fatalf("unknown workload exit %d, want 2", code)
	}
}
