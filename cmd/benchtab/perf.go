// The perf subcommand runs the performance-trajectory suite of
// internal/obs/perf: a pinned registry of seeded workloads measured
// for wall time, throughput, alloc/GC deltas, engine counters and
// per-phase attribution, written as a schema-versioned BENCH_<NNNN>.json
// record.
//
//	benchtab perf                          # run suite, write next BENCH_*.json
//	benchtab perf -compare BENCH_0006.json # diff against a baseline, exit 1 on regression
//	benchtab perf -list                    # list workload names
package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/obs/perf"
)

// runPerf implements `benchtab perf`. It returns the process exit
// code: 0 clean, 1 regression found, 2 usage or runtime error.
func runPerf(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtab perf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", perf.DefaultScale, "corpus shrink factor (1 = full 2.03M traces)")
	seed := fs.Int64("seed", 1, "master seed for every workload")
	dir := fs.String("dir", ".", "directory holding the BENCH_*.json trajectory")
	out := fs.String("out", "", "explicit record path (default: next BENCH_<NNNN>.json in -dir)")
	compareWith := fs.String("compare", "", "baseline record to diff against; exit 1 on regression")
	threshold := fs.Float64("threshold", perf.DefaultThreshold, "relative slowdown tolerated before flagging a regression")
	slack := fs.Int64("slack", perf.DefaultSlackUs, "absolute per-workload grace in microseconds added to the regression bound")
	only := fs.String("workloads", "", "comma-separated workload subset (default: all)")
	list := fs.Bool("list", false, "list workload names and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, w := range perf.Workloads() {
			fmt.Fprintf(stdout, "%-24s %s\n", w.Name, w.Desc)
		}
		return 0
	}

	opts := perf.SuiteOptions{
		Scale: *scale,
		Seed:  *seed,
		Logf:  func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) },
	}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Only = append(opts.Only, name)
			}
		}
	}
	rec, err := perf.RunSuite(opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	path := *out
	if path == "" {
		if path, err = perf.NextPath(*dir); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if err := perf.WriteRecord(path, rec); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stderr, "wrote %s (%d workloads, suite wall %.0fms)\n",
		path, len(rec.Workloads), rec.SuiteWallMs)
	writeRecordTable(stdout, rec)

	if *compareWith == "" {
		return 0
	}
	old, err := perf.ReadRecord(*compareWith)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cmp := perf.Compare(old, rec, perf.CompareOptions{Threshold: *threshold, SlackUs: *slack})
	if err := cmp.WriteMarkdown(stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(cmp.Regressions()) > 0 {
		return 1
	}
	return 0
}

// writeRecordTable renders one record as the markdown table the
// EXPERIMENTS report uses, so a bare `benchtab perf` is readable
// without a baseline.
func writeRecordTable(w io.Writer, rec *perf.Record) {
	fmt.Fprintf(w, "### Perf record %s — scale 1/%d, seed %d, %s %s/%s\n\n",
		recordName(rec), rec.Scale, rec.Seed, rec.Env.GoVersion, rec.Env.GOOS, rec.Env.GOARCH)
	fmt.Fprintln(w, "| workload | wall | records | rec/s | alloc | GC | top phase |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---|")
	for i := range rec.Workloads {
		wr := &rec.Workloads[i]
		top := wr.TopPhase()
		topCell := "—"
		if top.Phase != "" {
			topCell = fmt.Sprintf("%s %.0f%%", top.Phase, top.Pct)
		}
		fmt.Fprintf(w, "| %s | %.1fms | %d | %.0f | %s | %d | %s |\n",
			wr.Name, wr.WallMs(), wr.Records, wr.RecordsPerSec,
			byteSize(wr.AllocBytes), wr.GCRuns, topCell)
	}
	fmt.Fprintln(w)
}

func recordName(rec *perf.Record) string {
	if rec.ID != "" {
		return rec.ID
	}
	return "(unsaved)"
}

// byteSize renders a byte count with a binary-unit suffix.
func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
