package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	cfg := runConfig{scale: 64, seed: 1, maxIter: 3}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.id)
			}
			// Every experiment must render at least one markdown table
			// or code block.
			out := buf.String()
			if !strings.Contains(out, "|") && !strings.Contains(out, "```") {
				t.Fatalf("%s output has no table: %q", e.id, out[:min(len(out), 120)])
			}
		})
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
