// Command gepetolint runs the engine-invariant analyzer suite over Go
// packages, multichecker-style:
//
//	gepetolint [-only a,b] [packages]
//
// Packages default to ./... . Diagnostics print as
// file:line:col: [analyzer] message, and the exit status is 1 when any
// are found, 2 on operational failure — so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gepetolint [-only a,b] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "gepetolint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gepetolint: %v\n", err)
		os.Exit(2)
	}
	res, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gepetolint: %v\n", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range res.Targets() {
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "gepetolint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gepetolint: %d finding(s) in %d package(s)\n", len(diags), len(res.Targets()))
		os.Exit(1)
	}
}
