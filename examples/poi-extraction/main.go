// POI extraction: the inference attack GEPETO's clustering algorithms
// primarily serve (§VIII). One user's trail is down-sampled, cleaned,
// density-clustered and turned into labeled points of interest, which
// are then compared against the generator's hidden ground truth and
// rendered to an SVG map.
//
//	go run ./examples/poi-extraction
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/viz"
)

func main() {
	tk, err := core.NewToolkit(core.ClusterConfig{
		Nodes: 4, Racks: 2, SlotsPerNode: 2, ChunkSize: 512 << 10, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One target individual with ~3 weeks of dense GPS logging.
	ds, truth, _, err := tk.GenerateAndUpload(
		geolife.Config{Users: 1, TotalTraces: 14_000, Seed: 99}, "victim")
	if err != nil {
		log.Fatal(err)
	}
	user := ds.Trails[0].User
	fmt.Printf("attacking user %q: %d raw traces\n", user, ds.NumTraces())

	// The full attack: sample -> preprocess -> DJ-Cluster -> label.
	pois, dj, err := tk.AttackPOI("victim", time.Minute, gepeto.DefaultDJClusterOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering found %d clusters (%d noise traces)\n", len(dj.Clusters), dj.Noise)
	fmt.Println("inferred POIs:")
	for _, p := range pois {
		trueDist := nearestTruePOI(p.Center, truth, user)
		fmt.Printf("  %-8s %s  visits=%-4d night=%-3d work-hours=%-3d (%.0fm from a true POI)\n",
			p.Label, p.Center, p.Visits, p.NightVisits, p.WorkHourVisits, trueDist)
	}

	// Score against ground truth: did the attack find home and work?
	rep := core.EvaluatePOIAttack(pois, truth, 50)
	fmt.Printf("\nattack evaluation: home found=%v work found=%v precision=%.2f recall=%.2f\n",
		rep.HomeRecovered == 1, rep.WorkRecovered == 1, rep.POIPrecision, rep.POIRecall)
	fmt.Printf("true home: %s | true work: %s\n", truth.Homes[user], truth.Works[user])

	// Visualize: trail in blue, inferred POIs as labeled markers.
	canvas := viz.RenderDataset(ds, 1000, 800)
	canvas.AddTitle(fmt.Sprintf("POI attack on user %s", user))
	for i, p := range pois {
		canvas.AddMarker(p.Center, string(p.Label), i+1)
		canvas.AddCircle(p.Center, 100, i+1)
	}
	f, err := os.Create("poi-attack.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := canvas.WriteSVG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("map written to poi-attack.svg")
}

func nearestTruePOI(p geo.Point, truth *geolife.GroundTruth, user string) float64 {
	best := -1.0
	for _, tp := range truth.POIs(user) {
		if d := geo.Haversine(p, tp); best < 0 || d < best {
			best = d
		}
	}
	return best
}
