// De-anonymization: the paper's §VIII extension — Mobility Markov
// Chains "can be used to predict future locations or even to perform
// de-anonymization attacks". A released dataset is pseudonymised (the
// usual "first protection mechanism" of §II); the adversary, holding
// an older identified dataset, builds MMC models on both sides and
// links pseudonyms back to identities, showing why pseudonymization
// alone "is clearly not a sufficient form of privacy protection".
//
//	go run ./examples/deanonymization
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/privacy"
	"repro/internal/trace"
)

func main() {
	// 8 users, ~3 weeks of traces each.
	ds, _ := geolife.GenerateWithTruth(geolife.Config{Users: 8, TotalTraces: 96_000, Seed: 77})

	// Split chronologically: the adversary's identified history vs the
	// "anonymized" release covering a later period.
	history := &trace.Dataset{}
	release := &trace.Dataset{}
	for _, tr := range ds.Trails {
		half := len(tr.Traces) / 2
		history.Trails = append(history.Trails, trace.Trail{User: tr.User, Traces: tr.Traces[:half]})
		release.Trails = append(release.Trails, trace.Trail{User: tr.User, Traces: tr.Traces[half:]})
	}
	anonRelease, mapping := privacy.Pseudonymize(release, 13)
	fmt.Printf("adversary holds %d identified traces; release has %d traces under pseudonyms\n\n",
		history.NumTraces(), anonRelease.NumTraces())

	// The adversary does not get ground-truth POIs: it extracts them
	// itself with the clustering attack, on both datasets.
	knownPOIs := extractPOIs(history)
	anonPOIs := extractPOIs(anonRelease)

	var known, anon []*privacy.MMC
	for i := range history.Trails {
		tr := &history.Trails[i]
		m, err := privacy.BuildMMC(tr, knownPOIs[tr.User], 50)
		if err != nil {
			log.Fatal(err)
		}
		known = append(known, m)
	}
	for i := range anonRelease.Trails {
		tr := &anonRelease.Trails[i]
		m, err := privacy.BuildMMC(tr, anonPOIs[tr.User], 50)
		if err != nil {
			log.Fatal(err)
		}
		anon = append(anon, m)
	}

	res := privacy.LinkByMMC(known, anon, mapping)
	pseudos := make([]string, 0, len(res.Matches))
	for p := range res.Matches {
		pseudos = append(pseudos, p)
	}
	sort.Strings(pseudos)
	fmt.Println("linking attack results:")
	for _, p := range pseudos {
		verdict := "WRONG"
		if mapping[p] == res.Matches[p] {
			verdict = "correct"
		}
		fmt.Printf("  %s -> linked to %q (truth: %q) %s\n", p, res.Matches[p], mapping[p], verdict)
	}
	fmt.Printf("\nde-anonymization accuracy: %d/%d (%.0f%%)\n", res.Correct, res.Total, res.Accuracy()*100)
	fmt.Printf("mean anonymity-set size: %.2f (1.0 = the attack is always certain)\n",
		privacy.AnonymitySetSize(known, anon, 1.05))
}

// extractPOIs runs the clustering attack per dataset and returns each
// user's POI centers.
func extractPOIs(ds *trace.Dataset) map[string][]geo.Point {
	sampled := gepeto.SampleSequential(ds, time.Minute, gepeto.SampleUpperLimit)
	_, pre := gepeto.PreprocessSequential(sampled, 2.0, 1.0)
	clusters := gepeto.DJClusterSequential(pre, gepeto.DefaultDJClusterOptions())
	pois, err := privacy.ExtractPOIs(clusters, privacy.TraceTimes(pre))
	if err != nil {
		log.Fatal(err)
	}
	out := map[string][]geo.Point{}
	for _, p := range pois {
		out[p.User] = append(out[p.User], p.Center)
	}
	return out
}
