// Social-link discovery: the §II inference attack that "discovers
// social relations between individuals, by considering that two
// individuals that are in contact during a non-negligible amount of
// time share some kind of social link". Two of the generated users are
// given a weekly shared meeting; the attack — run as two chained
// MapReduce jobs — finds exactly that pair, plus the home/work
// quasi-identifier attack on the side.
//
//	go run ./examples/social-discovery
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/privacy"
	"repro/internal/trace"
)

func main() {
	// Generate 6 independent users, then make users 000 and 001
	// "friends": both attend the same café three evenings a week.
	ds, _ := geolife.GenerateWithTruth(geolife.Config{Users: 6, TotalTraces: 36_000, Seed: 3})
	cafe := geo.Point{Lat: 39.93, Lon: 116.39}
	// A shared schedule: meetings start after every trail has ended so
	// chronology is preserved for both friends.
	var latest time.Time
	for i := range ds.Trails {
		if _, last := ds.Trails[i].Span(); last.After(latest) {
			latest = last
		}
	}
	meetingStart := latest.Add(24 * time.Hour).Truncate(time.Hour)
	addMeetings(ds, "000", cafe, meetingStart, 11)
	addMeetings(ds, "001", cafe, meetingStart, 13)

	tk, err := core.NewToolkit(core.ClusterConfig{
		Nodes: 5, Racks: 2, SlotsPerNode: 2, ChunkSize: 512 << 10, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tk.Upload(ds, "traces"); err != nil {
		log.Fatal(err)
	}

	links, results, err := privacy.DiscoverSocialLinksMR(
		tk.Engine(), []string{"traces"}, "social-work", privacy.SocialOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-location attack over %d traces (%d users) via %d MapReduce jobs:\n",
		ds.NumTraces(), len(ds.Trails), len(results))
	if len(links) == 0 {
		fmt.Println("  no social links found")
	}
	for _, l := range links {
		fmt.Printf("  %s <-> %s share %d co-located time windows\n", l.UserA, l.UserB, l.SharedWindows)
	}
	fmt.Println("\n(the planted friendship is 000 <-> 001; independent users never co-locate)")
}

// addMeetings appends weekly café dwells to a user's trail. The seed
// offsets jitter so the two friends' points differ like real GPS.
func addMeetings(ds *trace.Dataset, user string, cafe geo.Point, start time.Time, seed int) {
	tr := ds.Trail(user)
	if tr == nil {
		log.Fatalf("no trail for %s", user)
	}
	// Three 30-minute meetings per week for four weeks.
	for week := 0; week < 4; week++ {
		for _, day := range []int{1, 3, 5} {
			at := start.AddDate(0, 0, week*7+day)
			for m := 0; m < 30; m++ {
				bearing := float64((m*seed)%360) + float64(seed)
				tr.Traces = append(tr.Traces, trace.Trace{
					User:  user,
					Point: geo.Destination(cafe, bearing, float64((m*seed)%12)),
					Time:  at.Add(time.Duration(m) * time.Minute),
				})
			}
		}
	}
}
