// Quickstart: deploy a simulated cluster, generate a GeoLife-like
// dataset, and run the paper's three MapReduced algorithms end to end —
// down-sampling (§V), k-means (§VI) and DJ-Cluster (§VII).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
)

func main() {
	// 1. Deploy: 7 nodes x 4 slots over 2 racks, 1 MB chunks (the
	// paper's Parapluie testbed shape, shrunk to laptop scale).
	tk, err := core.NewToolkit(core.ClusterConfig{
		Nodes: 7, Racks: 2, SlotsPerNode: 4, ChunkSize: 1 << 20, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed simulated cluster: %s (bring-up %v)\n", tk.Describe(), tk.DeployTime.Round(time.Microsecond))

	// 2. Generate and upload a dense trajectory corpus: 5 users,
	// 60k traces at 3-6 s sampling.
	ds, _, uploadTime, err := tk.GenerateAndUpload(
		geolife.Config{Users: 5, TotalTraces: 60_000, Seed: 42}, "geolife")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d traces for %d users (%.1f MB) in %v\n",
		ds.NumTraces(), len(ds.Trails), tk.DatasetSizeMB("geolife"), uploadTime.Round(time.Millisecond))

	// 3. Down-sample at a 1-minute window (map-only job, §V).
	res, err := tk.Sample("geolife", "sampled", time.Minute, gepeto.SampleUpperLimit)
	if err != nil {
		log.Fatal(err)
	}
	kept := res.Counters.Value("task", "map_output_records")
	fmt.Printf("sampling: %d -> %d traces (%.1fx collapse) using %d mappers in %v\n",
		ds.NumTraces(), kept, float64(ds.NumTraces())/float64(kept), res.MapTasks, res.Wall.Round(time.Millisecond))

	// 4. k-means (§VI): one MapReduce job per iteration.
	km, err := tk.KMeans("sampled", gepeto.KMeansOptions{
		K: 8, Distance: geo.MetricSquaredEuclidean, MaxIter: 50, Seed: 7, UseCombiner: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means: converged=%v after %d iterations; centroids:\n", km.Converged, km.Iterations)
	for i, c := range km.Centroids {
		fmt.Printf("  %d: %s (%d traces)\n", i, c, km.Sizes[i])
	}

	// 5. DJ-Cluster (§VII): preprocessing pipeline, MapReduce R-tree,
	// neighborhood map + merging reduce.
	dj, err := tk.DJCluster("sampled", gepeto.DefaultDJClusterOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DJ-Cluster: %d -> %d -> %d traces after preprocessing; %d clusters, %d noise\n",
		dj.InputTraces, dj.AfterSpeedFilter, dj.AfterDedup, len(dj.Clusters), dj.Noise)
	for i, c := range dj.Clusters {
		if i == 5 {
			fmt.Printf("  ... and %d more clusters\n", len(dj.Clusters)-5)
			break
		}
		fmt.Printf("  %s: user %s, %d traces around %s\n", c.ID, c.User, len(c.Members), c.Centroid)
	}
}
