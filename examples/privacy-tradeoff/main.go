// Privacy/utility trade-off: GEPETO's stated purpose is to let a data
// curator "design, tune, experiment and evaluate various sanitization
// algorithms and inference attacks ... and evaluate the resulting
// trade-off between privacy and utility" (§I). This example sweeps
// several geo-sanitization mechanisms (§VIII), re-runs the POI attack
// on each sanitized dataset, and prints the trade-off table.
//
//	go run ./examples/privacy-tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/privacy"
	"repro/internal/trace"
)

func main() {
	ds, truth := geolife.GenerateWithTruth(geolife.Config{Users: 4, TotalTraces: 40_000, Seed: 5})
	fmt.Printf("dataset: %d traces, %d users\n\n", ds.NumTraces(), len(ds.Trails))

	mechanisms := []privacy.Sanitizer{
		privacy.GaussianMask{SigmaMeters: 50, Seed: 1},
		privacy.GaussianMask{SigmaMeters: 100, Seed: 1},
		privacy.GaussianMask{SigmaMeters: 300, Seed: 1},
		privacy.SpatialCloaking{CellMeters: 200},
		privacy.SpatialCloaking{CellMeters: 500},
		privacy.TemporalAggregation{Window: 10 * time.Minute},
	}

	fmt.Printf("%-18s %12s %10s %8s %8s %8s\n",
		"mechanism", "distortion", "retention", "homes", "works", "recall")
	base := attack(ds, truth)
	fmt.Printf("%-18s %12s %9.0f%% %5d/%-2d %5d/%-2d %8.2f\n",
		"none", "0 m", 100.0, base.HomeRecovered, base.Users, base.WorkRecovered, base.Users, base.POIRecall)

	for _, s := range mechanisms {
		sanitized := s.Sanitize(ds)
		util := privacy.MeasureUtility(ds, sanitized)
		rep := attack(sanitized, truth)
		fmt.Printf("%-18s %10.0f m %9.0f%% %5d/%-2d %5d/%-2d %8.2f\n",
			s.Name(), util.MeanDistortionMeters, util.Retention*100,
			rep.HomeRecovered, base.Users, rep.WorkRecovered, base.Users, rep.POIRecall)
	}

	fmt.Println(`
reading the table:
  - "distortion" is utility loss (mean displacement of surviving traces);
  - "homes"/"works"/"recall" are privacy risk (what the attack still finds);
  - Gaussian noise reduces POI recall but home recovery resists it (the
    noise is zero-mean, so cluster centroids stay on the true POI);
  - cloaking defeats the attack outright at moderate distortion — the
    kind of conclusion GEPETO's attack-then-measure loop is built for.`)
}

// attack runs the sequential sample -> preprocess -> DJ-Cluster -> POI
// pipeline and scores it against ground truth.
func attack(ds *trace.Dataset, truth *geolife.GroundTruth) privacy.POIAttackReport {
	sampled := gepeto.SampleSequential(ds, time.Minute, gepeto.SampleUpperLimit)
	_, pre := gepeto.PreprocessSequential(sampled, 2.0, 1.0)
	res := gepeto.DJClusterSequential(pre, gepeto.DefaultDJClusterOptions())
	pois, err := privacy.ExtractPOIs(res, privacy.TraceTimes(pre))
	if err != nil {
		log.Fatal(err)
	}
	return privacy.EvaluatePOIAttack(pois, truth, 50)
}
