// Package cluster models the physical testbed the paper runs on: a
// Hadoop-style cluster of multi-core commodity nodes grouped into racks
// (paper §III and §IV, the Grid'5000 "Parapluie" deployment).
//
// The model is deliberately simple: a Node has an identity, a rack, and
// a number of task slots (the paper's tasktrackers "have at their
// disposal a number of available slots for running tasks"). The DFS
// uses the topology for rack-aware replica placement; the MapReduce
// scheduler uses it to keep computation close to data. Nodes can be
// killed and restarted to exercise the failure-handling paths.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Node is one machine in the cluster.
type Node struct {
	// ID is the unique node name, e.g. "parapluie-3".
	ID string
	// Rack is the network rack the node belongs to, e.g. "rack-0".
	Rack string
	// Slots is the number of simultaneous tasks the node's
	// tasktracker can execute (cores dedicated to task slots).
	Slots int
}

// Cluster is a set of nodes with liveness tracking. All methods are
// safe for concurrent use.
type Cluster struct {
	mu        sync.RWMutex
	nodes     []Node
	byID      map[string]int // node ID -> index into nodes; O(1) lookups
	dead      map[string]bool
	killHooks []func(id string)
}

// New builds a cluster from an explicit node list. Node IDs must be
// unique and slots positive.
func New(nodes []Node) (*Cluster, error) {
	byID := make(map[string]int, len(nodes))
	for i, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node with empty ID")
		}
		if _, dup := byID[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		if n.Slots <= 0 {
			return nil, fmt.Errorf("cluster: node %q has %d slots, want > 0", n.ID, n.Slots)
		}
		byID[n.ID] = i
	}
	return &Cluster{nodes: append([]Node(nil), nodes...), byID: byID, dead: make(map[string]bool)}, nil
}

// NewUniform builds a cluster of numNodes identical nodes with
// slotsPerNode slots each, spread round-robin over numRacks racks —
// the shape of the paper's Parapluie testbed (e.g. 7 nodes, one rack,
// 24 cores each; or 31 nodes for the sampling experiment).
func NewUniform(numNodes, numRacks, slotsPerNode int) (*Cluster, error) {
	if numNodes <= 0 || numRacks <= 0 || slotsPerNode <= 0 {
		return nil, fmt.Errorf("cluster: invalid shape %d nodes / %d racks / %d slots", numNodes, numRacks, slotsPerNode)
	}
	nodes := make([]Node, numNodes)
	for i := range nodes {
		nodes[i] = Node{
			ID:    fmt.Sprintf("node-%02d", i),
			Rack:  fmt.Sprintf("rack-%d", i%numRacks),
			Slots: slotsPerNode,
		}
	}
	return New(nodes)
}

// Nodes returns a copy of all nodes (alive or dead), in creation order.
func (c *Cluster) Nodes() []Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Node(nil), c.nodes...)
}

// Alive returns the currently alive nodes in creation order.
func (c *Cluster) Alive() []Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !c.dead[n.ID] {
			out = append(out, n)
		}
	}
	return out
}

// Node returns the node with the given ID and whether it exists.
func (c *Cluster) Node(id string) (Node, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i, ok := c.byID[id]; ok {
		return c.nodes[i], true
	}
	return Node{}, false
}

// IsAlive reports whether the node exists and is alive.
func (c *Cluster) IsAlive(id string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dead[id] {
		return false
	}
	_, ok := c.byID[id]
	return ok
}

// OnKill registers a hook invoked (outside the cluster lock, in
// registration order) whenever Kill transitions a node to dead — how
// the RPC jobtracker learns that a modelled node loss must take down a
// real worker process. Hooks are not called for nodes that were
// already dead.
func (c *Cluster) OnKill(hook func(id string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.killHooks = append(c.killHooks, hook)
}

// Kill marks a node dead. It returns false if the node does not exist
// or is already dead. Killing a node does not interrupt tasks already
// running on it (like a tasktracker that stops heartbeating: in-flight
// work is lost only from the scheduler's perspective); new work will
// not be placed there.
func (c *Cluster) Kill(id string) bool {
	c.mu.Lock()
	if c.dead[id] {
		c.mu.Unlock()
		return false
	}
	if _, ok := c.byID[id]; !ok {
		c.mu.Unlock()
		return false
	}
	c.dead[id] = true
	hooks := append([]func(id string){}, c.killHooks...)
	c.mu.Unlock()
	// Hooks run unlocked: they typically call back into the cluster
	// (IsAlive, Restart) or block on network shutdown.
	for _, h := range hooks {
		h(id)
	}
	return true
}

// Restart marks a dead node alive again. It returns false if the node
// does not exist or is not dead.
func (c *Cluster) Restart(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dead[id] {
		return false
	}
	delete(c.dead, id)
	return true
}

// Racks returns the sorted list of rack names present in the cluster.
func (c *Cluster) Racks() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := make(map[string]bool)
	for _, n := range c.nodes {
		set[n.Rack] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RackOf returns the rack of the given node ("" if unknown).
func (c *Cluster) RackOf(id string) string {
	n, ok := c.Node(id)
	if !ok {
		return ""
	}
	return n.Rack
}

// TotalSlots returns the number of task slots across alive nodes.
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, n := range c.Alive() {
		total += n.Slots
	}
	return total
}
