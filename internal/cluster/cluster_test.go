package cluster

import (
	"testing"
)

func TestNewUniform(t *testing.T) {
	c, err := NewUniform(7, 2, 24)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Nodes()); got != 7 {
		t.Fatalf("nodes = %d", got)
	}
	if got := c.TotalSlots(); got != 7*24 {
		t.Fatalf("TotalSlots = %d", got)
	}
	if got := len(c.Racks()); got != 2 {
		t.Fatalf("racks = %v", c.Racks())
	}
}

func TestNewUniformInvalid(t *testing.T) {
	for _, shape := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if _, err := NewUniform(shape[0], shape[1], shape[2]); err == nil {
			t.Errorf("shape %v: want error", shape)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Node{{ID: "", Rack: "r", Slots: 1}}); err == nil {
		t.Error("empty ID should error")
	}
	if _, err := New([]Node{{ID: "a", Rack: "r", Slots: 1}, {ID: "a", Rack: "r", Slots: 1}}); err == nil {
		t.Error("duplicate ID should error")
	}
	if _, err := New([]Node{{ID: "a", Rack: "r", Slots: 0}}); err == nil {
		t.Error("zero slots should error")
	}
}

func TestKillRestart(t *testing.T) {
	c, _ := NewUniform(3, 1, 2)
	id := c.Nodes()[1].ID
	if !c.IsAlive(id) {
		t.Fatal("node should start alive")
	}
	if !c.Kill(id) {
		t.Fatal("Kill should succeed")
	}
	if c.Kill(id) {
		t.Fatal("double Kill should fail")
	}
	if c.IsAlive(id) {
		t.Fatal("killed node should be dead")
	}
	if got := len(c.Alive()); got != 2 {
		t.Fatalf("Alive = %d, want 2", got)
	}
	if got := c.TotalSlots(); got != 4 {
		t.Fatalf("TotalSlots = %d, want 4", got)
	}
	if !c.Restart(id) {
		t.Fatal("Restart should succeed")
	}
	if c.Restart(id) {
		t.Fatal("double Restart should fail")
	}
	if !c.IsAlive(id) {
		t.Fatal("restarted node should be alive")
	}
}

func TestKillUnknown(t *testing.T) {
	c, _ := NewUniform(2, 1, 1)
	if c.Kill("nonexistent") {
		t.Fatal("killing unknown node should fail")
	}
	if c.IsAlive("nonexistent") {
		t.Fatal("unknown node should not be alive")
	}
	if c.Restart("nonexistent") {
		t.Fatal("restarting unknown node should fail")
	}
}

func TestNodeLookupAndRacks(t *testing.T) {
	c, _ := New([]Node{
		{ID: "a", Rack: "r1", Slots: 4},
		{ID: "b", Rack: "r2", Slots: 4},
		{ID: "c", Rack: "r1", Slots: 4},
	})
	n, ok := c.Node("b")
	if !ok || n.Rack != "r2" {
		t.Fatalf("Node(b) = %+v, %v", n, ok)
	}
	if _, ok := c.Node("zzz"); ok {
		t.Fatal("unknown node lookup should fail")
	}
	if got := c.RackOf("c"); got != "r1" {
		t.Fatalf("RackOf(c) = %q", got)
	}
	if got := c.RackOf("zzz"); got != "" {
		t.Fatalf("RackOf(zzz) = %q", got)
	}
	racks := c.Racks()
	if len(racks) != 2 || racks[0] != "r1" || racks[1] != "r2" {
		t.Fatalf("Racks = %v", racks)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := NewUniform(10, 2, 4)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			id := c.Nodes()[i%10].ID
			for j := 0; j < 100; j++ {
				c.Kill(id)
				c.Alive()
				c.Restart(id)
				c.TotalSlots()
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
