package rpc

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// Task assignment args/replies. assignArgs mirrors mapreduce.TaskSpec
// with the Job flattened to its wire form (TaskSpec itself carries
// function fields and cannot gob).
type assignArgs struct {
	Job           mapreduce.JobWire
	Phase         string
	TaskID        string
	Index         int
	Attempt       int
	Node          string
	MapOnly       bool
	NumReducers   int
	ShuffleBudget int64
	Split         mapreduce.InputSplit
	Partition     int
	Runs          []mapreduce.RunDesc
}

type assignReply struct{}

type shutdownArgs struct{}

type shutdownReply struct{}

// WorkerConfig configures NewWorker.
type WorkerConfig struct {
	// Node is the cluster node ID this worker serves as tasktracker.
	Node string
	// Slots is how many tasks run concurrently.
	Slots int
	// Transport reaches the jobtracker; Addr is where this worker's
	// own server is bound (sent along at registration so assignments
	// find their way back).
	Transport      Transport
	JobtrackerAddr string
	Addr           string
	// HeartbeatEvery is the heartbeat period (default 250ms; keep it
	// well under the jobtracker's grace).
	HeartbeatEvery time.Duration
	// TaskOverhead sleeps before each task attempt — the remote analog
	// of mapreduce.Options.TaskOverhead, used to stretch runs so fault
	// drills (kill a worker mid-job) land mid-phase reliably.
	TaskOverhead time.Duration
	// Registry receives this worker's telemetry (RPC client/server
	// metrics, task counters, retry counters); one is created when
	// nil. The whole registry rides every heartbeat to the jobtracker
	// as a federated snapshot.
	Registry *obs.Registry
	// Logger receives structured runtime logs (nil discards them).
	Logger *slog.Logger
	// ClockSkew shifts every clock reading this worker stamps —
	// heartbeat send times and task-done event timestamps — modelling
	// a machine whose wall clock disagrees with the jobtracker's.
	// Tests use it to prove the offset estimate converges to −skew and
	// that forwarded events come out clock-corrected.
	ClockSkew time.Duration
}

// Worker is one tasktracker process: it registers with the jobtracker,
// heartbeats, accepts task assignments into a bounded queue, executes
// them on slot goroutines against the remote DFS, and reports
// completions (with retries — the report must land or the attempt
// hangs driver-side until loss detection).
type Worker struct {
	cfg   WorkerConfig
	srv   *Server
	store *RemoteStore
	tr    Transport // cfg.Transport wrapped with client telemetry
	reg   *obs.Registry
	log   *slog.Logger
	epoch int64 // start time (UnixNano), versioning federated snapshots
	busy  *obs.Gauge

	queue chan assignArgs

	mu   sync.Mutex
	seen map[string]bool // assigned attempt keys, for duplicate-delivery dedup

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	tasksRun    atomic.Int64
	eventErrors atomic.Int64

	// offNanos is the EWMA clock-offset estimate (jobtracker clock
	// minus this worker's clock), valid once offOK is set. Updated by
	// the heartbeat loop from RTT midpoints.
	offNanos atomic.Int64
	offOK    atomic.Bool
}

// NewWorker creates a worker. Bind its Server() on the network, then
// call Run.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tr := Instrument(cfg.Transport, reg)
	w := &Worker{
		cfg:   cfg,
		srv:   NewServer(),
		store: NewRemoteStore(tr, cfg.JobtrackerAddr),
		tr:    tr,
		reg:   reg,
		log:   orNopLogger(cfg.Logger),
		epoch: time.Now().UnixNano(),
		busy:  reg.Gauge("worker_busy_slots", "Slots currently executing a task.", nil),
		queue: make(chan assignArgs, 1024),
		seen:  make(map[string]bool),
		stop:  make(chan struct{}),
	}
	w.store.Instrument(reg)
	w.srv.Instrument(reg)
	Handle(w.srv, "worker.assign", w.handleAssign)
	Handle(w.srv, "worker.shutdown", w.handleShutdown)
	return w
}

// now reads the worker's wall clock, shifted by the configured skew.
func (w *Worker) now() time.Time { return time.Now().Add(w.cfg.ClockSkew) }

// Registry returns the worker's telemetry registry.
func (w *Worker) Registry() *obs.Registry { return w.reg }

// ClockOffset returns the current EWMA estimate of this worker's
// clock offset relative to the jobtracker (jobtracker − worker), and
// whether any estimate exists yet.
func (w *Worker) ClockOffset() (time.Duration, bool) {
	return time.Duration(w.offNanos.Load()), w.offOK.Load()
}

// Server returns the worker's RPC surface for binding.
func (w *Worker) Server() *Server { return w.srv }

// TasksRun reports how many task attempts this worker has executed.
func (w *Worker) TasksRun() int64 { return w.tasksRun.Load() }

// Run registers with the jobtracker (retrying while it comes up),
// then serves tasks until Stop — or until the jobtracker disowns this
// worker, at which point it fence-stops. It blocks.
func (w *Worker) Run() error {
	var err error
	for i := 0; i < 40; i++ {
		args := registerArgs{Node: w.cfg.Node, Addr: w.cfg.Addr, Slots: w.cfg.Slots}
		var reply registerReply
		if err = w.tr.Call(w.cfg.JobtrackerAddr, "jt.register", &args, &reply); err == nil {
			break
		}
		if !IsTransportError(err) {
			// The jobtracker answered and said no (unknown node, bad
			// slot count); retrying cannot change its mind.
			break
		}
		select {
		case <-w.stop:
			return nil
		case <-time.After(50 * time.Millisecond):
		}
	}
	if err != nil {
		return fmt.Errorf("rpc: worker %s: register: %v", w.cfg.Node, err)
	}
	w.log.Info("registered with jobtracker", "worker", w.cfg.Node, "jobtracker", w.cfg.JobtrackerAddr, "slots", w.cfg.Slots)
	for i := 0; i < w.cfg.Slots; i++ {
		w.wg.Add(1)
		go w.slotLoop()
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	w.wg.Wait()
	return nil
}

// Stop halts the worker's loops. Safe to call more than once.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
}

func (w *Worker) handleAssign(a *assignArgs) (*assignReply, error) {
	key := attemptKey(a.Job.Name, a.TaskID, a.Attempt)
	w.mu.Lock()
	if w.seen[key] {
		// Duplicate delivery of an assignment already queued or run:
		// ack without re-queueing (running the same attempt twice would
		// race on its attempt-unique temp file).
		w.mu.Unlock()
		w.reg.Counter("rpc_assign_duplicates_total", "Duplicate assignment deliveries acked without re-queueing.", nil).Inc()
		return &assignReply{}, nil
	}
	w.seen[key] = true
	w.mu.Unlock()
	select {
	case w.queue <- *a:
		return &assignReply{}, nil
	default:
		// Full queue: refuse, and forget the key so a retry after
		// backoff can land.
		w.mu.Lock()
		delete(w.seen, key)
		w.mu.Unlock()
		return nil, fmt.Errorf("rpc: worker %s: task queue full", w.cfg.Node)
	}
}

func (w *Worker) handleShutdown(*shutdownArgs) (*shutdownReply, error) {
	// Reply first, then die: Stop in a goroutine so the ack makes it
	// back out before the process winds down.
	go w.Stop()
	return &shutdownReply{}, nil
}

func (w *Worker) slotLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		case a := <-w.queue:
			w.runTask(a)
		}
	}
}

// runTask executes one assigned attempt and reports its completion.
func (w *Worker) runTask(a assignArgs) {
	w.busy.Add(1)
	defer w.busy.Add(-1)
	started := time.Now()
	if w.cfg.TaskOverhead > 0 {
		time.Sleep(w.cfg.TaskOverhead)
	}
	res, err := w.execute(a)
	w.tasksRun.Add(1)
	status := "succeeded"
	if err != nil {
		status = "failed"
	}
	w.reg.Counter("worker_tasks_total", "Task attempts executed by this worker, by status.", obs.Labels{"status": status}).Inc()
	comp := completeArgs{
		Job: a.Job.Name, TaskID: a.TaskID, Attempt: a.Attempt, Node: w.cfg.Node,
		Res: toResultWire(res),
	}
	// Time is stamped on this worker's (possibly skewed) clock and Job
	// is set so the trace collector can route the event; the jobtracker
	// clock-corrects Time before assembly.
	ev := obs.Event{
		Type: obs.WorkerTaskDone, Time: w.now(), Job: a.Job.Name, Node: w.cfg.Node,
		Task: a.TaskID, Attempt: a.Attempt, Phase: a.Phase, Dur: time.Since(started),
	}
	if err != nil {
		comp.Err = err.Error()
		ev.Err = err.Error()
	}
	w.log.Debug("task attempt finished", "job", a.Job.Name, "task", a.TaskID, "attempt", a.Attempt, "status", status, "dur", ev.Dur)
	// The worker's own telemetry rides the same wire; a lost event is
	// counted, never fatal (observability must not fail the task).
	var evReply eventsReply
	if everr := w.tr.Call(w.cfg.JobtrackerAddr, "jt.events", &eventsArgs{Events: []obs.Event{ev}}, &evReply); everr != nil {
		w.eventErrors.Add(1)
		w.reg.Counter("rpc_event_send_errors_total", "Worker event batches lost to transport failures.", nil).Inc()
	}
	// The completion MUST land: without it the attempt hangs at the
	// driver until worker-loss detection. Retry through transient
	// drops; give up only when stopping (the driver's loss detection
	// then owns the outcome).
	for i := 0; i < 20; i++ {
		if i > 0 {
			w.reg.Counter("rpc_complete_retries_total", "Completion-report retries after transport failures.", nil).Inc()
		}
		var reply completeReply
		if cerr := w.tr.Call(w.cfg.JobtrackerAddr, "jt.complete", &comp, &reply); cerr == nil {
			return
		}
		select {
		case <-w.stop:
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	w.log.Warn("completion report never landed", "job", a.Job.Name, "task", a.TaskID, "attempt", a.Attempt)
}

// execute rebuilds the job from its wire form and runs the attempt
// against the remote store.
func (w *Worker) execute(a assignArgs) (mapreduce.TaskResult, error) {
	job, err := a.Job.Materialize()
	if err != nil {
		return mapreduce.TaskResult{}, err
	}
	spec := mapreduce.TaskSpec{
		Job: job, Phase: a.Phase, TaskID: a.TaskID, Index: a.Index,
		Attempt: a.Attempt, Node: a.Node, MapOnly: a.MapOnly,
		NumReducers: a.NumReducers, ShuffleBudget: a.ShuffleBudget,
		Split: a.Split, Partition: a.Partition, Runs: a.Runs,
	}
	return mapreduce.ExecuteTask(w.store, spec)
}

// heartbeatLoop keeps the jobtracker's liveness view fresh, and
// fence-stops the worker the moment the jobtracker disowns it: a lost
// worker must not keep writing task output the scheduler has already
// reassigned.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	tick := time.NewTicker(w.cfg.HeartbeatEvery)
	defer tick.Stop()
	var seq uint64
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			seq++
			args := heartbeatArgs{
				Node:       w.cfg.Node,
				Busy:       int(w.busy.Value()),
				Epoch:      w.epoch,
				MetricsSeq: seq,
				Metrics:    w.reg.Snapshot(),
			}
			if w.offOK.Load() {
				args.OffsetNanos = w.offNanos.Load()
				args.HasOffset = true
			}
			t0 := w.now()
			args.SentUnixNano = t0.UnixNano()
			var reply heartbeatReply
			if err := w.tr.Call(w.cfg.JobtrackerAddr, "jt.heartbeat", &args, &reply); err != nil {
				// Transient loss: keep beating; the jobtracker's grace
				// window decides when this worker is gone.
				continue
			}
			if reply.ServerUnixNano != 0 {
				// Offset sample from the RTT midpoint: assuming the beat
				// spent equal time on each leg, the server handled it at
				// the worker-clock midpoint of [t0, t1], so the clock
				// difference is server time minus that midpoint. EWMA
				// (α = 0.2) smooths asymmetric-latency noise.
				t1 := w.now()
				sample := reply.ServerUnixNano - (t0.UnixNano()/2 + t1.UnixNano()/2)
				if !w.offOK.Load() {
					w.offNanos.Store(sample)
					w.offOK.Store(true)
				} else {
					prev := w.offNanos.Load()
					w.offNanos.Store(prev + (sample-prev)/5)
				}
			}
			if !reply.Registered {
				w.log.Warn("disowned by jobtracker, fence-stopping", "worker", w.cfg.Node)
				w.Stop()
				return
			}
		}
	}
}
