package rpc

import (
	"fmt"
	"sync"
)

// MemNetwork is the in-memory transport: services bind to string
// addresses and calls dispatch directly — but every call still crosses
// a full gob encode/decode round-trip, exactly as TCP does, so a type
// that cannot survive the wire fails in fast unit tests rather than on
// a real cluster.
type MemNetwork struct {
	mu      sync.RWMutex
	servers map[string]*Server
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{servers: make(map[string]*Server)}
}

// Bind attaches a server at addr, replacing any previous binding (a
// restarted worker re-binds its address).
func (n *MemNetwork) Bind(addr string, s *Server) {
	n.mu.Lock()
	n.servers[addr] = s
	n.mu.Unlock()
}

// Unbind detaches the server at addr; subsequent calls to it fail like
// a connection refusal.
func (n *MemNetwork) Unbind(addr string) {
	n.mu.Lock()
	delete(n.servers, addr)
	n.mu.Unlock()
}

// Call implements Transport.
func (n *MemNetwork) Call(addr, method string, args, reply any) error {
	n.mu.RLock()
	s := n.servers[addr]
	n.mu.RUnlock()
	if s == nil {
		return transportErrorf("rpc: %s: connection refused", addr)
	}
	body, err := encode(args)
	if err != nil {
		return fmt.Errorf("rpc: %s %s: encode: %v", addr, method, err)
	}
	out, err := s.dispatch(method, body)
	if err != nil {
		return err
	}
	if err := decode(out, reply); err != nil {
		return fmt.Errorf("rpc: %s %s: decode reply: %v", addr, method, err)
	}
	return nil
}
