package rpc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// WorkerStatus is one registered worker's row in the cluster view.
type WorkerStatus struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
	// HeartbeatAgeMs is how long ago the last heartbeat landed.
	HeartbeatAgeMs int64 `json:"heartbeat_age_ms"`
	SlotsBusy      int   `json:"slots_busy"`
	SlotsTotal     int   `json:"slots_total"`
	// InFlight is how many assigned attempts the jobtracker is still
	// waiting on for this worker.
	InFlight    int   `json:"in_flight"`
	TasksDone   int64 `json:"tasks_done"`
	TasksFailed int64 `json:"tasks_failed"`
	// RPCCalls/RPCErrors come from the worker's federated
	// rpc_client_calls_total series: total client calls it has made,
	// and how many did not return ok.
	RPCCalls  int64 `json:"rpc_calls"`
	RPCErrors int64 `json:"rpc_errors"`
	// ClockOffsetMs is the worker-reported clock offset estimate
	// (jobtracker − worker), when one has been reported.
	ClockOffsetMs  float64 `json:"clock_offset_ms"`
	HasClockOffset bool    `json:"has_clock_offset"`
	UptimeMs       int64   `json:"uptime_ms"`
}

// LostWorker is one departed worker's row.
type LostWorker struct {
	Node   string `json:"node"`
	Addr   string `json:"addr"`
	Reason string `json:"reason"`
	AgoMs  int64  `json:"ago_ms"`
}

// ClusterState is the jobtracker's live membership view, served on
// /cluster.json and rendered by `gepeto cluster`.
type ClusterState struct {
	Workers        []WorkerStatus `json:"workers"`
	Lost           []LostWorker   `json:"lost,omitempty"`
	DupCompletions int64          `json:"dup_completions"`
	DupDFSCreates  int64          `json:"dup_dfs_creates"`
	FedStaleDrops  int64          `json:"fed_stale_drops"`
	UptimeMs       int64          `json:"uptime_ms"`
}

// ClusterState snapshots the current membership view.
func (jt *Jobtracker) ClusterState() ClusterState {
	now := time.Now()
	jt.mu.Lock()
	inflight := make(map[string]int)
	for _, p := range jt.pending {
		inflight[p.node]++
	}
	st := ClusterState{
		DupCompletions: jt.dupCompletions.Load(),
		DupDFSCreates:  jt.dupDFSCreates.Load(),
		UptimeMs:       now.Sub(jt.started).Milliseconds(),
	}
	for id, w := range jt.workers {
		ws := WorkerStatus{
			Node:           id,
			Addr:           w.addr,
			HeartbeatAgeMs: now.Sub(w.lastBeat).Milliseconds(),
			SlotsBusy:      w.busy,
			SlotsTotal:     w.slots,
			InFlight:       inflight[id],
			TasksDone:      w.tasksDone,
			TasksFailed:    w.tasksFailed,
			UptimeMs:       now.Sub(w.joined).Milliseconds(),
		}
		if off, ok := jt.offsets[id]; ok {
			ws.ClockOffsetMs = time.Duration(off).Seconds() * 1000
			ws.HasClockOffset = true
		}
		st.Workers = append(st.Workers, ws)
	}
	for _, l := range jt.lost {
		st.Lost = append(st.Lost, LostWorker{
			Node: l.node, Addr: l.addr, Reason: l.reason, AgoMs: now.Sub(l.at).Milliseconds(),
		})
	}
	jt.mu.Unlock()
	st.FedStaleDrops = jt.fed.StaleDrops()
	// RPC call/error rates come out of the federated worker snapshots.
	for i := range st.Workers {
		for _, p := range jt.fed.Worker(st.Workers[i].Node) {
			if p.Name != "rpc_client_calls_total" {
				continue
			}
			st.Workers[i].RPCCalls += p.Value
			if p.Labels["status"] != "ok" {
				st.Workers[i].RPCErrors += p.Value
			}
		}
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Node < st.Workers[j].Node })
	sort.Slice(st.Lost, func(i, j int) bool { return st.Lost[i].Node < st.Lost[j].Node })
	return st
}

// RenderClusterTable renders the state as the fixed-width table shown
// by `gepeto cluster` and GET /cluster.
func RenderClusterTable(st ClusterState) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cluster: %d workers, %d lost (jobtracker up %s)\n",
		len(st.Workers), len(st.Lost), time.Duration(st.UptimeMs)*time.Millisecond)
	fmt.Fprintf(&sb, "%-10s %-22s %9s %7s %9s %6s %7s %9s %8s %10s\n",
		"WORKER", "ADDR", "BEAT-AGE", "SLOTS", "IN-FLIGHT", "DONE", "FAILED", "RPC-CALLS", "RPC-ERR%", "CLOCK-OFF")
	for _, w := range st.Workers {
		errRate := "0.0%"
		if w.RPCCalls > 0 {
			errRate = fmt.Sprintf("%.1f%%", 100*float64(w.RPCErrors)/float64(w.RPCCalls))
		}
		off := "-"
		if w.HasClockOffset {
			off = fmt.Sprintf("%+.1fms", w.ClockOffsetMs)
		}
		fmt.Fprintf(&sb, "%-10s %-22s %8dms %3d/%-3d %9d %6d %7d %9d %8s %10s\n",
			w.Node, w.Addr, w.HeartbeatAgeMs, w.SlotsBusy, w.SlotsTotal, w.InFlight,
			w.TasksDone, w.TasksFailed, w.RPCCalls, errRate, off)
	}
	for _, l := range st.Lost {
		fmt.Fprintf(&sb, "%-10s %-22s lost %s ago (%s)\n",
			l.Node, l.Addr, time.Duration(l.AgoMs)*time.Millisecond, l.Reason)
	}
	fmt.Fprintf(&sb, "dup completions: %d  dup dfs creates: %d  stale metric drops: %d\n",
		st.DupCompletions, st.DupDFSCreates, st.FedStaleDrops)
	return sb.String()
}

// ClusterHandler serves the live view: a plain-text table on /cluster
// and the raw ClusterState on /cluster.json (any path ending in
// ".json" selects JSON, so one handler backs both routes).
func (jt *Jobtracker) ClusterHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := jt.ClusterState()
		if strings.HasSuffix(r.URL.Path, ".json") {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(st)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprint(w, RenderClusterTable(st))
	})
}
