// Package rpc is the transport layer under the out-of-process MapReduce
// backend: a small gob-based RPC fabric, a jobtracker service that
// bridges the engine's Executor interface to remote worker processes,
// and the worker (tasktracker) loop itself.
//
// The fabric is deliberately minimal — one request, one reply, no
// streaming — because that is all the Hadoop control plane the paper's
// deployment relies on needs: worker registration, heartbeats, task
// assignment and completion, and ranged DFS reads for the shuffle. Two
// interchangeable transports implement it: MemNetwork (goroutine
// "processes" in one address space, still crossing a full gob
// round-trip so serialisation bugs surface in unit tests) and
// TCPNetwork (real worker processes, used by `gepeto worker` /
// `gepeto jobtracker`). The Unreliable wrapper injects drops, delays,
// duplicate deliveries and partitions into either.
package rpc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Transport delivers one RPC to the service bound at addr. args is
// gob-encoded on the way in; the service's reply is gob-decoded into
// reply (which must be a pointer). A Transport must be safe for
// concurrent Call.
type Transport interface {
	Call(addr, method string, args, reply any) error
}

// TransportError marks a failure of the transport itself — a refused
// connection, a dropped request or reply, a partition. The remote
// handler may or may not have executed, so only idempotent operations
// should retry on it. Errors returned by the remote handler never
// carry this type.
type TransportError struct{ Err error }

func (e *TransportError) Error() string { return e.Err.Error() }

func (e *TransportError) Unwrap() error { return e.Err }

func transportErrorf(format string, args ...any) error {
	return &TransportError{Err: fmt.Errorf(format, args...)}
}

// IsTransportError reports whether err is (or wraps) a transport-level
// failure, as opposed to an error the remote handler returned.
func IsTransportError(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// handler is the type-erased form a registered method: gob request body
// in, gob reply body out.
type handler func(body []byte) ([]byte, error)

// Server dispatches decoded requests to registered method handlers.
// One Server backs one service address (a jobtracker or a worker).
type Server struct {
	mu       sync.RWMutex
	handlers map[string]handler
	// reg, when set via Instrument, receives per-method counters,
	// latency and payload-size histograms for every dispatch.
	reg *obs.Registry
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]handler)}
}

// Handle registers a typed method on the server. The wrapper owns all
// gob plumbing, so services are written against concrete args/reply
// structs. Registering a duplicate method panics.
func Handle[A, R any](s *Server, method string, fn func(*A) (*R, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: method %q registered twice", method))
	}
	s.handlers[method] = func(body []byte) ([]byte, error) {
		var args A
		if err := decode(body, &args); err != nil {
			return nil, fmt.Errorf("rpc: %s: bad request: %v", method, err)
		}
		reply, err := fn(&args)
		if err != nil {
			return nil, err
		}
		return encode(reply)
	}
}

// dispatch runs one request through the matching handler.
func (s *Server) dispatch(method string, body []byte) ([]byte, error) {
	s.mu.RLock()
	h, ok := s.handlers[method]
	reg := s.reg
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rpc: unknown method %q", method)
	}
	if reg == nil {
		return h(body)
	}
	start := time.Now()
	out, err := h(body)
	s.observe(reg, method, len(body), len(out), err, time.Since(start))
	return out, err
}

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
