// Observability-plane tests: client/server RPC telemetry staying sane
// under an unreliable fabric, the heartbeat metrics federation applying
// snapshots exactly once under duplicated and reordered deliveries, and
// the clock-offset estimation aligning worker-side trace spans with the
// driver's timeline. CI runs this package with -race -count=2.
package rpc_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/rpc"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
)

// EchoArgs/EchoReply are the drill payloads (exported fields for gob).
type EchoArgs struct{ Payload []byte }
type EchoReply struct{ Payload []byte }

// metricValue finds one point by name and label subset; missing → 0.
func metricValue(points []obs.MetricPoint, name string, labels map[string]string) int64 {
	for _, p := range points {
		if p.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if p.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return p.Value
		}
	}
	return 0
}

// metricCount returns a histogram point's observation count.
func metricCount(points []obs.MetricPoint, name string, labels map[string]string) uint64 {
	for _, p := range points {
		if p.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if p.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return p.Count
		}
	}
	return 0
}

// metricSum adds every point of a name matching the label subset.
func metricSum(points []obs.MetricPoint, name string, labels map[string]string) int64 {
	var total int64
	for _, p := range points {
		if p.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if p.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			total += p.Value
		}
	}
	return total
}

// TestRPCTelemetryUnderFaults hammers an instrumented transport through
// an Unreliable wrapper with concurrent callers and checks the counters
// add up exactly: every call lands in exactly one status bucket, the
// server-side tally equals deliveries (calls − dropped requests +
// duplicates), and the in-flight gauge returns to zero.
func TestRPCTelemetryUnderFaults(t *testing.T) {
	srv := rpc.NewServer()
	rpc.Handle(srv, "test.echo", func(a *EchoArgs) (*EchoReply, error) {
		return &EchoReply{Payload: a.Payload}, nil
	})
	rpc.Handle(srv, "test.fail", func(a *EchoArgs) (*EchoReply, error) {
		return nil, fmt.Errorf("handler says no")
	})
	serverReg := obs.NewRegistry()
	srv.Instrument(serverReg)
	n := rpc.NewMemNetwork()
	n.Bind("svc", srv)

	u := rpc.NewUnreliable(n, 42)
	u.DropRequests(0.3)
	u.Duplicate(0.3)
	clientReg := obs.NewRegistry()
	tr := rpc.Instrument(u, clientReg)

	const callers, each = 8, 50
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			payload := []byte(strings.Repeat("x", 100+id))
			for i := 0; i < each; i++ {
				var reply EchoReply
				_ = tr.Call("svc", "test.echo", &EchoArgs{Payload: payload}, &reply)
			}
		}(c)
	}
	wg.Wait()

	const total = callers * each
	droppedReq, _, duplicated := u.Stats()
	cp := clientReg.Snapshot()
	okN := metricValue(cp, "rpc_client_calls_total", map[string]string{"method": "test.echo", "status": "ok"})
	transportN := metricValue(cp, "rpc_client_calls_total", map[string]string{"method": "test.echo", "status": "transport"})
	errorN := metricValue(cp, "rpc_client_calls_total", map[string]string{"method": "test.echo", "status": "error"})
	if okN+transportN+errorN != total {
		t.Fatalf("client statuses ok=%d transport=%d error=%d, sum != %d calls", okN, transportN, errorN, total)
	}
	if transportN != droppedReq {
		t.Errorf("transport-status calls = %d, dropped requests = %d", transportN, droppedReq)
	}
	if errorN != 0 {
		t.Errorf("error-status calls = %d on an always-ok handler", errorN)
	}
	if v := metricValue(cp, "rpc_client_in_flight", nil); v != 0 {
		t.Errorf("rpc_client_in_flight = %d after all calls returned", v)
	}
	if c := metricCount(cp, "rpc_client_latency_seconds", map[string]string{"method": "test.echo"}); c != total {
		t.Errorf("client latency observations = %d, want %d", c, total)
	}

	sp := serverReg.Snapshot()
	handled := metricValue(sp, "rpc_server_handled_total", map[string]string{"method": "test.echo", "status": "ok"})
	wantHandled := int64(total) - droppedReq + duplicated
	if handled != wantHandled {
		t.Fatalf("server handled %d, want %d (= %d calls - %d dropped + %d duplicated)",
			handled, wantHandled, total, droppedReq, duplicated)
	}
	if c := metricCount(sp, "rpc_server_request_bytes", map[string]string{"method": "test.echo"}); int64(c) != wantHandled {
		t.Errorf("request-size observations = %d, want %d", c, wantHandled)
	}
	if c := metricCount(sp, "rpc_server_reply_bytes", map[string]string{"method": "test.echo"}); int64(c) != wantHandled {
		t.Errorf("reply-size observations = %d, want %d", c, wantHandled)
	}

	// Handler errors (not transport faults) land in the "error" bucket
	// on both sides; the reply-size histogram records successes only.
	clean := rpc.Instrument(n, clientReg)
	for i := 0; i < 7; i++ {
		var reply EchoReply
		if err := clean.Call("svc", "test.fail", &EchoArgs{}, &reply); err == nil || rpc.IsTransportError(err) {
			t.Fatalf("test.fail: err = %v, want a non-transport handler error", err)
		}
	}
	cp = clientReg.Snapshot()
	if v := metricValue(cp, "rpc_client_calls_total", map[string]string{"method": "test.fail", "status": "error"}); v != 7 {
		t.Errorf("client error-status calls = %d, want 7", v)
	}
	sp = serverReg.Snapshot()
	if v := metricValue(sp, "rpc_server_handled_total", map[string]string{"method": "test.fail", "status": "error"}); v != 7 {
		t.Errorf("server error-status handled = %d, want 7", v)
	}
	if c := metricCount(sp, "rpc_server_reply_bytes", map[string]string{"method": "test.fail"}); c != 0 {
		t.Errorf("reply sizes recorded for failed handlers: %d", c)
	}
}

// TestFederationApplySemantics drills the (epoch, seq) acceptance rule:
// duplicates and reordered deliveries are dropped and counted, a higher
// seq in the same epoch wins, and a new epoch (worker restart)
// supersedes any seq of the old incarnation.
func TestFederationApplySemantics(t *testing.T) {
	pts := func(v int64) []obs.MetricPoint {
		return []obs.MetricPoint{{
			Name: "worker_tasks_total", Type: "counter",
			Labels: map[string]string{"status": "succeeded"}, Value: v,
		}}
	}
	f := rpc.NewFederation()
	if f.Apply("", 1, 1, pts(1)) {
		t.Fatal("accepted a snapshot without a worker ID")
	}
	steps := []struct {
		epoch int64
		seq   uint64
		v     int64
		want  bool
	}{
		{100, 1, 5, true},
		{100, 1, 5, false}, // duplicated heartbeat
		{100, 0, 3, false}, // reordered (older seq)
		{100, 2, 7, true},
		{99, 9, 9, false}, // older epoch, any seq
		{101, 1, 2, true}, // restart: fresh epoch supersedes
	}
	for i, s := range steps {
		if got := f.Apply("w1", s.epoch, s.seq, pts(s.v)); got != s.want {
			t.Fatalf("step %d (epoch=%d seq=%d): accepted=%v, want %v", i, s.epoch, s.seq, got, s.want)
		}
	}
	if d := f.StaleDrops(); d != 3 {
		t.Errorf("stale drops = %d, want 3", d)
	}
	if !f.Apply("w2", 50, 1, pts(4)) {
		t.Fatal("fresh worker snapshot rejected")
	}
	if got := fmt.Sprint(f.Workers()); got != "[w1 w2]" {
		t.Errorf("workers = %s", got)
	}

	snap := f.Snapshot()
	if v := metricValue(snap, "worker_tasks_total", map[string]string{"worker": "w1"}); v != 2 {
		t.Errorf("w1 federated value = %d, want 2 (last accepted write)", v)
	}
	if v := metricValue(snap, "worker_tasks_total", map[string]string{"worker": "w2"}); v != 4 {
		t.Errorf("w2 federated value = %d, want 4", v)
	}
	if v := metricValue(snap, "worker_tasks_total", map[string]string{"worker": "all"}); v != 6 {
		t.Errorf("aggregate value = %d, want 6", v)
	}
}

// TestMetricsFederationUnderUnreliableHeartbeats is the end-to-end
// exactly-once drill: every worker's uplink duplicates 100% of its
// calls and drops a fifth of the replies, a real job runs through, and
// the jobtracker's federated view must still converge to each worker's
// true counters — never double-counted by the duplicated heartbeats —
// with the busy-slot gauge settling back to the last written value (0)
// and the duplicate deliveries visible as stale drops.
func TestMetricsFederationUnderUnreliableHeartbeats(t *testing.T) {
	c, fs := newTopology(t, 256)
	seedWordInput(t, fs, 60)
	var mu sync.Mutex
	unrel := make(map[string]*rpc.Unreliable)
	b := startBackend(t, c, fs, backendOpts{
		heartbeat: 20 * time.Millisecond,
		workerTransport: func(node string, inner rpc.Transport) rpc.Transport {
			u := rpc.NewUnreliable(inner, int64(len(unrel))*31+11)
			u.Duplicate(1.0)
			u.DropReplies(0.2)
			mu.Lock()
			unrel[node] = u
			mu.Unlock()
			return u
		},
	})
	if _, err := b.engine(c, fs).Run(wordCountJob(true)); err != nil {
		t.Fatalf("job under duplicated heartbeats: %v", err)
	}

	// The federated view trails the workers by up to one beat; poll
	// until it matches each worker's ground truth exactly.
	fed := b.jt.Federation()
	nodes := c.Nodes()
	deadline := time.Now().Add(10 * time.Second)
	for {
		converged := true
		var lag string
		for i, w := range b.workers {
			pts := fed.Worker(nodes[i].ID)
			tasks := metricSum(pts, "worker_tasks_total", nil)
			busy := metricValue(pts, "worker_busy_slots", nil)
			if tasks != w.TasksRun() || busy != 0 {
				converged = false
				lag = fmt.Sprintf("%s: federated tasks=%d busy=%d, worker ran %d",
					nodes[i].ID, tasks, busy, w.TasksRun())
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federation never converged: %s", lag)
		}
		time.Sleep(25 * time.Millisecond)
	}

	var totalRun int64
	for _, w := range b.workers {
		totalRun += w.TasksRun()
	}
	snap := fed.Snapshot()
	if agg := metricSum(snap, "worker_tasks_total", map[string]string{"worker": "all"}); agg != totalRun {
		t.Errorf("aggregate worker_tasks_total = %d, want %d", agg, totalRun)
	}
	if drops := fed.StaleDrops(); drops == 0 {
		t.Error("no stale drops despite 100% duplicated heartbeats")
	}

	// The jobtracker's merged snapshot carries all three planes: its
	// own RPC telemetry, synthesized cluster gauges, federated series.
	merged := b.jt.MetricsSnapshot()
	if v := metricSum(merged, "rpc_server_handled_total", map[string]string{"method": "jt.heartbeat", "status": "ok"}); v == 0 {
		t.Error("merged snapshot missing jobtracker-side rpc_server_handled_total")
	}
	if v := metricValue(merged, "cluster_workers", nil); v != int64(len(nodes)) {
		t.Errorf("cluster_workers = %d, want %d", v, len(nodes))
	}
	if v := metricSum(merged, "worker_tasks_total", map[string]string{"worker": "all"}); v != totalRun {
		t.Errorf("merged federated aggregate = %d, want %d", v, totalRun)
	}
}

// TestClockOffsetCorrectionAlignsTraces runs every worker on a clock
// skewed 1.5s into the future and checks (1) the heartbeat RTT-midpoint
// estimator converges on ≈ −1.5s, (2) the jobtracker's corrected
// worker-side exec spans land inside their driver-observed attempts —
// uncorrected they would float a full 1.5s outside — and (3) the trace
// analyzer attributes RPC and coordination overhead from the rpc/exec
// child spans.
func TestClockOffsetCorrectionAlignsTraces(t *testing.T) {
	const skew = 1500 * time.Millisecond
	c, fs := newTopology(t, 256)
	seedWordInput(t, fs, 60)
	collector := obstrace.NewCollector(nil, 0)
	reg := obs.NewRegistry()
	bus := obs.NewBus(obs.NewMetricsSink(reg), collector)
	b := startBackend(t, c, fs, backendOpts{
		heartbeat: 20 * time.Millisecond,
		jtConfig: func(cfg *rpc.JobtrackerConfig) {
			cfg.Obs = bus
			cfg.Registry = reg
		},
		workerConfig: func(node string, cfg *rpc.WorkerConfig) {
			cfg.ClockSkew = skew
		},
	})

	// Wait for every worker's offset estimate: about −skew, within a
	// generous 300ms (MemNetwork RTTs are microseconds, so the real
	// estimation error is tiny against the 1500ms signal).
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := b.jt.ClusterState()
		good := 0
		for _, w := range st.Workers {
			if w.HasClockOffset && w.ClockOffsetMs > -1800 && w.ClockOffsetMs < -1200 {
				good++
			}
		}
		if good == len(c.Nodes()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clock offsets never converged: %+v", st.Workers)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, w := range b.workers {
		off, ok := w.ClockOffset()
		if !ok || off > -1200*time.Millisecond || off < -1800*time.Millisecond {
			t.Fatalf("worker-side offset = %v (known=%v), want ≈ -1.5s", off, ok)
		}
	}

	eng := mapreduce.NewEngine(c, fs, mapreduce.Options{Executor: b.jt.Executor(), Obs: bus})
	if _, err := eng.Run(wordCountJob(true)); err != nil {
		t.Fatalf("job: %v", err)
	}
	trees := collector.Finished()
	if len(trees) == 0 {
		t.Fatal("collector finished no trees")
	}
	tree := trees[len(trees)-1]

	const slackUs = 500_000 // ms-scale RPC latency, vs the 1.5s skew
	var execs, rpcs int
	tree.Root.Walk(func(s *obstrace.Span) {
		if s.Kind != obstrace.KindAttempt {
			return
		}
		for _, child := range s.Children {
			switch child.Kind {
			case obstrace.KindExec:
				execs++
				if child.StartUs < s.StartUs-slackUs || child.EndUs > s.EndUs+slackUs {
					t.Errorf("exec span %s/%d on %s [%d,%d]us outside attempt [%d,%d]us: clock correction failed",
						child.Name, child.Attempt, child.Node, child.StartUs, child.EndUs, s.StartUs, s.EndUs)
				}
			case obstrace.KindRPC:
				rpcs++
			}
		}
	})
	if execs == 0 || rpcs == 0 {
		t.Fatalf("tree has %d exec and %d rpc child spans, want both > 0", execs, rpcs)
	}

	a := obstrace.AnalyzeTree(tree, obstrace.Options{})
	if len(a.Jobs) == 0 {
		t.Fatal("analysis found no jobs")
	}
	ja := a.Jobs[0]
	if ja.RPC == nil {
		t.Fatal("analysis has no RPC overhead report despite remote attempts")
	}
	if ja.RPC.RemoteAttempts == 0 || ja.RPC.RPCUs <= 0 || ja.RPC.ExecUs <= 0 {
		t.Fatalf("rpc report = %+v, want positive attempts/rpc/exec", ja.RPC)
	}
	if ja.RPC.CoordUs < 0 || ja.RPC.PathCoordUs < 0 {
		t.Fatalf("negative coordination overhead: %+v", ja.RPC)
	}

	data, err := obstrace.EncodeChrome(tree)
	if err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if _, err := obstrace.DecodeChrome(data); err != nil {
		t.Fatalf("chrome export fails its own schema: %v", err)
	}
	out := string(data)
	for _, want := range []string{"(worker)", `"rpc `, `"exec `} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %q", want)
		}
	}

	st := b.jt.ClusterState()
	if len(st.Workers) != len(c.Nodes()) {
		t.Fatalf("cluster state has %d workers, want %d", len(st.Workers), len(c.Nodes()))
	}
	table := rpc.RenderClusterTable(st)
	for _, n := range c.Nodes() {
		if !strings.Contains(table, n.ID) {
			t.Errorf("cluster table missing %s:\n%s", n.ID, table)
		}
	}
}
