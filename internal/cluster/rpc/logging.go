package rpc

import (
	"io"
	"log/slog"
)

// orNopLogger returns log unchanged, or a logger that discards
// everything when log is nil — so jobtracker/worker code can log
// unconditionally. (slog.New requires a handler; a level above Error
// on a discard writer drops every record before formatting.)
func orNopLogger(log *slog.Logger) *slog.Logger {
	if log != nil {
		return log
	}
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}
