package rpc

import (
	"time"

	"repro/internal/obs"
)

// payloadBuckets ladder RPC body sizes from control-plane acks (tens
// of bytes) to multi-megabyte DFS chunk transfers.
var payloadBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// rpcLatencyBuckets extend the default ladder downward: MemNetwork
// round trips are microseconds, TCP loopback tens of microseconds.
var rpcLatencyBuckets = []float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5,
}

// instrumented is the client-side telemetry middleware around a
// Transport. Every call is counted by method and outcome
// ("ok" | "error" for handler-returned errors | "transport" for
// fabric failures) and timed; a gauge tracks calls in flight.
type instrumented struct {
	inner    Transport
	reg      *obs.Registry
	inFlight *obs.Gauge
}

// Instrument wraps a Transport with client-side telemetry recorded
// into reg. A nil registry returns the transport unwrapped, so call
// sites can instrument unconditionally.
func Instrument(inner Transport, reg *obs.Registry) Transport {
	if reg == nil {
		return inner
	}
	return &instrumented{
		inner:    inner,
		reg:      reg,
		inFlight: reg.Gauge("rpc_client_in_flight", "RPCs currently awaiting a reply.", nil),
	}
}

// Call implements Transport.
func (t *instrumented) Call(addr, method string, args, reply any) error {
	t.inFlight.Add(1)
	start := time.Now()
	err := t.inner.Call(addr, method, args, reply)
	elapsed := time.Since(start)
	t.inFlight.Add(-1)
	status := "ok"
	switch {
	case err == nil:
	case IsTransportError(err):
		status = "transport"
	default:
		status = "error"
	}
	t.reg.Counter("rpc_client_calls_total",
		"Client RPCs by method and outcome (transport = fabric failure, error = remote handler error).",
		obs.Labels{"method": method, "status": status}).Inc()
	t.reg.Histogram("rpc_client_latency_seconds", "Client-observed RPC round-trip latency.",
		rpcLatencyBuckets, obs.Labels{"method": method}).Observe(elapsed.Seconds())
	return err
}

// Instrument attaches server-side telemetry: every dispatched request
// is counted by method and outcome, timed, and its exact request and
// reply body sizes recorded (the dispatcher sees raw gob bytes, so the
// sizes are wire-accurate). Call before serving; a nil registry
// disables the hooks.
func (s *Server) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	s.reg = reg
	s.mu.Unlock()
}

// observe records one dispatched request into the server's registry.
func (s *Server) observe(reg *obs.Registry, method string, reqBytes, replyBytes int, err error, elapsed time.Duration) {
	status := "ok"
	if err != nil {
		status = "error"
	}
	reg.Counter("rpc_server_handled_total", "Requests dispatched by the server, by method and outcome.",
		obs.Labels{"method": method, "status": status}).Inc()
	reg.Histogram("rpc_server_latency_seconds", "Server-side handler latency.",
		rpcLatencyBuckets, obs.Labels{"method": method}).Observe(elapsed.Seconds())
	reg.Histogram("rpc_server_request_bytes", "Gob-encoded request body sizes.",
		payloadBuckets, obs.Labels{"method": method}).Observe(float64(reqBytes))
	if err == nil {
		reg.Histogram("rpc_server_reply_bytes", "Gob-encoded reply body sizes.",
			payloadBuckets, obs.Labels{"method": method}).Observe(float64(replyBytes))
	}
}
