package rpc

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"time"
)

// Unreliable wraps a Transport with deterministic, seeded fault
// injection: dropped requests (the callee never runs), dropped replies
// (the callee runs but the caller sees an error — the path that breeds
// duplicate completions, because the caller retries an already-applied
// operation), duplicated deliveries, bounded random delays, and
// per-address partitions. Tests drive the knobs mid-run to model a
// network degrading under a running job.
type Unreliable struct {
	inner Transport

	mu          sync.Mutex
	rng         *rand.Rand
	dropReq     float64
	dropRep     float64
	duplicate   float64
	maxDelay    time.Duration
	partitioned map[string]bool

	// Observability for assertions: what the wrapper actually did.
	droppedRequests atomic.Int64
	droppedReplies  atomic.Int64
	duplicated      atomic.Int64
}

// NewUnreliable wraps inner with all faults off. The seed fixes the
// fault schedule, so a failing test replays exactly.
func NewUnreliable(inner Transport, seed int64) *Unreliable {
	return &Unreliable{
		inner:       inner,
		rng:         rand.New(rand.NewSource(seed)),
		partitioned: make(map[string]bool),
	}
}

// DropRequests sets the probability that a call is dropped before
// reaching the callee.
func (u *Unreliable) DropRequests(p float64) {
	u.mu.Lock()
	u.dropReq = p
	u.mu.Unlock()
}

// DropReplies sets the probability that a call executes but its reply
// is lost.
func (u *Unreliable) DropReplies(p float64) {
	u.mu.Lock()
	u.dropRep = p
	u.mu.Unlock()
}

// Duplicate sets the probability that a delivered call is delivered a
// second time (at-least-once delivery, the failure mode idempotent
// handlers exist for).
func (u *Unreliable) Duplicate(p float64) {
	u.mu.Lock()
	u.duplicate = p
	u.mu.Unlock()
}

// Delay sets the maximum uniform random delay added before each
// delivered call (0 disables).
func (u *Unreliable) Delay(d time.Duration) {
	u.mu.Lock()
	u.maxDelay = d
	u.mu.Unlock()
}

// Partition isolates (or, with false, heals) an address: every call to
// it fails immediately, as if the host dropped off the network.
// Heartbeats to a partitioned jobtracker fail the same way, so the
// loss detection fires on both sides.
func (u *Unreliable) Partition(addr string, cut bool) {
	u.mu.Lock()
	if cut {
		u.partitioned[addr] = true
	} else {
		delete(u.partitioned, addr)
	}
	u.mu.Unlock()
}

// Stats reports the faults injected so far.
func (u *Unreliable) Stats() (droppedRequests, droppedReplies, duplicated int64) {
	return u.droppedRequests.Load(), u.droppedReplies.Load(), u.duplicated.Load()
}

// Call implements Transport.
func (u *Unreliable) Call(addr, method string, args, reply any) error {
	u.mu.Lock()
	if u.partitioned[addr] {
		u.mu.Unlock()
		return transportErrorf("rpc: %s: network partition", addr)
	}
	dropReq := u.rng.Float64() < u.dropReq
	dropRep := u.rng.Float64() < u.dropRep
	dup := u.rng.Float64() < u.duplicate
	var delay time.Duration
	if u.maxDelay > 0 {
		delay = time.Duration(u.rng.Int63n(int64(u.maxDelay)))
	}
	u.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if dropReq {
		u.droppedRequests.Add(1)
		return transportErrorf("rpc: %s %s: request lost", addr, method)
	}
	err := u.inner.Call(addr, method, args, reply)
	if dup && err == nil {
		// Deliver again into a throwaway reply of the same type: the
		// callee sees the call twice, the caller keeps the first reply.
		u.duplicated.Add(1)
		spare := reflect.New(reflect.TypeOf(reply).Elem()).Interface()
		if derr := u.inner.Call(addr, method, args, spare); derr != nil {
			// The spare delivery failing is itself a fault worth seeing
			// in stats, but must not fail the original call.
			u.droppedRequests.Add(1)
		}
	}
	if err != nil {
		return err
	}
	if dropRep {
		u.droppedReplies.Add(1)
		return transportErrorf("rpc: %s %s: reply lost", addr, method)
	}
	return nil
}
