package rpc

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Federation merges per-worker metrics snapshots at the jobtracker.
//
// Workers piggyback their whole registry — as cumulative, not
// incremental, []obs.MetricPoint snapshots — on every heartbeat,
// stamped with a per-process Epoch (the worker's start time) and a
// per-beat Seq. Because snapshots are cumulative, merging is
// last-writer-wins per worker, which makes the protocol trivially
// idempotent: a duplicated heartbeat re-applies the same state, a
// reordered one is detected by (epoch, seq) and dropped, and a lost
// one costs nothing but staleness until the next beat lands. A worker
// restart bumps the epoch, so the fresh process's counters (reset to
// zero) supersede the old incarnation's instead of being mistaken for
// stale data.
type Federation struct {
	mu    sync.Mutex
	snaps map[string]*workerSnap // by worker node ID
	stale int64
}

// workerSnap is the newest accepted snapshot of one worker.
type workerSnap struct {
	epoch  int64
	seq    uint64
	points []obs.MetricPoint
}

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	return &Federation{snaps: make(map[string]*workerSnap)}
}

// Apply merges one worker snapshot, returning whether it was accepted.
// A snapshot is accepted when it is strictly newer than the stored one
// for that worker: a later epoch (worker restart), or the same epoch
// with a higher sequence number. Duplicates and reordered deliveries
// are counted and dropped — applying them would rewind gauges and
// histograms to an earlier state.
func (f *Federation) Apply(worker string, epoch int64, seq uint64, points []obs.MetricPoint) bool {
	if worker == "" {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur, ok := f.snaps[worker]
	if ok && (epoch < cur.epoch || (epoch == cur.epoch && seq <= cur.seq)) {
		f.stale++
		return false
	}
	f.snaps[worker] = &workerSnap{epoch: epoch, seq: seq, points: points}
	return true
}

// StaleDrops reports how many snapshots were rejected as duplicates or
// reordered deliveries — the observable proof of idempotency under an
// unreliable transport.
func (f *Federation) StaleDrops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stale
}

// Workers returns the IDs with a stored snapshot, sorted.
func (f *Federation) Workers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.snaps))
	for id := range f.snaps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Worker returns the newest accepted snapshot of one worker (nil if
// none).
func (f *Federation) Worker(id string) []obs.MetricPoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.snaps[id]
	if !ok {
		return nil
	}
	return append([]obs.MetricPoint(nil), s.points...)
}

// Snapshot renders the federated view: every worker's points labeled
// worker=<id>, followed by cross-worker aggregates labeled
// worker="all" (values, counts and sums summed; histogram buckets
// summed elementwise when the bucket ladders agree, dropped
// otherwise). The result is deterministic: sorted by name, then label
// set.
func (f *Federation) Snapshot() []obs.MetricPoint {
	f.mu.Lock()
	ids := make([]string, 0, len(f.snaps))
	for id := range f.snaps {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var out []obs.MetricPoint
	aggs := make(map[string]*obs.MetricPoint)
	var aggOrder []string
	for _, id := range ids {
		for _, p := range f.snaps[id].points {
			wp := p
			wp.Labels = withLabel(p.Labels, "worker", id)
			wp.Buckets = append([]obs.BucketPoint(nil), p.Buckets...)
			out = append(out, wp)

			key := pointKey(p)
			a, ok := aggs[key]
			if !ok {
				cp := p
				cp.Labels = withLabel(p.Labels, "worker", "all")
				cp.Buckets = append([]obs.BucketPoint(nil), p.Buckets...)
				aggs[key] = &cp
				aggOrder = append(aggOrder, key)
				continue
			}
			a.Value += p.Value
			a.FValue += p.FValue
			a.Count += p.Count
			a.Sum += p.Sum
			if sameBounds(a.Buckets, p.Buckets) {
				for i := range a.Buckets {
					a.Buckets[i].Cum += p.Buckets[i].Cum
				}
			} else {
				a.Buckets = nil
			}
		}
	}
	f.mu.Unlock()
	for _, key := range aggOrder {
		out = append(out, *aggs[key])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelsLess(out[i].Labels, out[j].Labels)
	})
	return out
}

// pointKey identifies a series across workers: name plus sorted labels.
func pointKey(p obs.MetricPoint) string {
	keys := make([]string, 0, len(p.Labels))
	for k := range p.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(p.Name)
	for _, k := range keys {
		sb.WriteByte('\x00')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(p.Labels[k])
	}
	return sb.String()
}

func labelsLess(a, b map[string]string) bool {
	return pointKey(obs.MetricPoint{Labels: a}) < pointKey(obs.MetricPoint{Labels: b})
}

// withLabel clones labels with one extra pair; the source map is never
// mutated (it is shared with the stored snapshot).
func withLabel(labels map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for lk, lv := range labels {
		out[lk] = lv
	}
	out[k] = v
	return out
}

// sameBounds reports whether two bucket lists share a ladder.
func sameBounds(a, b []obs.BucketPoint) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	for i := range a {
		if a[i].Le != b[i].Le {
			return false
		}
	}
	return true
}
