package rpc

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// Control-plane method args/replies.
type registerArgs struct {
	Node  string // cluster node ID this worker serves
	Addr  string // address the worker's own server is reachable at
	Slots int
}

type registerReply struct{}

type heartbeatArgs struct {
	Node string
	// Busy is how many of the worker's slots are executing a task.
	Busy int
	// SentUnixNano is the worker-clock send time of this beat.
	SentUnixNano int64
	// OffsetNanos is the worker's current EWMA estimate of its clock
	// offset relative to the jobtracker (jobtracker − worker), valid
	// when HasOffset is set. The jobtracker applies it to forwarded
	// event timestamps before trace assembly.
	OffsetNanos int64
	HasOffset   bool
	// Epoch (the worker's start time, UnixNano) and MetricsSeq (a
	// per-beat sequence number) version the Metrics snapshot so the
	// federation can drop duplicated or reordered deliveries; Metrics
	// is the worker's whole registry as a cumulative snapshot.
	Epoch      int64
	MetricsSeq uint64
	Metrics    []obs.MetricPoint
}

type heartbeatReply struct {
	// Registered is false when the jobtracker does not know this
	// worker (it was declared lost, or the jobtracker restarted). The
	// worker fence-stops on seeing it: a deregistered worker must not
	// keep executing tasks the scheduler has already re-run elsewhere.
	Registered bool
	// ServerUnixNano is the jobtracker-clock handling time of the beat —
	// the raw material of the worker's RTT-midpoint offset estimate.
	ServerUnixNano int64
}

type completeArgs struct {
	Job     string
	TaskID  string
	Attempt int
	Node    string
	Err     string
	Res     resultWire
}

// resultWire mirrors the gob-safe face of mapreduce.TaskResult.
// TaskResult itself carries unexported local* fields (the in-process
// fast path); shipping it whole would gob-drop them silently, so the
// wire form makes the boundary explicit: only these fields cross.
type resultWire struct {
	Records      int64
	MapRuns      [][]mapreduce.RunDesc
	OutFile      string
	Stats        mapreduce.TaskStats
	UserCounters map[string]map[string]int64
}

func toResultWire(r mapreduce.TaskResult) resultWire {
	return resultWire{
		Records: r.Records, MapRuns: r.MapRuns, OutFile: r.OutFile,
		Stats: r.Stats, UserCounters: r.UserCounters,
	}
}

func (r resultWire) taskResult() mapreduce.TaskResult {
	return mapreduce.TaskResult{
		Records: r.Records, MapRuns: r.MapRuns, OutFile: r.OutFile,
		Stats: r.Stats, UserCounters: r.UserCounters,
	}
}

type completeReply struct{}

type eventsArgs struct {
	Events []obs.Event
}

type eventsReply struct{}

// remoteWorker is the jobtracker's view of one registered worker.
type remoteWorker struct {
	node     string
	addr     string
	slots    int
	lastBeat time.Time
	joined   time.Time
	busy     int // slots executing, from the latest heartbeat
	// tasksDone/tasksFailed tally completion reports delivered to a
	// waiting RunTask (duplicates and abandoned attempts excluded).
	tasksDone   int64
	tasksFailed int64
	// lost is closed exactly once, when the worker is declared lost;
	// every in-flight RunTask waiting on this worker unblocks and the
	// scheduler retries on another node.
	lost chan struct{}
}

// lostRecord remembers a departed worker for the cluster view; a
// re-registration of the same node clears it.
type lostRecord struct {
	node   string
	addr   string
	reason string
	at     time.Time
}

// completion is a finished attempt's report, forwarded to the RunTask
// call that assigned it.
type completion struct {
	res    mapreduce.TaskResult
	errMsg string
}

// JobtrackerConfig configures NewJobtracker.
type JobtrackerConfig struct {
	Cluster *cluster.Cluster
	FS      *dfs.FileSystem
	// Obs receives membership events and forwarded worker events
	// (may be nil).
	Obs *obs.Bus
	// Transport is how the jobtracker reaches workers (assignments and
	// shutdowns) — typically the same network the workers use to reach
	// it.
	Transport Transport
	// HeartbeatGrace is how long a worker may go silent before being
	// declared lost (default 2s). The monitor checks at grace/4.
	HeartbeatGrace time.Duration
	// Registry receives the jobtracker's own telemetry: client- and
	// server-side RPC counters, latencies and payload sizes. One is
	// created when nil; either way the transport and server are
	// instrumented unconditionally.
	Registry *obs.Registry
	// Logger receives structured runtime logs (nil discards them).
	Logger *slog.Logger
}

// Jobtracker is the driver-side service of the out-of-process backend.
// It owns worker membership (registration, heartbeats, loss detection),
// serves the DFS to workers, and exposes an Executor the engine's
// scheduler drives exactly like the in-process one.
//
// Creating a jobtracker marks every cluster node dead: a node is only
// schedulable once a live worker process registers for it (and
// cluster.Restart brings it back). The cluster's Kill hook feeds back
// in: killing a node — from a test, or from the heartbeat monitor —
// declares its worker lost and unblocks every attempt assigned there.
type Jobtracker struct {
	cluster *cluster.Cluster
	fs      *dfs.FileSystem
	bus     *obs.Bus
	tr      Transport
	grace   time.Duration
	srv     *Server
	reg     *obs.Registry
	fed     *Federation
	log     *slog.Logger
	started time.Time

	mu      sync.Mutex
	workers map[string]*remoteWorker // by node ID
	lost    []lostRecord             // departed workers, for the cluster view
	offsets map[string]int64         // worker clock offsets (nanos), kept past loss
	pending map[string]*pendingCall  // by job|task|attempt
	stopped bool

	dupCompletions atomic.Int64
	dupDFSCreates  atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

type pendingCall struct {
	ch   chan completion // buffered(1); at most one send wins
	node string          // placement, for the in-flight-per-worker view
}

// NewJobtracker creates the service and starts its heartbeat monitor.
// Bind its Server() on the network before starting workers.
func NewJobtracker(cfg JobtrackerConfig) *Jobtracker {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	jt := &Jobtracker{
		cluster: cfg.Cluster,
		fs:      cfg.FS,
		bus:     cfg.Obs,
		tr:      Instrument(cfg.Transport, reg),
		grace:   cfg.HeartbeatGrace,
		srv:     NewServer(),
		reg:     reg,
		fed:     NewFederation(),
		log:     orNopLogger(cfg.Logger),
		started: time.Now(),
		workers: make(map[string]*remoteWorker),
		offsets: make(map[string]int64),
		pending: make(map[string]*pendingCall),
		stop:    make(chan struct{}),
	}
	jt.srv.Instrument(reg)
	if jt.grace <= 0 {
		jt.grace = 2 * time.Second
	}
	// No worker process, no schedulable node. Nodes come back alive as
	// workers register for them.
	for _, n := range cfg.Cluster.Nodes() {
		cfg.Cluster.Kill(n.ID)
	}
	// From here on, a cluster-level kill (tests modelling node loss,
	// or our own heartbeat monitor) takes the worker down with it.
	cfg.Cluster.OnKill(func(id string) { jt.loseWorker(id, "node killed") })

	Handle(jt.srv, "jt.register", jt.handleRegister)
	Handle(jt.srv, "jt.heartbeat", jt.handleHeartbeat)
	Handle(jt.srv, "jt.complete", jt.handleComplete)
	Handle(jt.srv, "jt.events", jt.handleEvents)
	Handle(jt.srv, "dfs.create", jt.handleDFSCreate)
	Handle(jt.srv, "dfs.read", jt.handleDFSRead)
	Handle(jt.srv, "dfs.size", jt.handleDFSSize)

	jt.wg.Add(1)
	go jt.monitor()
	return jt
}

// Server returns the service's RPC surface, for binding on a network
// (MemNetwork.Bind, or Serve over a TCP listener).
func (jt *Jobtracker) Server() *Server { return jt.srv }

// Executor returns the engine-facing executor: plug it into
// mapreduce.Options.Executor and every task attempt runs on a
// registered worker process.
func (jt *Jobtracker) Executor() mapreduce.Executor { return &rpcExecutor{jt: jt} }

// DupCompletions reports how many task completions arrived for
// attempts nobody was waiting on — duplicate deliveries, retried
// reports whose first copy already landed, or completions of abandoned
// attempts. The handler acks them all; this counter is how tests see
// the idempotency path actually taken.
func (jt *Jobtracker) DupCompletions() int64 { return jt.dupCompletions.Load() }

// DupDFSCreates reports how many dfs.create calls were acked as
// byte-identical duplicate deliveries instead of performed.
func (jt *Jobtracker) DupDFSCreates() int64 { return jt.dupDFSCreates.Load() }

// Registry returns the jobtracker's own telemetry registry.
func (jt *Jobtracker) Registry() *obs.Registry { return jt.reg }

// Federation returns the merged per-worker metrics view.
func (jt *Jobtracker) Federation() *Federation { return jt.fed }

// MetricsSnapshot returns the whole cluster's metrics as one flat
// list: the jobtracker's own registry, synthesized cluster-membership
// points, and every federated worker snapshot (worker-labeled plus
// worker="all" aggregates). Render it with obs.WriteMetricPoints or
// serve it as JSON.
func (jt *Jobtracker) MetricsSnapshot() []obs.MetricPoint {
	out := jt.reg.Snapshot()
	out = append(out, jt.clusterPoints()...)
	out = append(out, jt.fed.Snapshot()...)
	return out
}

// clusterPoints synthesizes membership and fault-path metrics that
// live in jobtracker state rather than any registry: worker counts,
// heartbeat ages, clock offsets, busy slots, and the
// idempotency-path counters (duplicate completions, duplicate DFS
// creates, stale federation drops).
func (jt *Jobtracker) clusterPoints() []obs.MetricPoint {
	now := time.Now()
	jt.mu.Lock()
	ids := make([]string, 0, len(jt.workers))
	for id := range jt.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	points := []obs.MetricPoint{
		{Name: "cluster_workers", Type: "gauge", Value: int64(len(jt.workers))},
	}
	for _, id := range ids {
		w := jt.workers[id]
		lbl := map[string]string{"worker": id}
		points = append(points,
			obs.MetricPoint{Name: "cluster_worker_heartbeat_age_seconds", Type: "gauge", Labels: lbl, FValue: now.Sub(w.lastBeat).Seconds()},
			obs.MetricPoint{Name: "cluster_worker_slots_busy", Type: "gauge", Labels: lbl, Value: int64(w.busy)},
		)
		if off, ok := jt.offsets[id]; ok {
			points = append(points, obs.MetricPoint{
				Name: "cluster_worker_clock_offset_seconds", Type: "gauge", Labels: lbl, FValue: time.Duration(off).Seconds(),
			})
		}
	}
	lostTotal := int64(len(jt.lost))
	jt.mu.Unlock()
	points = append(points,
		obs.MetricPoint{Name: "cluster_workers_lost", Type: "gauge", Value: lostTotal},
		obs.MetricPoint{Name: "cluster_dup_completions_total", Type: "counter", Value: jt.dupCompletions.Load()},
		obs.MetricPoint{Name: "cluster_dfs_dup_creates_total", Type: "counter", Value: jt.dupDFSCreates.Load()},
		obs.MetricPoint{Name: "cluster_fed_stale_drops_total", Type: "counter", Value: jt.fed.StaleDrops()},
	)
	return points
}

// Workers returns the currently registered worker node IDs.
func (jt *Jobtracker) Workers() []string {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	out := make([]string, 0, len(jt.workers))
	for id := range jt.workers {
		out = append(out, id)
	}
	return out
}

// WaitForWorkers blocks until n workers are registered, the timeout
// expires, or the jobtracker is stopped.
func (jt *Jobtracker) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		jt.mu.Lock()
		cur := len(jt.workers)
		jt.mu.Unlock()
		if cur >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rpc: %d/%d workers registered after %v", cur, n, timeout)
		}
		select {
		case <-jt.stop:
			return fmt.Errorf("rpc: jobtracker stopped while waiting for workers (%d/%d registered)", cur, n)
		case <-tick.C:
		}
	}
}

// Stop halts the heartbeat monitor. It does not shut workers down —
// call ShutdownWorkers first for a clean teardown.
func (jt *Jobtracker) Stop() {
	jt.mu.Lock()
	if jt.stopped {
		jt.mu.Unlock()
		return
	}
	jt.stopped = true
	jt.mu.Unlock()
	close(jt.stop)
	jt.wg.Wait()
}

// ShutdownWorkers asks every registered worker to exit (best-effort —
// a worker that lost the network exits via its own heartbeat fence).
func (jt *Jobtracker) ShutdownWorkers() {
	jt.mu.Lock()
	addrs := make([]string, 0, len(jt.workers))
	for _, w := range jt.workers {
		addrs = append(addrs, w.addr)
	}
	jt.mu.Unlock()
	for _, addr := range addrs {
		var reply shutdownReply
		if err := jt.tr.Call(addr, "worker.shutdown", &shutdownArgs{}, &reply); err != nil {
			// Unreachable worker: its heartbeat fence will stop it.
			continue
		}
	}
}

// monitor declares workers lost when their heartbeats stop for the
// grace period, then kills their cluster node so the scheduler stops
// placing work there — the Hadoop jobtracker's expiry thread.
func (jt *Jobtracker) monitor() {
	defer jt.wg.Done()
	tick := time.NewTicker(jt.grace / 4)
	defer tick.Stop()
	for {
		select {
		case <-jt.stop:
			return
		case now := <-tick.C:
			var expired []string
			jt.mu.Lock()
			for id, w := range jt.workers {
				if now.Sub(w.lastBeat) > jt.grace {
					expired = append(expired, id)
				}
			}
			jt.mu.Unlock()
			for _, id := range expired {
				jt.loseWorker(id, "heartbeat timeout")
				// Kill the modelled node too (its hook no-ops: the
				// worker is already gone).
				jt.cluster.Kill(id)
			}
		}
	}
}

// loseWorker removes a worker from membership and unblocks everything
// waiting on it. Idempotent: losing an unknown worker is a no-op, so
// the kill-hook path and the heartbeat path can race safely.
func (jt *Jobtracker) loseWorker(id, reason string) {
	jt.mu.Lock()
	w, ok := jt.workers[id]
	if !ok {
		jt.mu.Unlock()
		return
	}
	delete(jt.workers, id)
	jt.lost = append(jt.lost, lostRecord{node: id, addr: w.addr, reason: reason, at: time.Now()})
	jt.mu.Unlock()
	close(w.lost)
	jt.log.Warn("worker lost", "worker", id, "addr", w.addr, "reason", reason)
	jt.bus.Emit(obs.Event{Type: obs.WorkerLost, Node: id, Err: reason})
	// Best-effort fence: tell the process to stop if it is still
	// reachable (a killed node's process may be healthy — the model
	// killed it, not the OS).
	go func() {
		var reply shutdownReply
		if err := jt.tr.Call(w.addr, "worker.shutdown", &shutdownArgs{}, &reply); err != nil {
			return // already dead or partitioned; its heartbeat fence handles it
		}
	}()
}

func (jt *Jobtracker) handleRegister(a *registerArgs) (*registerReply, error) {
	if _, ok := jt.cluster.Node(a.Node); !ok {
		return nil, fmt.Errorf("rpc: register: unknown cluster node %q", a.Node)
	}
	if a.Slots <= 0 {
		return nil, fmt.Errorf("rpc: register %s: %d slots, want > 0", a.Node, a.Slots)
	}
	now := time.Now()
	w := &remoteWorker{
		node: a.Node, addr: a.Addr, slots: a.Slots,
		lastBeat: now, joined: now, lost: make(chan struct{}),
	}
	jt.mu.Lock()
	old := jt.workers[a.Node]
	jt.workers[a.Node] = w
	// A node coming back clears its tombstone in the lost list.
	kept := jt.lost[:0]
	for _, l := range jt.lost {
		if l.node != a.Node {
			kept = append(kept, l)
		}
	}
	jt.lost = kept
	jt.mu.Unlock()
	if old != nil {
		// A replacement registration (worker restart): attempts still
		// waiting on the old incarnation will never complete — fail
		// them so the scheduler reissues.
		close(old.lost)
	}
	jt.cluster.Restart(a.Node)
	jt.log.Info("worker registered", "worker", a.Node, "addr", a.Addr, "slots", a.Slots, "replaced", old != nil)
	jt.bus.Emit(obs.Event{Type: obs.WorkerJoined, Node: a.Node, Detail: fmt.Sprintf("addr=%s slots=%d", a.Addr, a.Slots)})
	return &registerReply{}, nil
}

func (jt *Jobtracker) handleHeartbeat(a *heartbeatArgs) (*heartbeatReply, error) {
	now := time.Now()
	jt.mu.Lock()
	w, ok := jt.workers[a.Node]
	if ok {
		w.lastBeat = now
		w.busy = a.Busy
	}
	if a.HasOffset {
		// Kept even after the worker is lost: events forwarded by a
		// dying worker still deserve correction.
		jt.offsets[a.Node] = a.OffsetNanos
	}
	jt.mu.Unlock()
	if a.Epoch != 0 {
		jt.fed.Apply(a.Node, a.Epoch, a.MetricsSeq, a.Metrics)
	}
	return &heartbeatReply{Registered: ok, ServerUnixNano: now.UnixNano()}, nil
}

func (jt *Jobtracker) handleComplete(a *completeArgs) (*completeReply, error) {
	key := attemptKey(a.Job, a.TaskID, a.Attempt)
	jt.mu.Lock()
	p, ok := jt.pending[key]
	if ok {
		delete(jt.pending, key)
	}
	jt.mu.Unlock()
	if !ok {
		// Nobody waiting: a duplicate delivery, a retried report whose
		// first copy landed, or an abandoned attempt. Idempotent ack —
		// re-erroring would make the worker retry forever.
		jt.dupCompletions.Add(1)
		jt.log.Debug("duplicate completion acked", "job", a.Job, "task", a.TaskID, "attempt", a.Attempt, "worker", a.Node)
		return &completeReply{}, nil
	}
	jt.mu.Lock()
	if w := jt.workers[a.Node]; w != nil {
		if a.Err != "" {
			w.tasksFailed++
		} else {
			w.tasksDone++
		}
	}
	jt.mu.Unlock()
	jt.log.Debug("attempt completed", "job", a.Job, "task", a.TaskID, "attempt", a.Attempt, "worker", a.Node, "err", a.Err)
	p.ch <- completion{res: a.Res.taskResult(), errMsg: a.Err} // buffered(1), sole sender
	return &completeReply{}, nil
}

func (jt *Jobtracker) handleEvents(a *eventsArgs) (*eventsReply, error) {
	for _, e := range a.Events {
		// Clock-align: a worker-stamped timestamp is on the worker's
		// clock; shift it by the worker's estimated offset so it lands
		// on the jobtracker timeline every other event uses.
		if e.Node != "" && !e.Time.IsZero() {
			jt.mu.Lock()
			off, ok := jt.offsets[e.Node]
			jt.mu.Unlock()
			if ok {
				e.Time = e.Time.Add(time.Duration(off))
			}
		}
		jt.bus.Emit(e)
	}
	return &eventsReply{}, nil
}

func (jt *Jobtracker) handleDFSCreate(a *dfsCreateArgs) (*dfsCreateReply, error) {
	if err := jt.fs.Create(a.Path, a.Data, a.Node); err != nil {
		// Idempotent-create rule: a path that already holds exactly
		// these bytes is a duplicate delivery (RemoteStore retrying a
		// create whose reply was lost, or a duplicated request), not a
		// conflict — worker-side paths are attempt-unique, so only a
		// re-delivery of the same write can collide with itself.
		if existing, rerr := jt.fs.ReadAll(a.Path); rerr == nil && bytes.Equal(existing, a.Data) {
			jt.dupDFSCreates.Add(1)
			return &dfsCreateReply{}, nil
		}
		return nil, err
	}
	return &dfsCreateReply{}, nil
}

func (jt *Jobtracker) handleDFSRead(a *dfsReadArgs) (*dfsReadReply, error) {
	data, err := jt.fs.ReadRange(a.Path, a.Off, a.Len)
	if err != nil {
		return nil, err
	}
	return &dfsReadReply{Data: data}, nil
}

func (jt *Jobtracker) handleDFSSize(a *dfsSizeArgs) (*dfsSizeReply, error) {
	size, err := jt.fs.Size(a.Path)
	if err != nil {
		return nil, err
	}
	return &dfsSizeReply{Size: size}, nil
}

func attemptKey(job, task string, attempt int) string {
	return fmt.Sprintf("%s|%s|%d", job, task, attempt)
}

// rpcExecutor bridges the scheduler to remote workers: RunTask ships
// the attempt to the worker registered for the placed node, then waits
// for its completion report, the worker's loss, or the phase ending.
type rpcExecutor struct {
	jt *Jobtracker
}

// External implements mapreduce.Executor: results live in the DFS, not
// driver memory, so the engine plans an all-file shuffle and commits by
// rename.
func (x *rpcExecutor) External() bool { return true }

// RunTask implements mapreduce.Executor.
func (x *rpcExecutor) RunTask(ctx context.Context, spec mapreduce.TaskSpec) (mapreduce.TaskResult, error) {
	jt := x.jt
	jt.mu.Lock()
	w := jt.workers[spec.Node]
	jt.mu.Unlock()
	if w == nil {
		return mapreduce.TaskResult{}, fmt.Errorf("rpc: no worker registered for node %s", spec.Node)
	}
	wire, err := spec.Job.Wire(spec.ShuffleBudget)
	if err != nil {
		return mapreduce.TaskResult{}, err
	}
	key := attemptKey(spec.Job.Name, spec.TaskID, spec.Attempt)
	p := &pendingCall{ch: make(chan completion, 1), node: spec.Node}
	jt.mu.Lock()
	jt.pending[key] = p
	jt.mu.Unlock()
	defer func() {
		// Withdraw the claim if still present; a completion arriving
		// after this counts as a duplicate and is acked idempotently.
		jt.mu.Lock()
		delete(jt.pending, key)
		jt.mu.Unlock()
	}()

	args := assignArgs{
		Job: wire, Phase: spec.Phase, TaskID: spec.TaskID, Index: spec.Index,
		Attempt: spec.Attempt, Node: spec.Node, MapOnly: spec.MapOnly,
		NumReducers: spec.NumReducers, ShuffleBudget: spec.ShuffleBudget,
		Split: spec.Split, Partition: spec.Partition, Runs: spec.Runs,
	}
	jt.log.Debug("assigning attempt", "job", spec.Job.Name, "task", spec.TaskID, "attempt", spec.Attempt, "worker", spec.Node)
	assigned := time.Now()
	var ack assignReply
	if err := jt.tr.Call(w.addr, "worker.assign", &args, &ack); err != nil {
		return mapreduce.TaskResult{}, fmt.Errorf("rpc: assign %s to %s: %v", spec.TaskID, spec.Node, err)
	}
	select {
	case c := <-p.ch:
		// The driver-observed assign→complete round trip; the worker's
		// own WorkerTaskDone event carries the execution time, and the
		// difference between the two is coordination overhead.
		jt.bus.Emit(obs.Event{
			Type: obs.RPCRoundTrip, Job: spec.Job.Name, Phase: spec.Phase,
			Task: spec.TaskID, Attempt: spec.Attempt, Node: spec.Node,
			Dur: time.Since(assigned), Err: c.errMsg,
		})
		if c.errMsg != "" {
			return mapreduce.TaskResult{}, fmt.Errorf("%s", c.errMsg)
		}
		return c.res, nil
	case <-w.lost:
		return mapreduce.TaskResult{}, fmt.Errorf("rpc: worker %s lost while running %s", spec.Node, spec.TaskID)
	case <-ctx.Done():
		// Phase over: a losing speculative attempt is abandoned, its
		// eventual completion acked as a duplicate.
		return mapreduce.TaskResult{}, ctx.Err()
	}
}
