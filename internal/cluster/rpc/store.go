package rpc

import (
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
)

// DFS method args/replies, served by the jobtracker (which owns the
// namenode-side *dfs.FileSystem) and called by workers through
// RemoteStore.
type dfsCreateArgs struct {
	Path string
	Data []byte
	Node string
}

type dfsCreateReply struct{}

type dfsReadArgs struct {
	Path string
	Off  int64
	Len  int64
}

type dfsReadReply struct {
	Data []byte
}

type dfsSizeArgs struct {
	Path string
}

type dfsSizeReply struct {
	Size int64
}

// RemoteStore implements dfs.Store over the wire: the worker's window
// onto the driver-side DFS. Spill runs stream through ranged reads, so
// a worker never holds more than a fetch window of a remote file.
type RemoteStore struct {
	tr      Transport
	addr    string       // jobtracker address
	retries *obs.Counter // set by Instrument; nil disables counting
}

var _ dfs.Store = (*RemoteStore)(nil)

// NewRemoteStore returns a Store proxying to the jobtracker at addr.
func NewRemoteStore(tr Transport, addr string) *RemoteStore {
	return &RemoteStore{tr: tr, addr: addr}
}

// Instrument counts DFS retry attempts into reg
// (rpc_store_retries_total). Call before the store is shared between
// goroutines; a nil registry is a no-op.
func (s *RemoteStore) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.retries = reg.Counter("rpc_store_retries_total", "DFS RPC retries after transient transport failures.", nil)
}

// storeRetries bounds the retry loop below. A task attempt makes
// hundreds of DFS calls (split reads, spill writes, merge fetches), so
// without retries even a small per-call drop rate makes every attempt
// fail; ten tries push the residual failure probability to negligible
// while keeping the worst-case added latency under ~300ms.
const storeRetries = 10

// call delivers one DFS RPC, retrying through transient transport
// failures. The DFS surface is idempotent — reads trivially, creates by
// the identical-content rule the jobtracker's handler applies — so
// at-least-once delivery is safe and a flaky network costs latency,
// not task attempts. Application errors (no such file, conflicting
// create) return immediately.
func (s *RemoteStore) call(method string, args, reply any) error {
	var err error
	for attempt := 0; attempt < storeRetries; attempt++ {
		if err = s.tr.Call(s.addr, method, args, reply); err == nil || !IsTransportError(err) {
			return err
		}
		if s.retries != nil {
			s.retries.Inc()
		}
		time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
	}
	return err
}

// Create implements dfs.Store.
func (s *RemoteStore) Create(path string, data []byte, localNode string) error {
	var reply dfsCreateReply
	return s.call("dfs.create", &dfsCreateArgs{Path: path, Data: data, Node: localNode}, &reply)
}

// ReadRange implements dfs.Store.
func (s *RemoteStore) ReadRange(path string, off, length int64) ([]byte, error) {
	var reply dfsReadReply
	if err := s.call("dfs.read", &dfsReadArgs{Path: path, Off: off, Len: length}, &reply); err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// Size implements dfs.Store.
func (s *RemoteStore) Size(path string) (int64, error) {
	var reply dfsSizeReply
	if err := s.call("dfs.size", &dfsSizeArgs{Path: path}, &reply); err != nil {
		return 0, err
	}
	return reply.Size, nil
}
