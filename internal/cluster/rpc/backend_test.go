// End-to-end tests of the out-of-process backend: the same jobs run
// once on the in-process executor and once through the jobtracker with
// real (goroutine-hosted) worker loops over a gob-encoding network, and
// the outputs must match byte for byte. The workers here are the exact
// Worker used by `gepeto worker`; only the transport is in-memory.
package rpc_test

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/rpc"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/mapreduce"
)

// Test job kinds, registered once per binary — the worker goroutines
// share this registry with the driver, exactly as a worker binary
// importing the same package would.
const (
	kindWordCount = "rpctest/wordcount"
	kindUpper     = "rpctest/upper-maponly"
)

func wcMap(ctx *mapreduce.TaskContext, _, value string, emit mapreduce.Emit) error {
	for _, w := range strings.Fields(value) {
		ctx.Counter("rpctest", "words").Inc(1)
		emit(w, "1")
	}
	return nil
}

func sumReduce(_ *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
	return nil
}

func upperMap(_ *mapreduce.TaskContext, _, value string, emit mapreduce.Emit) error {
	emit(strings.ToUpper(value), value)
	return nil
}

func init() {
	mapreduce.RegisterKind(kindWordCount, mapreduce.JobKind{
		NewMapper:   func() mapreduce.Mapper { return mapreduce.MapFunc(wcMap) },
		NewReducer:  func() mapreduce.Reducer { return mapreduce.ReduceFunc(sumReduce) },
		NewCombiner: func() mapreduce.Reducer { return mapreduce.ReduceFunc(sumReduce) },
	})
	mapreduce.RegisterKind(kindUpper, mapreduce.JobKind{
		NewMapper: func() mapreduce.Mapper { return mapreduce.MapFunc(upperMap) },
	})
}

// wordCountJob builds the job both backends run. The function fields
// matter only to the in-process run; the RPC run ships the Kind.
func wordCountJob(withCombiner bool) *mapreduce.Job {
	j := &mapreduce.Job{
		Name:        "rpc-wordcount",
		Kind:        kindWordCount,
		InputPaths:  []string{"in"},
		OutputPath:  "out",
		NewMapper:   func() mapreduce.Mapper { return mapreduce.MapFunc(wcMap) },
		NewReducer:  func() mapreduce.Reducer { return mapreduce.ReduceFunc(sumReduce) },
		NumReducers: 3,
	}
	if withCombiner {
		j.NewCombiner = func() mapreduce.Reducer { return mapreduce.ReduceFunc(sumReduce) }
	}
	return j
}

// newTopology builds one 3-node cluster + DFS; calling it twice yields
// bit-identical topologies, so an in-process and an RPC run see the
// same splits, placement and slot counts.
func newTopology(t *testing.T, chunk int64) (*cluster.Cluster, *dfs.FileSystem) {
	t.Helper()
	c, err := cluster.NewUniform(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Replication 3 on 3 nodes: every chunk survives any single node
	// loss, so kill drills never turn into data loss.
	fs, err := dfs.New(c, dfs.Config{ChunkSize: chunk, Replication: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c, fs
}

// backendOpts tunes the harness; zero values give a healthy cluster.
type backendOpts struct {
	grace        time.Duration // jobtracker heartbeat grace
	heartbeat    time.Duration // worker heartbeat period
	taskOverhead time.Duration // per-task sleep, to stretch runs for fault drills
	// jtTransport / workerTransport wrap the jobtracker's or one
	// worker's view of the network (e.g. in an Unreliable).
	jtTransport     func(inner rpc.Transport) rpc.Transport
	workerTransport func(node string, inner rpc.Transport) rpc.Transport
	// jtConfig / workerConfig adjust the final configs before the
	// processes start (observability wiring, clock skew).
	jtConfig     func(cfg *rpc.JobtrackerConfig)
	workerConfig func(node string, cfg *rpc.WorkerConfig)
}

// backend is a full multi-worker deployment on a MemNetwork.
type backend struct {
	net     *rpc.MemNetwork
	jt      *rpc.Jobtracker
	workers []*rpc.Worker
	done    []chan error
}

const jtAddr = "jt"

// startBackend stands up a jobtracker plus one worker loop per cluster
// node and waits until all have registered.
func startBackend(t *testing.T, c *cluster.Cluster, fs *dfs.FileSystem, o backendOpts) *backend {
	t.Helper()
	n := rpc.NewMemNetwork()
	jtTr := rpc.Transport(n)
	if o.jtTransport != nil {
		jtTr = o.jtTransport(n)
	}
	jtCfg := rpc.JobtrackerConfig{
		Cluster: c, FS: fs, Transport: jtTr, HeartbeatGrace: o.grace,
	}
	if o.jtConfig != nil {
		o.jtConfig(&jtCfg)
	}
	jt := rpc.NewJobtracker(jtCfg)
	n.Bind(jtAddr, jt.Server())
	b := &backend{net: n, jt: jt}
	hb := o.heartbeat
	if hb == 0 {
		hb = 50 * time.Millisecond
	}
	for _, node := range c.Nodes() {
		wTr := rpc.Transport(n)
		if o.workerTransport != nil {
			wTr = o.workerTransport(node.ID, n)
		}
		addr := "worker:" + node.ID
		wCfg := rpc.WorkerConfig{
			Node: node.ID, Slots: node.Slots,
			Transport: wTr, JobtrackerAddr: jtAddr, Addr: addr,
			HeartbeatEvery: hb, TaskOverhead: o.taskOverhead,
		}
		if o.workerConfig != nil {
			o.workerConfig(node.ID, &wCfg)
		}
		w := rpc.NewWorker(wCfg)
		n.Bind(addr, w.Server())
		done := make(chan error, 1)
		go func(w *rpc.Worker) { done <- w.Run() }(w)
		b.workers = append(b.workers, w)
		b.done = append(b.done, done)
	}
	if err := jt.WaitForWorkers(len(b.workers), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.stop)
	return b
}

func (b *backend) stop() {
	b.jt.ShutdownWorkers()
	for _, w := range b.workers {
		w.Stop()
	}
	for _, d := range b.done {
		select {
		case <-d:
		case <-time.After(10 * time.Second):
		}
	}
	b.jt.Stop()
}

// engine returns an Engine whose every task attempt runs on a worker.
func (b *backend) engine(c *cluster.Cluster, fs *dfs.FileSystem) *mapreduce.Engine {
	return mapreduce.NewEngine(c, fs, mapreduce.Options{Executor: b.jt.Executor()})
}

// readOutputBytes snapshots an output directory as path → raw bytes.
func readOutputBytes(t *testing.T, fs *dfs.FileSystem, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, p := range fs.List(dir) {
		data, err := fs.ReadAll(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		out[p] = data
	}
	if len(out) == 0 {
		t.Fatalf("no output files under %s", dir)
	}
	return out
}

func assertSameOutput(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("output file count: in-process %d, rpc %d", len(want), len(got))
	}
	for p, w := range want {
		g, ok := got[p]
		if !ok {
			t.Fatalf("rpc output missing %s", p)
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s differs: in-process %d bytes, rpc %d bytes", p, len(w), len(g))
		}
	}
}

// seedWordInput writes deterministic multi-chunk text input.
func seedWordInput(t *testing.T, fs *dfs.FileSystem, lines int) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "alpha bravo charlie%d delta echo foxtrot golf hotel india juliet\n", i%7)
	}
	if err := fs.Create("in/text", []byte(sb.String()), ""); err != nil {
		t.Fatal(err)
	}
}

// runBoth runs the same job on a fresh in-process topology and on a
// fresh RPC-backed topology (identical input), returning both results
// and both output snapshots.
func runBoth(t *testing.T, job func() *mapreduce.Job, seed func(t *testing.T, fs *dfs.FileSystem), o backendOpts) (local, remote *mapreduce.Result, localOut, remoteOut map[string][]byte, b *backend) {
	t.Helper()
	chunk := int64(256)

	cA, fsA := newTopology(t, chunk)
	seed(t, fsA)
	engA := mapreduce.NewEngine(cA, fsA, mapreduce.Options{})
	jobA := job()
	resA, err := engA.Run(jobA)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	cB, fsB := newTopology(t, chunk)
	seed(t, fsB)
	b = startBackend(t, cB, fsB, o)
	jobB := job()
	resB, err := b.engine(cB, fsB).Run(jobB)
	if err != nil {
		t.Fatalf("rpc run: %v", err)
	}
	return resA, resB, readOutputBytes(t, fsA, jobA.OutputPath), readOutputBytes(t, fsB, jobB.OutputPath), b
}

func TestRPCBackendMatchesInProcess(t *testing.T) {
	local, remote, localOut, remoteOut, _ := runBoth(t,
		func() *mapreduce.Job { return wordCountJob(true) },
		func(t *testing.T, fs *dfs.FileSystem) { seedWordInput(t, fs, 60) },
		backendOpts{})
	assertSameOutput(t, localOut, remoteOut)
	if local.MapTasks != remote.MapTasks || local.ReduceTasks != remote.ReduceTasks {
		t.Fatalf("task counts differ: in-process %d/%d, rpc %d/%d",
			local.MapTasks, local.ReduceTasks, remote.MapTasks, remote.ReduceTasks)
	}
	// User counters cross the wire and merge winner-only; with no
	// faults they match the in-process totals exactly.
	lw := local.Counters.Value("rpctest", "words")
	rw := remote.Counters.Value("rpctest", "words")
	if lw == 0 || lw != rw {
		t.Fatalf("user counter words: in-process %d, rpc %d", lw, rw)
	}
}

func TestRPCBackendMapOnly(t *testing.T) {
	job := func() *mapreduce.Job {
		return &mapreduce.Job{
			Name:       "rpc-upper",
			Kind:       kindUpper,
			InputPaths: []string{"in"},
			OutputPath: "out",
			NewMapper:  func() mapreduce.Mapper { return mapreduce.MapFunc(upperMap) },
		}
	}
	_, _, localOut, remoteOut, _ := runBoth(t, job,
		func(t *testing.T, fs *dfs.FileSystem) { seedWordInput(t, fs, 40) },
		backendOpts{})
	assertSameOutput(t, localOut, remoteOut)
}

func TestRPCBackendWithSpillBudget(t *testing.T) {
	// A tiny explicit budget forces multi-run spills on both backends;
	// the merged output must still be identical.
	job := func() *mapreduce.Job {
		j := wordCountJob(true)
		j.MaxShuffleBytes = 128
		return j
	}
	_, remote, localOut, remoteOut, _ := runBoth(t, job,
		func(t *testing.T, fs *dfs.FileSystem) { seedWordInput(t, fs, 60) },
		backendOpts{})
	assertSameOutput(t, localOut, remoteOut)
	if n := remote.Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleSpillFiles); n == 0 {
		t.Fatal("rpc run spilled no files despite a 128-byte budget")
	}
}

func TestRPCBackendUnregisteredKindFailsAtSubmit(t *testing.T) {
	c, fs := newTopology(t, 256)
	seedWordInput(t, fs, 5)
	b := startBackend(t, c, fs, backendOpts{})
	j := wordCountJob(false)
	j.Kind = "rpctest/never-registered"
	if _, err := b.engine(c, fs).Run(j); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v, want kind-not-registered at submission", err)
	}
}

func TestKMeansRPCMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-iteration k-means over the gob transport")
	}
	ds := geolife.Generate(geolife.Config{Users: 4, TotalTraces: 1500, Seed: 5})
	opts := gepeto.KMeansOptions{
		K: 4, Distance: geo.MetricSquaredEuclidean, ConvergenceDelta: 1e-4,
		MaxIter: 3, UseCombiner: true, Seed: 1,
	}

	chunk := int64(64 << 10)
	cA, fsA := newTopology(t, chunk)
	if err := geolife.WriteRecords(fsA, "input", ds); err != nil {
		t.Fatal(err)
	}
	engA := mapreduce.NewEngine(cA, fsA, mapreduce.Options{})
	resA, err := gepeto.KMeansMR(engA, []string{"input"}, "work", opts)
	if err != nil {
		t.Fatalf("in-process k-means: %v", err)
	}

	cB, fsB := newTopology(t, chunk)
	if err := geolife.WriteRecords(fsB, "input", ds); err != nil {
		t.Fatal(err)
	}
	b := startBackend(t, cB, fsB, backendOpts{})
	resB, err := gepeto.KMeansMR(b.engine(cB, fsB), []string{"input"}, "work", opts)
	if err != nil {
		t.Fatalf("rpc k-means: %v", err)
	}

	if resA.Iterations != resB.Iterations || resA.Converged != resB.Converged {
		t.Fatalf("iterations: in-process %d/%v, rpc %d/%v",
			resA.Iterations, resA.Converged, resB.Iterations, resB.Converged)
	}
	if fmt.Sprint(resA.Centroids) != fmt.Sprint(resB.Centroids) {
		t.Fatalf("centroids differ:\n in-process %v\n rpc        %v", resA.Centroids, resB.Centroids)
	}
	if fmt.Sprint(resA.Sizes) != fmt.Sprint(resB.Sizes) {
		t.Fatalf("cluster sizes differ: in-process %v, rpc %v", resA.Sizes, resB.Sizes)
	}
}
