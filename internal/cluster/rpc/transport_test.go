package rpc

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

type echoArgs struct {
	Msg string
}

type echoReply struct {
	Msg string
}

// newEchoServer serves "echo" (returns the message) and "fail" (always
// errors), counting invocations so duplicate-delivery tests can see
// how many times a handler actually ran.
func newEchoServer(calls *atomic.Int64) *Server {
	srv := NewServer()
	Handle(srv, "echo", func(a *echoArgs) (*echoReply, error) {
		if calls != nil {
			calls.Add(1)
		}
		return &echoReply{Msg: a.Msg}, nil
	})
	Handle(srv, "fail", func(a *echoArgs) (*echoReply, error) {
		return nil, fmt.Errorf("handler says no: %s", a.Msg)
	})
	return srv
}

func TestMemNetworkRoundTrip(t *testing.T) {
	n := NewMemNetwork()
	n.Bind("svc", newEchoServer(nil))

	var reply echoReply
	if err := n.Call("svc", "echo", &echoArgs{Msg: "hello"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "hello" {
		t.Fatalf("reply = %q, want hello", reply.Msg)
	}

	// Handler errors come back as errors, not replies — and are NOT
	// transport errors (the handler definitely ran; retrying is wrong).
	if err := n.Call("svc", "fail", &echoArgs{Msg: "x"}, &reply); err == nil || !strings.Contains(err.Error(), "handler says no") {
		t.Fatalf("fail call: err = %v, want handler error", err)
	} else if IsTransportError(err) {
		t.Fatalf("handler error classified as transport error: %v", err)
	}

	// Unknown methods and unbound addresses are errors; only the latter
	// is a transport failure.
	if err := n.Call("svc", "nope", &echoArgs{}, &reply); err == nil {
		t.Fatal("unknown method: expected error")
	}
	if err := n.Call("ghost", "echo", &echoArgs{}, &reply); err == nil {
		t.Fatal("unbound address: expected error")
	} else if !IsTransportError(err) {
		t.Fatalf("connection refusal not a transport error: %v", err)
	}
}

func TestMemNetworkUnbind(t *testing.T) {
	n := NewMemNetwork()
	n.Bind("svc", newEchoServer(nil))
	n.Unbind("svc")
	var reply echoReply
	if err := n.Call("svc", "echo", &echoArgs{Msg: "hi"}, &reply); err == nil {
		t.Fatal("call after Unbind: expected error")
	}
}

func TestTCPNetworkRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var calls atomic.Int64
	go func() { _ = Serve(ln, newEchoServer(&calls)) }()

	tr := &TCPNetwork{}
	addr := ln.Addr().String()
	var reply echoReply
	if err := tr.Call(addr, "echo", &echoArgs{Msg: "over tcp"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "over tcp" {
		t.Fatalf("reply = %q", reply.Msg)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", calls.Load())
	}

	// Errors must cross the wire as errors.
	if err := tr.Call(addr, "fail", &echoArgs{Msg: "y"}, &reply); err == nil || !strings.Contains(err.Error(), "handler says no") {
		t.Fatalf("fail call: err = %v, want handler error", err)
	}
	// A dead address fails fast (dial timeout), not hangs.
	dead := &TCPNetwork{DialTimeout: 200 * time.Millisecond}
	if err := dead.Call("127.0.0.1:1", "echo", &echoArgs{}, &reply); err == nil {
		t.Fatal("dial to closed port: expected error")
	}
}

func TestUnreliableDropsRequests(t *testing.T) {
	n := NewMemNetwork()
	var calls atomic.Int64
	n.Bind("svc", newEchoServer(&calls))
	u := NewUnreliable(n, 1)
	u.DropRequests(1.0)

	var reply echoReply
	if err := u.Call("svc", "echo", &echoArgs{Msg: "x"}, &reply); err == nil {
		t.Fatal("expected dropped request to error")
	} else if !IsTransportError(err) {
		t.Fatalf("dropped request not a transport error: %v", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("handler ran %d times despite dropped request", calls.Load())
	}
	if dreq, _, _ := u.Stats(); dreq != 1 {
		t.Fatalf("dropped requests = %d, want 1", dreq)
	}
}

func TestUnreliableDropsReplies(t *testing.T) {
	n := NewMemNetwork()
	var calls atomic.Int64
	n.Bind("svc", newEchoServer(&calls))
	u := NewUnreliable(n, 1)
	u.DropReplies(1.0)

	var reply echoReply
	if err := u.Call("svc", "echo", &echoArgs{Msg: "x"}, &reply); err == nil {
		t.Fatal("expected dropped reply to error")
	}
	// The crucial asymmetry: the handler DID run — the caller just
	// never hears about it. This is the case idempotent completion
	// handling exists for.
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1 (reply dropped, not request)", calls.Load())
	}
	if _, drep, _ := u.Stats(); drep != 1 {
		t.Fatalf("dropped replies = %d, want 1", drep)
	}
}

func TestUnreliableDuplicates(t *testing.T) {
	n := NewMemNetwork()
	var calls atomic.Int64
	n.Bind("svc", newEchoServer(&calls))
	u := NewUnreliable(n, 1)
	u.Duplicate(1.0)

	var reply echoReply
	if err := u.Call("svc", "echo", &echoArgs{Msg: "twice"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "twice" {
		t.Fatalf("reply = %q", reply.Msg)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2 (original + duplicate)", calls.Load())
	}
	if _, _, dups := u.Stats(); dups != 1 {
		t.Fatalf("duplicated = %d, want 1", dups)
	}
}

func TestUnreliablePartition(t *testing.T) {
	n := NewMemNetwork()
	var calls atomic.Int64
	n.Bind("svc", newEchoServer(&calls))
	u := NewUnreliable(n, 1)

	u.Partition("svc", true)
	var reply echoReply
	if err := u.Call("svc", "echo", &echoArgs{}, &reply); err == nil {
		t.Fatal("expected partitioned call to error")
	}
	if calls.Load() != 0 {
		t.Fatalf("handler ran %d times across a partition", calls.Load())
	}

	// Healing the partition restores the path.
	u.Partition("svc", false)
	if err := u.Call("svc", "echo", &echoArgs{Msg: "back"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "back" {
		t.Fatalf("reply = %q", reply.Msg)
	}
}

func TestUnreliableDelay(t *testing.T) {
	n := NewMemNetwork()
	n.Bind("svc", newEchoServer(nil))
	u := NewUnreliable(n, 1)
	u.Delay(20 * time.Millisecond)

	start := time.Now()
	var reply echoReply
	if err := u.Call("svc", "echo", &echoArgs{}, &reply); err != nil {
		t.Fatal(err)
	}
	// Delay is uniform in [0, max); with one sample we can only bound
	// it above.
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("call took %v with 20ms max delay", d)
	}
}

func TestHandleDuplicateMethodPanics(t *testing.T) {
	srv := NewServer()
	Handle(srv, "m", func(a *echoArgs) (*echoReply, error) { return &echoReply{}, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected duplicate Handle to panic")
		}
	}()
	Handle(srv, "m", func(a *echoArgs) (*echoReply, error) { return &echoReply{}, nil })
}
