package rpc

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// wireRequest / wireResponse frame one RPC on a TCP connection. The
// method and the gob-encoded body travel as one gob value each way;
// a handler error crosses as a string (errors are values here, not
// types — callers match on message content only for diagnostics).
type wireRequest struct {
	Method string
	Body   []byte
}

type wireResponse struct {
	Err  string
	Body []byte
}

// TCPNetwork is the real-process transport: one TCP connection per
// call, one call per connection. Dial-per-call is deliberately naive —
// the control plane is low-rate (heartbeats, assignments, completions)
// and bulk data moves through ranged DFS reads, so connection reuse
// buys little at the cost of pool bookkeeping.
type TCPNetwork struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds one full request/reply exchange once
	// connected (default 30s — long enough for a worker-side task
	// assignment ack under load, far shorter than a task itself, which
	// completes via a separate jt.complete call).
	CallTimeout time.Duration
}

func (n *TCPNetwork) dialTimeout() time.Duration {
	if n.DialTimeout > 0 {
		return n.DialTimeout
	}
	return 2 * time.Second
}

func (n *TCPNetwork) callTimeout() time.Duration {
	if n.CallTimeout > 0 {
		return n.CallTimeout
	}
	return 30 * time.Second
}

// Call implements Transport.
func (n *TCPNetwork) Call(addr, method string, args, reply any) error {
	body, err := encode(args)
	if err != nil {
		return fmt.Errorf("rpc: %s %s: encode: %v", addr, method, err)
	}
	conn, err := net.DialTimeout("tcp", addr, n.dialTimeout())
	if err != nil {
		return transportErrorf("rpc: %s: %v", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(n.callTimeout())); err != nil {
		return transportErrorf("rpc: %s: %v", addr, err)
	}
	if err := gob.NewEncoder(conn).Encode(wireRequest{Method: method, Body: body}); err != nil {
		return transportErrorf("rpc: %s %s: send: %v", addr, method, err)
	}
	var resp wireResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return transportErrorf("rpc: %s %s: recv: %v", addr, method, err)
	}
	if resp.Err != "" {
		return fmt.Errorf("%s", resp.Err)
	}
	if err := decode(resp.Body, reply); err != nil {
		return fmt.Errorf("rpc: %s %s: decode reply: %v", addr, method, err)
	}
	return nil
}

// Serve accepts connections on ln and dispatches each as one RPC on
// srv, until ln is closed. It blocks; run it in a goroutine.
func Serve(ln net.Listener, srv *Server) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, srv)
	}
}

func serveConn(conn net.Conn, srv *Server) {
	defer conn.Close()
	var req wireRequest
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return // framing failure: nothing valid to reply to
	}
	var resp wireResponse
	out, err := srv.dispatch(req.Method, req.Body)
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.Body = out
	}
	// The reply either lands or the caller times out and retries; a
	// one-shot connection has nobody else to tell.
	_ = gob.NewEncoder(conn).Encode(resp)
}
