// Fault drills over the Unreliable transport and the cluster kill
// hook: every scenario asserts the job completes AND that its output
// is byte-identical to an untouched in-process run — faults may cost
// retries and wall time, never correctness.
package rpc_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster/rpc"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
)

// slowSeed writes enough input that, with 256-byte chunks and a
// per-task sleep, mid-run faults reliably land while the job is in
// flight.
func slowSeed(t *testing.T, fs *dfs.FileSystem) { seedWordInput(t, fs, 60) }

func TestWorkerKillMidRun(t *testing.T) {
	chunk := int64(256)
	cA, fsA := newTopology(t, chunk)
	slowSeed(t, fsA)
	jobA := wordCountJob(true)
	if _, err := mapreduce.NewEngine(cA, fsA, mapreduce.Options{}).Run(jobA); err != nil {
		t.Fatal(err)
	}
	localOut := readOutputBytes(t, fsA, jobA.OutputPath)

	cB, fsB := newTopology(t, chunk)
	slowSeed(t, fsB)
	b := startBackend(t, cB, fsB, backendOpts{taskOverhead: 25 * time.Millisecond})
	// Kill one node mid-run: the kill hook declares its worker lost,
	// every attempt placed there errors, and the scheduler retries on
	// the survivors.
	timer := time.AfterFunc(40*time.Millisecond, func() { cB.Kill("node-01") })
	defer timer.Stop()
	jobB := wordCountJob(true)
	res, err := b.engine(cB, fsB).Run(jobB)
	if err != nil {
		t.Fatalf("rpc run with mid-run worker kill: %v", err)
	}
	remoteOut := readOutputBytes(t, fsB, jobB.OutputPath)
	assertSameOutput(t, localOut, remoteOut)

	workers := b.jt.Workers()
	for _, id := range workers {
		if id == "node-01" {
			t.Fatalf("killed worker still registered: %v", workers)
		}
	}
	if len(res.Attempts) <= len(res.Tasks) {
		t.Logf("note: kill landed after the run finished (%d attempts, %d tasks)", len(res.Attempts), len(res.Tasks))
	}
}

func TestHeartbeatTimeoutMidRun(t *testing.T) {
	chunk := int64(256)
	cA, fsA := newTopology(t, chunk)
	slowSeed(t, fsA)
	jobA := wordCountJob(true)
	jobA.NumReducers = 6
	if _, err := mapreduce.NewEngine(cA, fsA, mapreduce.Options{}).Run(jobA); err != nil {
		t.Fatal(err)
	}
	localOut := readOutputBytes(t, fsA, jobA.OutputPath)

	// node-02's worker gets its own Unreliable so a partition can cut
	// exactly its view of the jobtracker: heartbeats, completions and
	// DFS traffic all fail, and only the grace timeout can notice.
	var cut *rpc.Unreliable
	cB, fsB := newTopology(t, chunk)
	slowSeed(t, fsB)
	b := startBackend(t, cB, fsB, backendOpts{
		taskOverhead: 30 * time.Millisecond,
		heartbeat:    40 * time.Millisecond,
		grace:        300 * time.Millisecond,
		workerTransport: func(node string, inner rpc.Transport) rpc.Transport {
			if node != "node-02" {
				return inner
			}
			cut = rpc.NewUnreliable(inner, 42)
			return cut
		},
	})
	timer := time.AfterFunc(60*time.Millisecond, func() { cut.Partition(jtAddr, true) })
	defer timer.Stop()

	jobB := wordCountJob(true)
	jobB.NumReducers = 6
	if _, err := b.engine(cB, fsB).Run(jobB); err != nil {
		t.Fatalf("rpc run with partitioned worker: %v", err)
	}
	remoteOut := readOutputBytes(t, fsB, jobB.OutputPath)
	assertSameOutput(t, localOut, remoteOut)

	for _, id := range b.jt.Workers() {
		if id == "node-02" {
			t.Fatal("partitioned worker still registered after heartbeat grace")
		}
	}
	if cB.IsAlive("node-02") {
		t.Fatal("heartbeat monitor did not kill the silent worker's node")
	}
}

func TestDuplicateCompletionsAreIdempotent(t *testing.T) {
	// Duplicate EVERY worker→jobtracker delivery: completions land
	// twice, and the second copy must be acked without a second commit.
	_, _, localOut, remoteOut, b := runBoth(t,
		func() *mapreduce.Job { return wordCountJob(true) },
		slowSeed,
		backendOpts{
			workerTransport: func(node string, inner rpc.Transport) rpc.Transport {
				u := rpc.NewUnreliable(inner, 7)
				u.Duplicate(1.0)
				return u
			},
		})
	assertSameOutput(t, localOut, remoteOut)
	if n := b.jt.DupCompletions(); n == 0 {
		t.Fatal("expected duplicate completions to be absorbed, counter is 0")
	}
}

func TestFaultMixStillByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy-network soak")
	}
	// Drops, duplicates and delays on BOTH directions at once, seeded.
	// MaxAttempts is raised: a dropped assignment burns an attempt, and
	// correctness under faults is the claim here, not attempt frugality.
	job := func() *mapreduce.Job {
		j := wordCountJob(true)
		j.MaxAttempts = 10
		return j
	}
	lossy := func(seed int64) func(inner rpc.Transport) rpc.Transport {
		return func(inner rpc.Transport) rpc.Transport {
			u := rpc.NewUnreliable(inner, seed)
			u.DropRequests(0.03)
			u.DropReplies(0.03)
			u.Duplicate(0.05)
			u.Delay(2 * time.Millisecond)
			return u
		}
	}
	_, _, localOut, remoteOut, _ := runBoth(t, job, slowSeed, backendOpts{
		jtTransport: lossy(1),
		workerTransport: func(node string, inner rpc.Transport) rpc.Transport {
			return lossy(int64(len(node)) + int64(node[len(node)-1]))(inner)
		},
	})
	assertSameOutput(t, localOut, remoteOut)
}

func TestRegisterRejectsUnknownNode(t *testing.T) {
	c, fs := newTopology(t, 256)
	n := rpc.NewMemNetwork()
	jt := rpc.NewJobtracker(rpc.JobtrackerConfig{Cluster: c, FS: fs, Transport: n})
	defer jt.Stop()
	n.Bind(jtAddr, jt.Server())
	w := rpc.NewWorker(rpc.WorkerConfig{
		Node: "node-99", Slots: 2, Transport: n, JobtrackerAddr: jtAddr, Addr: "worker:node-99",
	})
	n.Bind("worker:node-99", w.Server())
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "unknown cluster node") {
		t.Fatalf("err = %v, want unknown-node registration failure", err)
	}
}
