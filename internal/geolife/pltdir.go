package geolife

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/trace"
)

// The real GeoLife corpus ships as Data/<user>/Trajectory/<stamp>.plt
// (one file per recording session). These helpers read and write that
// layout so the toolkit can ingest the genuine dataset when a user has
// obtained it, and can export synthetic corpora in the same shape.

// ReadPLTDir loads a GeoLife-layout directory tree into a dataset.
// root is the directory containing one subdirectory per user (the
// "Data" directory of the official distribution). Each user's
// Trajectory/*.plt files are parsed and merged chronologically.
func ReadPLTDir(root string) (*trace.Dataset, error) {
	userDirs, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var traces []trace.Trace
	users := 0
	for _, ud := range userDirs {
		if !ud.IsDir() {
			continue
		}
		user := ud.Name()
		trajDir := filepath.Join(root, user, "Trajectory")
		files, err := os.ReadDir(trajDir)
		if err != nil {
			// Tolerate users without a Trajectory directory (the
			// real corpus has none, but partial copies might).
			continue
		}
		users++
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(strings.ToLower(f.Name()), ".plt") {
				continue
			}
			body, err := os.ReadFile(filepath.Join(trajDir, f.Name()))
			if err != nil {
				return nil, err
			}
			tr, err := trace.UnmarshalPLT(user, string(body))
			if err != nil {
				return nil, fmt.Errorf("geolife: %s/%s: %v", user, f.Name(), err)
			}
			traces = append(traces, tr.Traces...)
		}
	}
	if users == 0 {
		return nil, fmt.Errorf("geolife: no user directories under %s", root)
	}
	return trace.FromTraces(traces), nil
}

// WritePLTDir exports a dataset in the GeoLife directory layout,
// splitting each trail into one .plt file per recording session (a
// gap of more than sessionGap between consecutive traces starts a new
// file, mirroring how the real corpus is organised). Files are named
// by the session start time, as in the original distribution.
func WritePLTDir(root string, ds *trace.Dataset, sessionGap time.Duration) error {
	if sessionGap <= 0 {
		sessionGap = 30 * time.Minute
	}
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		trajDir := filepath.Join(root, sanitizeFilename(tr.User), "Trajectory")
		if err := os.MkdirAll(trajDir, 0o755); err != nil {
			return err
		}
		var session trace.Trail
		session.User = tr.User
		flush := func() error {
			if len(session.Traces) == 0 {
				return nil
			}
			name := session.Traces[0].Time.Format("20060102150405") + ".plt"
			body := trace.MarshalPLT(&session)
			if err := os.WriteFile(filepath.Join(trajDir, name), []byte(body), 0o644); err != nil {
				return err
			}
			session.Traces = session.Traces[:0]
			return nil
		}
		for j, t := range tr.Traces {
			if j > 0 && t.Time.Sub(tr.Traces[j-1].Time) > sessionGap {
				if err := flush(); err != nil {
					return err
				}
			}
			session.Traces = append(session.Traces, t)
		}
		if err := flush(); err != nil {
			return err
		}
	}
	return nil
}

// PLTDirStats summarises a GeoLife-layout tree without loading all of
// it: user count, file count and total size, the numbers §IV reports
// for the real corpus (182 users, ~18k files, 1.61 GB).
type PLTDirStats struct {
	Users int
	Files int
	Bytes int64
}

// StatPLTDir walks a GeoLife-layout tree and reports its shape.
func StatPLTDir(root string) (PLTDirStats, error) {
	var s PLTDirStats
	userDirs, err := os.ReadDir(root)
	if err != nil {
		return s, err
	}
	for _, ud := range userDirs {
		if !ud.IsDir() {
			continue
		}
		trajDir := filepath.Join(root, ud.Name(), "Trajectory")
		files, err := os.ReadDir(trajDir)
		if err != nil {
			continue
		}
		s.Users++
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(strings.ToLower(f.Name()), ".plt") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			s.Files++
			s.Bytes += info.Size()
		}
	}
	if s.Users == 0 {
		return s, fmt.Errorf("geolife: no user directories under %s", root)
	}
	return s, nil
}

// SessionsOf splits a trail into recording sessions at gaps larger
// than sessionGap (exported for analyses that need per-session
// statistics, e.g. validating generator calibration).
func SessionsOf(tr *trace.Trail, sessionGap time.Duration) []trace.Trail {
	if sessionGap <= 0 {
		sessionGap = 30 * time.Minute
	}
	var out []trace.Trail
	cur := trace.Trail{User: tr.User}
	for i, t := range tr.Traces {
		if i > 0 && t.Time.Sub(tr.Traces[i-1].Time) > sessionGap {
			if len(cur.Traces) > 0 {
				out = append(out, cur)
				cur = trace.Trail{User: tr.User}
			}
		}
		cur.Traces = append(cur.Traces, t)
	}
	if len(cur.Traces) > 0 {
		out = append(out, cur)
	}
	return out
}
