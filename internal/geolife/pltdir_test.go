package geolife

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
)

func TestPLTDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := Generate(Config{Users: 3, TotalTraces: 5000, Seed: 4})
	if err := WritePLTDir(dir, ds, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLTDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTraces() != ds.NumTraces() {
		t.Fatalf("round-trip traces = %d, want %d", back.NumTraces(), ds.NumTraces())
	}
	if len(back.Trails) != 3 {
		t.Fatalf("users = %d", len(back.Trails))
	}
	// Trails must be chronologically merged across session files.
	for _, tr := range back.Trails {
		for i := 1; i < len(tr.Traces); i++ {
			if tr.Traces[i].Time.Before(tr.Traces[i-1].Time) {
				t.Fatalf("user %s: traces out of order after reload", tr.User)
			}
		}
	}
	// Spot-check coordinates survive with PLT precision.
	a, b := ds.Trails[0].Traces[0], back.Trails[0].Traces[0]
	if a.Time != b.Time || a.Point.String() != b.Point.String() {
		t.Fatalf("first trace mismatch: %+v vs %+v", a, b)
	}
}

func TestPLTDirSessionSplitting(t *testing.T) {
	dir := t.TempDir()
	ds := Generate(Config{Users: 1, TotalTraces: 3000, Seed: 5})
	if err := WritePLTDir(dir, ds, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	// The generator produces multiple sessions per day, so the user
	// must have many .plt files, one per session.
	stats, err := StatPLTDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 1 {
		t.Fatalf("users = %d", stats.Users)
	}
	sessions := SessionsOf(&ds.Trails[0], 30*time.Minute)
	if stats.Files != len(sessions) {
		t.Fatalf("files = %d, sessions = %d", stats.Files, len(sessions))
	}
	if stats.Files < 5 {
		t.Fatalf("expected several session files, got %d", stats.Files)
	}
	if stats.Bytes <= 0 {
		t.Fatal("no bytes counted")
	}
}

func TestSessionsOfGapBoundary(t *testing.T) {
	ds := Generate(Config{Users: 1, TotalTraces: 500, Seed: 6})
	tr := &ds.Trails[0]
	sessions := SessionsOf(tr, 30*time.Minute)
	total := 0
	for _, s := range sessions {
		total += len(s.Traces)
		if len(s.Traces) == 0 {
			t.Fatal("empty session")
		}
		// Intra-session gaps are bounded.
		for i := 1; i < len(s.Traces); i++ {
			if s.Traces[i].Time.Sub(s.Traces[i-1].Time) > 30*time.Minute {
				t.Fatal("gap inside session")
			}
		}
	}
	if total != len(tr.Traces) {
		t.Fatalf("sessions cover %d traces, want %d", total, len(tr.Traces))
	}
	if len(SessionsOf(&ds.Trails[0], 0)) != len(sessions) {
		t.Fatal("zero gap should default to 30m")
	}
}

func TestReadPLTDirErrors(t *testing.T) {
	if _, err := ReadPLTDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing root should error")
	}
	empty := t.TempDir()
	if _, err := ReadPLTDir(empty); err == nil {
		t.Fatal("empty root should error")
	}
	// A user dir with corrupt PLT content must error.
	bad := t.TempDir()
	traj := filepath.Join(bad, "000", "Trajectory")
	if err := os.MkdirAll(traj, 0o755); err != nil {
		t.Fatal(err)
	}
	header := "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\nl5\nl6\n"
	if err := os.WriteFile(filepath.Join(traj, "x.plt"), []byte(header+"not,a,valid,record,line,at,all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPLTDir(bad); err == nil {
		t.Fatal("corrupt PLT should error")
	}
}

func TestLocalRecordsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := Generate(Config{Users: 2, TotalTraces: 1000, Seed: 7})
	if err := WriteRecordsLocal(dir, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordsLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTraces() != 1000 || len(back.Trails) != 2 {
		t.Fatalf("round-trip: %d traces, %d trails", back.NumTraces(), len(back.Trails))
	}
	if _, err := ReadRecordsLocal(t.TempDir()); err == nil {
		t.Fatal("empty dir should error")
	}
}

func TestTruthSaveLoadRoundTrip(t *testing.T) {
	_, truth := GenerateWithTruth(Config{Users: 3, TotalTraces: 300, Seed: 8})
	path := filepath.Join(t.TempDir(), "truth.json")
	if err := SaveTruth(path, truth); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTruth(path)
	if err != nil {
		t.Fatal(err)
	}
	for u, p := range truth.Homes {
		if back.Homes[u] != p {
			t.Fatalf("home %s mismatch", u)
		}
		if back.Works[u] != truth.Works[u] {
			t.Fatalf("work %s mismatch", u)
		}
		if len(back.Leisure[u]) != len(truth.Leisure[u]) {
			t.Fatalf("leisure %s count mismatch", u)
		}
	}
	if _, err := LoadTruth(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing truth file should error")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte("{not json"), 0o644)
	if _, err := LoadTruth(badPath); err == nil {
		t.Fatal("corrupt truth file should error")
	}
}

func TestWriteRecordsConcat(t *testing.T) {
	ds := Generate(Config{Users: 3, TotalTraces: 900, Seed: 9})
	c := newTestCluster(t)
	fs := newTestFS(t, c)
	if err := WriteRecordsConcat(fs, "big", ds, 4); err != nil {
		t.Fatal(err)
	}
	files := fs.List("big")
	if len(files) != 4 {
		t.Fatalf("files = %d, want 4", len(files))
	}
	back, err := ReadRecords(fs, "big")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTraces() != 900 {
		t.Fatalf("traces = %d", back.NumTraces())
	}
	// Roughly balanced files.
	var sizes []int64
	for _, f := range files {
		sz, _ := fs.Size(f)
		sizes = append(sizes, sz)
	}
	for _, sz := range sizes {
		if sz < sizes[0]/2 || sz > sizes[0]*2 {
			t.Fatalf("unbalanced concat files: %v", sizes)
		}
	}
}

// test plumbing for DFS-backed helpers.
func newTestCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newTestFS(t *testing.T, c *cluster.Cluster) *dfs.FileSystem {
	t.Helper()
	fs, err := dfs.New(c, dfs.Config{ChunkSize: 1 << 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}
