package geolife

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/trace"
)

// testCfg is a small but density-faithful config: per-user volume
// matches the paper presets (~11.4k traces/user) so sampling ratios
// are representative, with few users for speed.
func testCfg() Config {
	return Config{Users: 6, TotalTraces: 68_000, Seed: 7}
}

func TestGenerateExactCount(t *testing.T) {
	for _, cfg := range []Config{
		{Users: 3, TotalTraces: 5000, Seed: 1},
		{Users: 10, TotalTraces: 12345, Seed: 2},
		{Users: 1, TotalTraces: 100, Seed: 3},
	} {
		ds := Generate(cfg)
		if got := ds.NumTraces(); got != cfg.TotalTraces {
			t.Errorf("users=%d: NumTraces = %d, want %d", cfg.Users, got, cfg.TotalTraces)
		}
		if got := len(ds.Trails); got != cfg.Users {
			t.Errorf("trails = %d, want %d", got, cfg.Users)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Users: 3, TotalTraces: 3000, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	ta, tb := a.AllTraces(), b.AllTraces()
	if len(ta) != len(tb) {
		t.Fatal("lengths differ")
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("trace %d differs: %+v vs %+v", i, ta[i], tb[i])
		}
	}
	c := Generate(Config{Users: 3, TotalTraces: 3000, Seed: 43})
	if c.AllTraces()[0] == ta[0] {
		t.Fatal("different seeds produced identical first trace")
	}
}

func TestTracesOrderedAndInBounds(t *testing.T) {
	ds := Generate(Config{Users: 4, TotalTraces: 8000, Seed: 5})
	// Generated area may exceed the nominal box slightly (POIs are
	// offset from in-box homes); allow a small margin.
	margin := Beijing
	margin.Min.Lat -= 0.1
	margin.Min.Lon -= 0.1
	margin.Max.Lat += 0.1
	margin.Max.Lon += 0.1
	for _, tr := range ds.Trails {
		for i, tc := range tr.Traces {
			if tc.User != tr.User {
				t.Fatalf("trace user %q in trail %q", tc.User, tr.User)
			}
			if !margin.Contains(tc.Point) {
				t.Fatalf("trace outside Beijing box: %v", tc.Point)
			}
			if i > 0 && tc.Time.Before(tr.Traces[i-1].Time) {
				t.Fatalf("user %s: traces not chronological at %d", tr.User, i)
			}
		}
	}
}

func TestSamplingDensityMatchesGeoLife(t *testing.T) {
	// Consecutive traces within a session must be 3-6 s apart (the
	// paper: "a mobility trace is recorded every 1 to 5 seconds").
	ds := Generate(Config{Users: 2, TotalTraces: 5000, Seed: 6})
	gaps := map[time.Duration]int{}
	for _, tr := range ds.Trails {
		for i := 1; i < len(tr.Traces); i++ {
			d := tr.Traces[i].Time.Sub(tr.Traces[i-1].Time)
			if d <= 10*time.Second {
				gaps[d]++
			}
		}
	}
	for d := range gaps {
		if d < 3*time.Second || d > 6*time.Second {
			t.Fatalf("intra-session gap %v outside [3s,6s]", d)
		}
	}
	if len(gaps) < 3 {
		t.Fatalf("expected varied gaps, got %v", gaps)
	}
}

// countWindows simulates down-sampling: distinct (user, window)
// pairs, the number of traces surviving sampling at the given window.
func countWindows(ds *trace.Dataset, window time.Duration) int {
	n := 0
	for _, tr := range ds.Trails {
		seen := map[int64]bool{}
		for _, tc := range tr.Traces {
			w := tc.Time.Unix() / int64(window.Seconds())
			if !seen[w] {
				seen[w] = true
				n++
			}
		}
	}
	return n
}

func TestCollapseRatiosMatchTableI(t *testing.T) {
	// Table I: 2,033,686 -> 155,260 (13.1x) -> 41,263 (49.3x) ->
	// 23,596 (86.2x). The generator must land near these shapes.
	ds := Generate(testCfg())
	total := ds.NumTraces()
	r1 := float64(total) / float64(countWindows(ds, time.Minute))
	r5 := float64(total) / float64(countWindows(ds, 5*time.Minute))
	r10 := float64(total) / float64(countWindows(ds, 10*time.Minute))
	t.Logf("collapse ratios: 1min=%.1f (paper 13.1) 5min=%.1f (paper 49.3) 10min=%.1f (paper 86.2)", r1, r5, r10)
	if r1 < 10 || r1 > 17 {
		t.Errorf("1-min collapse ratio %.1f outside [10,17]", r1)
	}
	if r5 < 35 || r5 > 65 {
		t.Errorf("5-min collapse ratio %.1f outside [35,65]", r5)
	}
	if r10 < 60 || r10 > 115 {
		t.Errorf("10-min collapse ratio %.1f outside [60,115]", r10)
	}
	if !(r1 < r5 && r5 < r10) {
		t.Errorf("ratios must increase with window: %v %v %v", r1, r5, r10)
	}
}

func TestStationaryFractionSupportsTableIV(t *testing.T) {
	// After 1-min sampling the paper keeps 86,416/155,260 = 55.7% of
	// traces as stationary. Estimate the stationary share of sampled
	// traces (centered-difference speed < 2 km/h over 1-min samples).
	ds := Generate(testCfg())
	kept, total := 0, 0
	for _, tr := range ds.Trails {
		// 1-min down-sample: first trace of each window.
		var sampled []trace.Trace
		seen := map[int64]bool{}
		for _, tc := range tr.Traces {
			w := tc.Time.Unix() / 60
			if !seen[w] {
				seen[w] = true
				sampled = append(sampled, tc)
			}
		}
		for i := 1; i+1 < len(sampled); i++ {
			dt := sampled[i+1].Time.Sub(sampled[i-1].Time).Seconds()
			v := geo.SpeedKmh(sampled[i-1].Point, sampled[i+1].Point, dt)
			total++
			if v <= 2.0 {
				kept++
			}
		}
	}
	frac := float64(kept) / float64(total)
	t.Logf("stationary fraction after 1-min sampling: %.1f%% (paper 55.7%%)", frac*100)
	if frac < 0.40 || frac > 0.75 {
		t.Errorf("stationary fraction %.2f outside [0.40,0.75]", frac)
	}
}

func TestDwellsClusterAtTruePOIs(t *testing.T) {
	// Most stationary traces must lie near a true POI, so clustering
	// can recover the user model (the privacy attack ground truth).
	ds, truth := GenerateWithTruth(Config{Users: 3, TotalTraces: 9000, Seed: 8})
	for _, tr := range ds.Trails {
		pois := truth.POIs(tr.User)
		near := 0
		for _, tc := range tr.Traces {
			for _, p := range pois {
				if geo.Haversine(tc.Point, p) < 30 {
					near++
					break
				}
			}
		}
		frac := float64(near) / float64(len(tr.Traces))
		if frac < 0.3 {
			t.Errorf("user %s: only %.0f%% of traces near a POI", tr.User, frac*100)
		}
	}
}

func TestGroundTruthGeometry(t *testing.T) {
	_, truth := GenerateWithTruth(Config{Users: 5, TotalTraces: 500, Seed: 9})
	if len(truth.Homes) != 5 || len(truth.Works) != 5 {
		t.Fatalf("truth sizes: %d homes, %d works", len(truth.Homes), len(truth.Works))
	}
	for u, home := range truth.Homes {
		work := truth.Works[u]
		d := geo.Haversine(home, work)
		if d < 1400 || d > 4600 {
			t.Errorf("user %s: home-work distance %.0fm outside [1.4km,4.6km]", u, d)
		}
		if n := len(truth.Leisure[u]); n < 2 || n > 4 {
			t.Errorf("user %s: %d leisure POIs", u, n)
		}
		if got := len(truth.POIs(u)); got != 2+len(truth.Leisure[u]) {
			t.Errorf("POIs(%s) = %d entries", u, got)
		}
	}
}

func TestWriteReadRecordsRoundTrip(t *testing.T) {
	c, _ := cluster.NewUniform(4, 2, 2)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 1 << 16, Seed: 1})
	ds := Generate(Config{Users: 3, TotalTraces: 2000, Seed: 10})
	if err := WriteRecords(fs, "geolife", ds); err != nil {
		t.Fatal(err)
	}
	if got := len(fs.List("geolife")); got != 3 {
		t.Fatalf("files = %d, want 3 (one per user)", got)
	}
	back, err := ReadRecords(fs, "geolife")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTraces() != ds.NumTraces() {
		t.Fatalf("NumTraces = %d, want %d", back.NumTraces(), ds.NumTraces())
	}
	// Spot-check first trail contents (times truncated to seconds both ways).
	a, b := ds.Trails[0], back.Trails[0]
	if a.User != b.User || len(a.Traces) != len(b.Traces) {
		t.Fatalf("trail mismatch: %s/%d vs %s/%d", a.User, len(a.Traces), b.User, len(b.Traces))
	}
	for i := range a.Traces {
		if math.Abs(a.Traces[i].Point.Lat-b.Traces[i].Point.Lat) > 1e-6 ||
			!a.Traces[i].Time.Equal(b.Traces[i].Time) {
			t.Fatalf("trace %d differs", i)
		}
	}
}

func TestReadRecordsEmptyDir(t *testing.T) {
	c, _ := cluster.NewUniform(2, 1, 1)
	fs, _ := dfs.New(c, dfs.Config{Seed: 1})
	if _, err := ReadRecords(fs, "missing"); err == nil {
		t.Fatal("want error for empty dir")
	}
}

func TestParseRecordValue(t *testing.T) {
	tr := trace.Trace{User: "007", Point: geo.Point{Lat: 39.9, Lon: 116.4}, AltitudeFeet: 200, Time: time.Unix(1_200_000_000, 0).UTC()}
	// Bare record.
	got, err := ParseRecordValue(tr.Record())
	if err != nil || got != tr {
		t.Fatalf("bare: %+v, %v", got, err)
	}
	// With part-file key prefix.
	got, err = ParseRecordValue("12345\t" + tr.Record())
	if err != nil || got != tr {
		t.Fatalf("prefixed: %+v, %v", got, err)
	}
	if _, err := ParseRecordValue("nofields"); err == nil {
		t.Fatal("want error for short record")
	}
}

func TestScaledPreset(t *testing.T) {
	cfg := Scaled(1, 100)
	if cfg.Users != 1 || cfg.TotalTraces != 20336 {
		t.Fatalf("Scaled(100) = %+v", cfg)
	}
	cfg = Scaled(1, 2)
	if cfg.Users != 89 || cfg.TotalTraces != 1_016_843 {
		t.Fatalf("Scaled(2) = %+v", cfg)
	}
	if Scaled(1, 0).Users != 178 {
		t.Fatal("factor<1 should clamp to 1")
	}
}

func TestPaperPresets(t *testing.T) {
	if c := Paper178(1); c.Users != 178 || c.TotalTraces != 2_033_686 {
		t.Fatalf("Paper178 = %+v", c)
	}
	if c := Paper90(1); c.Users != 90 || c.TotalTraces != 1_050_000 {
		t.Fatalf("Paper90 = %+v", c)
	}
}
