// Package geolife generates synthetic GPS trajectory datasets with the
// statistical skeleton of the GeoLife corpus used in the paper's
// evaluation (§IV): per-user trails of dense mobility traces (one
// every few seconds) recorded in logging sessions around a set of
// personal points of interest (home, work, leisure) in the Beijing
// area, with realistic movement speeds and GPS jitter.
//
// The real GeoLife dataset (Zheng et al.) is proprietary-licensed and
// not redistributable here, so the generator is calibrated to
// reproduce the properties the paper's experiments depend on:
//
//   - volume: the paper178 preset yields exactly 2,033,686 traces
//     across 178 users (Table I's unsampled count) and paper90 yields
//     1,050,000 across 90 users (§VI's smaller subset);
//   - density: 3–6 s between consecutive traces, so down-sampling at
//     1/5/10-minute windows collapses the dataset by factors matching
//     Table I's shape (~13x / ~49x / ~86x);
//   - dwell structure: roughly half of logged time is stationary at a
//     POI, so DJ-Cluster's speed filter keeps ~55-60% of sampled
//     traces (Table IV's shape) and clusters form at true POIs,
//     giving inference attacks real ground truth to recover.
package geolife

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/recordio"
	"repro/internal/trace"
)

// Beijing is the metropolitan bounding box traces are generated in,
// matching the real GeoLife collection area.
var Beijing = geo.Rect{
	Min: geo.Point{Lat: 39.70, Lon: 116.10},
	Max: geo.Point{Lat: 40.15, Lon: 116.75},
}

// Config parameterises the generator. Zero values are replaced by the
// defaults documented on each field.
type Config struct {
	// Users is the number of individuals (default 10).
	Users int
	// TotalTraces is the exact total number of traces to generate,
	// split across users with deterministic ±30% variation
	// (default 10_000).
	TotalTraces int
	// Seed drives all randomness; equal configs generate equal data.
	Seed int64
	// Start is the first day of collection (default 2008-04-01 UTC).
	Start time.Time
	// SampleMinSec and SampleMaxSec bound the interval between
	// consecutive traces in seconds (default 3 and 6, mean 4.5 — the
	// paper's "every 1 to 5 seconds" density).
	SampleMinSec, SampleMaxSec int
	// DwellMinSec and DwellMaxSec bound the stationary logging time
	// after arriving somewhere (default 300 and 780 s, so roughly
	// half of logged time is stationary, as Table IV's filter ratios
	// require).
	DwellMinSec, DwellMaxSec int
	// JitterMeters is the GPS noise scale (default 4 m).
	JitterMeters float64
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 10
	}
	if c.TotalTraces <= 0 {
		c.TotalTraces = 10_000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2008, time.April, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.SampleMinSec <= 0 {
		c.SampleMinSec = 3
	}
	if c.SampleMaxSec < c.SampleMinSec {
		c.SampleMaxSec = c.SampleMinSec + 3
	}
	if c.DwellMinSec <= 0 {
		c.DwellMinSec = 300
	}
	if c.DwellMaxSec < c.DwellMinSec {
		c.DwellMaxSec = c.DwellMinSec + 480
	}
	if c.JitterMeters <= 0 {
		c.JitterMeters = 4
	}
	return c
}

// Paper178 is the full GeoLife-scale preset: 178 users and exactly
// 2,033,686 traces, the unsampled count in Table I ("128 MB" subset).
func Paper178(seed int64) Config {
	return Config{Users: 178, TotalTraces: 2_033_686, Seed: seed}
}

// Paper90 is the smaller evaluation subset from §VI: 90 users and
// 1,050,000 traces ("66 MB").
func Paper90(seed int64) Config {
	return Config{Users: 90, TotalTraces: 1_050_000, Seed: seed}
}

// Scaled returns the paper178 preset shrunk by the given factor (>1
// shrinks), preserving per-user trace density so sampling and
// preprocessing ratios still match the paper's shape.
func Scaled(seed int64, factor int) Config {
	if factor < 1 {
		factor = 1
	}
	users := 178 / factor
	if users < 1 {
		users = 1
	}
	return Config{Users: users, TotalTraces: 2_033_686 / factor, Seed: seed}
}

// GroundTruth records the hidden user model behind a generated
// dataset, used as reference when evaluating inference attacks.
type GroundTruth struct {
	// Homes and Works map user ID to the true home and work POI.
	Homes, Works map[string]geo.Point
	// Leisure maps user ID to the user's leisure POIs.
	Leisure map[string][]geo.Point
}

// POIs returns all of a user's true POIs (home, work, leisure).
func (g *GroundTruth) POIs(user string) []geo.Point {
	out := []geo.Point{g.Homes[user], g.Works[user]}
	return append(out, g.Leisure[user]...)
}

// Generate produces the dataset for the configuration.
func Generate(cfg Config) *trace.Dataset {
	ds, _ := GenerateWithTruth(cfg)
	return ds
}

// GenerateWithTruth produces the dataset plus the ground-truth user
// model that generated it.
func GenerateWithTruth(cfg Config) (*trace.Dataset, *GroundTruth) {
	cfg = cfg.withDefaults()
	truth := &GroundTruth{
		Homes:   make(map[string]geo.Point, cfg.Users),
		Works:   make(map[string]geo.Point, cfg.Users),
		Leisure: make(map[string][]geo.Point, cfg.Users),
	}
	quotas := userQuotas(cfg)
	ds := &trace.Dataset{Trails: make([]trace.Trail, 0, cfg.Users)}
	for u := 0; u < cfg.Users; u++ {
		user := fmt.Sprintf("%03d", u)
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(u)))
		g := newUserGen(cfg, user, rng)
		truth.Homes[user] = g.home
		truth.Works[user] = g.work
		truth.Leisure[user] = append([]geo.Point(nil), g.leisure...)
		ds.Trails = append(ds.Trails, g.trail(quotas[u]))
	}
	return ds, truth
}

// userQuotas splits TotalTraces across users with deterministic ±30%
// variation, summing exactly to the total.
func userQuotas(cfg Config) []int {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	weights := make([]float64, cfg.Users)
	var sum float64
	for i := range weights {
		weights[i] = 0.7 + 0.6*rng.Float64()
		sum += weights[i]
	}
	quotas := make([]int, cfg.Users)
	assigned := 0
	for i := range weights {
		quotas[i] = int(float64(cfg.TotalTraces) * weights[i] / sum)
		assigned += quotas[i]
	}
	// Distribute the rounding remainder one trace at a time.
	for i := 0; assigned < cfg.TotalTraces; i = (i + 1) % cfg.Users {
		quotas[i]++
		assigned++
	}
	return quotas
}

// userGen generates one user's trail.
type userGen struct {
	cfg     Config
	user    string
	rng     *rand.Rand
	home    geo.Point
	work    geo.Point
	leisure []geo.Point
	speed   float64 // preferred travel speed, km/h
}

func newUserGen(cfg Config, user string, rng *rand.Rand) *userGen {
	g := &userGen{cfg: cfg, user: user, rng: rng}
	g.home = randPointIn(rng, Beijing)
	// Work 1.5-4.5 km from home.
	g.work = geo.Destination(g.home, rng.Float64()*360, 1500+rng.Float64()*3000)
	nLeisure := 2 + rng.Intn(3)
	for i := 0; i < nLeisure; i++ {
		g.leisure = append(g.leisure,
			geo.Destination(g.home, rng.Float64()*360, 500+rng.Float64()*3000))
	}
	// Travel mode: bike (~18 km/h), car (~40 km/h) or bus (~28 km/h).
	g.speed = []float64{18, 40, 28}[rng.Intn(3)]
	return g
}

// trail generates exactly quota traces for the user.
func (g *userGen) trail(quota int) trace.Trail {
	tr := trace.Trail{User: g.user, Traces: make([]trace.Trace, 0, quota)}
	day := g.cfg.Start
	for len(tr.Traces) < quota {
		g.generateDay(&tr, day, quota)
		day = day.AddDate(0, 0, 1)
	}
	return tr
}

// generateDay appends the logging sessions of one day: a morning
// commute home→work, an evening commute work→home, and (one day in
// three) an evening or weekend leisure round trip.
func (g *userGen) generateDay(tr *trace.Trail, day time.Time, quota int) {
	type plan struct {
		at       time.Duration // time of day
		from, to geo.Point
	}
	weekend := day.Weekday() == time.Saturday || day.Weekday() == time.Sunday
	var plans []plan
	if weekend {
		l := g.leisure[g.rng.Intn(len(g.leisure))]
		start := 10*time.Hour + time.Duration(g.rng.Intn(120))*time.Minute
		plans = append(plans,
			plan{start, g.home, l},
			plan{start + 3*time.Hour, l, g.home},
		)
	} else {
		plans = append(plans,
			plan{8*time.Hour + time.Duration(g.rng.Intn(90))*time.Minute, g.home, g.work},
			plan{18*time.Hour + time.Duration(g.rng.Intn(90))*time.Minute, g.work, g.home},
		)
		if g.rng.Intn(3) == 0 {
			l := g.leisure[g.rng.Intn(len(g.leisure))]
			plans = append(plans,
				plan{20*time.Hour + time.Duration(g.rng.Intn(60))*time.Minute, g.home, l},
			)
		}
	}
	for _, p := range plans {
		if len(tr.Traces) >= quota {
			return
		}
		g.session(tr, day.Add(p.at), p.from, p.to, quota)
	}
}

// session logs one trip from a to b followed by a stationary dwell at
// b — the GPS logger pattern behind GeoLife trajectories.
func (g *userGen) session(tr *trace.Trail, start time.Time, a, b geo.Point, quota int) {
	now := start
	emit := func(p geo.Point) bool {
		if len(tr.Traces) >= quota {
			return false
		}
		tr.Traces = append(tr.Traces, trace.Trace{
			User:         g.user,
			Point:        g.jitter(p),
			AltitudeFeet: 150 + float64(g.rng.Intn(60)),
			Time:         now,
		})
		now = now.Add(g.sampleInterval())
		return true
	}

	// Pre-departure dwell: the logger runs 1-3 minutes at the origin
	// before the trip starts (cold start, walking to the vehicle), so
	// session boundaries anchor at true POIs rather than mid-route.
	preEnd := now.Add(time.Duration(60+g.rng.Intn(121)) * time.Second)
	for now.Before(preEnd) {
		if !emit(a) {
			return
		}
	}

	// Moving segment: travel a→b at the user's speed ±20%, following
	// a slightly curved path.
	tripStart := now
	dist := geo.Haversine(a, b)
	speedMS := g.speed / 3.6 * (0.8 + 0.4*g.rng.Float64())
	duration := dist / speedMS
	bearingOffset := (g.rng.Float64() - 0.5) * 30 // path curvature
	elapsed := 0.0
	for elapsed < duration {
		frac := elapsed / duration
		p := interpolate(a, b, frac, bearingOffset)
		if !emit(p) {
			return
		}
		elapsed = now.Sub(tripStart).Seconds()
	}
	// Stationary dwell at the destination.
	dwell := time.Duration(g.cfg.DwellMinSec+g.rng.Intn(g.cfg.DwellMaxSec-g.cfg.DwellMinSec+1)) * time.Second
	dwellEnd := now.Add(dwell)
	for now.Before(dwellEnd) {
		if !emit(b) {
			return
		}
	}
}

func (g *userGen) sampleInterval() time.Duration {
	span := g.cfg.SampleMaxSec - g.cfg.SampleMinSec + 1
	return time.Duration(g.cfg.SampleMinSec+g.rng.Intn(span)) * time.Second
}

// jitter applies GPS noise to a true position.
func (g *userGen) jitter(p geo.Point) geo.Point {
	d := math.Abs(g.rng.NormFloat64()) * g.cfg.JitterMeters
	return geo.Destination(p, g.rng.Float64()*360, d)
}

// interpolate returns the point at fraction frac of the way from a to
// b, bowed sideways by a sinusoidal curvature (roads are not straight
// lines).
func interpolate(a, b geo.Point, frac, bearingOffset float64) geo.Point {
	lat := a.Lat + (b.Lat-a.Lat)*frac
	lon := a.Lon + (b.Lon-a.Lon)*frac
	mid := geo.Point{Lat: lat, Lon: lon}
	// Perpendicular displacement peaking mid-route.
	amp := geo.Haversine(a, b) * 0.05 * math.Sin(frac*math.Pi)
	if amp == 0 {
		return mid
	}
	return geo.Destination(mid, bearingOffset+90, amp)
}

func randPointIn(rng *rand.Rand, r geo.Rect) geo.Point {
	return geo.Point{
		Lat: r.Min.Lat + rng.Float64()*(r.Max.Lat-r.Min.Lat),
		Lon: r.Min.Lon + rng.Float64()*(r.Max.Lon-r.Min.Lon),
	}
}

// WriteRecords uploads the dataset into the DFS as line-oriented
// record files ("user TAB lat,lon,alt,unix"), one file per user under
// dir — the toolkit's MapReduce input layout, mirroring GeoLife's
// one-directory-per-user structure.
func WriteRecords(fs *dfs.FileSystem, dir string, ds *trace.Dataset) error {
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		var sb strings.Builder
		sb.Grow(len(tr.Traces) * 48)
		for _, t := range tr.Traces {
			sb.WriteString(t.Record())
			sb.WriteByte('\n')
		}
		path := fmt.Sprintf("%s/%s.rec", dir, tr.User)
		if err := fs.Create(path, []byte(sb.String()), ""); err != nil {
			return fmt.Errorf("geolife: uploading %s: %v", path, err)
		}
	}
	return nil
}

// WriteRecordsConcat uploads the dataset as numFiles large record
// files instead of one file per user. Used by the benchmark harness so
// the DFS chunk size (not the per-user file boundaries) determines the
// number of map tasks, as in the paper's single-directory uploads.
func WriteRecordsConcat(fs *dfs.FileSystem, dir string, ds *trace.Dataset, numFiles int) error {
	if numFiles < 1 {
		numFiles = 1
	}
	var bufs = make([]strings.Builder, numFiles)
	total := ds.NumTraces()
	perFile := (total + numFiles - 1) / numFiles
	i := 0
	for _, tr := range ds.Trails {
		for _, t := range tr.Traces {
			b := &bufs[i/perFile]
			b.WriteString(t.Record())
			b.WriteByte('\n')
			i++
		}
	}
	for f := 0; f < numFiles; f++ {
		path := fmt.Sprintf("%s/part-%03d.rec", dir, f)
		if err := fs.Create(path, []byte(bufs[f].String()), ""); err != nil {
			return fmt.Errorf("geolife: uploading %s: %v", path, err)
		}
	}
	return nil
}

// ReadRecords reads a record directory written by WriteRecords or by a
// MapReduce job back into a dataset. Files are sniffed per file: both
// text record files ("user TAB lat,lon,alt,unix" lines, optionally
// with a leading part-file key column) and binary recordio part files
// are accepted, so text uploads and binary job outputs read the same.
func ReadRecords(fs *dfs.FileSystem, dir string) (*trace.Dataset, error) {
	var traces []trace.Trace
	err := ForEachTrace(fs, []string{dir}, func(t trace.Trace) error {
		traces = append(traces, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trace.FromTraces(traces), nil
}

// ForEachTrace streams every trace stored under the given paths (files
// or directories) in file order, sniffing the format of each file. It
// is the single input-scanning loop behind ReadRecords and the
// driver-side passes of the pipelines (k-means seeding and friends).
func ForEachTrace(fs *dfs.FileSystem, paths []string, fn func(trace.Trace) error) error {
	var files []string
	for _, p := range paths {
		if fs.Exists(p) {
			files = append(files, p)
		} else {
			files = append(files, fs.List(p)...)
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("geolife: no record files under %q", strings.Join(paths, ", "))
	}
	for _, f := range files {
		data, err := fs.ReadAll(f)
		if err != nil {
			return err
		}
		if recordio.IsRecordData(data) {
			err = recordio.ScanAll(data, func(_, value string) error {
				t, err := recordio.DecodeTraceValue(value)
				if err != nil {
					return err
				}
				return fn(t)
			})
			if err != nil {
				return fmt.Errorf("geolife: %s: %v", f, err)
			}
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			t, err := ParseRecordValue(line)
			if err != nil {
				return fmt.Errorf("geolife: %s: %v", f, err)
			}
			if err := fn(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParseRecordValue parses a trace record value in any of the formats
// jobs exchange: the binary recordio trace value, a raw text record,
// or a text part-file line with a leading key column. It delegates to
// the shared parser in internal/recordio.
func ParseRecordValue(line string) (trace.Trace, error) {
	return recordio.DecodeTraceValue(line)
}
