package geolife

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/geo"
	"repro/internal/trace"
)

// WriteRecordsLocal writes a dataset as record files (one "<user>.rec"
// per user) into a local directory, creating it if needed. This is the
// on-disk interchange format of the gepeto CLI.
func WriteRecordsLocal(dir string, ds *trace.Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		var sb strings.Builder
		sb.Grow(len(tr.Traces) * 48)
		for _, t := range tr.Traces {
			sb.WriteString(t.Record())
			sb.WriteByte('\n')
		}
		path := filepath.Join(dir, sanitizeFilename(tr.User)+".rec")
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadRecordsLocal reads every *.rec file in a local directory back
// into a dataset.
func ReadRecordsLocal(dir string) (*trace.Dataset, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".rec") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("geolife: no .rec files in %s", dir)
	}
	sort.Strings(names)
	var traces []trace.Trace
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			t, err := ParseRecordValue(line)
			if err != nil {
				return nil, fmt.Errorf("geolife: %s: %v", name, err)
			}
			traces = append(traces, t)
		}
	}
	return trace.FromTraces(traces), nil
}

// sanitizeFilename keeps pseudonyms like "a~1" file-safe.
func sanitizeFilename(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '~', r == '.':
			return r
		}
		return '_'
	}, s)
}

// truthJSON is the serialized form of GroundTruth.
type truthJSON struct {
	Homes   map[string][2]float64   `json:"homes"`
	Works   map[string][2]float64   `json:"works"`
	Leisure map[string][][2]float64 `json:"leisure"`
}

// SaveTruth writes ground truth as JSON (CLI interchange).
func SaveTruth(path string, truth *GroundTruth) error {
	t := truthJSON{
		Homes:   map[string][2]float64{},
		Works:   map[string][2]float64{},
		Leisure: map[string][][2]float64{},
	}
	for u, p := range truth.Homes {
		t.Homes[u] = [2]float64{p.Lat, p.Lon}
	}
	for u, p := range truth.Works {
		t.Works[u] = [2]float64{p.Lat, p.Lon}
	}
	for u, ps := range truth.Leisure {
		for _, p := range ps {
			t.Leisure[u] = append(t.Leisure[u], [2]float64{p.Lat, p.Lon})
		}
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadTruth reads ground truth saved by SaveTruth.
func LoadTruth(path string) (*GroundTruth, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t truthJSON
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("geolife: parsing %s: %v", path, err)
	}
	truth := &GroundTruth{
		Homes:   map[string]geo.Point{},
		Works:   map[string]geo.Point{},
		Leisure: map[string][]geo.Point{},
	}
	for u, p := range t.Homes {
		truth.Homes[u] = geo.Point{Lat: p[0], Lon: p[1]}
	}
	for u, p := range t.Works {
		truth.Works[u] = geo.Point{Lat: p[0], Lon: p[1]}
	}
	for u, ps := range t.Leisure {
		for _, p := range ps {
			truth.Leisure[u] = append(truth.Leisure[u], geo.Point{Lat: p[0], Lon: p[1]})
		}
	}
	return truth, nil
}
