// Package geo provides geodesic primitives used throughout GEPETO:
// distance metrics between spatial coordinates, bounding boxes, speed
// computation and small helpers for moving points across the earth's
// surface.
//
// Two families of metrics are provided, mirroring the paper's §VI:
//
//   - SquaredEuclidean: the squared Euclidean distance in degree space.
//     It is not a true surface distance but preserves the order
//     relationship between candidate points, which is all k-means needs,
//     and it is cheap (no square root, no trigonometry).
//   - Haversine: the great-circle distance over the earth's surface,
//     taking the (spherical approximation of the) shape of the earth
//     into account. More expensive, used when distances must be metric
//     (meters).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean earth radius used by the Haversine
// formula, in meters (IUGG mean radius R1).
const EarthRadiusMeters = 6371008.8

// Point is a spatial coordinate in decimal degrees (WGS84).
type Point struct {
	Lat float64 // latitude in decimal degrees, positive north
	Lon float64 // longitude in decimal degrees, positive east
}

// String renders the point as "lat,lon" with six decimal places
// (roughly 0.1 m resolution), the precision GeoLife logs use.
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

// Valid reports whether the point lies within the WGS84 coordinate
// domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Metric identifies one of the distance metrics supported by the
// toolkit. The zero value is MetricSquaredEuclidean.
type Metric int

const (
	// MetricSquaredEuclidean is the squared Euclidean distance in
	// degree space (order-preserving, unitless).
	MetricSquaredEuclidean Metric = iota
	// MetricEuclidean is the Euclidean distance in degree space.
	MetricEuclidean
	// MetricHaversine is the great-circle distance in meters.
	MetricHaversine
	// MetricManhattan is the L1 norm in degree space (§VI names it as
	// a typical example distance alongside the Euclidean).
	MetricManhattan
)

// ParseMetric converts a metric name as used on the command line
// ("squaredeuclidean", "euclidean", "haversine") into a Metric.
func ParseMetric(name string) (Metric, error) {
	switch name {
	case "squaredeuclidean", "squared-euclidean", "sqeuclidean":
		return MetricSquaredEuclidean, nil
	case "euclidean":
		return MetricEuclidean, nil
	case "haversine":
		return MetricHaversine, nil
	case "manhattan", "l1":
		return MetricManhattan, nil
	}
	return 0, fmt.Errorf("geo: unknown distance metric %q", name)
}

// String returns the canonical name of the metric.
func (m Metric) String() string {
	switch m {
	case MetricSquaredEuclidean:
		return "squaredeuclidean"
	case MetricEuclidean:
		return "euclidean"
	case MetricHaversine:
		return "haversine"
	case MetricManhattan:
		return "manhattan"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Distance computes the distance between a and b under the metric.
// The unit depends on the metric: degrees² for squared Euclidean,
// degrees for Euclidean, meters for Haversine.
func (m Metric) Distance(a, b Point) float64 {
	switch m {
	case MetricSquaredEuclidean:
		return SquaredEuclidean(a, b)
	case MetricEuclidean:
		return math.Sqrt(SquaredEuclidean(a, b))
	case MetricHaversine:
		return Haversine(a, b)
	case MetricManhattan:
		return Manhattan(a, b)
	}
	panic("geo: invalid metric " + m.String())
}

// SquaredEuclidean returns the squared Euclidean distance between a and
// b in degree space. It preserves the order relationship between points
// while avoiding the square root, as exploited by the paper's k-means
// experiments.
func SquaredEuclidean(a, b Point) float64 {
	dLat := a.Lat - b.Lat
	dLon := a.Lon - b.Lon
	return dLat*dLat + dLon*dLon
}

// Haversine returns the great-circle distance between a and b in
// meters, using the haversine formula (Sinnott, "Virtues of the
// haversine", 1984), which is numerically stable for small distances.
func Haversine(a, b Point) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Manhattan returns the L1 distance between a and b in degree space.
func Manhattan(a, b Point) float64 {
	return math.Abs(a.Lat-b.Lat) + math.Abs(a.Lon-b.Lon)
}

// Equirectangular returns an approximate surface distance in meters
// using the equirectangular projection. It is accurate to well under
// 1% for distances below a few hundred kilometers and is cheaper than
// Haversine; the synthetic generator uses it internally.
func Equirectangular(a, b Point) float64 {
	latMid := (a.Lat + b.Lat) / 2 * math.Pi / 180
	x := (b.Lon - a.Lon) * math.Pi / 180 * math.Cos(latMid)
	y := (b.Lat - a.Lat) * math.Pi / 180
	return EarthRadiusMeters * math.Sqrt(x*x+y*y)
}

// SpeedKmh returns the speed in km/h implied by traveling from a to b
// (great-circle) in dt seconds. It returns +Inf when dt is zero and the
// points differ, and 0 when both the distance and dt are zero.
func SpeedKmh(a, b Point, dtSeconds float64) float64 {
	d := Haversine(a, b)
	if dtSeconds <= 0 {
		if d == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return d / dtSeconds * 3.6
}

// Destination returns the point reached by traveling distanceMeters
// from origin along the given initial bearing (degrees clockwise from
// north), following a great circle.
func Destination(origin Point, bearingDeg, distanceMeters float64) Point {
	lat1 := origin.Lat * math.Pi / 180
	lon1 := origin.Lon * math.Pi / 180
	brng := bearingDeg * math.Pi / 180
	dr := distanceMeters / EarthRadiusMeters

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(dr) +
		math.Cos(lat1)*math.Sin(dr)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(
		math.Sin(brng)*math.Sin(dr)*math.Cos(lat1),
		math.Cos(dr)-math.Sin(lat1)*math.Sin(lat2),
	)
	// Normalize longitude to [-180, 180).
	lon2 = math.Mod(lon2+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: lat2 * 180 / math.Pi, Lon: lon2 * 180 / math.Pi}
}

// Midpoint returns the arithmetic midpoint of a and b in degree space.
// For the small extents GEPETO operates on (a metropolitan area) this
// is an adequate approximation of the geodesic midpoint.
func Midpoint(a, b Point) Point {
	return Point{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2}
}

// Rect is an axis-aligned bounding rectangle in degree space, used by
// the R-tree. Min and Max are the south-west and north-east corners.
type Rect struct {
	Min, Max Point
}

// RectFromPoint returns the degenerate rectangle containing exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{Min: p, Max: p}
}

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.Min.Lat && p.Lat <= r.Max.Lat &&
		p.Lon >= r.Min.Lon && p.Lon <= r.Max.Lon
}

// Intersects reports whether r and o overlap (edge contact counts).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.Lat <= o.Max.Lat && r.Max.Lat >= o.Min.Lat &&
		r.Min.Lon <= o.Max.Lon && r.Max.Lon >= o.Min.Lon
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{Lat: math.Min(r.Min.Lat, o.Min.Lat), Lon: math.Min(r.Min.Lon, o.Min.Lon)},
		Max: Point{Lat: math.Max(r.Max.Lat, o.Max.Lat), Lon: math.Max(r.Max.Lon, o.Max.Lon)},
	}
}

// Area returns the area of r in degrees².
func (r Rect) Area() float64 {
	return (r.Max.Lat - r.Min.Lat) * (r.Max.Lon - r.Min.Lon)
}

// Enlargement returns how much r's area grows if extended to cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// MinDistSquared returns the squared Euclidean distance (degree space)
// from p to the nearest point of r; zero if p is inside r. Used to
// prune R-tree branches during nearest-neighbor search.
func (r Rect) MinDistSquared(p Point) float64 {
	dLat := axisDist(p.Lat, r.Min.Lat, r.Max.Lat)
	dLon := axisDist(p.Lon, r.Min.Lon, r.Max.Lon)
	return dLat*dLat + dLon*dLon
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	}
	return 0
}

// ExpandMeters returns r grown by approximately m meters on every side,
// converting meters to degrees at r's mid-latitude. Useful for turning
// a radius query into an R-tree rectangle query.
func (r Rect) ExpandMeters(m float64) Rect {
	midLat := (r.Min.Lat + r.Max.Lat) / 2 * math.Pi / 180
	dLat := m / EarthRadiusMeters * 180 / math.Pi
	cos := math.Cos(midLat)
	if cos < 1e-9 {
		cos = 1e-9
	}
	dLon := dLat / cos
	return Rect{
		Min: Point{Lat: r.Min.Lat - dLat, Lon: r.Min.Lon - dLon},
		Max: Point{Lat: r.Max.Lat + dLat, Lon: r.Max.Lon + dLon},
	}
}
