package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Point
		wantM  float64
		within float64 // relative tolerance
	}{
		{
			name:   "Paris-London",
			a:      Point{48.8566, 2.3522},
			b:      Point{51.5074, -0.1278},
			wantM:  343_500,
			within: 0.01,
		},
		{
			name:   "Beijing 1km east",
			a:      Point{39.9042, 116.4074},
			b:      Destination(Point{39.9042, 116.4074}, 90, 1000),
			wantM:  1000,
			within: 0.001,
		},
		{
			name:   "same point",
			a:      Point{39.9, 116.4},
			b:      Point{39.9, 116.4},
			wantM:  0,
			within: 0,
		},
		{
			name:   "antipodal-ish equator quarter",
			a:      Point{0, 0},
			b:      Point{0, 90},
			wantM:  math.Pi / 2 * EarthRadiusMeters,
			within: 0.001,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Haversine(tt.a, tt.b)
			if tt.wantM == 0 {
				if got != 0 {
					t.Fatalf("Haversine = %v, want 0", got)
				}
				return
			}
			if rel := math.Abs(got-tt.wantM) / tt.wantM; rel > tt.within {
				t.Fatalf("Haversine = %v, want %v (±%v rel)", got, tt.wantM, tt.within)
			}
		})
	}
}

func TestHaversineSymmetry(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clamp(lat1, -90, 90), clamp(lon1, -180, 180)}
		b := Point{clamp(lat2, -90, 90), clamp(lon2, -180, 180)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) <= 1e-6*(1+d1)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(x1, y1, x2, y2, x3, y3 float64) bool {
		a := Point{clamp(x1, -89, 89), clamp(y1, -179, 179)}
		b := Point{clamp(x2, -89, 89), clamp(y2, -179, 179)}
		c := Point{clamp(x3, -89, 89), clamp(y3, -179, 179)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSquaredEuclideanOrderPreserving(t *testing.T) {
	// The paper uses squared Euclidean specifically because it preserves
	// the order relationship between points. Verify against Euclidean.
	cfg := &quick.Config{MaxCount: 300}
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp(ax, -90, 90), clamp(ay, -180, 180)}
		b := Point{clamp(bx, -90, 90), clamp(by, -180, 180)}
		c := Point{clamp(cx, -90, 90), clamp(cy, -180, 180)}
		sq := SquaredEuclidean(a, b) < SquaredEuclidean(a, c)
		eu := MetricEuclidean.Distance(a, b) < MetricEuclidean.Distance(a, c)
		return sq == eu
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEquirectangularApproximatesHaversine(t *testing.T) {
	base := Point{39.9042, 116.4074} // Beijing
	for _, d := range []float64{10, 100, 1000, 10_000, 100_000} {
		for _, brg := range []float64{0, 45, 90, 135, 180, 270} {
			p := Destination(base, brg, d)
			h := Haversine(base, p)
			e := Equirectangular(base, p)
			if rel := math.Abs(h-e) / h; rel > 0.01 {
				t.Fatalf("d=%v brg=%v: haversine=%v equirect=%v rel=%v", d, brg, h, e, rel)
			}
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	origin := Point{39.9, 116.4}
	for _, d := range []float64{5, 500, 50_000} {
		for brg := 0.0; brg < 360; brg += 30 {
			p := Destination(origin, brg, d)
			got := Haversine(origin, p)
			if math.Abs(got-d) > 0.001*d+1e-6 {
				t.Fatalf("Destination(%v, %v): distance %v, want %v", brg, d, got, d)
			}
		}
	}
}

func TestSpeedKmh(t *testing.T) {
	a := Point{39.9, 116.4}
	b := Destination(a, 90, 1000) // 1 km
	if got := SpeedKmh(a, b, 3600); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("1km in 1h: got %v km/h, want ~1", got)
	}
	if got := SpeedKmh(a, b, 60); math.Abs(got-60.0) > 0.5 {
		t.Fatalf("1km in 1min: got %v km/h, want ~60", got)
	}
	if got := SpeedKmh(a, a, 0); got != 0 {
		t.Fatalf("zero distance zero time: got %v, want 0", got)
	}
	if got := SpeedKmh(a, b, 0); !math.IsInf(got, 1) {
		t.Fatalf("nonzero distance zero time: got %v, want +Inf", got)
	}
}

func TestParseMetric(t *testing.T) {
	for name, want := range map[string]Metric{
		"haversine":         MetricHaversine,
		"euclidean":         MetricEuclidean,
		"squaredeuclidean":  MetricSquaredEuclidean,
		"squared-euclidean": MetricSquaredEuclidean,
		"sqeuclidean":       MetricSquaredEuclidean,
		"manhattan":         MetricManhattan,
		"l1":                MetricManhattan,
	} {
		got, err := ParseMetric(name)
		if err != nil || got != want {
			t.Fatalf("ParseMetric(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMetric("manhattan-ish"); err == nil {
		t.Fatal("ParseMetric of unknown name: want error")
	}
}

func TestMetricString(t *testing.T) {
	for _, m := range []Metric{MetricSquaredEuclidean, MetricEuclidean, MetricHaversine, MetricManhattan} {
		back, err := ParseMetric(m.String())
		if err != nil || back != m {
			t.Fatalf("round-trip %v: got %v, %v", m, back, err)
		}
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {-90, -180}, {90, 180}, {39.9, 116.4}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestRectContainsIntersects(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 10}}
	if !r.Contains(Point{5, 5}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Fatal("Contains should include interior and edges")
	}
	if r.Contains(Point{10.001, 5}) || r.Contains(Point{5, -0.001}) {
		t.Fatal("Contains should exclude exterior")
	}
	cases := []struct {
		o    Rect
		want bool
	}{
		{Rect{Point{5, 5}, Point{15, 15}}, true},   // overlap
		{Rect{Point{10, 10}, Point{20, 20}}, true}, // corner touch
		{Rect{Point{11, 11}, Point{20, 20}}, false},
		{Rect{Point{2, 2}, Point{3, 3}}, true}, // contained
	}
	for i, c := range cases {
		if got := r.Intersects(c.o); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.o.Intersects(r); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestRectUnionArea(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	b := Rect{Point{2, 2}, Point{3, 4}}
	u := a.Union(b)
	if u.Min != (Point{0, 0}) || u.Max != (Point{3, 4}) {
		t.Fatalf("Union = %+v", u)
	}
	if got := u.Area(); got != 12 {
		t.Fatalf("Area = %v, want 12", got)
	}
	if got := a.Enlargement(b); got != 11 {
		t.Fatalf("Enlargement = %v, want 11", got)
	}
}

func TestRectUnionProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := mkRect(x1, y1, x2, y2)
		b := mkRect(x3, y3, x4, y4)
		u := a.Union(b)
		// Union contains both corners of both rects and has area >= each.
		return u.Contains(a.Min) && u.Contains(a.Max) &&
			u.Contains(b.Min) && u.Contains(b.Max) &&
			u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMinDistSquared(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 10}}
	if got := r.MinDistSquared(Point{5, 5}); got != 0 {
		t.Fatalf("inside point: got %v, want 0", got)
	}
	if got := r.MinDistSquared(Point{13, 14}); got != 3*3+4*4 {
		t.Fatalf("corner point: got %v, want 25", got)
	}
	if got := r.MinDistSquared(Point{5, 12}); got != 4 {
		t.Fatalf("edge point: got %v, want 4", got)
	}
}

func TestExpandMeters(t *testing.T) {
	p := Point{39.9042, 116.4074}
	r := RectFromPoint(p).ExpandMeters(100)
	if !r.Contains(Destination(p, 0, 99)) || !r.Contains(Destination(p, 90, 99)) {
		t.Fatal("expanded rect should contain points 99m away")
	}
	if r.Contains(Destination(p, 45, 300)) {
		t.Fatal("expanded rect should not contain points 300m away diagonally")
	}
}

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	// Fold arbitrary float into [lo, hi] deterministically.
	span := hi - lo
	v = math.Mod(v-lo, span)
	if v < 0 {
		v += span
	}
	return lo + v
}

func mkRect(x1, y1, x2, y2 float64) Rect {
	a := Point{clamp(x1, -90, 90), clamp(y1, -180, 180)}
	b := Point{clamp(x2, -90, 90), clamp(y2, -180, 180)}
	return Rect{
		Min: Point{math.Min(a.Lat, b.Lat), math.Min(a.Lon, b.Lon)},
		Max: Point{math.Max(a.Lat, b.Lat), math.Max(a.Lon, b.Lon)},
	}
}

func TestManhattanProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Symmetry, identity, triangle inequality: L1 is a true metric.
	f := func(x1, y1, x2, y2, x3, y3 float64) bool {
		a := Point{clamp(x1, -90, 90), clamp(y1, -180, 180)}
		b := Point{clamp(x2, -90, 90), clamp(y2, -180, 180)}
		c := Point{clamp(x3, -90, 90), clamp(y3, -180, 180)}
		if Manhattan(a, b) != Manhattan(b, a) {
			return false
		}
		if Manhattan(a, a) != 0 {
			return false
		}
		return Manhattan(a, c) <= Manhattan(a, b)+Manhattan(b, c)+1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// L1 >= L2 always.
	if Manhattan(Point{0, 0}, Point{3, 4}) != 7 {
		t.Fatal("Manhattan(0,0 -> 3,4) != 7")
	}
}

func TestPointStringAndMidpoint(t *testing.T) {
	p := Point{Lat: 39.9042, Lon: 116.4074}
	if got := p.String(); got != "39.904200,116.407400" {
		t.Fatalf("String = %q", got)
	}
	mid := Midpoint(Point{Lat: 39, Lon: 116}, Point{Lat: 40, Lon: 117})
	if mid != (Point{Lat: 39.5, Lon: 116.5}) {
		t.Fatalf("Midpoint = %v", mid)
	}
}

func TestMetricDistanceDispatch(t *testing.T) {
	a := Point{Lat: 39.9, Lon: 116.4}
	b := Point{Lat: 39.91, Lon: 116.42}
	if MetricSquaredEuclidean.Distance(a, b) != SquaredEuclidean(a, b) {
		t.Fatal("squared euclidean dispatch")
	}
	if MetricEuclidean.Distance(a, b) != math.Sqrt(SquaredEuclidean(a, b)) {
		t.Fatal("euclidean dispatch")
	}
	if MetricHaversine.Distance(a, b) != Haversine(a, b) {
		t.Fatal("haversine dispatch")
	}
	if MetricManhattan.Distance(a, b) != Manhattan(a, b) {
		t.Fatal("manhattan dispatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric should panic")
		}
	}()
	Metric(99).Distance(a, b)
}
