// Job serialization for out-of-process executors. A Job carries
// function fields (mapper/reducer factories, partitioner, comparator)
// that cannot cross a process boundary, so remote execution uses a
// kind registry: the driver names the job's kind, the wire form
// carries the name plus the job's plain data, and the worker binary —
// which registered the same kind at init — re-materialises the
// functions on its side. The same pattern as Hadoop shipping class
// names in the JobConf and instantiating them tasktracker-side.

package mapreduce

import (
	"fmt"
	"sync"
)

// JobKind is the functional surface of a job family: everything a
// worker needs beyond the per-job data in JobWire.
type JobKind struct {
	NewMapper   func() Mapper
	NewReducer  func() Reducer
	NewCombiner func() Reducer
	Partitioner func(key string, numReducers int) int
	KeyCompare  func(a, b string) int
}

var (
	kindMu sync.RWMutex
	kinds  = make(map[string]JobKind)
)

// RegisterKind makes a job kind available for remote execution under
// the given name. Call it from an init function (or other
// start-of-world code) in a package both the driver and the worker
// binary import; registering a duplicate name panics, like
// gob.Register.
func RegisterKind(name string, k JobKind) {
	if name == "" {
		panic("mapreduce: RegisterKind with empty name")
	}
	if k.NewMapper == nil {
		panic(fmt.Sprintf("mapreduce: RegisterKind %q without NewMapper", name))
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	if _, dup := kinds[name]; dup {
		panic(fmt.Sprintf("mapreduce: RegisterKind %q registered twice", name))
	}
	kinds[name] = k
}

// LookupKind returns the registered kind for name.
func LookupKind(name string) (JobKind, bool) {
	kindMu.RLock()
	defer kindMu.RUnlock()
	k, ok := kinds[name]
	return k, ok
}

// KindOf extracts a job's functional surface as a registrable kind —
// the usual way a driver registers a typed job template:
//
//	mapreduce.RegisterKind("myjob", mapreduce.KindOf(template.Build()))
func KindOf(job *Job) JobKind {
	return JobKind{
		NewMapper:   job.NewMapper,
		NewReducer:  job.NewReducer,
		NewCombiner: job.NewCombiner,
		Partitioner: job.Partitioner,
		KeyCompare:  job.KeyCompare,
	}
}

// JobWire is the process-crossing form of a Job: its plain data plus
// the kind name standing in for the function fields. All fields gob-
// encode.
type JobWire struct {
	Name         string
	Kind         string
	NumReducers  int
	BinaryOutput bool
	// HasCombiner records whether the driver's job enabled the kind's
	// combiner (a kind may register one that individual jobs turn off,
	// as k-means does behind KMeansOptions.UseCombiner).
	HasCombiner bool
	Conf        map[string]string
	Cache       map[string][]byte
	// ShuffleBudget is the driver-resolved per-task spill budget
	// (adaptive derivation included), so workers never re-derive it.
	ShuffleBudget int64
	CompressSpill bool
}

// Wire converts the job for shipping to a worker. It fails when the
// job has no kind, or the kind is not registered in this binary —
// catching a typo driver-side beats a per-task failure worker-side.
func (j *Job) Wire(shuffleBudget int64) (JobWire, error) {
	if j.Kind == "" {
		return JobWire{}, fmt.Errorf("mapreduce: job %s has no Kind; remote execution needs a registered kind", j.Name)
	}
	if _, ok := LookupKind(j.Kind); !ok {
		return JobWire{}, fmt.Errorf("mapreduce: job %s: kind %q is not registered", j.Name, j.Kind)
	}
	return JobWire{
		Name:          j.Name,
		Kind:          j.Kind,
		NumReducers:   j.NumReducers,
		BinaryOutput:  j.BinaryOutput,
		HasCombiner:   j.NewCombiner != nil,
		Conf:          j.Conf,
		Cache:         j.Cache,
		ShuffleBudget: shuffleBudget,
		CompressSpill: j.CompressSpill,
	}, nil
}

// Materialize rebuilds a runnable Job worker-side from the registry.
func (w JobWire) Materialize() (*Job, error) {
	k, ok := LookupKind(w.Kind)
	if !ok {
		return nil, fmt.Errorf("mapreduce: job kind %q is not registered in this binary", w.Kind)
	}
	job := &Job{
		Name:            w.Name,
		Kind:            w.Kind,
		NumReducers:     w.NumReducers,
		BinaryOutput:    w.BinaryOutput,
		Conf:            w.Conf,
		Cache:           w.Cache,
		MaxShuffleBytes: w.ShuffleBudget,
		CompressSpill:   w.CompressSpill,
		NewMapper:       k.NewMapper,
		NewReducer:      k.NewReducer,
		Partitioner:     k.Partitioner,
		KeyCompare:      k.KeyCompare,
	}
	if w.HasCombiner {
		if k.NewCombiner == nil {
			return nil, fmt.Errorf("mapreduce: job %s uses a combiner but kind %q registered none", w.Name, w.Kind)
		}
		job.NewCombiner = k.NewCombiner
	}
	return job, nil
}
