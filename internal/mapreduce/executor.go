// The executor layer: the boundary between the scheduler (which
// decides WHERE and WHEN an attempt runs) and task execution (which
// decides HOW). The scheduler only ever sees TaskSpec in and
// TaskResult out, so the same locality / speculation / retry machinery
// drives both the in-process backend (tasks as goroutines, results
// passed by pointer) and the RPC backend (tasks shipped to worker
// processes, results gob-encoded over the wire).

package mapreduce

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dfs"
)

// RunDesc describes one file-backed sorted run in the DFS — the wire
// form of a spillRun, exported so task results cross process
// boundaries.
type RunDesc struct {
	Path    string
	Records int64
	Bytes   int64 // raw key+value bytes, pre-compression
}

// TaskSpec is everything an executor needs to run one task attempt.
// Exactly one of Split (map) or Partition+Runs (reduce) is meaningful,
// selected by Phase.
type TaskSpec struct {
	// Job is the full job description. In-process executors use its
	// function fields directly; remote executors ship it as a JobWire
	// and re-materialise the functions from the kind registry.
	Job *Job
	// Phase is "map" or "reduce".
	Phase string
	// TaskID is the task identifier ("map-0007", "reduce-0000").
	TaskID string
	// Index is the task's position in its phase (split index for maps,
	// partition number for reduces).
	Index int
	// Attempt is the attempt number, unique per task.
	Attempt int
	// Node is the tasktracker the scheduler placed this attempt on.
	Node string
	// MapOnly marks jobs without a reducer.
	MapOnly bool
	// NumReducers is the resolved reducer count (>= 1).
	NumReducers int
	// ShuffleBudget is the resolved per-task spill budget in bytes
	// (Job.MaxShuffleBytes, or the adaptive derivation from
	// Job.MemoryTargetBytes; 0 keeps the in-memory shuffle).
	ShuffleBudget int64
	// Split is the map task's input range.
	Split InputSplit
	// Partition is the reduce task's partition number.
	Partition int
	// Runs are the file-backed sorted runs feeding a reduce task on an
	// external executor (every map output is file-backed there).
	Runs []RunDesc
}

// TaskStats carries the winning attempt's counter deltas back to the
// driver, which commits them winner-only (speculative losers are
// discarded, stats and all).
type TaskStats struct {
	MapInputRecords      int64
	MapOutputRecords     int64
	CombineInputRecords  int64
	CombineOutputRecords int64
	SpilledRecords       int64
	SpillFiles           int64
	SpillBytes           int64
	ReduceInputRecords   int64
	ReduceOutputRecords  int64
	ReduceInputGroups    int64
}

// TaskResult is one attempt's output. The exported fields survive gob
// encoding; the local* fields are the in-process fast path (pointers
// into driver memory) and never cross a process boundary.
type TaskResult struct {
	// Records is the number of input records processed.
	Records int64
	// MapRuns lists a map task's spilled runs per reduce partition
	// (external executors only; every partition is file-backed there).
	MapRuns [][]RunDesc
	// OutFile is the attempt-unique temp file holding a reduce or
	// map-only task's final output (external executors only). The
	// driver renames the winner's into place; losers' temps are swept
	// with the job's temp directory.
	OutFile string
	// Stats are the attempt's counter deltas, committed winner-only.
	Stats TaskStats
	// UserCounters snapshots counters ticked by user task code on an
	// external executor, merged into the job's counters winner-only.
	UserCounters map[string]map[string]int64

	localMap    *mapOutput // in-process map output (mem and/or file runs)
	localReduce []KV       // in-process reduce output
}

// Executor runs task attempts for the scheduler.
type Executor interface {
	// RunTask executes one attempt to completion. The context is
	// cancelled when the phase ends, releasing executors that block on
	// remote completion (losing speculative attempts are abandoned).
	RunTask(ctx context.Context, spec TaskSpec) (TaskResult, error)
	// External reports whether results live outside driver memory —
	// map outputs as DFS run files, reduce outputs as DFS temp files —
	// in which case the engine plans an all-file shuffle and commits
	// outputs by rename.
	External() bool
}

// localExecutor is the in-process backend: tasks run as goroutines on
// the scheduler's slot workers, exactly as the monolithic engine did.
// It carries the per-job state the phases share (the live counters,
// and the shuffle's merged partitions between map and reduce).
type localExecutor struct {
	e           *Engine
	job         *Job
	mapOnly     bool
	numReducers int
	partition   func(key string, numReducers int) int
	budget      int64
	// counters is the job's live counter registry. Task code ticks it
	// directly — losing speculative attempts included, preserving the
	// engine's historical user-counter semantics.
	counters *Counters
	// reduceInputs / extParts are set by the engine between the map
	// and reduce phases (eagerly merged partitions, and deferred
	// file-backed ones).
	reduceInputs [][]KV
	extParts     []*extPartition
}

func (x *localExecutor) External() bool { return false }

func (x *localExecutor) RunTask(_ context.Context, spec TaskSpec) (TaskResult, error) {
	e := x.e
	if e.opts.FailureHook != nil {
		if ferr := e.opts.FailureHook(spec.TaskID, spec.Attempt, spec.Node); ferr != nil {
			return TaskResult{}, ferr
		}
	}
	if e.opts.TaskOverhead > 0 {
		time.Sleep(e.opts.TaskOverhead)
	}
	ctx := &TaskContext{
		JobName: x.job.Name, TaskID: spec.TaskID, Attempt: spec.Attempt, Node: spec.Node,
		conf: x.job.Conf, cache: x.job.Cache, counters: x.counters,
	}
	if spec.Phase == "map" {
		out, records, sp, err := execMapAttempt(e.fs, x.job, ctx, spec, x.partition, x.budget, false)
		if err != nil {
			return TaskResult{}, err
		}
		return TaskResult{Records: records, Stats: sp.stats(records), localMap: out}, nil
	}
	return x.runReduceAttempt(ctx, spec)
}

// runReduceAttempt consumes the partition through a streaming group
// iterator; each attempt gets its own cursor — over the shared
// read-only merged slice, or, for an external partition, a fresh k-way
// merge with its own file cursors — so concurrent speculative attempts
// need no defensive copy and nobody re-sorts.
func (x *localExecutor) runReduceAttempt(ctx *TaskContext, spec TaskSpec) (TaskResult, error) {
	job, r := x.job, spec.Partition
	var groups, inRecords int64
	var out []KV
	var err error
	if ext := x.extParts[r]; ext != nil {
		it, ierr := ext.iter(x.e.fs, job.KeyCompare)
		if ierr != nil {
			return TaskResult{}, fmt.Errorf("%s: %v", spec.TaskID, ierr)
		}
		out, err = runReduce(ctx, job.NewReducer(), it, &groups, job.KeyCompare)
		if err == nil {
			// The merge stream has no error channel; a spill-file
			// read failure ends it early and surfaces here.
			err = it.Err()
		}
		inRecords = ext.records
	} else {
		out, err = runReduce(ctx, job.NewReducer(), &sliceIter{kvs: x.reduceInputs[r]}, &groups, job.KeyCompare)
		inRecords = int64(len(x.reduceInputs[r]))
	}
	if err != nil {
		return TaskResult{}, fmt.Errorf("%s: %v", spec.TaskID, err)
	}
	return TaskResult{
		Records:     inRecords,
		localReduce: out,
		Stats: TaskStats{
			ReduceInputRecords:  inRecords,
			ReduceOutputRecords: int64(len(out)),
			ReduceInputGroups:   groups,
		},
	}, nil
}

// execMapAttempt is the map-attempt body shared by the in-process
// executor and the worker-side ExecuteTask: feed the split through the
// mapper into a spiller, seal the output. With forceSpill every
// partition ends file-backed (the RPC backend's only way to move
// intermediate data between processes).
func execMapAttempt(store dfs.Store, job *Job, ctx *TaskContext, spec TaskSpec, partition func(string, int) int, budget int64, forceSpill bool) (*mapOutput, int64, *mapSpiller, error) {
	// The spiller owns the partitioned output buffer: with no budget it
	// reduces to the legacy commit-time sort+combine (Hadoop's map-side
	// spill sort — the shuffle then only merges pre-sorted runs and the
	// reducers never re-sort); with a budget it additionally writes
	// sorted+combined run files to DFS whenever the buffer trips it.
	sp := newMapSpiller(store, job, ctx, spec.TaskID, spec.Attempt, spec.Node, spec.MapOnly, spec.NumReducers, partition, budget, forceSpill)
	m := job.NewMapper()
	if err := m.Setup(ctx); err != nil {
		return nil, 0, nil, fmt.Errorf("%s setup: %v", spec.TaskID, err)
	}
	var records int64
	err := readSplit(store, spec.Split, func(key, value string) error {
		records++
		return m.Map(ctx, key, value, sp.emit)
	})
	if err != nil {
		return nil, 0, nil, fmt.Errorf("%s: %v", spec.TaskID, err)
	}
	if err := m.Cleanup(ctx, sp.emit); err != nil {
		return nil, 0, nil, fmt.Errorf("%s cleanup: %v", spec.TaskID, err)
	}
	out, err := sp.finish()
	if err != nil {
		return nil, 0, nil, fmt.Errorf("%s: %v", spec.TaskID, err)
	}
	return out, records, sp, nil
}

// mergeUserCounters folds a remote attempt's counter snapshot into the
// job's registry (winner-only: the scheduler calls commit exactly once
// per task).
func mergeUserCounters(cs *Counters, snap map[string]map[string]int64) {
	for group, names := range snap {
		for name, v := range names {
			if v != 0 {
				cs.Get(group, name).Inc(v)
			}
		}
	}
}
