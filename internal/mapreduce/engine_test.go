package mapreduce

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
)

// newTestEngine builds an engine over a small cluster with a small
// chunk size so multi-chunk behaviour is exercised.
func newTestEngine(t *testing.T, chunkSize int64) *Engine {
	t.Helper()
	c, err := cluster.NewUniform(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: chunkSize, Replication: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(c, fs, Options{})
}

// wordMapper tokenizes lines into (word, 1) pairs.
type wordMapper struct{ MapperBase }

func (wordMapper) Map(_ *TaskContext, _, value string, emit Emit) error {
	for _, w := range strings.Fields(value) {
		emit(w, "1")
	}
	return nil
}

// sumReducer sums integer values per key.
type sumReducer struct{ ReducerBase }

func (sumReducer) Reduce(_ *TaskContext, key string, values []string, emit Emit) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
	return nil
}

func writeInput(t *testing.T, e *Engine, path, content string) {
	t.Helper()
	if err := e.FS().Create(path, []byte(content), ""); err != nil {
		t.Fatal(err)
	}
}

func TestWordCountEndToEnd(t *testing.T) {
	e := newTestEngine(t, 32) // tiny chunks: many splits
	text := strings.Repeat("the quick brown fox jumps over the lazy dog\n", 50)
	writeInput(t, e, "in/text", text)

	res, err := e.Run(&Job{
		Name:        "wordcount",
		InputPaths:  []string{"in"},
		OutputPath:  "out",
		NewMapper:   func() Mapper { return wordMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks < 10 {
		t.Fatalf("expected many map tasks with 32-byte chunks, got %d", res.MapTasks)
	}
	if res.ReduceTasks != 3 {
		t.Fatalf("ReduceTasks = %d", res.ReduceTasks)
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range kvs {
		got[kv.Key] = kv.Value
	}
	want := map[string]string{
		"the": "100", "quick": "50", "brown": "50", "fox": "50",
		"jumps": "50", "over": "50", "lazy": "50", "dog": "50",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d words, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: got %s, want %s", k, got[k], v)
		}
	}
	// Counters: 50 lines in, 450 map outputs.
	if n := res.Counters.Value(CounterGroupTask, CounterMapInputRecords); n != 50 {
		t.Errorf("map_input_records = %d, want 50", n)
	}
	if n := res.Counters.Value(CounterGroupTask, CounterMapOutputRecords); n != 450 {
		t.Errorf("map_output_records = %d, want 450", n)
	}
	if n := res.Counters.Value(CounterGroupTask, CounterReduceInputGroups); n != 8 {
		t.Errorf("reduce_input_groups = %d, want 8", n)
	}
}

func TestNoRecordLossAcrossChunkBoundaries(t *testing.T) {
	// Records must be processed exactly once regardless of chunk size;
	// this is the LineRecordReader boundary contract.
	for _, chunk := range []int64{7, 16, 31, 64, 100, 1000, 1 << 20} {
		e := newTestEngine(t, chunk)
		var sb strings.Builder
		const n = 500
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "rec%04d\n", i)
		}
		writeInput(t, e, "in/f", sb.String())
		_, err := e.Run(&Job{
			Name:       "identity",
			InputPaths: []string{"in/f"},
			OutputPath: "out",
			NewMapper: func() Mapper {
				return MapFunc(func(_ *TaskContext, _, v string, emit Emit) error {
					emit(v, "x")
					return nil
				})
			},
			NewReducer: func() Reducer {
				return ReduceFunc(func(_ *TaskContext, k string, vs []string, emit Emit) error {
					emit(k, strconv.Itoa(len(vs)))
					return nil
				})
			},
		})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		kvs, err := e.ReadOutput("out")
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != n {
			t.Fatalf("chunk=%d: %d distinct records, want %d", chunk, len(kvs), n)
		}
		for _, kv := range kvs {
			if kv.Value != "1" {
				t.Fatalf("chunk=%d: record %s seen %s times", chunk, kv.Key, kv.Value)
			}
		}
	}
}

func TestRecordOffsetsAreFileOffsets(t *testing.T) {
	e := newTestEngine(t, 10)
	writeInput(t, e, "in/f", "aaaa\nbbbb\ncccc\ndddd\n")
	var mu sync.Mutex
	offsets := map[string]string{}
	_, err := e.Run(&Job{
		Name:       "offsets",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, k, v string, _ Emit) error {
				mu.Lock()
				offsets[v] = k
				mu.Unlock()
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"aaaa": "0", "bbbb": "5", "cccc": "10", "dddd": "15"}
	for line, off := range want {
		if offsets[line] != off {
			t.Errorf("offset of %q = %s, want %s", line, offsets[line], off)
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "keep 1\ndrop 2\nkeep 3\n")
	res, err := e.Run(&Job{
		Name:       "filter",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, emit Emit) error {
				if strings.HasPrefix(v, "keep") {
					emit("k", v)
				}
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceTasks != 0 {
		t.Fatalf("map-only job ran %d reducers", res.ReduceTasks)
	}
	for _, f := range res.OutputFiles {
		if !strings.Contains(f, "part-m-") {
			t.Fatalf("map-only output file %s should be part-m", f)
		}
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("got %d records, want 2", len(kvs))
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	e1 := newTestEngine(t, 32)
	e2 := newTestEngine(t, 32)
	text := strings.Repeat("alpha beta alpha gamma alpha beta\n", 100)
	writeInput(t, e1, "in/f", text)
	writeInput(t, e2, "in/f", text)

	base := &Job{
		Name:       "nocombine",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
		NewReducer: func() Reducer { return sumReducer{} },
	}
	r1, err := e1.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withComb := *base
	withComb.Name = "combine"
	withComb.NewCombiner = func() Reducer { return sumReducer{} }
	r2, err := e2.Run(&withComb)
	if err != nil {
		t.Fatal(err)
	}

	// Same final answer.
	o1, _ := e1.ReadOutput("out")
	o2, _ := e2.ReadOutput("out")
	if fmt.Sprint(o1) != fmt.Sprint(o2) {
		t.Fatalf("combiner changed results:\n%v\n%v", o1, o2)
	}
	// Lower shuffle bytes.
	s1 := r1.Counters.Value(CounterGroupShuffle, CounterShuffleBytes)
	s2 := r2.Counters.Value(CounterGroupShuffle, CounterShuffleBytes)
	if s2 >= s1 {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d", s2, s1)
	}
	if r2.Counters.Value(CounterGroupTask, CounterCombineInput) == 0 {
		t.Fatal("combine_input_records not counted")
	}
}

func TestMapperStateAcrossRecordsAndCleanup(t *testing.T) {
	// A stateful mapper (like the sampling mapper) must see records of
	// its split in order and be able to flush in Cleanup.
	e := newTestEngine(t, 1<<20) // single chunk: one mapper
	writeInput(t, e, "in/f", "1\n2\n3\n4\n5\n")
	_, err := e.Run(&Job{
		Name:       "stateful",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return &statefulSum{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, _ := e.ReadOutput("out")
	if len(kvs) != 1 || kvs[0].Key != "sum" || kvs[0].Value != "15" {
		t.Fatalf("got %v, want [sum 15]", kvs)
	}
}

type statefulSum struct {
	MapperBase
	sum int
}

func (m *statefulSum) Map(_ *TaskContext, _, v string, _ Emit) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	m.sum += n
	return nil
}

func (m *statefulSum) Cleanup(_ *TaskContext, emit Emit) error {
	emit("sum", strconv.Itoa(m.sum))
	return nil
}

func TestDistributedCacheAndConf(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "x\n")
	var gotCache string
	var gotConf, gotDefault string
	var mu sync.Mutex
	_, err := e.Run(&Job{
		Name:       "cache",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		Conf:       map[string]string{"window": "60"},
		Cache:      map[string][]byte{"centroids": []byte("c1,c2")},
		NewMapper: func() Mapper {
			return MapFunc(func(ctx *TaskContext, _, _ string, _ Emit) error {
				b, ok := ctx.CacheFile("centroids")
				if !ok {
					return fmt.Errorf("cache file missing")
				}
				mu.Lock()
				gotCache = string(b)
				gotConf = ctx.Conf("window")
				gotDefault = ctx.ConfDefault("missing", "fallback")
				mu.Unlock()
				if _, ok := ctx.CacheFile("absent"); ok {
					return fmt.Errorf("phantom cache file")
				}
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotCache != "c1,c2" || gotConf != "60" || gotDefault != "fallback" {
		t.Fatalf("cache=%q conf=%q default=%q", gotCache, gotConf, gotDefault)
	}
}

func TestTaskRetryOnInjectedFailure(t *testing.T) {
	c, _ := cluster.NewUniform(4, 2, 2)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 64, Replication: 3, Seed: 1})
	var mu sync.Mutex
	failed := map[string]int{}
	e := NewEngine(c, fs, Options{
		FailureHook: func(taskID string, attempt int, node string) error {
			mu.Lock()
			defer mu.Unlock()
			// Fail the first attempt of every map task.
			if strings.HasPrefix(taskID, "map-") && attempt == 0 {
				failed[taskID]++
				return fmt.Errorf("injected failure")
			}
			return nil
		},
	})
	writeInput(t, e, "in/f", strings.Repeat("hello world\n", 20))
	res, err := e.Run(&Job{
		Name:       "retry",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
		NewReducer: func() Reducer { return sumReducer{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != res.MapTasks {
		t.Fatalf("injected %d failures for %d tasks", len(failed), res.MapTasks)
	}
	// Every map task needed 2 attempts.
	for _, tr := range res.Tasks {
		if strings.HasPrefix(tr.ID, "map-") && tr.Attempts != 2 {
			t.Fatalf("task %s: %d attempts, want 2", tr.ID, tr.Attempts)
		}
	}
	kvs, _ := e.ReadOutput("out")
	got := map[string]string{}
	for _, kv := range kvs {
		got[kv.Key] = kv.Value
	}
	if got["hello"] != "20" || got["world"] != "20" {
		t.Fatalf("wrong output after retries: %v", got)
	}
}

func TestRetryAvoidsFailingNode(t *testing.T) {
	c, _ := cluster.NewUniform(4, 2, 2)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 1 << 20, Replication: 3, Seed: 1})
	badNode := c.Nodes()[0].ID
	var mu sync.Mutex
	attemptNodes := map[int]string{}
	e := NewEngine(c, fs, Options{
		FailureHook: func(taskID string, attempt int, node string) error {
			if !strings.HasPrefix(taskID, "map-") {
				return nil
			}
			mu.Lock()
			attemptNodes[attempt] = node
			mu.Unlock()
			if node == badNode {
				return fmt.Errorf("bad node")
			}
			return nil
		},
	})
	writeInput(t, e, "in/f", "x\n")
	res, err := e.Run(&Job{
		Name:        "avoid",
		InputPaths:  []string{"in/f"},
		OutputPath:  "out",
		NewMapper:   func() Mapper { return wordMapper{} },
		MaxAttempts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for a := 1; a < len(attemptNodes); a++ {
		if attemptNodes[a] == attemptNodes[a-1] {
			t.Fatalf("attempt %d reran on the same node %s", a, attemptNodes[a])
		}
	}
	for _, tr := range res.Tasks {
		if tr.Node == badNode {
			t.Fatalf("successful attempt recorded on failing node")
		}
	}
}

func TestJobFailsAfterMaxAttempts(t *testing.T) {
	c, _ := cluster.NewUniform(3, 1, 2)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 64, Replication: 2, Seed: 1})
	e := NewEngine(c, fs, Options{
		FailureHook: func(taskID string, attempt int, node string) error {
			return fmt.Errorf("always fails")
		},
	})
	writeInput(t, e, "in/f", "x\n")
	_, err := e.Run(&Job{
		Name:        "doomed",
		InputPaths:  []string{"in/f"},
		OutputPath:  "out",
		NewMapper:   func() Mapper { return wordMapper{} },
		MaxAttempts: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("err = %v, want max-attempts failure", err)
	}
}

func TestMapperErrorFailsJob(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "boom\n")
	_, err := e.Run(&Job{
		Name:       "maperr",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, _ Emit) error {
				return fmt.Errorf("cannot handle %q", v)
			})
		},
		MaxAttempts: 1,
	})
	if err == nil {
		t.Fatal("want error from failing mapper")
	}
}

func TestReducerErrorFailsJob(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "a\n")
	_, err := e.Run(&Job{
		Name:       "rederr",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
		NewReducer: func() Reducer {
			return ReduceFunc(func(_ *TaskContext, _ string, _ []string, _ Emit) error {
				return fmt.Errorf("reduce boom")
			})
		},
		MaxAttempts: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "reduce boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "x\n")
	mapper := func() Mapper { return wordMapper{} }
	cases := []*Job{
		{InputPaths: []string{"in/f"}, OutputPath: "o", NewMapper: mapper},                                                                 // no name
		{Name: "j", OutputPath: "o", NewMapper: mapper},                                                                                    // no input
		{Name: "j", InputPaths: []string{"in/f"}, NewMapper: mapper},                                                                       // no output
		{Name: "j", InputPaths: []string{"in/f"}, OutputPath: "o"},                                                                         // no mapper
		{Name: "j", InputPaths: []string{"in/f"}, OutputPath: "o", NewMapper: mapper, NewCombiner: func() Reducer { return sumReducer{} }}, // combiner w/o reducer
	}
	for i, j := range cases {
		if _, err := e.Run(j); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestMissingInputErrors(t *testing.T) {
	e := newTestEngine(t, 64)
	_, err := e.Run(&Job{
		Name:       "noin",
		InputPaths: []string{"does/not/exist"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err == nil {
		t.Fatal("want error for missing input")
	}
}

func TestOutputExistsError(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "x\n")
	writeInput(t, e, "out/part-m-00000", "old\n")
	_, err := e.Run(&Job{
		Name:       "clobber",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("err = %v, want output-exists error", err)
	}
}

func TestPipeline(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "a b a\nc a b\n")
	count := &Job{
		Name:       "count",
		InputPaths: []string{"in/f"},
		OutputPath: "stage1",
		NewMapper:  func() Mapper { return wordMapper{} },
		NewReducer: func() Reducer { return sumReducer{} },
	}
	// Second job: swap (word,count) -> (count,word) and count words per frequency.
	invert := &Job{
		Name:       "invert",
		InputPaths: []string{"stage1"},
		OutputPath: "stage2",
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, emit Emit) error {
				word, cnt, ok := strings.Cut(v, "\t")
				if !ok {
					return fmt.Errorf("bad record %q", v)
				}
				emit(cnt, word)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReduceFunc(func(_ *TaskContext, k string, vs []string, emit Emit) error {
				emit(k, strconv.Itoa(len(vs)))
				return nil
			})
		},
	}
	results, err := e.RunPipeline(count, invert)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	kvs, _ := e.ReadOutput("stage2")
	got := map[string]string{}
	for _, kv := range kvs {
		got[kv.Key] = kv.Value
	}
	// a:3, b:2, c:1 -> one word each with counts 3,2,1.
	if got["1"] != "1" || got["2"] != "1" || got["3"] != "1" {
		t.Fatalf("got %v", got)
	}
}

func TestPipelineFailsFast(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "x\n")
	bad := &Job{Name: "bad", InputPaths: []string{"missing"}, OutputPath: "o1",
		NewMapper: func() Mapper { return wordMapper{} }}
	never := &Job{Name: "never", InputPaths: []string{"o1"}, OutputPath: "o2",
		NewMapper: func() Mapper { return wordMapper{} }}
	results, err := e.RunPipeline(bad, never)
	if err == nil || len(results) != 0 {
		t.Fatalf("results=%d err=%v", len(results), err)
	}
}

func TestLocalityScheduling(t *testing.T) {
	// With replication 3 over 6 nodes, most map tasks should run
	// data-local; all should be at worst rack-local with 2 racks.
	e := newTestEngine(t, 128)
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "line %d with some padding text\n", i)
	}
	writeInput(t, e, "in/f", sb.String())
	res, err := e.Run(&Job{
		Name:       "locality",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	dataLocal := res.Counters.Value(CounterGroupScheduler, CounterDataLocal)
	rackLocal := res.Counters.Value(CounterGroupScheduler, CounterRackLocal)
	offRack := res.Counters.Value(CounterGroupScheduler, CounterOffRack)
	total := dataLocal + rackLocal + offRack
	if total != int64(res.MapTasks) {
		t.Fatalf("locality counters %d != map tasks %d", total, res.MapTasks)
	}
	// With 3 replicas over 6 nodes and greedy (non-delay) scheduling,
	// roughly half the tasks land data-local; require a healthy floor.
	if dataLocal < total*2/5 {
		t.Errorf("only %d/%d tasks data-local", dataLocal, total)
	}
	for _, tr := range res.Tasks {
		if strings.HasPrefix(tr.ID, "map-") && tr.Locality == "" {
			t.Errorf("map task %s missing locality", tr.ID)
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	e := newTestEngine(t, 1<<20)
	writeInput(t, e, "in/f", "a 1\nb 2\na 3\nb 4\n")
	_, err := e.Run(&Job{
		Name:        "partition",
		InputPaths:  []string{"in/f"},
		OutputPath:  "out",
		NumReducers: 2,
		Partitioner: func(key string, n int) int {
			if key == "a" {
				return 0
			}
			return 1
		},
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, emit Emit) error {
				k, val, _ := strings.Cut(v, " ")
				emit(k, val)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReduceFunc(func(_ *TaskContext, k string, vs []string, emit Emit) error {
				emit(k, strings.Join(vs, "+"))
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := e.FS().ReadAll("out/part-r-00000")
	p1, _ := e.FS().ReadAll("out/part-r-00001")
	if !strings.HasPrefix(string(p0), "a\t") {
		t.Fatalf("part 0 = %q, want key a", p0)
	}
	if !strings.HasPrefix(string(p1), "b\t") {
		t.Fatalf("part 1 = %q, want key b", p1)
	}
}

func TestHashPartitionStableAndInRange(t *testing.T) {
	for _, key := range []string{"", "a", "key-1", "key-2", "中文"} {
		p := HashPartition(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
		if p2 := HashPartition(key, 7); p2 != p {
			t.Fatal("partitioner not deterministic")
		}
	}
}

func TestReduceValuesGrouped(t *testing.T) {
	// All values for a key must arrive in a single Reduce call.
	e := newTestEngine(t, 16) // many mappers for the same keys
	writeInput(t, e, "in/f", strings.Repeat("k v\n", 50))
	calls := map[string]int{}
	var mu sync.Mutex
	_, err := e.Run(&Job{
		Name:       "grouping",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, emit Emit) error {
				k, val, _ := strings.Cut(v, " ")
				emit(k, val)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReduceFunc(func(_ *TaskContext, k string, vs []string, emit Emit) error {
				mu.Lock()
				calls[k]++
				mu.Unlock()
				emit(k, strconv.Itoa(len(vs)))
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls["k"] != 1 {
		t.Fatalf("Reduce called %d times for key k, want 1", calls["k"])
	}
	kvs, _ := e.ReadOutput("out")
	if len(kvs) != 1 || kvs[0].Value != "50" {
		t.Fatalf("got %v", kvs)
	}
}

func TestCountersSnapshotAndString(t *testing.T) {
	cs := NewCounters()
	cs.Get("g1", "a").Inc(3)
	cs.Get("g1", "b").Inc(1)
	cs.Get("g2", "c").Inc(2)
	cs.Get("g1", "a").Inc(4)
	snap := cs.Snapshot()
	if snap["g1"]["a"] != 7 || snap["g1"]["b"] != 1 || snap["g2"]["c"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	s := cs.String()
	want := "g1.a=7\ng1.b=1\ng2.c=2\n"
	if s != want {
		t.Fatalf("String = %q, want %q", s, want)
	}
	if cs.Value("nope", "x") != 0 || cs.Value("g1", "nope") != 0 {
		t.Fatal("missing counters should read 0")
	}
}

func TestEmptyInputFile(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "")
	res, err := e.Run(&Job{
		Name:       "empty",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
		NewReducer: func() Reducer { return sumReducer{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Counters.Value(CounterGroupTask, CounterMapInputRecords); n != 0 {
		t.Fatalf("records = %d", n)
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 0 {
		t.Fatalf("output = %v", kvs)
	}
}

func TestFileWithoutTrailingNewline(t *testing.T) {
	e := newTestEngine(t, 8)
	writeInput(t, e, "in/f", "aa\nbb\ncc") // no trailing \n
	var mu sync.Mutex
	var lines []string
	_, err := e.Run(&Job{
		Name:       "notrail",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, _ Emit) error {
				mu.Lock()
				lines = append(lines, v)
				mu.Unlock()
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("lines = %v, want 3", lines)
	}
}

func TestCRLFInput(t *testing.T) {
	e := newTestEngine(t, 1<<20)
	writeInput(t, e, "in/f", "aa\r\nbb\r\n")
	var mu sync.Mutex
	var lines []string
	_, err := e.Run(&Job{
		Name:       "crlf",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, _ Emit) error {
				mu.Lock()
				lines = append(lines, v)
				mu.Unlock()
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "aa" && lines[1] != "aa" {
		t.Fatalf("lines = %q", lines)
	}
}

func TestSpeculativeExecutionRescuesStraggler(t *testing.T) {
	// One straggler node: every task it picks takes 300ms instead of
	// ~2ms. The healthy nodes get a small base delay so the straggler
	// is guaranteed to pick up work before the queue drains; once the
	// healthy nodes run dry they launch backups (necessarily on
	// healthy nodes — the straggler already runs the original) and the
	// job finishes long before 300ms.
	c, _ := cluster.NewUniform(4, 2, 1)
	slowNode := c.Nodes()[0].ID
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 64, Replication: 3, Seed: 1})
	e := NewEngine(c, fs, Options{
		SpeculativeSlack: 20 * time.Millisecond,
		NodeDelay: func(node string) time.Duration {
			if node == slowNode {
				return 300 * time.Millisecond
			}
			return 2 * time.Millisecond
		},
	})
	writeInput(t, e, "in/f", strings.Repeat("hello world\n", 50))
	start := time.Now()
	res, err := e.Run(&Job{
		Name:       "speculate",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
		NewReducer: func() Reducer { return sumReducer{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	launched := res.Counters.Value(CounterGroupScheduler, CounterSpeculativeLaunched)
	if launched == 0 {
		t.Fatal("no speculative attempts launched")
	}
	// The backup must let the job finish well before the 300ms
	// straggler on every phase would allow (map + reduce serially on
	// the slow node would exceed 300ms at minimum).
	if wall >= 280*time.Millisecond {
		t.Errorf("wall %v suggests speculation did not help", wall)
	}
	// Output must still be correct exactly once.
	kvs, _ := e.ReadOutput("out")
	got := map[string]string{}
	for _, kv := range kvs {
		got[kv.Key] = kv.Value
	}
	if got["hello"] != "50" || got["world"] != "50" {
		t.Fatalf("wrong output with speculation: %v", got)
	}
	if n := res.Counters.Value(CounterGroupTask, CounterMapInputRecords); n != 50 {
		t.Fatalf("map_input_records = %d (speculative double-count?)", n)
	}
}

func TestSpeculationDisabledByDefault(t *testing.T) {
	e := newTestEngine(t, 1<<20)
	writeInput(t, e, "in/f", "a b c\n")
	res, err := e.Run(&Job{
		Name:       "nospec",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Value(CounterGroupScheduler, CounterSpeculativeLaunched) != 0 {
		t.Fatal("speculation ran without being enabled")
	}
}

func TestSpeculativeWastedCounted(t *testing.T) {
	// Both the original and the backup eventually finish; the loser
	// must be counted as wasted and not duplicate output.
	c, _ := cluster.NewUniform(3, 1, 1)
	slowNode := c.Nodes()[0].ID
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 1 << 20, Replication: 3, Seed: 1})
	e := NewEngine(c, fs, Options{
		SpeculativeSlack: 10 * time.Millisecond,
		NodeDelay: func(node string) time.Duration {
			if node == slowNode {
				return 120 * time.Millisecond
			}
			return 0
		},
	})
	writeInput(t, e, "in/f", "x\n")
	res, err := e.Run(&Job{
		Name:       "wasted",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait-free check: every launched backup either won or was wasted;
	// totals must be consistent.
	launched := res.Counters.Value(CounterGroupScheduler, CounterSpeculativeLaunched)
	if launched > 0 {
		kvs, _ := e.ReadOutput("out")
		if len(kvs) != 1 {
			t.Fatalf("duplicate output records: %v", kvs)
		}
	}
}

func TestFailedJobCleansPartialOutputAndRerunSucceeds(t *testing.T) {
	// A job that dies after committing some part files must not leave
	// them in DFS: the rerun of the same job on the same output path
	// would otherwise refuse to start with "output path already exists".
	e := newTestEngine(t, 16) // several map tasks
	writeInput(t, e, "in/f", "aaaa bbbb\ncccc dddd\neeee ffff\n")
	var sabotage sync.Once
	fs := e.FS()
	mapper := func() Mapper {
		return MapFunc(func(_ *TaskContext, _, v string, emit Emit) error {
			// First run only: plant a file where the engine will write
			// its second part file, making that commit fail after the
			// first part file has already been written.
			sabotage.Do(func() {
				_ = fs.Create("out/part-m-00001", []byte("squatter\n"), "")
			})
			emit(v, "1")
			return nil
		})
	}
	job := &Job{
		Name:       "partial",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  mapper,
	}
	if _, err := e.Run(job); err == nil {
		t.Fatal("first run should fail on the planted part file")
	}
	if left := fs.List("out"); len(left) != 0 {
		t.Fatalf("failed job left files behind: %v", left)
	}
	if _, err := e.Run(job); err != nil {
		t.Fatalf("rerun on the same output path: %v", err)
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 {
		t.Fatalf("rerun output = %v, want 3 records", kvs)
	}
}

func TestFailedReduceJobCleansOutputForRerun(t *testing.T) {
	// Same contract on the reduce path: a job failing in the reduce
	// phase must be rerunnable on the same output path.
	c, _ := cluster.NewUniform(4, 2, 2)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 64, Replication: 3, Seed: 1})
	failing := true
	var mu sync.Mutex
	e := NewEngine(c, fs, Options{
		FailureHook: func(taskID string, attempt int, node string) error {
			mu.Lock()
			defer mu.Unlock()
			if failing && strings.HasPrefix(taskID, "reduce-") {
				return fmt.Errorf("injected reduce failure")
			}
			return nil
		},
	})
	writeInput(t, e, "in/f", "a b a\n")
	job := &Job{
		Name:        "redfail",
		InputPaths:  []string{"in/f"},
		OutputPath:  "out",
		NewMapper:   func() Mapper { return wordMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		MaxAttempts: 1,
	}
	if _, err := e.Run(job); err == nil {
		t.Fatal("first run should fail in reduce")
	}
	mu.Lock()
	failing = false
	mu.Unlock()
	if _, err := e.Run(job); err != nil {
		t.Fatalf("rerun on the same output path: %v", err)
	}
}

func TestSecondBackupAfterFailedBackup(t *testing.T) {
	// When a speculative backup fails while the primary is still
	// running, its speculation slot must be released so the straggling
	// task can receive another backup — and the retried attempts must
	// get attempt numbers that never collide with ones already used.
	c, _ := cluster.NewUniform(3, 1, 1)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 1 << 20, Replication: 3, Seed: 1})
	e := NewEngine(c, fs, Options{
		SpeculativeSlack: 10 * time.Millisecond,
		FailureHook: func(taskID string, attempt int, node string) error {
			switch attempt {
			case 0:
				time.Sleep(200 * time.Millisecond) // straggling primary
				return nil
			case 1:
				return fmt.Errorf("backup dies") // first backup fails fast
			default:
				return nil // second backup succeeds
			}
		},
	})
	writeInput(t, e, "in/f", "x y z\n")
	res, err := e.Run(&Job{
		Name:       "rebackup",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Counters.Value(CounterGroupScheduler, CounterSpeculativeLaunched); n < 2 {
		t.Fatalf("speculative_launched = %d, want >= 2 (second backup after the failed one)", n)
	}
	// Attempt numbers must be unique per task across all records.
	seen := map[string]map[int]bool{}
	for _, a := range res.Attempts {
		if seen[a.Task] == nil {
			seen[a.Task] = map[int]bool{}
		}
		if seen[a.Task][a.Attempt] {
			t.Fatalf("attempt number %d reused for task %s: %+v", a.Attempt, a.Task, res.Attempts)
		}
		seen[a.Task][a.Attempt] = true
	}
	kvs, _ := e.ReadOutput("out")
	if len(kvs) != 3 {
		t.Fatalf("output = %v, want 3 records exactly once", kvs)
	}
	// Let the sleeping primary drain before the test (and its cluster)
	// goes away.
	time.Sleep(250 * time.Millisecond)
}

func TestAttemptRecordsStableAfterRunReturns(t *testing.T) {
	// Run returns as soon as every task has a winner; an abandoned
	// speculative loser may still be executing and will append its
	// attempt record afterwards. res.Attempts must be a snapshot that
	// the caller can read while the loser drains (-race regression).
	c, _ := cluster.NewUniform(3, 1, 1)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 1 << 20, Replication: 3, Seed: 1})
	e := NewEngine(c, fs, Options{
		SpeculativeSlack: 10 * time.Millisecond,
	})
	writeInput(t, e, "in/f", "x\n")
	// The first attempt to reach Map becomes the straggler — after its
	// split is already read, so the loser touches no shared lock
	// between the job's return and its own late attempt-record append.
	var attempts atomic.Int32
	res, err := e.Run(&Job{
		Name:       "snapshot",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper: func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, emit Emit) error {
				if attempts.Add(1) == 1 {
					time.Sleep(120 * time.Millisecond)
				}
				emit(v, "1")
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Read the records while any loser is still finishing; under -race
	// this must not conflict with the loser's append.
	for _, a := range res.Attempts {
		if a.Task == "" {
			t.Fatal("empty attempt record")
		}
	}
	time.Sleep(150 * time.Millisecond) // let the loser record its kill
	for _, a := range res.Attempts {
		if a.Status == "" {
			t.Fatal("attempt record mutated after return")
		}
	}
}

func TestShuffleCountersAndPartitionDetail(t *testing.T) {
	e := newTestEngine(t, 32)
	writeInput(t, e, "in/f", strings.Repeat("alpha beta gamma delta\n", 25))
	res, err := e.Run(&Job{
		Name:        "shufcount",
		InputPaths:  []string{"in/f"},
		OutputPath:  "out",
		NewMapper:   func() Mapper { return wordMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	runs := res.Counters.Value(CounterGroupShuffle, CounterShuffleRunsMerged)
	spilled := res.Counters.Value(CounterGroupShuffle, CounterShuffleSpilledRecords)
	mapOut := res.Counters.Value(CounterGroupTask, CounterMapOutputRecords)
	if runs <= 0 || runs > int64(res.MapTasks*res.ReduceTasks) {
		t.Fatalf("shuffle_runs_merged = %d with %d maps x %d reducers", runs, res.MapTasks, res.ReduceTasks)
	}
	// Without a combiner every map output record is spilled exactly
	// once and crosses the shuffle exactly once.
	if spilled != mapOut {
		t.Fatalf("shuffle_spilled_records = %d, want %d (map output records)", spilled, mapOut)
	}
	if in := res.Counters.Value(CounterGroupTask, CounterReduceInputRecords); in != spilled {
		t.Fatalf("reduce_input_records = %d, want %d", in, spilled)
	}
	if res.Counters.Value(CounterGroupShuffle, CounterShuffleBytes) <= 0 {
		t.Fatal("shuffle_bytes not counted")
	}
}

func TestResultReportJSON(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "a b a\n")
	res, err := e.Run(&Job{
		Name:       "report",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
		NewReducer: func() Reducer { return sumReducer{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Report())
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Job != "report" || back.MapTasks != res.MapTasks {
		t.Fatalf("report round-trip mismatch: %+v", back)
	}
	if back.Counters["task"]["map_input_records"] != 1 {
		t.Fatalf("counters not serialized: %v", back.Counters)
	}
	if len(back.Tasks) == 0 || back.Tasks[0].ID == "" {
		t.Fatalf("tasks not serialized: %+v", back.Tasks)
	}
}

func TestTaskOverheadSlowsJobs(t *testing.T) {
	mk := func(overhead time.Duration) time.Duration {
		c, _ := cluster.NewUniform(2, 1, 1)
		fs, _ := dfs.New(c, dfs.Config{ChunkSize: 1 << 20, Replication: 2, Seed: 1})
		e := NewEngine(c, fs, Options{TaskOverhead: overhead})
		if err := fs.Create("in/f", []byte("x\n"), ""); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(&Job{
			Name:       "overhead",
			InputPaths: []string{"in/f"},
			OutputPath: "out",
			NewMapper:  func() Mapper { return wordMapper{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Wall
	}
	fast := mk(0)
	slow := mk(50 * time.Millisecond)
	if slow < 50*time.Millisecond {
		t.Fatalf("overhead not applied: wall %v", slow)
	}
	if slow <= fast {
		t.Fatalf("overhead did not slow the job: %v vs %v", slow, fast)
	}
}
