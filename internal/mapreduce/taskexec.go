// Worker-side task execution: the entry point an out-of-process
// tasktracker calls for each assigned attempt. Unlike the in-process
// executor, nothing here touches driver memory — map output leaves as
// DFS spill-run files, reduce/map-only output as an attempt-unique
// temp file the driver renames into place for the winner, and user
// counters travel back as a snapshot in the TaskResult.

package mapreduce

import (
	"fmt"

	"repro/internal/dfs"
)

// tmpDir is the DFS directory holding a job's uncommitted task
// outputs, swept when the job finishes.
func tmpDir(jobName string) string { return "_tmp/" + jobName }

// taskTempPath is the attempt-unique temp path for a task's output:
// concurrent speculative attempts of one task never collide, and a
// retry never collides with the debris of a failed earlier attempt.
func taskTempPath(jobName, taskID string, attempt int) string {
	return fmt.Sprintf("%s/%s-a%04d", tmpDir(jobName), taskID, attempt)
}

// ExecuteTask runs one task attempt against the given store and
// returns its result. It is transport-agnostic — the RPC worker calls
// it with a RemoteStore after materialising spec.Job from the wire;
// tests may call it directly against a local DFS.
func ExecuteTask(store dfs.Store, spec TaskSpec) (TaskResult, error) {
	job := spec.Job
	if job == nil {
		return TaskResult{}, fmt.Errorf("mapreduce: task %s has no job", spec.TaskID)
	}
	// A fresh registry per attempt: user counters reach the driver as
	// a snapshot and are merged winner-only, so a failed or losing
	// remote attempt contributes nothing.
	counters := NewCounters()
	ctx := &TaskContext{
		JobName: job.Name, TaskID: spec.TaskID, Attempt: spec.Attempt, Node: spec.Node,
		conf: job.Conf, cache: job.Cache, counters: counters,
	}
	var res TaskResult
	var err error
	switch spec.Phase {
	case "map":
		res, err = executeMapTask(store, job, ctx, spec)
	case "reduce":
		res, err = executeReduceTask(store, job, ctx, spec)
	default:
		err = fmt.Errorf("mapreduce: task %s: unknown phase %q", spec.TaskID, spec.Phase)
	}
	if err != nil {
		return TaskResult{}, err
	}
	res.UserCounters = counters.Snapshot()
	return res, nil
}

func executeMapTask(store dfs.Store, job *Job, ctx *TaskContext, spec TaskSpec) (TaskResult, error) {
	partition := job.Partitioner
	if partition == nil {
		partition = HashPartition
	}
	// Force-spill: every partition of a remote map task must end
	// file-backed, because the driver cannot reach this process's
	// memory. At budget 0 that is exactly one sorted+combined run per
	// partition — the same records, in the same order, the in-process
	// path would hold in memory.
	out, records, sp, err := execMapAttempt(store, job, ctx, spec, partition, spec.ShuffleBudget, !spec.MapOnly)
	if err != nil {
		return TaskResult{}, err
	}
	res := TaskResult{Records: records, Stats: sp.stats(records)}
	if spec.MapOnly {
		tmp := taskTempPath(job.Name, spec.TaskID, spec.Attempt)
		if err := store.Create(tmp, encodePartFile(out.parts[0], job.BinaryOutput), spec.Node); err != nil {
			return TaskResult{}, fmt.Errorf("%s: %v", spec.TaskID, err)
		}
		res.OutFile = tmp
		return res, nil
	}
	res.MapRuns = make([][]RunDesc, spec.NumReducers)
	for p, runs := range out.fileRuns {
		for _, r := range runs {
			res.MapRuns[p] = append(res.MapRuns[p], RunDesc{Path: r.path, Records: r.records, Bytes: r.bytes})
		}
	}
	return res, nil
}

func executeReduceTask(store dfs.Store, job *Job, ctx *TaskContext, spec TaskSpec) (TaskResult, error) {
	pulls := make([]pullFunc, 0, len(spec.Runs))
	var inRecords int64
	for _, rd := range spec.Runs {
		pull, err := openSpillRun(store, rd.Path)
		if err != nil {
			return TaskResult{}, fmt.Errorf("%s: %v", spec.TaskID, err)
		}
		pulls = append(pulls, pull)
		inRecords += rd.Records
	}
	it, err := newExtMergeIter(pulls, job.KeyCompare)
	if err != nil {
		return TaskResult{}, fmt.Errorf("%s: %v", spec.TaskID, err)
	}
	var groups int64
	out, err := runReduce(ctx, job.NewReducer(), it, &groups, job.KeyCompare)
	if err == nil {
		err = it.Err()
	}
	if err != nil {
		return TaskResult{}, fmt.Errorf("%s: %v", spec.TaskID, err)
	}
	tmp := taskTempPath(job.Name, spec.TaskID, spec.Attempt)
	if err := store.Create(tmp, encodePartFile(out, job.BinaryOutput), spec.Node); err != nil {
		return TaskResult{}, fmt.Errorf("%s: %v", spec.TaskID, err)
	}
	return TaskResult{
		Records: inRecords,
		OutFile: tmp,
		Stats: TaskStats{
			ReduceInputRecords:  inRecords,
			ReduceOutputRecords: int64(len(out)),
			ReduceInputGroups:   groups,
		},
	}, nil
}
