package mapreduce

// Codec translates a typed key or value to and from the engine's wire
// currency — the bytes inside a KV string. Implementations live in
// internal/recordio (scalar keys, trace records, partial sums) and in
// the pipelines for job-private types; the engine itself never
// depends on a concrete codec.
//
// Append writes the encoding of v onto dst and returns the extended
// slice, so the typed emit path reuses one scratch buffer per task
// instead of allocating per record. Decode parses a complete encoded
// value; it must reject trailing or truncated bytes, because a decode
// error is the only corruption signal the typed layer has.
type Codec[T any] interface {
	Append(dst []byte, v T) []byte
	Decode(s string) (T, error)
}

// RawComparer is the optional fast path of a key codec (Hadoop's
// RawComparator): ordering two keys directly on their encoded bytes,
// without decoding. Key codecs whose encodings are order-preserving
// implement it as a plain byte compare; TypedJob wires it into
// Job.KeyCompare automatically.
type RawComparer interface {
	RawCompare(a, b string) int
}
