package mapreduce

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
)

func newReaderFS(t *testing.T, chunkSize int64) *dfs.FileSystem {
	t.Helper()
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: chunkSize, Replication: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// readAllSplits runs readSplitLines over every split of a file and
// collects lines and per-split errors.
func readAllSplits(t *testing.T, fs *dfs.FileSystem, path string) (lines []string, errs []error) {
	t.Helper()
	splits, err := splitsFor(fs, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range splits {
		err := readSplitLines(fs, sp, func(_ int64, line string) error {
			lines = append(lines, line)
			return nil
		})
		if err != nil {
			errs = append(errs, err)
		}
	}
	return lines, errs
}

func TestOversizedLineIsAnErrorNotTruncation(t *testing.T) {
	// A record continuing more than maxLineOverrun bytes past its
	// split's end used to be emitted truncated, as if the buffer end
	// were EOF. It must be a "line too long" error instead, reported by
	// the split the record starts in.
	const chunk = 1 << 16
	fs := newReaderFS(t, chunk)
	// The line must outrun its split's read window: longer than one
	// chunk plus the full overrun allowance.
	huge := strings.Repeat("x", maxLineOverrun+2*chunk)
	content := "short-line\n" + huge + "\n" + "after\n"
	if err := fs.Create("in/f", []byte(content), ""); err != nil {
		t.Fatal(err)
	}
	lines, errs := readAllSplits(t, fs, "in/f")
	if len(errs) != 1 {
		t.Fatalf("got %d split errors, want exactly 1 (from the owning split): %v", len(errs), errs)
	}
	if !strings.Contains(errs[0].Error(), "maximum record length") {
		t.Fatalf("error = %v, want oversized-line error", errs[0])
	}
	// No split may have emitted a truncated piece of the huge line.
	for _, l := range lines {
		if strings.HasPrefix(l, "x") {
			t.Fatalf("truncated fragment of the oversized line was emitted (len %d)", len(l))
		}
	}
}

func TestLongLineWithinOverrunStillReads(t *testing.T) {
	// A record crossing many chunk boundaries but terminating within
	// maxLineOverrun of its split end is legal and must come back whole.
	fs := newReaderFS(t, 64)
	long := strings.Repeat("y", 5000) // spans ~78 chunks, well under the overrun
	content := "a\n" + long + "\nb\n"
	if err := fs.Create("in/f", []byte(content), ""); err != nil {
		t.Fatal(err)
	}
	lines, errs := readAllSplits(t, fs, "in/f")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	found := false
	for _, l := range lines {
		if l == long {
			found = true
		}
	}
	if !found {
		t.Fatal("long line not read back intact")
	}
}

func TestUnterminatedFinalLineAtEOFStillReads(t *testing.T) {
	// EOF without a trailing newline is not an oversized line: the
	// buffer is shorter than requested, so the tail is a real record.
	fs := newReaderFS(t, 8)
	content := "aaa\nbbbb\nccccc" // no trailing newline
	if err := fs.Create("in/f", []byte(content), ""); err != nil {
		t.Fatal(err)
	}
	lines, errs := readAllSplits(t, fs, "in/f")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(lines) != 3 || lines[len(lines)-1] != "ccccc" {
		t.Fatalf("lines = %q, want trailing ccccc intact", lines)
	}
}
