package mapreduce_test

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
)

// Example runs the canonical word count on a 4-node simulated cluster:
// the mapper tokenizes lines into (word, 1) pairs and the reducer sums
// each word's counts.
func Example() {
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: 64, Replication: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	engine := mapreduce.NewEngine(c, fs, mapreduce.Options{})

	input := "the quick brown fox\njumps over the lazy dog\nthe end\n"
	if err := fs.Create("in/text", []byte(input), ""); err != nil {
		log.Fatal(err)
	}

	_, err = engine.Run(&mapreduce.Job{
		Name:       "wordcount",
		InputPaths: []string{"in/text"},
		OutputPath: "out",
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapFunc(func(_ *mapreduce.TaskContext, _, line string, emit mapreduce.Emit) error {
				for _, w := range strings.Fields(line) {
					emit(w, "1")
				}
				return nil
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReduceFunc(func(_ *mapreduce.TaskContext, word string, counts []string, emit mapreduce.Emit) error {
				emit(word, strconv.Itoa(len(counts)))
				return nil
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	kvs, err := engine.ReadOutput("out")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	for _, kv := range kvs {
		if kv.Key == "the" || kv.Key == "fox" {
			fmt.Printf("%s=%s\n", kv.Key, kv.Value)
		}
	}
	// Output:
	// fox=1
	// the=3
}
