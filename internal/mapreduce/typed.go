package mapreduce

import "fmt"

// This file is the generics-typed job API over the untyped engine.
// A TypedJob carries codecs for every position in the dataflow
// (input, intermediate, output) and lowers itself onto a plain *Job:
// the lowered mapper decodes each input record, runs the typed user
// code, and encodes emissions through reusable scratch buffers; the
// lowered reducer decodes a group's key and values back into typed
// form. Keys travel as order-preserving encodings, so the engine's
// spill sort and shuffle merge compare raw bytes and never decode —
// the Writable/RawComparator division of labour from Hadoop.

// TypedEmit is the typed counterpart of Emit.
type TypedEmit[K, V any] func(key K, value V)

// TypedMapper is the typed counterpart of Mapper. A fresh instance is
// created per map task, so implementations may accumulate per-task
// state and flush it in Cleanup.
type TypedMapper[KI, VI, KO, VO any] interface {
	Setup(ctx *TaskContext) error
	Map(ctx *TaskContext, key KI, value VI, emit TypedEmit[KO, VO]) error
	Cleanup(ctx *TaskContext, emit TypedEmit[KO, VO]) error
}

// TypedReducer is the typed counterpart of Reducer; it also serves
// for combiners (with KO = K and VO = V).
type TypedReducer[K, V, KO, VO any] interface {
	Setup(ctx *TaskContext) error
	Reduce(ctx *TaskContext, key K, values []V, emit TypedEmit[KO, VO]) error
	Cleanup(ctx *TaskContext, emit TypedEmit[KO, VO]) error
}

// TypedMapperBase provides no-op Setup/Cleanup for typed mappers.
type TypedMapperBase[KO, VO any] struct{}

// Setup implements TypedMapper.
func (TypedMapperBase[KO, VO]) Setup(*TaskContext) error { return nil }

// Cleanup implements TypedMapper.
func (TypedMapperBase[KO, VO]) Cleanup(*TaskContext, TypedEmit[KO, VO]) error { return nil }

// TypedReducerBase provides no-op Setup/Cleanup for typed reducers.
type TypedReducerBase[KO, VO any] struct{}

// Setup implements TypedReducer.
func (TypedReducerBase[KO, VO]) Setup(*TaskContext) error { return nil }

// Cleanup implements TypedReducer.
func (TypedReducerBase[KO, VO]) Cleanup(*TaskContext, TypedEmit[KO, VO]) error { return nil }

// TypedMapFunc adapts a function to TypedMapper.
type TypedMapFunc[KI, VI, KO, VO any] func(ctx *TaskContext, key KI, value VI, emit TypedEmit[KO, VO]) error

// Setup implements TypedMapper.
func (TypedMapFunc[KI, VI, KO, VO]) Setup(*TaskContext) error { return nil }

// Map implements TypedMapper.
func (f TypedMapFunc[KI, VI, KO, VO]) Map(ctx *TaskContext, key KI, value VI, emit TypedEmit[KO, VO]) error {
	return f(ctx, key, value, emit)
}

// Cleanup implements TypedMapper.
func (TypedMapFunc[KI, VI, KO, VO]) Cleanup(*TaskContext, TypedEmit[KO, VO]) error { return nil }

// TypedReduceFunc adapts a function to TypedReducer.
type TypedReduceFunc[K, V, KO, VO any] func(ctx *TaskContext, key K, values []V, emit TypedEmit[KO, VO]) error

// Setup implements TypedReducer.
func (TypedReduceFunc[K, V, KO, VO]) Setup(*TaskContext) error { return nil }

// Reduce implements TypedReducer.
func (f TypedReduceFunc[K, V, KO, VO]) Reduce(ctx *TaskContext, key K, values []V, emit TypedEmit[KO, VO]) error {
	return f(ctx, key, values, emit)
}

// Cleanup implements TypedReducer.
func (TypedReduceFunc[K, V, KO, VO]) Cleanup(*TaskContext, TypedEmit[KO, VO]) error { return nil }

// TypedJob describes a MapReduce job over typed records. The six type
// parameters are the input, intermediate (map output) and final
// output key/value types; a codec is required for each position that
// is actually exercised (no Reducer ⇒ the intermediate codecs double
// as output codecs and OutputKey/OutputValue stay nil).
type TypedJob[KI, VI, KM, VM, KO, VO any] struct {
	Name string
	// Kind names the job's registered kind for remote execution; see
	// Job.Kind.
	Kind       string
	InputPaths []string
	OutputPath string

	// Mapper creates the typed mapper per map task. Required.
	Mapper func() TypedMapper[KI, VI, KM, VM]
	// Reducer creates the typed reducer per reduce task; nil makes the
	// job map-only.
	Reducer func() TypedReducer[KM, VM, KO, VO]
	// Combiner optionally creates a map-side combiner over the
	// intermediate types.
	Combiner func() TypedReducer[KM, VM, KM, VM]

	// InputKey/InputValue decode the map input. For text files the key
	// is the line's byte-offset string and the value the line; for
	// binary record files they are the stored key and value bytes.
	InputKey   Codec[KI]
	InputValue Codec[VI]
	// MapKey/MapValue code the intermediate records. MapKey should
	// be order-preserving; if it implements RawComparer its comparison
	// becomes the job's KeyCompare.
	MapKey   Codec[KM]
	MapValue Codec[VM]
	// OutputKey/OutputValue code the reducer's emissions (unused for
	// map-only jobs).
	OutputKey   Codec[KO]
	OutputValue Codec[VO]

	NumReducers int
	// Partition routes a decoded intermediate key to a reducer;
	// defaults to hashing the encoded key bytes.
	Partition func(key KM, numReducers int) int
	// KeyCompare overrides the intermediate key order; defaults to
	// MapKey's RawCompare when implemented, else plain byte order.
	KeyCompare func(a, b string) int
	// TextOutput writes classic "key\tvalue" part files instead of
	// binary record files — for outputs meant to be read as text.
	TextOutput bool

	Conf        map[string]string
	Cache       map[string][]byte
	MaxAttempts int
	Parent      string
	// MaxShuffleBytes, MemoryTargetBytes and CompressSpill configure
	// the memory-bounded external shuffle; see the Job fields of the
	// same names.
	MaxShuffleBytes   int64
	MemoryTargetBytes int64
	CompressSpill     bool
}

// Build lowers the typed job onto the untyped engine Job.
func (tj *TypedJob[KI, VI, KM, VM, KO, VO]) Build() *Job {
	job := &Job{
		Name:              tj.Name,
		Kind:              tj.Kind,
		InputPaths:        tj.InputPaths,
		OutputPath:        tj.OutputPath,
		NumReducers:       tj.NumReducers,
		Conf:              tj.Conf,
		Cache:             tj.Cache,
		MaxAttempts:       tj.MaxAttempts,
		Parent:            tj.Parent,
		KeyCompare:        tj.KeyCompare,
		BinaryOutput:      !tj.TextOutput,
		MaxShuffleBytes:   tj.MaxShuffleBytes,
		MemoryTargetBytes: tj.MemoryTargetBytes,
		CompressSpill:     tj.CompressSpill,
	}
	if tj.Mapper != nil {
		job.NewMapper = func() Mapper {
			return &loweredMapper[KI, VI, KM, VM, KO, VO]{tj: tj, m: tj.Mapper()}
		}
	}
	if tj.Reducer != nil {
		job.NewReducer = func() Reducer {
			return &loweredReducer[KM, VM, KO, VO]{
				r: tj.Reducer(), key: tj.MapKey, val: tj.MapValue,
				outKey: tj.OutputKey, outVal: tj.OutputValue,
			}
		}
	}
	if tj.Combiner != nil {
		job.NewCombiner = func() Reducer {
			return &loweredReducer[KM, VM, KM, VM]{
				r: tj.Combiner(), key: tj.MapKey, val: tj.MapValue,
				outKey: tj.MapKey, outVal: tj.MapValue,
			}
		}
	}
	if tj.Partition != nil {
		job.Partitioner = func(key string, numReducers int) int {
			k, err := tj.MapKey.Decode(key)
			if err != nil {
				// An undecodable key fails the task later anyway; route it
				// deterministically meanwhile.
				return HashPartition(key, numReducers)
			}
			return tj.Partition(k, numReducers)
		}
	}
	if job.KeyCompare == nil {
		if rc, ok := tj.MapKey.(RawComparer); ok {
			job.KeyCompare = rc.RawCompare
		}
	}
	return job
}

// typedEmit wraps an untyped emit with codec encoding through shared
// scratch buffers. The engine hands every mapper (and reducer) method
// of one task attempt the same emit closure, so caching one wrapper
// per lowered instance is sound.
type typedEmit[K, V any] struct {
	raw  Emit
	emit TypedEmit[K, V]
}

func (te *typedEmit[K, V]) get(raw Emit, key Codec[K], val Codec[V]) TypedEmit[K, V] {
	if te.emit == nil {
		var kbuf, vbuf []byte
		te.raw = raw
		te.emit = func(k K, v V) {
			kbuf = key.Append(kbuf[:0], k)
			vbuf = val.Append(vbuf[:0], v)
			te.raw(string(kbuf), string(vbuf))
		}
	} else {
		// Defensive: follow the engine if it ever passes a fresh closure.
		te.raw = raw
	}
	return te.emit
}

// loweredMapper adapts a TypedMapper to the untyped Mapper interface.
type loweredMapper[KI, VI, KM, VM, KO, VO any] struct {
	tj *TypedJob[KI, VI, KM, VM, KO, VO]
	m  TypedMapper[KI, VI, KM, VM]
	te typedEmit[KM, VM]
}

func (lm *loweredMapper[KI, VI, KM, VM, KO, VO]) Setup(ctx *TaskContext) error {
	return lm.m.Setup(ctx)
}

func (lm *loweredMapper[KI, VI, KM, VM, KO, VO]) Map(ctx *TaskContext, key, value string, emit Emit) error {
	k, err := lm.tj.InputKey.Decode(key)
	if err != nil {
		return fmt.Errorf("decode input key: %v", err)
	}
	v, err := lm.tj.InputValue.Decode(value)
	if err != nil {
		return fmt.Errorf("decode input value: %v", err)
	}
	return lm.m.Map(ctx, k, v, lm.te.get(emit, lm.tj.MapKey, lm.tj.MapValue))
}

func (lm *loweredMapper[KI, VI, KM, VM, KO, VO]) Cleanup(ctx *TaskContext, emit Emit) error {
	return lm.m.Cleanup(ctx, lm.te.get(emit, lm.tj.MapKey, lm.tj.MapValue))
}

// loweredReducer adapts a TypedReducer to the untyped Reducer
// interface (for reducers and, with K/V output codecs, combiners).
type loweredReducer[K, V, KO, VO any] struct {
	r      TypedReducer[K, V, KO, VO]
	key    Codec[K]
	val    Codec[V]
	outKey Codec[KO]
	outVal Codec[VO]
	te     typedEmit[KO, VO]
	vals   []V
}

func (lr *loweredReducer[K, V, KO, VO]) Setup(ctx *TaskContext) error {
	return lr.r.Setup(ctx)
}

func (lr *loweredReducer[K, V, KO, VO]) Reduce(ctx *TaskContext, key string, values []string, emit Emit) error {
	k, err := lr.key.Decode(key)
	if err != nil {
		return fmt.Errorf("decode key: %v", err)
	}
	lr.vals = lr.vals[:0]
	for i, s := range values {
		v, err := lr.val.Decode(s)
		if err != nil {
			return fmt.Errorf("decode value %d of key %q: %v", i, key, err)
		}
		lr.vals = append(lr.vals, v)
	}
	return lr.r.Reduce(ctx, k, lr.vals, lr.te.get(emit, lr.outKey, lr.outVal))
}

func (lr *loweredReducer[K, V, KO, VO]) Cleanup(ctx *TaskContext, emit Emit) error {
	return lr.r.Cleanup(ctx, lr.te.get(emit, lr.outKey, lr.outVal))
}

// RunTyped builds and runs a typed job on the engine.
func RunTyped[KI, VI, KM, VM, KO, VO any](e *Engine, tj *TypedJob[KI, VI, KM, VM, KO, VO]) (*Result, error) {
	return e.Run(tj.Build())
}
