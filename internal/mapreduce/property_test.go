package mapreduce

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dfs"
)

// seqWordCount is the single-machine reference for the MR wordcount.
func seqWordCount(text string) map[string]int {
	out := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		for _, w := range strings.Fields(line) {
			out[w]++
		}
	}
	return out
}

// randText builds line-oriented text from a bounded alphabet so keys
// collide across chunks (exercising the shuffle).
func randText(rng *rand.Rand) string {
	words := []string{"alpha", "beta", "gamma", "delta", "x", "yy", "zzz"}
	var sb strings.Builder
	lines := 1 + rng.Intn(60)
	for i := 0; i < lines; i++ {
		n := rng.Intn(8)
		for j := 0; j < n; j++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestPropertyMapReduceEqualsSequential drives random inputs, random
// chunk sizes and random reducer counts through the engine and checks
// the result against the sequential reference — the core correctness
// property of the whole MapReduce substrate.
func TestPropertyMapReduceEqualsSequential(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64, chunkRaw uint8, reducersRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randText(rng)
		chunk := int64(chunkRaw)%200 + 5
		reducers := int(reducersRaw)%5 + 1

		c, err := cluster.NewUniform(4, 2, 2)
		if err != nil {
			return false
		}
		fs, err := dfs.New(c, dfs.Config{ChunkSize: chunk, Replication: 3, Seed: seed})
		if err != nil {
			return false
		}
		e := NewEngine(c, fs, Options{})
		if err := fs.Create("in/f", []byte(text), ""); err != nil {
			return false
		}
		_, err = e.Run(&Job{
			Name:        "prop-wordcount",
			InputPaths:  []string{"in/f"},
			OutputPath:  "out",
			NewMapper:   func() Mapper { return wordMapper{} },
			NewReducer:  func() Reducer { return sumReducer{} },
			NewCombiner: func() Reducer { return sumReducer{} },
			NumReducers: reducers,
		})
		if err != nil {
			t.Logf("seed=%d chunk=%d reducers=%d: %v", seed, chunk, reducers, err)
			return false
		}
		kvs, err := e.ReadOutput("out")
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, kv := range kvs {
			n, err := strconv.Atoi(kv.Value)
			if err != nil {
				return false
			}
			got[kv.Key] = n
		}
		want := seqWordCount(text)
		if len(got) != len(want) {
			t.Logf("seed=%d chunk=%d reducers=%d: %d keys, want %d", seed, chunk, reducers, len(got), len(want))
			return false
		}
		for k, v := range want {
			if got[k] != v {
				t.Logf("seed=%d: key %q = %d, want %d", seed, k, got[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentJobsOnOneEngine runs several jobs in parallel on the
// same engine/DFS — the multi-tenant behaviour a shared Hadoop cluster
// provides.
func TestConcurrentJobsOnOneEngine(t *testing.T) {
	e := newTestEngine(t, 64)
	const jobs = 6
	for i := 0; i < jobs; i++ {
		writeInput(t, e, fmt.Sprintf("in%d/f", i), strings.Repeat(fmt.Sprintf("word%d filler\n", i), 30))
	}
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Run(&Job{
				Name:       fmt.Sprintf("job-%d", i),
				InputPaths: []string{fmt.Sprintf("in%d/f", i)},
				OutputPath: fmt.Sprintf("out%d", i),
				NewMapper:  func() Mapper { return wordMapper{} },
				NewReducer: func() Reducer { return sumReducer{} },
			})
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		kvs, err := e.ReadOutput(fmt.Sprintf("out%d", i))
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]string{}
		for _, kv := range kvs {
			got[kv.Key] = kv.Value
		}
		if got[fmt.Sprintf("word%d", i)] != "30" || got["filler"] != "30" {
			t.Fatalf("job %d wrong output: %v", i, got)
		}
	}
}

// TestPropertySamplingPipelineComposition checks that running the
// engine's pipeline twice (filter then identity) preserves record
// counts — the part-file format must be losslessly re-consumable.
func TestPropertySamplingPipelineComposition(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randText(rng)
		e := newTestEngineQuick(seed)
		if e == nil {
			return false
		}
		if err := e.FS().Create("in/f", []byte(text), ""); err != nil {
			return false
		}
		identity := func() Mapper {
			return MapFunc(func(_ *TaskContext, _, v string, emit Emit) error {
				k, val, ok := strings.Cut(v, "\t")
				if !ok {
					// Raw input line: tokenize.
					for _, w := range strings.Fields(v) {
						emit(w, "1")
					}
					return nil
				}
				emit(k, val)
				return nil
			})
		}
		if _, err := e.RunPipeline(
			&Job{Name: "p1", InputPaths: []string{"in/f"}, OutputPath: "s1", NewMapper: identity},
			&Job{Name: "p2", InputPaths: []string{"s1"}, OutputPath: "s2", NewMapper: identity},
		); err != nil {
			return false
		}
		k1, err := e.ReadOutput("s1")
		if err != nil {
			return false
		}
		k2, err := e.ReadOutput("s2")
		if err != nil {
			return false
		}
		return len(k1) == len(k2)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMergeShuffleEqualsSeedShuffle asserts the sort-based
// shuffle's core equivalence: merging the per-map stable-sorted runs
// yields, kv for kv, exactly what the seed shuffle produced by
// concatenating the unsorted runs and stable-sorting the whole
// partition. Runs are random in count, length (including empty) and
// key skew.
func TestPropertyMergeShuffleEqualsSeedShuffle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64, runsRaw, keysRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numRuns := int(runsRaw)%12 + 1
		keySpace := int(keysRaw)%20 + 1
		runs := make([][]KV, numRuns)
		seq := 0
		for i := range runs {
			n := rng.Intn(50)
			for j := 0; j < n; j++ {
				runs[i] = append(runs[i], KV{
					Key:   fmt.Sprintf("key-%03d", rng.Intn(keySpace)),
					Value: fmt.Sprintf("val-%05d", seq),
				})
				seq++
			}
		}
		want := seedShuffle(runs)
		sorted := make([][]KV, len(runs))
		for i, r := range runs {
			sorted[i] = append([]KV(nil), r...)
			sortRun(sorted[i], nil)
		}
		got := MergeRuns(sorted)
		if len(got) != len(want) {
			t.Logf("seed=%d: merged %d records, want %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed=%d: record %d = %v, want %v", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func newTestEngineQuick(seed int64) *Engine {
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		return nil
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: 100, Replication: 3, Seed: seed})
	if err != nil {
		return nil
	}
	return NewEngine(c, fs, Options{})
}
