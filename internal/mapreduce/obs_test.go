package mapreduce

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/obs"
)

// newObservedEngine is newTestEngine plus an attached event recorder
// and a history store over the engine's own DFS.
func newObservedEngine(t *testing.T, chunkSize int64, opts Options) (*Engine, *obs.Recorder, *obs.History) {
	t.Helper()
	c, err := cluster.NewUniform(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: chunkSize, Replication: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	opts.Obs = obs.NewBus(rec)
	hist := obs.NewHistory(fs)
	opts.History = hist
	return NewEngine(c, fs, opts), rec, hist
}

func TestEngineEventLifecycle(t *testing.T) {
	e, rec, hist := newObservedEngine(t, 32, Options{})
	writeInput(t, e, "in/text", strings.Repeat("the quick brown fox\n", 20))
	res, err := e.Run(&Job{
		Name:        "lifecycle",
		InputPaths:  []string{"in"},
		OutputPath:  "out",
		Parent:      "pipeline-x",
		NewMapper:   func() Mapper { return wordMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	if subs := rec.ByType(obs.JobSubmitted); len(subs) != 1 {
		t.Fatalf("JobSubmitted events: %d, want 1", len(subs))
	} else if subs[0].Parent != "pipeline-x" {
		t.Errorf("JobSubmitted parent = %q", subs[0].Parent)
	}
	fins := rec.ByType(obs.JobFinished)
	if len(fins) != 1 || fins[0].Err != "" {
		t.Fatalf("JobFinished events: %+v", fins)
	}
	if fins[0].Dur <= 0 {
		t.Error("JobFinished carries no duration")
	}

	// Each phase opens and closes exactly once, in order.
	wantPhases := []string{"map", "shuffle", "reduce"}
	starts, ends := rec.ByType(obs.PhaseStart), rec.ByType(obs.PhaseEnd)
	if len(starts) != 3 || len(ends) != 3 {
		t.Fatalf("phase events: %d starts, %d ends", len(starts), len(ends))
	}
	for i, ph := range wantPhases {
		if starts[i].Phase != ph || ends[i].Phase != ph {
			t.Errorf("phase %d = start %q / end %q, want %q", i, starts[i].Phase, ends[i].Phase, ph)
		}
	}
	// The shuffle PhaseEnd carries the shuffled byte volume.
	if got := ends[1].Value; got != res.Counters.Value(CounterGroupShuffle, CounterShuffleBytes) {
		t.Errorf("shuffle PhaseEnd value = %d, want shuffle_bytes counter", got)
	}
	// ... and the per-partition merge summary the trace assembler and
	// skew analysis consume: one PartStat per reduce partition, whose
	// byte/run totals match the shuffle counters.
	parts := ends[1].Parts
	if len(parts) != res.ReduceTasks {
		t.Fatalf("shuffle PhaseEnd parts: %d, want %d", len(parts), res.ReduceTasks)
	}
	var partBytes, partRuns, partRecords int64
	for i, p := range parts {
		if p.Part != i {
			t.Errorf("parts[%d].Part = %d", i, p.Part)
		}
		partBytes += p.Bytes
		partRuns += p.Runs
		partRecords += p.Records
	}
	if partBytes != res.Counters.Value(CounterGroupShuffle, CounterShuffleBytes) {
		t.Errorf("sum of partition bytes = %d, want shuffle_bytes counter", partBytes)
	}
	if partRuns != res.Counters.Value(CounterGroupShuffle, CounterShuffleRunsMerged) {
		t.Errorf("sum of partition runs = %d, want shuffle_runs_merged counter", partRuns)
	}
	if partRecords <= 0 {
		t.Error("partition records not recorded")
	}

	tasks := res.MapTasks + res.ReduceTasks
	if got := len(rec.ByType(obs.AttemptSucceeded)); got != tasks {
		t.Errorf("AttemptSucceeded events: %d, want %d", got, tasks)
	}
	if got := len(rec.ByType(obs.TaskScheduled)); got != tasks {
		t.Errorf("TaskScheduled events: %d, want %d (no retries)", got, tasks)
	}
	if got := len(rec.ByType(obs.AttemptStarted)); got != tasks {
		t.Errorf("AttemptStarted events: %d, want %d", got, tasks)
	}

	// The result carries one attempt record per task, all succeeded.
	if len(res.Attempts) != tasks {
		t.Fatalf("res.Attempts: %d, want %d", len(res.Attempts), tasks)
	}
	for _, a := range res.Attempts {
		if a.Status != "succeeded" || a.Node == "" || a.EndMs < a.StartMs {
			t.Errorf("bad attempt record: %+v", a)
		}
	}

	// Satellite: reduce tasks render locality as "n/a" in reports.
	rep := res.Report()
	for _, tr := range rep.Tasks {
		if strings.HasPrefix(tr.ID, "reduce-") && tr.Locality != "n/a" {
			t.Errorf("reduce task locality = %q, want n/a", tr.Locality)
		}
		if strings.HasPrefix(tr.ID, "map-") && tr.Locality == "n/a" {
			t.Errorf("map task %s lost its locality class", tr.ID)
		}
		if tr.StartOffset < 0 {
			t.Errorf("task %s has negative StartOffset", tr.ID)
		}
	}

	// Satellite: the job's DFS I/O shows up in the counters.
	for _, name := range []string{CounterDFSBytesRead, CounterDFSBytesWritten, CounterDFSChunksRead} {
		if v := res.Counters.Value(CounterGroupDFS, name); v <= 0 {
			t.Errorf("counter dfs.%s = %d, want > 0", name, v)
		}
	}

	// The engine persisted a history record with the attempts.
	recs, err := hist.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Job != "lifecycle" || len(recs[0].Attempts) != tasks {
		t.Fatalf("history records: %+v", recs)
	}
}

func TestEngineEmitsNothingWithoutSinks(t *testing.T) {
	// Options zero value: nil bus, nil history. The run must not
	// allocate event machinery or fail — the pre-observability path.
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "a b\n")
	res, err := e.Run(&Job{
		Name:       "quiet",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Attempt records are still collected (they feed Result.Attempts).
	if len(res.Attempts) != res.MapTasks {
		t.Errorf("attempts: %d, want %d", len(res.Attempts), res.MapTasks)
	}
}

func TestRetryPopulatesFailureEventsAndReport(t *testing.T) {
	boom := errors.New("injected failure")
	e, rec, _ := newObservedEngine(t, 1<<20, Options{
		FailureHook: func(taskID string, attempt int, node string) error {
			if taskID == "map-0000" && attempt == 0 {
				return boom
			}
			return nil
		},
	})
	writeInput(t, e, "in/f", "a b c\n")
	res, err := e.Run(&Job{
		Name:       "retry",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err != nil {
		t.Fatal(err)
	}

	fails := rec.ByType(obs.AttemptFailed)
	if len(fails) != 1 {
		t.Fatalf("AttemptFailed events: %d, want 1", len(fails))
	}
	if fails[0].Task != "map-0000" || fails[0].Attempt != 0 || !strings.Contains(fails[0].Err, "injected failure") {
		t.Errorf("failure event: %+v", fails[0])
	}
	if got := len(rec.ByType(obs.TaskScheduled)); got != 2 {
		t.Errorf("TaskScheduled events: %d, want 2 (original + retry)", got)
	}

	// Satellite: the winning report records the failed attempt.
	tr := res.Tasks[0]
	if tr.FailedAttempts != 1 || tr.Attempts != 2 {
		t.Errorf("report = attempts %d / failed %d, want 2 / 1", tr.Attempts, tr.FailedAttempts)
	}
	// Both attempts appear in the attempt log, failure first.
	if len(res.Attempts) != 2 {
		t.Fatalf("attempt records: %+v", res.Attempts)
	}
	var statuses []string
	for _, a := range res.Attempts {
		statuses = append(statuses, a.Status)
	}
	if fmt.Sprint(statuses) != "[failed succeeded]" {
		t.Errorf("attempt statuses = %v", statuses)
	}
	if res.Attempts[0].Error == "" {
		t.Error("failed attempt record has no error text")
	}
}

func TestSpeculativeKillEventsFireOncePerLoser(t *testing.T) {
	// One slow node forces backup attempts; every losing attempt must
	// produce exactly one AttemptKilled event, matching the
	// speculative_wasted counter.
	c, _ := cluster.NewUniform(3, 1, 1)
	slowNode := c.Nodes()[0].ID
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 1 << 20, Replication: 3, Seed: 1})
	rec := &obs.Recorder{}
	e := NewEngine(c, fs, Options{
		SpeculativeSlack: 10 * time.Millisecond,
		NodeDelay: func(node string) time.Duration {
			if node == slowNode {
				return 120 * time.Millisecond
			}
			return 0
		},
		Obs: obs.NewBus(rec),
	})
	writeInput(t, e, "in/f", "x\n")
	res, err := e.Run(&Job{
		Name:       "spec-kill",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		NewMapper:  func() Mapper { return wordMapper{} },
	})
	if err != nil {
		t.Fatal(err)
	}

	wasted := res.Counters.Value(CounterGroupScheduler, CounterSpeculativeWasted)
	kills := rec.ByType(obs.AttemptKilled)
	if int64(len(kills)) != wasted {
		t.Fatalf("AttemptKilled events: %d, speculative_wasted counter: %d", len(kills), wasted)
	}
	// No duplicate kill for the same attempt.
	seen := make(map[string]bool)
	for _, k := range kills {
		key := fmt.Sprintf("%s/%d/%s", k.Task, k.Attempt, k.Node)
		if seen[key] {
			t.Errorf("attempt %s killed twice", key)
		}
		seen[key] = true
	}
	// Killed attempts also land in the attempt log with status killed.
	var killedRecs int
	for _, a := range res.Attempts {
		if a.Status == "killed" {
			killedRecs++
		}
	}
	if int64(killedRecs) != wasted {
		t.Errorf("killed attempt records: %d, want %d", killedRecs, wasted)
	}
}

func TestCountersConcurrentAccess(t *testing.T) {
	// Hammer one Counters registry from many goroutines: per-record
	// increments, registry lookups, and snapshot reads all race here
	// unless Counter is genuinely atomic. Run with -race.
	cs := NewCounters()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := cs.Get("task", "records")
			for i := 0; i < perG; i++ {
				c.Inc(1)
				cs.Get("task", fmt.Sprintf("dyn-%d", g)).Inc(1)
				if i%100 == 0 {
					cs.Snapshot()
					cs.Value("task", "records")
				}
			}
		}(g)
	}
	wg.Wait()
	if got := cs.Value("task", "records"); got != goroutines*perG {
		t.Errorf("records = %d, want %d", got, goroutines*perG)
	}
	snap := cs.Snapshot()
	for g := 0; g < goroutines; g++ {
		if snap["task"][fmt.Sprintf("dyn-%d", g)] != perG {
			t.Errorf("dyn-%d = %d, want %d", g, snap["task"][fmt.Sprintf("dyn-%d", g)], perG)
		}
	}
}

func TestFailingJobEmitsJobFinishedWithError(t *testing.T) {
	e, rec, hist := newObservedEngine(t, 1<<20, Options{
		FailureHook: func(taskID string, attempt int, node string) error {
			return errors.New("always down")
		},
	})
	writeInput(t, e, "in/f", "a\n")
	_, err := e.Run(&Job{
		Name:        "doomed",
		InputPaths:  []string{"in/f"},
		OutputPath:  "out",
		MaxAttempts: 2,
		NewMapper:   func() Mapper { return wordMapper{} },
	})
	if err == nil {
		t.Fatal("job unexpectedly succeeded")
	}
	fins := rec.ByType(obs.JobFinished)
	if len(fins) != 1 || fins[0].Err == "" {
		t.Fatalf("JobFinished on failure: %+v", fins)
	}
	// Failed jobs are not written to history.
	if recs, _ := hist.List(); len(recs) != 0 {
		t.Errorf("failed job saved to history: %+v", recs)
	}
}
