// The scheduler layer: one task per spec placed across the cluster's
// slots with locality preference, retried on failure, speculatively
// duplicated on stragglers. It is transport-agnostic — every attempt
// is a single exec.RunTask call, whether that runs a goroutine or
// ships the task to a worker process.

package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// schedule runs one task per spec across the cluster's slots. Tasks
// with preferred hosts are placed data-local when possible, then
// rack-local, then anywhere — the jobtracker's placement policy from
// §III ("keep the computation as close as possible to the data; if the
// work cannot be hosted on the actual node in which the data resides,
// priority is given to neighboring nodes, i.e. belonging to the same
// network rack"). Failed attempts are retried, excluding the node that
// failed, up to maxAttempts; reports[i] is filled for each task, and
// commit(i, res) is called exactly once per task — under the scheduler
// lock, for the winning attempt only.
//
// Slots poll node liveness: when a node dies mid-phase (an RPC worker
// lost, or a test killing nodes), its slots retire, tasks that had
// excluded it become placeable anywhere again, and losing every slot
// fails the phase instead of deadlocking.
func (e *Engine) schedule(job *Job, phase string, alog *attemptLog, specs []TaskSpec, maxAttempts int, counters *Counters, exec Executor, commit func(i int, res TaskResult), reports []TaskReport) error {
	if len(specs) == 0 {
		return nil
	}
	nodes := e.cluster.Alive()
	if len(nodes) == 0 {
		return fmt.Errorf("no alive nodes")
	}
	bus := e.opts.Obs
	// The phase context releases executors still blocked on abandoned
	// attempts (speculative losers, attempts on lost workers) once the
	// phase is decided. The in-process executor ignores it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type pendingTask struct {
		idx      int
		attempt  int
		excluded map[string]bool
		backup   bool // speculative duplicate of a running attempt
	}
	// runState tracks in-flight attempts per task for speculation.
	type runState struct {
		start   time.Time
		nodes   map[string]bool
		active  int
		backups int
	}
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		pending   []*pendingTask
		running   = make(map[int]*runState)
		done      = make([]bool, len(specs))
		failures  = make([]int, len(specs))
		firstErr  error
		remaining = len(specs)
		// attemptSeq allocates attempt numbers per task. Every launch —
		// first try, retry or speculative backup — draws a fresh number,
		// so no two attempts of a task ever collide (a retried backup
		// must not reuse a number the primary already burned).
		attemptSeq = make([]int, len(specs))
		// liveSlots counts slot workers still serving; it only shrinks
		// when a slot retires because its node died. liveNodes tracks
		// which nodes still have serving slots, so exclusion sets can
		// be normalised against the nodes that actually remain.
		liveSlots int
		liveNodes = make(map[string]bool, len(nodes))
	)
	for i := range specs {
		pending = append(pending, &pendingTask{idx: i})
		attemptSeq[i] = 1
	}

	// pickBackupLocked selects the longest-running unduplicated task
	// eligible for a speculative backup on this node.
	pickBackupLocked := func(nodeID string) *pendingTask {
		if e.opts.SpeculativeSlack <= 0 {
			return nil
		}
		bestIdx := -1
		var bestStart time.Time
		for idx, rs := range running {
			if done[idx] || rs.backups > 0 || rs.nodes[nodeID] {
				continue
			}
			if time.Since(rs.start) < e.opts.SpeculativeSlack {
				continue
			}
			if bestIdx < 0 || rs.start.Before(bestStart) {
				bestIdx, bestStart = idx, rs.start
			}
		}
		if bestIdx < 0 {
			return nil
		}
		running[bestIdx].backups++
		counters.Get(CounterGroupScheduler, CounterSpeculativeLaunched).Inc(1)
		attempt := attemptSeq[bestIdx]
		attemptSeq[bestIdx]++
		return &pendingTask{idx: bestIdx, attempt: attempt, backup: true}
	}

	// pickLocked selects the best pending task for a node:
	// data-local > rack-local > any non-excluded.
	rackOf := make(map[string]string, len(nodes))
	for _, n := range nodes {
		rackOf[n.ID] = n.Rack
	}
	pickLocked := func(nodeID string) (*pendingTask, string, int) {
		bestIdx, bestClass := -1, 3
		for i, pt := range pending {
			if pt.excluded[nodeID] {
				continue
			}
			class := 2 // off-rack
			sp := specs[pt.idx].Split
			for _, h := range sp.Hosts {
				if h == nodeID {
					class = 0
					break
				}
				if rackOf[h] == rackOf[nodeID] {
					class = 1
				}
			}
			if len(sp.Hosts) == 0 {
				class = 0 // no locality constraint (reduce tasks)
			}
			if class < bestClass {
				bestClass, bestIdx = class, i
			}
			if bestClass == 0 {
				break
			}
		}
		if bestIdx < 0 {
			return nil, "", 0
		}
		pt := pending[bestIdx]
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
		locality := [3]string{"data-local", "rack-local", "off-rack"}[bestClass]
		if len(specs[pt.idx].Split.Hosts) == 0 {
			locality = ""
		}
		return pt, locality, bestClass
	}

	// excludedEverywhereLocked reports whether a task's exclusion set
	// covers every node that still has serving slots.
	excludedEverywhereLocked := func(pt *pendingTask) bool {
		for id := range liveNodes {
			if !pt.excluded[id] {
				return false
			}
		}
		return true
	}

	// retireSlotLocked removes a dead node's slot from the pool. A
	// pending task whose exclusions now cover every surviving node gets
	// them cleared — retrying on a node it once failed on beats
	// deadlocking — and if no slot survives at all, the phase fails
	// rather than waiting for work that can never be placed.
	retireSlotLocked := func(nodeID string) {
		liveSlots--
		delete(liveNodes, nodeID)
		for _, pt := range pending {
			delete(pt.excluded, nodeID)
			if len(pt.excluded) > 0 && excludedEverywhereLocked(pt) {
				pt.excluded = nil
			}
		}
		if liveSlots == 0 && remaining > 0 && firstErr == nil {
			firstErr = fmt.Errorf("all %d nodes lost with %d tasks unfinished", len(nodes), remaining)
		}
		cond.Broadcast()
	}

	localityCounters := [3]string{CounterDataLocal, CounterRackLocal, CounterOffRack}
	var wg sync.WaitGroup
	worker := func(nodeID string) {
		defer wg.Done()
		for {
			mu.Lock()
			var pt *pendingTask
			var locality string
			var class int
			for {
				if firstErr != nil || remaining == 0 {
					mu.Unlock()
					return
				}
				if !e.cluster.IsAlive(nodeID) {
					retireSlotLocked(nodeID)
					mu.Unlock()
					return
				}
				if len(pending) > 0 {
					pt, locality, class = pickLocked(nodeID)
					if pt != nil {
						break
					}
				}
				// No regular work for this node: consider launching a
				// speculative backup of a straggling attempt.
				if bt := pickBackupLocked(nodeID); bt != nil {
					pt, locality = bt, ""
					break
				}
				// Tasks may be requeued by failures or become eligible
				// for speculation; wait for a state change or timeout.
				if e.opts.SpeculativeSlack > 0 {
					// cond.Wait would miss time-based eligibility; poll.
					mu.Unlock()
					time.Sleep(e.opts.SpeculativeSlack / 4)
					mu.Lock()
					continue
				}
				cond.Wait()
			}
			rs := running[pt.idx]
			if rs == nil {
				rs = &runState{start: time.Now(), nodes: make(map[string]bool)}
				running[pt.idx] = rs
			}
			rs.active++
			rs.nodes[nodeID] = true
			mu.Unlock()

			tid := specs[pt.idx].TaskID
			if bus.Active() {
				bus.Emit(obs.Event{
					Type: obs.TaskScheduled, Job: job.Name, Phase: phase, Task: tid,
					Attempt: pt.attempt, Node: nodeID, Locality: locality, Backup: pt.backup,
				})
			}
			if e.opts.NodeDelay != nil {
				if d := e.opts.NodeDelay(nodeID); d > 0 {
					time.Sleep(d)
				}
			}
			taskStart := time.Now()
			if bus.Active() {
				bus.Emit(obs.Event{
					Type: obs.AttemptStarted, Job: job.Name, Phase: phase, Task: tid,
					Attempt: pt.attempt, Node: nodeID, Locality: locality, Backup: pt.backup,
					Time: taskStart,
				})
			}
			spec := specs[pt.idx]
			spec.Attempt = pt.attempt
			spec.Node = nodeID
			res, err := exec.RunTask(ctx, spec)
			taskEnd := time.Now()
			// The retry branch below bumps pt.attempt for requeueing;
			// the record and event for THIS attempt keep its own number.
			attemptNo, wasBackup := pt.attempt, pt.backup

			mu.Lock()
			rs.active--
			var status string
			switch {
			case done[pt.idx]:
				// A parallel attempt already won; discard this result.
				// This is the losing attempt's single terminal transition,
				// so the kill event below fires exactly once per loser.
				status = "killed"
				counters.Get(CounterGroupScheduler, CounterSpeculativeWasted).Inc(1)
			case err == nil:
				status = "succeeded"
				done[pt.idx] = true
				delete(running, pt.idx)
				commit(pt.idx, res)
				reports[pt.idx].ID = tid
				reports[pt.idx].Node = nodeID
				reports[pt.idx].Attempts = pt.attempt + 1
				reports[pt.idx].Locality = locality
				reports[pt.idx].Duration = taskEnd.Sub(taskStart)
				reports[pt.idx].StartOffset = taskStart.Sub(alog.t0)
				reports[pt.idx].FailedAttempts = failures[pt.idx]
				if locality != "" {
					counters.Get(CounterGroupScheduler, localityCounters[class]).Inc(1)
				}
				remaining--
			case rs.active > 0:
				// Another attempt of this task is still running; let it
				// decide the task's fate. A failed backup releases its
				// speculation slot so a still-straggling primary can
				// receive another backup later.
				status = "failed"
				failures[pt.idx]++
				if pt.backup {
					rs.backups--
				}
			case failures[pt.idx]+1 >= maxAttempts:
				status = "failed"
				failures[pt.idx]++
				if firstErr == nil {
					firstErr = fmt.Errorf("task failed after %d attempts: %v", failures[pt.idx], err)
				}
			default:
				// Retry on another node, like the jobtracker does, under
				// a fresh attempt number that cannot collide with any
				// attempt already launched (including backups).
				status = "failed"
				failures[pt.idx]++
				delete(running, pt.idx)
				if pt.excluded == nil {
					pt.excluded = make(map[string]bool)
				}
				if len(pt.excluded) < len(nodes)-1 {
					pt.excluded[nodeID] = true
					if excludedEverywhereLocked(pt) {
						// Mid-phase node loss shrank the pool below the
						// guard's phase-start count; keep the task
						// placeable.
						pt.excluded = nil
					}
				}
				pt.attempt = attemptSeq[pt.idx]
				attemptSeq[pt.idx]++
				pt.backup = false
				pending = append(pending, pt)
			}
			if alog != nil {
				rec := obs.AttemptRecord{
					Task: tid, Phase: phase, Attempt: attemptNo, Node: nodeID,
					StartMs:  taskStart.Sub(alog.t0).Milliseconds(),
					EndMs:    taskEnd.Sub(alog.t0).Milliseconds(),
					Locality: locality, Backup: wasBackup, Status: status,
				}
				if err != nil && status == "failed" {
					rec.Error = err.Error()
				}
				alog.add(rec)
			}
			if bus.Active() {
				evType := obs.AttemptSucceeded
				switch status {
				case "failed":
					evType = obs.AttemptFailed
				case "killed":
					evType = obs.AttemptKilled
				}
				ev := obs.Event{
					Type: evType, Job: job.Name, Phase: phase, Task: tid,
					Attempt: attemptNo, Node: nodeID, Locality: locality, Backup: wasBackup,
					Time: taskEnd, Dur: taskEnd.Sub(taskStart),
				}
				if err != nil && status == "failed" {
					ev.Err = err.Error()
				}
				bus.Emit(ev)
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}

	for _, n := range nodes {
		liveSlots += n.Slots
		liveNodes[n.ID] = true
		for s := 0; s < n.Slots; s++ {
			wg.Add(1)
			go worker(n.ID)
		}
	}
	// Return as soon as every task has a winning attempt (or the job
	// failed) rather than joining all workers: a speculative loser may
	// still be executing, and — like Hadoop killing the slower attempt
	// — we abandon it. Losers never commit, so letting them drain in
	// the background is safe; they exit at their next loop iteration.
	mu.Lock()
	for remaining > 0 && firstErr == nil {
		cond.Wait()
	}
	err := firstErr
	mu.Unlock()
	if e.opts.SpeculativeSlack == 0 && !exec.External() {
		// Without speculation there are no abandoned losers; joining
		// the workers keeps goroutine accounting exact. (An external
		// executor may still be blocked on a lost worker's attempt;
		// the cancelled phase context unblocks it asynchronously.)
		wg.Wait()
	}
	return err
}
