// Map-side spill-to-DFS and the external shuffle, the memory-bounded
// path behind Job.MaxShuffleBytes. A map task buffers emitted records
// per reduce partition as before, but tracks the raw key+value bytes;
// when the budget trips, every non-empty partition buffer is sorted,
// run through the combiner (if any), written to DFS as a recordio run
// file — optionally DEFLATE-compressed — and released. The shuffle
// then defers partitions with file-backed runs: instead of an eager
// in-memory merge, the reduce attempt streams a k-way merge over file
// cursors (recordio.FileReader windows over dfs.ReadRange) and any
// in-memory tail runs from under-budget map tasks, feeding the same
// group iterator the in-memory path uses. With MaxShuffleBytes unset
// the spiller reduces exactly to the legacy commit-time sort+combine,
// so the in-memory path is preserved bit for bit.

package mapreduce

import (
	"fmt"

	"repro/internal/dfs"
	"repro/internal/recordio"
)

// spillDir is the DFS directory holding a job's spill run files,
// removed when the job finishes. Concurrent jobs must therefore not
// share a name (they already could not: history and output paths
// collide too).
func spillDir(job *Job) string { return "_shuffle/" + job.Name }

// spillRun describes one file-backed sorted run of a single reduce
// partition.
type spillRun struct {
	path    string
	records int64
	bytes   int64 // raw key+value bytes, pre-compression
}

// mapSpiller owns one map attempt's partitioned output buffer and its
// spill lifecycle. It is used by every map task — budget or not — so
// the two shuffle paths share one commit code path.
type mapSpiller struct {
	fs          dfs.Store
	job         *Job
	ctx         *TaskContext
	taskID      string
	attempt     int
	node        string
	mapOnly     bool
	numReducers int
	partition   func(key string, numReducers int) int
	budget      int64
	// forceSpill makes finish flush every partition to file-backed
	// runs even when nothing tripped the budget — out-of-process map
	// tasks have no other way to hand their output to the driver.
	forceSpill bool

	parts    [][]KV
	bufBytes int64
	spillSeq int
	err      error // first spill failure; emit becomes a no-op after

	fileRuns [][]spillRun // per partition, spill order

	added      int64 // records emitted by the mapper
	sorted     int64 // records sorted into runs (Hadoop's "Spilled Records")
	combineIn  int64
	combineOut int64
	files      int64 // spill files written
	fileBytes  int64 // on-DFS bytes of those files
}

func newMapSpiller(fs dfs.Store, job *Job, ctx *TaskContext, taskID string, attempt int, node string, mapOnly bool, numReducers int, partition func(string, int) int, budget int64, forceSpill bool) *mapSpiller {
	nParts := numReducers
	if mapOnly {
		nParts = 1
		budget = 0 // map-only output goes straight to part files
		forceSpill = false
	}
	return &mapSpiller{
		fs: fs, job: job, ctx: ctx, taskID: taskID, attempt: attempt, node: node,
		mapOnly: mapOnly, numReducers: numReducers, partition: partition,
		budget: budget, forceSpill: forceSpill, parts: make([][]KV, nParts),
	}
}

// stats packages the attempt's counter deltas for the TaskResult; the
// driver commits them only for the winning attempt.
func (sp *mapSpiller) stats(inputRecords int64) TaskStats {
	return TaskStats{
		MapInputRecords:      inputRecords,
		MapOutputRecords:     sp.added,
		CombineInputRecords:  sp.combineIn,
		CombineOutputRecords: sp.combineOut,
		SpilledRecords:       sp.sorted,
		SpillFiles:           sp.files,
		SpillBytes:           sp.fileBytes,
	}
}

// emit is the Emit the mapper sees. The Emit signature has no error
// channel, so a spill failure is latched and re-raised by finish.
func (sp *mapSpiller) emit(k, v string) {
	if sp.err != nil {
		return
	}
	p := 0
	if !sp.mapOnly {
		p = sp.partition(k, sp.numReducers)
	}
	sp.parts[p] = append(sp.parts[p], KV{k, v})
	sp.added++
	if sp.budget > 0 {
		sp.bufBytes += int64(len(k) + len(v))
		if sp.bufBytes >= sp.budget {
			sp.err = sp.spill()
		}
	}
}

// sortCombine is the commit-time run preparation both paths share:
// stable sort, optional combine over the sorted groups, and a re-sort
// of the combined output (a combiner Cleanup may emit out of order) —
// the exact sequence the in-memory commit path has always run.
func (sp *mapSpiller) sortCombine(run []KV) ([]KV, error) {
	sortRun(run, sp.job.KeyCompare)
	if sp.job.NewCombiner == nil {
		return run, nil
	}
	combined, err := runReduce(sp.ctx, sp.job.NewCombiner(), &sliceIter{kvs: run}, nil, sp.job.KeyCompare)
	if err != nil {
		return nil, fmt.Errorf("combiner: %v", err)
	}
	sp.combineIn += int64(len(run))
	sp.combineOut += int64(len(combined))
	sortRun(combined, sp.job.KeyCompare)
	return combined, nil
}

// spill writes every non-empty partition buffer to DFS as one sorted
// (and combined) run file, then resets the buffer accounting.
func (sp *mapSpiller) spill() error {
	for p := range sp.parts {
		if len(sp.parts[p]) == 0 {
			continue
		}
		run, err := sp.sortCombine(sp.parts[p])
		if err != nil {
			return err
		}
		var data []byte
		var raw int64
		if sp.job.CompressSpill {
			w := recordio.NewCompressedWriter(0)
			for _, kv := range run {
				w.Add(kv.Key, kv.Value)
				raw += int64(len(kv.Key) + len(kv.Value))
			}
			data = w.Bytes()
		} else {
			w := recordio.NewWriter()
			for _, kv := range run {
				w.Add(kv.Key, kv.Value)
				raw += int64(len(kv.Key) + len(kv.Value))
			}
			data = w.Bytes()
		}
		path := fmt.Sprintf("%s/%s-a%04d-spill-%04d-p%05d",
			spillDir(sp.job), sp.taskID, sp.attempt, sp.spillSeq, p)
		if err := sp.fs.Create(path, data, sp.node); err != nil {
			return fmt.Errorf("spill %s: %v", path, err)
		}
		if sp.fileRuns == nil {
			sp.fileRuns = make([][]spillRun, len(sp.parts))
		}
		sp.fileRuns[p] = append(sp.fileRuns[p], spillRun{
			path: path, records: int64(len(run)), bytes: raw,
		})
		sp.sorted += int64(len(run))
		sp.files++
		sp.fileBytes += int64(len(data))
		sp.parts[p] = nil
	}
	sp.spillSeq++
	sp.bufBytes = 0
	return nil
}

// finish seals the attempt's output after mapper cleanup. If nothing
// spilled, each partition is sorted and combined in place — the legacy
// commit path, bit for bit. If any spill happened, the remaining
// buffer is flushed too, so every run of this attempt is file-backed.
func (sp *mapSpiller) finish() (*mapOutput, error) {
	if sp.err != nil {
		return nil, sp.err
	}
	if sp.mapOnly {
		return &mapOutput{parts: sp.parts}, nil
	}
	if sp.spillSeq > 0 || sp.forceSpill {
		if err := sp.spill(); err != nil {
			return nil, err
		}
		return &mapOutput{parts: make([][]KV, len(sp.parts)), fileRuns: sp.fileRuns}, nil
	}
	for p := range sp.parts {
		run, err := sp.sortCombine(sp.parts[p])
		if err != nil {
			return nil, err
		}
		sp.parts[p] = run
		sp.sorted += int64(len(run))
	}
	return &mapOutput{parts: sp.parts}, nil
}

// shuffleSource is one run feeding a reduce partition's merge: either
// an in-memory slice from an under-budget map task or a file-backed
// spill run. Exactly one of mem / file.path is set.
type shuffleSource struct {
	mem  []KV
	file spillRun
}

// extPartition is a reduce partition whose merge is deferred to the
// reduce attempt because at least one of its runs is file-backed.
type extPartition struct {
	sources []shuffleSource // map-task order, spill order within a task
	records int64
	bytes   int64 // raw key+value bytes across all runs
}

// iter opens a fresh streaming merge over the partition's runs. Each
// reduce attempt gets its own cursors (and fetch windows), so
// concurrent speculative attempts never share read state.
func (x *extPartition) iter(fs dfs.Store, cmp func(a, b string) int) (*extMergeIter, error) {
	pulls := make([]pullFunc, 0, len(x.sources))
	for _, s := range x.sources {
		if s.file.path == "" {
			it := &sliceIter{kvs: s.mem}
			pulls = append(pulls, func() (KV, bool, error) {
				kv, ok := it.next()
				return kv, ok, nil
			})
			continue
		}
		pull, err := openSpillRun(fs, s.file.path)
		if err != nil {
			return nil, err
		}
		pulls = append(pulls, pull)
	}
	return newExtMergeIter(pulls, cmp)
}

// openSpillRun opens one spill file as a pull cursor streaming through
// ranged DFS reads, holding one fetch window rather than the file.
func openSpillRun(fs dfs.Store, path string) (pullFunc, error) {
	size, err := fs.Size(path)
	if err != nil {
		return nil, fmt.Errorf("spill run %s: %v", path, err)
	}
	r, err := recordio.NewFileReader(size, func(off, n int64) ([]byte, error) {
		return fs.ReadRange(path, off, n)
	})
	if err != nil {
		return nil, fmt.Errorf("spill run %s: %v", path, err)
	}
	return func() (KV, bool, error) {
		k, v, ok, err := r.Next()
		if err != nil {
			return KV{}, false, fmt.Errorf("spill run %s: %v", path, err)
		}
		return KV{Key: k, Value: v}, ok, nil
	}, nil
}
