package mapreduce

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/recordio"
)

// typedSumJob is the typed wordcount analogue used across these
// tests: text lines in, (word, count) out with int64 values moving as
// binary encodings end to end.
func typedSumJob(name, in, out string, reducers int, combine bool) *Job {
	tj := &TypedJob[string, string, string, int64, string, int64]{
		Name:       name,
		InputPaths: []string{in},
		OutputPath: out,
		Mapper: func() TypedMapper[string, string, string, int64] {
			return TypedMapFunc[string, string, string, int64](
				func(_ *TaskContext, _ string, line string, emit TypedEmit[string, int64]) error {
					for _, w := range strings.Fields(line) {
						emit(w, 1)
					}
					return nil
				})
		},
		Reducer: func() TypedReducer[string, int64, string, int64] {
			return TypedReduceFunc[string, int64, string, int64](
				func(_ *TaskContext, key string, values []int64, emit TypedEmit[string, int64]) error {
					var sum int64
					for _, v := range values {
						sum += v
					}
					emit(key, sum)
					return nil
				})
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.RawString{},
		MapKey:      recordio.RawString{},
		MapValue:    recordio.Int64{},
		OutputKey:   recordio.RawString{},
		OutputValue: recordio.Int64{},
		NumReducers: reducers,
	}
	if combine {
		tj.Combiner = func() TypedReducer[string, int64, string, int64] {
			return TypedReduceFunc[string, int64, string, int64](
				func(_ *TaskContext, key string, values []int64, emit TypedEmit[string, int64]) error {
					var sum int64
					for _, v := range values {
						sum += v
					}
					emit(key, sum)
					return nil
				})
		}
	}
	return tj.Build()
}

// readTypedCounts decodes a typed sum job's binary output.
func readTypedCounts(t *testing.T, e *Engine, dir string) map[string]int64 {
	t.Helper()
	kvs, err := e.ReadOutput(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int64{}
	for _, kv := range kvs {
		n, err := recordio.Int64{}.Decode(kv.Value)
		if err != nil {
			t.Fatalf("value of %q: %v", kv.Key, err)
		}
		out[kv.Key] += n
	}
	return out
}

// TestTypedJobEndToEnd runs a typed job over text input and checks
// the binary output against the sequential reference.
func TestTypedJobEndToEnd(t *testing.T) {
	e := newTestEngine(t, 64)
	text := strings.Repeat("alpha beta beta\ngamma alpha\n", 40)
	writeInput(t, e, "in/f", text)
	res, err := e.Run(typedSumJob("typed-wc", "in/f", "out", 3, true))
	if err != nil {
		t.Fatal(err)
	}
	got := readTypedCounts(t, e, "out")
	if got["alpha"] != 80 || got["beta"] != 80 || got["gamma"] != 40 {
		t.Fatalf("wrong counts: %v", got)
	}
	// The part files really are binary record files.
	data, err := e.FS().ReadAll(res.OutputFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	if !recordio.IsRecordData(data) {
		t.Fatal("typed job wrote a non-binary part file")
	}
	// The combiner must have cut shuffle volume.
	if in, out := res.Counters.Value(CounterGroupTask, CounterCombineInput),
		res.Counters.Value(CounterGroupTask, CounterCombineOutput); out >= in {
		t.Fatalf("combiner did not reduce records: in=%d out=%d", in, out)
	}
}

// TestTypedJobChainsOverBinaryOutput feeds a typed job's binary
// output into a second typed job with a tiny chunk size, so the
// second job's map splits land mid-file and exercise the sync-block
// split reader inside the engine.
func TestTypedJobChainsOverBinaryOutput(t *testing.T) {
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 256-byte chunks: the first job's binary part files will span
	// many chunks each.
	fs, err := dfs.New(c, dfs.Config{ChunkSize: 256, Replication: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c, fs, Options{})
	rng := rand.New(rand.NewSource(3))
	var sb strings.Builder
	want := map[string]int64{}
	for i := 0; i < 400; i++ {
		w := fmt.Sprintf("word-%03d", rng.Intn(50))
		sb.WriteString(w)
		want[w]++
		if i%7 == 6 {
			sb.WriteByte('\n')
		} else {
			sb.WriteByte(' ')
		}
	}
	if err := fs.Create("in/f", []byte(sb.String()), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(typedSumJob("stage-1", "in/f", "s1", 2, false)); err != nil {
		t.Fatal(err)
	}
	// Stage 2 re-aggregates stage 1's binary records: input keys are
	// the stored words, values the encoded partial counts.
	tj := &TypedJob[string, int64, string, int64, string, int64]{
		Name:       "stage-2",
		InputPaths: []string{"s1"},
		OutputPath: "s2",
		Mapper: func() TypedMapper[string, int64, string, int64] {
			return TypedMapFunc[string, int64, string, int64](
				func(_ *TaskContext, word string, n int64, emit TypedEmit[string, int64]) error {
					emit(word, n)
					return nil
				})
		},
		Reducer: func() TypedReducer[string, int64, string, int64] {
			return TypedReduceFunc[string, int64, string, int64](
				func(_ *TaskContext, key string, values []int64, emit TypedEmit[string, int64]) error {
					var sum int64
					for _, v := range values {
						sum += v
					}
					emit(key, sum)
					return nil
				})
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.Int64{},
		MapKey:      recordio.RawString{},
		MapValue:    recordio.Int64{},
		OutputKey:   recordio.RawString{},
		OutputValue: recordio.Int64{},
		NumReducers: 3,
	}
	if _, err := e.Run(tj.Build()); err != nil {
		t.Fatal(err)
	}
	got := readTypedCounts(t, e, "s2")
	if len(got) != len(want) {
		t.Fatalf("%d words, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Fatalf("%s: %d, want %d", w, got[w], n)
		}
	}
}

// TestTypedJobInt64KeyOrder checks that an order-preserving binary
// key codec yields numerically sorted reducer output — including
// negative keys, which a text sort would misplace — without any
// custom comparator.
func TestTypedJobInt64KeyOrder(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "ignored\n")
	keys := []int64{5, -3, 900, 0, -77, 12, 4}
	tj := &TypedJob[string, string, int64, int64, int64, int64]{
		Name:       "typed-order",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		Mapper: func() TypedMapper[string, string, int64, int64] {
			return TypedMapFunc[string, string, int64, int64](
				func(_ *TaskContext, _, _ string, emit TypedEmit[int64, int64]) error {
					for _, k := range keys {
						emit(k, k*10)
					}
					return nil
				})
		},
		Reducer: func() TypedReducer[int64, int64, int64, int64] {
			return TypedReduceFunc[int64, int64, int64, int64](
				func(_ *TaskContext, key int64, values []int64, emit TypedEmit[int64, int64]) error {
					emit(key, values[0])
					return nil
				})
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.RawString{},
		MapKey:      recordio.Int64{},
		MapValue:    recordio.Int64{},
		OutputKey:   recordio.Int64{},
		OutputValue: recordio.Int64{},
		NumReducers: 1,
	}
	if _, err := e.Run(tj.Build()); err != nil {
		t.Fatal(err)
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, kv := range kvs {
		k, err := recordio.Int64{}.Decode(kv.Key)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, k)
	}
	want := []int64{-77, -3, 0, 4, 5, 12, 900}
	if len(got) != len(want) {
		t.Fatalf("%d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key order %v, want %v", got, want)
		}
	}
}

// TestTypedJobCustomKeyCompare flips the sort order via KeyCompare.
func TestTypedJobCustomKeyCompare(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "ignored\n")
	cdc := recordio.Int64{}
	tj := &TypedJob[string, string, int64, int64, int64, int64]{
		Name:       "typed-desc",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		Mapper: func() TypedMapper[string, string, int64, int64] {
			return TypedMapFunc[string, string, int64, int64](
				func(_ *TaskContext, _, _ string, emit TypedEmit[int64, int64]) error {
					for _, k := range []int64{1, 3, 2} {
						emit(k, 0)
					}
					return nil
				})
		},
		Reducer: func() TypedReducer[int64, int64, int64, int64] {
			return TypedReduceFunc[int64, int64, int64, int64](
				func(_ *TaskContext, key int64, _ []int64, emit TypedEmit[int64, int64]) error {
					emit(key, 0)
					return nil
				})
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.RawString{},
		MapKey:      cdc,
		MapValue:    recordio.Int64{},
		OutputKey:   recordio.Int64{},
		OutputValue: recordio.Int64{},
		NumReducers: 1,
		KeyCompare:  func(a, b string) int { return cdc.RawCompare(b, a) }, // descending
	}
	if _, err := e.Run(tj.Build()); err != nil {
		t.Fatal(err)
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, kv := range kvs {
		k, err := cdc.Decode(kv.Key)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, k)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("descending order broken: %v", got)
	}
}

// TestTypedMapOnlyJob checks that a map-only typed job writes binary
// part-m files whose records decode back through the codecs, and that
// TextOutput opts back into text part files.
func TestTypedMapOnlyJob(t *testing.T) {
	for _, text := range []bool{false, true} {
		e := newTestEngine(t, 64)
		writeInput(t, e, "in/f", "one two three\n")
		tj := &TypedJob[string, string, string, int64, string, int64]{
			Name:       "typed-maponly",
			InputPaths: []string{"in/f"},
			OutputPath: "out",
			Mapper: func() TypedMapper[string, string, string, int64] {
				return TypedMapFunc[string, string, string, int64](
					func(_ *TaskContext, _, line string, emit TypedEmit[string, int64]) error {
						for i, w := range strings.Fields(line) {
							emit(w, int64(i))
						}
						return nil
					})
			},
			InputKey:   recordio.RawString{},
			InputValue: recordio.RawString{},
			MapKey:     recordio.RawString{},
			MapValue:   recordio.Int64{},
			TextOutput: text,
		}
		res, err := e.Run(tj.Build())
		if err != nil {
			t.Fatal(err)
		}
		data, err := e.FS().ReadAll(res.OutputFiles[0])
		if err != nil {
			t.Fatal(err)
		}
		if recordio.IsRecordData(data) == text {
			t.Fatalf("TextOutput=%v produced wrong format", text)
		}
		if text {
			continue // binary decode check below is for the binary flavour
		}
		got := readTypedCounts(t, e, "out")
		if got["one"] != 0 || got["two"] != 1 || got["three"] != 2 {
			t.Fatalf("wrong map-only output: %v", got)
		}
	}
}

// TestTypedDecodeErrorFailsTask feeds a typed job input its codec
// rejects and expects a job error, not silent corruption.
func TestTypedDecodeErrorFailsTask(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", "not an int64 encoding\n")
	tj := &TypedJob[string, int64, string, int64, string, int64]{
		Name:       "typed-badinput",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		Mapper: func() TypedMapper[string, int64, string, int64] {
			return TypedMapFunc[string, int64, string, int64](
				func(_ *TaskContext, _ string, n int64, emit TypedEmit[string, int64]) error {
					emit("k", n)
					return nil
				})
		},
		InputKey:   recordio.RawString{},
		InputValue: recordio.Int64{}, // text lines cannot decode as int64
		MapKey:     recordio.RawString{},
		MapValue:   recordio.Int64{},
	}
	if _, err := e.Run(tj.Build()); err == nil {
		t.Fatal("want decode error to fail the job")
	}
}

// cleanupMapper buffers word counts during Map and flushes them only
// in Cleanup, in sorted order — the canonical in-mapper-combining
// shape whose Cleanup emissions must flow through the typed lowering
// (encoding, partitioning, spill) exactly like Map-time emissions.
type cleanupMapper struct {
	TypedMapperBase[string, int64]
	counts map[string]int64
}

func (m *cleanupMapper) Setup(*TaskContext) error {
	m.counts = map[string]int64{}
	return nil
}

func (m *cleanupMapper) Map(_ *TaskContext, _, line string, _ TypedEmit[string, int64]) error {
	for _, w := range strings.Fields(line) {
		m.counts[w]++
	}
	return nil
}

func (m *cleanupMapper) Cleanup(_ *TaskContext, emit TypedEmit[string, int64]) error {
	words := make([]string, 0, len(m.counts))
	for w := range m.counts {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		emit(w, m.counts[w])
	}
	return nil
}

// cleanupReducer sums values per key and emits one extra record from
// Cleanup counting the groups it saw, exercising the typed reducer's
// Cleanup emission path (which encodes through the output codecs).
type cleanupReducer struct {
	TypedReducerBase[string, int64]
	groups int64
}

func (r *cleanupReducer) Reduce(_ *TaskContext, key string, values []int64, emit TypedEmit[string, int64]) error {
	var sum int64
	for _, v := range values {
		sum += v
	}
	emit(key, sum)
	r.groups++
	return nil
}

func (r *cleanupReducer) Cleanup(_ *TaskContext, emit TypedEmit[string, int64]) error {
	emit("~groups", r.groups)
	return nil
}

// TestTypedCleanupEmission checks that records emitted from typed
// Mapper.Cleanup and Reducer.Cleanup reach the output with correct
// encodings: the mapper emits everything from Cleanup, and the
// reducer appends a Cleanup summary record.
func TestTypedCleanupEmission(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", strings.Repeat("alpha beta beta gamma\n", 30))
	tj := &TypedJob[string, string, string, int64, string, int64]{
		Name:       "typed-cleanup",
		InputPaths: []string{"in/f"},
		OutputPath: "out",
		Mapper: func() TypedMapper[string, string, string, int64] {
			return &cleanupMapper{}
		},
		Reducer: func() TypedReducer[string, int64, string, int64] {
			return &cleanupReducer{}
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.RawString{},
		MapKey:      recordio.RawString{},
		MapValue:    recordio.Int64{},
		OutputKey:   recordio.RawString{},
		OutputValue: recordio.Int64{},
		NumReducers: 2,
	}
	if _, err := e.Run(tj.Build()); err != nil {
		t.Fatal(err)
	}
	got := readTypedCounts(t, e, "out")
	if got["alpha"] != 30 || got["beta"] != 60 || got["gamma"] != 30 {
		t.Fatalf("mapper Cleanup emissions lost or miscounted: %v", got)
	}
	// Each reducer's Cleanup adds its group count; summed across the
	// two reducers this is the number of distinct words.
	if got["~groups"] != 3 {
		t.Fatalf("reducer Cleanup emission: got %d groups, want 3", got["~groups"])
	}
}
