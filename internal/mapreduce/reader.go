package mapreduce

import (
	"bytes"
	"fmt"
	"strconv"

	"repro/internal/dfs"
	"repro/internal/recordio"
)

// maxLineOverrun bounds how far past a split's end the record reader
// will look for the terminating newline of its final record.
const maxLineOverrun = 1 << 20 // 1 MiB

// InputSplit is the unit of work of one map task: one DFS chunk plus
// the replica hosts used for locality scheduling.
type InputSplit struct {
	Path   string
	Offset int64
	Length int64
	Hosts  []string
}

// splitsFor expands the job's input paths into one split per DFS
// chunk, so the scheduler "launches as many map tasks as possible,
// each chunk being processed by a different map task" (§III).
func splitsFor(fs *dfs.FileSystem, inputPaths []string) ([]InputSplit, error) {
	var files []string
	for _, p := range inputPaths {
		if fs.Exists(p) {
			files = append(files, p)
			continue
		}
		listed := fs.List(p)
		if len(listed) == 0 {
			return nil, fmt.Errorf("mapreduce: input %q matches no files", p)
		}
		files = append(files, listed...)
	}
	var splits []InputSplit
	for _, f := range files {
		chunks, err := fs.Chunks(f)
		if err != nil {
			return nil, err
		}
		for _, c := range chunks {
			splits = append(splits, InputSplit{
				Path:   c.Path,
				Offset: c.Offset,
				Length: c.Length,
				Hosts:  c.Hosts,
			})
		}
	}
	return splits, nil
}

// readSplit reads the records belonging to a split, dispatching on
// the underlying file's format: files with the recordio header are
// read as binary key-value records, anything else as text lines whose
// key is the byte offset (Hadoop TextInputFormat). The sniff costs
// one tiny ReadRange per split; the engine's pipelines mix text
// uploads and binary part files freely because of it.
func readSplit(fs dfs.Store, sp InputSplit, fn func(key, value string) error) error {
	hdr, err := fs.ReadRange(sp.Path, 0, recordio.HeaderLen)
	if err != nil {
		return err
	}
	if recordio.IsRecordData(hdr) {
		return readSplitRecords(fs, sp, fn)
	}
	return readSplitLines(fs, sp, func(off int64, line string) error {
		return fn(offsetKey(off), line)
	})
}

// readSplitRecords reads the binary records belonging to a split: the
// sync blocks starting inside it (see recordio.ScanSplit), with the
// same read-past-the-end overrun budget the line reader uses to
// finish a record straddling the split boundary.
func readSplitRecords(fs dfs.Store, sp InputSplit, fn func(key, value string) error) error {
	reqLen := sp.Length + maxLineOverrun
	buf, err := fs.ReadRange(sp.Path, sp.Offset, reqLen)
	if err != nil {
		return err
	}
	rangeLimited := int64(len(buf)) == reqLen
	err = recordio.ScanSplit(buf, sp.Offset, sp.Offset, sp.Offset+sp.Length, rangeLimited, fn)
	if err != nil {
		return fmt.Errorf("mapreduce: %s: %v", sp.Path, err)
	}
	return nil
}

// readSplitLines reads the line records belonging to a split with
// Hadoop TextInputFormat semantics: a record belongs to the split in
// which it starts. A split whose offset is not 0 skips the (possibly
// partial) line in progress at its start — the previous split reads
// across the boundary to finish it — and every split reads past its
// end to complete its final record. The callback receives the byte
// offset of each line (the record key) and the line text without the
// trailing newline.
func readSplitLines(fs dfs.Store, sp InputSplit, fn func(offset int64, line string) error) error {
	// Start one byte early (as Hadoop's LineRecordReader does) so that
	// a record beginning exactly at the split boundary is not skipped:
	// the "first line" discarded below is then the line containing the
	// boundary's preceding byte, which ends either before or at the
	// boundary.
	readStart := sp.Offset
	if sp.Offset > 0 {
		readStart = sp.Offset - 1
	}
	reqLen := (sp.Offset - readStart) + sp.Length + maxLineOverrun
	buf, err := fs.ReadRange(sp.Path, readStart, reqLen)
	if err != nil {
		return err
	}
	// ReadRange truncates at end-of-file; a buffer of the full
	// requested length may therefore have been cut by the range limit
	// rather than by EOF, and an unterminated tail then means a record
	// longer than the reader's overrun bound — not a final line.
	rangeLimited := int64(len(buf)) == reqLen
	pos := int64(0) // position within buf; file offset is readStart+pos
	if sp.Offset > 0 {
		// Skip the line in progress at the split start.
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			// The whole split is the interior of one huge line. That
			// record belongs to the split it starts in, whose reader
			// reports the oversized-line error; here there is nothing
			// to emit.
			return nil
		}
		pos = int64(nl) + 1
	}
	end := sp.Offset + sp.Length
	for readStart+pos < end {
		if pos >= int64(len(buf)) {
			break // end of file
		}
		rest := buf[pos:]
		nl := bytes.IndexByte(rest, '\n')
		var line []byte
		var advance int64
		if nl < 0 {
			if rangeLimited {
				// The record starting at this offset continues past the
				// end of the range-limited buffer: emitting rest would
				// silently truncate it as if it were EOF. Any such
				// record is over maxLineOverrun bytes long (it starts
				// before the split end and fills the rest of the
				// buffer), so it exceeds the reader's contract either
				// way.
				return fmt.Errorf("mapreduce: %s: line starting at offset %d exceeds the %d-byte maximum record length", sp.Path, readStart+pos, maxLineOverrun)
			}
			line = rest // final line of the file without trailing newline
			advance = int64(len(rest))
		} else {
			line = rest[:nl]
			advance = int64(nl) + 1
		}
		// Trim a carriage return for CRLF input.
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if err := fn(readStart+pos, string(line)); err != nil {
			return err
		}
		if advance == 0 {
			break
		}
		pos += advance
	}
	return nil
}

// offsetKey renders a record's byte offset as the map input key, as
// Hadoop's TextInputFormat does.
func offsetKey(off int64) string { return strconv.FormatInt(off, 10) }
