package mapreduce

import (
	"strings"
	"testing"
)

func TestShuffleBudgetFor(t *testing.T) {
	e := newTestEngine(t, 1<<20) // 6 nodes × 2 slots = 12 slots
	slots := int64(e.Cluster().TotalSlots())
	if slots != 12 {
		t.Fatalf("test topology has %d slots, want 12", slots)
	}
	cases := []struct {
		name string
		job  Job
		want int64
	}{
		{"default is all-in-memory", Job{}, 0},
		{"explicit knob wins", Job{MaxShuffleBytes: 4096, MemoryTargetBytes: 1 << 30}, 4096},
		{"target divided by slots", Job{MemoryTargetBytes: 12_000}, 1000},
		{"rounds down", Job{MemoryTargetBytes: 12_011}, 1000},
		{"floor of one byte", Job{MemoryTargetBytes: 5}, 1},
	}
	for _, tc := range cases {
		if got := e.shuffleBudgetFor(&tc.job); got != tc.want {
			t.Errorf("%s: budget = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestAdaptiveBudgetSpillsAndMatches runs the same job with the
// all-in-memory shuffle and with a job-wide memory target small enough
// to force spilling on every map task; the spill path must change only
// the counters, never the output.
func TestAdaptiveBudgetSpillsAndMatches(t *testing.T) {
	text := strings.Repeat("one two three four five six seven eight nine ten\n", 40)

	run := func(target int64) (*Result, map[string]string) {
		e := newTestEngine(t, 64)
		writeInput(t, e, "in/text", text)
		res, err := e.Run(&Job{
			Name:              "budget",
			InputPaths:        []string{"in"},
			OutputPath:        "out",
			NewMapper:         func() Mapper { return wordMapper{} },
			NewReducer:        func() Reducer { return sumReducer{} },
			NumReducers:       3,
			MemoryTargetBytes: target,
		})
		if err != nil {
			t.Fatal(err)
		}
		kvs, err := e.ReadOutput("out")
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]string{}
		for _, kv := range kvs {
			got[kv.Key] = kv.Value
		}
		return res, got
	}

	memRes, memOut := run(0)
	if n := memRes.Counters.Value(CounterGroupShuffle, CounterShuffleSpillFiles); n != 0 {
		t.Fatalf("all-in-memory run spilled %d files", n)
	}

	// 12 slots × ~20 bytes each: every map task's buffer overflows.
	spillRes, spillOut := run(240)
	if n := spillRes.Counters.Value(CounterGroupShuffle, CounterShuffleSpillFiles); n == 0 {
		t.Fatal("memory-target run spilled no files; budget derivation inactive")
	}
	if len(memOut) != len(spillOut) {
		t.Fatalf("output sizes differ: in-memory %d keys, spilled %d keys", len(memOut), len(spillOut))
	}
	for k, v := range memOut {
		if spillOut[k] != v {
			t.Errorf("%s: in-memory %q, spilled %q", k, v, spillOut[k])
		}
	}
}
