package mapreduce

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestMergeRunsEmptyAndSingle(t *testing.T) {
	if got := MergeRuns(nil); got != nil {
		t.Fatalf("MergeRuns(nil) = %v", got)
	}
	if got := MergeRuns([][]KV{{}, nil, {}}); got != nil {
		t.Fatalf("MergeRuns(empties) = %v", got)
	}
	run := []KV{{"a", "1"}, {"b", "2"}}
	got := MergeRuns([][]KV{nil, run, {}})
	if !reflect.DeepEqual(got, run) {
		t.Fatalf("single-run merge = %v, want %v", got, run)
	}
}

func TestMergeRunsInterleaves(t *testing.T) {
	r1 := []KV{{"a", "1"}, {"c", "1"}, {"e", "1"}}
	r2 := []KV{{"b", "2"}, {"d", "2"}}
	r3 := []KV{{"a", "3"}, {"f", "3"}}
	got := MergeRuns([][]KV{r1, r2, r3})
	want := []KV{{"a", "1"}, {"a", "3"}, {"b", "2"}, {"c", "1"}, {"d", "2"}, {"e", "1"}, {"f", "3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

func TestMergeRunsStableAcrossRuns(t *testing.T) {
	// Equal keys must come out in run order, and within a run in the
	// run's own order — the order the seed's concat + stable sort gave.
	r1 := []KV{{"k", "r1-a"}, {"k", "r1-b"}}
	r2 := []KV{{"k", "r2-a"}}
	r3 := []KV{{"k", "r3-a"}, {"k", "r3-b"}}
	got := MergeRuns([][]KV{r1, r2, r3})
	want := []KV{{"k", "r1-a"}, {"k", "r1-b"}, {"k", "r2-a"}, {"k", "r3-a"}, {"k", "r3-b"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

func TestGroupIterGroupsSortedStream(t *testing.T) {
	in := []KV{{"a", "1"}, {"a", "2"}, {"b", "3"}, {"c", "4"}, {"c", "5"}, {"c", "6"}}
	g := newGroupIter(&sliceIter{kvs: in}, nil)
	type group struct {
		key    string
		values []string
	}
	var got []group
	for {
		k, vs, ok := g.next()
		if !ok {
			break
		}
		got = append(got, group{k, vs})
	}
	want := []group{{"a", []string{"1", "2"}}, {"b", []string{"3"}}, {"c", []string{"4", "5", "6"}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
}

func TestGroupIterEmpty(t *testing.T) {
	g := newGroupIter(&sliceIter{}, nil)
	if _, _, ok := g.next(); ok {
		t.Fatal("empty stream yielded a group")
	}
}

// randomRuns builds runs in emission order (unsorted) from a small key
// alphabet so keys collide across runs.
func randomRuns(rng *rand.Rand, maxRuns int) [][]KV {
	runs := make([][]KV, 1+rng.Intn(maxRuns))
	seq := 0
	for i := range runs {
		n := rng.Intn(40) // some runs stay empty
		for j := 0; j < n; j++ {
			runs[i] = append(runs[i], KV{
				Key:   fmt.Sprintf("k%02d", rng.Intn(12)),
				Value: fmt.Sprintf("v%04d", seq),
			})
			seq++
		}
	}
	return runs
}

// seedShuffle is the seed engine's shuffle semantics kept as a test
// reference: concatenate the unsorted runs in run order, then stable-
// sort the whole partition by key.
func seedShuffle(runs [][]KV) []KV {
	var all []KV
	for _, r := range runs {
		all = append(all, r...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	return all
}

func TestMergeRunsMatchesSeedShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		runs := randomRuns(rng, 8)
		want := seedShuffle(runs)
		sorted := make([][]KV, len(runs))
		for i, r := range runs {
			sorted[i] = append([]KV(nil), r...)
			sortRun(sorted[i], nil)
		}
		got := MergeRuns(sorted)
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("iter %d: merge of empties = %v", iter, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: merge diverges from seed shuffle\n got %v\nwant %v", iter, got, want)
		}
	}
}
