// Package mapreduce implements the MapReduce programming model over
// the simulated cluster and DFS, mirroring the Hadoop architecture the
// paper builds on (§III): a jobtracker (the Engine) schedules map
// tasks close to their data on tasktracker slots, mappers filter their
// input chunk into intermediate key-value pairs, a sort-based shuffle
// groups values by key — the only communication step — and reducers
// aggregate each group into the final output.
//
// Applications supply a Mapper and optionally a Reducer and Combiner
// (mirroring the three classes a Hadoop developer defines: Mapper,
// Reducer, Driver — the Driver role is played by a Job description
// passed to Engine.Run). Jobs can be chained into pipelines, as the
// DJ-Cluster preprocessing phase does (§VII-A).
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// KV is one intermediate or output record. MapReduce represents all
// data as key-value pairs (§III).
type KV struct {
	Key   string
	Value string
}

// Emit is the callback mappers, combiners and reducers use to output
// records (Hadoop's context.write / emitIntermediate).
type Emit func(key, value string)

// Mapper processes one input split record-by-record. A fresh instance
// is created per map task (via Job.NewMapper), so implementations may
// keep per-task state across Map calls and flush it in Cleanup — the
// sampling mapper does exactly that with its current time window.
type Mapper interface {
	// Setup runs once before the first record (Hadoop setup()); the
	// k-means and DJ-Cluster mappers load centroids / the R-tree from
	// the distributed cache here.
	Setup(ctx *TaskContext) error
	// Map processes one record. For line-oriented input the key is
	// the byte offset of the line within the file and the value is
	// the line text (Hadoop TextInputFormat).
	Map(ctx *TaskContext, key, value string, emit Emit) error
	// Cleanup runs after the last record (Hadoop cleanup()).
	Cleanup(ctx *TaskContext, emit Emit) error
}

// Reducer aggregates all values sharing a key. A fresh instance is
// created per reduce task. The same interface serves for combiners,
// which pre-aggregate map output on the map side to cut shuffle volume
// (§VI, Related work: the combiner optimisation for k-means).
type Reducer interface {
	Setup(ctx *TaskContext) error
	Reduce(ctx *TaskContext, key string, values []string, emit Emit) error
	Cleanup(ctx *TaskContext, emit Emit) error
}

// MapperBase is a convenience embedding providing no-op Setup/Cleanup.
type MapperBase struct{}

// Setup implements Mapper.
func (MapperBase) Setup(*TaskContext) error { return nil }

// Cleanup implements Mapper.
func (MapperBase) Cleanup(*TaskContext, Emit) error { return nil }

// ReducerBase is a convenience embedding providing no-op Setup/Cleanup.
type ReducerBase struct{}

// Setup implements Reducer.
func (ReducerBase) Setup(*TaskContext) error { return nil }

// Cleanup implements Reducer.
func (ReducerBase) Cleanup(*TaskContext, Emit) error { return nil }

// MapFunc adapts a plain function to the Mapper interface.
type MapFunc func(ctx *TaskContext, key, value string, emit Emit) error

// Setup implements Mapper.
func (MapFunc) Setup(*TaskContext) error { return nil }

// Map implements Mapper.
func (f MapFunc) Map(ctx *TaskContext, key, value string, emit Emit) error {
	return f(ctx, key, value, emit)
}

// Cleanup implements Mapper.
func (MapFunc) Cleanup(*TaskContext, Emit) error { return nil }

// ReduceFunc adapts a plain function to the Reducer interface.
type ReduceFunc func(ctx *TaskContext, key string, values []string, emit Emit) error

// Setup implements Reducer.
func (ReduceFunc) Setup(*TaskContext) error { return nil }

// Reduce implements Reducer.
func (f ReduceFunc) Reduce(ctx *TaskContext, key string, values []string, emit Emit) error {
	return f(ctx, key, values, emit)
}

// Cleanup implements Reducer.
func (ReduceFunc) Cleanup(*TaskContext, Emit) error { return nil }

// Job describes one MapReduce job — the information a Hadoop Driver
// class supplies to the framework.
type Job struct {
	// Name labels the job in results and task IDs.
	Name string
	// Kind names the job's registered kind (see RegisterKind), which
	// stands in for the function fields when the job is shipped to an
	// out-of-process worker. Optional for in-process execution.
	Kind string
	// InputPaths are DFS files or directories to read.
	InputPaths []string
	// OutputPath is the DFS directory for part files. It must not
	// already contain files (Hadoop refuses to overwrite output).
	OutputPath string
	// NewMapper creates a Mapper per map task. Required.
	NewMapper func() Mapper
	// NewReducer creates a Reducer per reduce task. If nil the job is
	// map-only (like the sampling jobs, §V) and mappers write their
	// output directly as part-m files.
	NewReducer func() Reducer
	// NewCombiner optionally creates a map-side combiner.
	NewCombiner func() Reducer
	// NumReducers is the number of reduce tasks (default 1).
	NumReducers int
	// Partitioner routes keys to reducers; defaults to hash
	// partitioning (Hadoop's HashPartitioner).
	Partitioner func(key string, numReducers int) int
	// KeyCompare orders intermediate keys in the spill sort, shuffle
	// merge and reduce grouping (Hadoop's RawComparator). Nil means
	// plain byte order — correct for text keys and for the
	// order-preserving binary key encodings in internal/recordio.
	KeyCompare func(a, b string) int
	// BinaryOutput writes part files in the recordio binary record
	// format instead of "key\tvalue" text lines. Readers sniff the
	// format per file, so binary and text outputs interoperate in
	// pipelines. Typed jobs set this by default.
	BinaryOutput bool
	// Conf carries job configuration strings read by tasks (Hadoop's
	// Configuration), e.g. the sampling window size.
	Conf map[string]string
	// Cache is the distributed cache: read-only named blobs shipped
	// to every task, e.g. the centroid file or the serialized R-tree.
	Cache map[string][]byte
	// MaxAttempts is how many times a failed task is retried on
	// another node before the job fails (default 3).
	MaxAttempts int
	// MaxShuffleBytes bounds the raw key+value bytes a map task
	// buffers in memory before sorting, combining and spilling the
	// buffer to DFS as external run files; the reduce side then
	// streams a k-way merge over the spilled runs instead of holding
	// merged partitions in memory. 0 (the default) keeps the
	// all-in-memory shuffle. Ignored by map-only jobs.
	MaxShuffleBytes int64
	// MemoryTargetBytes, when MaxShuffleBytes is 0, derives the
	// per-task spill budget adaptively: the job-wide memory target is
	// divided by the cluster's concurrent task slots, so a job states
	// how much memory the shuffle may use in total and the engine
	// sizes each task's buffer for the worst case of every slot
	// spilling at once. MaxShuffleBytes, when set, overrides this.
	MemoryTargetBytes int64
	// CompressSpill writes spill run files in the DEFLATE-compressed
	// recordio block format (version 2) instead of plain record
	// files. Only consulted when MaxShuffleBytes is set.
	CompressSpill bool
	// Parent is an optional observability span ID grouping this job
	// into a pipeline trace (set by the k-means, DJ-Cluster and R-tree
	// drivers); it is carried on the job's lifecycle events.
	Parent string
}

// HashPartition is the default partitioner: FNV-1a hash of the key
// modulo the reducer count.
func HashPartition(key string, numReducers int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(numReducers))
}

// TaskContext is passed to every Mapper/Reducer method, carrying task
// identity, job configuration, the distributed cache, and counters.
type TaskContext struct {
	// JobName is the owning job's name.
	JobName string
	// TaskID identifies the task, e.g. "map-0003" or "reduce-0000".
	TaskID string
	// Attempt is the 0-based attempt number of this execution.
	Attempt int
	// Node is the cluster node executing the task.
	Node string

	conf     map[string]string
	cache    map[string][]byte
	counters *Counters
}

// Conf returns the job configuration value for key ("" if unset).
func (c *TaskContext) Conf(key string) string { return c.conf[key] }

// ConfDefault returns the configuration value or def if unset.
func (c *TaskContext) ConfDefault(key, def string) string {
	if v, ok := c.conf[key]; ok {
		return v
	}
	return def
}

// CacheFile returns a named blob from the distributed cache.
func (c *TaskContext) CacheFile(name string) ([]byte, bool) {
	b, ok := c.cache[name]
	return b, ok
}

// Counter returns the named job counter, creating it on first use.
func (c *TaskContext) Counter(group, name string) *Counter {
	return c.counters.Get(group, name)
}

// Counter is a monotonically increasing job-level metric, safe for
// concurrent use. It is a bare atomic so per-record increments on the
// map/reduce hot paths never contend on a lock.
type Counter struct {
	v atomic.Int64
}

// Inc adds delta to the counter.
func (c *Counter) Inc(delta int64) {
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	return c.v.Load()
}

// Counters is a two-level registry of job counters (group → name),
// mirroring Hadoop's counter groups.
type Counters struct {
	mu     sync.Mutex
	groups map[string]map[string]*Counter
}

// NewCounters returns an empty counter registry.
func NewCounters() *Counters {
	return &Counters{groups: make(map[string]map[string]*Counter)}
}

// Get returns the counter for group/name, creating it if needed.
func (cs *Counters) Get(group, name string) *Counter {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	g, ok := cs.groups[group]
	if !ok {
		g = make(map[string]*Counter)
		cs.groups[group] = g
	}
	c, ok := g[name]
	if !ok {
		c = &Counter{}
		g[name] = c
	}
	return c
}

// Value returns the current value of group/name (0 if never touched).
func (cs *Counters) Value(group, name string) int64 {
	cs.mu.Lock()
	g, ok := cs.groups[group]
	if !ok {
		cs.mu.Unlock()
		return 0
	}
	c, ok := g[name]
	cs.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// Snapshot returns all counters as a nested map, for reporting.
func (cs *Counters) Snapshot() map[string]map[string]int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make(map[string]map[string]int64, len(cs.groups))
	for g, names := range cs.groups {
		m := make(map[string]int64, len(names))
		for n, c := range names {
			m[n] = c.Value()
		}
		out[g] = m
	}
	return out
}

// String renders counters sorted by group and name, one per line.
func (cs *Counters) String() string {
	snap := cs.Snapshot()
	groups := make([]string, 0, len(snap))
	for g := range snap {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	var sb []byte
	for _, g := range groups {
		names := make([]string, 0, len(snap[g]))
		for n := range snap[g] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sb = append(sb, fmt.Sprintf("%s.%s=%d\n", g, n, snap[g][n])...)
		}
	}
	return string(sb)
}

// Well-known counter names used by the engine.
const (
	// CounterGroupTask groups record counters.
	CounterGroupTask = "task"
	// CounterGroupScheduler groups locality counters.
	CounterGroupScheduler = "scheduler"
	// CounterGroupShuffle groups shuffle metrics.
	CounterGroupShuffle = "shuffle"
	// CounterGroupEngine groups engine-internal diagnostics.
	CounterGroupEngine = "engine"

	CounterMapInputRecords    = "map_input_records"
	CounterMapOutputRecords   = "map_output_records"
	CounterCombineInput       = "combine_input_records"
	CounterCombineOutput      = "combine_output_records"
	CounterReduceInputGroups  = "reduce_input_groups"
	CounterReduceInputRecords = "reduce_input_records"
	CounterReduceOutput       = "reduce_output_records"

	CounterDataLocal = "data_local_tasks"
	CounterRackLocal = "rack_local_tasks"
	CounterOffRack   = "off_rack_tasks"

	CounterSpeculativeLaunched = "speculative_launched"
	CounterSpeculativeWasted   = "speculative_wasted"

	// CounterHistorySaveErrors counts job-history stores that failed.
	// History is diagnostics — a full store must not fail the job — but
	// the failure has to stay visible somewhere.
	CounterHistorySaveErrors = "history_save_errors"

	CounterShuffleBytes = "shuffle_bytes"
	// CounterShuffleRunsMerged counts the pre-sorted map-output runs
	// fed into the shuffle's per-partition k-way merges.
	CounterShuffleRunsMerged = "shuffle_runs_merged"
	// CounterShuffleSpilledRecords counts the records sorted into runs
	// by map tasks at commit time (Hadoop's "Spilled Records").
	CounterShuffleSpilledRecords = "shuffle_spilled_records"
	// CounterShuffleSpillFiles counts the external run files written to
	// DFS by map tasks whose buffer tripped Job.MaxShuffleBytes.
	CounterShuffleSpillFiles = "shuffle_spill_files"
	// CounterShuffleSpillBytes counts the on-DFS bytes of those run
	// files (post-compression when Job.CompressSpill is set).
	CounterShuffleSpillBytes = "shuffle_spill_bytes"
	// CounterShuffleSpillCleanupErrors counts spill-directory deletions
	// that failed at job end; cleanup is best-effort but must be
	// visible.
	CounterShuffleSpillCleanupErrors = "shuffle_spill_cleanup_errors"

	// CounterGroupDFS groups the file-system I/O attributed to the job
	// (the delta of the DFS's global I/O stats across the run; with
	// concurrent jobs on one file system the attribution is shared).
	CounterGroupDFS        = "dfs"
	CounterDFSBytesRead    = "dfs_bytes_read"
	CounterDFSBytesWritten = "dfs_bytes_written"
	CounterDFSChunksRead   = "chunks_read"
)

// TaskReport describes one completed task for diagnostics and tests.
type TaskReport struct {
	// ID is the task identifier ("map-0007", "reduce-0000").
	ID string
	// Node is where the successful attempt ran.
	Node string
	// Attempts is the number of attempts used (1 = first try).
	Attempts int
	// Locality is "data-local", "rack-local" or "off-rack" for map
	// tasks; "" for reduce tasks.
	Locality string
	// Records is the number of input records processed.
	Records int64
	// Duration is the wall time of the successful attempt.
	Duration time.Duration
	// StartOffset is when the winning attempt started executing,
	// relative to job submission (timeline positioning).
	StartOffset time.Duration
	// FailedAttempts counts the attempts that failed before (or, with
	// speculation, alongside) the winning one.
	FailedAttempts int
}

// Result summarises one job execution.
type Result struct {
	// Job is the job name.
	Job string
	// OutputFiles lists the DFS part files written.
	OutputFiles []string
	// Counters holds all job counters.
	Counters *Counters
	// MapTasks and ReduceTasks are the task counts.
	MapTasks, ReduceTasks int
	// MapWall, ShuffleWall and ReduceWall are per-phase wall times.
	MapWall, ShuffleWall, ReduceWall time.Duration
	// Wall is the total job wall time.
	Wall time.Duration
	// Start is the job submission time.
	Start time.Time
	// Tasks are per-task reports, map tasks first.
	Tasks []TaskReport
	// Attempts are all task attempts — winning, failed and
	// speculatively killed — for history records and timelines.
	Attempts []obs.AttemptRecord
}

// Report is the JSON-friendly form of a Result, mirroring Hadoop's job
// history records.
type Report struct {
	Job         string                      `json:"job"`
	MapTasks    int                         `json:"map_tasks"`
	ReduceTasks int                         `json:"reduce_tasks"`
	StartUnixMs int64                       `json:"start_unix_ms"`
	WallMillis  int64                       `json:"wall_ms"`
	PhaseMillis map[string]int64            `json:"phase_ms"`
	Counters    map[string]map[string]int64 `json:"counters"`
	OutputFiles []string                    `json:"output_files"`
	Tasks       []TaskReport                `json:"tasks,omitempty"`
	Attempts    []obs.AttemptRecord         `json:"attempts,omitempty"`
}

// Report converts the result for serialization (encoding/json).
// Reduce tasks have no locality preference, so their Locality renders
// as "n/a" rather than an ambiguous empty string.
func (r *Result) Report() Report {
	tasks := append([]TaskReport(nil), r.Tasks...)
	for i := range tasks {
		if tasks[i].Locality == "" {
			tasks[i].Locality = "n/a"
		}
	}
	return Report{
		Job:         r.Job,
		MapTasks:    r.MapTasks,
		ReduceTasks: r.ReduceTasks,
		StartUnixMs: r.Start.UnixMilli(),
		WallMillis:  r.Wall.Milliseconds(),
		PhaseMillis: map[string]int64{
			"map":     r.MapWall.Milliseconds(),
			"shuffle": r.ShuffleWall.Milliseconds(),
			"reduce":  r.ReduceWall.Milliseconds(),
		},
		Counters:    r.Counters.Snapshot(),
		OutputFiles: r.OutputFiles,
		Tasks:       tasks,
		Attempts:    r.Attempts,
	}
}

// HistoryRecord converts the result into the form the job-history
// store persists (obs.JobRecord carries no sequence number yet; the
// store assigns one on Save).
func (r *Result) HistoryRecord() obs.JobRecord {
	nodeSet := make(map[string]bool)
	for _, a := range r.Attempts {
		nodeSet[a.Node] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return obs.JobRecord{
		Job:         r.Job,
		StartUnixMs: r.Start.UnixMilli(),
		WallMs:      r.Wall.Milliseconds(),
		MapTasks:    r.MapTasks,
		ReduceTasks: r.ReduceTasks,
		PhaseMs: map[string]int64{
			"map":     r.MapWall.Milliseconds(),
			"shuffle": r.ShuffleWall.Milliseconds(),
			"reduce":  r.ReduceWall.Milliseconds(),
		},
		Counters: r.Counters.Snapshot(),
		Attempts: append([]obs.AttemptRecord(nil), r.Attempts...),
		Nodes:    nodes,
	}
}
