package mapreduce

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/recordio"
)

// Options configures the engine.
type Options struct {
	// TaskOverhead is a simulated per-task startup cost (scheduling,
	// JVM spawn in real Hadoop). Zero disables it. Only the in-process
	// executor applies it; remote workers have real startup costs.
	TaskOverhead time.Duration
	// FailureHook, if set, is consulted before each task attempt; a
	// non-nil return fails the attempt, exercising the jobtracker's
	// retry-on-another-node path. Used by tests for fault injection.
	// In-process executor only.
	FailureHook func(taskID string, attempt int, node string) error
	// SpeculativeSlack enables speculative execution: when slots are
	// idle and a task attempt has been running longer than this, a
	// backup attempt is launched on another node and the first to
	// finish wins (Hadoop's straggler mitigation). Zero disables it.
	SpeculativeSlack time.Duration
	// NodeDelay, if set, returns an artificial execution delay for
	// tasks on the given node, modelling heterogeneous or straggling
	// nodes (used by tests to exercise speculation).
	NodeDelay func(node string) time.Duration
	// Executor, if set, runs task attempts — the RPC backend plugs its
	// remote executor in here. Nil selects the in-process executor,
	// which runs tasks as goroutines on the scheduler's slot workers.
	Executor Executor
	// Obs receives structured lifecycle events (job, phase and task-
	// attempt spans). A nil bus — or a bus with no sinks — costs one
	// nil/empty check per emission site, so jobs run at full speed
	// when nothing is observing.
	Obs *obs.Bus
	// History, if set, persists every successful job's record (report
	// plus per-attempt timeline) — the job-history server role.
	History *obs.History
}

// Engine is the jobtracker's driver side: it turns DFS chunks into map
// tasks, schedules them on tasktracker slots with locality preference
// (scheduler.go), hands each attempt to an Executor (executor.go),
// plans the shuffle, and commits outputs.
type Engine struct {
	cluster *cluster.Cluster
	fs      *dfs.FileSystem
	opts    Options
}

// NewEngine creates an engine over the cluster and file system.
func NewEngine(c *cluster.Cluster, fs *dfs.FileSystem, opts Options) *Engine {
	return &Engine{cluster: c, fs: fs, opts: opts}
}

// FS returns the engine's file system (for writing inputs and reading
// job outputs).
func (e *Engine) FS() *dfs.FileSystem { return e.fs }

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Obs returns the engine's event bus (possibly nil), so algorithm
// drivers can emit pipeline spans onto the same trace.
func (e *Engine) Obs() *obs.Bus { return e.opts.Obs }

// History returns the engine's job-history store (possibly nil).
func (e *Engine) History() *obs.History { return e.opts.History }

// attemptLog collects per-attempt records during scheduling.
type attemptLog struct {
	mu   sync.Mutex
	t0   time.Time
	recs []obs.AttemptRecord
}

func (l *attemptLog) add(rec obs.AttemptRecord) {
	l.mu.Lock()
	l.recs = append(l.recs, rec)
	l.mu.Unlock()
}

// snapshot copies the records under the lock: abandoned speculative
// losers may still append after the job has returned.
func (l *attemptLog) snapshot() []obs.AttemptRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]obs.AttemptRecord(nil), l.recs...)
}

// mapOutput is one map task's partitioned intermediate output: per
// partition either an in-memory sorted run, or — when the task spilled
// under Job.MaxShuffleBytes, or ran on an external executor — a list
// of file-backed sorted runs.
type mapOutput struct {
	parts    [][]KV       // indexed by reducer partition; nil entries when spilled
	fileRuns [][]spillRun // per-partition spill runs, nil unless the task spilled
}

// remoteMapOutput converts a remote map task's run descriptors into
// the engine's shuffle-planning form. Every partition of a remote task
// is file-backed (or empty).
func remoteMapOutput(runs [][]RunDesc, numReducers int) *mapOutput {
	out := &mapOutput{parts: make([][]KV, numReducers)}
	var fr [][]spillRun
	for p, rds := range runs {
		if len(rds) == 0 {
			continue
		}
		if fr == nil {
			fr = make([][]spillRun, numReducers)
		}
		for _, rd := range rds {
			fr[p] = append(fr[p], spillRun{path: rd.Path, records: rd.Records, bytes: rd.Bytes})
		}
	}
	out.fileRuns = fr
	return out
}

// shuffleBudgetFor resolves a job's per-task spill budget: the manual
// MaxShuffleBytes knob wins; otherwise MemoryTargetBytes is divided by
// the cluster's concurrent task slots (the worst case of every slot's
// map task buffering at once); otherwise 0, the all-in-memory shuffle.
func (e *Engine) shuffleBudgetFor(job *Job) int64 {
	if job.MaxShuffleBytes > 0 {
		return job.MaxShuffleBytes
	}
	if job.MemoryTargetBytes <= 0 {
		return 0
	}
	slots := e.cluster.TotalSlots()
	if slots < 1 {
		slots = 1
	}
	budget := job.MemoryTargetBytes / int64(slots)
	if budget < 1 {
		budget = 1
	}
	return budget
}

// Run executes one job to completion and returns its result.
func (e *Engine) Run(job *Job) (*Result, error) {
	start := time.Now()
	if err := validate(job); err != nil {
		return nil, err
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = 1
	}
	partition := job.Partitioner
	if partition == nil {
		partition = HashPartition
	}
	maxAttempts := job.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	if existing := e.fs.List(job.OutputPath); len(existing) > 0 {
		return nil, fmt.Errorf("mapreduce: output path %q already exists", job.OutputPath)
	}
	budget := e.shuffleBudgetFor(job)
	mapOnly := job.NewReducer == nil

	// Select the executor. The external path additionally requires the
	// job to wire — a missing kind registration should fail the job at
	// submission, not every task attempt on the workers.
	exec := e.opts.Executor
	external := exec != nil && exec.External()
	if external {
		if _, err := job.Wire(budget); err != nil {
			return nil, err
		}
	}

	splits, err := splitsFor(e.fs, job.InputPaths)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %v", job.Name, err)
	}

	res := &Result{
		Job:      job.Name,
		Counters: NewCounters(),
		MapTasks: len(splits),
		Start:    start,
	}
	var lx *localExecutor
	if exec == nil {
		lx = &localExecutor{
			e: e, job: job, mapOnly: mapOnly, numReducers: numReducers,
			partition: partition, budget: budget, counters: res.Counters,
		}
		exec = lx
	}

	bus := e.opts.Obs
	alog := &attemptLog{t0: start}
	io0 := e.fs.IOStats()
	bus.Emit(obs.Event{
		Type: obs.JobSubmitted, Job: job.Name, Parent: job.Parent, Time: start,
		Detail: fmt.Sprintf("maps=%d reducers=%d", len(splits), numReducers),
	})
	// cleanupSpills removes the job's external-shuffle run files and —
	// on an external executor — the uncommitted task temp outputs at
	// job end. Cleanup is best-effort — a stuck delete must not change
	// the job's outcome — but failures are counted, never dropped.
	// Background speculative reduce losers may still be streaming a
	// spill file here; their read error is discarded with the rest of
	// the losing attempt.
	cleanupSpills := func() {
		if external {
			if derr := e.fs.DeleteDir(tmpDir(job.Name)); derr != nil {
				res.Counters.Get(CounterGroupShuffle, CounterShuffleSpillCleanupErrors).Inc(1)
			}
		}
		if (budget <= 0 && !external) || mapOnly {
			return
		}
		if derr := e.fs.DeleteDir(spillDir(job)); derr != nil {
			res.Counters.Get(CounterGroupShuffle, CounterShuffleSpillCleanupErrors).Inc(1)
		}
	}
	// fail reports the job's failure on the bus before returning it.
	// Any part files already committed are removed first — the output-
	// exists check at submission guarantees everything under OutputPath
	// was written by this job, and leaving partial output behind would
	// make a rerun of the same job fail on that very check.
	fail := func(err error) (*Result, error) {
		cleanupSpills()
		if derr := e.fs.DeleteDir(job.OutputPath); derr != nil {
			// A rerun would now trip the output-exists check; make the
			// stuck cleanup part of the reported failure.
			err = fmt.Errorf("%v (cleaning partial output: %v)", err, derr)
		}
		bus.Emit(obs.Event{
			Type: obs.JobFinished, Job: job.Name, Parent: job.Parent,
			Dur: time.Since(start), Err: err.Error(),
		})
		return nil, err
	}
	// complete finalises a successful result: attempt records, the
	// job's share of DFS I/O, the finish event, and the history record.
	complete := func() *Result {
		cleanupSpills()
		res.Wall = time.Since(start)
		io1 := e.fs.IOStats()
		res.Counters.Get(CounterGroupDFS, CounterDFSBytesRead).Inc(io1.BytesRead - io0.BytesRead)
		res.Counters.Get(CounterGroupDFS, CounterDFSBytesWritten).Inc(io1.BytesWritten - io0.BytesWritten)
		res.Counters.Get(CounterGroupDFS, CounterDFSChunksRead).Inc(io1.ChunksRead - io0.ChunksRead)
		res.Attempts = alog.snapshot()
		bus.Emit(obs.Event{
			Type: obs.JobFinished, Job: job.Name, Parent: job.Parent, Dur: res.Wall,
		})
		if e.opts.History != nil {
			// History is diagnostics: a full store must not fail the
			// job, but a failed store must not vanish either.
			if _, herr := e.opts.History.Save(res.HistoryRecord()); herr != nil {
				res.Counters.Get(CounterGroupEngine, CounterHistorySaveErrors).Inc(1)
			}
		}
		return res
	}

	// ---- Map phase ----
	mapStart := time.Now()
	bus.Emit(obs.Event{Type: obs.PhaseStart, Job: job.Name, Phase: "map", Time: mapStart})
	outputs := make([]*mapOutput, len(splits))
	mapTemps := make([]string, len(splits)) // external map-only temp files
	reports := make([]TaskReport, len(splits))
	mapSpecs := make([]TaskSpec, len(splits))
	for i, sp := range splits {
		mapSpecs[i] = TaskSpec{
			Job: job, Phase: "map", TaskID: fmt.Sprintf("map-%04d", i), Index: i,
			MapOnly: mapOnly, NumReducers: numReducers, ShuffleBudget: budget,
			Split: sp,
		}
	}
	// Only the winning attempt's result is committed — counters, stats
	// and output alike (speculative losers are discarded).
	err = e.schedule(job, "map", alog, mapSpecs, maxAttempts, res.Counters, exec, func(i int, tr TaskResult) {
		st := tr.Stats
		res.Counters.Get(CounterGroupTask, CounterMapInputRecords).Inc(st.MapInputRecords)
		res.Counters.Get(CounterGroupTask, CounterMapOutputRecords).Inc(st.MapOutputRecords)
		if job.NewCombiner != nil && !mapOnly {
			res.Counters.Get(CounterGroupTask, CounterCombineInput).Inc(st.CombineInputRecords)
			res.Counters.Get(CounterGroupTask, CounterCombineOutput).Inc(st.CombineOutputRecords)
		}
		if !mapOnly {
			res.Counters.Get(CounterGroupShuffle, CounterShuffleSpilledRecords).Inc(st.SpilledRecords)
			if st.SpillFiles > 0 {
				res.Counters.Get(CounterGroupShuffle, CounterShuffleSpillFiles).Inc(st.SpillFiles)
				res.Counters.Get(CounterGroupShuffle, CounterShuffleSpillBytes).Inc(st.SpillBytes)
			}
		}
		mergeUserCounters(res.Counters, tr.UserCounters)
		switch {
		case external && mapOnly:
			mapTemps[i] = tr.OutFile
		case external:
			outputs[i] = remoteMapOutput(tr.MapRuns, numReducers)
		default:
			outputs[i] = tr.localMap
		}
		reports[i].Records = tr.Records
	}, reports)
	if err != nil {
		// Close the phase even on failure: an unpaired PhaseStart reads
		// as a still-running phase to the tracker and timeline.
		bus.Emit(obs.Event{
			Type: obs.PhaseEnd, Job: job.Name, Phase: "map",
			Dur: time.Since(mapStart), Err: err.Error(),
		})
		return fail(fmt.Errorf("mapreduce: job %s: %v", job.Name, err))
	}
	res.MapWall = time.Since(mapStart)
	bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: job.Name, Phase: "map", Dur: res.MapWall})

	if mapOnly {
		// Each map task's output becomes a part-m file: written from
		// memory in-process, renamed from the winner's temp file on an
		// external executor.
		for i := range splits {
			name := fmt.Sprintf("%s/part-m-%05d", job.OutputPath, i)
			if external {
				if err := e.fs.Rename(mapTemps[i], name); err != nil {
					return fail(err)
				}
			} else {
				if err := e.writePartFile(name, outputs[i].parts[0], job.BinaryOutput); err != nil {
					return fail(err)
				}
			}
			res.OutputFiles = append(res.OutputFiles, name)
		}
		res.Tasks = reports
		return complete(), nil
	}

	// ---- Shuffle: the only communication step (§III). ----
	// Sort-based: every map task committed pre-sorted runs per reduce
	// partition, so the shuffle is a k-way merge per partition, run in
	// parallel across partitions bounded by the cluster's task slots.
	shuffleStart := time.Now()
	res.ReduceTasks = numReducers
	// Collect every map task's runs per partition, in (map task, spill
	// sequence) order — the order the merges' tie-break relies on for
	// stability. Map outputs are released as the shuffle takes
	// ownership, so outputs and merged partitions are never both
	// retained (peak shuffle memory used to be ~2× intermediate data).
	sources := make([][]shuffleSource, numReducers)
	external2 := make([]bool, numReducers)
	var totalRuns int64
	for i, out := range outputs {
		for p := 0; p < numReducers; p++ {
			if len(out.parts[p]) > 0 {
				sources[p] = append(sources[p], shuffleSource{mem: out.parts[p]})
				totalRuns++
			}
			if out.fileRuns != nil {
				for _, fr := range out.fileRuns[p] {
					sources[p] = append(sources[p], shuffleSource{file: fr})
					external2[p] = true
					totalRuns++
				}
			}
		}
		outputs[i] = nil
	}
	bus.Emit(obs.Event{
		Type: obs.PhaseStart, Job: job.Name, Phase: "shuffle", Time: shuffleStart,
		Detail: fmt.Sprintf("partitions=%d runs=%d", numReducers, totalRuns),
	})
	// Partitions whose runs all sit in memory are merged eagerly as
	// before, bounded by the cluster's task slots; partitions with any
	// file-backed run defer their merge to the reduce attempts, which
	// stream it (extPartition.iter) instead of materialising it. On an
	// external executor every non-empty partition is file-backed.
	reduceInputs := make([][]KV, numReducers)
	extParts := make([]*extPartition, numReducers)
	runCounts := make([]int64, numReducers)
	recCounts := make([]int64, numReducers)
	partBytes := make([]int64, numReducers)
	partDur := make([]time.Duration, numReducers)
	slots := e.cluster.TotalSlots()
	if slots < 1 {
		slots = 1
	}
	sem := make(chan struct{}, slots)
	var mergeWG sync.WaitGroup
	for p := 0; p < numReducers; p++ {
		runCounts[p] = int64(len(sources[p]))
		if external2[p] {
			ext := &extPartition{sources: sources[p]}
			for _, s := range sources[p] {
				if s.file.path != "" {
					ext.records += s.file.records
					ext.bytes += s.file.bytes
					continue
				}
				ext.records += int64(len(s.mem))
				for _, kv := range s.mem {
					ext.bytes += int64(len(kv.Key) + len(kv.Value))
				}
			}
			extParts[p] = ext
			recCounts[p] = ext.records
			partBytes[p] = ext.bytes
			continue
		}
		mergeWG.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer mergeWG.Done()
			defer func() { <-sem }()
			mergeStart := time.Now()
			runs := make([][]KV, len(sources[p]))
			for i, s := range sources[p] {
				runs[i] = s.mem
			}
			merged := mergeRuns(runs, job.KeyCompare)
			var b int64
			for _, kv := range merged {
				b += int64(len(kv.Key) + len(kv.Value))
			}
			reduceInputs[p] = merged
			recCounts[p] = int64(len(merged))
			partBytes[p] = b
			partDur[p] = time.Since(mergeStart)
			// Release the run slices: merged now holds (or, for a lone
			// run, aliases) the partition's data.
			sources[p] = nil
		}(p)
	}
	mergeWG.Wait()
	var shuffleBytes int64
	for _, b := range partBytes {
		shuffleBytes += b
	}
	res.Counters.Get(CounterGroupShuffle, CounterShuffleBytes).Inc(shuffleBytes)
	res.Counters.Get(CounterGroupShuffle, CounterShuffleRunsMerged).Inc(totalRuns)
	res.ShuffleWall = time.Since(shuffleStart)
	var parts []obs.PartStat
	if bus.Active() {
		parts = make([]obs.PartStat, numReducers)
		for p := 0; p < numReducers; p++ {
			parts[p] = obs.PartStat{
				Part:    p,
				Runs:    runCounts[p],
				Records: recCounts[p],
				Bytes:   partBytes[p],
				DurUs:   partDur[p].Microseconds(),
			}
		}
	}
	bus.Emit(obs.Event{
		Type: obs.PhaseEnd, Job: job.Name, Phase: "shuffle", Dur: res.ShuffleWall,
		Value: shuffleBytes, Detail: shuffleDetail(runCounts, recCounts, partBytes),
		Parts: parts,
	})

	// ---- Reduce phase ----
	reduceStart := time.Now()
	bus.Emit(obs.Event{Type: obs.PhaseStart, Job: job.Name, Phase: "reduce", Time: reduceStart})
	reduceReports := make([]TaskReport, numReducers)
	reduceSpecs := make([]TaskSpec, numReducers) // no locality: reducers read from all mappers
	for r := 0; r < numReducers; r++ {
		reduceSpecs[r] = TaskSpec{
			Job: job, Phase: "reduce", TaskID: fmt.Sprintf("reduce-%04d", r), Index: r,
			NumReducers: numReducers, ShuffleBudget: budget, Partition: r,
		}
		if external {
			if ext := extParts[r]; ext != nil {
				runs := make([]RunDesc, 0, len(ext.sources))
				for _, s := range ext.sources {
					runs = append(runs, RunDesc{Path: s.file.path, Records: s.file.records, Bytes: s.file.bytes})
				}
				reduceSpecs[r].Runs = runs
			}
		}
	}
	if lx != nil {
		// Hand the in-process executor the shuffle's product: eagerly
		// merged partitions and deferred file-backed ones.
		lx.reduceInputs, lx.extParts = reduceInputs, extParts
	}
	partFiles := make([][]KV, numReducers)
	reduceTemps := make([]string, numReducers)
	err = e.schedule(job, "reduce", alog, reduceSpecs, maxAttempts, res.Counters, exec, func(r int, tr TaskResult) {
		st := tr.Stats
		res.Counters.Get(CounterGroupTask, CounterReduceInputRecords).Inc(st.ReduceInputRecords)
		res.Counters.Get(CounterGroupTask, CounterReduceOutput).Inc(st.ReduceOutputRecords)
		res.Counters.Get(CounterGroupTask, CounterReduceInputGroups).Inc(st.ReduceInputGroups)
		mergeUserCounters(res.Counters, tr.UserCounters)
		partFiles[r] = tr.localReduce
		reduceTemps[r] = tr.OutFile
		reduceReports[r].Records = tr.Records
	}, reduceReports)
	if err != nil {
		bus.Emit(obs.Event{
			Type: obs.PhaseEnd, Job: job.Name, Phase: "reduce",
			Dur: time.Since(reduceStart), Err: err.Error(),
		})
		return fail(fmt.Errorf("mapreduce: job %s: %v", job.Name, err))
	}
	res.ReduceWall = time.Since(reduceStart)
	bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: job.Name, Phase: "reduce", Dur: res.ReduceWall})

	for r := 0; r < numReducers; r++ {
		name := fmt.Sprintf("%s/part-r-%05d", job.OutputPath, r)
		if external {
			if err := e.fs.Rename(reduceTemps[r], name); err != nil {
				return fail(err)
			}
		} else {
			if err := e.writePartFile(name, partFiles[r], job.BinaryOutput); err != nil {
				return fail(err)
			}
		}
		res.OutputFiles = append(res.OutputFiles, name)
	}
	res.Tasks = append(reports, reduceReports...)
	return complete(), nil
}

// runReduce feeds each distinct-key group of a sorted record stream to
// the reducer (used for both real reducers and combiners). The input
// iterator must yield records in non-decreasing key order; grouping is
// streaming, so the whole input is never copied or re-sorted. If
// groupCount is non-nil it receives the number of distinct keys.
// Counters are the caller's responsibility (only winning attempts
// commit them).
func runReduce(ctx *TaskContext, red Reducer, it kvIter, groupCount *int64, cmp func(a, b string) int) ([]KV, error) {
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	if err := red.Setup(ctx); err != nil {
		return nil, fmt.Errorf("setup: %v", err)
	}
	g := newGroupIter(it, cmp)
	var groups int64
	for {
		key, values, ok := g.next()
		if !ok {
			break
		}
		if err := red.Reduce(ctx, key, values, emit); err != nil {
			return nil, err
		}
		groups++
	}
	if err := red.Cleanup(ctx, emit); err != nil {
		return nil, fmt.Errorf("cleanup: %v", err)
	}
	if groupCount != nil {
		*groupCount = groups
	}
	return out, nil
}

// shuffleDetail renders the per-partition merge summary carried on the
// shuffle PhaseEnd event: runs merged, records and bytes per reduce
// partition, capped so huge reducer counts stay readable.
func shuffleDetail(runs, records, bytes []int64) string {
	const maxParts = 16
	var sb strings.Builder
	for p := range records {
		if p == maxParts {
			fmt.Fprintf(&sb, " …(+%d partitions)", len(records)-maxParts)
			break
		}
		if p > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "p%d:runs=%d,records=%d,bytes=%d", p, runs[p], records[p], bytes[p])
	}
	return sb.String()
}

// encodePartFile renders records in the part-file format — recordio
// binary records, or "key\tvalue" text lines. It is shared by the
// driver's commit path and the out-of-process workers, which is what
// makes remote part files byte-identical to in-process ones.
func encodePartFile(kvs []KV, binary bool) []byte {
	if binary {
		w := recordio.NewWriter()
		for _, kv := range kvs {
			w.Add(kv.Key, kv.Value)
		}
		return w.Bytes()
	}
	var sb strings.Builder
	for _, kv := range kvs {
		sb.WriteString(kv.Key)
		sb.WriteByte('\t')
		sb.WriteString(kv.Value)
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// writePartFile stores records in DFS as one part file.
func (e *Engine) writePartFile(path string, kvs []KV, binary bool) error {
	return e.fs.Create(path, encodePartFile(kvs, binary), "")
}

// ReadOutput reads back all part files of a completed job's output
// directory as KV records, in part-file order. Each file's format —
// binary record file or text lines — is sniffed from its header, so
// mixed outputs read uniformly.
func (e *Engine) ReadOutput(outputPath string) ([]KV, error) {
	files := e.fs.List(outputPath)
	if len(files) == 0 {
		return nil, fmt.Errorf("mapreduce: no output files under %q", outputPath)
	}
	var out []KV
	for _, f := range files {
		data, err := e.fs.ReadAll(f)
		if err != nil {
			return nil, err
		}
		if recordio.IsRecordData(data) {
			err := recordio.ScanAll(data, func(k, v string) error {
				out = append(out, KV{Key: k, Value: v})
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			k, v, _ := strings.Cut(line, "\t")
			out = append(out, KV{k, v})
		}
	}
	return out, nil
}

// RunPipeline runs jobs in sequence, failing fast; the caller wires
// each job's OutputPath into the next job's InputPaths (as DJ-Cluster's
// preprocessing does: "the output of the first job constitutes the
// input of the second one").
func (e *Engine) RunPipeline(jobs ...*Job) ([]*Result, error) {
	results := make([]*Result, 0, len(jobs))
	for _, j := range jobs {
		r, err := e.Run(j)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

func validate(job *Job) error {
	if job.Name == "" {
		return fmt.Errorf("mapreduce: job needs a name")
	}
	if job.NewMapper == nil {
		return fmt.Errorf("mapreduce: job %s: NewMapper is required", job.Name)
	}
	if len(job.InputPaths) == 0 {
		return fmt.Errorf("mapreduce: job %s: no input paths", job.Name)
	}
	if job.OutputPath == "" {
		return fmt.Errorf("mapreduce: job %s: no output path", job.Name)
	}
	if job.NewCombiner != nil && job.NewReducer == nil {
		return fmt.Errorf("mapreduce: job %s: combiner without reducer", job.Name)
	}
	return nil
}
