package mapreduce

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/recordio"
)

// Options configures the engine.
type Options struct {
	// TaskOverhead is a simulated per-task startup cost (scheduling,
	// JVM spawn in real Hadoop). Zero disables it.
	TaskOverhead time.Duration
	// FailureHook, if set, is consulted before each task attempt; a
	// non-nil return fails the attempt, exercising the jobtracker's
	// retry-on-another-node path. Used by tests for fault injection.
	FailureHook func(taskID string, attempt int, node string) error
	// SpeculativeSlack enables speculative execution: when slots are
	// idle and a task attempt has been running longer than this, a
	// backup attempt is launched on another node and the first to
	// finish wins (Hadoop's straggler mitigation). Zero disables it.
	SpeculativeSlack time.Duration
	// NodeDelay, if set, returns an artificial execution delay for
	// tasks on the given node, modelling heterogeneous or straggling
	// nodes (used by tests to exercise speculation).
	NodeDelay func(node string) time.Duration
	// Obs receives structured lifecycle events (job, phase and task-
	// attempt spans). A nil bus — or a bus with no sinks — costs one
	// nil/empty check per emission site, so jobs run at full speed
	// when nothing is observing.
	Obs *obs.Bus
	// History, if set, persists every successful job's record (report
	// plus per-attempt timeline) — the job-history server role.
	History *obs.History
}

// Engine is the jobtracker: it turns DFS chunks into map tasks,
// schedules them on tasktracker slots with locality preference, runs
// the shuffle, and drives the reducers.
type Engine struct {
	cluster *cluster.Cluster
	fs      *dfs.FileSystem
	opts    Options
}

// NewEngine creates an engine over the cluster and file system.
func NewEngine(c *cluster.Cluster, fs *dfs.FileSystem, opts Options) *Engine {
	return &Engine{cluster: c, fs: fs, opts: opts}
}

// FS returns the engine's file system (for writing inputs and reading
// job outputs).
func (e *Engine) FS() *dfs.FileSystem { return e.fs }

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Obs returns the engine's event bus (possibly nil), so algorithm
// drivers can emit pipeline spans onto the same trace.
func (e *Engine) Obs() *obs.Bus { return e.opts.Obs }

// History returns the engine's job-history store (possibly nil).
func (e *Engine) History() *obs.History { return e.opts.History }

// attemptLog collects per-attempt records during scheduling.
type attemptLog struct {
	mu   sync.Mutex
	t0   time.Time
	recs []obs.AttemptRecord
}

func (l *attemptLog) add(rec obs.AttemptRecord) {
	l.mu.Lock()
	l.recs = append(l.recs, rec)
	l.mu.Unlock()
}

// snapshot copies the records under the lock: abandoned speculative
// losers may still append after the job has returned.
func (l *attemptLog) snapshot() []obs.AttemptRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]obs.AttemptRecord(nil), l.recs...)
}

// mapOutput is one map task's partitioned intermediate output: per
// partition either an in-memory sorted run, or — when the task spilled
// under Job.MaxShuffleBytes — a list of file-backed sorted runs.
type mapOutput struct {
	parts    [][]KV       // indexed by reducer partition; nil entries when spilled
	fileRuns [][]spillRun // per-partition spill runs, nil unless the task spilled
}

// Run executes one job to completion and returns its result.
func (e *Engine) Run(job *Job) (*Result, error) {
	start := time.Now()
	if err := validate(job); err != nil {
		return nil, err
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = 1
	}
	partition := job.Partitioner
	if partition == nil {
		partition = HashPartition
	}
	maxAttempts := job.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	if existing := e.fs.List(job.OutputPath); len(existing) > 0 {
		return nil, fmt.Errorf("mapreduce: output path %q already exists", job.OutputPath)
	}

	splits, err := splitsFor(e.fs, job.InputPaths)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %v", job.Name, err)
	}

	res := &Result{
		Job:      job.Name,
		Counters: NewCounters(),
		MapTasks: len(splits),
		Start:    start,
	}
	mapOnly := job.NewReducer == nil

	bus := e.opts.Obs
	alog := &attemptLog{t0: start}
	io0 := e.fs.IOStats()
	bus.Emit(obs.Event{
		Type: obs.JobSubmitted, Job: job.Name, Parent: job.Parent, Time: start,
		Detail: fmt.Sprintf("maps=%d reducers=%d", len(splits), numReducers),
	})
	// cleanupSpills removes the job's external-shuffle run files at job
	// end. Cleanup is best-effort — a stuck delete must not change the
	// job's outcome — but failures are counted, never dropped.
	// Background speculative reduce losers may still be streaming a
	// spill file here; their read error is discarded with the rest of
	// the losing attempt.
	cleanupSpills := func() {
		if job.MaxShuffleBytes <= 0 || mapOnly {
			return
		}
		if derr := e.fs.DeleteDir(spillDir(job)); derr != nil {
			res.Counters.Get(CounterGroupShuffle, CounterShuffleSpillCleanupErrors).Inc(1)
		}
	}
	// fail reports the job's failure on the bus before returning it.
	// Any part files already committed are removed first — the output-
	// exists check at submission guarantees everything under OutputPath
	// was written by this job, and leaving partial output behind would
	// make a rerun of the same job fail on that very check.
	fail := func(err error) (*Result, error) {
		cleanupSpills()
		if derr := e.fs.DeleteDir(job.OutputPath); derr != nil {
			// A rerun would now trip the output-exists check; make the
			// stuck cleanup part of the reported failure.
			err = fmt.Errorf("%v (cleaning partial output: %v)", err, derr)
		}
		bus.Emit(obs.Event{
			Type: obs.JobFinished, Job: job.Name, Parent: job.Parent,
			Dur: time.Since(start), Err: err.Error(),
		})
		return nil, err
	}
	// complete finalises a successful result: attempt records, the
	// job's share of DFS I/O, the finish event, and the history record.
	complete := func() *Result {
		cleanupSpills()
		res.Wall = time.Since(start)
		io1 := e.fs.IOStats()
		res.Counters.Get(CounterGroupDFS, CounterDFSBytesRead).Inc(io1.BytesRead - io0.BytesRead)
		res.Counters.Get(CounterGroupDFS, CounterDFSBytesWritten).Inc(io1.BytesWritten - io0.BytesWritten)
		res.Counters.Get(CounterGroupDFS, CounterDFSChunksRead).Inc(io1.ChunksRead - io0.ChunksRead)
		res.Attempts = alog.snapshot()
		bus.Emit(obs.Event{
			Type: obs.JobFinished, Job: job.Name, Parent: job.Parent, Dur: res.Wall,
		})
		if e.opts.History != nil {
			// History is diagnostics: a full store must not fail the
			// job, but a failed store must not vanish either.
			if _, herr := e.opts.History.Save(res.HistoryRecord()); herr != nil {
				res.Counters.Get(CounterGroupEngine, CounterHistorySaveErrors).Inc(1)
			}
		}
		return res
	}

	// ---- Map phase ----
	mapStart := time.Now()
	bus.Emit(obs.Event{Type: obs.PhaseStart, Job: job.Name, Phase: "map", Time: mapStart})
	outputs := make([]*mapOutput, len(splits))
	reports := make([]TaskReport, len(splits))
	err = e.schedule(job, "map", alog, splits, maxAttempts, res.Counters, func(i int, node string, attempt int) (func(), error) {
		taskID := fmt.Sprintf("map-%04d", i)
		if e.opts.FailureHook != nil {
			if ferr := e.opts.FailureHook(taskID, attempt, node); ferr != nil {
				return nil, ferr
			}
		}
		if e.opts.TaskOverhead > 0 {
			time.Sleep(e.opts.TaskOverhead)
		}
		ctx := &TaskContext{
			JobName: job.Name, TaskID: taskID, Attempt: attempt, Node: node,
			conf: job.Conf, cache: job.Cache, counters: res.Counters,
		}
		// The spiller owns the partitioned output buffer: with
		// MaxShuffleBytes unset it reduces to the legacy commit-time
		// sort+combine (Hadoop's map-side spill sort — the shuffle then
		// only merges pre-sorted runs and the reducers never re-sort);
		// with a budget it additionally writes sorted+combined run
		// files to DFS whenever the buffer trips the budget.
		sp := newMapSpiller(e, job, ctx, taskID, attempt, node, mapOnly, numReducers, partition)
		m := job.NewMapper()
		if err := m.Setup(ctx); err != nil {
			return nil, fmt.Errorf("%s setup: %v", taskID, err)
		}
		var records int64
		err := readSplit(e.fs, splits[i], func(key, value string) error {
			records++
			return m.Map(ctx, key, value, sp.emit)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %v", taskID, err)
		}
		if err := m.Cleanup(ctx, sp.emit); err != nil {
			return nil, fmt.Errorf("%s cleanup: %v", taskID, err)
		}
		out, err := sp.finish()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", taskID, err)
		}
		// Only the winning attempt commits its output and counters
		// (speculative losers are discarded).
		commit := func() {
			ctx.Counter(CounterGroupTask, CounterMapInputRecords).Inc(records)
			ctx.Counter(CounterGroupTask, CounterMapOutputRecords).Inc(sp.added)
			if job.NewCombiner != nil && !mapOnly {
				ctx.Counter(CounterGroupTask, CounterCombineInput).Inc(sp.combineIn)
				ctx.Counter(CounterGroupTask, CounterCombineOutput).Inc(sp.combineOut)
			}
			if !mapOnly {
				ctx.Counter(CounterGroupShuffle, CounterShuffleSpilledRecords).Inc(sp.sorted)
				if sp.files > 0 {
					ctx.Counter(CounterGroupShuffle, CounterShuffleSpillFiles).Inc(sp.files)
					ctx.Counter(CounterGroupShuffle, CounterShuffleSpillBytes).Inc(sp.fileBytes)
				}
			}
			outputs[i] = out
			reports[i].Records = records
		}
		return commit, nil
	}, reports)
	if err != nil {
		// Close the phase even on failure: an unpaired PhaseStart reads
		// as a still-running phase to the tracker and timeline.
		bus.Emit(obs.Event{
			Type: obs.PhaseEnd, Job: job.Name, Phase: "map",
			Dur: time.Since(mapStart), Err: err.Error(),
		})
		return fail(fmt.Errorf("mapreduce: job %s: %v", job.Name, err))
	}
	res.MapWall = time.Since(mapStart)
	bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: job.Name, Phase: "map", Dur: res.MapWall})

	if mapOnly {
		// Each map task's output becomes a part-m file.
		for i, out := range outputs {
			name := fmt.Sprintf("%s/part-m-%05d", job.OutputPath, i)
			if err := e.writePartFile(name, out.parts[0], job.BinaryOutput); err != nil {
				return fail(err)
			}
			res.OutputFiles = append(res.OutputFiles, name)
		}
		res.Tasks = reports
		return complete(), nil
	}

	// ---- Shuffle: the only communication step (§III). ----
	// Sort-based: every map task committed pre-sorted runs per reduce
	// partition, so the shuffle is a k-way merge per partition, run in
	// parallel across partitions bounded by the cluster's task slots.
	shuffleStart := time.Now()
	res.ReduceTasks = numReducers
	// Collect every map task's runs per partition, in (map task, spill
	// sequence) order — the order the merges' tie-break relies on for
	// stability. Map outputs are released as the shuffle takes
	// ownership, so outputs and merged partitions are never both
	// retained (peak shuffle memory used to be ~2× intermediate data).
	sources := make([][]shuffleSource, numReducers)
	external := make([]bool, numReducers)
	var totalRuns int64
	for i, out := range outputs {
		for p := 0; p < numReducers; p++ {
			if len(out.parts[p]) > 0 {
				sources[p] = append(sources[p], shuffleSource{mem: out.parts[p]})
				totalRuns++
			}
			if out.fileRuns != nil {
				for _, fr := range out.fileRuns[p] {
					sources[p] = append(sources[p], shuffleSource{file: fr})
					external[p] = true
					totalRuns++
				}
			}
		}
		outputs[i] = nil
	}
	bus.Emit(obs.Event{
		Type: obs.PhaseStart, Job: job.Name, Phase: "shuffle", Time: shuffleStart,
		Detail: fmt.Sprintf("partitions=%d runs=%d", numReducers, totalRuns),
	})
	// Partitions whose runs all sit in memory are merged eagerly as
	// before, bounded by the cluster's task slots; partitions with any
	// file-backed run defer their merge to the reduce attempts, which
	// stream it (extPartition.iter) instead of materialising it.
	reduceInputs := make([][]KV, numReducers)
	extParts := make([]*extPartition, numReducers)
	runCounts := make([]int64, numReducers)
	recCounts := make([]int64, numReducers)
	partBytes := make([]int64, numReducers)
	partDur := make([]time.Duration, numReducers)
	slots := e.cluster.TotalSlots()
	if slots < 1 {
		slots = 1
	}
	sem := make(chan struct{}, slots)
	var mergeWG sync.WaitGroup
	for p := 0; p < numReducers; p++ {
		runCounts[p] = int64(len(sources[p]))
		if external[p] {
			ext := &extPartition{sources: sources[p]}
			for _, s := range sources[p] {
				if s.file.path != "" {
					ext.records += s.file.records
					ext.bytes += s.file.bytes
					continue
				}
				ext.records += int64(len(s.mem))
				for _, kv := range s.mem {
					ext.bytes += int64(len(kv.Key) + len(kv.Value))
				}
			}
			extParts[p] = ext
			recCounts[p] = ext.records
			partBytes[p] = ext.bytes
			continue
		}
		mergeWG.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer mergeWG.Done()
			defer func() { <-sem }()
			mergeStart := time.Now()
			runs := make([][]KV, len(sources[p]))
			for i, s := range sources[p] {
				runs[i] = s.mem
			}
			merged := mergeRuns(runs, job.KeyCompare)
			var b int64
			for _, kv := range merged {
				b += int64(len(kv.Key) + len(kv.Value))
			}
			reduceInputs[p] = merged
			recCounts[p] = int64(len(merged))
			partBytes[p] = b
			partDur[p] = time.Since(mergeStart)
			// Release the run slices: merged now holds (or, for a lone
			// run, aliases) the partition's data.
			sources[p] = nil
		}(p)
	}
	mergeWG.Wait()
	var shuffleBytes int64
	for _, b := range partBytes {
		shuffleBytes += b
	}
	res.Counters.Get(CounterGroupShuffle, CounterShuffleBytes).Inc(shuffleBytes)
	res.Counters.Get(CounterGroupShuffle, CounterShuffleRunsMerged).Inc(totalRuns)
	res.ShuffleWall = time.Since(shuffleStart)
	var parts []obs.PartStat
	if bus.Active() {
		parts = make([]obs.PartStat, numReducers)
		for p := 0; p < numReducers; p++ {
			parts[p] = obs.PartStat{
				Part:    p,
				Runs:    runCounts[p],
				Records: recCounts[p],
				Bytes:   partBytes[p],
				DurUs:   partDur[p].Microseconds(),
			}
		}
	}
	bus.Emit(obs.Event{
		Type: obs.PhaseEnd, Job: job.Name, Phase: "shuffle", Dur: res.ShuffleWall,
		Value: shuffleBytes, Detail: shuffleDetail(runCounts, recCounts, partBytes),
		Parts: parts,
	})

	// ---- Reduce phase ----
	reduceStart := time.Now()
	bus.Emit(obs.Event{Type: obs.PhaseStart, Job: job.Name, Phase: "reduce", Time: reduceStart})
	reduceReports := make([]TaskReport, numReducers)
	reduceSplits := make([]InputSplit, numReducers) // no locality: reducers read from all mappers
	partFiles := make([][]KV, numReducers)
	err = e.schedule(job, "reduce", alog, reduceSplits, maxAttempts, res.Counters, func(r int, node string, attempt int) (func(), error) {
		taskID := fmt.Sprintf("reduce-%04d", r)
		if e.opts.FailureHook != nil {
			if ferr := e.opts.FailureHook(taskID, attempt, node); ferr != nil {
				return nil, ferr
			}
		}
		if e.opts.TaskOverhead > 0 {
			time.Sleep(e.opts.TaskOverhead)
		}
		ctx := &TaskContext{
			JobName: job.Name, TaskID: taskID, Attempt: attempt, Node: node,
			conf: job.Conf, cache: job.Cache, counters: res.Counters,
		}
		// The partition is consumed through a streaming group iterator;
		// each attempt gets its own cursor — over the shared read-only
		// merged slice, or, for an external partition, a fresh k-way
		// merge with its own file cursors — so concurrent speculative
		// attempts need no defensive copy and nobody re-sorts.
		var groups, inRecords int64
		var out []KV
		var err error
		if ext := extParts[r]; ext != nil {
			it, ierr := ext.iter(e.fs, job.KeyCompare)
			if ierr != nil {
				return nil, fmt.Errorf("%s: %v", taskID, ierr)
			}
			out, err = runReduce(ctx, job.NewReducer(), it, &groups, job.KeyCompare)
			if err == nil {
				// The merge stream has no error channel; a spill-file
				// read failure ends it early and surfaces here.
				err = it.Err()
			}
			inRecords = ext.records
		} else {
			out, err = runReduce(ctx, job.NewReducer(), &sliceIter{kvs: reduceInputs[r]}, &groups, job.KeyCompare)
			inRecords = int64(len(reduceInputs[r]))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %v", taskID, err)
		}
		commit := func() {
			ctx.Counter(CounterGroupTask, CounterReduceInputRecords).Inc(inRecords)
			ctx.Counter(CounterGroupTask, CounterReduceOutput).Inc(int64(len(out)))
			ctx.Counter(CounterGroupTask, CounterReduceInputGroups).Inc(groups)
			partFiles[r] = out
			reduceReports[r].Records = inRecords
		}
		return commit, nil
	}, reduceReports)
	if err != nil {
		bus.Emit(obs.Event{
			Type: obs.PhaseEnd, Job: job.Name, Phase: "reduce",
			Dur: time.Since(reduceStart), Err: err.Error(),
		})
		return fail(fmt.Errorf("mapreduce: job %s: %v", job.Name, err))
	}
	res.ReduceWall = time.Since(reduceStart)
	bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: job.Name, Phase: "reduce", Dur: res.ReduceWall})

	for r, kvs := range partFiles {
		name := fmt.Sprintf("%s/part-r-%05d", job.OutputPath, r)
		if err := e.writePartFile(name, kvs, job.BinaryOutput); err != nil {
			return fail(err)
		}
		res.OutputFiles = append(res.OutputFiles, name)
	}
	res.Tasks = append(reports, reduceReports...)
	return complete(), nil
}

// runReduce feeds each distinct-key group of a sorted record stream to
// the reducer (used for both real reducers and combiners). The input
// iterator must yield records in non-decreasing key order; grouping is
// streaming, so the whole input is never copied or re-sorted. If
// groupCount is non-nil it receives the number of distinct keys.
// Counters are the caller's responsibility (only winning attempts
// commit them).
func runReduce(ctx *TaskContext, red Reducer, it kvIter, groupCount *int64, cmp func(a, b string) int) ([]KV, error) {
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	if err := red.Setup(ctx); err != nil {
		return nil, fmt.Errorf("setup: %v", err)
	}
	g := newGroupIter(it, cmp)
	var groups int64
	for {
		key, values, ok := g.next()
		if !ok {
			break
		}
		if err := red.Reduce(ctx, key, values, emit); err != nil {
			return nil, err
		}
		groups++
	}
	if err := red.Cleanup(ctx, emit); err != nil {
		return nil, fmt.Errorf("cleanup: %v", err)
	}
	if groupCount != nil {
		*groupCount = groups
	}
	return out, nil
}

// shuffleDetail renders the per-partition merge summary carried on the
// shuffle PhaseEnd event: runs merged, records and bytes per reduce
// partition, capped so huge reducer counts stay readable.
func shuffleDetail(runs, records, bytes []int64) string {
	const maxParts = 16
	var sb strings.Builder
	for p := range records {
		if p == maxParts {
			fmt.Fprintf(&sb, " …(+%d partitions)", len(records)-maxParts)
			break
		}
		if p > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "p%d:runs=%d,records=%d,bytes=%d", p, runs[p], records[p], bytes[p])
	}
	return sb.String()
}

// writePartFile stores records in DFS — as "key\tvalue" text lines,
// or in the recordio binary record format when binary is set.
func (e *Engine) writePartFile(path string, kvs []KV, binary bool) error {
	if binary {
		w := recordio.NewWriter()
		for _, kv := range kvs {
			w.Add(kv.Key, kv.Value)
		}
		return e.fs.Create(path, w.Bytes(), "")
	}
	var sb strings.Builder
	for _, kv := range kvs {
		sb.WriteString(kv.Key)
		sb.WriteByte('\t')
		sb.WriteString(kv.Value)
		sb.WriteByte('\n')
	}
	return e.fs.Create(path, []byte(sb.String()), "")
}

// ReadOutput reads back all part files of a completed job's output
// directory as KV records, in part-file order. Each file's format —
// binary record file or text lines — is sniffed from its header, so
// mixed outputs read uniformly.
func (e *Engine) ReadOutput(outputPath string) ([]KV, error) {
	files := e.fs.List(outputPath)
	if len(files) == 0 {
		return nil, fmt.Errorf("mapreduce: no output files under %q", outputPath)
	}
	var out []KV
	for _, f := range files {
		data, err := e.fs.ReadAll(f)
		if err != nil {
			return nil, err
		}
		if recordio.IsRecordData(data) {
			err := recordio.ScanAll(data, func(k, v string) error {
				out = append(out, KV{Key: k, Value: v})
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			k, v, _ := strings.Cut(line, "\t")
			out = append(out, KV{k, v})
		}
	}
	return out, nil
}

// RunPipeline runs jobs in sequence, failing fast; the caller wires
// each job's OutputPath into the next job's InputPaths (as DJ-Cluster's
// preprocessing does: "the output of the first job constitutes the
// input of the second one").
func (e *Engine) RunPipeline(jobs ...*Job) ([]*Result, error) {
	results := make([]*Result, 0, len(jobs))
	for _, j := range jobs {
		r, err := e.Run(j)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

func validate(job *Job) error {
	if job.Name == "" {
		return fmt.Errorf("mapreduce: job needs a name")
	}
	if job.NewMapper == nil {
		return fmt.Errorf("mapreduce: job %s: NewMapper is required", job.Name)
	}
	if len(job.InputPaths) == 0 {
		return fmt.Errorf("mapreduce: job %s: no input paths", job.Name)
	}
	if job.OutputPath == "" {
		return fmt.Errorf("mapreduce: job %s: no output path", job.Name)
	}
	if job.NewCombiner != nil && job.NewReducer == nil {
		return fmt.Errorf("mapreduce: job %s: combiner without reducer", job.Name)
	}
	return nil
}

// schedule runs one task per split across the cluster's slots. Tasks
// with preferred hosts are placed data-local when possible, then
// rack-local, then anywhere — the jobtracker's placement policy from
// §III ("keep the computation as close as possible to the data; if the
// work cannot be hosted on the actual node in which the data resides,
// priority is given to neighboring nodes, i.e. belonging to the same
// network rack"). Failed attempts are retried, excluding the node that
// failed, up to maxAttempts; reports[i] is filled for each task.
func (e *Engine) schedule(job *Job, phase string, alog *attemptLog, splits []InputSplit, maxAttempts int, counters *Counters, run func(i int, node string, attempt int) (func(), error), reports []TaskReport) error {
	if len(splits) == 0 {
		return nil
	}
	nodes := e.cluster.Alive()
	if len(nodes) == 0 {
		return fmt.Errorf("no alive nodes")
	}
	bus := e.opts.Obs

	type pendingTask struct {
		idx      int
		attempt  int
		excluded map[string]bool
		backup   bool // speculative duplicate of a running attempt
	}
	// runState tracks in-flight attempts per task for speculation.
	type runState struct {
		start   time.Time
		nodes   map[string]bool
		active  int
		backups int
	}
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		pending   []*pendingTask
		running   = make(map[int]*runState)
		done      = make([]bool, len(splits))
		failures  = make([]int, len(splits))
		firstErr  error
		remaining = len(splits)
		// attemptSeq allocates attempt numbers per task. Every launch —
		// first try, retry or speculative backup — draws a fresh number,
		// so no two attempts of a task ever collide (a retried backup
		// must not reuse a number the primary already burned).
		attemptSeq = make([]int, len(splits))
	)
	for i := range splits {
		pending = append(pending, &pendingTask{idx: i})
		attemptSeq[i] = 1
	}

	// pickBackupLocked selects the longest-running unduplicated task
	// eligible for a speculative backup on this node.
	pickBackupLocked := func(nodeID string) *pendingTask {
		if e.opts.SpeculativeSlack <= 0 {
			return nil
		}
		bestIdx := -1
		var bestStart time.Time
		for idx, rs := range running {
			if done[idx] || rs.backups > 0 || rs.nodes[nodeID] {
				continue
			}
			if time.Since(rs.start) < e.opts.SpeculativeSlack {
				continue
			}
			if bestIdx < 0 || rs.start.Before(bestStart) {
				bestIdx, bestStart = idx, rs.start
			}
		}
		if bestIdx < 0 {
			return nil
		}
		running[bestIdx].backups++
		counters.Get(CounterGroupScheduler, CounterSpeculativeLaunched).Inc(1)
		attempt := attemptSeq[bestIdx]
		attemptSeq[bestIdx]++
		return &pendingTask{idx: bestIdx, attempt: attempt, backup: true}
	}

	// pickLocked selects the best pending task for a node:
	// data-local > rack-local > any non-excluded.
	rackOf := make(map[string]string, len(nodes))
	for _, n := range nodes {
		rackOf[n.ID] = n.Rack
	}
	pickLocked := func(nodeID string) (*pendingTask, string, int) {
		bestIdx, bestClass := -1, 3
		for i, pt := range pending {
			if pt.excluded[nodeID] {
				continue
			}
			class := 2 // off-rack
			sp := splits[pt.idx]
			for _, h := range sp.Hosts {
				if h == nodeID {
					class = 0
					break
				}
				if rackOf[h] == rackOf[nodeID] {
					class = 1
				}
			}
			if len(sp.Hosts) == 0 {
				class = 0 // no locality constraint (reduce tasks)
			}
			if class < bestClass {
				bestClass, bestIdx = class, i
			}
			if bestClass == 0 {
				break
			}
		}
		if bestIdx < 0 {
			return nil, "", 0
		}
		pt := pending[bestIdx]
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
		locality := [3]string{"data-local", "rack-local", "off-rack"}[bestClass]
		if len(splits[pt.idx].Hosts) == 0 {
			locality = ""
		}
		return pt, locality, bestClass
	}

	localityCounters := [3]string{CounterDataLocal, CounterRackLocal, CounterOffRack}
	var wg sync.WaitGroup
	worker := func(nodeID string) {
		defer wg.Done()
		for {
			mu.Lock()
			var pt *pendingTask
			var locality string
			var class int
			for {
				if firstErr != nil || remaining == 0 {
					mu.Unlock()
					return
				}
				if len(pending) > 0 {
					pt, locality, class = pickLocked(nodeID)
					if pt != nil {
						break
					}
				}
				// No regular work for this node: consider launching a
				// speculative backup of a straggling attempt.
				if bt := pickBackupLocked(nodeID); bt != nil {
					pt, locality = bt, ""
					break
				}
				// Tasks may be requeued by failures or become eligible
				// for speculation; wait for a state change or timeout.
				if e.opts.SpeculativeSlack > 0 {
					// cond.Wait would miss time-based eligibility; poll.
					mu.Unlock()
					time.Sleep(e.opts.SpeculativeSlack / 4)
					mu.Lock()
					continue
				}
				cond.Wait()
			}
			rs := running[pt.idx]
			if rs == nil {
				rs = &runState{start: time.Now(), nodes: make(map[string]bool)}
				running[pt.idx] = rs
			}
			rs.active++
			rs.nodes[nodeID] = true
			mu.Unlock()

			tid := taskID(splits[pt.idx], pt.idx)
			if bus.Active() {
				bus.Emit(obs.Event{
					Type: obs.TaskScheduled, Job: job.Name, Phase: phase, Task: tid,
					Attempt: pt.attempt, Node: nodeID, Locality: locality, Backup: pt.backup,
				})
			}
			if e.opts.NodeDelay != nil {
				if d := e.opts.NodeDelay(nodeID); d > 0 {
					time.Sleep(d)
				}
			}
			taskStart := time.Now()
			if bus.Active() {
				bus.Emit(obs.Event{
					Type: obs.AttemptStarted, Job: job.Name, Phase: phase, Task: tid,
					Attempt: pt.attempt, Node: nodeID, Locality: locality, Backup: pt.backup,
					Time: taskStart,
				})
			}
			commit, err := run(pt.idx, nodeID, pt.attempt)
			taskEnd := time.Now()
			// The retry branch below bumps pt.attempt for requeueing;
			// the record and event for THIS attempt keep its own number.
			attemptNo, wasBackup := pt.attempt, pt.backup

			mu.Lock()
			rs.active--
			var status string
			switch {
			case done[pt.idx]:
				// A parallel attempt already won; discard this result.
				// This is the losing attempt's single terminal transition,
				// so the kill event below fires exactly once per loser.
				status = "killed"
				counters.Get(CounterGroupScheduler, CounterSpeculativeWasted).Inc(1)
			case err == nil:
				status = "succeeded"
				done[pt.idx] = true
				delete(running, pt.idx)
				commit()
				reports[pt.idx].ID = tid
				reports[pt.idx].Node = nodeID
				reports[pt.idx].Attempts = pt.attempt + 1
				reports[pt.idx].Locality = locality
				reports[pt.idx].Duration = taskEnd.Sub(taskStart)
				reports[pt.idx].StartOffset = taskStart.Sub(alog.t0)
				reports[pt.idx].FailedAttempts = failures[pt.idx]
				if locality != "" {
					counters.Get(CounterGroupScheduler, localityCounters[class]).Inc(1)
				}
				remaining--
			case rs.active > 0:
				// Another attempt of this task is still running; let it
				// decide the task's fate. A failed backup releases its
				// speculation slot so a still-straggling primary can
				// receive another backup later.
				status = "failed"
				failures[pt.idx]++
				if pt.backup {
					rs.backups--
				}
			case failures[pt.idx]+1 >= maxAttempts:
				status = "failed"
				failures[pt.idx]++
				if firstErr == nil {
					firstErr = fmt.Errorf("task failed after %d attempts: %v", failures[pt.idx], err)
				}
			default:
				// Retry on another node, like the jobtracker does, under
				// a fresh attempt number that cannot collide with any
				// attempt already launched (including backups).
				status = "failed"
				failures[pt.idx]++
				delete(running, pt.idx)
				if pt.excluded == nil {
					pt.excluded = make(map[string]bool)
				}
				if len(pt.excluded) < len(nodes)-1 {
					pt.excluded[nodeID] = true
				}
				pt.attempt = attemptSeq[pt.idx]
				attemptSeq[pt.idx]++
				pt.backup = false
				pending = append(pending, pt)
			}
			if alog != nil {
				rec := obs.AttemptRecord{
					Task: tid, Phase: phase, Attempt: attemptNo, Node: nodeID,
					StartMs:  taskStart.Sub(alog.t0).Milliseconds(),
					EndMs:    taskEnd.Sub(alog.t0).Milliseconds(),
					Locality: locality, Backup: wasBackup, Status: status,
				}
				if err != nil && status == "failed" {
					rec.Error = err.Error()
				}
				alog.add(rec)
			}
			if bus.Active() {
				evType := obs.AttemptSucceeded
				switch status {
				case "failed":
					evType = obs.AttemptFailed
				case "killed":
					evType = obs.AttemptKilled
				}
				ev := obs.Event{
					Type: evType, Job: job.Name, Phase: phase, Task: tid,
					Attempt: attemptNo, Node: nodeID, Locality: locality, Backup: wasBackup,
					Time: taskEnd, Dur: taskEnd.Sub(taskStart),
				}
				if err != nil && status == "failed" {
					ev.Err = err.Error()
				}
				bus.Emit(ev)
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}

	for _, n := range nodes {
		for s := 0; s < n.Slots; s++ {
			wg.Add(1)
			go worker(n.ID)
		}
	}
	// Return as soon as every task has a winning attempt (or the job
	// failed) rather than joining all workers: a speculative loser may
	// still be executing, and — like Hadoop killing the slower attempt
	// — we abandon it. Losers never commit, so letting them drain in
	// the background is safe; they exit at their next loop iteration.
	mu.Lock()
	for remaining > 0 && firstErr == nil {
		cond.Wait()
	}
	err := firstErr
	mu.Unlock()
	if e.opts.SpeculativeSlack == 0 {
		// Without speculation there are no abandoned losers; joining
		// the workers keeps goroutine accounting exact.
		wg.Wait()
	}
	return err
}

func taskID(sp InputSplit, idx int) string {
	if sp.Path == "" {
		return fmt.Sprintf("reduce-%04d", idx)
	}
	return fmt.Sprintf("map-%04d", idx)
}
