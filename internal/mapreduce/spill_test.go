package mapreduce

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
)

// joinReducer emits each key with its comma-joined value stream, so a
// job's output captures the full grouped kv stream the shuffle fed the
// reducer — grouping, key order and within-group value order included.
type joinReducer struct{ ReducerBase }

func (joinReducer) Reduce(_ *TaskContext, key string, values []string, emit Emit) error {
	emit(key, strings.Join(values, ","))
	return nil
}

// runShuffledWordCount runs one wordcount-shaped job over text and
// returns its sorted output plus the result. budget=0 is the legacy
// in-memory shuffle; small budgets force map-side spills to DFS.
func runShuffledWordCount(seed int64, text string, reducers int, budget int64, compress, combiner, joined, reverse bool) ([]KV, *Result, error) {
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		return nil, nil, err
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: 120, Replication: 3, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	e := NewEngine(c, fs, Options{})
	if err := fs.Create("in/f", []byte(text), ""); err != nil {
		return nil, nil, err
	}
	job := &Job{
		Name:            "ext-shuffle",
		InputPaths:      []string{"in/f"},
		OutputPath:      "out",
		NewMapper:       func() Mapper { return wordMapper{} },
		NewReducer:      func() Reducer { return sumReducer{} },
		NumReducers:     reducers,
		MaxShuffleBytes: budget,
		CompressSpill:   compress,
	}
	if joined {
		job.NewReducer = func() Reducer { return joinReducer{} }
	}
	if combiner {
		job.NewCombiner = func() Reducer { return sumReducer{} }
	}
	if reverse {
		job.KeyCompare = func(a, b string) int { return -strings.Compare(a, b) }
	}
	res, err := e.Run(job)
	if err != nil {
		return nil, nil, err
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		return nil, nil, err
	}
	sortRun(kvs, nil)
	return kvs, res, nil
}

// TestPropertyExternalShuffleEqualsInMemory is the external shuffle's
// core contract: for random inputs, reducer counts, budgets, custom
// key orders and combiner/compression settings, the spill-to-DFS path
// produces record-for-record the output of the all-in-memory path.
// With the combiner off the joined-values reducer makes the comparison
// cover the complete grouped kv stream, not just aggregates.
func TestPropertyExternalShuffleEqualsInMemory(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64, reducersRaw, budgetRaw uint8, combiner, compress, reverse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randText(rng)
		reducers := int(reducersRaw)%4 + 1
		// 32..287 bytes: small enough that most tasks spill repeatedly.
		budget := int64(budgetRaw) + 32
		joined := !combiner // full-stream comparison needs an uncombined stream

		want, _, err := runShuffledWordCount(seed, text, reducers, 0, false, combiner, joined, reverse)
		if err != nil {
			t.Logf("seed=%d in-memory: %v", seed, err)
			return false
		}
		got, _, err := runShuffledWordCount(seed, text, reducers, budget, compress, combiner, joined, reverse)
		if err != nil {
			t.Logf("seed=%d external: %v", seed, err)
			return false
		}
		if len(got) != len(want) {
			t.Logf("seed=%d: %d records, want %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed=%d budget=%d: record %d = %v, want %v", seed, budget, i, got[i], want[i])
				return false
			}
		}
		// Whether a given task actually spilled depends on its split
		// size vs the budget; TestExternalShuffleSpillsAndCleansUp pins
		// that spills do engage. Here only equivalence matters.
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestExternalShuffleSpillsAndCleansUp pins the observable spill
// lifecycle: counters prove runs went to DFS, the output is correct,
// and the job's spill directory is gone when Run returns.
func TestExternalShuffleSpillsAndCleansUp(t *testing.T) {
	c, _ := cluster.NewUniform(4, 2, 2)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 256, Replication: 3, Seed: 7})
	e := NewEngine(c, fs, Options{})
	writeInput(t, e, "in/f", strings.Repeat("alpha beta gamma delta\n", 200))
	job := &Job{
		Name:            "spilly",
		InputPaths:      []string{"in/f"},
		OutputPath:      "out",
		NewMapper:       func() Mapper { return wordMapper{} },
		NewReducer:      func() Reducer { return sumReducer{} },
		NewCombiner:     func() Reducer { return sumReducer{} },
		NumReducers:     3,
		MaxShuffleBytes: 64,
		CompressSpill:   true,
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	files := res.Counters.Value(CounterGroupShuffle, CounterShuffleSpillFiles)
	bytes := res.Counters.Value(CounterGroupShuffle, CounterShuffleSpillBytes)
	if files == 0 || bytes == 0 {
		t.Fatalf("no spills recorded: files=%d bytes=%d", files, bytes)
	}
	if errs := res.Counters.Value(CounterGroupShuffle, CounterShuffleSpillCleanupErrors); errs != 0 {
		t.Fatalf("spill cleanup reported %d errors", errs)
	}
	if left := fs.List(spillDir(job)); len(left) != 0 {
		t.Fatalf("spill dir not cleaned up: %v", left)
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range kvs {
		got[kv.Key] = kv.Value
	}
	for _, w := range []string{"alpha", "beta", "gamma", "delta"} {
		if got[w] != "200" {
			t.Fatalf("word %q = %q, want 200 (output: %v)", w, got[w], got)
		}
	}
}

// TestExternalShuffleUnderSpeculation drives the spill path while a
// straggler node forces speculative backup attempts, so concurrent
// attempts of one task write (and clean up) attempt-unique spill runs
// at once — the scenario the -race CI step exists for.
func TestExternalShuffleUnderSpeculation(t *testing.T) {
	c, _ := cluster.NewUniform(4, 2, 1)
	slowNode := c.Nodes()[0].ID
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 64, Replication: 3, Seed: 1})
	e := NewEngine(c, fs, Options{
		SpeculativeSlack: 10 * time.Millisecond,
		NodeDelay: func(node string) time.Duration {
			if node == slowNode {
				return 150 * time.Millisecond
			}
			return 2 * time.Millisecond
		},
	})
	writeInput(t, e, "in/f", strings.Repeat("hello world again\n", 60))
	res, err := e.Run(&Job{
		Name:            "speculative-spill",
		InputPaths:      []string{"in/f"},
		OutputPath:      "out",
		NewMapper:       func() Mapper { return wordMapper{} },
		NewReducer:      func() Reducer { return sumReducer{} },
		NumReducers:     2,
		MaxShuffleBytes: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if spills := res.Counters.Value(CounterGroupShuffle, CounterShuffleSpillFiles); spills == 0 {
		t.Fatal("speculative run never spilled; budget too high for the fixture")
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range kvs {
		got[kv.Key] = kv.Value
	}
	for _, w := range []string{"hello", "world", "again"} {
		if got[w] != "60" {
			t.Fatalf("word %q = %q, want 60", w, got[w])
		}
	}
}

// TestMapOnlyJobIgnoresShuffleBudget asserts the budget knob is inert
// for map-only jobs: output goes straight to part files, no spill dir.
func TestMapOnlyJobIgnoresShuffleBudget(t *testing.T) {
	e := newTestEngine(t, 64)
	writeInput(t, e, "in/f", strings.Repeat("a b c\n", 50))
	job := &Job{
		Name:            "maponly-budget",
		InputPaths:      []string{"in/f"},
		OutputPath:      "out",
		NewMapper:       func() Mapper { return wordMapper{} },
		MaxShuffleBytes: 16,
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if spills := res.Counters.Value(CounterGroupShuffle, CounterShuffleSpillFiles); spills != 0 {
		t.Fatalf("map-only job wrote %d spill files", spills)
	}
	kvs, err := e.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 150 {
		t.Fatalf("map-only output %d records, want 150", len(kvs))
	}
}

// TestSpillRunTruncationIsAnError reads a truncated copy of a real
// spill run through the reduce-side cursor: the stream must fail
// loudly, never end in a silently short group stream.
func TestSpillRunTruncationIsAnError(t *testing.T) {
	c, _ := cluster.NewUniform(4, 2, 2)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 1 << 20, Replication: 3, Seed: 3})
	e := NewEngine(c, fs, Options{})
	job := &Job{Name: "trunc", MaxShuffleBytes: 1}
	sp := newMapSpiller(e.fs, job, &TaskContext{}, "m0", 0, "", false, 1, HashPartition, job.MaxShuffleBytes, false)
	for i := 0; i < 50; i++ {
		sp.emit(fmt.Sprintf("key-%02d", i), "value-payload")
	}
	out, err := sp.finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.fileRuns) == 0 || len(out.fileRuns[0]) == 0 {
		t.Fatal("fixture produced no file runs")
	}
	run := out.fileRuns[0][0]
	data, err := fs.ReadAll(run.path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := run.path + ".trunc"
	if err := fs.Create(trunc, data[:len(data)-3], ""); err != nil {
		t.Fatal(err)
	}
	pull, err := openSpillRun(fs, trunc)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := pull()
		if err != nil {
			return // truncation surfaced as an explicit error
		}
		if !ok {
			t.Fatal("truncated spill run read to a clean EOF")
		}
	}
}
