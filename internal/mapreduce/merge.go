package mapreduce

import (
	"container/heap"
	"sort"
)

// This file implements the sort-based shuffle's merge machinery,
// mirroring Hadoop's intermediate-data path: each map task sorts every
// partition of its output at commit time (a "run", Hadoop's spill
// file), the shuffle performs a k-way merge of the pre-sorted runs per
// reduce partition, and the reducer consumes a streaming group
// iterator over the merged stream — no reduce-side re-sort, and no
// defensive copy for concurrent speculative attempts, which share the
// merged slice read-only.
//
// Every stage takes an optional key comparator (Job.KeyCompare,
// Hadoop's RawComparator). A nil comparator means plain byte order on
// the key strings — the legacy text path, kept branch-cheap so string
// jobs pay nothing for the hook. Typed jobs with order-preserving key
// encodings also pass nil (byte order IS their key order); only
// custom sort orders need a function.

// sortRun stable-sorts one map-output partition by key, preserving
// emission order among equal keys (the property the merge's tie-break
// relies on for end-to-end determinism).
func sortRun(kvs []KV, cmp func(a, b string) int) {
	if cmp == nil {
		sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
		return
	}
	sort.SliceStable(kvs, func(i, j int) bool { return cmp(kvs[i].Key, kvs[j].Key) < 0 })
}

// kvIter yields key-value records in non-decreasing key order.
type kvIter interface {
	next() (KV, bool)
}

// sliceIter iterates an already-sorted slice.
type sliceIter struct {
	kvs []KV
	pos int
}

func (s *sliceIter) next() (KV, bool) {
	if s.pos >= len(s.kvs) {
		return KV{}, false
	}
	kv := s.kvs[s.pos]
	s.pos++
	return kv, true
}

// runCursor is one sorted run's read position inside the merge heap.
// ord is the run's position in the input order; it breaks key ties so
// the merge is stable across runs (records of equal keys come out in
// map-task order, exactly as the concat-then-stable-sort shuffle
// produced them).
type runCursor struct {
	run []KV
	pos int
	ord int
}

// runHeap is a min-heap of run cursors ordered by (current key, ord)
// under the given comparator (nil = byte order).
type runHeap struct {
	cursors []*runCursor
	cmp     func(a, b string) int
}

func (h *runHeap) Len() int { return len(h.cursors) }

func (h *runHeap) Less(i, j int) bool {
	ci, cj := h.cursors[i], h.cursors[j]
	ki, kj := ci.run[ci.pos].Key, cj.run[cj.pos].Key
	if h.cmp == nil {
		if ki != kj {
			return ki < kj
		}
	} else if c := h.cmp(ki, kj); c != 0 {
		return c < 0
	}
	return ci.ord < cj.ord
}

func (h *runHeap) Swap(i, j int) { h.cursors[i], h.cursors[j] = h.cursors[j], h.cursors[i] }

func (h *runHeap) Push(x any) { h.cursors = append(h.cursors, x.(*runCursor)) }

func (h *runHeap) Pop() any {
	old := h.cursors
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	h.cursors = old[:n-1]
	return x
}

// mergeIter streams the k-way merge of pre-sorted runs.
type mergeIter struct {
	h runHeap
}

// newMergeIter builds a merge iterator over the given runs. Each run
// must already be sorted under cmp; empty runs are skipped.
func newMergeIter(runs [][]KV, cmp func(a, b string) int) *mergeIter {
	h := runHeap{cursors: make([]*runCursor, 0, len(runs)), cmp: cmp}
	for ord, r := range runs {
		if len(r) > 0 {
			h.cursors = append(h.cursors, &runCursor{run: r, ord: ord})
		}
	}
	heap.Init(&h)
	return &mergeIter{h: h}
}

func (m *mergeIter) next() (KV, bool) {
	if len(m.h.cursors) == 0 {
		return KV{}, false
	}
	c := m.h.cursors[0]
	kv := c.run[c.pos]
	c.pos++
	if c.pos == len(c.run) {
		heap.Pop(&m.h)
	} else {
		heap.Fix(&m.h, 0)
	}
	return kv, true
}

// MergeRuns merges pre-sorted runs into one sorted slice under plain
// byte order. Records with equal keys keep run order (and, within a
// run, the run's own order), so merging stable-sorted runs is
// kv-for-kv equivalent to concatenating the unsorted runs and
// stable-sorting the whole — the seed shuffle's behaviour, now at
// O(N log k) instead of O(N log N).
//
// When exactly one run is non-empty the result aliases it rather than
// copying; callers must treat the inputs as consumed and the output as
// read-only. Exported for benchmarks and downstream tooling.
func MergeRuns(runs [][]KV) []KV {
	return mergeRuns(runs, nil)
}

// mergeRuns is MergeRuns under an optional custom key comparator.
func mergeRuns(runs [][]KV, cmp func(a, b string) int) []KV {
	var last []KV
	nonEmpty, total := 0, 0
	for _, r := range runs {
		if len(r) > 0 {
			nonEmpty++
			total += len(r)
			last = r
		}
	}
	switch nonEmpty {
	case 0:
		return nil
	case 1:
		return last
	}
	out := make([]KV, 0, total)
	it := newMergeIter(runs, cmp)
	for kv, ok := it.next(); ok; kv, ok = it.next() {
		out = append(out, kv)
	}
	return out
}

// pullFunc yields the successive records of one sorted run — the
// file-backed generalisation of a runCursor. ok=false ends the run
// cleanly; an error (a failed spill-file read) aborts the merge.
type pullFunc func() (KV, bool, error)

// pullCursor is one pull-based run's position inside the merge heap.
// ord breaks key ties by run input order, exactly like runCursor, so
// the external merge stays stable across runs.
type pullCursor struct {
	next pullFunc
	cur  KV
	ord  int
}

// pullHeap is runHeap over pull cursors.
type pullHeap struct {
	cursors []*pullCursor
	cmp     func(a, b string) int
}

func (h *pullHeap) Len() int { return len(h.cursors) }

func (h *pullHeap) Less(i, j int) bool {
	ci, cj := h.cursors[i], h.cursors[j]
	ki, kj := ci.cur.Key, cj.cur.Key
	if h.cmp == nil {
		if ki != kj {
			return ki < kj
		}
	} else if c := h.cmp(ki, kj); c != 0 {
		return c < 0
	}
	return ci.ord < cj.ord
}

func (h *pullHeap) Swap(i, j int) { h.cursors[i], h.cursors[j] = h.cursors[j], h.cursors[i] }

func (h *pullHeap) Push(x any) { h.cursors = append(h.cursors, x.(*pullCursor)) }

func (h *pullHeap) Pop() any {
	old := h.cursors
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	h.cursors = old[:n-1]
	return x
}

// extMergeIter streams the k-way merge of pull-based sorted runs —
// the external shuffle's counterpart of mergeIter, where runs live in
// DFS spill files instead of slices. kvIter.next has no error channel,
// so a run read error stops the stream immediately and is surfaced
// through Err; callers must check Err after draining and before
// committing any result derived from the stream.
type extMergeIter struct {
	h   pullHeap
	err error
}

// newExtMergeIter primes one record from every run. Runs must already
// be sorted under cmp; empty runs are skipped.
func newExtMergeIter(pulls []pullFunc, cmp func(a, b string) int) (*extMergeIter, error) {
	h := pullHeap{cursors: make([]*pullCursor, 0, len(pulls)), cmp: cmp}
	for ord, pull := range pulls {
		kv, ok, err := pull()
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		h.cursors = append(h.cursors, &pullCursor{next: pull, cur: kv, ord: ord})
	}
	heap.Init(&h)
	return &extMergeIter{h: h}, nil
}

func (m *extMergeIter) next() (KV, bool) {
	if m.err != nil || len(m.h.cursors) == 0 {
		return KV{}, false
	}
	c := m.h.cursors[0]
	kv := c.cur
	nkv, ok, err := c.next()
	switch {
	case err != nil:
		m.err = err
		m.h.cursors = nil
	case ok:
		c.cur = nkv
		heap.Fix(&m.h, 0)
	default:
		heap.Pop(&m.h)
	}
	return kv, true
}

// Err reports the first run read error, if any. A non-nil Err means
// the stream ended early and everything consumed from it is suspect.
func (m *extMergeIter) Err() error { return m.err }

// groupIter turns a sorted kv stream into (key, values) groups, the
// unit a Reducer consumes. It buffers only one group at a time. Group
// boundaries fall where the comparator (nil = byte equality) says two
// adjacent keys differ.
type groupIter struct {
	it  kvIter
	cmp func(a, b string) int
	cur KV
	ok  bool
}

func newGroupIter(it kvIter, cmp func(a, b string) int) *groupIter {
	g := &groupIter{it: it, cmp: cmp}
	g.cur, g.ok = it.next()
	return g
}

// next returns the next key and all its values. ok is false when the
// stream is exhausted.
func (g *groupIter) next() (key string, values []string, ok bool) {
	if !g.ok {
		return "", nil, false
	}
	key = g.cur.Key
	values = append(values, g.cur.Value)
	for {
		g.cur, g.ok = g.it.next()
		if !g.ok || g.keyChanged(key) {
			return key, values, true
		}
		values = append(values, g.cur.Value)
	}
}

func (g *groupIter) keyChanged(key string) bool {
	if g.cmp == nil {
		return g.cur.Key != key
	}
	return g.cmp(g.cur.Key, key) != 0
}
