package viz

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Heatmap aggregates trace density onto a grid for rendering — the
// "visualize a geolocated dataset" view that works at millions of
// traces, where drawing individual polylines would be unreadable.
type Heatmap struct {
	bounds       geo.Rect
	cols, rows   int
	counts       []int
	max          int
	totalSamples int
}

// NewHeatmap creates an empty heatmap over the bounding rectangle with
// the given grid resolution (defaults 64x48 when non-positive).
func NewHeatmap(bounds geo.Rect, cols, rows int) *Heatmap {
	if cols <= 0 {
		cols = 64
	}
	if rows <= 0 {
		rows = 48
	}
	return &Heatmap{bounds: bounds, cols: cols, rows: rows, counts: make([]int, cols*rows)}
}

// Add accumulates one observation at p (silently ignored outside the
// bounds).
func (h *Heatmap) Add(p geo.Point) {
	if !h.bounds.Contains(p) {
		return
	}
	fx := (p.Lon - h.bounds.Min.Lon) / (h.bounds.Max.Lon - h.bounds.Min.Lon)
	fy := (p.Lat - h.bounds.Min.Lat) / (h.bounds.Max.Lat - h.bounds.Min.Lat)
	col := int(fx * float64(h.cols))
	row := int(fy * float64(h.rows))
	if col >= h.cols {
		col = h.cols - 1
	}
	if row >= h.rows {
		row = h.rows - 1
	}
	idx := row*h.cols + col
	h.counts[idx]++
	if h.counts[idx] > h.max {
		h.max = h.counts[idx]
	}
	h.totalSamples++
}

// AddDataset accumulates every trace of the dataset.
func (h *Heatmap) AddDataset(ds *trace.Dataset) {
	for _, tr := range ds.Trails {
		for _, t := range tr.Traces {
			h.Add(t.Point)
		}
	}
}

// OccupiedCells returns how many grid cells hold at least one sample.
func (h *Heatmap) OccupiedCells() int {
	n := 0
	for _, c := range h.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// MaxCount returns the densest cell's sample count.
func (h *Heatmap) MaxCount() int { return h.max }

// RenderSVG draws the heatmap as colored cells on a new canvas. The
// color ramps from pale yellow to dark red on a log scale (trace
// density is heavy-tailed: dwells dominate).
func (h *Heatmap) RenderSVG(width, height int) *Canvas {
	c := NewCanvas(h.bounds, width, height)
	if h.max == 0 {
		return c
	}
	cellW := float64(c.width) / float64(h.cols)
	cellH := float64(c.height) / float64(h.rows)
	var sb strings.Builder
	sb.WriteString("<g>")
	logMax := math.Log1p(float64(h.max))
	for row := 0; row < h.rows; row++ {
		for col := 0; col < h.cols; col++ {
			n := h.counts[row*h.cols+col]
			if n == 0 {
				continue
			}
			// Intensity in [0,1] on a log scale.
			v := math.Log1p(float64(n)) / logMax
			r, g, b := heatColor(v)
			// Row 0 is the south edge: flip vertically for SVG.
			y := float64(c.height) - float64(row+1)*cellH
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,%d)" fill-opacity="0.85"/>`,
				float64(col)*cellW, y, cellW+0.5, cellH+0.5, r, g, b)
		}
	}
	sb.WriteString("</g>")
	c.layers = append(c.layers, sb.String())
	return c
}

// heatColor maps intensity v in [0,1] to a yellow→orange→red ramp.
func heatColor(v float64) (r, g, b int) {
	switch {
	case v < 0:
		v = 0
	case v > 1:
		v = 1
	}
	r = 255
	g = int(230 * (1 - v*v))
	b = int(80 * (1 - v))
	return r, g, b
}
