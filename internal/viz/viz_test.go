package viz

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/trace"
)

func sampleTrail() *trace.Trail {
	tr := &trace.Trail{User: "u"}
	base := geo.Point{Lat: 39.9, Lon: 116.4}
	for i := 0; i < 10; i++ {
		tr.Traces = append(tr.Traces, trace.Trace{
			User:  "u",
			Point: geo.Destination(base, 45, float64(i)*100),
			Time:  time.Unix(int64(1_200_000_000+i*60), 0),
		})
	}
	return tr
}

func TestBoundsOf(t *testing.T) {
	tr := sampleTrail()
	ds := &trace.Dataset{Trails: []trace.Trail{*tr}}
	b := BoundsOf(ds)
	if !b.Contains(tr.Traces[0].Point) || !b.Contains(tr.Traces[9].Point) {
		t.Fatal("bounds must contain all points")
	}
	if b.Area() <= 0 {
		t.Fatal("degenerate bounds for a moving trail")
	}
	if BoundsOf(&trace.Dataset{}) != (geo.Rect{}) {
		t.Fatal("empty dataset should have zero bounds")
	}
}

func TestCanvasProjection(t *testing.T) {
	b := geo.Rect{Min: geo.Point{Lat: 39, Lon: 116}, Max: geo.Point{Lat: 40, Lon: 117}}
	c := NewCanvas(b, 1000, 1000)
	// SW corner maps near bottom-left, NE near top-right.
	x1, y1 := c.xy(geo.Point{Lat: 39, Lon: 116})
	x2, y2 := c.xy(geo.Point{Lat: 40, Lon: 117})
	if !(x1 < x2 && y1 > y2) {
		t.Fatalf("projection inverted: (%v,%v) vs (%v,%v)", x1, y1, x2, y2)
	}
	// Points inside bounds stay inside the viewport.
	for _, p := range []geo.Point{{Lat: 39.5, Lon: 116.5}, {Lat: 39, Lon: 116}, {Lat: 40, Lon: 117}} {
		x, y := c.xy(p)
		if x < 0 || x > 1000 || y < 0 || y > 1000 {
			t.Fatalf("point %v projects outside viewport: (%v,%v)", p, x, y)
		}
	}
}

func TestRenderDatasetProducesValidSVG(t *testing.T) {
	ds := geolife.Generate(geolife.Config{Users: 3, TotalTraces: 3000, Seed: 1})
	c := RenderDataset(ds, 800, 600)
	c.AddTitle(`Dataset <3 "users" & trails`)
	svg := c.SVG()
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Fatal("missing SVG header")
	}
	if !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("missing SVG footer")
	}
	if strings.Count(svg, "<polyline") != 3 {
		t.Fatalf("expected 3 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	// Title must be escaped.
	if strings.Contains(svg, `<3 "users"`) {
		t.Fatal("unescaped title")
	}
	if !strings.Contains(svg, "&lt;3 &quot;users&quot; &amp; trails") {
		t.Fatal("escaped title missing")
	}
}

func TestMarkersCirclesPoints(t *testing.T) {
	c := NewCanvas(geo.Rect{Min: geo.Point{Lat: 39, Lon: 116}, Max: geo.Point{Lat: 40, Lon: 117}}, 400, 400)
	center := geo.Point{Lat: 39.5, Lon: 116.5}
	c.AddMarker(center, "home", 0)
	c.AddCircle(center, 500, 1)
	c.AddPoints([]geo.Point{center, geo.Destination(center, 0, 100)}, 2, 2)
	svg := c.SVG()
	for _, want := range []string{"<circle", "home", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Circle pixel radius must be sane: 500m on a ~111km/400px canvas
	// is ~1.8 px; just check it rendered with r > 0.
	if strings.Contains(svg, `r="0.0"`) {
		t.Fatal("zero-radius circle")
	}
}

func TestEmptyLayersSkipped(t *testing.T) {
	c := NewCanvas(geo.RectFromPoint(geo.Point{Lat: 39.9, Lon: 116.4}), 100, 100)
	c.AddTrail(&trace.Trail{}, 0)
	c.AddPoints(nil, 0, 1)
	svg := c.SVG()
	if strings.Contains(svg, "polyline") || strings.Count(svg, "circle") > 0 {
		t.Fatalf("empty layers should render nothing: %s", svg)
	}
}

func TestColorCycles(t *testing.T) {
	if color(0) == "" || color(10) != color(0) || color(-1) != color(9) {
		t.Fatalf("palette cycling broken: %s %s %s", color(0), color(10), color(-1))
	}
}

func TestDefaultCanvasSize(t *testing.T) {
	c := NewCanvas(geo.Rect{}, 0, 0)
	svg := c.SVG()
	if !strings.Contains(svg, `width="800" height="600"`) {
		t.Fatal("default size not applied")
	}
}

func TestHeatmapAccumulation(t *testing.T) {
	b := geo.Rect{Min: geo.Point{Lat: 39, Lon: 116}, Max: geo.Point{Lat: 40, Lon: 117}}
	h := NewHeatmap(b, 10, 10)
	center := geo.Point{Lat: 39.55, Lon: 116.55}
	for i := 0; i < 100; i++ {
		h.Add(center)
	}
	h.Add(geo.Point{Lat: 50, Lon: 50}) // outside: ignored
	if h.MaxCount() != 100 {
		t.Fatalf("MaxCount = %d, want 100", h.MaxCount())
	}
	if h.OccupiedCells() != 1 {
		t.Fatalf("OccupiedCells = %d, want 1", h.OccupiedCells())
	}
}

func TestHeatmapRenderSVG(t *testing.T) {
	ds := geolife.Generate(geolife.Config{Users: 2, TotalTraces: 4000, Seed: 2})
	h := NewHeatmap(BoundsOf(ds), 32, 24)
	h.AddDataset(ds)
	if h.OccupiedCells() == 0 {
		t.Fatal("no occupied cells")
	}
	svg := h.RenderSVG(640, 480).SVG()
	if !strings.Contains(svg, "<rect") || !strings.Contains(svg, "rgb(") {
		t.Fatal("heatmap cells missing from SVG")
	}
	// Dense cells (dwells) must render darker than sparse ones: at
	// least two distinct colors.
	if strings.Count(svg, "rgb(255,230,80)") == strings.Count(svg, "rgb(") {
		t.Fatal("heatmap is monochrome")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	h := NewHeatmap(geo.Rect{Min: geo.Point{Lat: 0, Lon: 0}, Max: geo.Point{Lat: 1, Lon: 1}}, 0, 0)
	svg := h.RenderSVG(100, 100).SVG()
	if strings.Contains(svg, "<rect x=") && strings.Contains(svg, "rgb(") {
		t.Fatal("empty heatmap should render no cells")
	}
}

func TestHeatColorRamp(t *testing.T) {
	r0, g0, _ := heatColor(0)
	r1, g1, _ := heatColor(1)
	if r0 != 255 || r1 != 255 {
		t.Fatal("red channel should stay saturated")
	}
	if g1 >= g0 {
		t.Fatal("green must fall with intensity")
	}
	// Out-of-range inputs clamp.
	if ra, _, _ := heatColor(-5); ra != 255 {
		t.Fatal("clamp low")
	}
	if _, gb, _ := heatColor(5); gb != 0 {
		t.Fatal("clamp high")
	}
}

func TestRenderClusters(t *testing.T) {
	ds := geolife.Generate(geolife.Config{Users: 1, TotalTraces: 1000, Seed: 3})
	clusters := []ClusterView{
		{Centroid: ds.Trails[0].Traces[0].Point, Label: "home", Size: 40},
		{Centroid: ds.Trails[0].Traces[500].Point, Label: "work", Size: 9},
	}
	svg := RenderClusters(ds, clusters, 640, 480).SVG()
	for _, want := range []string{"home", "work", "polyline", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}
