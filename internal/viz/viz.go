// Package viz implements GEPETO's visualization role: rendering
// geolocated datasets, trails, clusters and POIs as standalone SVG
// documents ("GEPETO ... can be used to visualize ... a particular
// geolocated dataset" and "visualize the resulting data", §I/§VIII).
// The renderer is deliberately dependency-free: it emits plain SVG so
// results can be inspected in any browser.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/geo"
	"repro/internal/trace"
)

// palette cycles through visually distinct colors for users/clusters.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// Canvas accumulates SVG layers over a fixed geographic viewport.
type Canvas struct {
	bounds        geo.Rect
	width, height int
	layers        []string
}

// NewCanvas creates a canvas projecting the bounding rectangle onto a
// width×height pixel viewport (equirectangular projection, adequate at
// metropolitan extents). Bounds are padded 5% so edge points stay
// visible.
func NewCanvas(bounds geo.Rect, width, height int) *Canvas {
	if width <= 0 {
		width = 800
	}
	if height <= 0 {
		height = 600
	}
	padLat := (bounds.Max.Lat - bounds.Min.Lat) * 0.05
	padLon := (bounds.Max.Lon - bounds.Min.Lon) * 0.05
	if padLat == 0 {
		padLat = 0.001
	}
	if padLon == 0 {
		padLon = 0.001
	}
	bounds.Min.Lat -= padLat
	bounds.Max.Lat += padLat
	bounds.Min.Lon -= padLon
	bounds.Max.Lon += padLon
	return &Canvas{bounds: bounds, width: width, height: height}
}

// BoundsOf computes the bounding rectangle of a dataset ((0,0)-rect
// for an empty one).
func BoundsOf(ds *trace.Dataset) geo.Rect {
	first := true
	var r geo.Rect
	for _, tr := range ds.Trails {
		for _, t := range tr.Traces {
			if first {
				r = geo.RectFromPoint(t.Point)
				first = false
				continue
			}
			r = r.Union(geo.RectFromPoint(t.Point))
		}
	}
	return r
}

// xy projects a point into pixel coordinates (y grows downward).
func (c *Canvas) xy(p geo.Point) (float64, float64) {
	x := (p.Lon - c.bounds.Min.Lon) / (c.bounds.Max.Lon - c.bounds.Min.Lon) * float64(c.width)
	y := (1 - (p.Lat-c.bounds.Min.Lat)/(c.bounds.Max.Lat-c.bounds.Min.Lat)) * float64(c.height)
	return x, y
}

// color returns the palette color for an index.
func color(i int) string { return palette[((i%len(palette))+len(palette))%len(palette)] }

// AddTrail draws a trail as a polyline plus small point markers; the
// color index usually enumerates users.
func (c *Canvas) AddTrail(tr *trace.Trail, colorIdx int) {
	if len(tr.Traces) == 0 {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<g fill="none" stroke="%s" stroke-width="1" opacity="0.6">`, color(colorIdx))
	sb.WriteString(`<polyline points="`)
	for _, t := range tr.Traces {
		x, y := c.xy(t.Point)
		fmt.Fprintf(&sb, "%.1f,%.1f ", x, y)
	}
	sb.WriteString(`"/></g>`)
	c.layers = append(c.layers, sb.String())
}

// AddPoints draws a scatter of positions.
func (c *Canvas) AddPoints(points []geo.Point, colorIdx int, radius float64) {
	if len(points) == 0 {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<g fill="%s" opacity="0.5">`, color(colorIdx))
	for _, p := range points {
		x, y := c.xy(p)
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="%.1f"/>`, x, y, radius)
	}
	sb.WriteString("</g>")
	c.layers = append(c.layers, sb.String())
}

// AddMarker draws a labeled marker (e.g. an extracted POI).
func (c *Canvas) AddMarker(p geo.Point, label string, colorIdx int) {
	x, y := c.xy(p)
	var sb strings.Builder
	fmt.Fprintf(&sb, `<g><circle cx="%.1f" cy="%.1f" r="6" fill="%s" stroke="black" stroke-width="1.5"/>`,
		x, y, color(colorIdx))
	if label != "" {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">%s</text>`,
			x+8, y+4, escape(label))
	}
	sb.WriteString("</g>")
	c.layers = append(c.layers, sb.String())
}

// AddCircle draws an outline circle of the given radius in meters
// (e.g. a DJ-Cluster neighborhood or a mix zone).
func (c *Canvas) AddCircle(center geo.Point, radiusMeters float64, colorIdx int) {
	x, y := c.xy(center)
	// Convert meters to pixels via the latitude scale.
	latSpan := c.bounds.Max.Lat - c.bounds.Min.Lat
	metersPerPixel := latSpan * math.Pi / 180 * geo.EarthRadiusMeters / float64(c.height)
	r := radiusMeters / metersPerPixel
	c.layers = append(c.layers, fmt.Sprintf(
		`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="%s" stroke-width="1" stroke-dasharray="4 2"/>`,
		x, y, r, color(colorIdx)))
}

// AddTitle draws a title line at the top of the canvas.
func (c *Canvas) AddTitle(title string) {
	c.layers = append(c.layers, fmt.Sprintf(
		`<text x="10" y="20" font-size="16" font-family="sans-serif" font-weight="bold">%s</text>`,
		escape(title)))
}

// WriteSVG emits the complete SVG document.
func (c *Canvas) WriteSVG(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+
			`<rect width="%d" height="%d" fill="#fafafa"/>`,
		c.width, c.height, c.width, c.height, c.width, c.height); err != nil {
		return err
	}
	for _, l := range c.layers {
		if _, err := io.WriteString(w, l); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</svg>")
	return err
}

// SVG returns the document as a string.
func (c *Canvas) SVG() string {
	var sb strings.Builder
	_ = c.WriteSVG(&sb)
	return sb.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// RenderDataset draws every trail of a dataset in per-user colors —
// the basic "visualize a geolocated dataset" view.
func RenderDataset(ds *trace.Dataset, width, height int) *Canvas {
	c := NewCanvas(BoundsOf(ds), width, height)
	for i := range ds.Trails {
		c.AddTrail(&ds.Trails[i], i)
	}
	return c
}

// ClusterView is the minimal cluster shape the renderer needs (the
// gepeto package's Cluster satisfies it structurally via RenderClusters'
// arguments, avoiding an import cycle).
type ClusterView struct {
	Centroid geo.Point
	Label    string
	Size     int
}

// RenderClusters draws a dataset's trails faintly plus each cluster as
// a sized marker — the standard "inspect a clustering result" view.
func RenderClusters(ds *trace.Dataset, clusters []ClusterView, width, height int) *Canvas {
	c := RenderDataset(ds, width, height)
	for i, cl := range clusters {
		c.AddMarker(cl.Centroid, cl.Label, i+1)
		// Marker halo scales with cluster size (sqrt for area feel).
		radius := 20 * math.Sqrt(float64(cl.Size))
		if radius > 400 {
			radius = 400
		}
		c.AddCircle(cl.Centroid, radius, i+1)
	}
	return c
}
