// Package retain exercises the emitretain analyzer: storing or
// aliasing the Reduce values slice or a codec Append dst buffer is
// flagged; copying elements out is accepted.
package retain

import (
	"encoding/binary"

	"repro/internal/mapreduce"
)

type retainingReducer struct {
	mapreduce.ReducerBase
	last []string
}

func (r *retainingReducer) Reduce(ctx *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	r.last = values // want `values slice passed to Reduce is reused`
	return nil
}

type subsliceReducer struct {
	mapreduce.ReducerBase
	head []string
}

func (r *subsliceReducer) Reduce(ctx *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	r.head = values[:1] // want `values slice passed to Reduce is reused`
	return nil
}

var lastValues []string

type appendingReducer struct {
	mapreduce.ReducerBase
	batches [][]string
}

func (r *appendingReducer) Reduce(ctx *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	lastValues = values                   // want `values slice passed to Reduce is reused`
	r.batches = append(r.batches, values) // want `append stores values as an element`
	return nil
}

type copyingReducer struct {
	mapreduce.ReducerBase
	all []string
}

// Reduce copies the elements out: accepted.
func (r *copyingReducer) Reduce(ctx *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	r.all = append(r.all, values...)
	own := make([]string, len(values))
	copy(own, values)
	for _, v := range values {
		emit(key, v)
	}
	return nil
}

type batch struct {
	key    string
	values []string
}

type literalReducer struct {
	mapreduce.ReducerBase
	batches []batch
}

func (r *literalReducer) Reduce(ctx *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	r.batches = append(r.batches, batch{
		key:    key,
		values: values, // want `composite literal captures values`
	})
	return nil
}

// PairCodec retains its scratch buffer: flagged.
type PairCodec struct {
	scratch []byte
}

func (c *PairCodec) Append(dst []byte, v uint32) []byte {
	c.scratch = dst // want `dst scratch buffer passed to Append is reused`
	return binary.BigEndian.AppendUint32(dst, v)
}

func (c *PairCodec) Decode(s string) (uint32, error) { return 0, nil }

// CleanCodec appends and returns, the contract shape: accepted.
type CleanCodec struct{}

func (CleanCodec) Append(dst []byte, v uint32) []byte {
	dst = append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	return dst
}

func (CleanCodec) Decode(s string) (uint32, error) { return 0, nil }
