package emitretain_test

import (
	"testing"

	"repro/internal/lint/emitretain"
	"repro/internal/lint/linttest"
)

func TestEmitRetain(t *testing.T) {
	linttest.Run(t, emitretain.Analyzer, "retain")
}
