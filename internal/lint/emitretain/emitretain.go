// Package emitretain flags code that retains buffers the engine
// reuses.
//
// Two engine contracts create aliasing hazards. First, the reduce
// runner may reuse the values slice it passes to Reduce between key
// groups, so a reducer that stores the slice (or a subslice of it)
// past the call observes later groups' data. Second, a codec's
// Append(dst, v) receives a scratch buffer the caller will keep
// appending to; stashing dst in a field or global aliases memory the
// next Append call overwrites. Copying element values out is always
// fine — only the backing array must not escape.
package emitretain

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer flags retention of the Reduce values slice and of codec
// Append scratch buffers.
var Analyzer = &analysis.Analyzer{
	Name: "emitretain",
	Doc: "the values slice passed to Reduce and the dst buffer passed to codec Append " +
		"are reused by the engine; storing or aliasing them past the call reads " +
		"overwritten memory",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, tf := range engineapi.TaskFuncs(pass.TypesInfo, pass.Files) {
		if v := engineapi.ReduceValuesParam(tf); v != nil {
			checkRetention(pass, tf.Body, v,
				"the values slice passed to Reduce is reused between key groups")
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if dst := engineapi.CodecAppendDstParam(pass.TypesInfo, fd); dst != nil {
				checkRetention(pass, fd.Body, dst,
					"the dst scratch buffer passed to Append is reused by the caller")
			}
		}
	}
	return nil
}

// checkRetention reports places where body lets param's backing array
// escape the call: stores into fields, globals, containers, or
// dereferenced pointers; capture in composite literals; appending the
// slice itself (not its elements) to another slice; channel sends.
// Returning the buffer is not flagged — for Append it is the contract,
// and a Reduce-shaped function returns only an error.
func checkRetention(pass *analysis.Pass, body *ast.BlockStmt, param *types.Var, why string) {
	aliases := func(e ast.Expr) bool { return aliasesParam(pass.TypesInfo, e, param) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if aliases(rhs) && escapingLHS(pass.TypesInfo, n.Lhs[i]) {
					pass.Reportf(n.Pos(), "%s aliases %s: %s; copy the bytes/elements instead",
						lhsNoun(n.Lhs[i]), param.Name(), why)
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if aliases(v) {
					pass.Reportf(v.Pos(), "composite literal captures %s: %s; copy the bytes/elements instead",
						param.Name(), why)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					// append(xs, values...) copies elements: fine.
					// append(xs, values) stores the slice header: not.
					if !n.Ellipsis.IsValid() {
						for _, arg := range n.Args[1:] {
							if aliases(arg) {
								pass.Reportf(arg.Pos(), "append stores %s as an element: %s; append %s... to copy its elements",
									param.Name(), why, param.Name())
							}
						}
					}
				}
			}
		case *ast.SendStmt:
			if aliases(n.Value) {
				pass.Reportf(n.Value.Pos(), "channel send of %s: %s; copy the bytes/elements instead",
					param.Name(), why)
			}
		}
		return true
	})
}

// aliasesParam reports whether e denotes param's backing array: the
// parameter itself or a slice expression over it. Indexing (values[i])
// yields an element value, not the array, so it does not alias.
func aliasesParam(info *types.Info, e ast.Expr, param *types.Var) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e] == param
	case *ast.SliceExpr:
		return aliasesParam(info, e.X, param)
	}
	return false
}

// escapingLHS reports whether assigning to lhs outlives the call:
// struct fields, package-level variables, container elements, and
// pointer targets do; local variables do not (a local copy of the
// header is harmless unless it is itself stored, which a later
// assignment would flag).
func escapingLHS(info *types.Info, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		obj := info.Uses[lhs]
		if obj == nil {
			obj = info.Defs[lhs]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return false
		}
		return v.Parent() == v.Pkg().Scope()
	}
	return false
}

func lhsNoun(lhs ast.Expr) string {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "field store"
	case *ast.IndexExpr:
		return "container store"
	case *ast.StarExpr:
		return "pointer store"
	}
	return "package-level store"
}
