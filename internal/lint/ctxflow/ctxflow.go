// Package ctxflow enforces the cluster plane's cancellation contract:
// contexts flow down, and waits can be interrupted.
//
// Two rules, modeled on how the rpc plane actually shuts down:
//
//  1. A function (or any literal nested in it) that already has a
//     context.Context in scope must not mint a fresh root with
//     context.Background()/TODO() — the fresh root detaches every
//     callee from the caller's cancellation, which is how a "phase
//     over" signal fails to reach a speculative attempt. Package main
//     is exempt (roots have to come from somewhere), as are tests
//     (never loaded here).
//
//  2. An unbounded retry/poll loop (`for {}` / `for cond {}`) that
//     waits — time.Sleep, or receiving only from timer/ticker
//     channels — must also be able to hear a stop signal: a receive
//     from ctx.Done() or an ordinary (non-timer) channel such as the
//     worker's stop channel, or a sync.Cond wait (Broadcast reaches
//     it). Bounded three-clause loops terminate on their own and are
//     exempt, matching worker.go's 20×20ms completion retry; the
//     heartbeat ticker loops pass through the stop-channel clause of
//     their selects.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer enforces context threading and interruptible poll loops.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "no context.Background()/TODO() where a ctx is already in scope (outside main), " +
		"and unbounded retry/poll loops must select on ctx.Done() or a shutdown channel; " +
		"a wait that cannot hear stop outlives the work it waits for",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Roots are minted in main; poll loops there end with the
		// process.
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFresh(pass, fd.Body, sigHasCtx(pass.TypesInfo.Defs[fd.Name]))
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if loop, ok := n.(*ast.ForStmt); ok {
				checkLoop(pass, loop)
			}
			return true
		})
	}
	return nil
}

// sigHasCtx reports whether obj is a function with a context.Context
// parameter.
func sigHasCtx(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if engineapi.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// litHasCtx reports whether a function literal declares its own
// context parameter.
func litHasCtx(info *types.Info, lit *ast.FuncLit) bool {
	sig, ok := info.Types[lit].Type.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if engineapi.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkFresh flags fresh context roots minted while a ctx is in scope.
// Nested literals keep the enclosing scope: a closure spawned by a
// ctx-taking function still has that ctx to thread.
func checkFresh(pass *analysis.Pass, body *ast.BlockStmt, inScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFresh(pass, n.Body, inScope || litHasCtx(pass.TypesInfo, n))
			return false
		case *ast.CallExpr:
			if name := engineapi.FreshContextCall(pass.TypesInfo, n); name != "" && inScope {
				pass.Reportf(n.Pos(),
					"%s() while a ctx is in scope; thread the surrounding context so cancellation reaches this call", name)
			}
		}
		return true
	})
}

// checkLoop flags unbounded loops that wait without an escape.
func checkLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	if loop.Init != nil || loop.Post != nil {
		// A three-clause loop is bounded by construction (worker.go's
		// completion retry); termination is its counter's business.
		return
	}
	waits, escapes := 0, 0
	classify := func(recv ast.Expr) {
		switch {
		case ctxDoneRecv(pass.TypesInfo, recv):
			escapes++
		case timerChan(pass.TypesInfo, recv):
			waits++
		default:
			// An ordinary channel is externally signallable — the stop
			// channel pattern.
			escapes++
		}
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal runs on its own schedule; its waits are
			// not this loop's waits.
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				classify(n.X)
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					classify(n.X)
				}
			}
		case *ast.CallExpr:
			switch {
			case engineapi.TimeSleep(pass.TypesInfo, n):
				waits++
			case engineapi.CondWait(pass.TypesInfo, n):
				// Cond.Wait wakes on Broadcast/Signal: externally
				// signallable, like a stop channel (the scheduler's slot
				// loop).
				escapes++
			}
		}
		return true
	})
	if waits > 0 && escapes == 0 {
		pass.Reportf(loop.For,
			"unbounded poll loop sleeps but never selects on ctx.Done or a shutdown channel; it cannot be cancelled")
	}
}

// ctxDoneRecv reports whether e is ctx.Done() (or a variable is too
// hard to prove — only the direct call form is recognized, which is
// the repo's only form).
func ctxDoneRecv(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && engineapi.CtxDoneCall(info, call)
}

// timerChan reports whether e is a time-source channel: time.After /
// time.Tick, or the C field of a time.Ticker/time.Timer.
func timerChan(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := engineapi.CalleeFunc(info, e)
		return fn != nil && engineapi.StdPkg(fn, "time") &&
			(fn.Name() == "After" || fn.Name() == "Tick")
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		v, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return false
		}
		return engineapi.StdPkg(v, "time")
	}
	return false
}
