// Package ctxpoll exercises the ctxflow analyzer. The loop fixtures
// are copied from the production shapes in internal/cluster/rpc —
// worker.go's heartbeat ticker and bounded 20×20ms completion retry,
// jobtracker.go's monitor and WaitForWorkers — and must be kept in
// sync with them: if a production idiom changes shape, change it here
// too so the analyzer is tested against what the repo actually writes.
package ctxpoll

import (
	"context"
	"sync"
	"time"
)

type tracker struct {
	stop    chan struct{}
	queue   chan int
	workers map[string]int
}

// freshInScope: a received ctx must flow; minting a new root detaches
// callees from the caller's cancellation.
func freshInScope(ctx context.Context, run func(context.Context) error) error {
	sub := context.Background() // want `context\.Background\(\) while a ctx is in scope`
	if err := run(sub); err != nil {
		return err
	}
	return run(context.TODO()) // want `context\.TODO\(\) while a ctx is in scope`
}

// freshInNested: a closure inherits the enclosing ctx scope.
func freshInNested(ctx context.Context, run func(context.Context) error) {
	go func() {
		_ = run(context.Background()) // want `context\.Background\(\) while a ctx is in scope`
	}()
}

// freshDerived: deriving from the received ctx is the right move.
func freshDerived(ctx context.Context, run func(context.Context) error) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return run(sub)
}

// noCtxInScope: with no ctx to thread, a root is legitimate (the
// scheduler's own cancellation root).
func noCtxInScope(run func(context.Context) error) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	return run(ctx)
}

// litOwnCtx: a literal that declares its own ctx parameter has one in
// scope even though the enclosing function does not.
func litOwnCtx() func(context.Context) error {
	return func(ctx context.Context) error {
		_ = context.Background() // want `context\.Background\(\) while a ctx is in scope`
		return nil
	}
}

// pollNoEscape is the shape WaitForWorkers had before this analyzer:
// an unbounded deadline poll that nothing can interrupt.
func (t *tracker) pollNoEscape(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for { // want `unbounded poll loop sleeps but never selects`
		if len(t.workers) >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tickerNoEscape: waiting only on a ticker is still uninterruptible.
func (t *tracker) tickerNoEscape() {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for { // want `unbounded poll loop sleeps but never selects`
		<-tick.C
		t.workers["a"]++
	}
}

// afterNoEscape: time.After in a condition-only loop, same verdict.
func (t *tracker) afterNoEscape(done func() bool) {
	for !done() { // want `unbounded poll loop sleeps but never selects`
		<-time.After(20 * time.Millisecond)
	}
}

// heartbeatLoop mirrors worker.go's heartbeatLoop: a ticker select
// with a stop-channel clause is the canonical interruptible wait.
func (t *tracker) heartbeatLoop(every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.workers["a"]++
		}
	}
}

// completionRetry mirrors worker.go runTask's completion retry: the
// three-clause loop is bounded (20×20ms) and exempt, and its inner
// select hears stop anyway.
func (t *tracker) completionRetry(send func() error) {
	for i := 0; i < 20; i++ {
		if send() == nil {
			return
		}
		select {
		case <-t.stop:
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// monitorLoop mirrors jobtracker.go's monitor: grace-period expiry
// scan on a ticker, stopped by the stop channel.
func (t *tracker) monitorLoop(grace time.Duration) {
	tick := time.NewTicker(grace / 4)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			for id := range t.workers {
				delete(t.workers, id)
			}
		}
	}
}

// ctxDoneEscape: selecting on ctx.Done is the other sanctioned escape.
func ctxDoneEscape(ctx context.Context, tick *time.Ticker, work func()) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			work()
		}
	}
}

// queueDrain: receiving from an ordinary channel is externally
// signallable (close unblocks it) — not a blind wait.
func (t *tracker) queueDrain() {
	for {
		v := <-t.queue
		if v < 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// condSlack mirrors the scheduler's slot loop: the sleep window is
// paired with a Cond.Wait that Broadcast reaches.
func condSlack(cond *sync.Cond, slack time.Duration, ready func() bool) {
	for {
		if ready() {
			return
		}
		if slack > 0 {
			time.Sleep(slack / 4)
			continue
		}
		cond.Wait()
	}
}

// busyScan: no wait at all — spins on state; out of scope here.
func (t *tracker) busyScan() {
	for {
		if len(t.workers) == 0 {
			return
		}
		delete(t.workers, "a")
	}
}
