package ctxflow_test

import (
	"testing"

	"repro/internal/lint/ctxflow"
	"repro/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "ctxpoll")
}
