// Package analysis is a small, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis core: an Analyzer bundles a named
// check, a Pass hands it one type-checked package, and diagnostics are
// collected positionally. The container this repo builds in has no
// module proxy access, so the x/tools framework is reimplemented to
// the subset gepetolint needs rather than vendored.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is a one-paragraph description: what invariant the check
	// enforces and why the engine needs it.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Reportf. A returned error aborts the whole lint run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(*Pass) error
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the load, shared across
	// packages so cross-package objects still resolve.
	Fset *token.FileSet
	// Files are the package's parsed sources.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's facts for Files.
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the violation.
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// String renders a diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}
