// Package lint assembles the gepetolint analyzer suite: the static
// checks that enforce the MapReduce engine's correctness invariants.
// Each analyzer guards one contract the type system cannot express —
// task determinism under re-execution, buffer ownership across the
// emit boundary, obs event pairing, raw-key sort order, storage error
// surfacing, and — for the distributed cluster plane — lock-holding
// discipline around blocking operations, consistent atomic access,
// context-flow into retry loops, and gob-faithfulness of every type
// crossing the rpc transport.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicmix"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/emitretain"
	"repro/internal/lint/errdrop"
	"repro/internal/lint/eventpairs"
	"repro/internal/lint/gobwire"
	"repro/internal/lint/lockheld"
	"repro/internal/lint/rawkeyorder"
	"repro/internal/lint/taskdeterminism"
)

// Suite returns the full analyzer suite in stable (alphabetical) order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctxflow.Analyzer,
		emitretain.Analyzer,
		errdrop.Analyzer,
		eventpairs.Analyzer,
		gobwire.Analyzer,
		lockheld.Analyzer,
		rawkeyorder.Analyzer,
		taskdeterminism.Analyzer,
	}
}
