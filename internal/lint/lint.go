// Package lint assembles the gepetolint analyzer suite: the static
// checks that enforce the MapReduce engine's correctness invariants.
// Each analyzer guards one contract the type system cannot express —
// task determinism under re-execution, buffer ownership across the
// emit boundary, obs event pairing, raw-key sort order, and storage
// error surfacing.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/emitretain"
	"repro/internal/lint/errdrop"
	"repro/internal/lint/eventpairs"
	"repro/internal/lint/rawkeyorder"
	"repro/internal/lint/taskdeterminism"
)

// Suite returns the full analyzer suite in stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		emitretain.Analyzer,
		errdrop.Analyzer,
		eventpairs.Analyzer,
		rawkeyorder.Analyzer,
		taskdeterminism.Analyzer,
	}
}
