// Recognizers for the cluster runtime surface: the rpc transport
// protocol, sync primitives, blocking operations, context roots, and
// gob self-encoding — the vocabulary of the lockheld, atomicmix,
// ctxflow and gobwire analyzers. Standard-library packages are matched
// by exact import path (suffix matching would let a fixture spoof
// "sync"); the engine's own layers keep the suffix rules above so
// fixture stubs work.
package engineapi

import (
	"go/ast"
	"go/types"
)

// StdPkg reports whether obj is declared in the standard-library
// package with exactly this import path.
func StdPkg(obj types.Object, path string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method, through any selector), or nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// TransportCall reports whether call invokes the rpc transport's
// Call(addr, method, args, reply) — on the Transport interface or any
// implementation declared in the rpc package.
func TransportCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Call" || !FromPkg(fn, RPCPath) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && sig.Params().Len() == 4
}

// MutexOp recognizes a call to Lock/Unlock/RLock/RUnlock (or a Try
// variant) on a sync.Mutex or sync.RWMutex, returning the receiver
// expression (the lock) and the method name.
func MutexOp(info *types.Info, call *ast.CallExpr) (recv ast.Expr, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || !StdPkg(fn, "sync") {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", false
	}
	n := namedOf(sig.Recv().Type())
	if n == nil || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

// syncMethod reports whether call invokes the named method on the
// named sync type.
func syncMethod(info *types.Info, call *ast.CallExpr, typeName, method string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != method || !StdPkg(fn, "sync") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOf(sig.Recv().Type())
	return n != nil && n.Obj().Name() == typeName
}

// WaitGroupWait reports whether call is sync.WaitGroup.Wait.
func WaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	return syncMethod(info, call, "WaitGroup", "Wait")
}

// CondWait reports whether call is sync.Cond.Wait — a wait that is
// externally signallable (Broadcast/Signal), unlike a plain sleep.
func CondWait(info *types.Info, call *ast.CallExpr) bool {
	return syncMethod(info, call, "Cond", "Wait")
}

// TimeSleep reports whether call is time.Sleep.
func TimeSleep(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Sleep" || !StdPkg(fn, "time") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// StoreIOCall recognizes a blocking storage I/O call — a method on
// dfs.Store, *dfs.FileSystem, or the rpc RemoteStore proxy — and
// returns a display name like "(dfs.Store).ReadRange".
func StoreIOCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	// Only the exported surface is the I/O boundary: unexported methods
	// are intra-package helpers that follow the owning package's own
	// locking conventions (dfs's readChunkLocked is *designed* to run
	// under fs.mu).
	if !fn.Exported() {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	for _, w := range []struct{ name, path, disp string }{
		{"Store", DFSPath, "(dfs.Store)"},
		{"FileSystem", DFSPath, "(*dfs.FileSystem)"},
		{"RemoteStore", RPCPath, "(*rpc.RemoteStore)"},
	} {
		if NamedFrom(sig.Recv().Type(), w.name, w.path) != nil {
			return w.disp + "." + fn.Name(), true
		}
	}
	return "", false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "Context" && StdPkg(n.Obj(), "context")
}

// FreshContextCall returns "context.Background" or "context.TODO"
// when call mints a fresh root context, else "".
func FreshContextCall(info *types.Info, call *ast.CallExpr) string {
	fn := CalleeFunc(info, call)
	if fn == nil || !StdPkg(fn, "context") {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return "context." + fn.Name()
	}
	return ""
}

// CtxDoneCall reports whether call is the Done() method of a
// context.Context.
func CtxDoneCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Done" || !StdPkg(fn, "context") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// AtomicFuncCall reports whether call invokes one of sync/atomic's
// package-level word functions (AddT/LoadT/StoreT/SwapT/
// CompareAndSwapT), whose first argument is a pointer to the shared
// word. The atomic.Int64-style method forms make mixing impossible at
// the type level and are not matched.
func AtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || !StdPkg(fn, "sync/atomic") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Params().Len() == 0 {
		return false
	}
	_, isPtr := sig.Params().At(0).Type().Underlying().(*types.Pointer)
	return isPtr
}

// GobSelfEncoding reports whether t controls its own gob wire form by
// implementing gob.GobEncoder or encoding.BinaryMarshaler (time.Time
// is the canonical case): its unexported fields are the encoder's
// business, not gobwire's.
func GobSelfEncoding(t types.Type) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 2 {
			return true
		}
	}
	return false
}
