// Package engineapi recognizes the MapReduce engine's API surface in
// type-checked code: task-code function bodies (anything receiving a
// *mapreduce.TaskContext), emit callbacks, obs lifecycle events, and
// the file-system/history interfaces whose errors must not be
// dropped. Matching is by package-path suffix, so analyzer fixtures
// can supply stub packages under the same repro/internal/... paths.
package engineapi

import (
	"go/ast"
	"go/types"
	"strings"
)

// Package path suffixes of the engine layers the analyzers model.
const (
	MapreducePath = "internal/mapreduce"
	ObsPath       = "internal/obs"
	DFSPath       = "internal/dfs"
	RecordioPath  = "internal/recordio"
	RPCPath       = "internal/cluster/rpc"
)

// FromPkg reports whether obj belongs to a package whose import path
// ends in suffix (e.g. "internal/mapreduce").
func FromPkg(obj types.Object, suffix string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return PathIs(obj.Pkg().Path(), suffix)
}

// PathIs reports whether an import path names the engine layer with
// the given suffix.
func PathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// NamedFrom returns the *types.Named behind t (unwrapping pointers and
// aliases, and mapping generic instances to their origin) when it is
// declared in a package matching suffix with the given name.
func NamedFrom(t types.Type, name, suffix string) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok && namedOf(t) == nil {
		t = p.Elem()
	}
	n := namedOf(t)
	if n == nil {
		return nil
	}
	n = n.Origin()
	if n.Obj().Name() != name || !FromPkg(n.Obj(), suffix) {
		return nil
	}
	return n
}

func namedOf(t types.Type) *types.Named {
	switch t := t.(type) {
	case *types.Named:
		return t
	case *types.Alias:
		return namedOf(types.Unalias(t))
	case *types.Pointer:
		return namedOf(t.Elem())
	}
	return nil
}

// IsTaskContextPtr reports whether t is *mapreduce.TaskContext.
func IsTaskContextPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return NamedFrom(p.Elem(), "TaskContext", MapreducePath) != nil
}

// IsEmitType reports whether t is mapreduce.Emit or an instance of
// mapreduce.TypedEmit — the callbacks task code emits records through.
func IsEmitType(t types.Type) bool {
	return NamedFrom(t, "Emit", MapreducePath) != nil ||
		NamedFrom(t, "TypedEmit", MapreducePath) != nil
}

// TaskFunc is one function or method whose body runs inside a task
// attempt (its first parameter is a *mapreduce.TaskContext), or a
// function literal adapted into one via the MapFunc/ReduceFunc/
// TypedMapFunc/TypedReduceFunc conversions.
type TaskFunc struct {
	// Name labels the function in diagnostics ("(*m).Cleanup",
	// "MapFunc literal").
	Name string
	// Body is the function body to inspect.
	Body *ast.BlockStmt
	// Type is the function's signature.
	Sig *types.Signature
}

// funcAdapters are the named function types that lift plain funcs into
// task interfaces.
var funcAdapters = map[string]bool{
	"MapFunc": true, "ReduceFunc": true,
	"TypedMapFunc": true, "TypedReduceFunc": true,
}

// TaskFuncs finds every task-code body in the files: declared
// functions and methods whose first parameter is *TaskContext, plus
// function literals converted to one of the adapter types. Nested
// function literals inside a task body belong to the enclosing
// TaskFunc (they run in the same attempt) and are not returned
// separately.
func TaskFuncs(info *types.Info, files []*ast.File) []TaskFunc {
	var out []TaskFunc
	seen := map[*ast.BlockStmt]bool{}
	add := func(name string, body *ast.BlockStmt, sig *types.Signature) {
		if body == nil || seen[body] {
			return
		}
		seen[body] = true
		out = append(out, TaskFunc{Name: name, Body: body, Sig: sig})
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Params().Len() > 0 && IsTaskContextPtr(sig.Params().At(0).Type()) {
				add(fd.Name.Name, fd.Body, sig)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			n2 := namedOf(tv.Type)
			if n2 == nil || !funcAdapters[n2.Origin().Obj().Name()] || !FromPkg(n2.Origin().Obj(), MapreducePath) {
				return true
			}
			lit, ok := call.Args[0].(*ast.FuncLit)
			if !ok {
				return true
			}
			if sig, ok := info.Types[lit].Type.(*types.Signature); ok {
				add(n2.Origin().Obj().Name()+" literal", lit.Body, sig)
			}
			return true
		})
	}
	return out
}

// ReduceValuesParam returns the values-slice parameter object of a
// Reduce-shaped task function — the slice parameter the engine may
// reuse between groups — or nil. The shape is (ctx, key, values, emit).
func ReduceValuesParam(tf TaskFunc) *types.Var {
	p := tf.Sig.Params()
	if p.Len() != 4 {
		return nil
	}
	if !IsEmitType(p.At(3).Type()) {
		return nil
	}
	if _, ok := p.At(2).Type().Underlying().(*types.Slice); !ok {
		return nil
	}
	return p.At(2)
}

// CodecAppendDstParam returns the dst scratch-buffer parameter of a
// codec Append method — shape Append(dst []byte, v T) []byte — or nil.
func CodecAppendDstParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Name.Name != "Append" || fd.Recv == nil || fd.Body == nil {
		return nil
	}
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return nil
	}
	if !isByteSlice(sig.Params().At(0).Type()) || !isByteSlice(sig.Results().At(0).Type()) {
		return nil
	}
	return sig.Params().At(0)
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// ObsEventConst resolves an expression to the name of the obs
// EventType constant it denotes ("phase_start" → "PhaseStart" etc.),
// or "" when it is not a reference to one.
func ObsEventConst(info *types.Info, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj, ok := info.Uses[id].(*types.Const)
	if !ok || !FromPkg(obj, ObsPath) {
		return ""
	}
	if NamedFrom(obj.Type(), "EventType", ObsPath) == nil {
		return ""
	}
	return obj.Name()
}

// IsObsEventType reports whether t is the obs.Event struct.
func IsObsEventType(t types.Type) bool {
	return NamedFrom(t, "Event", ObsPath) != nil
}

// RawComparerIface returns the mapreduce.RawComparer interface from
// the package that declared named (so fixture stubs work), or nil.
func RawComparerIface(mrPkg *types.Package) *types.Interface {
	if mrPkg == nil {
		return nil
	}
	obj := mrPkg.Scope().Lookup("RawComparer")
	if obj == nil {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}
