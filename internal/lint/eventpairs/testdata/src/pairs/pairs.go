// Package pairs exercises the eventpairs analyzer: spans/phases left
// open on a return path are flagged; deferred closers, closer
// providers, and straight-line pairing are accepted.
package pairs

import (
	"errors"

	"repro/internal/obs"
)

var bus obs.Bus

// leakyPhase forgets the PhaseEnd on the error return: flagged.
func leakyPhase(fail bool) error {
	bus.Emit(obs.Event{Type: obs.PhaseStart, Job: "j", Phase: "map"})
	if fail {
		return errors.New("boom") // want `return without emitting obs\.PhaseEnd for the obs\.PhaseStart \("map"\)`
	}
	bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: "j", Phase: "map"})
	return nil
}

// leakySpan never closes at all: flagged at the start.
func leakySpan() {
	bus.Emit(obs.Event{Type: obs.SpanStart, Span: "s"}) // want `obs\.SpanStart is never paired with obs\.SpanEnd`
}

// pairedPhase closes the phase on both paths: accepted.
func pairedPhase(fail bool) error {
	bus.Emit(obs.Event{Type: obs.PhaseStart, Job: "j", Phase: "reduce"})
	if fail {
		bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: "j", Phase: "reduce", Err: "boom"})
		return errors.New("boom")
	}
	bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: "j", Phase: "reduce"})
	return nil
}

// earlyReturn exits before anything is open: accepted.
func earlyReturn(skip bool) error {
	if skip {
		return nil
	}
	bus.Emit(obs.Event{Type: obs.PhaseStart, Job: "j", Phase: "sort"})
	bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: "j", Phase: "sort"})
	return nil
}

// deferredClosure closes via a deferred literal reading the named
// error, the AttackPOI idiom: accepted.
func deferredClosure() (err error) {
	bus.Emit(obs.Event{Type: obs.SpanStart, Span: "attack"})
	defer func() {
		ev := obs.Event{Type: obs.SpanEnd, Span: "attack"}
		if err != nil {
			ev.Err = err.Error()
		}
		bus.Emit(ev)
	}()
	if true {
		return errors.New("boom")
	}
	return nil
}

// deferredEmit closes via a directly deferred Emit: accepted.
func deferredEmit() error {
	bus.Emit(obs.Event{Type: obs.SpanStart, Span: "d"})
	defer bus.Emit(obs.Event{Type: obs.SpanEnd, Span: "d"})
	return errors.New("boom")
}

// startSpan is a closer provider, the gepeto.span idiom: the Start it
// emits is closed by the returned func, so the provider is accepted.
func startSpan(id string) func() {
	bus.Emit(obs.Event{Type: obs.SpanStart, Span: id})
	return func() {
		bus.Emit(obs.Event{Type: obs.SpanEnd, Span: id})
	}
}

// useProvider defers the provider's closer: accepted.
func useProvider() error {
	defer startSpan("pipeline")()
	return errors.New("boom")
}

// dropCloser calls the provider and throws the closer away: the
// SpanEnd can never fire. Flagged.
func dropCloser() {
	startSpan("leak") // want `closer returned by this call is discarded`
}

// loopReturn leaks the phase on a return from inside a loop: flagged.
func loopReturn(xs []int) error {
	bus.Emit(obs.Event{Type: obs.PhaseStart, Job: "j", Phase: "scan"})
	for _, x := range xs {
		if x < 0 {
			return errors.New("negative") // want `return without emitting obs\.PhaseEnd for the obs\.PhaseStart \("scan"\)`
		}
	}
	bus.Emit(obs.Event{Type: obs.PhaseEnd, Job: "j", Phase: "scan"})
	return nil
}

// identStart opens via a local event variable: still tracked, flagged
// on the early return.
func identStart(fail bool) error {
	ev := obs.Event{Type: obs.SpanStart, Span: "v"}
	bus.Emit(ev)
	if fail {
		return errors.New("boom") // want `return without emitting obs\.SpanEnd`
	}
	bus.Emit(obs.Event{Type: obs.SpanEnd, Span: "v"})
	return nil
}
