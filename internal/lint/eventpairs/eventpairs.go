// Package eventpairs checks that every obs.SpanStart / obs.PhaseStart
// emitted in a function is paired with the matching SpanEnd / PhaseEnd
// on every path out of that function — including early error returns.
//
// The observability pipeline (tracker, timeline, trace export) treats
// an unclosed span or phase as still running: critical-path analysis
// then attributes the whole job tail to it and the timeline renders an
// open interval. A Start whose End is skipped on an error return is
// the classic leak this analyzer exists to catch.
//
// Recognized closing idioms, modeled on the repo's code:
//
//   - an End emitted on the same path before the return
//   - defer bus.Emit(obs.Event{Type: obs.SpanEnd, ...})
//   - defer func() { ... Emit(SpanEnd) ... }()   (core.AttackPOI)
//   - defer span(...)()  where span is a "closer provider": a function
//     that returns a func() emitting the End (gepeto.span)
//
// A closer provider is itself exempt for the kinds its returned closure
// closes — its Start is intentionally closed by the caller invoking the
// closure. Calling a provider and discarding the closer is flagged.
//
// The walk is a conservative linear pass per function body: branches
// are explored with cloned state, loops and switches do not leak state
// into the continuation, and nested function literals are separate
// contexts (they run at a different time).
package eventpairs

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer checks Start/End pairing of obs span and phase events on
// all return paths.
var Analyzer = &analysis.Analyzer{
	Name: "eventpairs",
	Doc: "every obs.SpanStart/PhaseStart must be paired with its SpanEnd/PhaseEnd on " +
		"all paths out of the emitting function, including error returns; unclosed " +
		"intervals corrupt critical-path and timeline analysis",
	Run: run,
}

// evt is one span/phase start or end: kind "span" or "phase", phase
// holds the literal phase name or "*" when dynamic.
type evt struct {
	start bool
	kind  string
	phase string
}

// key is the open-interval identity an End must close.
func (e evt) key() string {
	if e.kind == "span" {
		return "span"
	}
	return "phase:" + e.phase
}

func describe(key string) (start, end string) {
	if key == "span" {
		return "obs.SpanStart", "obs.SpanEnd"
	}
	phase := strings.TrimPrefix(key, "phase:")
	if phase == "*" {
		return "obs.PhaseStart", "obs.PhaseEnd"
	}
	return "obs.PhaseStart (" + strconv.Quote(phase) + ")", "obs.PhaseEnd"
}

type checker struct {
	pass *analysis.Pass
	// providers maps a function to the kinds closed by the closer it
	// returns.
	providers map[*types.Func][]evt
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, providers: map[*types.Func][]evt{}}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if ends := c.returnedCloserEnds(fd.Body); len(ends) > 0 {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.providers[fn] = ends
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkContext(fd.Body)
		}
		// Function literals are separate execution contexts: a literal
		// run as a goroutine or callback must close what it opens.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkContext(lit.Body)
			}
			return true
		})
	}
	return nil
}

// returnedCloserEnds collects the End events emitted by function
// literals returned from body (not from nested literals' returns).
func (c *checker) returnedCloserEnds(body *ast.BlockStmt) []evt {
	var ends []evt
	noFuncLit(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if lit, ok := ast.Unparen(res).(*ast.FuncLit); ok {
				ends = append(ends, c.endsIn(lit.Body)...)
			}
		}
	})
	return ends
}

// endsIn collects End events emitted anywhere in body.
func (c *checker) endsIn(body *ast.BlockStmt) []evt {
	lits := c.collectVarLits(body)
	var ends []evt
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if e, ok := c.classifyEmit(call, lits); ok && !e.start {
				ends = append(ends, e)
			}
		}
		return true
	})
	return ends
}

// noFuncLit walks body calling fn on every node outside nested
// function literals.
func noFuncLit(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// collectVarLits maps local variables to the obs.Event composite
// literal assigned to them, so `ev := obs.Event{...}; bus.Emit(ev)`
// classifies like an inline literal. Nested literals keep their own
// scope.
func (c *checker) collectVarLits(body *ast.BlockStmt) map[*types.Var]*ast.CompositeLit {
	out := map[*types.Var]*ast.CompositeLit{}
	record := func(name *ast.Ident, val ast.Expr) {
		lit, ok := ast.Unparen(val).(*ast.CompositeLit)
		if !ok || !engineapi.IsObsEventType(c.pass.TypesInfo.TypeOf(lit)) {
			return
		}
		obj := c.pass.TypesInfo.Defs[name]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[name]
		}
		if v, ok := obj.(*types.Var); ok {
			out[v] = lit
		}
	}
	noFuncLit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i := range n.Lhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					record(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
	})
	return out
}

// classifyEmit recognizes a call as an obs event emission and returns
// the span/phase start-or-end it denotes.
func (c *checker) classifyEmit(call *ast.CallExpr, lits map[*types.Var]*ast.CompositeLit) (evt, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" || len(call.Args) != 1 {
		return evt{}, false
	}
	arg := ast.Unparen(call.Args[0])
	if !engineapi.IsObsEventType(c.pass.TypesInfo.TypeOf(arg)) {
		return evt{}, false
	}
	var lit *ast.CompositeLit
	switch arg := arg.(type) {
	case *ast.CompositeLit:
		lit = arg
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.Uses[arg].(*types.Var); ok {
			lit = lits[v]
		}
	}
	if lit == nil {
		return evt{}, false
	}
	var typ string
	phase := "*"
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch id.Name {
		case "Type":
			typ = engineapi.ObsEventConst(c.pass.TypesInfo, kv.Value)
		case "Phase":
			if bl, ok := ast.Unparen(kv.Value).(*ast.BasicLit); ok && bl.Kind == token.STRING {
				if s, err := strconv.Unquote(bl.Value); err == nil {
					phase = s
				}
			}
		}
	}
	switch typ {
	case "SpanStart":
		return evt{start: true, kind: "span"}, true
	case "SpanEnd":
		return evt{start: false, kind: "span"}, true
	case "PhaseStart":
		return evt{start: true, kind: "phase", phase: phase}, true
	case "PhaseEnd":
		return evt{start: false, kind: "phase", phase: phase}, true
	}
	return evt{}, false
}

// state is the walk's per-path view: currently open intervals and the
// kinds already guaranteed closed by a registered defer.
type state struct {
	open map[string]token.Pos
	dc   map[string]bool
}

func newState() *state {
	return &state{open: map[string]token.Pos{}, dc: map[string]bool{}}
}

func (s *state) clone() *state {
	n := newState()
	for k, v := range s.open {
		n.open[k] = v
	}
	for k, v := range s.dc {
		n.dc[k] = v
	}
	return n
}

// applyEnd closes the intervals e matches. A dynamic PhaseEnd closes
// every open phase; a literal one also closes a dynamically-opened
// phase.
func (s *state) applyEnd(e evt) {
	if e.kind == "span" {
		delete(s.open, "span")
		return
	}
	if e.phase == "*" {
		for k := range s.open {
			if strings.HasPrefix(k, "phase:") {
				delete(s.open, k)
			}
		}
		return
	}
	delete(s.open, "phase:"+e.phase)
	delete(s.open, "phase:*")
}

// deferClosed reports whether an interval with this key is already
// covered by a registered defer (or provider exemption).
func (s *state) deferClosed(key string) bool {
	if s.dc[key] {
		return true
	}
	if strings.HasPrefix(key, "phase:") {
		if s.dc["phase:*"] {
			return true
		}
		if strings.TrimPrefix(key, "phase:") == "*" {
			for k := range s.dc {
				if strings.HasPrefix(k, "phase:") {
					return true
				}
			}
		}
	}
	return false
}

// walker walks one function body.
type walker struct {
	c    *checker
	lits map[*types.Var]*ast.CompositeLit
}

// checkContext walks one function or literal body. If the body returns
// a closer (it is a provider), the kinds that closer closes are exempt:
// the Start is closed by the caller running the closure.
func (c *checker) checkContext(body *ast.BlockStmt) {
	w := &walker{c: c, lits: c.collectVarLits(body)}
	st := newState()
	for _, e := range c.returnedCloserEnds(body) {
		st.dc[e.key()] = true
	}
	terminated := w.stmts(body.List, st)
	if !terminated {
		keys := sortedKeys(st.open)
		for _, k := range keys {
			startName, endName := describe(k)
			c.pass.Reportf(st.open[k], "%s is never paired with %s before the function exits",
				startName, endName)
		}
	}
}

func sortedKeys(m map[string]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reportReturn flags intervals still open at a return statement.
func (w *walker) reportReturn(st *state, pos token.Pos) {
	for _, k := range sortedKeys(st.open) {
		startName, endName := describe(k)
		line := w.c.pass.Fset.Position(st.open[k]).Line
		w.c.pass.Reportf(pos, "return without emitting %s for the %s at line %d",
			endName, startName, line)
	}
}

// stmts walks a statement list, mutating st along the path. It returns
// true when the list definitely terminates the function (every path
// returns).
func (w *walker) stmts(list []ast.Stmt, st *state) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, st *state) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.exprStmt(s, st)
	case *ast.AssignStmt:
		w.assignStmt(s, st)
	case *ast.DeferStmt:
		for _, e := range w.deferEnds(s) {
			st.applyEnd(e)
			st.dc[e.key()] = true
		}
	case *ast.ReturnStmt:
		w.reportReturn(st, s.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; stop the linear
		// walk of this path without reporting.
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		then := st.clone()
		tTerm := w.stmts(s.Body.List, then)
		els := st.clone()
		eTerm := false
		if s.Else != nil {
			eTerm = w.stmt(s.Else, els)
		}
		switch {
		case tTerm && eTerm:
			return true
		case tTerm:
			*st = *els
		case eTerm:
			*st = *then
		default:
			// Both branches fall through: keep only intervals open on
			// both, so correlated conditions cannot produce false
			// positives at later returns.
			st.open = intersectPos(then.open, els.open)
			st.dc = intersectBool(then.dc, els.dc)
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmts(s.Body.List, st.clone())
	case *ast.RangeStmt:
		w.stmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		return w.clauses(s.Body, st, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		return w.clauses(s.Body, st, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		// Control only leaves a select through one of its clauses.
		return w.clauses(s.Body, st, true)
	}
	return false
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// clauses walks each case body with cloned state; the switch
// terminates the function only when every clause does and the clause
// set covers all inputs.
func (w *walker) clauses(body *ast.BlockStmt, st *state, covered bool) bool {
	allTerm := true
	any := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		default:
			continue
		}
		any = true
		if !w.stmts(stmts, st.clone()) {
			allTerm = false
		}
	}
	return covered && any && allTerm
}

func (w *walker) exprStmt(s *ast.ExprStmt, st *state) {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if ends := w.providerEnds(call); len(ends) > 0 {
		names := make([]string, 0, len(ends))
		for _, e := range ends {
			_, endName := describe(e.key())
			names = append(names, endName)
		}
		w.c.pass.Reportf(s.Pos(),
			"closer returned by this call is discarded: it emits %s and must run "+
				"(typically defer ...())", strings.Join(names, ", "))
		return
	}
	if e, ok := w.c.classifyEmit(call, w.lits); ok {
		if e.start {
			if !st.deferClosed(e.key()) {
				st.open[e.key()] = call.Pos()
			}
		} else {
			st.applyEnd(e)
		}
	}
}

// assignStmt flags provider closers assigned to the blank identifier.
func (w *walker) assignStmt(s *ast.AssignStmt, st *state) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			if ends := w.providerEnds(call); len(ends) > 0 {
				_, endName := describe(ends[0].key())
				w.c.pass.Reportf(rhs.Pos(),
					"closer returned by this call is discarded: it emits %s and must run", endName)
			}
		}
	}
}

// providerEnds returns the End kinds for a call to a closer provider.
func (w *walker) providerEnds(call *ast.CallExpr) []evt {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := w.c.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return w.c.providers[fn]
}

// deferEnds returns the End kinds a defer statement guarantees at
// function exit.
func (w *walker) deferEnds(s *ast.DeferStmt) []evt {
	call := s.Call
	// defer func() { ... Emit(End) ... }()
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return w.c.endsIn(lit.Body)
	}
	// defer span(...)()
	if inner, ok := ast.Unparen(call.Fun).(*ast.CallExpr); ok {
		return w.providerEnds(inner)
	}
	// defer bus.Emit(obs.Event{Type: obs.SpanEnd, ...})
	if e, ok := w.c.classifyEmit(call, w.lits); ok && !e.start {
		return []evt{e}
	}
	return nil
}

func intersectPos(a, b map[string]token.Pos) map[string]token.Pos {
	out := map[string]token.Pos{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func intersectBool(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
