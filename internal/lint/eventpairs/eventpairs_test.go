package eventpairs_test

import (
	"testing"

	"repro/internal/lint/eventpairs"
	"repro/internal/lint/linttest"
)

func TestEventPairs(t *testing.T) {
	linttest.Run(t, eventpairs.Analyzer, "pairs")
}
