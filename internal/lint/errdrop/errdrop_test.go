package errdrop_test

import (
	"testing"

	"repro/internal/lint/errdrop"
	"repro/internal/lint/linttest"
)

func TestErrDrop(t *testing.T) {
	linttest.Run(t, errdrop.Analyzer, "drop")
}
