// Package drop exercises the errdrop analyzer: discarded errors from
// the DFS/obs/recordio storage surface are flagged; handled errors and
// non-storage calls are accepted.
package drop

import (
	"context"
	"strconv"
	"time"

	"repro/internal/cluster/rpc"
	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/recordio"
)

func dropDFS(fs *dfs.FileSystem, path string) {
	fs.Delete(path)             // want `error returned by \(\*dfs\.FileSystem\)\.Delete is discarded`
	_ = fs.Delete(path)         // want `error returned by \(\*dfs\.FileSystem\)\.Delete is assigned to _`
	data, _ := fs.ReadAll(path) // want `error returned by \(\*dfs\.FileSystem\)\.ReadAll is assigned to _`
	_ = data
	go fs.Delete(path)    // want `unobservable in a go statement`
	defer fs.Delete(path) // want `unobservable in a defer`
}

func handleDFS(fs *dfs.FileSystem, path string) error {
	if err := fs.Delete(path); err != nil {
		return err
	}
	data, err := fs.ReadAll(path)
	if err != nil {
		return err
	}
	_ = data
	return nil
}

func dropObs(store obs.FS, hist *obs.History, rec obs.JobRecord) {
	store.Create("p", nil, "") // want `error returned by \(obs\.FS\)\.Create is discarded`
	_, _ = hist.Save(rec)      // want `error returned by \(\*obs\.History\)\.Save is assigned to _`
	id, _ := hist.Save(rec)    // want `error returned by \(\*obs\.History\)\.Save is assigned to _`
	_ = id
}

func handleObs(store obs.FS, hist *obs.History, rec obs.JobRecord) error {
	if err := store.Create("p", nil, ""); err != nil {
		return err
	}
	id, err := hist.Save(rec)
	_ = id
	return err
}

func dropScan(data []byte) {
	recordio.ScanAll(data, func(k, v string) error { return nil }) // want `error returned by recordio\.ScanAll is discarded`
}

func handleScan(data []byte) error {
	return recordio.ScanAll(data, func(k, v string) error { return nil })
}

func dropRPC(tr rpc.Transport, mem *rpc.MemNetwork, u *rpc.Unreliable, rs *rpc.RemoteStore, st dfs.Store) {
	tr.Call("a", "m", nil, nil)        // want `error returned by \(rpc\.Transport\)\.Call is discarded`
	_ = mem.Call("a", "m", nil, nil)   // want `error returned by \(\*rpc\.MemNetwork\)\.Call is assigned to _`
	go u.Call("a", "m", nil, nil)      // want `unobservable in a go statement`
	rs.Create("p", nil, "")            // want `error returned by \(\*rpc\.RemoteStore\)\.Create is discarded`
	st.Create("p", nil, "")            // want `error returned by \(dfs\.Store\)\.Create is discarded`
	data, _ := st.ReadRange("p", 0, 1) // want `error returned by \(dfs\.Store\)\.ReadRange is assigned to _`
	_ = data
	rpc.Serve(nil, nil) // want `error returned by rpc\.Serve is discarded`
}

func handleRPC(tr rpc.Transport, rs *rpc.RemoteStore, st dfs.Store) error {
	if err := tr.Call("a", "m", nil, nil); err != nil {
		return err
	}
	if err := rs.Create("p", nil, ""); err != nil {
		return err
	}
	data, err := st.ReadRange("p", 0, 1)
	_ = data
	return err
}

func dropCluster(jt *rpc.Jobtracker, w *rpc.Worker, srv *obs.StatusServer) {
	jt.WaitForWorkers(4, time.Second)        // want `error returned by \(\*rpc\.Jobtracker\)\.WaitForWorkers is discarded`
	go w.Run()                               // want `unobservable in a go statement`
	_ = srv.Close()                          // want `error returned by \(\*obs\.StatusServer\)\.Close is assigned to _`
	defer srv.Shutdown(context.Background()) // want `unobservable in a defer`
	_, _ = obs.NewLevelLogger("debug")       // want `error returned by obs\.NewLevelLogger is assigned to _`
}

func handleCluster(jt *rpc.Jobtracker, w *rpc.Worker, srv *obs.StatusServer, fed *rpc.Federation) error {
	if err := jt.WaitForWorkers(4, time.Second); err != nil {
		return err
	}
	go func() {
		if err := w.Run(); err != nil {
			panic(err)
		}
	}()
	logger, err := obs.NewLevelLogger("info")
	if err != nil {
		return err
	}
	_ = logger
	// Federation.Apply reports staleness as a bool, not an error: out
	// of errdrop's scope even though the type is on the watch list.
	fed.Apply("n1", 7)
	return srv.Shutdown(context.Background())
}

// otherPackages is out of scope: strconv is not a storage layer.
func otherPackages(s string) {
	strconv.Atoi(s)
	n, _ := strconv.Atoi(s)
	_ = n
}
