// Package errdrop flags discarded errors from the storage and
// transport layers.
//
// DFS operations, obs file-store/history writes, and recordio scans
// are the engine's durability boundary: a swallowed error there means
// committed output or job history silently missing. The RPC transport
// under the out-of-process backend is the same kind of boundary — a
// dropped Call error is a control-plane message (completion,
// heartbeat, DFS write) that silently never happened. The analyzer
// flags calls on *dfs.FileSystem, dfs.Store, obs.FS, *obs.History,
// recordio.Writer, rpc.Transport (and its implementations),
// *rpc.RemoteStore, plus recordio and rpc package functions, whose
// error result is dropped — as a bare expression statement, assigned
// to the blank identifier, or made unobservable by go/defer.
//
// Errors that must not fail the caller should still be surfaced:
// counted, logged, or stored for a later accessor — not discarded.
package errdrop

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer flags dropped errors from DFS, obs store/history, and
// recordio calls.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "errors from dfs.FileSystem, obs.FS, obs.History and recordio calls are the " +
		"engine's durability signal and must be handled or surfaced, not discarded",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if name, ok := flaggedErrCall(pass.TypesInfo, call); ok {
						pass.Reportf(call.Pos(), "error returned by %s is discarded; handle it or surface it", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := flaggedErrCall(pass.TypesInfo, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "error returned by %s is unobservable in a go statement; check it in the goroutine", name)
				}
			case *ast.DeferStmt:
				if name, ok := flaggedErrCall(pass.TypesInfo, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "error returned by %s is unobservable in a defer; wrap it in a closure that checks it", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags error results assigned to the blank identifier.
func checkAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	report := func(call *ast.CallExpr, name string) {
		pass.Reportf(call.Pos(), "error returned by %s is assigned to _; handle it or surface it", name)
	}
	// a, err := f() — one call expanding to all LHS positions.
	if len(n.Rhs) == 1 {
		call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, name := flaggedCallee(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() != len(n.Lhs) {
			return
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if isErrorType(sig.Results().At(i).Type()) && isBlank(n.Lhs[i]) {
				report(call, name)
				return
			}
		}
		return
	}
	// a, b := f(), g() — position-matched single-result calls.
	if len(n.Rhs) == len(n.Lhs) {
		for i, rhs := range n.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, name := flaggedCallee(pass.TypesInfo, call)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type()) && isBlank(n.Lhs[i]) {
				report(call, name)
			}
		}
	}
}

// flaggedErrCall reports whether call targets the storage surface and
// returns an error (which the caller is discarding).
func flaggedErrCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, name := flaggedCallee(info, call)
	if fn == nil {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return name, true
		}
	}
	return "", false
}

// flaggedCallee resolves the called function when it belongs to the
// watched storage surface, along with a display name.
func flaggedCallee(info *types.Info, call *ast.CallExpr) (*types.Func, string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, ""
	}
	if recv := sig.Recv(); recv != nil {
		for _, w := range []struct{ name, path, disp string }{
			{"FileSystem", engineapi.DFSPath, "(*dfs.FileSystem)"},
			{"Store", engineapi.DFSPath, "(dfs.Store)"},
			{"FS", engineapi.ObsPath, "(obs.FS)"},
			{"History", engineapi.ObsPath, "(*obs.History)"},
			{"Writer", engineapi.RecordioPath, "(*recordio.Writer)"},
			// The RPC transport layer: a dropped transport error means a
			// lost control-plane message (a completion, a heartbeat, a
			// DFS write) nobody will retry.
			{"Transport", engineapi.RPCPath, "(rpc.Transport)"},
			{"RemoteStore", engineapi.RPCPath, "(*rpc.RemoteStore)"},
			{"MemNetwork", engineapi.RPCPath, "(*rpc.MemNetwork)"},
			{"TCPNetwork", engineapi.RPCPath, "(*rpc.TCPNetwork)"},
			{"Unreliable", engineapi.RPCPath, "(*rpc.Unreliable)"},
			// The cluster services themselves: a swallowed
			// WaitForWorkers or Run error is a jobtracker/worker that
			// silently never came up, and a dropped StatusServer
			// shutdown error is a listener leaked past teardown. The
			// Federation is watched for the same reason even though its
			// current merge surface reports staleness as a bool.
			{"Jobtracker", engineapi.RPCPath, "(*rpc.Jobtracker)"},
			{"Worker", engineapi.RPCPath, "(*rpc.Worker)"},
			{"Federation", engineapi.RPCPath, "(*rpc.Federation)"},
			{"StatusServer", engineapi.ObsPath, "(*obs.StatusServer)"},
		} {
			if engineapi.NamedFrom(recv.Type(), w.name, w.path) != nil {
				return fn, w.disp + "." + fn.Name()
			}
		}
		return nil, ""
	}
	if engineapi.FromPkg(fn, engineapi.RecordioPath) {
		return fn, "recordio." + fn.Name()
	}
	if engineapi.FromPkg(fn, engineapi.RPCPath) {
		return fn, "rpc." + fn.Name()
	}
	if engineapi.FromPkg(fn, engineapi.ObsPath) {
		return fn, "obs." + fn.Name()
	}
	return nil, ""
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
