package gobwire_test

import (
	"testing"

	"repro/internal/lint/gobwire"
	"repro/internal/lint/linttest"
)

// TestGobWire loads the using and the defining fixture packages in one
// RunMulti shot: the analyzer must see the Transport.Call site in
// `wire` and traverse field types declared in `wire/sub`.
func TestGobWire(t *testing.T) {
	linttest.RunMulti(t, gobwire.Analyzer, "wire", "wire/sub")
}
