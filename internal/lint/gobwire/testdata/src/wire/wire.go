// Package wire exercises the gobwire analyzer: request/reply types
// shipped through rpc.Transport must gob-round-trip faithfully. The
// wire/sub package supplies types defined outside this package, so the
// analyzer's cross-package traversal is on the hook too.
package wire

import (
	"time"

	"repro/internal/cluster/rpc"
	"wire/sub"
)

type goodArgs struct {
	Name  string
	N     int
	When  time.Time // GobEncoder: owns its wire form
	Parts []sub.Part
	Tags  map[string]int64
}

type goodReply struct {
	OK   bool
	Dur  time.Duration
	Rows [][]sub.Part
}

type badArgs struct {
	Name   string
	secret string
	cache  map[string]int
}

type badReply struct {
	Done   func()
	Events chan int
	Any    interface{}
}

type nestedArgs struct {
	Inner sub.Leaky
	More  []sub.Leaky
}

func shipGood(tr rpc.Transport) error {
	var reply goodReply
	return tr.Call("a", "m", &goodArgs{}, &reply)
}

func shipBad(tr rpc.Transport) error {
	var reply badReply
	return tr.Call("a", "m",
		&badArgs{}, // want `badArgs\.secret is unexported` `badArgs\.cache is unexported`
		&reply,     // want `badReply\.Done is a func` `badReply\.Events is a chan` `badReply\.Any is an interface`
	)
}

func shipNested(tr rpc.Transport) error {
	var reply goodReply
	return tr.Call("a", "m",
		&nestedArgs{}, // want `Leaky\.count is unexported`
		&reply,
	)
}

// shipOpaque forwards `any` args like the instrumented transport
// wrapper: the static type is an interface, so the crossing is checked
// at the outer caller, not here.
func shipOpaque(tr rpc.Transport, args, reply any) error {
	return tr.Call("a", "m", args, reply)
}
