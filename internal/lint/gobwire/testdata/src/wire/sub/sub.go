// Package sub supplies wire types defined outside the calling
// package, exercising gobwire's cross-package type traversal.
package sub

// Part is a clean wire struct.
type Part struct {
	Key string
	N   int64
}

// Leaky carries an unexported counter that gob silently drops.
type Leaky struct {
	Name  string
	count int
}
