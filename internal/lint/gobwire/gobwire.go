// Package gobwire checks that every request/reply type crossing the
// rpc transport gob-round-trips faithfully.
//
// gob's failure modes at this boundary are asymmetric: a func or chan
// field fails the encode loudly, but an unexported field is silently
// dropped — the value arrives zeroed on the far side, which for a
// federated metrics snapshot or a task spec means a quietly corrupted
// result rather than a crash. The paper's whole contract is that the
// distributed run returns byte-identical answers; a field gob forgot
// is exactly the bug class that breaks it undetectably.
//
// At every Transport.Call(addr, method, args, reply) site, the static
// types of args and reply are traversed — through named structs,
// pointers, slices, arrays and maps, across package boundaries — and
// each reachable struct must carry exported fields only, none of them
// func, chan, or interface typed. Types that implement gob.GobEncoder
// or encoding.BinaryMarshaler own their wire form and are exempt
// (time.Time). Arguments whose static type is itself an interface
// (the `args, reply any` of a transport wrapper forwarding opaquely)
// are skipped: the concrete crossing is checked at the outer call
// site, where the type is visible.
package gobwire

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer checks gob-faithfulness of types crossing rpc.Transport.
var Analyzer = &analysis.Analyzer{
	Name: "gobwire",
	Doc: "request/reply types crossing rpc.Transport must gob-round-trip faithfully: " +
		"exported fields only, no func/chan/interface fields — gob silently drops " +
		"unexported fields, zeroing them on the far side",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, reported: map[string]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 4 || !engineapi.TransportCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args[2:] {
				c.checkArg(arg)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// reported dedups (position, message): one field can be reachable
	// through several traversal paths of the same argument.
	reported map[string]bool
}

// checkArg validates the static type of one args/reply argument.
func (c *checker) checkArg(arg ast.Expr) {
	t := c.pass.TypesInfo.TypeOf(arg)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		// An opaque forward (`args any`): the concrete type crossed at
		// the caller's call site, where it is checked.
		return
	}
	c.validate(arg.Pos(), t, map[types.Type]bool{})
}

// validate walks t reporting gob-unfaithful struct fields.
func (c *checker) validate(pos token.Pos, t types.Type, seen map[types.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	if engineapi.GobSelfEncoding(t) {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		c.validate(pos, u.Elem(), seen)
	case *types.Slice:
		c.validate(pos, u.Elem(), seen)
	case *types.Array:
		c.validate(pos, u.Elem(), seen)
	case *types.Map:
		c.validate(pos, u.Key(), seen)
		c.validate(pos, u.Elem(), seen)
	case *types.Struct:
		owner := ownerName(t)
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				c.report(pos, "field %s.%s is unexported: gob silently drops it, so it crosses rpc.Transport zeroed; use an exported field or a wire-only mirror type",
					owner, f.Name())
				// The data never crosses; no point traversing into it.
				continue
			}
			c.checkFieldType(pos, owner, f, seen)
		}
	}
}

// checkFieldType classifies one exported field's type and recurses.
func (c *checker) checkFieldType(pos token.Pos, owner string, f *types.Var, seen map[types.Type]bool) {
	ft := f.Type()
	if engineapi.GobSelfEncoding(ft) {
		return
	}
	switch ft.Underlying().(type) {
	case *types.Signature:
		c.report(pos, "field %s.%s is a func: gob cannot encode it across rpc.Transport; ship a name or wire form instead",
			owner, f.Name())
	case *types.Chan:
		c.report(pos, "field %s.%s is a chan: gob cannot encode it across rpc.Transport; channels do not cross process boundaries",
			owner, f.Name())
	case *types.Interface:
		c.report(pos, "field %s.%s is an interface: gob needs registered concrete types and the rpc wire contract forbids it; use a concrete wire type",
			owner, f.Name())
	default:
		c.validate(pos, ft, seen)
	}
}

// ownerName names the struct owning a field for diagnostics: the named
// type when there is one, else the literal struct form.
func ownerName(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return ownerName(types.Unalias(t))
	case *types.Pointer:
		return ownerName(t.Elem())
	}
	return "struct"
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d|%s", pos, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, "%s", msg)
}
