package linttest_test

import (
	"go/ast"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/linttest"
)

// boomcall is a minimal analyzer for exercising the harness itself: it
// flags every call to a function named Boom/boom, so fixtures can
// place diagnostics on exact lines without any engine machinery.
var boomcall = &analysis.Analyzer{
	Name: "boomcall",
	Doc:  "flags calls to functions named Boom (linttest harness self-test)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "Boom" || fun.Name == "boom" {
						pass.Reportf(call.Pos(), "call to %s", fun.Name)
					}
				case *ast.SelectorExpr:
					if fun.Sel.Name == "Boom" {
						pass.Reportf(call.Pos(), "call to Boom")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestRunSingle covers the one-package path: a multi-file fixture
// package whose want comments span both files.
func TestRunSingle(t *testing.T) {
	linttest.Run(t, boomcall, "multi/b")
}

// TestRunMulti covers the combined load: two target packages checked
// in one shot, where multi/b imports multi/a, and wants from every
// target file must match against the pooled diagnostics.
func TestRunMulti(t *testing.T) {
	linttest.RunMulti(t, boomcall, "multi/a", "multi/b")
}
