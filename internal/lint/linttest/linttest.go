// Package linttest runs lint analyzers over fixture packages and
// checks their diagnostics against "// want" comment expectations —
// the analysistest workflow, reimplemented over this repo's loader.
//
// Fixture layout mirrors analysistest: the test's own testdata/src
// holds the fixture packages, and the shared internal/lint/testdata/src
// holds stub versions of the engine packages (repro/internal/...)
// fixtures may import. A want comment names one or more quoted
// regexps that must each match a diagnostic reported on that line:
//
//	emit(k, v) // want `map iteration order`
package linttest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Run loads each fixture package from the test's testdata (plus the
// suite-shared stub root) and verifies the analyzer's diagnostics
// against the package's want comments. Each package loads and checks
// independently; use RunMulti when fixtures must see each other.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	roots := fixtureRoots(t)
	for _, pkg := range pkgs {
		runPkgs(t, roots, a, pkg)
	}
}

// RunMulti loads all the fixture packages in one shot — so they may
// import each other, and an analyzer that follows types across package
// boundaries (gobwire) sees both the defining and the using side —
// then runs the analyzer over every named package and checks the
// combined diagnostics against the combined want comments.
func RunMulti(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	runPkgs(t, fixtureRoots(t), a, pkgs...)
}

// fixtureRoots locates the fixture source roots: the test's own
// testdata/src plus the suite-shared stub root one level up.
func fixtureRoots(t *testing.T) []string {
	t.Helper()
	var roots []string
	for _, r := range []string{
		filepath.Join("testdata", "src"),
		filepath.Join("..", "testdata", "src"),
	} {
		if st, err := os.Stat(r); err == nil && st.IsDir() {
			abs, err := filepath.Abs(r)
			if err != nil {
				t.Fatal(err)
			}
			roots = append(roots, abs)
		}
	}
	if len(roots) == 0 {
		t.Fatal("linttest: no testdata/src fixture root found")
	}
	return roots
}

func runPkgs(t *testing.T, roots []string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	res, err := loader.LoadFixtures(roots, pkgPaths...)
	if err != nil {
		t.Fatalf("%s: loading fixtures %v: %v", a.Name, pkgPaths, err)
	}
	targets := res.Targets()
	if len(targets) != len(pkgPaths) {
		t.Fatalf("%s: fixtures %v resolved to %d target packages", a.Name, pkgPaths, len(targets))
	}
	var wants []want
	var diags []analysis.Diagnostic
	for _, target := range targets {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      res.Fset,
			Files:     target.Files,
			Pkg:       target.Types,
			TypesInfo: target.Info,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed on %s: %v", a.Name, target.PkgPath, err)
		}
		diags = append(diags, pass.Diagnostics()...)
		wants = append(wants, collectWants(t, res, target)...)
	}
	matchWants(t, a, wants, diags)
}

// matchWants pairs diagnostics with want expectations by file base
// name and line, reporting both unexpected diagnostics and unmatched
// wants.
func matchWants(t *testing.T, a *analysis.Analyzer, wants []want, diags []analysis.Diagnostic) {
	t.Helper()
	matched := make([]bool, len(wants))
	for _, d := range diags {
		key := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		ok := false
		for i, w := range wants {
			if w.posKey == key && !matched[i] && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s",
				a.Name, key.file, key.line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
				a.Name, w.re, w.file, w.line)
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	posKey
	re *regexp.Regexp
}

// wantRx splits a want comment's payload into quoted regexps
// (double-quoted Go strings or backquoted raw strings).
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses `// want "re"...` comments from the target
// package's fixture files.
func collectWants(t *testing.T, res *loader.Result, target *loader.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range target.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWant(t, res, c)...)
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, res *loader.Result, c *ast.Comment) []want {
	text := strings.TrimPrefix(c.Text, "//")
	idx := strings.Index(text, "want ")
	if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
		return nil
	}
	pos := res.Fset.Position(c.Pos())
	payload := text[idx+len("want "):]
	lits := wantRx.FindAllString(payload, -1)
	if len(lits) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
	}
	var wants []want
	for _, lit := range lits {
		s, err := unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
		}
		wants = append(wants, want{posKey{filepath.Base(pos.Filename), pos.Line}, re})
	}
	return wants
}

func unquote(lit string) (string, error) {
	if strings.HasPrefix(lit, "`") {
		if len(lit) < 2 {
			return "", fmt.Errorf("unterminated raw string")
		}
		return lit[1 : len(lit)-1], nil
	}
	return strconv.Unquote(lit)
}
