// Package b is the using side of the linttest multi-package harness
// fixture: it imports multi/a and spreads wants across two files.
package b

import "multi/a"

func callImported() {
	a.Boom() // want `call to Boom`
}
