package b

func boom() {}

func callLocal() {
	boom() // want `call to boom`
}

func quiet() {}
