// Package a is the defining side of the linttest multi-package
// harness fixture: it exports Boom for multi/b to call.
package a

// Boom exists to be flagged by the harness's boomcall analyzer.
func Boom() {}

func callLocal() {
	Boom() // want `call to Boom`
}
