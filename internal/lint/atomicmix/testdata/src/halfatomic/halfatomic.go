// Package halfatomic exercises the atomicmix analyzer: words accessed
// through sync/atomic anywhere must be accessed atomically everywhere.
package halfatomic

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
	total  int64
}

func (c *counter) hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) readHits() int64 {
	return c.hits // want `c\.hits is accessed atomically elsewhere`
}

func (c *counter) resetHits() {
	c.hits = 0 // want `c\.hits is accessed atomically elsewhere`
}

func (c *counter) aliasHits() *int64 {
	return &c.hits // want `c\.hits is accessed atomically elsewhere`
}

// misses is plain everywhere: consistent, so out of scope (the race
// detector's business, not this analyzer's).
func (c *counter) miss() {
	c.misses++
}

// total is atomic everywhere: the discipline this analyzer enforces.
func (c *counter) bumpTotal() {
	atomic.AddInt64(&c.total, 1)
}

func (c *counter) readTotal() int64 {
	return atomic.LoadInt64(&c.total)
}

func (c *counter) swapTotal(v int64) int64 {
	return atomic.SwapInt64(&c.total, v)
}

var generation uint64

func bumpGeneration() {
	atomic.AddUint64(&generation, 1)
}

func readGeneration() uint64 {
	return generation // want `generation is accessed atomically elsewhere`
}

// typedForm uses the method forms, which the type system already keeps
// honest; atomicmix has nothing to add.
type typedForm struct {
	n atomic.Int64
}

func (t *typedForm) bump() { t.n.Add(1) }

func (t *typedForm) read() int64 { return t.n.Load() }
