// Package atomicmix flags the half-atomic race: a struct field or
// package-level variable that is accessed through sync/atomic anywhere
// in the package must be accessed atomically everywhere in the
// package.
//
// Mixing `atomic.AddInt64(&c.n, 1)` with a plain `c.n` read is not a
// smaller race than two plain accesses — it is the same undefined
// behavior with better camouflage, and it is exactly the latent bug
// PR 9 fixed by hand in the metrics registry. The repo's convention is
// the atomic.Int64-style typed forms, which make mixing impossible;
// this analyzer guards the word-function form for code that still
// uses it.
//
// The first pass collects every field/global whose address is taken by
// a sync/atomic word function (Add/Load/Store/Swap/CompareAndSwap);
// the second flags every other mention of those objects, including
// taking their address for non-atomic purposes (aliasing a word out of
// the atomic protocol is how the plain access sneaks back in). Local
// variables are out of scope: sharing one across goroutines already
// requires the address to escape through a watched field or global.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer flags non-atomic access to fields that are accessed
// atomically elsewhere in the package.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a struct field or package variable accessed through sync/atomic anywhere must " +
		"be accessed atomically everywhere; one plain read beside an atomic.Add is still " +
		"a data race",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: find the atomically-accessed words and remember the exact
	// identifier nodes that name them inside atomic calls (sanctioned
	// uses).
	watched := map[*types.Var]bool{}
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !engineapi.AtomicFuncCall(info, call) {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if id := wordIdent(un.X); id != nil {
				if v := wordVar(pass, id); v != nil {
					watched[v] = true
					sanctioned[id] = true
				}
			}
			return true
		})
	}
	if len(watched) == 0 {
		return nil
	}

	// Pass 2: every other mention of a watched word is a plain access.
	for _, f := range pass.Files {
		reported := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if v := wordVar(pass, n.Sel); v != nil && watched[v] && !sanctioned[n.Sel] && !reported[n.Sel] {
					reported[n.Sel] = true
					pass.Reportf(n.Pos(),
						"%s is accessed atomically elsewhere in this package; this plain access races with those atomics (use sync/atomic here too)",
						types.ExprString(n))
				}
			case *ast.Ident:
				if reported[n] || sanctioned[n] {
					return true
				}
				if v := wordVar(pass, n); v != nil && watched[v] && !v.IsField() {
					reported[n] = true
					pass.Reportf(n.Pos(),
						"%s is accessed atomically elsewhere in this package; this plain access races with those atomics (use sync/atomic here too)",
						n.Name)
				}
			}
			return true
		})
	}
	return nil
}

// wordIdent returns the identifier naming the addressed word: the Sel
// of a field selector, or a bare identifier.
func wordIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.Ident:
		return e
	}
	return nil
}

// wordVar resolves id to a watched-candidate variable: a struct field,
// or a package-level var of this package.
func wordVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	// Only uses count: the declaration site itself (a Defs entry) is
	// neither an access nor a race.
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if v.IsField() {
		return v
	}
	if v.Parent() == pass.Pkg.Scope() {
		return v
	}
	return nil
}
