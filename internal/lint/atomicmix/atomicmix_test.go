package atomicmix_test

import (
	"testing"

	"repro/internal/lint/atomicmix"
	"repro/internal/lint/linttest"
)

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, atomicmix.Analyzer, "halfatomic")
}
