package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// TestRepoIsClean runs the whole analyzer suite over the repository,
// the same gate CI applies via cmd/gepetolint. A violation introduced
// anywhere in the engine fails the normal test run, not just the lint
// step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	res, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	targets := res.Targets()
	if len(targets) < 15 {
		t.Fatalf("suspiciously few packages loaded: %d", len(targets))
	}
	for _, pkg := range targets {
		for _, a := range lint.Suite() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.Diagnostics() {
				t.Errorf("%s", d)
			}
		}
	}
}

// TestSuiteStable pins the suite contents: dropping an analyzer from
// the registry silently would gut the CI gate.
func TestSuiteStable(t *testing.T) {
	want := []string{
		"atomicmix", "ctxflow", "emitretain", "errdrop", "eventpairs",
		"gobwire", "lockheld", "rawkeyorder", "taskdeterminism",
	}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("%s: incomplete analyzer (missing Doc or Run)", a.Name)
		}
	}
}
