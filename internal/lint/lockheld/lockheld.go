// Package lockheld flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held.
//
// The cluster plane's services (jobtracker, worker, federation,
// status) all follow the same discipline: take the lock, copy or
// mutate the shared view, release, then do the slow thing — an RPC
// Call, a channel handoff, a DFS read. Blocking inside the critical
// section instead turns one slow peer into a whole-service stall (the
// heartbeat handler queues behind a stuck completion, loss detection
// fires, and a healthy worker gets fenced). The blocking operations
// recognized are the ones that actually appear on these paths:
// rpc Transport.Call, channel send/receive (including range and
// blocking select), time.Sleep, sync.WaitGroup.Wait, and dfs.Store /
// *dfs.FileSystem / *rpc.RemoteStore I/O. sync.Cond.Wait is exempt —
// releasing the lock is its contract.
//
// The walk is the same conservative linear pass eventpairs uses:
// branches are explored with cloned lock-sets and re-merged by
// intersection, so both the `mu.Unlock(); call(); mu.Lock()` window
// idiom and `defer mu.Unlock()` (which holds to function exit — that
// is the point) are modeled. Nested function literals are separate
// contexts: a goroutine body does not inherit the spawner's locks.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer flags blocking operations inside mutex critical sections.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "no blocking operation (rpc Transport.Call, channel send/receive, time.Sleep, " +
		"WaitGroup.Wait, dfs.Store I/O) while a sync.Mutex/RWMutex is held; a blocked " +
		"critical section stalls every other user of the lock, including heartbeat and " +
		"completion handlers",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkBody(fd.Body)
			}
		}
		// Function literals are separate execution contexts: locks held
		// where the literal is defined are not (necessarily) held where
		// it runs, and vice versa.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkBody(lit.Body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// state is the per-path lock view: lock expression → position of the
// Lock call that acquired it.
type state struct {
	held map[string]token.Pos
}

func newState() *state { return &state{held: map[string]token.Pos{}} }

func (s *state) clone() *state {
	n := newState()
	for k, v := range s.held {
		n.held[k] = v
	}
	return n
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	w := &walker{c: c}
	w.stmts(body.List, newState())
}

type walker struct {
	c *checker
}

// report flags one blocking operation under the currently held locks.
func (w *walker) report(st *state, pos token.Pos, op string) {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	first := w.c.pass.Fset.Position(st.held[keys[0]])
	w.c.pass.Reportf(pos,
		"blocking %s while %s is held (locked at line %d); release the lock before blocking or shrink the critical section",
		op, strings.Join(keys, ", "), first.Line)
}

// blockingCall classifies a call as one of the watched blocking
// operations.
func (w *walker) blockingCall(call *ast.CallExpr) (string, bool) {
	info := w.c.pass.TypesInfo
	switch {
	case engineapi.TransportCall(info, call):
		return "rpc Transport.Call", true
	case engineapi.TimeSleep(info, call):
		return "time.Sleep", true
	case engineapi.WaitGroupWait(info, call):
		return "sync.WaitGroup.Wait", true
	}
	if name, ok := engineapi.StoreIOCall(info, call); ok {
		return name + " I/O", true
	}
	return "", false
}

// checkExpr scans one evaluated expression tree for blocking
// operations, skipping nested function literals (they run later).
func (w *walker) checkExpr(e ast.Expr, st *state) {
	if e == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(st, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if op, ok := w.blockingCall(n); ok {
				w.report(st, n.Pos(), op)
			}
		}
		return true
	})
}

func (w *walker) checkExprs(st *state, exprs ...ast.Expr) {
	for _, e := range exprs {
		w.checkExpr(e, st)
	}
}

// stmts walks a statement list, mutating st along the path; true means
// the path left this list (return/branch).
func (w *walker) stmts(list []ast.Stmt, st *state) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, st *state) bool {
	info := w.c.pass.TypesInfo
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if recv, op, isMu := engineapi.MutexOp(info, call); isMu {
				key := types.ExprString(recv)
				switch op {
				case "Lock", "RLock":
					st.held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(st.held, key)
				}
				return false
			}
		}
		w.checkExpr(s.X, st)
	case *ast.AssignStmt:
		w.checkExprs(st, s.Rhs...)
		w.checkExprs(st, s.Lhs...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.checkExprs(st, vs.Values...)
				}
			}
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, st)
	case *ast.SendStmt:
		w.checkExprs(st, s.Chan, s.Value)
		if len(st.held) > 0 {
			w.report(st, s.Arrow, "channel send")
		}
	case *ast.GoStmt:
		// The spawned body runs without these locks; only the argument
		// expressions evaluate here.
		w.checkExprs(st, s.Call.Args...)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at function exit, so the lock stays
		// held for the rest of the linear walk — which is exactly what
		// this analyzer must model. Other deferred calls run at exit
		// too; only their arguments evaluate now.
		if _, op, isMu := engineapi.MutexOp(info, s.Call); isMu && op != "" {
			return false
		}
		w.checkExprs(st, s.Call.Args...)
	case *ast.ReturnStmt:
		w.checkExprs(st, s.Results...)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.checkExpr(s.Cond, st)
		then := st.clone()
		tTerm := w.stmts(s.Body.List, then)
		els := st.clone()
		eTerm := false
		if s.Else != nil {
			eTerm = w.stmt(s.Else, els)
		}
		switch {
		case tTerm && eTerm:
			return true
		case tTerm:
			*st = *els
		case eTerm:
			*st = *then
		default:
			// Both branches fall through: a lock is held in the
			// continuation only if both paths leave it held.
			st.held = intersect(then.held, els.held)
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.checkExpr(s.Cond, st)
		w.stmts(s.Body.List, st.clone())
	case *ast.RangeStmt:
		w.checkExpr(s.X, st)
		if len(st.held) > 0 && isChanType(info.TypeOf(s.X)) {
			w.report(st, s.For, "channel receive (range over channel)")
		}
		w.stmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.checkExpr(s.Tag, st)
		w.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		w.clauses(s.Body, st)
	case *ast.SelectStmt:
		// A select without a default blocks until some clause is ready;
		// with a default it is a non-blocking attempt, and the clause
		// channel operations themselves never wait.
		if len(st.held) > 0 && !hasDefaultCase(s.Body) {
			w.report(st, s.Select, "blocking select")
		}
		w.clauses(s.Body, st)
	}
	return false
}

// clauses walks each case body with cloned lock state. Clause bodies
// never leak lock transitions into the continuation (conservative, as
// in eventpairs), and select comm statements are not re-checked — the
// select itself was already classified.
func (w *walker) clauses(body *ast.BlockStmt, st *state) {
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			w.stmts(cl.Body, st.clone())
		case *ast.CommClause:
			w.stmts(cl.Body, st.clone())
		}
	}
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func intersect(a, b map[string]token.Pos) map[string]token.Pos {
	out := map[string]token.Pos{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}
