package lockheld_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockheld"
)

func TestLockHeld(t *testing.T) {
	linttest.Run(t, lockheld.Analyzer, "lockspan")
}
