// Package lockspan exercises the lockheld analyzer: blocking
// operations inside a mutex critical section are flagged; the
// unlock-before-blocking idioms the cluster plane actually uses are
// accepted.
package lockspan

import (
	"sync"
	"time"

	"repro/internal/cluster/rpc"
	"repro/internal/dfs"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	tr    rpc.Transport
	store dfs.Store
	ch    chan int
	wg    sync.WaitGroup
	cond  *sync.Cond
	busy  int
}

func (s *server) badCallUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Call("a", "m", nil, nil) // want `blocking rpc Transport\.Call while s\.mu is held`
}

func (s *server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking time\.Sleep while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) badSend(v int) {
	s.mu.Lock()
	s.ch <- v // want `blocking channel send while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) badRecvUnderRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want `blocking channel receive while s\.rw is held`
}

func (s *server) badWaitGroup() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `blocking sync\.WaitGroup\.Wait while s\.mu is held`
}

func (s *server) badStoreIO() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.ReadRange("p", 0, 1) // want `blocking \(dfs\.Store\)\.ReadRange I/O while s\.mu is held`
}

func (s *server) badBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s\.mu is held`
	case v := <-s.ch:
		s.busy = v
	case s.ch <- 1:
	}
}

func (s *server) badRangeOverChannel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `blocking channel receive \(range over channel\) while s\.mu is held`
		s.busy = v
	}
}

func (s *server) badBothLocksNamed() {
	s.mu.Lock()
	s.rw.Lock()
	time.Sleep(time.Millisecond) // want `blocking time\.Sleep while s\.mu, s\.rw is held`
	s.rw.Unlock()
	s.mu.Unlock()
}

// goodUnlockFirst is the plane's standard idiom: snapshot under the
// lock, release, then do the slow thing.
func (s *server) goodUnlockFirst() error {
	s.mu.Lock()
	addr := "a"
	s.mu.Unlock()
	return s.tr.Call(addr, "m", nil, nil)
}

// goodNonblockingSelect: a select with a default never waits.
func (s *server) goodNonblockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// goodBranchRelease: the lock is released on every path that blocks.
func (s *server) goodBranchRelease(fast bool) error {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return s.tr.Call("a", "m", nil, nil)
	}
	s.busy++
	s.mu.Unlock()
	return nil
}

// goodLoopWindow mirrors the scheduler's slot loop: the lock is opened
// for the sleep window and retaken before looping.
func (s *server) goodLoopWindow(done func() bool) {
	s.mu.Lock()
	for {
		if done() {
			break
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// goodCondWait: sync.Cond.Wait releases the lock by contract.
func (s *server) goodCondWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.busy == 0 {
		s.cond.Wait()
	}
}

// goodGoroutine: the spawned body runs without the spawner's lock.
func (s *server) goodGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
		s.ch <- 1
	}()
}

// goodAfterScope: blocking after the critical section closes is fine.
func (s *server) goodAfterScope() {
	s.mu.Lock()
	s.busy++
	s.mu.Unlock()
	<-s.ch
	s.wg.Wait()
}
