// Package taskdet exercises the taskdeterminism analyzer: wall-clock
// reads, global rand, and map-ordered emission in task code are
// flagged; seeded generators, sorted emission, and non-task code are
// accepted.
package taskdet

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/mapreduce"
)

type clockMapper struct {
	mapreduce.MapperBase
}

func (m *clockMapper) Map(ctx *mapreduce.TaskContext, key, value string, emit mapreduce.Emit) error {
	t := time.Now() // want `time\.Now`
	emit(key, t.String())
	return nil
}

type globalRandMapper struct {
	mapreduce.MapperBase
}

func (m *globalRandMapper) Map(ctx *mapreduce.TaskContext, key, value string, emit mapreduce.Emit) error {
	if rand.Float64() < 0.5 { // want `shared generator`
		emit(key, value)
	}
	return nil
}

type seededMapper struct {
	mapreduce.MapperBase
	rng *rand.Rand
}

// Setup seeds a private generator from the task identity: every
// attempt of the same task draws the same sequence. Accepted.
func (m *seededMapper) Setup(ctx *mapreduce.TaskContext) error {
	m.rng = rand.New(rand.NewSource(42))
	return nil
}

func (m *seededMapper) Map(ctx *mapreduce.TaskContext, key, value string, emit mapreduce.Emit) error {
	if m.rng.Float64() < 0.5 {
		emit(key, value)
	}
	return nil
}

type stateMapper struct {
	mapreduce.MapperBase
	state map[string]int
}

func (m *stateMapper) Map(ctx *mapreduce.TaskContext, key, value string, emit mapreduce.Emit) error {
	m.state[key]++
	return nil
}

// Cleanup emits straight out of map iteration: flagged.
func (m *stateMapper) Cleanup(ctx *mapreduce.TaskContext, emit mapreduce.Emit) error {
	for k := range m.state {
		emit(k, "1") // want `map iteration order`
	}
	return nil
}

type sortedMapper struct {
	mapreduce.MapperBase
	state map[string]int
}

func (m *sortedMapper) Map(ctx *mapreduce.TaskContext, key, value string, emit mapreduce.Emit) error {
	m.state[key]++
	return nil
}

// Cleanup sorts keys before emitting: accepted.
func (m *sortedMapper) Cleanup(ctx *mapreduce.TaskContext, emit mapreduce.Emit) error {
	keys := make([]string, 0, len(m.state))
	for k := range m.state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, "1")
	}
	return nil
}

// helper is task code by shape (first param *TaskContext) even though
// it is not an interface method.
func helper(ctx *mapreduce.TaskContext, emit mapreduce.Emit) {
	d := time.Since(time.Time{}) // want `time\.Since`
	emit("d", d.String())
}

// adapted is a function literal lifted into a Mapper via MapFunc.
var adapted = mapreduce.MapFunc(func(ctx *mapreduce.TaskContext, key, value string, emit mapreduce.Emit) error {
	emit(key, time.Now().String()) // want `time\.Now`
	return nil
})

// driver is not task code: the clock is fine here.
func driver() time.Time {
	return time.Now()
}
