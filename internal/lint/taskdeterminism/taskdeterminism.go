// Package taskdeterminism flags nondeterminism inside task code.
//
// The engine re-executes tasks: failed attempts are retried and slow
// ones get speculative backup attempts, and whichever attempt commits
// first wins. That is only sound when every attempt of a task produces
// byte-identical output. Three common ways to break that are calling
// the wall clock, drawing from the shared global rand generator, and
// emitting records while ranging over a map (iteration order is
// randomized per run).
//
// Allowed: *rand.Rand instances (code that seeds its own generator
// from job conf or the task ID is deterministic per attempt), rand
// constructors (New, NewSource, ...), and map iteration that does not
// emit (e.g. accumulating into a local that is sorted before
// emission).
package taskdeterminism

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer flags wall-clock reads, shared-generator randomness, and
// map-iteration-ordered emission inside task code.
var Analyzer = &analysis.Analyzer{
	Name: "taskdeterminism",
	Doc: "task code (Mapper/Reducer/Combiner bodies and their typed forms) must be " +
		"deterministic so retried and speculative attempts produce identical output; " +
		"flags time.Now/Since/Until, package-level math/rand calls, and Emit inside " +
		"range-over-map",
	Run: run,
}

// timeFuncs are the wall-clock reads that make output vary per attempt.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors build a private, seedable generator and are the
// sanctioned escape hatch.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, tf := range engineapi.TaskFuncs(pass.TypesInfo, pass.Files) {
		checkBody(pass, tf)
	}
	return nil
}

func checkBody(pass *analysis.Pass, tf engineapi.TaskFunc) {
	ast.Inspect(tf.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, tf, n)
		case *ast.RangeStmt:
			checkRange(pass, tf, n)
		}
		return true
	})
}

// calleeFunc resolves the called function object, or nil for dynamic
// calls, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

func checkCall(pass *analysis.Pass, tf engineapi.TaskFunc, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if sig.Recv() == nil && timeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to time.%s in task code %s: output would differ between retried or "+
					"speculative attempts; derive timestamps from input or job conf",
				fn.Name(), tf.Name)
		}
	case "math/rand", "math/rand/v2":
		// Package-level calls draw from the shared, unseeded global
		// generator; methods on a *rand.Rand the task seeded itself are
		// deterministic and allowed.
		if sig.Recv() == nil && !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to shared generator %s.%s in task code %s: use rand.New(rand.NewSource(seed)) "+
					"with a seed derived from job conf and the task ID",
				fn.Pkg().Name(), fn.Name(), tf.Name)
		}
	}
}

// checkRange flags Emit/TypedEmit calls lexically inside the body of a
// range over a map: emission order then follows Go's randomized map
// iteration order, so two attempts shuffle different byte streams.
func checkRange(pass *analysis.Pass, tf engineapi.TaskFunc, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ftv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !engineapi.IsEmitType(ftv.Type) {
			return true
		}
		pass.Reportf(call.Pos(),
			"emit inside range over map in task code %s: emission order follows map "+
				"iteration order, which differs between attempts; collect and sort keys first",
			tf.Name)
		return true
	})
}
