package taskdeterminism_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/taskdeterminism"
)

func TestTaskDeterminism(t *testing.T) {
	linttest.Run(t, taskdeterminism.Analyzer, "taskdet")
}
