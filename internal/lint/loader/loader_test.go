package loader

import (
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// repoRoot walks up from this file to the module root.
func repoRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

func TestLoadEngine(t *testing.T) {
	start := time.Now()
	res, err := Load(repoRoot(t), "./internal/mapreduce")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Logf("loaded %d packages in %v", len(res.Packages), time.Since(start))
	targets := res.Targets()
	if len(targets) != 1 {
		t.Fatalf("got %d targets, want 1", len(targets))
	}
	mr := targets[0]
	if mr.PkgPath != "repro/internal/mapreduce" {
		t.Fatalf("target = %s", mr.PkgPath)
	}
	if len(mr.Files) == 0 || mr.Types == nil || mr.Info == nil {
		t.Fatalf("target not fully loaded: files=%d", len(mr.Files))
	}
	if mr.Types.Scope().Lookup("Engine") == nil {
		t.Fatal("mapreduce.Engine not found in type info")
	}
	// Dependencies carry API-level types: obs.Event must resolve.
	var sawObs bool
	for _, p := range res.Packages {
		if p.PkgPath == "repro/internal/obs" {
			sawObs = true
			if p.Types.Scope().Lookup("Event") == nil {
				t.Fatal("obs.Event not found in dependency type info")
			}
			if p.Target {
				t.Fatal("obs should be a dependency, not a target")
			}
		}
	}
	if !sawObs {
		t.Fatal("repro/internal/obs not in load graph")
	}
}

func TestLoadAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo load")
	}
	res, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	var targets int
	for _, p := range res.Packages {
		if p.Target {
			targets++
			for _, terr := range p.TypeErrors {
				t.Errorf("%s: type error: %v", p.PkgPath, terr)
			}
		}
	}
	if targets < 15 {
		t.Fatalf("only %d target packages loaded", targets)
	}
}

func TestLoadFixture(t *testing.T) {
	res, err := LoadFixture([]string{"testdata/src"}, "fixload")
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	var target *Package
	for _, p := range res.Packages {
		if p.Target {
			target = p
		}
	}
	if target == nil || target.PkgPath != "fixload" {
		t.Fatalf("target missing: %+v", target)
	}
	if target.Types.Scope().Lookup("UsesStub") == nil {
		t.Fatal("fixture decl not type-checked")
	}
}
