// Package loader type-checks Go packages for the lint analyzers using
// only the standard library: `go list -deps -json` supplies the
// package graph in dependency order (with build-tag-filtered file
// lists), and go/types checks each package from source. Dependencies
// are checked with IgnoreFuncBodies — the analyzers only inspect the
// bodies of the packages named by the patterns, so everything else
// needs just its API surface.
//
// A second entry point, LoadFixture, resolves packages from plain
// directory trees (the analysistest-style testdata/src layout) plus
// GOROOT, so analyzer fixtures can import stub versions of the
// engine's packages without being part of the module build.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Dir is the source directory.
	Dir string
	// Files are the parsed sources (build-tag filtered, tests excluded).
	Files []*ast.File
	// Types is the type-checked package (possibly incomplete if
	// TypeErrors is non-empty).
	Types *types.Package
	// Info holds the checker's facts for Files.
	Info *types.Info
	// Target marks packages named by the load patterns — the ones the
	// analyzers should inspect (dependencies are API-only).
	Target bool
	// TypeErrors collects type-checking problems (the checker continues
	// past them, so partial information is still available).
	TypeErrors []error
}

// Result is one complete load.
type Result struct {
	// Fset is shared by every package in the load.
	Fset *token.FileSet
	// Packages lists all loaded packages in dependency order,
	// dependencies before dependents.
	Packages []*Package
}

// Targets returns the packages named by the load patterns.
func (r *Result) Targets() []*Package {
	var out []*Package
	for _, p := range r.Packages {
		if p.Target {
			out = append(out, p)
		}
	}
	return out
}

// listPkg mirrors the subset of `go list -json` output the loader
// consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with CGO disabled (so file lists are
// pure-Go and type-checkable from source) and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Name,Dir,GoFiles,Standard,Imports,ImportMap,Error"

// Load lists patterns (e.g. "./...") from dir and type-checks the
// resulting graph. Test files are not loaded; testdata directories are
// excluded by `go list` itself.
func Load(dir string, patterns ...string) (*Result, error) {
	deps, err := goList(dir, append([]string{"-e", "-deps", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	named, err := goList(dir, append([]string{"-e", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	target := make(map[string]bool, len(named))
	for _, p := range named {
		target[p.ImportPath] = true
	}

	res := &Result{Fset: token.NewFileSet()}
	byPath := make(map[string]*types.Package)
	for _, lp := range deps {
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil && target[lp.ImportPath] {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg := &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Target:  target[lp.ImportPath],
		}
		if len(lp.GoFiles) == 0 {
			// Test-only or empty package: nothing to check or inspect.
			pkg.Types = types.NewPackage(lp.ImportPath, lp.Name)
			byPath[lp.ImportPath] = pkg.Types
			res.Packages = append(res.Packages, pkg)
			continue
		}
		var files []*ast.File
		for _, f := range lp.GoFiles {
			file, err := parser.ParseFile(res.Fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("package %s: %v", lp.ImportPath, err)
			}
			files = append(files, file)
		}
		pkg.Files = files
		imp := mapImporter{pkgs: byPath, importMap: lp.ImportMap}
		pkg.Types, pkg.Info, pkg.TypeErrors = check(res.Fset, lp.ImportPath, files, imp, pkg.Target)
		if pkg.Target && len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s: %v", lp.ImportPath, pkg.TypeErrors[0])
		}
		byPath[lp.ImportPath] = pkg.Types
		res.Packages = append(res.Packages, pkg)
	}
	return res, nil
}

// mapImporter resolves imports against already-checked packages,
// applying the package's vendor/ImportMap renames.
type mapImporter struct {
	pkgs      map[string]*types.Package
	importMap map[string]string
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if r, ok := m.importMap[path]; ok {
		path = r
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not in load graph", path)
}

// check type-checks one package's files. full requests complete
// function-body checking and analyzer-grade type info; dependencies
// are checked API-only. The checker keeps going past errors so
// analyzers can work with partial information on dependencies.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, full bool) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer:         imp,
		IgnoreFuncBodies: !full,
		Error:            func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, _ := conf.Check(path, fset, files, info)
	return pkg, info, errs
}

// fixture loading --------------------------------------------------

// stdCache memoizes GOROOT packages across fixture loads within one
// process; all fixture loads share fixtureFset so the cached type
// objects keep valid positions. Fixture-root packages are memoized
// per load only (different analyzers may resolve the same import path
// to different stub directories).
var (
	stdMu       sync.Mutex
	fixtureFset = token.NewFileSet()
	stdCache    = map[string]*types.Package{}
)

// fixtureLoad is the state of one LoadFixture(s) call.
type fixtureLoad struct {
	res     *Result
	roots   []string
	targets map[string]bool
	local   map[string]*types.Package
	loading map[string]bool
}

// LoadFixture type-checks the package at import path pkgPath, resolving
// imports first against the given fixture roots (each laid out as
// root/<import path>/*.go) and then against GOROOT sources. Only the
// named package gets full body checking; everything else is API-only.
func LoadFixture(roots []string, pkgPath string) (*Result, error) {
	return LoadFixtures(roots, pkgPath)
}

// LoadFixtures type-checks several fixture packages into one Result,
// so fixtures that import each other (a wire-type package and the
// package that ships it over the transport, say) load and get body
// checking in a single shot. Every named package is a target; shared
// dependencies are loaded once, API-only.
func LoadFixtures(roots []string, pkgPaths ...string) (*Result, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	targets := make(map[string]bool, len(pkgPaths))
	for _, p := range pkgPaths {
		targets[p] = true
	}
	fl := &fixtureLoad{
		res:     &Result{Fset: fixtureFset},
		roots:   roots,
		targets: targets,
		local:   map[string]*types.Package{},
		loading: map[string]bool{},
	}
	for _, p := range pkgPaths {
		if _, err := fl.pkg(p); err != nil {
			return nil, err
		}
	}
	return fl.res, nil
}

// fixtureDir resolves an import path to a source directory: fixture
// roots first, then GOROOT/src and GOROOT/src/vendor.
func fixtureDir(roots []string, path string) (string, error) {
	rel := filepath.FromSlash(path)
	for _, root := range roots {
		dir := filepath.Join(root, rel)
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	goroot := build.Default.GOROOT
	for _, dir := range []string{
		filepath.Join(goroot, "src", rel),
		filepath.Join(goroot, "src", "vendor", rel),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("import %q not found under fixture roots or GOROOT", path)
}

// pkg loads one package (and, recursively, its imports). Callers hold
// stdMu.
func (fl *fixtureLoad) pkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := fl.local[path]; ok {
		return p, nil
	}
	if p, ok := stdCache[path]; ok && !fl.targets[path] {
		return p, nil
	}
	if fl.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	fl.loading[path] = true
	defer delete(fl.loading, path)

	dir, err := fixtureDir(fl.roots, path)
	if err != nil {
		return nil, err
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("package %s: %v", path, err)
	}
	var files []*ast.File
	for _, f := range bp.GoFiles {
		file, err := parser.ParseFile(fl.res.Fset, filepath.Join(dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", path, err)
		}
		files = append(files, file)
	}
	full := fl.targets[path]
	imp := importerFunc(func(ipath string) (*types.Package, error) { return fl.pkg(ipath) })
	tpkg, info, errs := check(fl.res.Fset, path, files, imp, full)
	if full && len(errs) > 0 {
		return nil, fmt.Errorf("package %s: %v", path, errs[0])
	}
	fl.res.Packages = append(fl.res.Packages, &Package{
		PkgPath: path, Dir: dir, Files: files,
		Types: tpkg, Info: info, Target: full, TypeErrors: errs,
	})
	fl.local[path] = tpkg
	if !full && strings.HasPrefix(dir, build.Default.GOROOT+string(filepath.Separator)) {
		stdCache[path] = tpkg
	}
	return tpkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
