// Package fixload exercises fixture loading: a stub import resolved
// from the fixture root plus a stdlib import resolved from GOROOT.
package fixload

import (
	"time"

	"fixstub"
)

// UsesStub proves cross-package types resolve in fixture loads.
func UsesStub() time.Duration {
	return time.Duration(fixstub.Value)
}
