// Package fixstub is a fixture-root dependency for loader tests.
package fixstub

// Value is referenced by the fixload fixture.
const Value = 42
