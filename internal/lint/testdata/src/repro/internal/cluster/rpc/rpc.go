// Package rpc is the fixture stub of the RPC transport layer.
package rpc

import "time"

// Transport mirrors the transport interface.
type Transport interface {
	Call(addr, method string, args, reply any) error
}

// Server mirrors the RPC dispatch surface.
type Server struct{}

// MemNetwork mirrors the in-memory transport.
type MemNetwork struct{}

// Call mirrors MemNetwork.Call.
func (n *MemNetwork) Call(addr, method string, args, reply any) error { return nil }

// TCPNetwork mirrors the TCP transport.
type TCPNetwork struct{}

// Call mirrors TCPNetwork.Call.
func (n *TCPNetwork) Call(addr, method string, args, reply any) error { return nil }

// Unreliable mirrors the fault-injecting wrapper.
type Unreliable struct{}

// Call mirrors Unreliable.Call.
func (u *Unreliable) Call(addr, method string, args, reply any) error { return nil }

// RemoteStore mirrors the worker-side DFS proxy.
type RemoteStore struct{}

// Create mirrors RemoteStore.Create.
func (s *RemoteStore) Create(path string, data []byte, localNode string) error { return nil }

// ReadRange mirrors RemoteStore.ReadRange.
func (s *RemoteStore) ReadRange(path string, off, length int64) ([]byte, error) { return nil, nil }

// Size mirrors RemoteStore.Size.
func (s *RemoteStore) Size(path string) (int64, error) { return 0, nil }

// Serve mirrors the accept loop (the real one takes a net.Listener).
func Serve(ln any, srv *Server) error { return nil }

// Jobtracker mirrors the cluster coordinator.
type Jobtracker struct{}

// WaitForWorkers mirrors Jobtracker.WaitForWorkers.
func (jt *Jobtracker) WaitForWorkers(n int, timeout time.Duration) error { return nil }

// Stop mirrors Jobtracker.Stop.
func (jt *Jobtracker) Stop() {}

// Worker mirrors the out-of-process worker loop.
type Worker struct{}

// Run mirrors Worker.Run.
func (w *Worker) Run() error { return nil }

// Federation mirrors the metrics federation sink.
type Federation struct{}

// Apply mirrors Federation.Apply (reports staleness as a bool).
func (f *Federation) Apply(node string, seq uint64) bool { return false }
