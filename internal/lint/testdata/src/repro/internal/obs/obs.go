// Package obs is the fixture stub of the observability layer.
package obs

import (
	"context"
	"log/slog"
	"time"
)

// EventType enumerates lifecycle events.
type EventType string

// Event types mirrored from the real package.
const (
	JobSubmitted     EventType = "job_submitted"
	JobFinished      EventType = "job_finished"
	PhaseStart       EventType = "phase_start"
	PhaseEnd         EventType = "phase_end"
	TaskScheduled    EventType = "task_scheduled"
	AttemptStarted   EventType = "attempt_started"
	AttemptSucceeded EventType = "attempt_succeeded"
	AttemptFailed    EventType = "attempt_failed"
	AttemptKilled    EventType = "attempt_killed"
	SpanStart        EventType = "span_start"
	SpanEnd          EventType = "span_end"
)

// Event is one lifecycle event.
type Event struct {
	Type     EventType
	Time     time.Time
	Job      string
	Parent   string
	Span     string
	Phase    string
	Task     string
	Attempt  int
	Node     string
	Locality string
	Backup   bool
	Dur      time.Duration
	Value    int64
	Err      string
	Detail   string
}

// Bus mirrors the event bus.
type Bus struct{}

// Emit mirrors Bus.Emit.
func (b *Bus) Emit(e Event) {}

// Active mirrors Bus.Active.
func (b *Bus) Active() bool { return false }

// FS mirrors the minimal file-store interface.
type FS interface {
	Create(path string, data []byte, localNode string) error
	List(dir string) []string
	ReadAll(path string) ([]byte, error)
	Delete(path string) error
}

// JobRecord mirrors a persisted job record.
type JobRecord struct {
	Job string
}

// History mirrors the job-history store.
type History struct{}

// Save mirrors History.Save.
func (h *History) Save(rec JobRecord) (string, error) { return "", nil }

// StatusServer mirrors the cluster status HTTP server.
type StatusServer struct{}

// Close mirrors StatusServer.Close.
func (s *StatusServer) Close() error { return nil }

// Shutdown mirrors StatusServer.Shutdown.
func (s *StatusServer) Shutdown(ctx context.Context) error { return nil }

// NewLevelLogger mirrors the slog handler constructor.
func NewLevelLogger(level string) (*slog.Logger, error) { return nil, nil }
