// Package recordio is the fixture stub of the binary record layer.
package recordio

// Int64 mirrors the order-preserving int64 key codec.
type Int64 struct{}

// Append mirrors Int64.Append.
func (Int64) Append(dst []byte, v int64) []byte { return dst }

// Decode mirrors Int64.Decode.
func (Int64) Decode(s string) (int64, error) { return 0, nil }

// RawCompare mirrors Int64.RawCompare.
func (Int64) RawCompare(a, b string) int { return 0 }

// RawString mirrors the pass-through string key codec.
type RawString struct{}

// Append mirrors RawString.Append.
func (RawString) Append(dst []byte, v string) []byte { return dst }

// Decode mirrors RawString.Decode.
func (RawString) Decode(s string) (string, error) { return s, nil }

// RawCompare mirrors RawString.RawCompare.
func (RawString) RawCompare(a, b string) int { return 0 }

// Writer mirrors the record-file writer.
type Writer struct{}

// NewWriter mirrors NewWriter.
func NewWriter() *Writer { return &Writer{} }

// Add mirrors Writer.Add.
func (w *Writer) Add(key, value string) {}

// Bytes mirrors Writer.Bytes.
func (w *Writer) Bytes() []byte { return nil }

// ScanAll mirrors the whole-file record scanner.
func ScanAll(data []byte, fn func(key, value string) error) error { return nil }

// ScanSplit mirrors the split record scanner.
func ScanSplit(buf []byte, bufStart, start, end int64, rangeLimited bool, fn func(key, value string) error) error {
	return nil
}
