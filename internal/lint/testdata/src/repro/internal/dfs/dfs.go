// Package dfs is the fixture stub of the distributed file system.
package dfs

// FileSystem mirrors the DFS client surface the analyzers model.
type FileSystem struct{}

// Create mirrors FileSystem.Create.
func (fs *FileSystem) Create(path string, data []byte, localNode string) error { return nil }

// Delete mirrors FileSystem.Delete.
func (fs *FileSystem) Delete(path string) error { return nil }

// ReadAll mirrors FileSystem.ReadAll.
func (fs *FileSystem) ReadAll(path string) ([]byte, error) { return nil, nil }

// List mirrors FileSystem.List.
func (fs *FileSystem) List(dir string) []string { return nil }

// DeleteDir mirrors FileSystem.DeleteDir.
func (fs *FileSystem) DeleteDir(dir string) {}

// Size mirrors FileSystem.Size.
func (fs *FileSystem) Size(path string) (int64, error) { return 0, nil }

// Store mirrors the minimal storage interface task executors write
// through (implemented by *FileSystem and rpc.RemoteStore).
type Store interface {
	Create(path string, data []byte, localNode string) error
	ReadRange(path string, off, length int64) ([]byte, error)
	Size(path string) (int64, error)
}
