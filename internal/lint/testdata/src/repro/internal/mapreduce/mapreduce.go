// Package mapreduce is the fixture stub of the engine's job API: the
// same exported shapes under the same import path, with no behaviour.
// Analyzer fixtures type-check against this instead of the real
// engine so testdata stays self-contained.
package mapreduce

// TaskContext mirrors the engine's per-task context.
type TaskContext struct {
	JobName string
	TaskID  string
	Attempt int
	Node    string
}

// Conf mirrors configuration lookup.
func (c *TaskContext) Conf(key string) string { return "" }

// ConfDefault mirrors configuration lookup with a default.
func (c *TaskContext) ConfDefault(key, def string) string { return def }

// Counter is the stub job counter.
type Counter struct{}

// Inc mirrors Counter.Inc.
func (c *Counter) Inc(delta int64) {}

// Counter mirrors TaskContext.Counter.
func (c *TaskContext) Counter(group, name string) *Counter { return &Counter{} }

// KV is one record.
type KV struct{ Key, Value string }

// Emit is the untyped emission callback.
type Emit func(key, value string)

// Mapper mirrors the untyped mapper interface.
type Mapper interface {
	Setup(ctx *TaskContext) error
	Map(ctx *TaskContext, key, value string, emit Emit) error
	Cleanup(ctx *TaskContext, emit Emit) error
}

// Reducer mirrors the untyped reducer interface.
type Reducer interface {
	Setup(ctx *TaskContext) error
	Reduce(ctx *TaskContext, key string, values []string, emit Emit) error
	Cleanup(ctx *TaskContext, emit Emit) error
}

// MapperBase provides no-op Setup/Cleanup.
type MapperBase struct{}

// Setup implements Mapper.
func (MapperBase) Setup(*TaskContext) error { return nil }

// Cleanup implements Mapper.
func (MapperBase) Cleanup(*TaskContext, Emit) error { return nil }

// ReducerBase provides no-op Setup/Cleanup.
type ReducerBase struct{}

// Setup implements Reducer.
func (ReducerBase) Setup(*TaskContext) error { return nil }

// Cleanup implements Reducer.
func (ReducerBase) Cleanup(*TaskContext, Emit) error { return nil }

// MapFunc adapts a function to Mapper.
type MapFunc func(ctx *TaskContext, key, value string, emit Emit) error

// Setup implements Mapper.
func (MapFunc) Setup(*TaskContext) error { return nil }

// Map implements Mapper.
func (f MapFunc) Map(ctx *TaskContext, key, value string, emit Emit) error {
	return f(ctx, key, value, emit)
}

// Cleanup implements Mapper.
func (MapFunc) Cleanup(*TaskContext, Emit) error { return nil }

// ReduceFunc adapts a function to Reducer.
type ReduceFunc func(ctx *TaskContext, key string, values []string, emit Emit) error

// Setup implements Reducer.
func (ReduceFunc) Setup(*TaskContext) error { return nil }

// Reduce implements Reducer.
func (f ReduceFunc) Reduce(ctx *TaskContext, key string, values []string, emit Emit) error {
	return f(ctx, key, values, emit)
}

// Cleanup implements Reducer.
func (ReduceFunc) Cleanup(*TaskContext, Emit) error { return nil }

// Job mirrors the untyped job description.
type Job struct {
	Name        string
	InputPaths  []string
	OutputPath  string
	NewMapper   func() Mapper
	NewReducer  func() Reducer
	NewCombiner func() Reducer
	NumReducers int
	KeyCompare  func(a, b string) int
	Conf        map[string]string
}
