package mapreduce

// TypedEmit is the typed emission callback.
type TypedEmit[K, V any] func(key K, value V)

// TypedMapper mirrors the typed mapper interface.
type TypedMapper[KI, VI, KO, VO any] interface {
	Setup(ctx *TaskContext) error
	Map(ctx *TaskContext, key KI, value VI, emit TypedEmit[KO, VO]) error
	Cleanup(ctx *TaskContext, emit TypedEmit[KO, VO]) error
}

// TypedReducer mirrors the typed reducer interface.
type TypedReducer[K, V, KO, VO any] interface {
	Setup(ctx *TaskContext) error
	Reduce(ctx *TaskContext, key K, values []V, emit TypedEmit[KO, VO]) error
	Cleanup(ctx *TaskContext, emit TypedEmit[KO, VO]) error
}

// TypedMapperBase provides no-op Setup/Cleanup.
type TypedMapperBase[KO, VO any] struct{}

// Setup implements TypedMapper.
func (TypedMapperBase[KO, VO]) Setup(*TaskContext) error { return nil }

// Cleanup implements TypedMapper.
func (TypedMapperBase[KO, VO]) Cleanup(*TaskContext, TypedEmit[KO, VO]) error { return nil }

// TypedReducerBase provides no-op Setup/Cleanup.
type TypedReducerBase[KO, VO any] struct{}

// Setup implements TypedReducer.
func (TypedReducerBase[KO, VO]) Setup(*TaskContext) error { return nil }

// Cleanup implements TypedReducer.
func (TypedReducerBase[KO, VO]) Cleanup(*TaskContext, TypedEmit[KO, VO]) error { return nil }

// TypedMapFunc adapts a function to TypedMapper.
type TypedMapFunc[KI, VI, KO, VO any] func(ctx *TaskContext, key KI, value VI, emit TypedEmit[KO, VO]) error

// Setup implements TypedMapper.
func (TypedMapFunc[KI, VI, KO, VO]) Setup(*TaskContext) error { return nil }

// Map implements TypedMapper.
func (f TypedMapFunc[KI, VI, KO, VO]) Map(ctx *TaskContext, key KI, value VI, emit TypedEmit[KO, VO]) error {
	return f(ctx, key, value, emit)
}

// Cleanup implements TypedMapper.
func (TypedMapFunc[KI, VI, KO, VO]) Cleanup(*TaskContext, TypedEmit[KO, VO]) error { return nil }

// TypedReduceFunc adapts a function to TypedReducer.
type TypedReduceFunc[K, V, KO, VO any] func(ctx *TaskContext, key K, values []V, emit TypedEmit[KO, VO]) error

// Setup implements TypedReducer.
func (TypedReduceFunc[K, V, KO, VO]) Setup(*TaskContext) error { return nil }

// Reduce implements TypedReducer.
func (f TypedReduceFunc[K, V, KO, VO]) Reduce(ctx *TaskContext, key K, values []V, emit TypedEmit[KO, VO]) error {
	return f(ctx, key, values, emit)
}

// Cleanup implements TypedReducer.
func (TypedReduceFunc[K, V, KO, VO]) Cleanup(*TaskContext, TypedEmit[KO, VO]) error { return nil }

// Codec mirrors the typed codec interface.
type Codec[T any] interface {
	Append(dst []byte, v T) []byte
	Decode(s string) (T, error)
}

// RawComparer mirrors the raw-byte key comparator.
type RawComparer interface {
	RawCompare(a, b string) int
}

// TypedJob mirrors the generic job description.
type TypedJob[KI, VI, KM, VM, KO, VO any] struct {
	Name       string
	InputPaths []string
	OutputPath string

	Mapper   func() TypedMapper[KI, VI, KM, VM]
	Reducer  func() TypedReducer[KM, VM, KO, VO]
	Combiner func() TypedReducer[KM, VM, KM, VM]

	InputKey    Codec[KI]
	InputValue  Codec[VI]
	MapKey      Codec[KM]
	MapValue    Codec[VM]
	OutputKey   Codec[KO]
	OutputValue Codec[VO]

	NumReducers int
	Partition   func(key KM, numReducers int) int
	KeyCompare  func(a, b string) int
	TextOutput  bool

	Conf map[string]string
}

// Build mirrors the lowering entry point.
func (tj *TypedJob[KI, VI, KM, VM, KO, VO]) Build() *Job { return &Job{Name: tj.Name} }
