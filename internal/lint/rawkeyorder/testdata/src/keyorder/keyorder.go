// Package keyorder exercises the rawkeyorder analyzer: typed jobs
// with reducers must pair the raw-byte shuffle sort with an
// order-preserving MapKey codec or an explicit KeyCompare.
package keyorder

import (
	"strconv"

	"repro/internal/mapreduce"
	"repro/internal/recordio"
)

// DecimalInt encodes int64 keys as decimal text: "10" sorts before
// "9", so raw-byte order does not follow int64 order and there is no
// RawCompare.
type DecimalInt struct{}

// Append implements Codec.
func (DecimalInt) Append(dst []byte, v int64) []byte { return strconv.AppendInt(dst, v, 10) }

// Decode implements Codec.
func (DecimalInt) Decode(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

func idMapper() mapreduce.TypedMapper[string, string, int64, string] {
	return mapreduce.TypedMapFunc[string, string, int64, string](
		func(ctx *mapreduce.TaskContext, k, v string, emit mapreduce.TypedEmit[int64, string]) error {
			return nil
		})
}

func sumReducer() mapreduce.TypedReducer[int64, string, int64, string] {
	return mapreduce.TypedReduceFunc[int64, string, int64, string](
		func(ctx *mapreduce.TaskContext, k int64, vs []string, emit mapreduce.TypedEmit[int64, string]) error {
			return nil
		})
}

// badJob sorts decimal-encoded int64 keys: flagged at MapKey.
var badJob = mapreduce.TypedJob[string, string, int64, string, int64, string]{
	Name:     "bad",
	Mapper:   idMapper,
	Reducer:  sumReducer,
	MapKey:   DecimalInt{}, // want `MapKey codec .*DecimalInt does not implement mapreduce\.RawComparer`
	MapValue: recordio.RawString{},
}

// goodJob uses the order-preserving big-endian codec: accepted.
var goodJob = mapreduce.TypedJob[string, string, int64, string, int64, string]{
	Name:     "good",
	Mapper:   idMapper,
	Reducer:  sumReducer,
	MapKey:   recordio.Int64{},
	MapValue: recordio.RawString{},
}

// comparedJob keeps the non-preserving codec but declares the order
// explicitly: accepted.
var comparedJob = mapreduce.TypedJob[string, string, int64, string, int64, string]{
	Name:    "compared",
	Mapper:  idMapper,
	Reducer: sumReducer,
	MapKey:  DecimalInt{},
	KeyCompare: func(a, b string) int {
		x, _ := strconv.ParseInt(a, 10, 64)
		y, _ := strconv.ParseInt(b, 10, 64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	},
	MapValue: recordio.RawString{},
}

// mapOnlyJob never sorts, any codec goes: accepted.
var mapOnlyJob = mapreduce.TypedJob[string, string, int64, string, int64, string]{
	Name:     "maponly",
	Mapper:   idMapper,
	MapKey:   DecimalInt{},
	MapValue: recordio.RawString{},
}

// combinerJob sorts for the combiner even though Reducer is nil in the
// literal: flagged at MapKey.
var combinerJob = mapreduce.TypedJob[string, string, int64, string, int64, string]{
	Name:     "combine",
	Mapper:   idMapper,
	Reducer:  nil,
	Combiner: sumReducer,
	MapKey:   DecimalInt{}, // want `MapKey codec .*DecimalInt does not implement mapreduce\.RawComparer`
	MapValue: recordio.RawString{},
}

// noKeyJob has a reducer but no MapKey at all: flagged at the literal.
var noKeyJob = mapreduce.TypedJob[string, string, int64, string, int64, string]{ // want `no MapKey codec`
	Name:     "nokey",
	Mapper:   idMapper,
	Reducer:  sumReducer,
	MapValue: recordio.RawString{},
}
