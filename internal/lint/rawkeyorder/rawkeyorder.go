// Package rawkeyorder checks that typed jobs relying on the raw-byte
// shuffle sort use order-preserving key codecs.
//
// The shuffle sorts intermediate records by comparing encoded key
// bytes. A typed job whose MapKey codec does not preserve the key
// type's order in its encoding (e.g. decimal strings: "10" < "9")
// silently groups and orders reduce input wrongly. The contract: any
// TypedJob with a Reducer or Combiner must either use a MapKey codec
// implementing mapreduce.RawComparer (the codec vouches for byte
// order: recordio.Int64, Uint64, Float64, RawString, ...) or declare
// an explicit KeyCompare function. Map-only jobs never sort and are
// exempt.
package rawkeyorder

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/engineapi"
)

// Analyzer checks TypedJob literals for order-preserving MapKey codecs.
var Analyzer = &analysis.Analyzer{
	Name: "rawkeyorder",
	Doc: "a TypedJob with a Reducer or Combiner sorts by encoded key bytes; its MapKey " +
		"codec must implement mapreduce.RawComparer or the job must set KeyCompare",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			checkJobLit(pass, lit)
			return true
		})
	}
	return nil
}

func checkJobLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	named := engineapi.NamedFrom(pass.TypesInfo.TypeOf(lit), "TypedJob", engineapi.MapreducePath)
	if named == nil {
		return
	}
	fields := map[string]ast.Expr{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			// A positional TypedJob literal would defeat field matching;
			// nobody writes 15-field positional literals, so ignore.
			return
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			fields[id.Name] = kv.Value
		}
	}
	if !fieldSet(pass, fields, "Reducer") && !fieldSet(pass, fields, "Combiner") {
		return // map-only: the engine never sorts these keys
	}
	if fieldSet(pass, fields, "KeyCompare") {
		return // explicit comparator overrides byte order
	}
	mk, ok := fields["MapKey"]
	if !ok {
		pass.Reportf(lit.Pos(),
			"TypedJob has a reducer but no MapKey codec: the shuffle sort has no key order; "+
				"set an order-preserving MapKey codec or KeyCompare")
		return
	}
	mkType := pass.TypesInfo.TypeOf(mk)
	if mkType == nil {
		return
	}
	iface := engineapi.RawComparerIface(named.Obj().Pkg())
	if iface == nil {
		return
	}
	if types.Implements(mkType, iface) || types.Implements(types.NewPointer(mkType), iface) {
		return
	}
	pass.Reportf(mk.Pos(),
		"MapKey codec %s does not implement mapreduce.RawComparer: the shuffle sorts raw "+
			"encoded bytes, which need not follow the key type's order; use an "+
			"order-preserving codec (recordio.Int64, Uint64, Float64, RawString, UserTime) "+
			"or set KeyCompare",
		types.TypeString(mkType, types.RelativeTo(pass.Pkg)))
}

// fieldSet reports whether the field is present with a non-nil value.
func fieldSet(pass *analysis.Pass, fields map[string]ast.Expr, name string) bool {
	e, ok := fields[name]
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if ok && tv.IsNil() {
		return false
	}
	return true
}
