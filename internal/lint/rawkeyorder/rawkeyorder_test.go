package rawkeyorder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/rawkeyorder"
)

func TestRawKeyOrder(t *testing.T) {
	linttest.Run(t, rawkeyorder.Analyzer, "keyorder")
}
