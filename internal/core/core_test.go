package core

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/privacy"
)

func newTestToolkit(t *testing.T) *Toolkit {
	t.Helper()
	tk, err := NewToolkit(ClusterConfig{
		Nodes: 4, Racks: 2, SlotsPerNode: 2, ChunkSize: 256 << 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestNewToolkitDefaults(t *testing.T) {
	tk, err := NewToolkit(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tk.Cluster().Nodes()); got != 7 {
		t.Fatalf("nodes = %d, want 7", got)
	}
	if tk.FS().ChunkSize() != 64<<20 {
		t.Fatalf("chunk size = %d", tk.FS().ChunkSize())
	}
	if tk.DeployTime <= 0 {
		t.Fatal("DeployTime not recorded")
	}
	if tk.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestNewToolkitInvalid(t *testing.T) {
	if _, err := NewToolkit(ClusterConfig{Nodes: -1, Racks: -1}); err == nil {
		t.Skip("defaults repair negative values; nothing to assert")
	}
}

func TestGenerateUploadDownloadRoundTrip(t *testing.T) {
	tk := newTestToolkit(t)
	ds, truth, uploadTime, err := tk.GenerateAndUpload(
		geolife.Config{Users: 2, TotalTraces: 4000, Seed: 3}, "data")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTraces() != 4000 {
		t.Fatalf("NumTraces = %d", ds.NumTraces())
	}
	if len(truth.Homes) != 2 {
		t.Fatalf("truth users = %d", len(truth.Homes))
	}
	if uploadTime <= 0 {
		t.Fatal("upload time not measured")
	}
	back, err := tk.Download("data")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTraces() != 4000 {
		t.Fatalf("Download = %d traces", back.NumTraces())
	}
	if mb := tk.DatasetSizeMB("data"); mb <= 0 {
		t.Fatalf("DatasetSizeMB = %v", mb)
	}
}

func TestToolkitSampleAndKMeans(t *testing.T) {
	tk := newTestToolkit(t)
	if _, _, _, err := tk.GenerateAndUpload(geolife.Config{Users: 2, TotalTraces: 8000, Seed: 5}, "data"); err != nil {
		t.Fatal(err)
	}
	res, err := tk.Sample("data", "sampled", time.Minute, gepeto.SampleUpperLimit)
	if err != nil {
		t.Fatal(err)
	}
	in := res.Counters.Value("task", "map_input_records")
	out := res.Counters.Value("task", "map_output_records")
	if in != 8000 || out >= in {
		t.Fatalf("sampling: %d -> %d", in, out)
	}
	km, err := tk.KMeans("sampled", gepeto.KMeansOptions{K: 3, MaxIter: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(km.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(km.Centroids))
	}
}

func TestToolkitEndToEndPOIAttack(t *testing.T) {
	tk := newTestToolkit(t)
	_, truth, _, err := tk.GenerateAndUpload(geolife.Config{Users: 2, TotalTraces: 20_000, Seed: 7}, "data")
	if err != nil {
		t.Fatal(err)
	}
	pois, res, err := tk.AttackPOI("data", time.Minute, gepeto.DefaultDJClusterOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pois) == 0 || len(res.Clusters) == 0 {
		t.Fatal("attack found nothing")
	}
	rep := EvaluatePOIAttack(pois, truth, 50)
	if rep.HomeRecovered < 1 {
		t.Errorf("home recovered for %d/2 users", rep.HomeRecovered)
	}
	// POICenters filters per user.
	user := pois[0].User
	centers := POICenters(pois, user)
	if len(centers) == 0 {
		t.Fatal("no centers for user")
	}
	for _, c := range centers {
		if !c.Valid() {
			t.Fatalf("invalid center %v", c)
		}
	}
	if len(POICenters(pois, "no-such-user")) != 0 {
		t.Fatal("phantom centers")
	}
}

func TestToolkitSanitizers(t *testing.T) {
	tk := newTestToolkit(t)
	ds, _, _, err := tk.GenerateAndUpload(geolife.Config{Users: 1, TotalTraces: 3000, Seed: 9}, "data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.SanitizeGaussian("data", "masked", 100, 1); err != nil {
		t.Fatal(err)
	}
	masked, err := tk.Download("masked")
	if err != nil {
		t.Fatal(err)
	}
	if masked.NumTraces() != ds.NumTraces() {
		t.Fatalf("mask changed trace count: %d vs %d", masked.NumTraces(), ds.NumTraces())
	}
	rep := privacy.MeasureUtility(ds, masked)
	if rep.MeanDistortionMeters < 40 || rep.MeanDistortionMeters > 200 {
		t.Fatalf("distortion %.1f", rep.MeanDistortionMeters)
	}

	if _, err := tk.SanitizeCloaking("data", "cloaked", 300); err != nil {
		t.Fatal(err)
	}
	cloaked, err := tk.Download("cloaked")
	if err != nil {
		t.Fatal(err)
	}
	uniq := map[geo.Point]bool{}
	for _, tr := range cloaked.Trails {
		for _, tc := range tr.Traces {
			uniq[tc.Point] = true
		}
	}
	if len(uniq) > 100 {
		t.Fatalf("cloaking left %d unique positions", len(uniq))
	}
}

func TestToolkitBuildRTree(t *testing.T) {
	tk := newTestToolkit(t)
	ds, _, _, err := tk.GenerateAndUpload(geolife.Config{Users: 1, TotalTraces: 2000, Seed: 11}, "data")
	if err != nil {
		t.Fatal(err)
	}
	entries, height, results, err := tk.BuildRTree("data", gepeto.RTreeBuildOptions{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if entries != ds.NumTraces() {
		t.Fatalf("entries = %d, want %d", entries, ds.NumTraces())
	}
	if height < 2 {
		t.Fatalf("height = %d", height)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestToolkitEngineAndUpload(t *testing.T) {
	tk := newTestToolkit(t)
	if tk.Engine() == nil {
		t.Fatal("Engine() returned nil")
	}
	ds := geolife.Generate(geolife.Config{Users: 1, TotalTraces: 500, Seed: 13})
	if err := tk.Upload(ds, "up"); err != nil {
		t.Fatal(err)
	}
	back, err := tk.Download("up")
	if err != nil || back.NumTraces() != 500 {
		t.Fatalf("Download after Upload: %v traces, err %v", back.NumTraces(), err)
	}
	// Upload to an occupied path fails cleanly.
	if err := tk.Upload(ds, "up"); err == nil {
		t.Fatal("double upload should error")
	}
}

func TestToolkitAttackPOIErrorPaths(t *testing.T) {
	tk := newTestToolkit(t)
	// Attack on a missing input directory must error, not panic.
	if _, _, err := tk.AttackPOI("nope", time.Minute, gepeto.DefaultDJClusterOptions()); err == nil {
		t.Fatal("want error for missing input")
	}
}
