// Package core is the top of the GEPETO reproduction: a Toolkit facade
// that assembles the simulated cluster, the DFS, and the MapReduce
// engine, and exposes the paper's operations — dataset generation and
// upload, down-sampling (§V), k-means (§VI), DJ-Cluster and MapReduce
// R-tree construction (§VII), plus the surrounding inference attacks
// and geo-sanitization mechanisms — behind one high-level API used by
// the CLI, the examples and the benchmark harness.
package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/trace"
)

// ClusterConfig shapes the simulated Hadoop deployment (paper §IV:
// one node for the jobtracker, one for the namenode, the rest hosting
// datanodes and tasktrackers; here the control roles are free, so all
// nodes carry slots).
type ClusterConfig struct {
	// Nodes is the number of worker nodes (default 7, the paper's
	// k-means testbed).
	Nodes int
	// Racks is the number of racks nodes spread over (default 2).
	Racks int
	// SlotsPerNode is the number of task slots per node (default 4).
	SlotsPerNode int
	// ChunkSize is the DFS chunk size in bytes (default 64 MB; the
	// paper evaluates 64 MB and 32 MB).
	ChunkSize int64
	// Replication is the DFS replication factor (default 3).
	Replication int
	// TaskOverhead simulates per-task scheduling cost.
	TaskOverhead time.Duration
	// Seed drives replica placement.
	Seed int64
	// Obs, if set, receives the engine's structured lifecycle events
	// (job/phase/attempt spans). Nil keeps the engine unobserved.
	Obs *obs.Bus
	// HistoryDir, if non-empty, mirrors finished-job history records to
	// this local directory in addition to the DFS's /_history/ — so a
	// later `gepeto history` invocation (a separate process) can read
	// them after the in-process DFS is gone.
	HistoryDir string
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Nodes <= 0 {
		c.Nodes = 7
	}
	if c.Racks <= 0 {
		c.Racks = 2
	}
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 4
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = dfs.DefaultChunkSize
	}
	if c.Replication <= 0 {
		c.Replication = dfs.DefaultReplication
	}
	return c
}

// Toolkit is a deployed GEPETO instance: cluster + DFS + engine.
type Toolkit struct {
	cfg     ClusterConfig
	cluster *cluster.Cluster
	fs      *dfs.FileSystem
	engine  *mapreduce.Engine
	history *obs.History
	// DeployTime is how long cluster bring-up took (the §VI
	// "deployment overhead" measurement).
	DeployTime time.Duration
}

// NewToolkit deploys a simulated cluster and file system and returns
// the toolkit. The elapsed bring-up time is recorded in DeployTime.
func NewToolkit(cfg ClusterConfig) (*Toolkit, error) {
	start := time.Now()
	cfg = cfg.withDefaults()
	c, err := cluster.NewUniform(cfg.Nodes, cfg.Racks, cfg.SlotsPerNode)
	if err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	fs, err := dfs.New(c, dfs.Config{
		ChunkSize:   cfg.ChunkSize,
		Replication: cfg.Replication,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	// Job history lives in the DFS (like Hadoop's /_history/), teed to
	// a local directory when one is configured so it outlives the
	// in-process file system.
	var histFS obs.FS = fs
	if cfg.HistoryDir != "" {
		histFS = obs.Tee(fs, obs.NewDirFS(cfg.HistoryDir))
	}
	hist := obs.NewHistory(histFS)
	e := mapreduce.NewEngine(c, fs, mapreduce.Options{
		TaskOverhead: cfg.TaskOverhead,
		Obs:          cfg.Obs,
		History:      hist,
	})
	return &Toolkit{
		cfg:        cfg,
		cluster:    c,
		fs:         fs,
		engine:     e,
		history:    hist,
		DeployTime: time.Since(start),
	}, nil
}

// Engine exposes the underlying MapReduce engine for custom jobs.
func (t *Toolkit) Engine() *mapreduce.Engine { return t.engine }

// FS exposes the distributed file system.
func (t *Toolkit) FS() *dfs.FileSystem { return t.fs }

// Cluster exposes the simulated cluster.
func (t *Toolkit) Cluster() *cluster.Cluster { return t.cluster }

// History exposes the job-history store fed by the engine.
func (t *Toolkit) History() *obs.History { return t.history }

// GenerateAndUpload generates a synthetic GeoLife-like dataset and
// uploads it to the DFS directory, returning the in-DFS dataset (read
// back so coordinates match the stored precision) and ground truth.
// The upload wall time is returned too — together with DeployTime it
// reproduces the paper's ~25 s deployment-overhead measurement.
func (t *Toolkit) GenerateAndUpload(cfg geolife.Config, dir string) (*trace.Dataset, *geolife.GroundTruth, time.Duration, error) {
	ds, truth := geolife.GenerateWithTruth(cfg)
	start := time.Now()
	if err := geolife.WriteRecords(t.fs, dir, ds); err != nil {
		return nil, nil, 0, err
	}
	uploadTime := time.Since(start)
	back, err := geolife.ReadRecords(t.fs, dir)
	if err != nil {
		return nil, nil, 0, err
	}
	return back, truth, uploadTime, nil
}

// Upload stores an existing dataset into the DFS directory.
func (t *Toolkit) Upload(ds *trace.Dataset, dir string) error {
	return geolife.WriteRecords(t.fs, dir, ds)
}

// Download reads a record directory (input data or any trace-emitting
// job's output) back into a dataset.
func (t *Toolkit) Download(dir string) (*trace.Dataset, error) {
	return geolife.ReadRecords(t.fs, dir)
}

// Sample runs the §V down-sampling job.
func (t *Toolkit) Sample(inputDir, outputDir string, window time.Duration, tech gepeto.SamplingTechnique) (*mapreduce.Result, error) {
	job := gepeto.SamplingJob("sampling", []string{inputDir}, outputDir, window, tech)
	return t.engine.Run(job)
}

// KMeans runs the §VI MapReduced k-means.
func (t *Toolkit) KMeans(inputDir string, opts gepeto.KMeansOptions) (*gepeto.KMeansResult, error) {
	return gepeto.KMeansMR(t.engine, []string{inputDir}, inputDir+"-kmeans-work", opts)
}

// DJCluster runs the full §VII DJ-Cluster pipeline.
func (t *Toolkit) DJCluster(inputDir string, opts gepeto.DJClusterOptions) (*gepeto.DJClusterResult, error) {
	return gepeto.DJClusterMR(t.engine, []string{inputDir}, inputDir+"-dj-work", opts)
}

// AttackPOI runs the end-to-end POI inference attack: down-sample,
// DJ-Cluster, extract and label POIs. It is GEPETO's primary inference
// attack (§VIII). The preprocessed dataset's timestamps label the POIs.
func (t *Toolkit) AttackPOI(inputDir string, window time.Duration, opts gepeto.DJClusterOptions) (pois []privacy.POI, res *gepeto.DJClusterResult, err error) {
	// The whole attack is one pipeline span, so the trace tree links the
	// sampling job and the DJ-Cluster sub-pipeline under a single root.
	spanID := "attack:" + inputDir
	t.cfg.Obs.Emit(obs.Event{Type: obs.SpanStart, Span: spanID,
		Detail: fmt.Sprintf("window=%s r=%gm", window, opts.RadiusMeters)})
	defer func() {
		ev := obs.Event{Type: obs.SpanEnd, Span: spanID}
		if err != nil {
			ev.Err = err.Error()
		}
		t.cfg.Obs.Emit(ev)
	}()
	sampledDir := inputDir + "-attack-sampled"
	job := gepeto.SamplingJob("sampling", []string{inputDir}, sampledDir, window, gepeto.SampleUpperLimit)
	job.Parent = spanID
	if _, err := t.engine.Run(job); err != nil {
		return nil, nil, err
	}
	opts.Parent = spanID
	res, err = t.DJCluster(sampledDir, opts)
	if err != nil {
		return nil, nil, err
	}
	pre, err := t.Download(sampledDir + "-dj-work/preprocessed")
	if err != nil {
		return nil, nil, err
	}
	pois, err = privacy.ExtractPOIs(res, privacy.TraceTimes(pre))
	if err != nil {
		return nil, nil, err
	}
	return pois, res, nil
}

// SanitizeGaussian runs the MapReduced Gaussian geographical mask.
func (t *Toolkit) SanitizeGaussian(inputDir, outputDir string, sigmaMeters float64, seed int64) (*mapreduce.Result, error) {
	return t.engine.Run(privacy.GaussianMaskJob("gaussian-mask", []string{inputDir}, outputDir, sigmaMeters, seed))
}

// SanitizeCloaking runs the MapReduced spatial-cloaking job.
func (t *Toolkit) SanitizeCloaking(inputDir, outputDir string, cellMeters float64) (*mapreduce.Result, error) {
	return t.engine.Run(privacy.CloakingJob("cloaking", []string{inputDir}, outputDir, cellMeters))
}

// BuildRTree runs the §VII-C MapReduce R-tree construction and reports
// entry count and height.
func (t *Toolkit) BuildRTree(inputDir string, opts gepeto.RTreeBuildOptions) (entries, height int, results []*mapreduce.Result, err error) {
	tree, results, err := gepeto.BuildRTreeMR(t.engine, []string{inputDir}, inputDir+"-rtree-work", opts)
	if err != nil {
		return 0, 0, results, err
	}
	return tree.Len(), tree.Height(), results, nil
}

// DatasetSizeMB returns the stored size of a DFS directory in MiB.
func (t *Toolkit) DatasetSizeMB(dir string) float64 {
	var total int64
	for _, f := range t.fs.List(dir) {
		if sz, err := t.fs.Size(f); err == nil {
			total += sz
		}
	}
	return float64(total) / (1 << 20)
}

// Describe summarises the deployment for reports.
func (t *Toolkit) Describe() string {
	return fmt.Sprintf("%d nodes x %d slots, %d racks, %d MB chunks, %dx replication",
		t.cfg.Nodes, t.cfg.SlotsPerNode, t.cfg.Racks, t.cfg.ChunkSize>>20, t.cfg.Replication)
}

// EvaluatePOIAttack scores POIs against ground truth (re-exported for
// facade completeness).
func EvaluatePOIAttack(pois []privacy.POI, truth *geolife.GroundTruth, matchRadius float64) privacy.POIAttackReport {
	return privacy.EvaluatePOIAttack(pois, truth, matchRadius)
}

// POICenters extracts the centers of a user's POIs from an attack
// result, for feeding into MMC construction.
func POICenters(pois []privacy.POI, user string) []geo.Point {
	var out []geo.Point
	for _, p := range pois {
		if p.User == user {
			out = append(out, p.Center)
		}
	}
	return out
}
