package synth

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/recordio"
	"repro/internal/trace"
)

func newFS(t *testing.T) *dfs.FileSystem {
	t.Helper()
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: 1 << 20, Replication: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// corpusDigest generates a corpus and returns per-file content hashes
// keyed by path, plus the run's stats.
func corpusDigest(t *testing.T, opts Options) (map[string][32]byte, *Stats) {
	t.Helper()
	fs := newFS(t)
	stats, err := ToDFS(fs, "synth", opts)
	if err != nil {
		t.Fatal(err)
	}
	digests := map[string][32]byte{}
	for _, path := range fs.List("synth") {
		data, err := fs.ReadAll(path)
		if err != nil {
			t.Fatal(err)
		}
		digests[path] = sha256.Sum256(data)
	}
	return digests, stats
}

// TestGeneratorDeterministicAcrossRunsAndWorkers is the generator's
// core contract: equal options give byte-identical corpora, and the
// Workers knob (the GOMAXPROCS default) affects wall clock only.
func TestGeneratorDeterministicAcrossRunsAndWorkers(t *testing.T) {
	base := Options{Users: 600, TracesPerUser: 6, Seed: 42, TemplateUsers: 4, FileTraces: 512}
	first, stats := corpusDigest(t, base)
	if stats.Files < 2 {
		t.Fatalf("fixture writes %d files; need several to exercise scheduling", stats.Files)
	}
	for _, workers := range []int{1, 3, 16} {
		opts := base
		opts.Workers = workers
		got, gotStats := corpusDigest(t, opts)
		if len(got) != len(first) {
			t.Fatalf("workers=%d: %d files, want %d", workers, len(got), len(first))
		}
		for path, want := range first {
			if got[path] != want {
				t.Fatalf("workers=%d: %s differs from the single-options baseline", workers, path)
			}
		}
		if gotStats.Traces != stats.Traces || gotStats.Bytes != stats.Bytes {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, gotStats, stats)
		}
	}
}

// TestGeneratorSeedChangesBytes guards against the opposite failure:
// a different seed must actually produce a different corpus.
func TestGeneratorSeedChangesBytes(t *testing.T) {
	a, _ := corpusDigest(t, Options{Users: 200, TracesPerUser: 6, Seed: 1, TemplateUsers: 4})
	b, _ := corpusDigest(t, Options{Users: 200, TracesPerUser: 6, Seed: 2, TemplateUsers: 4})
	same := true
	for path, d := range a {
		if b[path] != d {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 generated identical corpora")
	}
}

// TestGeneratorCorpusShape decodes the corpus and checks the promised
// shape: every user present, exactly TracesPerUser traces each, times
// non-decreasing per user, all points within the Beijing box's
// vicinity, and file count matching FileTraces batching.
func TestGeneratorCorpusShape(t *testing.T) {
	fs := newFS(t)
	opts := Options{Users: 300, TracesPerUser: 7, Seed: 9, TemplateUsers: 4, FileTraces: 700}
	stats, err := ToDFS(fs, "synth", opts)
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := 3 // ceil(300 / (700/7 = 100 users per file))
	if stats.Files != wantFiles || stats.Users != 300 {
		t.Fatalf("stats = %+v, want %d files over 300 users", stats, wantFiles)
	}
	if stats.Traces != int64(opts.Users*opts.TracesPerUser) {
		t.Fatalf("generated %d traces, want %d", stats.Traces, opts.Users*opts.TracesPerUser)
	}
	perUser := map[string][]trace.Trace{}
	files := fs.List("synth")
	sort.Strings(files)
	if len(files) != wantFiles {
		t.Fatalf("DFS holds %d files: %v", len(files), files)
	}
	for _, path := range files {
		data, err := fs.ReadAll(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := recordio.ScanAll(data, func(key, value string) error {
			tr, err := recordio.DecodeTraceValue(value)
			if err != nil {
				return err
			}
			perUser[tr.User] = append(perUser[tr.User], tr)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	if len(perUser) != opts.Users {
		t.Fatalf("corpus holds %d users, want %d", len(perUser), opts.Users)
	}
	for u := 0; u < opts.Users; u++ {
		user := fmt.Sprintf("s%07d", u)
		traces := perUser[user]
		if len(traces) != opts.TracesPerUser {
			t.Fatalf("user %s has %d traces, want %d", user, len(traces), opts.TracesPerUser)
		}
		var last time.Time
		for i, tr := range traces {
			if tr.Time.Before(last) {
				t.Fatalf("user %s trace %d goes back in time", user, i)
			}
			last = tr.Time
			if tr.Point.Lat < 38 || tr.Point.Lat > 42 || tr.Point.Lon < 114 || tr.Point.Lon > 119 {
				t.Fatalf("user %s trace %d far outside Beijing: %+v", user, i, tr.Point)
			}
		}
	}
}
