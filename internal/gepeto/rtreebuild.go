package gepeto

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
	"repro/internal/rtree"
	"repro/internal/sfc"
	"repro/internal/trace"
)

// RTreeBuildOptions configures the MapReduce R-tree construction of
// §VII-C (Algorithms 6-9, Fig. 6).
type RTreeBuildOptions struct {
	// Curve is the space-filling curve used by the partitioning
	// function: "zorder" (default) or "hilbert".
	Curve string
	// Partitions is the number p of spatial partitions, i.e. the
	// number of small R-trees built concurrently in phase 2 (default:
	// the cluster's total slots).
	Partitions int
	// SamplePerChunk is the number of objects each phase-1 mapper
	// samples from its chunk (default 200).
	SamplePerChunk int
	// FanOut is the R-tree node capacity (default
	// rtree.DefaultMaxEntries).
	FanOut int
	// Seed drives the phase-1 reservoir sampling.
	Seed int64
	// Parent is the enclosing observability span, when the build runs
	// inside a larger pipeline (DJ-Cluster sets this).
	Parent string
}

func (o RTreeBuildOptions) withDefaults(e *mapreduce.Engine) RTreeBuildOptions {
	if o.Curve == "" {
		o.Curve = "zorder"
	}
	if o.Partitions <= 0 {
		o.Partitions = e.Cluster().TotalSlots()
		if o.Partitions < 1 {
			o.Partitions = 1
		}
	}
	if o.SamplePerChunk <= 0 {
		o.SamplePerChunk = 200
	}
	if o.FanOut <= 0 {
		o.FanOut = rtree.DefaultMaxEntries
	}
	return o
}

const (
	confCurve       = "rtree.curve"
	confPartitions  = "rtree.partitions"
	confSampleSize  = "rtree.sample.per.chunk"
	confFanOut      = "rtree.fanout"
	confSeed        = "rtree.seed"
	confBoundsRect  = "rtree.bounds"
	cachePartitions = "partition-points"
)

// BuildRTreeMR constructs a global R-tree over all traces in
// inputPaths using the three-phase MapReduce process of §VII-C:
//
//  1. samples from every chunk are mapped onto a space-filling curve
//     and a single reducer picks p-1 partitioning points delimiting
//     equally sized, locality-preserving partitions (Algorithms 6-7);
//  2. mappers route every object to its partition and each of the p
//     reducers bulk-builds a small R-tree over its partition
//     (Algorithms 8-9);
//  3. the small R-trees are merged sequentially by a single node (the
//     driver) into the final tree indexing the whole dataset.
//
// The returned results are the phase-1 and phase-2 job reports.
func BuildRTreeMR(e *mapreduce.Engine, inputPaths []string, workDir string, opts RTreeBuildOptions) (tree *rtree.Tree, results []*mapreduce.Result, err error) {
	opts = opts.withDefaults(e)
	spanID := "rtree:" + workDir
	defer span(e, spanID, opts.Parent, fmt.Sprintf("curve=%s p=%d", opts.Curve, opts.Partitions), &err)()
	bounds := geolife.Beijing // quantisation domain for the curve
	conf := map[string]string{
		confCurve:      opts.Curve,
		confPartitions: strconv.Itoa(opts.Partitions),
		confSampleSize: strconv.Itoa(opts.SamplePerChunk),
		confFanOut:     strconv.Itoa(opts.FanOut),
		confSeed:       strconv.FormatInt(opts.Seed, 10),
		confBoundsRect: marshalRect(bounds),
	}

	// Phase 1: sample scalars, pick partitioning points.
	phase1Out := workDir + "/phase1"
	p1 := &rtreePhase1Job{
		Name:       "rtree-phase1-sample",
		Parent:     spanID,
		InputPaths: inputPaths,
		OutputPath: phase1Out,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, string, uint64] {
			return &sampleMapper{}
		},
		Reducer: func() mapreduce.TypedReducer[string, uint64, string, []uint64] {
			return &partitionPointsReducer{}
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.TraceValue{},
		MapKey:      recordio.RawString{},
		MapValue:    recordio.Uint64{},
		OutputKey:   recordio.RawString{},
		OutputValue: recordio.Uint64List{},
		NumReducers: 1,
		Conf:        conf,
	}
	r1, err := e.Run(p1.Build())
	if err != nil {
		return nil, results, err
	}
	results = append(results, r1)
	kvs, err := e.ReadOutput(phase1Out)
	if err != nil {
		return nil, results, err
	}
	if len(kvs) != 1 || kvs[0].Key != "bounds" {
		return nil, results, fmt.Errorf("rtree: phase 1 produced %d records, want 1 bounds record", len(kvs))
	}
	// The encoded scalar list goes into the distributed cache verbatim;
	// phase-2 mappers decode it with the same codec.
	partitionPoints := kvs[0].Value

	// Phase 2: partition objects and build small R-trees.
	phase2Out := workDir + "/phase2"
	p2 := &rtreePhase2Job{
		Name:       "rtree-phase2-build",
		Parent:     spanID,
		InputPaths: inputPaths,
		OutputPath: phase2Out,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, int64, recordio.IDPoint] {
			return &partitionMapper{}
		},
		Reducer: func() mapreduce.TypedReducer[int64, recordio.IDPoint, int64, []recordio.IDPoint] {
			return &subtreeReducer{}
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.TraceValue{},
		MapKey:      recordio.Int64{},
		MapValue:    recordio.IDPointCodec{},
		OutputKey:   recordio.Int64{},
		OutputValue: recordio.IDPointList{},
		NumReducers: opts.Partitions,
		// Partition i goes to reducer i: keys are partition indices.
		Partition: func(idx int64, n int) int {
			if idx < 0 {
				return 0
			}
			return int(idx % int64(n))
		},
		Conf:  conf,
		Cache: map[string][]byte{cachePartitions: []byte(partitionPoints)},
	}
	r2, err := e.Run(p2.Build())
	if err != nil {
		return nil, results, err
	}
	results = append(results, r2)

	// Phase 3: merge the small R-trees sequentially ("executed by a
	// single node due to its low computational complexity"). Subtrees
	// are merged in partition order, which follows the curve, so
	// adjacent subtrees are spatially close.
	defer span(e, spanID+"/merge", spanID, "sequential subtree merge", &err)()
	kvs, err = e.ReadOutput(phase2Out)
	if err != nil {
		return nil, results, err
	}
	sort.Slice(kvs, func(i, j int) bool {
		a, _ := (recordio.Int64{}).Decode(kvs[i].Key)
		b, _ := (recordio.Int64{}).Decode(kvs[j].Key)
		return a < b
	})
	subtrees := make([]*rtree.Tree, 0, len(kvs))
	for _, kv := range kvs {
		st, err := parseSubtree(kv.Value, opts.FanOut)
		if err != nil {
			return nil, results, err
		}
		subtrees = append(subtrees, st)
	}
	tree = rtree.Merge(opts.FanOut, subtrees...)
	return tree, results, nil
}

// rtreePhase1Job is the typed shape of the sampling phase: trace
// records in, ("sample", curve scalar) intermediates, one ("bounds",
// partitioning points) record out. Scalars travel as raw 8-byte
// big-endian values rather than decimal strings.
type rtreePhase1Job = mapreduce.TypedJob[string, trace.Trace, string, uint64, string, []uint64]

// rtreePhase2Job is the typed shape of the build phase: trace records
// in, (partition index, ID+point) intermediates, one (partition index,
// serialized entry list) record per partition out.
type rtreePhase2Job = mapreduce.TypedJob[string, trace.Trace, int64, recordio.IDPoint, int64, []recordio.IDPoint]

// sampleMapper is Algorithm 6: it reservoir-samples a predefined
// number of objects from its chunk and outputs the corresponding
// single-dimensional values obtained by applying the space-filling
// curve.
type sampleMapper struct {
	mapreduce.TypedMapperBase[string, uint64]
	curve     sfc.Curve
	rng       *rand.Rand
	size      int
	seen      int
	reservoir []uint64
}

func (m *sampleMapper) Setup(ctx *mapreduce.TaskContext) error {
	var err error
	m.curve, err = curveFromConf(ctx)
	if err != nil {
		return err
	}
	m.size, err = strconv.Atoi(ctx.ConfDefault(confSampleSize, "200"))
	if err != nil || m.size <= 0 {
		return fmt.Errorf("sampleMapper: bad sample size: %v", err)
	}
	seed, _ := strconv.ParseInt(ctx.ConfDefault(confSeed, "0"), 10, 64)
	// Mix the task ID into the seed so chunks sample independently
	// yet deterministically.
	m.rng = rand.New(rand.NewSource(seed ^ int64(hashString(ctx.TaskID))))
	m.reservoir = make([]uint64, 0, m.size)
	return nil
}

func (m *sampleMapper) Map(_ *mapreduce.TaskContext, _ string, t trace.Trace, _ mapreduce.TypedEmit[string, uint64]) error {
	m.seen++
	scalar := m.curve.Key(t.Point)
	if len(m.reservoir) < m.size {
		m.reservoir = append(m.reservoir, scalar)
	} else if j := m.rng.Intn(m.seen); j < m.size {
		m.reservoir[j] = scalar
	}
	return nil
}

func (m *sampleMapper) Cleanup(_ *mapreduce.TaskContext, emit mapreduce.TypedEmit[string, uint64]) error {
	for _, s := range m.reservoir {
		emit("sample", s)
	}
	return nil
}

// partitionPointsReducer is Algorithm 7: it collects the sampled
// scalars from all mappers, orders the set, and determines p-1
// partitioning points delimiting the boundaries of each partition.
type partitionPointsReducer struct {
	mapreduce.TypedReducerBase[string, []uint64]
}

func (r *partitionPointsReducer) Reduce(ctx *mapreduce.TaskContext, _ string, values []uint64, emit mapreduce.TypedEmit[string, []uint64]) error {
	p, err := strconv.Atoi(ctx.ConfDefault(confPartitions, "1"))
	if err != nil || p < 1 {
		return fmt.Errorf("partitionPointsReducer: bad partition count: %v", err)
	}
	scalars := append([]uint64(nil), values...)
	sort.Slice(scalars, func(i, j int) bool { return scalars[i] < scalars[j] })
	points := make([]uint64, 0, p-1)
	for i := 1; i < p; i++ {
		idx := i * len(scalars) / p
		if idx >= len(scalars) {
			idx = len(scalars) - 1
		}
		points = append(points, scalars[idx])
	}
	emit("bounds", points)
	return nil
}

// partitionMapper is Algorithm 8: it loads the partitioning points
// computed in phase 1 and assigns each object it reads to a partition
// identifier, the intermediate key, so all datapoints of a partition
// are collected by the same reducer.
type partitionMapper struct {
	mapreduce.TypedMapperBase[int64, recordio.IDPoint]
	curve  sfc.Curve
	points []uint64
}

func (m *partitionMapper) Setup(ctx *mapreduce.TaskContext) error {
	var err error
	m.curve, err = curveFromConf(ctx)
	if err != nil {
		return err
	}
	blob, ok := ctx.CacheFile(cachePartitions)
	if !ok {
		return fmt.Errorf("partitionMapper: partition points not in cache")
	}
	m.points, err = (recordio.Uint64List{}).Decode(string(blob))
	if err != nil {
		return fmt.Errorf("partitionMapper: bad partition points: %v", err)
	}
	return nil
}

func (m *partitionMapper) Map(_ *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[int64, recordio.IDPoint]) error {
	scalar := m.curve.Key(t.Point)
	idx := sort.Search(len(m.points), func(i int) bool { return m.points[i] > scalar })
	emit(int64(idx), recordio.IDPoint{ID: TraceID(t), P: t.Point})
	return nil
}

// subtreeReducer is Algorithm 9: each reducer constructs the R-tree
// associated with its partition, emitting it in serialized entry-list
// form (the tree is reconstructed losslessly by bulk-loading, so only
// the entries travel).
type subtreeReducer struct {
	mapreduce.TypedReducerBase[int64, []recordio.IDPoint]
}

func (r *subtreeReducer) Reduce(ctx *mapreduce.TaskContext, key int64, values []recordio.IDPoint, emit mapreduce.TypedEmit[int64, []recordio.IDPoint]) error {
	fanOut, err := strconv.Atoi(ctx.ConfDefault(confFanOut, strconv.Itoa(rtree.DefaultMaxEntries)))
	if err != nil || fanOut < 4 {
		fanOut = rtree.DefaultMaxEntries
	}
	entries := make([]rtree.Entry, 0, len(values))
	for _, v := range values {
		entries = append(entries, rtree.Entry{ID: v.ID, Point: v.P})
	}
	tree := rtree.BulkLoad(entries, fanOut)
	ctx.Counter("rtree", "subtree_entries").Inc(int64(tree.Len()))
	// Serialize in DFS order so the driver's bulk-load reconstruction
	// is lossless; only the entries travel.
	out := make([]recordio.IDPoint, 0, tree.Len())
	for _, e := range tree.All() {
		out = append(out, recordio.IDPoint{ID: e.ID, P: e.Point})
	}
	emit(key, out)
	return nil
}

// parseSubtree reconstructs a partition R-tree from its serialized
// entry list (a recordio.IDPointList encoding).
func parseSubtree(s string, fanOut int) (*rtree.Tree, error) {
	if s == "" {
		return rtree.New(fanOut), nil
	}
	pts, err := (recordio.IDPointList{}).Decode(s)
	if err != nil {
		return nil, fmt.Errorf("rtree: bad serialized subtree: %v", err)
	}
	entries := make([]rtree.Entry, 0, len(pts))
	for _, v := range pts {
		entries = append(entries, rtree.Entry{ID: v.ID, Point: v.P})
	}
	return rtree.BulkLoad(entries, fanOut), nil
}

func curveFromConf(ctx *mapreduce.TaskContext) (sfc.Curve, error) {
	bounds, err := parseRect(ctx.ConfDefault(confBoundsRect, marshalRect(geolife.Beijing)))
	if err != nil {
		return nil, err
	}
	return sfc.New(ctx.ConfDefault(confCurve, "zorder"), bounds)
}

func marshalRect(r geo.Rect) string {
	return fmt.Sprintf("%.6f,%.6f,%.6f,%.6f", r.Min.Lat, r.Min.Lon, r.Max.Lat, r.Max.Lon)
}

func parseRect(s string) (geo.Rect, error) {
	f := strings.Split(s, ",")
	if len(f) != 4 {
		return geo.Rect{}, fmt.Errorf("gepeto: bad rect %q", s)
	}
	vals := make([]float64, 4)
	for i, x := range f {
		v, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return geo.Rect{}, fmt.Errorf("gepeto: bad rect %q: %v", s, err)
		}
		vals[i] = v
	}
	return geo.Rect{
		Min: geo.Point{Lat: vals[0], Lon: vals[1]},
		Max: geo.Point{Lat: vals[2], Lon: vals[3]},
	}, nil
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
