package gepeto_test

import (
	"fmt"
	"log"
	"time"

	"repro/internal/geo"
	"repro/internal/gepeto"
	"repro/internal/trace"
)

// Example_sampling down-samples a dense trail with both techniques of
// the paper's §V: the representative closest to the window's upper
// limit (Fig. 2) or to its middle (Fig. 3).
func Example_sampling() {
	base := time.Unix(1_200_000_000, 0).UTC() // window-aligned
	tr := trace.Trail{User: "alice"}
	for _, sec := range []int64{5, 20, 55} {
		tr.Traces = append(tr.Traces, trace.Trace{
			User:  "alice",
			Point: geo.Point{Lat: 39.9, Lon: 116.4},
			Time:  base.Add(time.Duration(sec) * time.Second),
		})
	}
	ds := &trace.Dataset{Trails: []trace.Trail{tr}}

	upper := gepeto.SampleSequential(ds, time.Minute, gepeto.SampleUpperLimit)
	middle := gepeto.SampleSequential(ds, time.Minute, gepeto.SampleMiddle)
	fmt.Printf("upper-limit keeps +%ds\n", upper.Trails[0].Traces[0].Time.Unix()-base.Unix())
	fmt.Printf("middle keeps +%ds\n", middle.Trails[0].Traces[0].Time.Unix()-base.Unix())
	// Output:
	// upper-limit keeps +55s
	// middle keeps +20s
}

// Example_dJClusterSequential clusters a stationary dwell into a
// single density-joinable cluster.
func Example_dJClusterSequential() {
	home := geo.Point{Lat: 39.9042, Lon: 116.4074}
	tr := trace.Trail{User: "alice"}
	ts := time.Unix(1_200_000_000, 0).UTC()
	for i := 0; i < 8; i++ {
		tr.Traces = append(tr.Traces, trace.Trace{
			User:  "alice",
			Point: geo.Destination(home, float64(i*45), 4), // 4m GPS jitter
			Time:  ts.Add(time.Duration(i) * time.Minute),
		})
	}
	ds := &trace.Dataset{Trails: []trace.Trail{tr}}

	res := gepeto.DJClusterSequential(ds, gepeto.DefaultDJClusterOptions())
	if len(res.Clusters) != 1 {
		log.Fatalf("expected one cluster, got %d", len(res.Clusters))
	}
	c := res.Clusters[0]
	fmt.Printf("cluster of %d traces, centroid within 10m of home: %v\n",
		len(c.Members), geo.Haversine(c.Centroid, home) < 10)
	// Output:
	// cluster of 8 traces, centroid within 10m of home: true
}
