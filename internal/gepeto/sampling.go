package gepeto

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/recordio"
	"repro/internal/trace"
)

// SamplingTechnique selects which trace represents a time window
// (paper §V, Figures 2 and 3).
type SamplingTechnique int

const (
	// SampleUpperLimit keeps the trace closest to the upper limit of
	// the time window (Fig. 2).
	SampleUpperLimit SamplingTechnique = iota
	// SampleMiddle keeps the trace closest to the middle of the time
	// window (Fig. 3).
	SampleMiddle
)

// String returns the technique's canonical CLI name.
func (s SamplingTechnique) String() string {
	if s == SampleMiddle {
		return "middle"
	}
	return "upper"
}

// ParseSamplingTechnique parses "upper" or "middle".
func ParseSamplingTechnique(name string) (SamplingTechnique, error) {
	switch name {
	case "upper", "upper-limit":
		return SampleUpperLimit, nil
	case "middle", "center":
		return SampleMiddle, nil
	}
	return 0, fmt.Errorf("gepeto: unknown sampling technique %q", name)
}

// Conf keys consumed by the sampling mapper.
const (
	confSamplingWindow    = "sampling.window.seconds"
	confSamplingTechnique = "sampling.technique"
)

// SamplingJob builds the map-only down-sampling job of §V: mobility
// traces within each (user, time-window) pair are summarised by a
// single representative trace. The user supplies the window size and
// technique, and the input and output folders, exactly the runtime
// arguments the paper lists. The job is typed over trace records: its
// input codec reads text uploads and binary part files alike, and its
// output is binary recordio records keyed by user.
func SamplingJob(name string, inputPaths []string, outputPath string, window time.Duration, tech SamplingTechnique) *mapreduce.Job {
	tj := &traceFilterJob{
		Name:       name,
		InputPaths: inputPaths,
		OutputPath: outputPath,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, string, trace.Trace] {
			return &samplingMapper{}
		},
		InputKey:   recordio.RawString{},
		InputValue: recordio.TraceValue{},
		MapKey:     recordio.RawString{},
		MapValue:   recordio.TraceValue{},
		Conf: map[string]string{
			confSamplingWindow:    strconv.Itoa(int(window.Seconds())),
			confSamplingTechnique: tech.String(),
		},
	}
	return tj.Build()
}

// traceFilterJob is the common shape of the map-only trace→trace jobs
// (sampling, speed filter, dedup, the sanitizers): text-or-binary
// trace records in, binary trace records keyed by user out.
type traceFilterJob = mapreduce.TypedJob[string, trace.Trace, string, trace.Trace, string, trace.Trace]

// samplingMapper implements the paper's sampling as a pure map phase
// ("the reduce phase is not necessary as sampling represents a
// computationally cheap operation and can be performed in a single
// pass"). For each time window it generates a reference instant —
// the end or the middle of the window depending on the technique —
// compares each trace read from the chunk against it, and outputs only
// the trace closest to the reference.
type samplingMapper struct {
	mapreduce.TypedMapperBase[string, trace.Trace]

	window int64
	tech   SamplingTechnique
	// Per-user window state. GeoLife-style chunks hold one user's
	// traces in chronological order, but interleaved users are
	// handled too.
	state map[string]*windowState
}

type windowState struct {
	window   int64 // current window index
	best     trace.Trace
	bestDist float64 // |time - reference| in seconds
}

func (m *samplingMapper) Setup(ctx *mapreduce.TaskContext) error {
	w, err := strconv.ParseInt(ctx.ConfDefault(confSamplingWindow, "60"), 10, 64)
	if err != nil || w <= 0 {
		return fmt.Errorf("samplingMapper: bad %s: %v", confSamplingWindow, err)
	}
	m.window = w
	m.tech, err = ParseSamplingTechnique(ctx.ConfDefault(confSamplingTechnique, "upper"))
	if err != nil {
		return err
	}
	m.state = make(map[string]*windowState)
	return nil
}

// reference returns the reference instant of the window containing
// unix time ts.
func (m *samplingMapper) reference(window int64) float64 {
	start := float64(window * m.window)
	if m.tech == SampleMiddle {
		return start + float64(m.window)/2
	}
	return start + float64(m.window) // upper limit
}

func (m *samplingMapper) Map(ctx *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[string, trace.Trace]) error {
	w := t.Time.Unix() / m.window
	st, ok := m.state[t.User]
	if !ok {
		st = &windowState{window: w, bestDist: math.Inf(1)}
		m.state[t.User] = st
	}
	if w != st.window {
		// Window closed: flush its representative.
		emit(st.best.User, st.best)
		ctx.Counter("sampling", "windows").Inc(1)
		st.window = w
		st.bestDist = math.Inf(1)
	}
	if d := math.Abs(float64(t.Time.Unix()) - m.reference(w)); d < st.bestDist {
		st.best, st.bestDist = t, d
	}
	return nil
}

func (m *samplingMapper) Cleanup(ctx *mapreduce.TaskContext, emit mapreduce.TypedEmit[string, trace.Trace]) error {
	// Emit in sorted user order, not map order: speculative attempts
	// must produce byte-identical output.
	users := make([]string, 0, len(m.state))
	for u := range m.state {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		st := m.state[u]
		if !math.IsInf(st.bestDist, 1) {
			emit(st.best.User, st.best)
			ctx.Counter("sampling", "windows").Inc(1)
		}
	}
	return nil
}

// SampleSequential is the single-machine reference implementation of
// down-sampling, used for cross-checking the MapReduce version and as
// the baseline in speed-up benchmarks. Traces in each trail must be
// chronological (as trace.Dataset guarantees).
func SampleSequential(ds *trace.Dataset, window time.Duration, tech SamplingTechnique) *trace.Dataset {
	w := int64(window.Seconds())
	if w <= 0 {
		w = 60
	}
	reference := func(win int64) float64 {
		start := float64(win * w)
		if tech == SampleMiddle {
			return start + float64(w)/2
		}
		return start + float64(w)
	}
	out := &trace.Dataset{}
	for _, tr := range ds.Trails {
		kept := trace.Trail{User: tr.User}
		cur := int64(math.MinInt64)
		var best trace.Trace
		bestDist := math.Inf(1)
		for _, t := range tr.Traces {
			win := t.Time.Unix() / w
			if win != cur {
				if !math.IsInf(bestDist, 1) {
					kept.Traces = append(kept.Traces, best)
				}
				cur = win
				bestDist = math.Inf(1)
			}
			if d := math.Abs(float64(t.Time.Unix()) - reference(win)); d < bestDist {
				best, bestDist = t, d
			}
		}
		if !math.IsInf(bestDist, 1) {
			kept.Traces = append(kept.Traces, best)
		}
		out.Trails = append(out.Trails, kept)
	}
	return out
}
