package gepeto

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

func TestSamplingTechniqueParse(t *testing.T) {
	for name, want := range map[string]SamplingTechnique{
		"upper": SampleUpperLimit, "upper-limit": SampleUpperLimit,
		"middle": SampleMiddle, "center": SampleMiddle,
	} {
		got, err := ParseSamplingTechnique(name)
		if err != nil || got != want {
			t.Errorf("ParseSamplingTechnique(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSamplingTechnique("nope"); err == nil {
		t.Error("want error for unknown technique")
	}
	if SampleUpperLimit.String() != "upper" || SampleMiddle.String() != "middle" {
		t.Error("String names wrong")
	}
}

// mkTrail builds a trail with traces at the given second offsets.
func mkTrail(user string, secs ...int64) trace.Trail {
	tr := trace.Trail{User: user}
	for i, s := range secs {
		tr.Traces = append(tr.Traces, trace.Trace{
			User:  user,
			Point: geo.Point{Lat: 39.9 + float64(i)*0.0001, Lon: 116.4},
			Time:  time.Unix(1_200_000_000+s, 0).UTC(),
		})
	}
	return tr
}

func TestSampleSequentialUpperVsMiddle(t *testing.T) {
	// Window 60s anchored at unix 1_200_000_000 (divisible by 60).
	// Traces at +5, +20, +55 in window 0 and +70 in window 1.
	ds := &trace.Dataset{Trails: []trace.Trail{mkTrail("u", 5, 20, 55, 70)}}

	up := SampleSequential(ds, time.Minute, SampleUpperLimit)
	if got := up.NumTraces(); got != 2 {
		t.Fatalf("upper: %d traces, want 2", got)
	}
	// Upper limit: reference = 60; +55 is closest.
	if got := up.Trails[0].Traces[0].Time.Unix() - 1_200_000_000; got != 55 {
		t.Fatalf("upper: representative at +%d, want +55", got)
	}

	mid := SampleSequential(ds, time.Minute, SampleMiddle)
	// Middle: reference = 30; +20 is closest.
	if got := mid.Trails[0].Traces[0].Time.Unix() - 1_200_000_000; got != 20 {
		t.Fatalf("middle: representative at +%d, want +20", got)
	}
}

func TestSampleSequentialOnePerWindowInvariant(t *testing.T) {
	ds := &trace.Dataset{Trails: []trace.Trail{
		mkTrail("a", 0, 1, 2, 59, 60, 61, 119, 120, 300, 301),
		mkTrail("b", 30, 90, 150),
	}}
	for _, tech := range []SamplingTechnique{SampleUpperLimit, SampleMiddle} {
		out := SampleSequential(ds, time.Minute, tech)
		for _, tr := range out.Trails {
			seen := map[int64]bool{}
			for _, tc := range tr.Traces {
				w := tc.Time.Unix() / 60
				if seen[w] {
					t.Fatalf("tech %v: window %d has two representatives", tech, w)
				}
				seen[w] = true
			}
		}
		// a has windows {0,1,2,5}, b has {0,1,2}: 4+3 representatives.
		if got := out.NumTraces(); got != 7 {
			t.Fatalf("tech %v: %d traces, want 7", tech, got)
		}
	}
}

func TestSamplingMRMatchesSequential(t *testing.T) {
	h := newHarness(t, 3, 15_000, 64)
	for _, tc := range []struct {
		window time.Duration
		tech   SamplingTechnique
	}{
		{time.Minute, SampleUpperLimit},
		{time.Minute, SampleMiddle},
		{5 * time.Minute, SampleUpperLimit},
		{10 * time.Minute, SampleMiddle},
	} {
		out := fmt.Sprintf("out-%d-%s", int(tc.window.Seconds()), tc.tech)
		job := SamplingJob("sampling", []string{h.input}, out, tc.window, tc.tech)
		if _, err := h.e.Run(job); err != nil {
			t.Fatal(err)
		}
		got := h.tracesOf(t, out)
		want := SampleSequential(h.ds, tc.window, tc.tech)

		// The MR version may emit one extra representative per
		// (user, window straddling a chunk boundary); with 64 KB
		// chunks (~1400 records) that is rare. Require near-equality
		// and verify the one-per-window invariant modulo boundaries.
		gw, ww := got.NumTraces(), want.NumTraces()
		if gw < ww || gw > ww+ww/20+4 {
			t.Fatalf("%v/%v: MR produced %d traces, sequential %d", tc.window, tc.tech, gw, ww)
		}
		// Every sequential representative must appear in MR output.
		gotIDs := map[string]bool{}
		for _, tr := range got.Trails {
			for _, x := range tr.Traces {
				gotIDs[TraceID(x)] = true
			}
		}
		for _, tr := range want.Trails {
			for _, x := range tr.Traces {
				if !gotIDs[TraceID(x)] {
					t.Fatalf("%v/%v: representative %s missing from MR output", tc.window, tc.tech, TraceID(x))
				}
			}
		}
	}
}

func TestSamplingMRSingleChunkExact(t *testing.T) {
	// With one chunk per user file there are no boundary effects:
	// MR output must equal the sequential output exactly.
	h := newHarness(t, 2, 6_000, 1<<10) // 1 MB chunks: one per file
	job := SamplingJob("sampling", []string{h.input}, "out", time.Minute, SampleUpperLimit)
	if _, err := h.e.Run(job); err != nil {
		t.Fatal(err)
	}
	got := h.tracesOf(t, "out")
	want := SampleSequential(h.ds, time.Minute, SampleUpperLimit)
	if got.NumTraces() != want.NumTraces() {
		t.Fatalf("MR %d traces, sequential %d", got.NumTraces(), want.NumTraces())
	}
	for i := range want.Trails {
		w, g := want.Trails[i], got.Trails[i]
		if w.User != g.User || len(w.Traces) != len(g.Traces) {
			t.Fatalf("trail %d mismatch", i)
		}
		for j := range w.Traces {
			if TraceID(w.Traces[j]) != TraceID(g.Traces[j]) {
				t.Fatalf("trail %d trace %d: %s vs %s", i, j, TraceID(g.Traces[j]), TraceID(w.Traces[j]))
			}
		}
	}
}

func TestSamplingReducesDatasetTableIShape(t *testing.T) {
	// Down-sampling must collapse the dense dataset drastically even
	// at 1 minute (Table I) — the dataset density test lives in
	// geolife; here we verify the MR job end-to-end.
	h := newHarness(t, 3, 30_000, 256)
	job := SamplingJob("sampling", []string{h.input}, "out", time.Minute, SampleUpperLimit)
	res, err := h.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	in := res.Counters.Value("task", "map_input_records")
	outN := res.Counters.Value("task", "map_output_records")
	if in != 30_000 {
		t.Fatalf("input records = %d", in)
	}
	ratio := float64(in) / float64(outN)
	if ratio < 10 || ratio > 17 {
		t.Fatalf("1-min collapse ratio %.1f outside [10,17] (Table I shape)", ratio)
	}
}

func TestSamplingJobRunsOnDirectoryInput(t *testing.T) {
	h := newHarness(t, 2, 2_000, 64)
	job := SamplingJob("sampling", []string{h.input}, "out", time.Minute, SampleUpperLimit)
	res, err := h.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks < 2 {
		t.Fatalf("expected at least one map task per user file, got %d", res.MapTasks)
	}
	if res.ReduceTasks != 0 {
		t.Fatal("sampling must be map-only")
	}
}
