// Job-kind registrations for out-of-process execution. A worker binary
// that imports this package (as cmd/gepeto does) can materialise these
// jobs from their wire form; see mapreduce.RegisterKind.

package gepeto

import (
	"repro/internal/mapreduce"
	"repro/internal/recordio"
	"repro/internal/trace"
)

// KindKMeansIter names the k-means iteration job family: one MapReduce
// job per Lloyd iteration, centroids in the distributed cache, partial
// sums as intermediates. Every iteration shares this kind — only the
// per-job data (name, cache blob, paths) differs on the wire.
const KindKMeansIter = "gepeto/kmeans-iter"

func init() {
	// The template fixes the job family's functional surface (mapper,
	// reducer, combiner, codecs and the derived key order). Jobs built
	// by KMeansMR carry the same functions, so a worker re-materialising
	// from this registration runs identical task code. The combiner is
	// always registered; whether a given job uses it travels on the wire
	// (JobWire.HasCombiner, driven by KMeansOptions.UseCombiner).
	tj := &kmeansIterJob{
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, int64, recordio.PointSum] {
			return &kmeansMapper{}
		},
		Reducer: func() mapreduce.TypedReducer[int64, recordio.PointSum, int64, recordio.PointSum] {
			return kmeansReducer{}
		},
		Combiner: func() mapreduce.TypedReducer[int64, recordio.PointSum, int64, recordio.PointSum] {
			return kmeansReducer{}
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.TraceValue{},
		MapKey:      recordio.Int64{},
		MapValue:    recordio.PointSumCodec{},
		OutputKey:   recordio.Int64{},
		OutputValue: recordio.PointSumCodec{},
	}
	mapreduce.RegisterKind(KindKMeansIter, mapreduce.KindOf(tj.Build()))
}
