package gepeto

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/trace"
)

func TestPreprocessSequentialFiltersMovement(t *testing.T) {
	// A trail: 10 stationary traces at P (60s apart), then 10 moving
	// traces at 20 km/h, then 10 stationary at Q.
	p := geo.Point{Lat: 39.9, Lon: 116.4}
	q := geo.Destination(p, 90, 3000)
	var traces []trace.Trace
	ts := time.Unix(1_200_000_000, 0).UTC()
	add := func(pt geo.Point) {
		traces = append(traces, trace.Trace{User: "u", Point: pt, Time: ts})
		ts = ts.Add(time.Minute)
	}
	for i := 0; i < 10; i++ {
		add(geo.Destination(p, float64(i*37), 3)) // 3m jitter
	}
	for i := 1; i <= 10; i++ {
		add(geo.Destination(p, 90, float64(i)*300)) // 300m/min = 18 km/h
	}
	for i := 0; i < 10; i++ {
		add(geo.Destination(q, float64(i*53), 3))
	}
	ds := trace.FromTraces(traces)
	afterSpeed, afterDedup := PreprocessSequential(ds, 2.0, 2.0)

	// Roughly the 20 stationary traces survive (boundary traces have
	// mixed speeds).
	n := afterSpeed.NumTraces()
	if n < 16 || n > 22 {
		t.Fatalf("after speed filter: %d traces, want ~18-20", n)
	}
	// Jitter is 3m > 2m dedup radius, so dedup removes nearly nothing.
	if d := afterDedup.NumTraces(); n-d > 4 {
		t.Fatalf("dedup removed %d traces, want <= 4", n-d)
	}
	// All survivors are near P or Q.
	for _, tr := range afterDedup.Trails {
		for _, tc := range tr.Traces {
			if geo.Haversine(tc.Point, p) > 50 && geo.Haversine(tc.Point, q) > 50 {
				t.Fatalf("moving trace survived: %v", tc.Point)
			}
		}
	}
}

func TestPreprocessMRMatchesSequentialTableIV(t *testing.T) {
	// Run the Fig. 5 pipeline on a 1-min-sampled dataset and compare
	// stage counts with the sequential reference (Table IV workflow).
	h := newHarness(t, 3, 20_000, 1<<10) // large chunks: no boundary effects
	sampled := SampleSequential(h.ds, time.Minute, SampleUpperLimit)
	if err := geolife.WriteRecords(h.e.FS(), "sampled", sampled); err != nil {
		t.Fatal(err)
	}
	sampled, err := geolife.ReadRecords(h.e.FS(), "sampled")
	if err != nil {
		t.Fatal(err)
	}

	_, errRun := h.e.RunPipeline(
		SpeedFilterJob("speed", []string{"sampled"}, "stage1", 2.0),
		DedupJob("dedup", []string{"stage1"}, "stage2", 1.0),
	)
	if errRun != nil {
		t.Fatal(errRun)
	}
	gotSpeed := h.tracesOf(t, "stage1")
	gotDedup := h.tracesOf(t, "stage2")
	wantSpeed, wantDedup := PreprocessSequential(sampled, 2.0, 1.0)

	if g, w := gotSpeed.NumTraces(), wantSpeed.NumTraces(); g != w {
		t.Fatalf("speed filter: MR %d vs sequential %d", g, w)
	}
	if g, w := gotDedup.NumTraces(), wantDedup.NumTraces(); g != w {
		t.Fatalf("dedup: MR %d vs sequential %d", g, w)
	}

	// Table IV shape: the speed filter keeps ~55-62%, dedup almost all.
	keep := float64(gotSpeed.NumTraces()) / float64(sampled.NumTraces())
	if keep < 0.40 || keep > 0.80 {
		t.Errorf("speed filter kept %.0f%%, outside [40%%,80%%] (paper: 55.7%%)", keep*100)
	}
	dedupKeep := float64(gotDedup.NumTraces()) / float64(gotSpeed.NumTraces())
	if dedupKeep < 0.95 {
		t.Errorf("dedup kept %.1f%%, want >= 95%% (paper: 99.2%%)", dedupKeep*100)
	}
}

func TestDJClusterSequentialFindsPOIs(t *testing.T) {
	// Cluster a single user's preprocessed, sampled trail; clusters
	// must coincide with the user's true POIs.
	ds, truth := geolife.GenerateWithTruth(geolife.Config{Users: 1, TotalTraces: 12_000, Seed: 21})
	sampled := SampleSequential(ds, time.Minute, SampleUpperLimit)
	_, pre := PreprocessSequential(sampled, 2.0, 2.0)

	res := DJClusterSequential(pre, DefaultDJClusterOptions())
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters found")
	}
	user := ds.Trails[0].User
	pois := truth.POIs(user)
	// Each big cluster must sit within 50 m of some true POI.
	for _, c := range res.Clusters {
		if len(c.Members) < 10 {
			continue
		}
		best := 1e12
		for _, p := range pois {
			if d := geo.Haversine(c.Centroid, p); d < best {
				best = d
			}
		}
		if best > 50 {
			t.Errorf("cluster %s (%d members) centroid %.0fm from nearest POI", c.ID, len(c.Members), best)
		}
	}
	// Home and work must be recovered by some cluster.
	for _, target := range []geo.Point{truth.Homes[user], truth.Works[user]} {
		found := false
		for _, c := range res.Clusters {
			if geo.Haversine(c.Centroid, target) < 50 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no cluster within 50m of POI %v", target)
		}
	}
}

func TestDJClusterMRMatchesSequential(t *testing.T) {
	h := newHarness(t, 2, 14_000, 256)
	// Sample first so the R-tree and neighborhoods stay small.
	sampled := SampleSequential(h.ds, time.Minute, SampleUpperLimit)
	if err := geolife.WriteRecords(h.e.FS(), "sampled", sampled); err != nil {
		t.Fatal(err)
	}
	sampled, err := geolife.ReadRecords(h.e.FS(), "sampled")
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultDJClusterOptions()
	mr, err := DJClusterMR(h.e, []string{"sampled"}, "djwork", opts)
	if err != nil {
		t.Fatal(err)
	}
	_, pre := PreprocessSequential(sampled, opts.MaxSpeedKmh, opts.DupRadiusMeters)
	seq := DJClusterSequential(pre, opts)

	if len(mr.Clusters) != len(seq.Clusters) {
		t.Fatalf("cluster counts differ: MR %d vs seq %d", len(mr.Clusters), len(seq.Clusters))
	}
	if mr.Noise != seq.Noise {
		t.Fatalf("noise differs: MR %d vs seq %d", mr.Noise, seq.Noise)
	}
	// Compare cluster membership as sets (IDs are order-dependent).
	seqSets := map[string]bool{}
	for _, c := range seq.Clusters {
		seqSets[joinIDs(c.Members)] = true
	}
	for _, c := range mr.Clusters {
		if !seqSets[joinIDs(c.Members)] {
			t.Fatalf("MR cluster %s (%d members) not found in sequential result", c.ID, len(c.Members))
		}
	}
	// Pipeline stage counts must be consistent.
	if mr.AfterDedup != int64(pre.NumTraces()) {
		t.Fatalf("AfterDedup = %d, sequential %d", mr.AfterDedup, pre.NumTraces())
	}
}

func joinIDs(ids []string) string {
	out := ""
	for _, id := range ids {
		out += id + ";"
	}
	return out
}

func TestDJClusterMRInvariants(t *testing.T) {
	h := newHarness(t, 2, 10_000, 256)
	sampled := SampleSequential(h.ds, time.Minute, SampleUpperLimit)
	if err := geolife.WriteRecords(h.e.FS(), "sampled", sampled); err != nil {
		t.Fatal(err)
	}
	opts := DefaultDJClusterOptions()
	res, err := DJClusterMR(h.e, []string{"sampled"}, "djwork", opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, c := range res.Clusters {
		// Paper: clusters contain at least MinPts traces...
		if len(c.Members) < opts.MinPts {
			t.Errorf("cluster %s has %d members < MinPts %d", c.ID, len(c.Members), opts.MinPts)
		}
		// ...and are non-overlapping.
		for _, m := range c.Members {
			if prev, dup := seen[m]; dup {
				t.Fatalf("trace %s in clusters %s and %s", m, prev, c.ID)
			}
			seen[m] = c.ID
		}
		// Per-user clustering: one user per cluster.
		for _, m := range c.Members {
			if UserOfTraceID(m) != c.User {
				t.Fatalf("cluster %s (user %s) contains trace of %s", c.ID, c.User, UserOfTraceID(m))
			}
		}
	}
	// Noise count must be consistent: noise traces are those whose own
	// neighborhood was under-dense; they may still appear inside other
	// traces' clusters, so only a weak bound holds.
	if res.Noise < 0 || res.Noise > res.AfterDedup {
		t.Errorf("noise = %d outside [0, %d]", res.Noise, res.AfterDedup)
	}
	if len(res.JobResults) < 5 {
		t.Errorf("expected >=5 job results (2 preprocess + 2 rtree + 1 cluster), got %d", len(res.JobResults))
	}
}

func TestDJClusterOptionsDefaults(t *testing.T) {
	o := DJClusterOptions{}.withDefaults()
	if o.RadiusMeters != 25 || o.MinPts != 4 || o.MaxSpeedKmh != 2 || o.DupRadiusMeters != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	if DefaultDJClusterOptions().PerUser != true {
		t.Fatal("DefaultDJClusterOptions must be per-user")
	}
}

func TestDJClusterGlobalModeFindsSharedHotspot(t *testing.T) {
	// PerUser=false clusters across users: a location visited by two
	// different users becomes one citywide hotspot cluster.
	hotspot := geo.Point{Lat: 39.92, Lon: 116.42}
	var traces []trace.Trace
	base := time.Unix(1_207_000_000, 0).UTC()
	for u, user := range []string{"a", "b"} {
		for i := 0; i < 10; i++ {
			traces = append(traces, trace.Trace{
				User:  user,
				Point: geo.Destination(hotspot, float64(i*37+u*91), 5),
				Time:  base.Add(time.Duration(u*3600+i*60) * time.Second),
			})
		}
	}
	ds := trace.FromTraces(traces)

	perUser := DJClusterSequential(ds, DJClusterOptions{PerUser: true}.withDefaults())
	global := DJClusterSequential(ds, DJClusterOptions{PerUser: false}.withDefaults())

	if len(perUser.Clusters) != 2 {
		t.Fatalf("per-user clusters = %d, want 2 (one per user)", len(perUser.Clusters))
	}
	if len(global.Clusters) != 1 {
		t.Fatalf("global clusters = %d, want 1 shared hotspot", len(global.Clusters))
	}
	if got := len(global.Clusters[0].Members); got != 20 {
		t.Fatalf("hotspot cluster has %d members, want 20", got)
	}
	if global.Clusters[0].User != "" {
		t.Fatalf("global cluster should have no owner, got %q", global.Clusters[0].User)
	}
}
