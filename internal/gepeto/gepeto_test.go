package gepeto

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/geolife"
	"repro/internal/mapreduce"
	"repro/internal/trace"
)

// testHarness bundles an engine plus an uploaded synthetic dataset.
type testHarness struct {
	e     *mapreduce.Engine
	ds    *trace.Dataset
	truth *geolife.GroundTruth
	input string
}

// newHarness spins up a 6-node cluster with a chunk size small enough
// to yield several map tasks, generates a dataset and uploads it. The
// dataset is round-tripped through the record format so in-memory and
// DFS coordinates match exactly.
func newHarness(t *testing.T, users, traces int, chunkKB int64) *testHarness {
	t.Helper()
	c, err := cluster.NewUniform(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: chunkKB * 1024, Replication: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := mapreduce.NewEngine(c, fs, mapreduce.Options{})
	ds, truth := geolife.GenerateWithTruth(geolife.Config{Users: users, TotalTraces: traces, Seed: 11})
	if err := geolife.WriteRecords(fs, "geolife", ds); err != nil {
		t.Fatal(err)
	}
	// Read back so float precision matches the stored records.
	ds, err = geolife.ReadRecords(fs, "geolife")
	if err != nil {
		t.Fatal(err)
	}
	return &testHarness{e: e, ds: ds, truth: truth, input: "geolife"}
}

// tracesOf reads a job output directory back into a dataset.
func (h *testHarness) tracesOf(t *testing.T, dir string) *trace.Dataset {
	t.Helper()
	ds, err := geolife.ReadRecords(h.e.FS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTraceIDRoundTrip(t *testing.T) {
	ds := geolife.Generate(geolife.Config{Users: 2, TotalTraces: 100, Seed: 1})
	for _, tr := range ds.Trails {
		for _, tc := range tr.Traces {
			id := TraceID(tc)
			if UserOfTraceID(id) != tc.User {
				t.Fatalf("UserOfTraceID(%q) = %q, want %q", id, UserOfTraceID(id), tc.User)
			}
		}
	}
}

func TestParsePointErrors(t *testing.T) {
	for _, s := range []string{"", "1", "x,2", "1,y"} {
		if _, err := parsePoint(s); err == nil {
			t.Errorf("parsePoint(%q): want error", s)
		}
	}
	p, err := parsePoint("39.9042,116.4074")
	if err != nil || p.Lat != 39.9042 || p.Lon != 116.4074 {
		t.Fatalf("parsePoint = %v, %v", p, err)
	}
}

func TestParseRectRoundTrip(t *testing.T) {
	r := geolife.Beijing
	back, err := parseRect(marshalRect(r))
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round-trip: %+v vs %+v", back, r)
	}
	for _, s := range []string{"", "1,2,3", "a,b,c,d"} {
		if _, err := parseRect(s); err == nil {
			t.Errorf("parseRect(%q): want error", s)
		}
	}
}
