package gepeto

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
	"repro/internal/trace"
)

// KMeansOptions carries the runtime arguments of the MapReduced
// k-means (paper Table II): the number of clusters, the distance
// metric, the convergence delta and the iteration cap, plus engine
// knobs (combiner, seed).
type KMeansOptions struct {
	// K is the number of clusters (paper experiments use k=11).
	K int
	// Distance is the metric used for the assignment step; the paper
	// compares squared Euclidean and Haversine.
	Distance geo.Metric
	// ConvergenceDelta stops iterating when no centroid moves by more
	// than this many degrees (paper uses 0.5 with k=11... in degree
	// space; default 1e-4 ≈ 10 m).
	ConvergenceDelta float64
	// MaxIter caps the number of iterations (paper uses 150).
	MaxIter int
	// UseCombiner enables the map-side partial-sum combiner described
	// in §VI (Related work): partial sums are computed before the
	// reducers start, cutting the shuffle volume.
	UseCombiner bool
	// PlusPlusInit selects k-means++ seeding instead of uniform random
	// centroids. §VI notes the clustering "is influenced by ... the
	// method for choosing the initial centers"; ++ seeding spreads the
	// initial centroids and sharply reduces the local-minimum traps of
	// uniform seeding.
	PlusPlusInit bool
	// Seed drives the random initial-centroid choice.
	Seed int64
	// Parent is the enclosing observability span, when the clustering
	// runs inside a larger pipeline ("" for a standalone run).
	Parent string
	// MaxShuffleBytes bounds each map task's in-memory shuffle buffer;
	// over budget, runs spill to DFS and reducers stream an external
	// merge (see mapreduce.Job.MaxShuffleBytes). 0 keeps the
	// all-in-memory shuffle.
	MaxShuffleBytes int64
	// MemoryTargetBytes derives a per-task shuffle budget from a total
	// memory target when MaxShuffleBytes is unset; see
	// mapreduce.Job.MemoryTargetBytes.
	MemoryTargetBytes int64
	// CompressSpill DEFLATE-compresses spill run files.
	CompressSpill bool
}

func (o KMeansOptions) withDefaults() KMeansOptions {
	if o.K <= 0 {
		o.K = 11
	}
	if o.ConvergenceDelta <= 0 {
		o.ConvergenceDelta = 1e-4
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 150
	}
	return o
}

// KMeansResult reports a finished clustering.
type KMeansResult struct {
	// Centroids are the final cluster centers.
	Centroids []geo.Point
	// Sizes[i] is the number of traces assigned to centroid i in the
	// final iteration.
	Sizes []int
	// Iterations is the number of MapReduce iterations executed.
	Iterations int
	// Converged reports whether the delta criterion was met (false if
	// MaxIter stopped the loop).
	Converged bool
	// IterationResults holds the per-iteration job results, whose
	// wall times populate Table III.
	IterationResults []*mapreduce.Result
}

const (
	confKMeansDistance = "kmeans.distance"
	cacheCentroids     = "centroids"
)

// KMeansMR runs the MapReduced k-means of §VI over the record files in
// inputPaths: each iteration is one MapReduce job whose map phase
// assigns every mobility trace to the closest centroid and whose
// reduce phase computes the new centroid of each cluster; the driver
// (this function) picks random initial centroids, submits one job per
// iteration with the current centroids in the distributed cache, and
// stops on convergence — the workflow of Fig. 4. Intermediate output
// directories are created under workDir and cleaned up afterwards.
func KMeansMR(e *mapreduce.Engine, inputPaths []string, workDir string, opts KMeansOptions) (res *KMeansResult, err error) {
	opts = opts.withDefaults()
	spanID := "kmeans:" + workDir
	defer span(e, spanID, opts.Parent, fmt.Sprintf("k=%d maxIter=%d", opts.K, opts.MaxIter), &err)()
	var centroids []geo.Point
	if opts.PlusPlusInit {
		var pts []geo.Point
		pts, err = readAllPoints(e.FS(), inputPaths)
		if err == nil {
			centroids, err = plusPlusCenters(pts, opts.K, opts.Seed, opts.Distance)
		}
	} else {
		centroids, err = randomCenters(e.FS(), inputPaths, opts.K, opts.Seed)
	}
	if err != nil {
		return nil, err
	}
	res = &KMeansResult{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		tj := &kmeansIterJob{
			Name:       fmt.Sprintf("kmeans-iter-%03d", iter),
			Kind:       KindKMeansIter,
			Parent:     spanID,
			InputPaths: inputPaths,
			OutputPath: fmt.Sprintf("%s/clusters-%03d", workDir, iter),
			Mapper: func() mapreduce.TypedMapper[string, trace.Trace, int64, recordio.PointSum] {
				return &kmeansMapper{}
			},
			Reducer: func() mapreduce.TypedReducer[int64, recordio.PointSum, int64, recordio.PointSum] {
				return kmeansReducer{}
			},
			InputKey:          recordio.RawString{},
			InputValue:        recordio.TraceValue{},
			MapKey:            recordio.Int64{},
			MapValue:          recordio.PointSumCodec{},
			OutputKey:         recordio.Int64{},
			OutputValue:       recordio.PointSumCodec{},
			NumReducers:       reducersFor(e, opts.K),
			Conf:              map[string]string{confKMeansDistance: opts.Distance.String()},
			Cache:             map[string][]byte{cacheCentroids: marshalCentroids(centroids)},
			MaxShuffleBytes:   opts.MaxShuffleBytes,
			MemoryTargetBytes: opts.MemoryTargetBytes,
			CompressSpill:     opts.CompressSpill,
		}
		if opts.UseCombiner {
			tj.Combiner = func() mapreduce.TypedReducer[int64, recordio.PointSum, int64, recordio.PointSum] {
				return kmeansReducer{}
			}
		}
		job := tj.Build()
		jr, err := e.Run(job)
		if err != nil {
			return nil, err
		}
		res.IterationResults = append(res.IterationResults, jr)
		res.Iterations++

		next, sizes, err := readCentroids(e, job.OutputPath, centroids)
		if err != nil {
			return nil, err
		}
		if err := e.FS().DeleteDir(job.OutputPath); err != nil {
			return nil, fmt.Errorf("kmeans: clearing iteration output: %v", err)
		}
		moved := maxMovement(centroids, next)
		centroids = next
		res.Sizes = sizes
		if moved <= opts.ConvergenceDelta {
			res.Converged = true
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// kmeansIterJob is one k-means iteration in typed form: trace records
// in, (cluster index, partial coordinate sum) intermediates, and one
// aggregated PointSum per cluster out. Cluster indices travel as
// order-preserving int64 encodings and partial sums as raw float64
// bits — the combiner no longer loses precision to decimal rendering.
type kmeansIterJob = mapreduce.TypedJob[string, trace.Trace, int64, recordio.PointSum, int64, recordio.PointSum]

// kmeansMapper is Algorithm 1: load the centroids from the distributed
// cache in setup, then assign each trace to its closest centroid.
type kmeansMapper struct {
	mapreduce.TypedMapperBase[int64, recordio.PointSum]
	centroids []geo.Point
	metric    geo.Metric
}

func (m *kmeansMapper) Setup(ctx *mapreduce.TaskContext) error {
	blob, ok := ctx.CacheFile(cacheCentroids)
	if !ok {
		return fmt.Errorf("kmeansMapper: centroids not in distributed cache")
	}
	var err error
	m.centroids, err = unmarshalCentroids(blob)
	if err != nil {
		return err
	}
	m.metric, err = geo.ParseMetric(ctx.ConfDefault(confKMeansDistance, "squaredeuclidean"))
	return err
}

func (m *kmeansMapper) Map(_ *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[int64, recordio.PointSum]) error {
	best, bestDist := 0, m.metric.Distance(t.Point, m.centroids[0])
	for i := 1; i < len(m.centroids); i++ {
		if d := m.metric.Distance(t.Point, m.centroids[i]); d < bestDist {
			best, bestDist = i, d
		}
	}
	// Emit in partial-sum form so the combiner can aggregate.
	emit(int64(best), recordio.PointSum{LatSum: t.Point.Lat, LonSum: t.Point.Lon, N: 1})
	return nil
}

// kmeansReducer is Algorithm 2 and doubles as the combiner: the merge
// of partial sums is associative, so the same reduction runs map-side
// and reduce-side, and the driver computes the average afterwards.
// Sums stay full-precision float64 end to end — the old text codec
// rendered combiner output through %f, quantising each partial sum to
// six decimals and drifting the centroids when combining was on.
type kmeansReducer struct {
	mapreduce.TypedReducerBase[int64, recordio.PointSum]
}

func (kmeansReducer) Reduce(_ *mapreduce.TaskContext, key int64, values []recordio.PointSum, emit mapreduce.TypedEmit[int64, recordio.PointSum]) error {
	var sum recordio.PointSum
	for _, v := range values {
		sum.Merge(v)
	}
	emit(key, sum)
	return nil
}

// randomCenters is Algorithm 3's initialization phase: "randomly
// choose k points from the input dataset as initial centroids",
// performed by a single node because it is computationally cheap. It
// reservoir-samples k traces from the input files.
func randomCenters(fs *dfs.FileSystem, inputPaths []string, k int, seed int64) ([]geo.Point, error) {
	rng := rand.New(rand.NewSource(seed))
	reservoir := make([]geo.Point, 0, k)
	n := 0
	err := geolife.ForEachTrace(fs, inputPaths, func(t trace.Trace) error {
		n++
		if len(reservoir) < k {
			reservoir = append(reservoir, t.Point)
		} else if j := rng.Intn(n); j < k {
			reservoir[j] = t.Point
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kmeans init: %v", err)
	}
	if len(reservoir) < k {
		return nil, fmt.Errorf("kmeans init: dataset has %d traces, need at least k=%d", n, k)
	}
	return reservoir, nil
}

// readAllPoints loads every trace coordinate from the input files (the
// single-node initialization pass, like randomCenters but retaining all
// points for ++-style seeding).
func readAllPoints(fs *dfs.FileSystem, inputPaths []string) ([]geo.Point, error) {
	var pts []geo.Point
	err := geolife.ForEachTrace(fs, inputPaths, func(t trace.Trace) error {
		pts = append(pts, t.Point)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kmeans init: %v", err)
	}
	return pts, nil
}

// plusPlusCenters implements k-means++ seeding (Arthur & Vassilvitskii):
// the first centroid is uniform random; each subsequent one is drawn
// with probability proportional to the squared distance from the
// nearest centroid chosen so far.
func plusPlusCenters(points []geo.Point, k int, seed int64, metric geo.Metric) ([]geo.Point, error) {
	if len(points) < k {
		return nil, fmt.Errorf("kmeans init: dataset has %d traces, need at least k=%d", len(points), k)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geo.Point, 0, k)
	centers = append(centers, points[rng.Intn(len(points))])
	// dist[i] tracks squared distance to the nearest chosen center.
	dist := make([]float64, len(points))
	for i, p := range points {
		dist[i] = geo.SquaredEuclidean(p, centers[0])
	}
	_ = metric // selection always uses squared Euclidean, the ++ paper's D²
	for len(centers) < k {
		var total float64
		for _, d := range dist {
			total += d
		}
		if total == 0 {
			// All remaining points coincide with a center: fall back
			// to uniform picks among the rest.
			centers = append(centers, points[rng.Intn(len(points))])
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, d := range dist {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		c := points[idx]
		centers = append(centers, c)
		for i, p := range points {
			if d := geo.SquaredEuclidean(p, c); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return centers, nil
}

// KMeansPlusPlusSequential is KMeansSequential with ++-seeding, for
// initialization ablations.
func KMeansPlusPlusSequential(points []geo.Point, opts KMeansOptions) *KMeansResult {
	opts = opts.withDefaults()
	centers, err := plusPlusCenters(points, opts.K, opts.Seed, opts.Distance)
	if err != nil {
		return &KMeansResult{}
	}
	return kmeansIterate(points, centers, opts)
}

// readCentroids decodes an iteration's output — one aggregated
// PointSum per cluster — into the next centroid set, keeping the
// previous centroid for clusters that received no points. Averaging
// happens here, driver-side, on full-precision sums; the result is
// quantised to record precision so MR and sequential runs agree.
func readCentroids(e *mapreduce.Engine, outputPath string, prev []geo.Point) ([]geo.Point, []int, error) {
	kvs, err := e.ReadOutput(outputPath)
	if err != nil {
		return nil, nil, err
	}
	next := append([]geo.Point(nil), prev...)
	sizes := make([]int, len(prev))
	for _, kv := range kvs {
		idx, err := (recordio.Int64{}).Decode(kv.Key)
		if err != nil || idx < 0 || idx >= int64(len(prev)) {
			return nil, nil, fmt.Errorf("kmeans: bad centroid key %q", kv.Key)
		}
		sum, err := (recordio.PointSumCodec{}).Decode(kv.Value)
		if err != nil {
			return nil, nil, fmt.Errorf("kmeans: bad centroid value: %v", err)
		}
		if sum.N <= 0 {
			continue
		}
		next[idx] = geo.Point{
			Lat: quantize(sum.LatSum / float64(sum.N)),
			Lon: quantize(sum.LonSum / float64(sum.N)),
		}
		sizes[idx] = int(sum.N)
	}
	return next, sizes, nil
}

func maxMovement(a, b []geo.Point) float64 {
	worst := 0.0
	for i := range a {
		if d := geo.MetricEuclidean.Distance(a[i], b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func marshalCentroids(cs []geo.Point) []byte {
	var sb strings.Builder
	for i, c := range cs {
		fmt.Fprintf(&sb, "%d\t%.6f,%.6f\n", i, c.Lat, c.Lon)
	}
	return []byte(sb.String())
}

func unmarshalCentroids(blob []byte) ([]geo.Point, error) {
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	out := make([]geo.Point, len(lines))
	for _, line := range lines {
		idxS, ptS, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("kmeans: bad centroid line %q", line)
		}
		idx, err := strconv.Atoi(idxS)
		if err != nil || idx < 0 || idx >= len(lines) {
			return nil, fmt.Errorf("kmeans: bad centroid index %q", idxS)
		}
		p, err := parsePoint(ptS)
		if err != nil {
			return nil, err
		}
		out[idx] = p
	}
	return out, nil
}

// reducersFor picks the reduce-task count: min(k, total slots), since
// more than one reducer per cluster key is useless.
func reducersFor(e *mapreduce.Engine, k int) int {
	slots := e.Cluster().TotalSlots()
	if k < slots {
		return k
	}
	if slots < 1 {
		return 1
	}
	return slots
}

// KMeansAssignments runs one extra map-only pass labeling every trace
// with its final centroid: output key = centroid index, value = the
// trace record. Used to materialise cluster membership for inference.
func KMeansAssignments(e *mapreduce.Engine, inputPaths []string, outputPath string, centroids []geo.Point, metric geo.Metric) (*mapreduce.Result, error) {
	tj := &assignJob{
		Name:       "kmeans-assign",
		InputPaths: inputPaths,
		OutputPath: outputPath,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, int64, trace.Trace] {
			return &assignMapper{}
		},
		InputKey:   recordio.RawString{},
		InputValue: recordio.TraceValue{},
		MapKey:     recordio.Int64{},
		MapValue:   recordio.TraceValue{},
		Conf:       map[string]string{confKMeansDistance: metric.String()},
		Cache:      map[string][]byte{cacheCentroids: marshalCentroids(centroids)},
	}
	return e.Run(tj.Build())
}

// assignJob is the map-only labeling pass: trace records in, (centroid
// index, full trace record) out.
type assignJob = mapreduce.TypedJob[string, trace.Trace, int64, trace.Trace, int64, trace.Trace]

// assignMapper emits (centroid index, full trace record). It reuses
// the kmeansMapper centroid-cache setup but keeps the whole trace as
// the value instead of collapsing it to a partial sum.
type assignMapper struct {
	mapreduce.TypedMapperBase[int64, trace.Trace]
	inner kmeansMapper
}

func (m *assignMapper) Setup(ctx *mapreduce.TaskContext) error { return m.inner.Setup(ctx) }

func (m *assignMapper) Map(_ *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[int64, trace.Trace]) error {
	best, bestDist := 0, m.inner.metric.Distance(t.Point, m.inner.centroids[0])
	for i := 1; i < len(m.inner.centroids); i++ {
		if d := m.inner.metric.Distance(t.Point, m.inner.centroids[i]); d < bestDist {
			best, bestDist = i, d
		}
	}
	emit(int64(best), t)
	return nil
}

// KMeansSequential is the classical single-machine k-means over a set
// of points, the baseline the MapReduce version is checked against.
// It uses the same initialization, assignment, update and convergence
// rules as KMeansMR, so with identical inputs, k and seed the two
// agree to within floating-point summation tolerance (the distributed
// update step adds cluster members in a different order).
func KMeansSequential(points []geo.Point, opts KMeansOptions) *KMeansResult {
	opts = opts.withDefaults()
	if len(points) < opts.K {
		return &KMeansResult{}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	// Reservoir-sample initial centers, matching randomCenters.
	centroids := make([]geo.Point, 0, opts.K)
	for i, p := range points {
		if len(centroids) < opts.K {
			centroids = append(centroids, p)
		} else if j := rng.Intn(i + 1); j < opts.K {
			centroids[j] = p
		}
	}
	return kmeansIterate(points, centroids, opts)
}

// kmeansIterate runs the assignment/update loop from the given initial
// centroids (shared by the uniform and ++-seeded sequential variants).
func kmeansIterate(points []geo.Point, centroids []geo.Point, opts KMeansOptions) *KMeansResult {
	res := &KMeansResult{}
	assign := make([]int, len(points))
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations++
		// Assignment step.
		for i, p := range points {
			best, bestDist := 0, opts.Distance.Distance(p, centroids[0])
			for c := 1; c < len(centroids); c++ {
				if d := opts.Distance.Distance(p, centroids[c]); d < bestDist {
					best, bestDist = c, d
				}
			}
			assign[i] = best
		}
		// Update step: average each cluster dimension by dimension,
		// quantised to record precision like the MR version.
		latSum := make([]float64, opts.K)
		lonSum := make([]float64, opts.K)
		count := make([]int, opts.K)
		for i, p := range points {
			c := assign[i]
			latSum[c] += quantize(p.Lat)
			lonSum[c] += quantize(p.Lon)
			count[c]++
		}
		next := append([]geo.Point(nil), centroids...)
		for c := 0; c < opts.K; c++ {
			if count[c] > 0 {
				next[c] = geo.Point{
					Lat: quantize(latSum[c] / float64(count[c])),
					Lon: quantize(lonSum[c] / float64(count[c])),
				}
			}
		}
		moved := maxMovement(centroids, next)
		centroids = next
		res.Sizes = count
		if moved <= opts.ConvergenceDelta {
			res.Converged = true
			break
		}
	}
	res.Centroids = centroids
	return res
}

// quantize rounds to the 6-decimal precision of the record format so
// sequential and MapReduce runs agree bit-for-bit.
func quantize(v float64) float64 {
	s := strconv.FormatFloat(v, 'f', 6, 64)
	q, _ := strconv.ParseFloat(s, 64)
	return q
}

// SortPointsByLat orders points south-to-north (stable helper for
// comparing centroid sets in tests and reports).
func SortPointsByLat(ps []geo.Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Lat != ps[j].Lat {
			return ps[i].Lat < ps[j].Lat
		}
		return ps[i].Lon < ps[j].Lon
	})
}
