package gepeto

import (
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/recordio"
	"repro/internal/rtree"
)

func TestBuildRTreeMRIndexesEverything(t *testing.T) {
	for _, curve := range []string{"zorder", "hilbert"} {
		h := newHarness(t, 2, 4_000, 64)
		tree, results, err := BuildRTreeMR(h.e, []string{h.input}, "rtw-"+curve, RTreeBuildOptions{
			Curve: curve, Partitions: 4, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != h.ds.NumTraces() {
			t.Fatalf("%s: tree has %d entries, want %d", curve, tree.Len(), h.ds.NumTraces())
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", curve, err)
		}
		if len(results) != 2 {
			t.Fatalf("%s: %d job results, want 2", curve, len(results))
		}
		// Phase 2 used the requested number of reducers.
		if results[1].ReduceTasks != 4 {
			t.Fatalf("%s: phase 2 ran %d reducers, want 4", curve, results[1].ReduceTasks)
		}
	}
}

func TestBuildRTreeMRMatchesSequentialQueries(t *testing.T) {
	h := newHarness(t, 2, 5_000, 128)
	mrTree, _, err := BuildRTreeMR(h.e, []string{h.input}, "rtw", RTreeBuildOptions{Partitions: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference: bulk-load everything directly.
	var entries []rtree.Entry
	for _, tr := range h.ds.Trails {
		for _, tc := range tr.Traces {
			entries = append(entries, rtree.Entry{ID: TraceID(tc), Point: tc.Point})
		}
	}
	seqTree := rtree.BulkLoad(entries, rtree.DefaultMaxEntries)

	centers := []geo.Point{
		h.ds.Trails[0].Traces[0].Point,
		h.ds.Trails[1].Traces[100].Point,
		{Lat: 39.9, Lon: 116.4},
	}
	for _, c := range centers {
		for _, radius := range []float64{25, 100, 1000} {
			got := idsOfEntries(mrTree.Within(c, radius))
			want := idsOfEntries(seqTree.Within(c, radius))
			if len(got) != len(want) {
				t.Fatalf("Within(%v, %v): MR %d vs seq %d", c, radius, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Within(%v, %v): result %d: %s vs %s", c, radius, i, got[i], want[i])
				}
			}
		}
	}
}

func idsOfEntries(es []rtree.Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}

func TestBuildRTreeMRPartitionBalance(t *testing.T) {
	// The partitioning function "should yield equally-sized partitions";
	// with sampled boundaries, partitions must be within a reasonable
	// factor of each other.
	h := newHarness(t, 3, 9_000, 128)
	const parts = 6
	_, results, err := BuildRTreeMR(h.e, []string{h.input}, "rtw", RTreeBuildOptions{
		Partitions: parts, Curve: "hilbert", Seed: 5, SamplePerChunk: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phase-2 reduce groups = partitions actually populated.
	groups := results[1].Counters.Value("task", "reduce_input_groups")
	if groups != parts {
		t.Fatalf("populated partitions = %d, want %d", groups, parts)
	}
	total := results[1].Counters.Value("rtree", "subtree_entries")
	if total != int64(h.ds.NumTraces()) {
		t.Fatalf("subtree entries = %d, want %d", total, h.ds.NumTraces())
	}
}

func TestBuildRTreeMRSinglePartition(t *testing.T) {
	h := newHarness(t, 1, 1_000, 1<<20)
	tree, _, err := BuildRTreeMR(h.e, []string{h.input}, "rtw", RTreeBuildOptions{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1_000 {
		t.Fatalf("tree has %d entries", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRTreeMRDefaultOptions(t *testing.T) {
	h := newHarness(t, 1, 500, 1<<20)
	opts := RTreeBuildOptions{}.withDefaults(h.e)
	if opts.Curve != "zorder" || opts.Partitions != h.e.Cluster().TotalSlots() ||
		opts.SamplePerChunk != 200 || opts.FanOut != rtree.DefaultMaxEntries {
		t.Fatalf("defaults = %+v", opts)
	}
}

func TestParseSubtreeErrors(t *testing.T) {
	enc := string((recordio.IDPointList{}).Append(nil, []recordio.IDPoint{
		{ID: "u1:100", P: geo.Point{Lat: 39.9, Lon: 116.4}},
		{ID: "u2:200", P: geo.Point{Lat: 40.0, Lon: 116.5}},
	}))
	if _, err := parseSubtree(enc[:len(enc)-1], 8); err == nil {
		t.Fatal("want error for truncated encoding")
	}
	if _, err := parseSubtree(enc+"\x00", 8); err == nil {
		t.Fatal("want error for trailing bytes")
	}
	tr, err := parseSubtree(enc, 8)
	if err != nil || tr.Len() != 2 {
		t.Fatalf("valid subtree: len=%d, %v", tr.Len(), err)
	}
	tr, err = parseSubtree("", 8)
	if err != nil || tr.Len() != 0 {
		t.Fatalf("empty subtree: %v, %v", tr, err)
	}
}
