package gepeto

import (
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// span emits a SpanStart on the engine's bus and returns a closer that
// emits the matching SpanEnd. errp, if non-nil, is read at close time
// so the span records the pipeline's failure (use with named returns):
//
//	defer span(e, "kmeans:"+workDir, "", "k=11", &err)()
//
// The bus is nil-safe, so uninstrumented engines pay only the two
// calls.
func span(e *mapreduce.Engine, id, parent, detail string, errp *error) func() {
	bus := e.Obs()
	bus.Emit(obs.Event{Type: obs.SpanStart, Span: id, Parent: parent, Detail: detail})
	return func() {
		ev := obs.Event{Type: obs.SpanEnd, Span: id}
		if errp != nil && *errp != nil {
			ev.Err = (*errp).Error()
		}
		bus.Emit(ev)
	}
}
