package gepeto

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// DJClusterOptions parameterises DJ-Cluster (paper §VII): the
// neighborhood radius r, the density lower bound MinPts, and the
// preprocessing thresholds.
type DJClusterOptions struct {
	// RadiusMeters is r, the radius of the circle defining a
	// neighborhood (default 25 m).
	RadiusMeters float64
	// MinPts is the minimum number of points a neighborhood must
	// contain (default 4).
	MinPts int
	// MaxSpeedKmh is the preprocessing threshold v: traces moving
	// faster are discarded (default 2 km/h, §VII-A).
	MaxSpeedKmh float64
	// DupRadiusMeters is the redundancy threshold: consecutive traces
	// closer than this are collapsed to the first (default 1 m, which
	// removes ~1% of sampled traces like Table IV's dedup column).
	DupRadiusMeters float64
	// PerUser restricts neighborhoods to traces of the same user, so
	// clusters are personal POIs rather than citywide hotspots
	// (default true, matching GEPETO's POI-extraction use).
	PerUser bool
	// RTree configures the MapReduce R-tree construction used to
	// index the preprocessed traces (§VII-C).
	RTree RTreeBuildOptions
	// Parent is the enclosing observability span, when the clustering
	// runs inside a larger pipeline ("" for a standalone run).
	Parent string
}

func (o DJClusterOptions) withDefaults() DJClusterOptions {
	if o.RadiusMeters <= 0 {
		o.RadiusMeters = 25
	}
	if o.MinPts <= 0 {
		o.MinPts = 4
	}
	if o.MaxSpeedKmh <= 0 {
		o.MaxSpeedKmh = 2
	}
	if o.DupRadiusMeters <= 0 {
		o.DupRadiusMeters = 1
	}
	return o
}

// DefaultDJClusterOptions returns the defaults with PerUser enabled.
func DefaultDJClusterOptions() DJClusterOptions {
	return DJClusterOptions{PerUser: true}.withDefaults()
}

// Cluster is one density-joinable cluster produced by DJ-Cluster.
type Cluster struct {
	// ID is a stable cluster identifier.
	ID string
	// User is the owning user when clustering per-user ("" for
	// global clustering).
	User string
	// Members are the TraceIDs of the cluster's traces.
	Members []string
	// Centroid is the mean position of the members.
	Centroid geo.Point
}

// DJClusterResult reports a finished DJ-Cluster run.
type DJClusterResult struct {
	// Clusters are the discovered clusters, sorted by descending size.
	Clusters []Cluster
	// Noise is the number of traces marked as noise (neighborhood
	// smaller than MinPts).
	Noise int64
	// PreprocessedTraces is the trace count after the two filtering
	// jobs, and the per-stage counts match Table IV's columns.
	InputTraces, AfterSpeedFilter, AfterDedup int64
	// JobResults holds every MapReduce job executed (speed filter,
	// dedup, R-tree phases, neighborhood+merge).
	JobResults []*mapreduce.Result
}

const (
	confMaxSpeed  = "djcluster.maxspeed.kmh"
	confDupRadius = "djcluster.dupradius.meters"
	confRadius    = "djcluster.radius.meters"
	confMinPts    = "djcluster.minpts"
	confPerUser   = "djcluster.peruser"
	cacheRTree    = "rtree"
	constKey      = "c" // single-reducer key for the merging phase
)

// DJClusterMR runs the full MapReduced DJ-Cluster over the record
// files in inputPaths, staging intermediates under workDir:
//
//  1. preprocessing — two pipelined map-only jobs (Fig. 5) that keep
//     stationary traces and collapse redundant consecutive ones;
//  2. R-tree construction over the preprocessed traces (§VII-C),
//     shipped to every node via the distributed cache;
//  3. neighborhood computation (map, Algorithm 4) and cluster merging
//     (single reducer, Algorithm 5).
func DJClusterMR(e *mapreduce.Engine, inputPaths []string, workDir string, opts DJClusterOptions) (res *DJClusterResult, err error) {
	opts = opts.withDefaults()
	res = &DJClusterResult{}
	spanID := "djcluster:" + workDir
	defer span(e, spanID, opts.Parent, fmt.Sprintf("r=%gm minPts=%d", opts.RadiusMeters, opts.MinPts), &err)()

	// Phase 1: preprocessing pipeline.
	preSpan := spanID + "/preprocess"
	closePre := span(e, preSpan, spanID, "speed filter + dedup", &err)
	speedOut := workDir + "/preprocessed-speed"
	dedupOut := workDir + "/preprocessed"
	speedJob := SpeedFilterJob("djcluster-speedfilter", inputPaths, speedOut, opts.MaxSpeedKmh)
	dedupJob := DedupJob("djcluster-dedup", []string{speedOut}, dedupOut, opts.DupRadiusMeters)
	speedJob.Parent, dedupJob.Parent = preSpan, preSpan
	jobs, err := e.RunPipeline(speedJob, dedupJob)
	res.JobResults = append(res.JobResults, jobs...)
	closePre()
	if err != nil {
		return res, err
	}
	res.InputTraces = jobs[0].Counters.Value(mapreduce.CounterGroupTask, mapreduce.CounterMapInputRecords)
	res.AfterSpeedFilter = jobs[0].Counters.Value(mapreduce.CounterGroupTask, mapreduce.CounterMapOutputRecords)
	res.AfterDedup = jobs[1].Counters.Value(mapreduce.CounterGroupTask, mapreduce.CounterMapOutputRecords)

	// Phase 2: index the preprocessed traces in an R-tree, built with
	// the MapReduce construction of §VII-C.
	opts.RTree.Parent = spanID
	tree, treeJobs, err := BuildRTreeMR(e, []string{dedupOut}, workDir+"/rtree", opts.RTree)
	res.JobResults = append(res.JobResults, treeJobs...)
	if err != nil {
		return res, err
	}
	var treeBlob bytes.Buffer
	if _, err := tree.WriteTo(&treeBlob); err != nil {
		return res, err
	}

	// Phase 3: neighborhood map + merging reduce.
	clusterOut := workDir + "/clusters"
	ntj := &neighborhoodJob{
		Name:       "djcluster-neighborhood",
		Parent:     spanID,
		InputPaths: []string{dedupOut},
		OutputPath: clusterOut,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, string, []string] {
			return &neighborhoodMapper{}
		},
		Reducer: func() mapreduce.TypedReducer[string, []string, string, string] {
			return &mergeReducer{}
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.TraceValue{},
		MapKey:      recordio.RawString{},
		MapValue:    recordio.StringList{},
		OutputKey:   recordio.RawString{},
		OutputValue: recordio.RawString{},
		// "A single reducer implements the last phase of the
		// algorithm as the merging of joinable neighborhoods must be
		// done by a centralized entity."
		NumReducers: 1,
		Conf: map[string]string{
			confRadius:  strconv.FormatFloat(opts.RadiusMeters, 'f', -1, 64),
			confMinPts:  strconv.Itoa(opts.MinPts),
			confPerUser: strconv.FormatBool(opts.PerUser),
		},
		Cache: map[string][]byte{cacheRTree: treeBlob.Bytes()},
	}
	jr, err := e.Run(ntj.Build())
	if err != nil {
		return res, err
	}
	res.JobResults = append(res.JobResults, jr)
	res.Noise = jr.Counters.Value("djcluster", "noise")

	// Materialise clusters, computing centroids from the index.
	id2pt := make(map[string]geo.Point, tree.Len())
	for _, entry := range tree.All() {
		id2pt[entry.ID] = entry.Point
	}
	kvs, err := e.ReadOutput(clusterOut)
	if err != nil {
		return res, err
	}
	for _, kv := range kvs {
		members := strings.Split(kv.Value, ",")
		c := Cluster{ID: kv.Key, Members: members}
		if opts.PerUser && len(members) > 0 {
			c.User = UserOfTraceID(members[0])
		}
		var lat, lon float64
		for _, m := range members {
			p, ok := id2pt[m]
			if !ok {
				return res, fmt.Errorf("djcluster: member %q missing from index", m)
			}
			lat += p.Lat
			lon += p.Lon
		}
		n := float64(len(members))
		c.Centroid = geo.Point{Lat: lat / n, Lon: lon / n}
		res.Clusters = append(res.Clusters, c)
	}
	sortClusters(res.Clusters)
	return res, nil
}

// SpeedFilterJob builds the first preprocessing job of Fig. 5: a
// map-only job that computes the speed of each trace — the distance
// traveled between the previous and the next traces divided by the
// corresponding time difference — and outputs only the traces whose
// speed is at most maxSpeedKmh.
func SpeedFilterJob(name string, inputPaths []string, outputPath string, maxSpeedKmh float64) *mapreduce.Job {
	tj := &traceFilterJob{
		Name:       name,
		InputPaths: inputPaths,
		OutputPath: outputPath,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, string, trace.Trace] {
			return &speedFilterMapper{}
		},
		InputKey:   recordio.RawString{},
		InputValue: recordio.TraceValue{},
		MapKey:     recordio.RawString{},
		MapValue:   recordio.TraceValue{},
		Conf:       map[string]string{confMaxSpeed: strconv.FormatFloat(maxSpeedKmh, 'f', -1, 64)},
	}
	return tj.Build()
}

// speedFilterMapper keeps a two-trace lookbehind per user so each
// interior trace's speed uses the centered difference; the first and
// last traces of a chunk fall back to one-sided speeds.
type speedFilterMapper struct {
	mapreduce.TypedMapperBase[string, trace.Trace]
	maxSpeed float64
	state    map[string]*speedState
}

type speedState struct {
	prev, cur trace.Trace
	n         int // traces seen
}

func (m *speedFilterMapper) Setup(ctx *mapreduce.TaskContext) error {
	v, err := strconv.ParseFloat(ctx.ConfDefault(confMaxSpeed, "2"), 64)
	if err != nil || v <= 0 {
		return fmt.Errorf("speedFilterMapper: bad %s: %v", confMaxSpeed, err)
	}
	m.maxSpeed = v
	m.state = make(map[string]*speedState)
	return nil
}

func (m *speedFilterMapper) Map(ctx *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[string, trace.Trace]) error {
	st, ok := m.state[t.User]
	if !ok {
		m.state[t.User] = &speedState{cur: t, n: 1}
		return nil
	}
	st.n++
	if st.n == 2 {
		// First trace of the chunk: one-sided speed cur -> t.
		m.filter(ctx, st.cur, st.cur, t, emit)
	} else {
		m.filter(ctx, st.prev, st.cur, t, emit)
	}
	st.prev, st.cur = st.cur, t
	return nil
}

func (m *speedFilterMapper) Cleanup(ctx *mapreduce.TaskContext, emit mapreduce.TypedEmit[string, trace.Trace]) error {
	// Flush each user's final trace with a one-sided speed.
	users := make([]string, 0, len(m.state))
	for u := range m.state {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		st := m.state[u]
		if st.n == 1 {
			// Lone trace: no speed evidence; it is stationary by
			// definition of the filter (nothing to move from).
			emit(st.cur.User, st.cur)
			ctx.Counter("djcluster", "speed_kept").Inc(1)
			continue
		}
		m.filter(ctx, st.prev, st.cur, st.cur, emit)
	}
	return nil
}

// filter emits cur iff its speed (prev -> next over their time span)
// is within the threshold.
func (m *speedFilterMapper) filter(ctx *mapreduce.TaskContext, prev, cur, next trace.Trace, emit mapreduce.TypedEmit[string, trace.Trace]) {
	dt := next.Time.Sub(prev.Time).Seconds()
	v := geo.SpeedKmh(prev.Point, next.Point, dt)
	if v <= m.maxSpeed {
		emit(cur.User, cur)
		ctx.Counter("djcluster", "speed_kept").Inc(1)
	} else {
		ctx.Counter("djcluster", "speed_dropped").Inc(1)
	}
}

// DedupJob builds the second preprocessing job of Fig. 5: a map-only
// job that removes redundant consecutive traces — traces with almost
// the same spatial coordinate but different timestamps — keeping the
// first of each redundant sequence.
func DedupJob(name string, inputPaths []string, outputPath string, dupRadiusMeters float64) *mapreduce.Job {
	tj := &traceFilterJob{
		Name:       name,
		InputPaths: inputPaths,
		OutputPath: outputPath,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, string, trace.Trace] {
			return &dedupMapper{}
		},
		InputKey:   recordio.RawString{},
		InputValue: recordio.TraceValue{},
		MapKey:     recordio.RawString{},
		MapValue:   recordio.TraceValue{},
		Conf:       map[string]string{confDupRadius: strconv.FormatFloat(dupRadiusMeters, 'f', -1, 64)},
	}
	return tj.Build()
}

type dedupMapper struct {
	mapreduce.TypedMapperBase[string, trace.Trace]
	radius float64
	last   map[string]geo.Point
}

func (m *dedupMapper) Setup(ctx *mapreduce.TaskContext) error {
	r, err := strconv.ParseFloat(ctx.ConfDefault(confDupRadius, "2"), 64)
	if err != nil || r < 0 {
		return fmt.Errorf("dedupMapper: bad %s: %v", confDupRadius, err)
	}
	m.radius = r
	m.last = make(map[string]geo.Point)
	return nil
}

func (m *dedupMapper) Map(ctx *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[string, trace.Trace]) error {
	if last, ok := m.last[t.User]; ok && geo.Haversine(last, t.Point) <= m.radius {
		ctx.Counter("djcluster", "dup_dropped").Inc(1)
		return nil
	}
	m.last[t.User] = t.Point
	emit(t.User, t)
	return nil
}

// neighborhoodJob is the typed shape of the neighborhood+merge job:
// trace records in, (constant key, [center, neighbor...] ID list)
// intermediates, and text cluster-membership records out. The member
// lists travel as length-prefixed binary string lists instead of
// "center|id,id"-formatted strings.
type neighborhoodJob = mapreduce.TypedJob[string, trace.Trace, string, []string, string, string]

// neighborhoodMapper is Algorithm 4: it loads the R-tree from the
// distributed cache in setup, computes the neighborhood of each trace
// (the points within distance r, requiring at least MinPts of them),
// marks under-dense traces as noise, and emits (constant key, trace
// plus neighborhood) pairs so a single reducer collects them all.
type neighborhoodMapper struct {
	mapreduce.TypedMapperBase[string, []string]
	tree    *rtree.Tree
	radius  float64
	minPts  int
	perUser bool
}

func (m *neighborhoodMapper) Setup(ctx *mapreduce.TaskContext) error {
	blob, ok := ctx.CacheFile(cacheRTree)
	if !ok {
		return fmt.Errorf("neighborhoodMapper: R-tree not in distributed cache")
	}
	var err error
	m.tree, err = rtree.ReadFrom(bytes.NewReader(blob))
	if err != nil {
		return err
	}
	if m.radius, err = strconv.ParseFloat(ctx.ConfDefault(confRadius, "25"), 64); err != nil {
		return err
	}
	if m.minPts, err = strconv.Atoi(ctx.ConfDefault(confMinPts, "4")); err != nil {
		return err
	}
	m.perUser = ctx.ConfDefault(confPerUser, "true") == "true"
	return nil
}

func (m *neighborhoodMapper) Map(ctx *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[string, []string]) error {
	neighbors := m.tree.Within(t.Point, m.radius)
	// ids[0] is the neighborhood's center trace; the rest its members.
	ids := make([]string, 1, len(neighbors)+1)
	ids[0] = TraceID(t)
	for _, n := range neighbors {
		if m.perUser && UserOfTraceID(n.ID) != t.User {
			continue
		}
		ids = append(ids, n.ID)
	}
	if len(ids)-1 < m.minPts {
		ctx.Counter("djcluster", "noise").Inc(1)
		return nil
	}
	sort.Strings(ids[1:])
	emit(constKey, ids)
	return nil
}

// mergeReducer is Algorithm 5: it collects all neighborhoods built by
// the mappers and merges every pair of joinable neighborhoods — two
// neighborhoods are joinable if at least one trace belongs to both —
// using a union-find over trace IDs. Each output record is one final
// cluster: key "cluster-N", value the comma-joined member IDs.
type mergeReducer struct {
	mapreduce.TypedReducerBase[string, string]
}

func (r *mergeReducer) Reduce(_ *mapreduce.TaskContext, _ string, values [][]string, emit mapreduce.TypedEmit[string, string]) error {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, v := range values {
		if len(v) == 0 {
			return fmt.Errorf("mergeReducer: empty neighborhood")
		}
		center := v[0]
		for _, id := range v[1:] {
			union(center, id)
		}
	}
	// Gather members by root.
	groups := make(map[string][]string)
	for id := range parent {
		root := find(id)
		groups[root] = append(groups[root], id)
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for i, root := range roots {
		members := groups[root]
		sort.Strings(members)
		emit(fmt.Sprintf("cluster-%04d", i), strings.Join(members, ","))
	}
	return nil
}

// sortClusters orders clusters by descending size, then by ID.
func sortClusters(cs []Cluster) {
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i].Members) != len(cs[j].Members) {
			return len(cs[i].Members) > len(cs[j].Members)
		}
		return cs[i].ID < cs[j].ID
	})
}

// PreprocessSequential applies the speed filter and dedup to a dataset
// in memory — the reference for Table IV and for cross-checking the
// MapReduce pipeline. It returns the dataset after each stage.
func PreprocessSequential(ds *trace.Dataset, maxSpeedKmh, dupRadiusMeters float64) (afterSpeed, afterDedup *trace.Dataset) {
	afterSpeed = &trace.Dataset{}
	for _, tr := range ds.Trails {
		kept := trace.Trail{User: tr.User}
		n := len(tr.Traces)
		for i, t := range tr.Traces {
			pi, ni := i-1, i+1
			if pi < 0 {
				pi = i
			}
			if ni >= n {
				ni = i
			}
			if pi == ni {
				// Lone trace.
				kept.Traces = append(kept.Traces, t)
				continue
			}
			prev, next := tr.Traces[pi], tr.Traces[ni]
			dt := next.Time.Sub(prev.Time).Seconds()
			if geo.SpeedKmh(prev.Point, next.Point, dt) <= maxSpeedKmh {
				kept.Traces = append(kept.Traces, t)
			}
		}
		afterSpeed.Trails = append(afterSpeed.Trails, kept)
	}
	afterDedup = &trace.Dataset{}
	for _, tr := range afterSpeed.Trails {
		kept := trace.Trail{User: tr.User}
		var last geo.Point
		haveLast := false
		for _, t := range tr.Traces {
			if haveLast && geo.Haversine(last, t.Point) <= dupRadiusMeters {
				continue
			}
			last, haveLast = t.Point, true
			kept.Traces = append(kept.Traces, t)
		}
		afterDedup.Trails = append(afterDedup.Trails, kept)
	}
	return afterSpeed, afterDedup
}

// DJClusterSequential is the single-machine DJ-Cluster over an
// already-preprocessed dataset: neighborhoods via a bulk-loaded
// R-tree, then joinable-cluster merging. It mirrors the MR semantics
// (including PerUser) and is the baseline for correctness checks.
func DJClusterSequential(ds *trace.Dataset, opts DJClusterOptions) *DJClusterResult {
	opts = opts.withDefaults()
	entries := make([]rtree.Entry, 0, ds.NumTraces())
	id2pt := make(map[string]geo.Point)
	for _, tr := range ds.Trails {
		for _, t := range tr.Traces {
			id := TraceID(t)
			entries = append(entries, rtree.Entry{ID: id, Point: t.Point})
			id2pt[id] = t.Point
		}
	}
	tree := rtree.BulkLoad(entries, rtree.DefaultMaxEntries)

	res := &DJClusterResult{InputTraces: int64(len(entries))}
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, e := range entries {
		neighbors := tree.Within(e.Point, opts.RadiusMeters)
		count := 0
		user := UserOfTraceID(e.ID)
		for _, n := range neighbors {
			if opts.PerUser && UserOfTraceID(n.ID) != user {
				continue
			}
			count++
		}
		if count < opts.MinPts {
			res.Noise++
			continue
		}
		for _, n := range neighbors {
			if opts.PerUser && UserOfTraceID(n.ID) != user {
				continue
			}
			union(e.ID, n.ID)
		}
	}
	groups := make(map[string][]string)
	for id := range parent {
		groups[find(id)] = append(groups[find(id)], id)
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for i, root := range roots {
		members := groups[root]
		sort.Strings(members)
		c := Cluster{ID: fmt.Sprintf("cluster-%04d", i), Members: members}
		if opts.PerUser {
			c.User = UserOfTraceID(members[0])
		}
		var lat, lon float64
		for _, m := range members {
			p := id2pt[m]
			lat += p.Lat
			lon += p.Lon
		}
		n := float64(len(members))
		c.Centroid = geo.Point{Lat: lat / n, Lon: lon / n}
		res.Clusters = append(res.Clusters, c)
	}
	sortClusters(res.Clusters)
	return res
}
