// Package gepeto implements the MapReduced GEPETO toolkit — the
// paper's primary contribution: down-sampling (§V), k-means clustering
// (§VI), DJ-Cluster (§VII) and MapReduce R-tree construction (§VII-C)
// over mobility-trace datasets stored in the DFS, executed by the
// mapreduce engine. Sequential baselines of every algorithm are
// provided for correctness cross-checks and speed-up benchmarks.
//
// Data layout: jobs are typed over trace records via internal/recordio
// codecs. Input codecs accept both text uploads (lines whose last two
// tab-separated fields are "user TAB lat,lon,alt,unix", see
// internal/geolife.ParseRecordValue) and the binary part files earlier
// jobs produce. Every trace-emitting job outputs binary recordio
// records with key = user and value = the encoded trace, so its part
// files are directly consumable as input records by the next job in a
// pipeline.
package gepeto

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/trace"
)

// TraceID is a compact unique identifier for a trace within a dataset:
// "user:unixSeconds". Per-user timestamps are unique in GeoLife-style
// trails (consecutive traces are at least a second apart), so the pair
// identifies a trace while remaining meaningful to inference code.
func TraceID(t trace.Trace) string {
	return t.User + ":" + strconv.FormatInt(t.Time.Unix(), 10)
}

// UserOfTraceID extracts the user part of a TraceID.
func UserOfTraceID(id string) string {
	u, _, _ := strings.Cut(id, ":")
	return u
}

// parsePoint parses "lat,lon".
func parsePoint(s string) (geo.Point, error) {
	latS, lonS, ok := strings.Cut(s, ",")
	if !ok {
		return geo.Point{}, fmt.Errorf("gepeto: bad point %q", s)
	}
	lat, err := strconv.ParseFloat(latS, 64)
	if err != nil {
		return geo.Point{}, fmt.Errorf("gepeto: bad latitude %q: %v", latS, err)
	}
	lon, err := strconv.ParseFloat(lonS, 64)
	if err != nil {
		return geo.Point{}, fmt.Errorf("gepeto: bad longitude %q: %v", lonS, err)
	}
	return geo.Point{Lat: lat, Lon: lon}, nil
}
