package gepeto

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
)

func TestKMeansSequentialBasic(t *testing.T) {
	// Three tight blobs -> k=3 must find their centers.
	var pts []geo.Point
	centers := []geo.Point{
		{Lat: 39.90, Lon: 116.40},
		{Lat: 39.95, Lon: 116.30},
		{Lat: 40.00, Lon: 116.50},
	}
	for _, c := range centers {
		for i := 0; i < 50; i++ {
			pts = append(pts, geo.Destination(c, float64(i*7%360), float64(i%20)))
		}
	}
	// k-means is sensitive to the random initial centers (the paper
	// notes it can be trapped in a local minimum): with uniform random
	// init, all three blobs get an initial centroid only ~23% of the
	// time. Run several seeds and require at least two recoveries.
	good := 0
	var res *KMeansResult
	for seed := int64(0); seed < 10; seed++ {
		r := KMeansSequential(pts, KMeansOptions{K: 3, Distance: geo.MetricSquaredEuclidean, Seed: seed})
		if !r.Converged || len(r.Centroids) != 3 {
			continue
		}
		ok := true
		for _, c := range centers {
			best := math.Inf(1)
			for _, got := range r.Centroids {
				if d := geo.Haversine(c, got); d < best {
					best = d
				}
			}
			if best > 30 {
				ok = false
			}
		}
		if ok {
			good++
			if res == nil {
				res = r
			}
		}
	}
	if good < 2 {
		t.Fatalf("only %d/10 seeds recovered the true centers", good)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Fatalf("sizes sum to %d, want %d", total, len(pts))
	}
}

func TestKMeansSequentialFewerPointsThanK(t *testing.T) {
	res := KMeansSequential([]geo.Point{{Lat: 1, Lon: 1}}, KMeansOptions{K: 5})
	if len(res.Centroids) != 0 || res.Iterations != 0 {
		t.Fatal("expected empty result for n < k")
	}
}

func TestKMeansSequentialDeterministic(t *testing.T) {
	var pts []geo.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, geo.Destination(geo.Point{Lat: 39.9, Lon: 116.4}, float64(i), float64(i%500)))
	}
	a := KMeansSequential(pts, KMeansOptions{K: 4, Seed: 9})
	b := KMeansSequential(pts, KMeansOptions{K: 4, Seed: 9})
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatal("same seed produced different centroids")
		}
	}
}

func TestKMeansMRMatchesSequential(t *testing.T) {
	h := newHarness(t, 3, 12_000, 64)
	opts := KMeansOptions{K: 5, Distance: geo.MetricSquaredEuclidean, MaxIter: 30, Seed: 17}

	mr, err := KMeansMR(h.e, []string{h.input}, "kmeans-work", opts)
	if err != nil {
		t.Fatal(err)
	}
	var pts []geo.Point
	for _, tr := range h.ds.Trails {
		for _, tc := range tr.Traces {
			pts = append(pts, tc.Point)
		}
	}
	seq := KMeansSequential(pts, opts)

	if mr.Iterations != seq.Iterations {
		t.Logf("note: iterations differ (MR %d vs seq %d); comparing centroids anyway", mr.Iterations, seq.Iterations)
	}
	if len(mr.Centroids) != len(seq.Centroids) {
		t.Fatalf("centroid counts differ: %d vs %d", len(mr.Centroids), len(seq.Centroids))
	}
	a := append([]geo.Point(nil), mr.Centroids...)
	b := append([]geo.Point(nil), seq.Centroids...)
	SortPointsByLat(a)
	SortPointsByLat(b)
	for i := range a {
		if d := geo.Haversine(a[i], b[i]); d > 5 {
			t.Errorf("centroid %d differs by %.1fm: %v vs %v", i, d, a[i], b[i])
		}
	}
}

func TestKMeansMRCombinerEquivalence(t *testing.T) {
	h1 := newHarness(t, 2, 8_000, 64)
	h2 := newHarness(t, 2, 8_000, 64)
	base := KMeansOptions{K: 4, Distance: geo.MetricSquaredEuclidean, MaxIter: 15, Seed: 5}
	noComb, err := KMeansMR(h1.e, []string{h1.input}, "w", base)
	if err != nil {
		t.Fatal(err)
	}
	withCombOpts := base
	withCombOpts.UseCombiner = true
	withComb, err := KMeansMR(h2.e, []string{h2.input}, "w", withCombOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Same centroids (within float tolerance)...
	a := append([]geo.Point(nil), noComb.Centroids...)
	b := append([]geo.Point(nil), withComb.Centroids...)
	SortPointsByLat(a)
	SortPointsByLat(b)
	for i := range a {
		if d := geo.Haversine(a[i], b[i]); d > 1 {
			t.Errorf("centroid %d moved %.2fm with combiner", i, d)
		}
	}
	// ...but less shuffle traffic (the §VI combiner optimisation).
	s1 := noComb.IterationResults[0].Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleBytes)
	s2 := withComb.IterationResults[0].Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleBytes)
	if s2 >= s1 {
		t.Fatalf("combiner did not cut shuffle bytes: %d vs %d", s2, s1)
	}
	if ratio := float64(s1) / float64(s2); ratio < 10 {
		t.Errorf("combiner shuffle reduction only %.1fx, expected >=10x", ratio)
	}
}

// TestKMeansMRCombinerPrecision is the regression test for the
// combiner precision bug: the old text codec rendered map output at
// %.6f and combiner output at %f, so enabling the combiner quantised
// the partial sums and drifted the centroids. With raw float64 sums
// the two paths differ only in summation order, and because the driver
// quantises the averaged centroid to record precision, combiner-on and
// combiner-off runs must agree to 1e-12 degrees (in practice exactly).
func TestKMeansMRCombinerPrecision(t *testing.T) {
	h1 := newHarness(t, 2, 8_000, 64)
	h2 := newHarness(t, 2, 8_000, 64)
	base := KMeansOptions{K: 4, Distance: geo.MetricSquaredEuclidean, MaxIter: 10, Seed: 5}
	noComb, err := KMeansMR(h1.e, []string{h1.input}, "w", base)
	if err != nil {
		t.Fatal(err)
	}
	withCombOpts := base
	withCombOpts.UseCombiner = true
	withComb, err := KMeansMR(h2.e, []string{h2.input}, "w", withCombOpts)
	if err != nil {
		t.Fatal(err)
	}
	if noComb.Iterations != withComb.Iterations {
		t.Errorf("iterations diverged: %d without combiner, %d with", noComb.Iterations, withComb.Iterations)
	}
	if len(noComb.Centroids) != len(withComb.Centroids) {
		t.Fatalf("centroid counts diverged: %d vs %d", len(noComb.Centroids), len(withComb.Centroids))
	}
	const tol = 1e-12
	for i := range noComb.Centroids {
		a, b := noComb.Centroids[i], withComb.Centroids[i]
		if math.Abs(a.Lat-b.Lat) > tol || math.Abs(a.Lon-b.Lon) > tol {
			t.Errorf("centroid %d: combiner off %v vs on %v, want agreement to %g", i, a, b, tol)
		}
	}
	for i := range noComb.Sizes {
		if noComb.Sizes[i] != withComb.Sizes[i] {
			t.Errorf("cluster %d size: %d without combiner, %d with", i, noComb.Sizes[i], withComb.Sizes[i])
		}
	}
}

func TestKMeansMRHaversineDistance(t *testing.T) {
	h := newHarness(t, 2, 6_000, 64)
	res, err := KMeansMR(h.e, []string{h.input}, "w", KMeansOptions{
		K: 3, Distance: geo.MetricHaversine, MaxIter: 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	for _, c := range res.Centroids {
		if !c.Valid() {
			t.Fatalf("invalid centroid %v", c)
		}
	}
}

func TestKMeansMRConvergesAndCleansUp(t *testing.T) {
	h := newHarness(t, 2, 5_000, 64)
	res, err := KMeansMR(h.e, []string{h.input}, "w", KMeansOptions{K: 3, MaxIter: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	if res.Iterations != len(res.IterationResults) {
		t.Fatal("iteration count mismatch")
	}
	// Intermediate cluster directories must have been deleted.
	if files := h.e.FS().List("w"); len(files) != 0 {
		t.Fatalf("workdir not cleaned: %v", files)
	}
}

func TestKMeansMRTooFewPoints(t *testing.T) {
	h := newHarness(t, 1, 5, 64)
	_, err := KMeansMR(h.e, []string{h.input}, "w", KMeansOptions{K: 50})
	if err == nil {
		t.Fatal("want error when dataset smaller than k")
	}
}

func TestKMeansAssignments(t *testing.T) {
	h := newHarness(t, 2, 4_000, 64)
	opts := KMeansOptions{K: 4, MaxIter: 20, Seed: 3}
	res, err := KMeansMR(h.e, []string{h.input}, "w", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := KMeansAssignments(h.e, []string{h.input}, "assign", res.Centroids, opts.Distance); err != nil {
		t.Fatal(err)
	}
	kvs, err := h.e.ReadOutput("assign")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != h.ds.NumTraces() {
		t.Fatalf("assignments = %d, want %d", len(kvs), h.ds.NumTraces())
	}
	counts := map[int64]int{}
	for _, kv := range kvs {
		idx, err := (recordio.Int64{}).Decode(kv.Key)
		if err != nil {
			t.Fatalf("bad assignment key %q: %v", kv.Key, err)
		}
		counts[idx]++
	}
	// Sizes report the assignment of the last iteration's input
	// centroids, while KMeansAssignments uses the post-update ones;
	// after convergence (centroid movement <= 10 m) the two may differ
	// by a handful of boundary traces.
	for i, size := range res.Sizes {
		got := counts[int64(i)]
		if diff := got - size; size > 0 && (diff > size/20+5 || diff < -size/20-5) {
			t.Errorf("cluster %d: assignment count %d far from size %d", i, got, size)
		}
	}
}

func TestCentroidMarshalRoundTrip(t *testing.T) {
	cs := []geo.Point{{Lat: 39.9, Lon: 116.4}, {Lat: 40.0, Lon: 116.5}}
	back, err := unmarshalCentroids(marshalCentroids(cs))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != cs[0] || back[1] != cs[1] {
		t.Fatalf("round-trip = %v", back)
	}
	for _, bad := range []string{"junk", "0\tnocomma", "9\t1,2"} {
		if _, err := unmarshalCentroids([]byte(bad)); err == nil {
			t.Errorf("unmarshalCentroids(%q): want error", bad)
		}
	}
}

func TestReducersFor(t *testing.T) {
	h := newHarness(t, 1, 100, 1<<20) // 6 nodes x 2 slots = 12 slots
	if got := reducersFor(h.e, 5); got != 5 {
		t.Fatalf("k < slots: %d, want 5", got)
	}
	if got := reducersFor(h.e, 50); got != 12 {
		t.Fatalf("k > slots: %d, want 12", got)
	}
}

func TestKMeansPlusPlusBeatsUniformInit(t *testing.T) {
	// Three separated blobs: ++-seeding recovers all three centers far
	// more reliably than uniform random seeding (the §VI sensitivity).
	var pts []geo.Point
	centers := []geo.Point{
		{Lat: 39.90, Lon: 116.40},
		{Lat: 39.95, Lon: 116.30},
		{Lat: 40.00, Lon: 116.50},
	}
	for _, c := range centers {
		for i := 0; i < 50; i++ {
			pts = append(pts, geo.Destination(c, float64(i*7%360), float64(i%20)))
		}
	}
	recovered := func(res *KMeansResult) bool {
		for _, c := range centers {
			best := math.Inf(1)
			for _, got := range res.Centroids {
				if d := geo.Haversine(c, got); d < best {
					best = d
				}
			}
			if best > 30 {
				return false
			}
		}
		return true
	}
	uniformWins, ppWins := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		if recovered(KMeansSequential(pts, KMeansOptions{K: 3, Seed: seed})) {
			uniformWins++
		}
		if recovered(KMeansPlusPlusSequential(pts, KMeansOptions{K: 3, Seed: seed})) {
			ppWins++
		}
	}
	if ppWins < 18 {
		t.Errorf("++-seeding recovered centers only %d/20 times", ppWins)
	}
	if ppWins <= uniformWins {
		t.Errorf("++-seeding (%d/20) not better than uniform (%d/20)", ppWins, uniformWins)
	}
}

func TestKMeansMRPlusPlusInit(t *testing.T) {
	h := newHarness(t, 2, 6_000, 64)
	res, err := KMeansMR(h.e, []string{h.input}, "w", KMeansOptions{
		K: 4, MaxIter: 25, Seed: 3, PlusPlusInit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 4 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
}

func TestPlusPlusCentersEdgeCases(t *testing.T) {
	if _, err := plusPlusCenters([]geo.Point{{Lat: 1, Lon: 1}}, 3, 1, geo.MetricSquaredEuclidean); err == nil {
		t.Fatal("n < k should error")
	}
	// All identical points: falls back to uniform picks, still returns k.
	same := make([]geo.Point, 10)
	for i := range same {
		same[i] = geo.Point{Lat: 39.9, Lon: 116.4}
	}
	cs, err := plusPlusCenters(same, 3, 1, geo.MetricSquaredEuclidean)
	if err != nil || len(cs) != 3 {
		t.Fatalf("identical points: %v, %v", cs, err)
	}
}
