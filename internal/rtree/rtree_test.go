package rtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/geo"
)

var beijing = geo.Rect{
	Min: geo.Point{Lat: 39.4, Lon: 115.9},
	Max: geo.Point{Lat: 40.5, Lon: 117.1},
}

func randEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{
			ID: fmt.Sprintf("e%05d", i),
			Point: geo.Point{
				Lat: beijing.Min.Lat + rng.Float64()*(beijing.Max.Lat-beijing.Min.Lat),
				Lon: beijing.Min.Lon + rng.Float64()*(beijing.Max.Lon-beijing.Min.Lon),
			},
		}
	}
	return es
}

// bruteSearch is the reference implementation for Search.
func bruteSearch(es []Entry, r geo.Rect) map[string]bool {
	out := make(map[string]bool)
	for _, e := range es {
		if r.Contains(e.Point) {
			out[e.ID] = true
		}
	}
	return out
}

func idsOf(es []Entry) map[string]bool {
	out := make(map[string]bool, len(es))
	for _, e := range es {
		out[e.ID] = true
	}
	return out
}

func sameIDs(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestInsertAndSearchMatchesBruteForce(t *testing.T) {
	es := randEntries(500, 1)
	tr := New(8)
	for _, e := range es {
		tr.Insert(e)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		lat := beijing.Min.Lat + rng.Float64()
		lon := beijing.Min.Lon + rng.Float64()
		q := geo.Rect{
			Min: geo.Point{Lat: lat, Lon: lon},
			Max: geo.Point{Lat: lat + rng.Float64()*0.3, Lon: lon + rng.Float64()*0.3},
		}
		got := idsOf(tr.Search(q))
		want := bruteSearch(es, q)
		if !sameIDs(got, want) {
			t.Fatalf("query %d: got %d ids, want %d", i, len(got), len(want))
		}
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 16, 17, 100, 2000} {
		es := randEntries(n, int64(n))
		tr := BulkLoad(es, 16)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		q := geo.Rect{
			Min: geo.Point{Lat: 39.7, Lon: 116.2},
			Max: geo.Point{Lat: 40.1, Lon: 116.8},
		}
		if !sameIDs(idsOf(tr.Search(q)), bruteSearch(es, q)) {
			t.Fatalf("n=%d: search mismatch", n)
		}
	}
}

func TestBulkLoadDoesNotMutateInput(t *testing.T) {
	es := randEntries(100, 5)
	orig := append([]Entry(nil), es...)
	BulkLoad(es, 8)
	for i := range es {
		if es[i] != orig[i] {
			t.Fatal("BulkLoad reordered the caller's slice")
		}
	}
}

func TestInsertEqualsBulkLoadContents(t *testing.T) {
	es := randEntries(300, 3)
	ins := New(8)
	for _, e := range es {
		ins.Insert(e)
	}
	bl := BulkLoad(es, 8)
	if !sameIDs(idsOf(ins.All()), idsOf(bl.All())) {
		t.Fatal("Insert and BulkLoad trees hold different entries")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	es := randEntries(800, 4)
	tr := BulkLoad(es, 16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		p := geo.Point{
			Lat: beijing.Min.Lat + rng.Float64()*(beijing.Max.Lat-beijing.Min.Lat),
			Lon: beijing.Min.Lon + rng.Float64()*(beijing.Max.Lon-beijing.Min.Lon),
		}
		k := 1 + rng.Intn(20)
		got := tr.Nearest(p, k)
		// Brute force.
		sorted := append([]Entry(nil), es...)
		sort.Slice(sorted, func(a, b int) bool {
			da, db := geo.SquaredEuclidean(p, sorted[a].Point), geo.SquaredEuclidean(p, sorted[b].Point)
			if da != db {
				return da < db
			}
			return sorted[a].ID < sorted[b].ID
		})
		want := sorted[:k]
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		for j := range want {
			if got[j].ID != want[j].ID {
				t.Fatalf("query %d k=%d: position %d: got %s, want %s", i, k, j, got[j].ID, want[j].ID)
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr := New(8)
	if got := tr.Nearest(geo.Point{}, 5); got != nil {
		t.Fatal("empty tree should return nil")
	}
	tr.Insert(Entry{ID: "a", Point: geo.Point{Lat: 39.9, Lon: 116.4}})
	if got := tr.Nearest(geo.Point{Lat: 39.9, Lon: 116.4}, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := tr.Nearest(geo.Point{Lat: 1, Lon: 2}, 10); len(got) != 1 {
		t.Fatalf("k larger than tree: got %d", len(got))
	}
}

func TestWithin(t *testing.T) {
	center := geo.Point{Lat: 39.9042, Lon: 116.4074}
	var es []Entry
	// 10 points inside 100m, 10 points well outside.
	for i := 0; i < 10; i++ {
		es = append(es, Entry{
			ID:    fmt.Sprintf("in%d", i),
			Point: geo.Destination(center, float64(i)*36, 50),
		})
	}
	for i := 0; i < 10; i++ {
		es = append(es, Entry{
			ID:    fmt.Sprintf("out%d", i),
			Point: geo.Destination(center, float64(i)*36, 500),
		})
	}
	tr := BulkLoad(es, 8)
	got := tr.Within(center, 100)
	if len(got) != 10 {
		t.Fatalf("Within returned %d entries, want 10", len(got))
	}
	for _, e := range got {
		if !strings.HasPrefix(e.ID, "in") {
			t.Fatalf("unexpected entry %s", e.ID)
		}
	}
}

func TestWithinBoundary(t *testing.T) {
	center := geo.Point{Lat: 39.9, Lon: 116.4}
	justIn := geo.Destination(center, 90, 99.9)
	justOut := geo.Destination(center, 90, 100.5)
	tr := BulkLoad([]Entry{{ID: "in", Point: justIn}, {ID: "out", Point: justOut}}, 8)
	got := tr.Within(center, 100)
	if len(got) != 1 || got[0].ID != "in" {
		t.Fatalf("Within = %v", got)
	}
}

func TestMerge(t *testing.T) {
	all := randEntries(900, 6)
	// Split into 3 spatial partitions by longitude (like SFC partitioning).
	sorted := append([]Entry(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Point.Lon < sorted[j].Point.Lon })
	var parts []*Tree
	for i := 0; i < 3; i++ {
		parts = append(parts, BulkLoad(sorted[i*300:(i+1)*300], 16))
	}
	merged := Merge(16, parts...)
	if merged.Len() != 900 {
		t.Fatalf("merged Len = %d", merged.Len())
	}
	if err := merged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Merged tree must answer queries identically to a direct build.
	q := geo.Rect{Min: geo.Point{Lat: 39.6, Lon: 116.0}, Max: geo.Point{Lat: 40.2, Lon: 116.9}}
	if !sameIDs(idsOf(merged.Search(q)), bruteSearch(all, q)) {
		t.Fatal("merged tree search mismatch")
	}
}

func TestMergeUnevenHeights(t *testing.T) {
	big := BulkLoad(randEntries(2000, 7), 8) // tall tree
	small := BulkLoad(randEntries(5, 8), 8)  // height 1
	med := BulkLoad(randEntries(100, 9), 8)  // mid height
	empty := New(8)                          // empty, must be skipped
	merged := Merge(8, big, small, med, empty, nil)
	if merged.Len() != 2105 {
		t.Fatalf("merged Len = %d, want 2105", merged.Len())
	}
	if err := merged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge(8)
	if m.Len() != 0 {
		t.Fatal("empty merge should be empty")
	}
	m2 := Merge(8, New(8), New(8))
	if m2.Len() != 0 {
		t.Fatal("merge of empties should be empty")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	es := randEntries(500, 10)
	tr := BulkLoad(es, 16)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("Len: got %d, want %d", back.Len(), tr.Len())
	}
	if !sameIDs(idsOf(back.All()), idsOf(tr.All())) {
		t.Fatal("entries differ after round-trip")
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFromErrors(t *testing.T) {
	bad := []string{
		"",
		"nottree\t8\t1\n",
		"rtree\tx\t1\n",
		"rtree\t8\ty\n",
		"rtree\t8\t2\na\t39.9\t116.4\n",   // count mismatch
		"rtree\t8\t1\na\t39.9\n",          // short line
		"rtree\t8\t1\na\tbadlat\t116.4\n", // bad lat
		"rtree\t8\t1\na\t39.9\tbadlon\n",  // bad lon
	}
	for _, s := range bad {
		if _, err := ReadFrom(strings.NewReader(s)); err == nil {
			t.Errorf("ReadFrom(%q): want error", s)
		}
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := New(4)
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	for _, e := range randEntries(100, 11) {
		tr.Insert(e)
	}
	if tr.Height() < 3 {
		t.Fatalf("height after 100 inserts with M=4: %d, want >= 3", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many entries at the same location (stationary dwell) must all be
	// stored and returned.
	p := geo.Point{Lat: 39.9, Lon: 116.4}
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr.Insert(Entry{ID: fmt.Sprintf("d%d", i), Point: p})
	}
	if got := len(tr.Search(geo.RectFromPoint(p))); got != 50 {
		t.Fatalf("Search found %d duplicates, want 50", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsTracksEntries(t *testing.T) {
	tr := New(8)
	if tr.Bounds() != (geo.Rect{}) {
		t.Fatal("empty tree bounds should be zero")
	}
	a := geo.Point{Lat: 39.5, Lon: 116.0}
	b := geo.Point{Lat: 40.0, Lon: 116.9}
	tr.Insert(Entry{ID: "a", Point: a})
	tr.Insert(Entry{ID: "b", Point: b})
	w := geo.Rect{Min: a, Max: b}
	if tr.Bounds() != w {
		t.Fatalf("Bounds = %+v, want %+v", tr.Bounds(), w)
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	es := randEntries(10_000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(es, 16)
	}
}

func BenchmarkInsert(b *testing.B) {
	es := randEntries(b.N, 21)
	tr := New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(es[i])
	}
}

func BenchmarkWithin(b *testing.B) {
	tr := BulkLoad(randEntries(100_000, 22), 16)
	center := geo.Point{Lat: 39.9, Lon: 116.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Within(center, 200)
	}
}

func BenchmarkNearest10(b *testing.B) {
	tr := BulkLoad(randEntries(100_000, 23), 16)
	center := geo.Point{Lat: 39.9, Lon: 116.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(center, 10)
	}
}
