// Package rtree implements an R-tree (Guttman, 1984) for indexing
// two-dimensional spatial data, as used by the DJ-Cluster neighborhood
// phase (paper §VII-B) and built in a distributed fashion by the
// MapReduce R-tree construction (paper §VII-C).
//
// The tree indexes point entries — each entry is a location plus a
// unique identifier referencing the object, exactly as in the paper's
// description ("each point in the dataset is defined by two attributes:
// a location in some spatial domain ... and a unique identifier").
// At the leaf level each bounding rectangle contains a single
// datapoint; higher levels aggregate an increasing number of points
// through their minimum bounding rectangles. Queries only traverse the
// bounding rectangles intersecting the query.
//
// Three construction paths are provided:
//
//   - Insert: classic dynamic insertion with quadratic split.
//   - BulkLoad: Sort-Tile-Recursive (STR) packing, used by the
//     per-partition reducers of the MapReduce construction.
//   - Merge: grafting several small R-trees into a global one, the
//     sequential third phase of the MapReduce construction.
package rtree

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// Entry is a point datum in the tree: a spatial location plus the
// unique identifier of the object it references.
type Entry struct {
	ID    string
	Point geo.Point
}

// DefaultMaxEntries is the default node fan-out (M). Guttman suggests
// small fan-outs for in-memory trees; 16 balances depth and node scan
// cost for datasets in the millions.
const DefaultMaxEntries = 16

// Tree is an in-memory R-tree over point entries. The zero value is
// not usable; create trees with New or BulkLoad.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
}

type node struct {
	rect     geo.Rect
	leaf     bool
	children []*node // interior nodes
	entries  []Entry // leaf nodes
}

// New returns an empty R-tree with the given maximum node fan-out
// (use DefaultMaxEntries if in doubt). The minimum fill is M/2.
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries / 2,
	}
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// Bounds returns the minimum bounding rectangle of all entries. It
// returns a zero Rect for an empty tree.
func (t *Tree) Bounds() geo.Rect {
	if t.size == 0 {
		return geo.Rect{}
	}
	return t.root.rect
}

// Insert adds an entry using Guttman's ChooseLeaf / quadratic-split
// algorithm.
func (t *Tree) Insert(e Entry) {
	if sibling := t.insertRec(t.root, e); sibling != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &node{
			leaf:     false,
			children: []*node{old, sibling},
			rect:     old.rect.Union(sibling.rect),
		}
	}
	t.size++
}

// insertRec inserts e into the subtree rooted at n. If n overflows and
// splits, n is replaced in place by the first half and the second half
// is returned for the caller to adopt; otherwise it returns nil.
func (t *Tree) insertRec(n *node, e Entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		n.recomputeRect()
		if len(n.entries) > t.maxEntries {
			a, b := t.quadraticSplit(n)
			*n = *a
			return b
		}
		return nil
	}
	// ChooseLeaf step: descend into the child needing least enlargement,
	// ties broken by smaller area.
	r := geo.RectFromPoint(e.Point)
	best := n.children[0]
	bestEnl := best.rect.Enlargement(r)
	for _, c := range n.children[1:] {
		enl := c.rect.Enlargement(r)
		if enl < bestEnl || (enl == bestEnl && c.rect.Area() < best.rect.Area()) {
			best, bestEnl = c, enl
		}
	}
	sibling := t.insertRec(best, e)
	if sibling != nil {
		n.children = append(n.children, sibling)
	}
	n.recomputeRect()
	if len(n.children) > t.maxEntries {
		a, b := t.quadraticSplit(n)
		*n = *a
		return b
	}
	return nil
}

// recomputeRect refreshes a node's MBR from its direct contents.
func (n *node) recomputeRect() {
	if n.leaf {
		if len(n.entries) == 0 {
			n.rect = geo.Rect{}
			return
		}
		r := geo.RectFromPoint(n.entries[0].Point)
		for _, e := range n.entries[1:] {
			r = r.Union(geo.RectFromPoint(e.Point))
		}
		n.rect = r
		return
	}
	if len(n.children) == 0 {
		n.rect = geo.Rect{}
		return
	}
	r := n.children[0].rect
	for _, c := range n.children[1:] {
		r = r.Union(c.rect)
	}
	n.rect = r
}

// quadraticSplit splits an overflowing node into two per Guttman's
// quadratic algorithm: pick the two seeds wasting the most area
// together, then assign remaining items to the group whose MBR grows
// least.
func (t *Tree) quadraticSplit(n *node) (a, b *node) {
	if n.leaf {
		ea, eb := splitItems(n.entries, t.minEntries,
			func(e Entry) geo.Rect { return geo.RectFromPoint(e.Point) })
		a = &node{leaf: true, entries: ea}
		b = &node{leaf: true, entries: eb}
	} else {
		ca, cb := splitItems(n.children, t.minEntries,
			func(c *node) geo.Rect { return c.rect })
		a = &node{leaf: false, children: ca}
		b = &node{leaf: false, children: cb}
	}
	a.recomputeRect()
	b.recomputeRect()
	return a, b
}

// splitItems is the generic quadratic split over any item type.
func splitItems[T any](items []T, minFill int, rectOf func(T) geo.Rect) (ga, gb []T) {
	// Pick seeds: the pair with maximal dead area.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			ri, rj := rectOf(items[i]), rectOf(items[j])
			d := ri.Union(rj).Area() - ri.Area() - rj.Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	ra, rb := rectOf(items[seedA]), rectOf(items[seedB])
	ga = append(ga, items[seedA])
	gb = append(gb, items[seedB])
	rest := make([]T, 0, len(items)-2)
	for i, it := range items {
		if i != seedA && i != seedB {
			rest = append(rest, it)
		}
	}
	for len(rest) > 0 {
		// If one group needs all remaining items to reach min fill,
		// assign them all.
		if len(ga)+len(rest) <= minFill {
			for _, it := range rest {
				ga = append(ga, it)
				ra = ra.Union(rectOf(it))
			}
			break
		}
		if len(gb)+len(rest) <= minFill {
			for _, it := range rest {
				gb = append(gb, it)
				rb = rb.Union(rectOf(it))
			}
			break
		}
		// Pick the item with the greatest preference for one group.
		bestIdx, bestDiff, bestToA := 0, -1.0, true
		for i, it := range rest {
			r := rectOf(it)
			da := ra.Enlargement(r)
			db := rb.Enlargement(r)
			diff := math.Abs(da - db)
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
				bestToA = da < db ||
					(da == db && ra.Area() < rb.Area()) ||
					(da == db && ra.Area() == rb.Area() && len(ga) <= len(gb))
			}
		}
		it := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if bestToA {
			ga = append(ga, it)
			ra = ra.Union(rectOf(it))
		} else {
			gb = append(gb, it)
			rb = rb.Union(rectOf(it))
		}
	}
	return ga, gb
}

// BulkLoad builds a packed R-tree from entries using the
// Sort-Tile-Recursive (STR) algorithm. The input slice is not modified.
func BulkLoad(entries []Entry, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(entries) == 0 {
		return t
	}
	es := make([]Entry, len(entries))
	copy(es, entries)

	// Leaf level: sort by lon, tile into vertical slabs, sort each slab
	// by lat, pack runs of maxEntries.
	m := t.maxEntries
	sort.Slice(es, func(i, j int) bool { return es[i].Point.Lon < es[j].Point.Lon })
	nLeaves := (len(es) + m - 1) / m
	slabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	slabSize := slabs * m

	var leaves []*node
	for start := 0; start < len(es); start += slabSize {
		end := start + slabSize
		if end > len(es) {
			end = len(es)
		}
		slab := es[start:end]
		sort.Slice(slab, func(i, j int) bool { return slab[i].Point.Lat < slab[j].Point.Lat })
		for ls := 0; ls < len(slab); ls += m {
			le := ls + m
			if le > len(slab) {
				le = len(slab)
			}
			leaf := &node{leaf: true, entries: append([]Entry(nil), slab[ls:le]...)}
			leaf.recomputeRect()
			leaves = append(leaves, leaf)
		}
	}
	t.root = packUpward(leaves, m)
	t.size = len(es)
	return t
}

// packUpward builds interior levels over nodes until a single root
// remains, packing in slice order (callers pre-sort spatially).
func packUpward(nodes []*node, m int) *node {
	for len(nodes) > 1 {
		var next []*node
		for start := 0; start < len(nodes); start += m {
			end := start + m
			if end > len(nodes) {
				end = len(nodes)
			}
			parent := &node{leaf: false, children: append([]*node(nil), nodes[start:end]...)}
			parent.recomputeRect()
			next = append(next, parent)
		}
		nodes = next
	}
	return nodes[0]
}

// Merge combines several R-trees into a single global tree indexing all
// their entries — the sequential phase 3 of the paper's MapReduce
// construction. Subtree roots are packed under new interior levels in
// the order given (callers order partitions along the space-filling
// curve, so adjacent subtrees are spatially close).
func Merge(maxEntries int, trees ...*Tree) *Tree {
	out := New(maxEntries)
	var roots []*node
	total := 0
	for _, tr := range trees {
		if tr == nil || tr.size == 0 {
			continue
		}
		roots = append(roots, tr.root)
		total += tr.size
	}
	if len(roots) == 0 {
		return out
	}
	// Equalize subtree heights by wrapping shallow roots.
	maxH := 0
	hs := make([]int, len(roots))
	for i, r := range roots {
		hs[i] = height(r)
		if hs[i] > maxH {
			maxH = hs[i]
		}
	}
	for i, r := range roots {
		for h := hs[i]; h < maxH; h++ {
			wrapped := &node{leaf: false, children: []*node{r}, rect: r.rect}
			r = wrapped
		}
		roots[i] = r
	}
	out.root = packUpward(roots, out.maxEntries)
	out.size = total
	return out
}

func height(n *node) int {
	h := 1
	for !n.leaf {
		n = n.children[0]
		h++
	}
	return h
}

// Search returns all entries whose point lies inside r.
func (t *Tree) Search(r geo.Rect) []Entry {
	var out []Entry
	t.searchNode(t.root, r, &out)
	return out
}

func (t *Tree) searchNode(n *node, r geo.Rect, out *[]Entry) {
	if t.size == 0 || !n.rect.Intersects(r) {
		return
	}
	if n.leaf {
		for _, e := range n.entries {
			if r.Contains(e.Point) {
				*out = append(*out, e)
			}
		}
		return
	}
	for _, c := range n.children {
		t.searchNode(c, r, out)
	}
}

// Within returns all entries within radiusMeters (Haversine) of center.
// This is DJ-Cluster's neighborhood query: the radius circle is first
// over-approximated by a bounding rectangle, then candidates are
// filtered by exact distance.
func (t *Tree) Within(center geo.Point, radiusMeters float64) []Entry {
	box := geo.RectFromPoint(center).ExpandMeters(radiusMeters * 1.001)
	cands := t.Search(box)
	out := cands[:0]
	for _, e := range cands {
		if geo.Haversine(center, e.Point) <= radiusMeters {
			out = append(out, e)
		}
	}
	return out
}

// Nearest returns the k entries nearest to p in squared-Euclidean
// degree space, using best-first branch-and-bound over MBRs (the
// "traverses mainly the branches in which neighbors may be located"
// behaviour from §VII-B). Ties are broken by entry ID for determinism.
func (t *Tree) Nearest(p geo.Point, k int) []Entry {
	if k <= 0 || t.size == 0 {
		return nil
	}
	type cand struct {
		dist float64
		e    Entry
	}
	best := make([]cand, 0, k+1)
	worst := math.Inf(1)
	push := func(e Entry) {
		d := geo.SquaredEuclidean(p, e.Point)
		if len(best) == k && d > worst {
			return
		}
		best = append(best, cand{d, e})
		sort.Slice(best, func(i, j int) bool {
			if best[i].dist != best[j].dist {
				return best[i].dist < best[j].dist
			}
			return best[i].e.ID < best[j].e.ID
		})
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			worst = best[k-1].dist
		}
	}
	var walk func(n *node)
	walk = func(n *node) {
		if len(best) == k && n.rect.MinDistSquared(p) > worst {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				push(e)
			}
			return
		}
		// Visit children in order of MinDist for effective pruning.
		kids := append([]*node(nil), n.children...)
		sort.Slice(kids, func(i, j int) bool {
			return kids[i].rect.MinDistSquared(p) < kids[j].rect.MinDistSquared(p)
		})
		for _, c := range kids {
			walk(c)
		}
	}
	walk(t.root)
	out := make([]Entry, len(best))
	for i, c := range best {
		out[i] = c.e
	}
	return out
}

// All returns every entry in the tree in depth-first order.
func (t *Tree) All() []Entry {
	out := make([]Entry, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			out = append(out, n.entries...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.size > 0 {
		walk(t.root)
	}
	return out
}

// Height returns the tree height (1 for a tree with just a leaf root).
func (t *Tree) Height() int { return height(t.root) }

// CheckInvariants verifies structural invariants: every node's MBR
// contains its contents, leaves are all at the same depth, and the
// entry count matches Len. It returns the first violation found.
func (t *Tree) CheckInvariants() error {
	if t.size == 0 {
		return nil
	}
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			for _, e := range n.entries {
				count++
				if !n.rect.Contains(e.Point) {
					return fmt.Errorf("rtree: leaf MBR %+v excludes entry %v", n.rect, e.Point)
				}
			}
			return nil
		}
		if len(n.children) == 0 {
			return fmt.Errorf("rtree: interior node with no children")
		}
		for _, c := range n.children {
			u := n.rect.Union(c.rect)
			if u != n.rect {
				return fmt.Errorf("rtree: parent MBR %+v does not cover child MBR %+v", n.rect, c.rect)
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: counted %d entries, Len() = %d", count, t.size)
	}
	return nil
}

// WriteTo serializes the tree in a compact line-oriented text format
// suitable for the MapReduce distributed cache. Structure is rebuilt on
// load via BulkLoad, so only entries and fan-out are stored.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	c, err := fmt.Fprintf(bw, "rtree\t%d\t%d\n", t.maxEntries, t.size)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, e := range t.All() {
		c, err := fmt.Fprintf(bw, "%s\t%.6f\t%.6f\n", e.ID, e.Point.Lat, e.Point.Lon)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a tree written by WriteTo, rebuilding the
// packed structure with BulkLoad.
func ReadFrom(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("rtree: empty serialization")
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) != 3 || header[0] != "rtree" {
		return nil, fmt.Errorf("rtree: bad header %q", sc.Text())
	}
	maxEntries, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("rtree: bad fan-out: %v", err)
	}
	size, err := strconv.Atoi(header[2])
	if err != nil {
		return nil, fmt.Errorf("rtree: bad size: %v", err)
	}
	entries := make([]Entry, 0, size)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("rtree: bad entry line %q", line)
		}
		lat, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("rtree: bad lat in %q: %v", line, err)
		}
		lon, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("rtree: bad lon in %q: %v", line, err)
		}
		entries = append(entries, Entry{ID: fields[0], Point: geo.Point{Lat: lat, Lon: lon}})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) != size {
		return nil, fmt.Errorf("rtree: header says %d entries, read %d", size, len(entries))
	}
	return BulkLoad(entries, maxEntries), nil
}
