package recordio

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// FuzzTraceRoundTrip checks that every encodable trace survives the
// binary codec bit-for-bit.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("user-000", 39.984702, 116.318417, 492.0, int64(1224730100))
	f.Add("", 0.0, 0.0, 0.0, int64(0))
	f.Add("u\tv", -90.0, 180.0, -1.5, int64(-1))
	f.Add("\x01tagged", 89.999999, -179.999999, math.MaxFloat64, int64(math.MaxInt64))
	f.Fuzz(func(t *testing.T, user string, lat, lon, alt float64, unix int64) {
		p := geo.Point{Lat: lat, Lon: lon}
		if !p.Valid() || math.IsNaN(alt) {
			return // the codec rejects what the domain rejects
		}
		tr := trace.Trace{User: user, Point: p, AltitudeFeet: alt, Time: time.Unix(unix, 0).UTC()}
		enc := string(TraceValue{}.Append(nil, tr))
		got, err := TraceValue{}.Decode(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if got != tr {
			t.Fatalf("round trip %+v -> %+v", tr, got)
		}
	})
}

// FuzzPointRoundTrip checks the 16-byte point codec.
func FuzzPointRoundTrip(f *testing.F) {
	f.Add(39.984702, 116.318417)
	f.Add(0.0, 0.0)
	f.Add(-90.0, -180.0)
	f.Fuzz(func(t *testing.T, lat, lon float64) {
		p := geo.Point{Lat: lat, Lon: lon}
		enc := string(Point{}.Append(nil, p))
		got, err := Point{}.Decode(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if math.Float64bits(got.Lat) != math.Float64bits(lat) ||
			math.Float64bits(got.Lon) != math.Float64bits(lon) {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	})
}

// FuzzKeyCodecs round-trips the scalar and composite key codecs and
// cross-checks RawCompare against the decoded order.
func FuzzKeyCodecs(f *testing.F) {
	f.Add(int64(0), uint64(0), "", int64(0))
	f.Add(int64(-1), math.Float64bits(-1.5), "user", int64(7))
	f.Add(int64(math.MinInt64), math.Float64bits(math.Inf(-1)), "a\x00b", int64(math.MaxInt64))
	f.Fuzz(func(t *testing.T, i int64, fbits uint64, s string, unix int64) {
		if got, err := (Int64{}).Decode(string(Int64{}.Append(nil, i))); err != nil || got != i {
			t.Fatalf("int64 round trip %d -> %d, %v", i, got, err)
		}
		if v := math.Float64frombits(fbits); !math.IsNaN(v) {
			got, err := Float64{}.Decode(string(Float64{}.Append(nil, v)))
			if err != nil || math.Float64bits(got) != fbits {
				t.Fatalf("float64 round trip %v -> %v, %v", v, got, err)
			}
		}
		if got, err := (String{}).Decode(string(String{}.Append(nil, s))); err != nil || got != s {
			t.Fatalf("string round trip %q -> %q, %v", s, got, err)
		}
		k := UserTimeKey{User: s, Unix: unix}
		if got, err := (UserTime{}).Decode(string(UserTime{}.Append(nil, k))); err != nil || got != k {
			t.Fatalf("usertime round trip %v -> %v, %v", k, got, err)
		}
		// RawCompare of a key with itself is 0; against a successor it
		// agrees with the typed order.
		ea := string(Int64{}.Append(nil, i))
		if (Int64{}).RawCompare(ea, ea) != 0 {
			t.Fatal("int64 RawCompare(x, x) != 0")
		}
		if i < math.MaxInt64 {
			eb := string(Int64{}.Append(nil, i+1))
			if (Int64{}).RawCompare(ea, eb) >= 0 {
				t.Fatalf("int64 RawCompare(%d, %d) >= 0", i, i+1)
			}
		}
	})
}

// FuzzDecodeTraceValue throws arbitrary bytes at the shared parser:
// it must reject garbage with an error, never panic, and re-encode
// whatever it accepts losslessly enough to decode again.
func FuzzDecodeTraceValue(f *testing.F) {
	f.Add([]byte("user\t39.984702,116.318417,492,1224730100"))
	f.Add([]byte("key\tuser\t1.000000,2.000000,0,0"))
	f.Add([]byte(string(TraceValue{}.Append(nil, trace.Trace{
		User: "u", Point: geo.Point{Lat: 1, Lon: 2}, Time: time.Unix(3, 0).UTC(),
	}))))
	f.Add([]byte("\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTraceValue(string(data))
		if err != nil {
			return
		}
		re, err := DecodeTraceValue(string(TraceValue{}.Append(nil, tr)))
		if err != nil {
			t.Fatalf("re-encode of accepted value failed to decode: %v", err)
		}
		if re.User != tr.User || re.Point != tr.Point || !re.Time.Equal(tr.Time) {
			t.Fatalf("re-encode changed value: %+v -> %+v", tr, re)
		}
	})
}

// FuzzScanAll throws arbitrary bytes at the file scanner: corrupt
// input must produce an error or a clean stop, never a panic.
func FuzzScanAll(f *testing.F) {
	w := NewWriter()
	w.Add("k", "v")
	w.Add("key-2", "value-2")
	f.Add(w.Bytes())
	f.Add([]byte("RCIO\x01"))
	f.Add([]byte("RCIO\x01\x03\x02abcde"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if !IsRecordData(data) {
			return
		}
		n := 0
		_ = ScanAll(data, func(k, v string) error { n++; return nil })
	})
}
