// Package recordio is the binary record layer under the typed
// MapReduce job API: order-preserving codecs for scalar and composite
// keys, compact codecs for the domain value types (trace records,
// points, centroid partial sums), and a sync-marked framed file
// format for binary part files. It is the analogue of the
// Writable/SequenceFile/RawComparator stack the paper's Hadoop
// deployment of GEPETO builds on — at millions of traces the hot path
// must not re-parse text, so keys and values travel as fixed binary
// encodings inside the engine's KV strings.
//
// Key codecs are order-preserving: comparing two encoded keys
// byte-lexicographically (strings.Compare) orders them exactly as
// comparing the decoded values would. The engine's spill sort, k-way
// shuffle merge and group iterator therefore never decode a key.
// The float64 ordering policy is -Inf < finite < +Inf with -0 < +0;
// NaN has no place in a sort key, so Append panics on NaN and Decode
// rejects the bit patterns.
package recordio

import (
	"fmt"
	"math"
	"strings"
)

// beAppendUint64 appends v as 8 big-endian bytes.
func beAppendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// beUint64 reads 8 big-endian bytes from the front of s. The caller
// has already checked len(s) >= 8.
func beUint64(s string) uint64 {
	return uint64(s[0])<<56 | uint64(s[1])<<48 | uint64(s[2])<<40 | uint64(s[3])<<32 |
		uint64(s[4])<<24 | uint64(s[5])<<16 | uint64(s[6])<<8 | uint64(s[7])
}

// appendUvarint appends v in unsigned varint form (the encoding/binary
// wire format).
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// uvarint decodes an unsigned varint from the front of s, returning
// the value and the number of bytes consumed (0 if s is truncated or
// the varint overflows 64 bits).
func uvarint(s string) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b < 0x80 {
			if i > 9 || i == 9 && b > 1 {
				return 0, 0 // overflows uint64
			}
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// Int64 encodes an int64 as 8 big-endian bytes with the sign bit
// flipped, so unsigned byte order equals signed integer order.
type Int64 struct{}

// Append appends the encoding of v to dst.
func (Int64) Append(dst []byte, v int64) []byte {
	return beAppendUint64(dst, uint64(v)^(1<<63))
}

// Decode parses an encoded int64.
func (Int64) Decode(s string) (int64, error) {
	if len(s) != 8 {
		return 0, fmt.Errorf("recordio: int64 encoding is %d bytes, want 8", len(s))
	}
	return int64(beUint64(s) ^ (1 << 63)), nil
}

// RawCompare orders encoded int64s without decoding them.
func (Int64) RawCompare(a, b string) int { return strings.Compare(a, b) }

// Uint64 encodes a uint64 as 8 big-endian bytes.
type Uint64 struct{}

// Append appends the encoding of v to dst.
func (Uint64) Append(dst []byte, v uint64) []byte { return beAppendUint64(dst, v) }

// Decode parses an encoded uint64.
func (Uint64) Decode(s string) (uint64, error) {
	if len(s) != 8 {
		return 0, fmt.Errorf("recordio: uint64 encoding is %d bytes, want 8", len(s))
	}
	return beUint64(s), nil
}

// RawCompare orders encoded uint64s without decoding them.
func (Uint64) RawCompare(a, b string) int { return strings.Compare(a, b) }

// floatOrderedBits maps a float64 onto a uint64 whose unsigned order
// equals the float order (IEEE 754 total order restricted to non-NaN):
// negative values have all bits flipped, non-negative values have the
// sign bit set. NaN is rejected — it has no position in a sort order.
func floatOrderedBits(v float64) uint64 {
	if math.IsNaN(v) {
		panic("recordio: cannot encode NaN as a sort key")
	}
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// Float64 encodes a float64 in 8 order-preserving big-endian bytes:
// -Inf < negatives < -0 < +0 < positives < +Inf. Append panics on NaN;
// Decode rejects NaN bit patterns.
type Float64 struct{}

// Append appends the encoding of v to dst. It panics if v is NaN.
func (Float64) Append(dst []byte, v float64) []byte {
	return beAppendUint64(dst, floatOrderedBits(v))
}

// Decode parses an encoded float64, rejecting NaN.
func (Float64) Decode(s string) (float64, error) {
	if len(s) != 8 {
		return 0, fmt.Errorf("recordio: float64 encoding is %d bytes, want 8", len(s))
	}
	b := beUint64(s)
	if b&(1<<63) != 0 {
		b &^= 1 << 63
	} else {
		b = ^b
	}
	v := math.Float64frombits(b)
	if math.IsNaN(v) {
		return 0, fmt.Errorf("recordio: float64 encoding decodes to NaN")
	}
	return v, nil
}

// RawCompare orders encoded float64s without decoding them.
func (Float64) RawCompare(a, b string) int { return strings.Compare(a, b) }

// RawString passes strings through unencoded: the raw bytes are the
// key. Use it for free-standing text keys (user IDs) where byte order
// is the wanted order and legacy text jobs must see identical keys; it
// cannot be embedded in a composite (no terminator).
type RawString struct{}

// Append appends v verbatim.
func (RawString) Append(dst []byte, v string) []byte { return append(dst, v...) }

// Decode returns s verbatim.
func (RawString) Decode(s string) (string, error) { return s, nil }

// RawCompare orders raw strings bytewise.
func (RawString) RawCompare(a, b string) int { return strings.Compare(a, b) }

// String encodes a string so it can lead a composite key and still
// compare bytewise in string order: each 0x00 byte becomes 0x00 0xFF
// and the encoding ends with the terminator 0x00 0x00, so a shorter
// string always orders before its extensions ("a" < "a\x00" < "ab"
// holds on the encoded bytes).
type String struct{}

// Append appends the escaped, terminated encoding of v to dst.
func (String) Append(dst []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		c := v[i]
		dst = append(dst, c)
		if c == 0x00 {
			dst = append(dst, 0xFF)
		}
	}
	return append(dst, 0x00, 0x00)
}

// Decode parses a full encoded string (no trailing bytes allowed).
func (String) Decode(s string) (string, error) {
	v, rest, err := consumeString(s)
	if err != nil {
		return "", err
	}
	if rest != "" {
		return "", fmt.Errorf("recordio: %d trailing bytes after string encoding", len(rest))
	}
	return v, nil
}

// RawCompare orders encoded strings without decoding them.
func (String) RawCompare(a, b string) int { return strings.Compare(a, b) }

// consumeString decodes one escaped, terminated string from the front
// of s and returns the remainder — the composite-key building block.
func consumeString(s string) (val, rest string, err error) {
	i := strings.IndexByte(s, 0x00)
	if i < 0 || i+1 >= len(s) {
		return "", "", fmt.Errorf("recordio: unterminated string encoding")
	}
	if s[i+1] == 0x00 {
		// Fast path: no escapes before the terminator — the value is a
		// substring, no copy.
		return s[:i], s[i+2:], nil
	}
	var b strings.Builder
	pos := 0
	for {
		i := strings.IndexByte(s[pos:], 0x00)
		if i < 0 || pos+i+1 >= len(s) {
			return "", "", fmt.Errorf("recordio: unterminated string encoding")
		}
		j := pos + i
		b.WriteString(s[pos:j])
		switch s[j+1] {
		case 0xFF:
			b.WriteByte(0x00)
			pos = j + 2
		case 0x00:
			return b.String(), s[j+2:], nil
		default:
			return "", "", fmt.Errorf("recordio: invalid string escape 0x00 0x%02X", s[j+1])
		}
	}
}

// UserTimeKey is the composite (user, unix seconds) sort key the
// trace pipelines group and order by.
type UserTimeKey struct {
	User string
	Unix int64
}

// UserTime encodes a UserTimeKey as the escaped user string followed
// by the order-preserving int64, so encoded keys sort by user first
// and then chronologically — without decoding.
type UserTime struct{}

// Append appends the encoding of v to dst.
func (UserTime) Append(dst []byte, v UserTimeKey) []byte {
	dst = String{}.Append(dst, v.User)
	return Int64{}.Append(dst, v.Unix)
}

// Decode parses an encoded UserTimeKey.
func (UserTime) Decode(s string) (UserTimeKey, error) {
	user, rest, err := consumeString(s)
	if err != nil {
		return UserTimeKey{}, err
	}
	unix, err := Int64{}.Decode(rest)
	if err != nil {
		return UserTimeKey{}, err
	}
	return UserTimeKey{User: user, Unix: unix}, nil
}

// RawCompare orders encoded UserTimeKeys without decoding them.
func (UserTime) RawCompare(a, b string) int { return strings.Compare(a, b) }
