package recordio

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

func TestInt64RoundTrip(t *testing.T) {
	c := Int64{}
	for _, v := range []int64{math.MinInt64, -1 << 40, -7, -1, 0, 1, 42, 1 << 40, math.MaxInt64} {
		got, err := c.Decode(string(c.Append(nil, v)))
		if err != nil {
			t.Fatalf("Decode(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
	if _, err := c.Decode("short"); err == nil {
		t.Fatal("want error for wrong-length encoding")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	c := Uint64{}
	for _, v := range []uint64{0, 1, 1 << 63, math.MaxUint64} {
		got, err := c.Decode(string(c.Append(nil, v)))
		if err != nil {
			t.Fatalf("Decode(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	c := Float64{}
	values := []float64{
		math.Inf(-1), -math.MaxFloat64, -1.5, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1.5,
		math.MaxFloat64, math.Inf(1),
	}
	for _, v := range values {
		got, err := c.Decode(string(c.Append(nil, v)))
		if err != nil {
			t.Fatalf("Decode(%v): %v", v, err)
		}
		if math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("round trip %v -> %v (bit-exact wanted)", v, got)
		}
	}
}

func TestFloat64RejectsNaN(t *testing.T) {
	c := Float64{}
	defer func() {
		if recover() == nil {
			t.Fatal("Append(NaN) did not panic")
		}
	}()
	c.Append(nil, math.NaN())
}

func TestFloat64DecodeRejectsNaNPattern(t *testing.T) {
	// An encoding that decodes to a NaN bit pattern must be refused.
	enc := beAppendUint64(nil, math.Float64bits(math.NaN())|1<<63)
	if _, err := (Float64{}).Decode(string(enc)); err == nil {
		t.Fatal("want error decoding NaN bit pattern")
	}
}

// cmpSign normalises a comparison result to -1/0/1.
func cmpSign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// TestPropertyInt64RawCompareAgrees is the satellite ordering
// property: RawCompare on encoded int64 keys must agree with the
// comparison of the decoded values, negatives included.
func TestPropertyInt64RawCompareAgrees(t *testing.T) {
	c := Int64{}
	edge := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	f := func(a, b int64) bool {
		ea, eb := string(c.Append(nil, a)), string(c.Append(nil, b))
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return cmpSign(c.RawCompare(ea, eb)) == want
	}
	for _, a := range edge {
		for _, b := range edge {
			if !f(a, b) {
				t.Fatalf("edge pair (%d, %d) misordered", a, b)
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFloat64RawCompareAgrees covers the float ordering
// policy: -Inf < every finite value < +Inf, with -0 ordered before +0
// and NaN excluded by construction.
func TestPropertyFloat64RawCompareAgrees(t *testing.T) {
	c := Float64{}
	edge := []float64{
		math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1,
		math.MaxFloat64, math.Inf(1),
	}
	// want orders by the encoding's total order: bit-distinct -0 < +0,
	// otherwise the usual < on floats.
	want := func(a, b float64) int {
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		sa, sb := math.Signbit(a), math.Signbit(b)
		if sa == sb {
			return 0
		}
		if sa {
			return -1
		}
		return 1
	}
	check := func(a, b float64) bool {
		ea, eb := string(c.Append(nil, a)), string(c.Append(nil, b))
		return cmpSign(c.RawCompare(ea, eb)) == want(a, b)
	}
	for i, a := range edge {
		for j, b := range edge {
			if !check(a, b) {
				t.Fatalf("edge pair %d,%d (%v, %v) misordered", i, j, a, b)
			}
		}
		// Edge values in the encoded order must be strictly increasing.
		if i > 0 {
			ea := string(c.Append(nil, edge[i-1]))
			eb := string(c.Append(nil, a))
			if !(ea < eb) {
				t.Fatalf("encoded %v !< encoded %v", edge[i-1], a)
			}
		}
	}
	f := func(ab, bb uint64) bool {
		a, b := math.Float64frombits(ab), math.Float64frombits(bb)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN is rejected, not ordered
		}
		return check(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringCodecRoundTripAndOrder(t *testing.T) {
	c := String{}
	values := []string{"", "\x00", "\x00\x00", "a", "a\x00", "a\x00b", "a\x01", "ab", "b", "\xff", "héllo"}
	for _, v := range values {
		got, err := c.Decode(string(c.Append(nil, v)))
		if err != nil {
			t.Fatalf("Decode(%q): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %q -> %q", v, got)
		}
	}
	for _, a := range values {
		for _, b := range values {
			ea, eb := string(c.Append(nil, a)), string(c.Append(nil, b))
			if cmpSign(strings.Compare(ea, eb)) != cmpSign(strings.Compare(a, b)) {
				t.Fatalf("encoded order of (%q, %q) disagrees with string order", a, b)
			}
		}
	}
	if _, err := c.Decode("unterminated"); err == nil {
		t.Fatal("want error for unterminated encoding")
	}
	if _, err := c.Decode("a\x00\x00extra"); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

func TestUserTimeRoundTripAndOrder(t *testing.T) {
	c := UserTime{}
	keys := []UserTimeKey{
		{"", -5}, {"", 0}, {"a", math.MinInt64}, {"a", -1}, {"a", 0}, {"a", 7},
		{"a\x00", 0}, {"ab", math.MinInt64}, {"b", 3},
	}
	for _, k := range keys {
		got, err := c.Decode(string(c.Append(nil, k)))
		if err != nil {
			t.Fatalf("Decode(%v): %v", k, err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %v", k, got)
		}
	}
	less := func(a, b UserTimeKey) bool {
		if a.User != b.User {
			return a.User < b.User
		}
		return a.Unix < b.Unix
	}
	for i, a := range keys {
		for j, b := range keys {
			ea, eb := string(c.Append(nil, a)), string(c.Append(nil, b))
			if (c.RawCompare(ea, eb) < 0) != less(a, b) {
				t.Fatalf("keys %d,%d (%v, %v): encoded order disagrees", i, j, a, b)
			}
		}
	}
}

func someTrace() trace.Trace {
	return trace.Trace{
		User:         "user-042",
		Point:        geo.Point{Lat: 39.984702, Lon: 116.318417},
		AltitudeFeet: 492,
		Time:         time.Unix(1224730100, 0).UTC(),
	}
}

func TestTraceValueRoundTrip(t *testing.T) {
	c := TraceValue{}
	tr := someTrace()
	got, err := c.Decode(string(c.Append(nil, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if got != tr {
		t.Fatalf("round trip %+v -> %+v", tr, got)
	}
	// Full float64 precision must survive, beyond the text form's %.6f.
	tr.Point.Lat = 39.98470212345678
	got, err = c.Decode(string(c.Append(nil, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Point.Lat != tr.Point.Lat {
		t.Fatalf("lat %v -> %v, precision lost", tr.Point.Lat, got.Point.Lat)
	}
}

func TestDecodeTraceValueTextForms(t *testing.T) {
	tr := someTrace()
	rec := tr.Record()
	// A raw upload line and a text part-file line with a leading key
	// column must parse identically.
	for _, s := range []string{rec, tr.User + "\t" + rec} {
		got, err := DecodeTraceValue(s)
		if err != nil {
			t.Fatalf("DecodeTraceValue(%q): %v", s, err)
		}
		if got != tr {
			t.Fatalf("%q -> %+v, want %+v", s, got, tr)
		}
	}
	if _, err := DecodeTraceValue("no tabs here"); err == nil {
		t.Fatal("want error for tabless text")
	}
	if _, err := DecodeTraceValue("\x01trunc"); err == nil {
		t.Fatal("want error for truncated binary record")
	}
}

func TestPointRoundTrip(t *testing.T) {
	c := Point{}
	p := geo.Point{Lat: -33.8688197, Lon: 151.2092955}
	got, err := c.Decode(string(c.Append(nil, p)))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip %v -> %v", p, got)
	}
	if _, err := c.Decode("123"); err == nil {
		t.Fatal("want error for wrong length")
	}
}

func TestPointSumRoundTrip(t *testing.T) {
	c := PointSumCodec{}
	var ps PointSum
	ps.Add(geo.Point{Lat: 1.000000125, Lon: -2.25})
	ps.Add(geo.Point{Lat: 3.5, Lon: 4.125})
	other := PointSum{LatSum: 10, LonSum: -20, N: 3}
	ps.Merge(other)
	got, err := c.Decode(string(c.Append(nil, ps)))
	if err != nil {
		t.Fatal(err)
	}
	if got != ps {
		t.Fatalf("round trip %+v -> %+v", ps, got)
	}
}

func TestTimedPointRoundTrip(t *testing.T) {
	c := TimedPointCodec{}
	v := TimedPoint{Unix: -12345, P: geo.Point{Lat: 48.8584, Lon: 2.2945}}
	got, err := c.Decode(string(c.Append(nil, v)))
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("round trip %+v -> %+v", v, got)
	}
}

func TestUint64ListRoundTrip(t *testing.T) {
	c := Uint64List{}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 100} {
		v := make([]uint64, n)
		for i := range v {
			v[i] = rng.Uint64()
		}
		got, err := c.Decode(string(c.Append(nil, v)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(v) {
			t.Fatalf("len %d -> %d", len(v), len(got))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("element %d: %d -> %d", i, v[i], got[i])
			}
		}
	}
	if _, err := c.Decode("\x02\x00"); err == nil {
		t.Fatal("want error for truncated list")
	}
}

func TestStringListRoundTrip(t *testing.T) {
	c := StringList{}
	for _, v := range [][]string{{}, {""}, {"a"}, {"", "ab", "", "ccc"}} {
		got, err := c.Decode(string(c.Append(nil, v)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(v) {
			t.Fatalf("len %d -> %d", len(v), len(got))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("element %d: %q -> %q", i, v[i], got[i])
			}
		}
	}
	if _, err := c.Decode("\x05abc"); err == nil {
		t.Fatal("want error for short list")
	}
	if _, err := (StringList{}).Decode("\x01\x01aXX"); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

func TestIDPointRoundTrip(t *testing.T) {
	c := IDPointCodec{}
	for _, v := range []IDPoint{
		{ID: "", P: geo.Point{}},
		{ID: "u1:100", P: geo.Point{Lat: 39.9042, Lon: 116.4074}},
		{ID: "user-with-long-id:9999999999", P: geo.Point{Lat: -89.5, Lon: -179.5}},
	} {
		got, err := c.Decode(string(c.Append(nil, v)))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round-trip %+v -> %+v", v, got)
		}
	}
	if _, err := c.Decode(""); err == nil {
		t.Fatal("want error for empty encoding")
	}
	enc := string(c.Append(nil, IDPoint{ID: "a:1", P: geo.Point{Lat: 1, Lon: 2}}))
	if _, err := c.Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("want error for truncated encoding")
	}
	if _, err := c.Decode(enc + "X"); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

func TestIDPointListRoundTrip(t *testing.T) {
	c := IDPointList{}
	for _, v := range [][]IDPoint{
		{},
		{{ID: "a:1", P: geo.Point{Lat: 1, Lon: 2}}},
		{
			{ID: "a:1", P: geo.Point{Lat: 1, Lon: 2}},
			{ID: "b:2", P: geo.Point{Lat: -3, Lon: 4.5}},
			{ID: "", P: geo.Point{}},
		},
	} {
		got, err := c.Decode(string(c.Append(nil, v)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(v) {
			t.Fatalf("len %d -> %d", len(v), len(got))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("element %d: %+v -> %+v", i, v[i], got[i])
			}
		}
	}
	if _, err := c.Decode("\x02\x01a"); err == nil {
		t.Fatal("want error for truncated list")
	}
}
