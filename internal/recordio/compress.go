// Compressed record files (format version 2) and a streaming reader
// over both record-file formats. Version 2 drops the sync markers of
// the splittable v1 format and instead frames records into
// independently DEFLATE-compressed blocks:
//
//	RCIO\x02 | block... 	block = uvarint rawLen | uvarint compLen | compLen bytes
//
// Records inside a block's decompressed payload use the same uvarint
// key/value framing as v1, and a record never straddles a block
// boundary (a record larger than the block size gets a block of its
// own). The format is for sequentially-read intermediate files — map
// spill runs — which are merged record-at-a-time, never split, so
// resynchronisation markers would be dead weight next to the
// compression win.
//
// FileReader streams either format through a caller-supplied ranged
// fetch (a dfs.ReadRange closure in the engine) so a reduce-side merge
// holds one fetch window per run instead of whole run files.

package recordio

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

const (
	// DefaultCompressBlock is the raw payload size a CompressedWriter
	// accumulates before compressing and emitting a block.
	DefaultCompressBlock = 64 << 10
	// fetchWindow is the FileReader's ranged-read granularity.
	fetchWindow = 256 << 10
)

var compressedHeader = [HeaderLen]byte{'R', 'C', 'I', 'O', 2}

// IsCompressedRecordData reports whether b starts with the compressed
// (version 2) record-file header.
func IsCompressedRecordData(b []byte) bool {
	return len(b) >= HeaderLen && bytes.Equal(b[:HeaderLen], compressedHeader[:])
}

// CompressedWriter accumulates an in-memory version-2 record file,
// compressing each block with DEFLATE as it fills.
type CompressedWriter struct {
	buf       []byte // encoded file
	block     []byte // pending raw payload
	blockSize int
}

// NewCompressedWriter returns a writer with the header already
// emitted. blockSize ≤ 0 selects DefaultCompressBlock.
func NewCompressedWriter(blockSize int) *CompressedWriter {
	if blockSize <= 0 {
		blockSize = DefaultCompressBlock
	}
	w := &CompressedWriter{blockSize: blockSize}
	w.buf = append(w.buf, compressedHeader[:]...)
	return w
}

// Add appends one key/value record. The record lands wholly inside the
// current block; the block is flushed once it reaches the block size.
func (w *CompressedWriter) Add(key, value string) {
	w.block = appendUvarint(w.block, uint64(len(key)))
	w.block = appendUvarint(w.block, uint64(len(value)))
	w.block = append(w.block, key...)
	w.block = append(w.block, value...)
	if len(w.block) >= w.blockSize {
		w.flushBlock()
	}
}

// flushBlock compresses and emits the pending payload as one block.
func (w *CompressedWriter) flushBlock() {
	if len(w.block) == 0 {
		return
	}
	var comp bytes.Buffer
	zw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		// flate.NewWriter only fails on an invalid level constant.
		panic(err)
	}
	if _, err := zw.Write(w.block); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	if err := zw.Close(); err != nil {
		panic(err)
	}
	w.buf = appendUvarint(w.buf, uint64(len(w.block)))
	w.buf = appendUvarint(w.buf, uint64(comp.Len()))
	w.buf = append(w.buf, comp.Bytes()...)
	w.block = w.block[:0]
}

// Len returns the encoded size so far, excluding the pending block.
func (w *CompressedWriter) Len() int { return len(w.buf) }

// Bytes flushes the pending block and returns the encoded file. The
// writer must not be reused after.
func (w *CompressedWriter) Bytes() []byte {
	w.flushBlock()
	return w.buf
}

// FetchFunc reads n bytes of a file starting at off. A fetch may
// return fewer bytes only because the file ends (dfs.ReadRange
// semantics); any other shortfall must surface as an error.
type FetchFunc func(off, n int64) ([]byte, error)

// FileReader streams the records of a version-1 or version-2 record
// file through a ranged fetch, holding at most one fetch window (plus
// one decompressed block for v2) in memory.
type FileReader struct {
	fetch   FetchFunc
	size    int64
	version byte

	off int64  // file offset of buf[0]
	buf []byte // fetched raw window, consumed from pos
	pos int

	block    []byte // v2: current decompressed payload
	blockPos int
}

// NewFileReader opens a record file of the given total size, sniffing
// the format version from the header.
func NewFileReader(size int64, fetch FetchFunc) (*FileReader, error) {
	r := &FileReader{fetch: fetch, size: size}
	if size < HeaderLen {
		return nil, fmt.Errorf("recordio: file of %d bytes is shorter than a record-file header", size)
	}
	hdr, err := r.ensure(HeaderLen)
	if err != nil {
		return nil, err
	}
	switch {
	case bytes.Equal(hdr[:HeaderLen], fileHeader[:]):
		r.version = 1
	case bytes.Equal(hdr[:HeaderLen], compressedHeader[:]):
		r.version = 2
	default:
		return nil, fmt.Errorf("recordio: unrecognised record-file header")
	}
	r.pos += HeaderLen
	return r, nil
}

// ensure returns at least n unconsumed bytes starting at the cursor,
// fetching more of the file as needed. It returns fewer than n bytes
// without error only at end of file.
func (r *FileReader) ensure(n int) ([]byte, error) {
	for len(r.buf)-r.pos < n {
		fetchAt := r.off + int64(len(r.buf))
		if fetchAt >= r.size {
			break // end of file
		}
		want := int64(fetchWindow)
		if n > fetchWindow {
			want = int64(n)
		}
		if fetchAt+want > r.size {
			want = r.size - fetchAt
		}
		chunk, err := r.fetch(fetchAt, want)
		if err != nil {
			return nil, err
		}
		if int64(len(chunk)) < want {
			return nil, fmt.Errorf("recordio: short fetch at offset %d: got %d of %d bytes", fetchAt, len(chunk), want)
		}
		// Drop the consumed prefix before growing the window.
		if r.pos > 0 {
			r.buf = append(r.buf[:0], r.buf[r.pos:]...)
			r.off += int64(r.pos)
			r.pos = 0
		}
		r.buf = append(r.buf, chunk...)
	}
	return r.buf[r.pos:], nil
}

// Next returns the next record. ok is false at a clean end of file;
// a truncated or corrupt file returns an error, never a silent stop.
func (r *FileReader) Next() (key, value string, ok bool, err error) {
	if r.version == 2 {
		return r.nextCompressed()
	}
	return r.nextPlain()
}

// nextPlain advances through a v1 file, skipping sync markers.
func (r *FileReader) nextPlain() (string, string, bool, error) {
	for {
		rest, err := r.ensure(syncLen + 2*maxUvarintLen)
		if err != nil {
			return "", "", false, err
		}
		if len(rest) == 0 {
			return "", "", false, nil // clean end of file
		}
		if len(rest) >= syncLen && bytes.Equal(rest[:syncLen], syncMarker[:]) {
			r.pos += syncLen
			continue
		}
		klen, kn := buvarint(rest)
		vlen, vn := buvarint(rest[kn:])
		if kn == 0 || vn == 0 || klen > maxFrameLen || vlen > maxFrameLen {
			return "", "", false, fmt.Errorf("recordio: corrupt record frame at offset %d", r.off+int64(r.pos))
		}
		frame := kn + vn + int(klen) + int(vlen)
		if rest, err = r.ensure(frame); err != nil {
			return "", "", false, err
		}
		if len(rest) < frame {
			return "", "", false, fmt.Errorf("recordio: truncated record at offset %d", r.off+int64(r.pos))
		}
		body := rest[kn+vn : frame]
		r.pos += frame
		return string(body[:klen]), string(body[klen:]), true, nil
	}
}

// nextCompressed advances through a v2 file, decompressing a block at
// a time.
func (r *FileReader) nextCompressed() (string, string, bool, error) {
	if r.blockPos >= len(r.block) {
		ok, err := r.loadBlock()
		if err != nil || !ok {
			return "", "", false, err
		}
	}
	rest := r.block[r.blockPos:]
	klen, kn := buvarint(rest)
	vlen, vn := buvarint(rest[kn:])
	if kn == 0 || vn == 0 || klen > maxFrameLen || vlen > maxFrameLen {
		return "", "", false, fmt.Errorf("recordio: corrupt record frame in block at offset %d", r.off+int64(r.pos))
	}
	frame := kn + vn + int(klen) + int(vlen)
	if frame > len(rest) {
		return "", "", false, fmt.Errorf("recordio: record extends past its compressed block at offset %d", r.off+int64(r.pos))
	}
	body := rest[kn+vn : frame]
	r.blockPos += frame
	return string(body[:klen]), string(body[klen:]), true, nil
}

// loadBlock fetches and decompresses the next block. ok is false at a
// clean end of file.
func (r *FileReader) loadBlock() (bool, error) {
	hdr, err := r.ensure(2 * maxUvarintLen)
	if err != nil {
		return false, err
	}
	if len(hdr) == 0 {
		return false, nil // clean end of file
	}
	rawLen, rn := buvarint(hdr)
	compLen, cn := buvarint(hdr[rn:])
	if rn == 0 || cn == 0 || rawLen == 0 || rawLen > maxFrameLen || compLen > maxFrameLen {
		return false, fmt.Errorf("recordio: corrupt block header at offset %d", r.off+int64(r.pos))
	}
	need := rn + cn + int(compLen)
	if hdr, err = r.ensure(need); err != nil {
		return false, err
	}
	if len(hdr) < need {
		return false, fmt.Errorf("recordio: truncated block at offset %d", r.off+int64(r.pos))
	}
	zr := flate.NewReader(bytes.NewReader(hdr[rn+cn : need]))
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return false, fmt.Errorf("recordio: block at offset %d does not decompress to %d bytes: %v", r.off+int64(r.pos), rawLen, err)
	}
	if err := zr.Close(); err != nil {
		return false, fmt.Errorf("recordio: corrupt compressed block at offset %d: %v", r.off+int64(r.pos), err)
	}
	r.pos += need
	r.block, r.blockPos = raw, 0
	return true, nil
}

// BytesFetcher adapts an in-memory file to a FetchFunc, truncating at
// end of data like dfs.ReadRange.
func BytesFetcher(data []byte) FetchFunc {
	return func(off, n int64) ([]byte, error) {
		if off >= int64(len(data)) {
			return nil, nil
		}
		end := off + n
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		return data[off:end], nil
	}
}
