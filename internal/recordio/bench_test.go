package recordio

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/trace"
)

// The codec benchmarks quantify the tentpole's claim: binary records
// beat the Sprintf/ParseFloat text path on both time and allocations.
// Run with -benchmem (CI runs them at -benchtime=1x as a smoke test).

func BenchmarkCodecTraceEncodeBinary(b *testing.B) {
	tr := someBenchTrace()
	c := TraceValue{}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], tr)
	}
	_ = buf
}

func BenchmarkCodecTraceEncodeText(b *testing.B) {
	tr := someBenchTrace()
	b.ReportAllocs()
	var s string
	for i := 0; i < b.N; i++ {
		s = tr.Record()
	}
	_ = s
}

func BenchmarkCodecTraceDecodeBinary(b *testing.B) {
	tr := someBenchTrace()
	enc := string(TraceValue{}.Append(nil, tr))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTraceValue(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecTraceDecodeText(b *testing.B) {
	rec := someBenchTrace().Record()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTraceValue(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecInt64Key(b *testing.B) {
	c := Int64{}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], int64(i))
		if _, err := c.Decode(string(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecInt64KeyText(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := strconv.Itoa(i)
		if _, err := strconv.Atoi(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecPointSum(b *testing.B) {
	c := PointSumCodec{}
	v := PointSum{LatSum: 39.984702 * 1000, LonSum: 116.318417 * 1000, N: 1000}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], v)
		if _, err := c.Decode(string(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecPointSumText(b *testing.B) {
	v := PointSum{LatSum: 39.984702 * 1000, LonSum: 116.318417 * 1000, N: 1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := fmt.Sprintf("%f,%f,%d", v.LatSum, v.LonSum, v.N)
		var lat, lon float64
		var n int64
		if _, err := fmt.Sscanf(s, "%f,%f,%d", &lat, &lon, &n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileWriteScan(b *testing.B) {
	tr := someBenchTrace()
	val := string(TraceValue{}.Append(nil, tr))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter()
		for j := 0; j < 1000; j++ {
			w.Add(tr.User, val)
		}
		n := 0
		if err := ScanAll(w.Bytes(), func(k, v string) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 1000 {
			b.Fatal("lost records")
		}
	}
	b.ReportMetric(1000, "records/op")
}

func someBenchTrace() trace.Trace {
	tr, err := trace.ParseRecord("user-042\t39.984702,116.318417,492,1224730100")
	if err != nil {
		panic(err)
	}
	return tr
}
