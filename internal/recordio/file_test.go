package recordio

import (
	"fmt"
	"math/rand"
	"testing"
)

func buildFile(t *testing.T, kvs [][2]string) []byte {
	t.Helper()
	w := NewWriter()
	for _, kv := range kvs {
		w.Add(kv[0], kv[1])
	}
	return w.Bytes()
}

func randKVs(rng *rand.Rand, n int) [][2]string {
	kvs := make([][2]string, n)
	for i := range kvs {
		key := fmt.Sprintf("key-%06d", rng.Intn(n*2+1))
		val := make([]byte, rng.Intn(120))
		rng.Read(val)
		kvs[i] = [2]string{key, string(val)}
	}
	return kvs
}

func TestWriterScanAllRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kvs := randKVs(rng, 500)
	data := buildFile(t, kvs)
	if !IsRecordData(data) {
		t.Fatal("written file does not sniff as record data")
	}
	var got [][2]string
	if err := ScanAll(data, func(k, v string) error {
		got = append(got, [2]string{k, v})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(kvs) {
		t.Fatalf("scanned %d records, wrote %d", len(got), len(kvs))
	}
	for i := range kvs {
		if got[i] != kvs[i] {
			t.Fatalf("record %d: %q, want %q", i, got[i], kvs[i])
		}
	}
}

func TestIsRecordDataNegative(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("RCI"), []byte("user\t1,2,3,4\n"), []byte("RCIO\x02rest")} {
		if IsRecordData(b) {
			t.Fatalf("%q sniffed as record data", b)
		}
	}
}

// TestScanSplitExactness is the split-semantics property: for random
// files and random split boundaries, scanning every split of a
// partition of the file yields each record exactly once, in file
// order — records are neither lost nor duplicated at sync-block
// boundaries, mirroring the text reader's line-ownership rule.
func TestScanSplitExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		kvs := randKVs(rng, 1+rng.Intn(800))
		data := buildFile(t, kvs)
		// Random split boundaries, including tiny and huge splits.
		var cuts []int64
		pos := int64(0)
		for pos < int64(len(data)) {
			cuts = append(cuts, pos)
			pos += int64(1 + rng.Intn(len(data)/2+1))
		}
		cuts = append(cuts, int64(len(data)))
		var got [][2]string
		for i := 0; i+1 < len(cuts); i++ {
			start, end := cuts[i], cuts[i+1]
			err := ScanSplit(data, 0, start, end, false, func(k, v string) error {
				got = append(got, [2]string{k, v})
				return nil
			})
			if err != nil {
				t.Fatalf("trial %d split [%d,%d): %v", trial, start, end, err)
			}
		}
		if len(got) != len(kvs) {
			t.Fatalf("trial %d: %d records over all splits, want %d", trial, len(got), len(kvs))
		}
		for i := range kvs {
			if got[i] != kvs[i] {
				t.Fatalf("trial %d record %d: %q, want %q", trial, i, got[i], kvs[i])
			}
		}
	}
}

// TestScanSplitPartialBuffer drives ScanSplit the way the engine's
// reader does: each split only sees the file from its own offset, not
// from byte 0.
func TestScanSplitPartialBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kvs := randKVs(rng, 600)
	data := buildFile(t, kvs)
	const splitLen = 1000
	var got [][2]string
	for start := int64(0); start < int64(len(data)); start += splitLen {
		end := start + splitLen
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		buf := data[start:]
		err := ScanSplit(buf, start, start, end, false, func(k, v string) error {
			got = append(got, [2]string{k, v})
			return nil
		})
		if err != nil {
			t.Fatalf("split [%d,%d): %v", start, end, err)
		}
	}
	if len(got) != len(kvs) {
		t.Fatalf("%d records over all splits, want %d", len(got), len(kvs))
	}
	for i := range kvs {
		if got[i] != kvs[i] {
			t.Fatalf("record %d: %q, want %q", i, got[i], kvs[i])
		}
	}
}

func TestScanSplitRangeLimitedMidRecord(t *testing.T) {
	w := NewWriter()
	w.Add("key", "0123456789")
	data := w.Bytes()
	// Cut the buffer mid-record and claim it was range-limited: the
	// scan must report the budget error rather than silently stop.
	cut := data[:len(data)-4]
	err := ScanSplit(cut, 0, 0, int64(len(data)), true, func(k, v string) error { return nil })
	if err == nil {
		t.Fatal("want overrun error for range-limited mid-record buffer")
	}
	// The same cut without rangeLimited is a truncated (corrupt) file.
	err = ScanSplit(cut, 0, 0, int64(len(data)), false, func(k, v string) error { return nil })
	if err == nil {
		t.Fatal("want corruption error for truncated file")
	}
}

func TestScanAllRejectsMissingHeader(t *testing.T) {
	if err := ScanAll([]byte("plain text\n"), func(k, v string) error { return nil }); err == nil {
		t.Fatal("want error for missing header")
	}
}

func TestScanAllCorruptFrame(t *testing.T) {
	w := NewWriter()
	w.Add("k", "v")
	data := w.Bytes()
	// Blow up the key length varint to an absurd value.
	data[HeaderLen] = 0xFF
	data = append(data[:HeaderLen+1], append([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, data[HeaderLen+1:]...)...)
	if err := ScanAll(data, func(k, v string) error { return nil }); err == nil {
		t.Fatal("want error for corrupt frame")
	}
}

func TestWriterEmitsSyncMarkers(t *testing.T) {
	w := NewWriter()
	val := string(make([]byte, 100))
	for i := 0; i < 500; i++ {
		w.Add(fmt.Sprintf("k%04d", i), val)
	}
	data := w.Bytes()
	// ~500 * ~110 bytes with a marker every ≥4096: expect at least 10.
	count := 0
	for i := 0; i+syncLen <= len(data); i++ {
		match := true
		for j := 0; j < syncLen; j++ {
			if data[i+j] != syncMarker[j] {
				match = false
				break
			}
		}
		if match {
			count++
		}
	}
	if count < 10 {
		t.Fatalf("found %d sync markers, want at least 10", count)
	}
}
