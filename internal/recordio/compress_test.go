package recordio

import (
	"fmt"
	"strings"
	"testing"
)

// kv is a local pair for test expectations (the package itself deals
// in raw byte streams).
type kv struct{ Key, Value string }

// readAll drains a FileReader, failing the test on any stream error.
func readAll(t *testing.T, data []byte) []kv {
	t.Helper()
	r, err := NewFileReader(int64(len(data)), BytesFetcher(data))
	if err != nil {
		t.Fatal(err)
	}
	var kvs []kv
	for {
		k, v, ok, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", len(kvs), err)
		}
		if !ok {
			return kvs
		}
		kvs = append(kvs, kv{Key: k, Value: v})
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	w := NewCompressedWriter(0)
	want := make([]kv, 500)
	for i := range want {
		want[i] = kv{Key: fmt.Sprintf("key-%04d", i), Value: strings.Repeat("v", i%37)}
		w.Add(want[i].Key, want[i].Value)
	}
	data := w.Bytes()
	if !IsCompressedRecordData(data) {
		t.Fatal("compressed file not recognised by its header")
	}
	got := readAll(t, data)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestCompressedBlockBoundaries pins the block framing edges: a record
// exactly filling a block, records landing just before and after the
// flush point, and a record far larger than the block size (which must
// get a block of its own rather than straddle).
func TestCompressedBlockBoundaries(t *testing.T) {
	const block = 64
	w := NewCompressedWriter(block)
	var want []kv
	add := func(k, v string) {
		want = append(want, kv{Key: k, Value: v})
		w.Add(k, v)
	}
	// Frame overhead is 2 uvarint bytes for these sizes: 2+1+61 = 64
	// lands the flush exactly at the block size.
	add("k", strings.Repeat("a", 61))
	add("edge", "just-after-a-flush")
	add("big", strings.Repeat("B", 10*block)) // record ≫ block size
	add("tail", "after-the-giant")
	got := readAll(t, w.Bytes())
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: key %q (%d value bytes), want key %q (%d value bytes)",
				i, got[i].Key, len(got[i].Value), want[i].Key, len(want[i].Value))
		}
	}
}

func TestCompressedEmptyFileIsCleanEOF(t *testing.T) {
	if got := readAll(t, NewCompressedWriter(0).Bytes()); len(got) != 0 {
		t.Fatalf("empty file yielded %d records", len(got))
	}
}

// TestFileReaderPlainAcrossFetchWindows streams a v1 file bigger than
// one fetch window, so records and sync markers straddle window
// boundaries inside ensure().
func TestFileReaderPlainAcrossFetchWindows(t *testing.T) {
	w := NewWriter()
	val := strings.Repeat("x", 1000)
	n := (fetchWindow/1000 + 50) * 2 // ~2.1 windows of data
	for i := 0; i < n; i++ {
		w.Add(fmt.Sprintf("key-%06d", i), val)
	}
	data := w.Bytes()
	if len(data) <= fetchWindow {
		t.Fatalf("fixture too small: %d bytes", len(data))
	}
	got := readAll(t, data)
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i, kv := range got {
		if kv.Key != fmt.Sprintf("key-%06d", i) || kv.Value != val {
			t.Fatalf("record %d mangled: key %q, %d value bytes", i, kv.Key, len(kv.Value))
		}
	}
}

// TestFileReaderTruncationIsError chops bytes off the tail of both
// formats: the stream must end in an explicit error, never a clean EOF
// that silently drops records.
func TestFileReaderTruncationIsError(t *testing.T) {
	files := map[string][]byte{}
	{
		w := NewWriter()
		for i := 0; i < 200; i++ {
			w.Add(fmt.Sprintf("key-%04d", i), strings.Repeat("v", 40))
		}
		files["v1"] = w.Bytes()
	}
	{
		w := NewCompressedWriter(256)
		for i := 0; i < 200; i++ {
			w.Add(fmt.Sprintf("key-%04d", i), strings.Repeat("v", 40))
		}
		files["v2"] = w.Bytes()
	}
	for name, full := range files {
		for _, cut := range []int{1, 7, 33} {
			data := full[:len(full)-cut]
			r, err := NewFileReader(int64(len(data)), BytesFetcher(data))
			if err != nil {
				t.Fatalf("%s cut %d: open: %v", name, cut, err)
			}
			var streamErr error
			reads := 0
			for {
				_, _, ok, err := r.Next()
				if err != nil {
					streamErr = err
					break
				}
				if !ok {
					break
				}
				reads++
			}
			if streamErr == nil {
				t.Fatalf("%s cut %d: truncated file read %d records to a clean EOF", name, cut, reads)
			}
		}
	}
}

func TestFileReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewFileReader(3, BytesFetcher([]byte("RC"))); err == nil {
		t.Fatal("short file accepted")
	}
	if _, err := NewFileReader(10, BytesFetcher([]byte("GARBAGE###"))); err == nil {
		t.Fatal("unknown header accepted")
	}
	if _, err := NewFileReader(5, BytesFetcher([]byte{'R', 'C', 'I', 'O', 9})); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestFileReaderMatchesSliceReader cross-checks the streaming reader
// against the established in-memory v1 reader on the same bytes.
func TestFileReaderMatchesSliceReader(t *testing.T) {
	w := NewWriter()
	for i := 0; i < 1000; i++ {
		w.Add(fmt.Sprintf("k%05d", i), fmt.Sprintf("value-%d", i*i))
	}
	data := w.Bytes()
	var want []kv
	if err := ScanAll(data, func(k, v string) error {
		want = append(want, kv{Key: k, Value: v})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, data)
	if len(got) != len(want) {
		t.Fatalf("streaming read %d records, slice read %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: streaming %v, slice %v", i, got[i], want[i])
		}
	}
}
