// Domain codecs: the binary trace record every pipeline moves through
// the shuffle, plus the small value structs (points, partial sums,
// timed points, lists) the jobs aggregate.

package recordio

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// traceTag is the first byte of every binary trace-value encoding. No
// legacy text record starts with it (records start with a printable
// user ID), which is what lets DecodeTraceValue dispatch between the
// binary form and the text form without further framing.
const traceTag = 0x01

// TraceValue encodes a trace.Trace as a compact self-contained binary
// value: tag byte, uvarint-length user ID, then latitude, longitude
// and altitude as raw float64 bits and the unix time, all big-endian.
// Decode additionally accepts the legacy text record form (see
// DecodeTraceValue), so a typed mapper reads text uploads and binary
// part files through the same codec.
type TraceValue struct{}

// Append appends the binary encoding of t to dst.
func (TraceValue) Append(dst []byte, t trace.Trace) []byte {
	dst = append(dst, traceTag)
	dst = appendUvarint(dst, uint64(len(t.User)))
	dst = append(dst, t.User...)
	dst = beAppendUint64(dst, math.Float64bits(t.Point.Lat))
	dst = beAppendUint64(dst, math.Float64bits(t.Point.Lon))
	dst = beAppendUint64(dst, math.Float64bits(t.AltitudeFeet))
	dst = beAppendUint64(dst, uint64(t.Time.Unix()))
	return dst
}

// Decode parses a binary or legacy text trace record.
func (TraceValue) Decode(s string) (trace.Trace, error) { return DecodeTraceValue(s) }

// DecodeTraceValue is the one shared trace-record parser: it decodes
// the binary TraceValue form when the tag byte leads, and otherwise
// falls back to the legacy text record "user\tlat,lon,alt,unix" —
// taking the last two tab-separated fields, so text part-file lines
// with a leading key column parse the same way as raw upload lines.
func DecodeTraceValue(s string) (trace.Trace, error) {
	if len(s) > 0 && s[0] == traceTag {
		return decodeBinaryTrace(s)
	}
	j := strings.LastIndexByte(s, '\t')
	if j < 0 {
		return trace.ParseRecord(s) // errors with record context
	}
	i := strings.LastIndexByte(s[:j], '\t')
	return trace.ParseRecord(s[i+1:])
}

func decodeBinaryTrace(s string) (trace.Trace, error) {
	body := s[1:]
	ulen64, n := uvarint(body)
	if n == 0 || ulen64 > uint64(len(body)) {
		return trace.Trace{}, fmt.Errorf("recordio: truncated binary trace record (%d bytes)", len(s))
	}
	body = body[n:]
	ulen := int(ulen64)
	if len(body) != ulen+32 {
		return trace.Trace{}, fmt.Errorf("recordio: binary trace record body is %d bytes, want %d", len(body), ulen+32)
	}
	user := body[:ulen]
	rest := body[ulen:]
	lat := math.Float64frombits(beUint64(rest))
	lon := math.Float64frombits(beUint64(rest[8:]))
	alt := math.Float64frombits(beUint64(rest[16:]))
	unix := int64(beUint64(rest[24:]))
	p := geo.Point{Lat: lat, Lon: lon}
	if !p.Valid() {
		return trace.Trace{}, fmt.Errorf("recordio: binary trace coordinate out of range: %v", p)
	}
	if math.IsNaN(alt) {
		return trace.Trace{}, fmt.Errorf("recordio: binary trace altitude is NaN")
	}
	return trace.Trace{
		User:         user,
		Point:        p,
		AltitudeFeet: alt,
		Time:         time.Unix(unix, 0).UTC(),
	}, nil
}

// Point encodes a geo.Point as 16 bytes of raw float64 bits. It is a
// value codec; the bytes are not order-preserving.
type Point struct{}

// Append appends the encoding of p to dst.
func (Point) Append(dst []byte, p geo.Point) []byte {
	dst = beAppendUint64(dst, math.Float64bits(p.Lat))
	return beAppendUint64(dst, math.Float64bits(p.Lon))
}

// Decode parses an encoded point.
func (Point) Decode(s string) (geo.Point, error) {
	if len(s) != 16 {
		return geo.Point{}, fmt.Errorf("recordio: point encoding is %d bytes, want 16", len(s))
	}
	return geo.Point{
		Lat: math.Float64frombits(beUint64(s)),
		Lon: math.Float64frombits(beUint64(s[8:])),
	}, nil
}

// PointSum is a running partial sum of point coordinates with a
// count — the k-means map/combiner currency. Carrying the sums as
// full-precision float64s is what fixes the precision loss the old
// text path accumulated by re-rendering partial sums through %f on
// every combine hop.
type PointSum struct {
	LatSum, LonSum float64
	N              int64
}

// Add folds one point into the sum.
func (ps *PointSum) Add(p geo.Point) {
	ps.LatSum += p.Lat
	ps.LonSum += p.Lon
	ps.N++
}

// Merge folds another partial sum into the sum.
func (ps *PointSum) Merge(o PointSum) {
	ps.LatSum += o.LatSum
	ps.LonSum += o.LonSum
	ps.N += o.N
}

// PointSumCodec encodes a PointSum as 24 bytes: two raw float64 sums
// and a big-endian count.
type PointSumCodec struct{}

// Append appends the encoding of v to dst.
func (PointSumCodec) Append(dst []byte, v PointSum) []byte {
	dst = beAppendUint64(dst, math.Float64bits(v.LatSum))
	dst = beAppendUint64(dst, math.Float64bits(v.LonSum))
	return beAppendUint64(dst, uint64(v.N))
}

// Decode parses an encoded PointSum.
func (PointSumCodec) Decode(s string) (PointSum, error) {
	if len(s) != 24 {
		return PointSum{}, fmt.Errorf("recordio: point-sum encoding is %d bytes, want 24", len(s))
	}
	return PointSum{
		LatSum: math.Float64frombits(beUint64(s)),
		LonSum: math.Float64frombits(beUint64(s[8:])),
		N:      int64(beUint64(s[16:])),
	}, nil
}

// TimedPoint is a position fix with its unix timestamp — the MMC
// builder's per-user event value.
type TimedPoint struct {
	Unix int64
	P    geo.Point
}

// TimedPointCodec encodes a TimedPoint as 24 bytes: big-endian unix
// seconds then raw float64 coordinate bits.
type TimedPointCodec struct{}

// Append appends the encoding of v to dst.
func (TimedPointCodec) Append(dst []byte, v TimedPoint) []byte {
	dst = beAppendUint64(dst, uint64(v.Unix))
	dst = beAppendUint64(dst, math.Float64bits(v.P.Lat))
	return beAppendUint64(dst, math.Float64bits(v.P.Lon))
}

// Decode parses an encoded TimedPoint.
func (TimedPointCodec) Decode(s string) (TimedPoint, error) {
	if len(s) != 24 {
		return TimedPoint{}, fmt.Errorf("recordio: timed-point encoding is %d bytes, want 24", len(s))
	}
	return TimedPoint{
		Unix: int64(beUint64(s)),
		P: geo.Point{
			Lat: math.Float64frombits(beUint64(s[8:])),
			Lon: math.Float64frombits(beUint64(s[16:])),
		},
	}, nil
}

// Uint64List encodes a []uint64 as a uvarint count followed by 8
// big-endian bytes per element — the R-tree build's sample batches and
// partition bounds.
type Uint64List struct{}

// Append appends the encoding of v to dst.
func (Uint64List) Append(dst []byte, v []uint64) []byte {
	dst = appendUvarint(dst, uint64(len(v)))
	for _, u := range v {
		dst = beAppendUint64(dst, u)
	}
	return dst
}

// Decode parses an encoded []uint64.
func (Uint64List) Decode(s string) ([]uint64, error) {
	count, n := uvarint(s)
	if n == 0 || uint64(len(s)-n)%8 != 0 || count != uint64(len(s)-n)/8 {
		return nil, fmt.Errorf("recordio: malformed uint64 list (%d bytes)", len(s))
	}
	s = s[n:]
	out := make([]uint64, count)
	for i := range out {
		out[i] = beUint64(s[i*8:])
	}
	return out, nil
}

// IDPoint is an identified position — an R-tree entry in transit:
// the trace ID plus its coordinate.
type IDPoint struct {
	ID string
	P  geo.Point
}

// IDPointCodec encodes an IDPoint as a uvarint-length ID followed by
// 16 bytes of raw float64 coordinate bits.
type IDPointCodec struct{}

// Append appends the encoding of v to dst.
func (IDPointCodec) Append(dst []byte, v IDPoint) []byte {
	dst = appendUvarint(dst, uint64(len(v.ID)))
	dst = append(dst, v.ID...)
	dst = beAppendUint64(dst, math.Float64bits(v.P.Lat))
	return beAppendUint64(dst, math.Float64bits(v.P.Lon))
}

// Decode parses an encoded IDPoint.
func (IDPointCodec) Decode(s string) (IDPoint, error) {
	v, rest, err := consumeIDPoint(s)
	if err != nil {
		return IDPoint{}, err
	}
	if len(rest) != 0 {
		return IDPoint{}, fmt.Errorf("recordio: %d trailing bytes after id-point", len(rest))
	}
	return v, nil
}

// consumeIDPoint decodes one IDPoint off the front of s.
func consumeIDPoint(s string) (IDPoint, string, error) {
	l, n := uvarint(s)
	if n == 0 || l > uint64(len(s)-n) || uint64(len(s)-n)-l < 16 {
		return IDPoint{}, "", fmt.Errorf("recordio: malformed id-point (%d bytes)", len(s))
	}
	id := s[n : n+int(l)]
	rest := s[n+int(l):]
	p := geo.Point{
		Lat: math.Float64frombits(beUint64(rest)),
		Lon: math.Float64frombits(beUint64(rest[8:])),
	}
	return IDPoint{ID: id, P: p}, rest[16:], nil
}

// IDPointList encodes a []IDPoint as a uvarint count followed by the
// elements — the serialized entry list of an R-tree partition subtree.
type IDPointList struct{}

// Append appends the encoding of v to dst.
func (IDPointList) Append(dst []byte, v []IDPoint) []byte {
	dst = appendUvarint(dst, uint64(len(v)))
	for _, e := range v {
		dst = IDPointCodec{}.Append(dst, e)
	}
	return dst
}

// Decode parses an encoded []IDPoint.
func (IDPointList) Decode(s string) ([]IDPoint, error) {
	count, n := uvarint(s)
	if n == 0 || count > uint64(len(s)-n) {
		return nil, fmt.Errorf("recordio: malformed id-point list (%d bytes)", len(s))
	}
	s = s[n:]
	out := make([]IDPoint, 0, count)
	for i := uint64(0); i < count; i++ {
		v, rest, err := consumeIDPoint(s)
		if err != nil {
			return nil, fmt.Errorf("recordio: id-point list element %d: %v", i, err)
		}
		out = append(out, v)
		s = rest
	}
	if len(s) != 0 {
		return nil, fmt.Errorf("recordio: %d trailing bytes after id-point list", len(s))
	}
	return out, nil
}

// StringList encodes a []string as a uvarint count followed by a
// uvarint length and the raw bytes per element.
type StringList struct{}

// Append appends the encoding of v to dst.
func (StringList) Append(dst []byte, v []string) []byte {
	dst = appendUvarint(dst, uint64(len(v)))
	for _, s := range v {
		dst = appendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// Decode parses an encoded []string.
func (StringList) Decode(s string) ([]string, error) {
	count, n := uvarint(s)
	if n == 0 || count > uint64(len(s)-n) {
		return nil, fmt.Errorf("recordio: malformed string list (%d bytes)", len(s))
	}
	s = s[n:]
	out := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := uvarint(s)
		if n == 0 || l > uint64(len(s)-n) {
			return nil, fmt.Errorf("recordio: truncated string list element %d", i)
		}
		out = append(out, s[n:n+int(l)])
		s = s[n+int(l):]
	}
	if len(s) != 0 {
		return nil, fmt.Errorf("recordio: %d trailing bytes after string list", len(s))
	}
	return out, nil
}
