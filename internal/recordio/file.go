// The binary record-file format: a magic header, uvarint-framed
// key/value records, and a fixed sync marker injected at least every
// syncInterval bytes — the SequenceFile analogue that makes binary
// part files splittable. A split owns the records of every sync block
// whose start offset falls inside [split start, split end): the
// initial block starts right after the header, every later block
// starts at its sync marker, and a reader scans forward past the
// split end until the first marker owned by the next split (or EOF),
// exactly as Hadoop's SequenceFile reader resynchronises.
//
// Hadoop writes a per-file random marker into the header; this format
// uses one fixed high-entropy 16-byte marker for all files so a
// header sniff needs only 5 bytes. A record that happens to contain
// the marker bytes could in principle desynchronise a mid-file split
// scan; with 16 fixed bytes the accepted collision risk is 2^-128 per
// record position.

package recordio

import (
	"bytes"
	"fmt"
)

const (
	// HeaderLen is the length of the file header: the 4-byte magic
	// plus a format version byte. Sniffing a file needs only this
	// prefix (see IsRecordData).
	HeaderLen = 5
	// syncInterval is the minimum distance between sync markers; a
	// marker is written before the first record that would stretch the
	// current block past it.
	syncInterval = 4096
	// syncLen is the sync-marker length.
	syncLen = 16
	// maxFrameLen bounds a single key or value length, as a sanity
	// check against scanning desynchronised or corrupt bytes.
	maxFrameLen = 64 << 20
)

var fileHeader = [HeaderLen]byte{'R', 'C', 'I', 'O', 1}

var syncMarker = [syncLen]byte{
	0x9e, 0x37, 0x79, 0xb9, 0x7f, 0x4a, 0x7c, 0x15,
	0xf3, 0x9c, 0xc0, 0x60, 0xa3, 0xed, 0xc8, 0x34,
}

// IsRecordData reports whether b starts with the record-file header —
// the format sniff the engine's readers use to dispatch between
// binary record files and legacy text files.
func IsRecordData(b []byte) bool {
	return len(b) >= HeaderLen && bytes.Equal(b[:HeaderLen], fileHeader[:])
}

// Writer accumulates an in-memory record file. The engine buffers
// whole part files before a single DFS create, so the writer exposes
// the final bytes rather than streaming.
type Writer struct {
	buf       []byte
	sinceSync int
}

// NewWriter returns a writer with the header already emitted.
func NewWriter() *Writer {
	w := &Writer{}
	w.buf = append(w.buf, fileHeader[:]...)
	return w
}

// Add appends one key/value record, preceded by a sync marker when
// the current block has reached the sync interval.
func (w *Writer) Add(key, value string) {
	if w.sinceSync >= syncInterval {
		w.buf = append(w.buf, syncMarker[:]...)
		w.sinceSync = 0
	}
	n := len(w.buf)
	w.buf = appendUvarint(w.buf, uint64(len(key)))
	w.buf = appendUvarint(w.buf, uint64(len(value)))
	w.buf = append(w.buf, key...)
	w.buf = append(w.buf, value...)
	w.sinceSync += len(w.buf) - n
}

// Len returns the current encoded size in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the encoded file. The writer must not be reused after.
func (w *Writer) Bytes() []byte { return w.buf }

// ScanAll iterates every record of a complete in-memory record file.
func ScanAll(data []byte, fn func(key, value string) error) error {
	if !IsRecordData(data) {
		return fmt.Errorf("recordio: data does not start with a record-file header")
	}
	return ScanSplit(data, 0, 0, int64(len(data)), false, fn)
}

// ScanSplit iterates the records a split [start, end) of a record
// file owns. buf holds the file bytes from offset bufStart onward —
// at least through the split plus enough overrun to finish the
// split's final block (the engine budgets the same 1 MiB the text
// reader uses). bufStart must be ≤ start.
//
// Ownership follows block starts: the record block beginning at file
// offset p (the initial block at HeaderLen, every other at its sync
// marker) belongs to the split with p in [start, end). The scan
// therefore seeks the first owned block, emits records — reading past
// end if the block extends there — and stops at the first marker at
// or past end, or at end of data.
//
// rangeLimited says buf may have been cut by the read budget rather
// than EOF; running out of buffer mid-scan is then a record-too-long
// error instead of end-of-file.
func ScanSplit(buf []byte, bufStart, start, end int64, rangeLimited bool, fn func(key, value string) error) error {
	if bufStart > start {
		return fmt.Errorf("recordio: scan buffer starts at %d, after split start %d", bufStart, start)
	}
	// Locate the first owned block's first record.
	pos := int64(0) // cursor within buf; file offset is bufStart+pos
	if start <= HeaderLen {
		// The split covers the file start, so it owns the initial block.
		if HeaderLen >= end {
			return nil
		}
		pos = HeaderLen - bufStart
	} else {
		if start-bufStart >= int64(len(buf)) {
			return nil // the file ends before the split starts
		}
		idx := bytes.Index(buf[start-bufStart:], syncMarker[:])
		if idx < 0 {
			return nil // no block starts here; a previous split reads across
		}
		marker := start - bufStart + int64(idx)
		if bufStart+marker >= end {
			return nil // first block here belongs to the next split
		}
		pos = marker + syncLen
	}
	if pos > int64(len(buf)) {
		return nil
	}
	for {
		rest := buf[pos:]
		if len(rest) == 0 {
			if rangeLimited {
				return fmt.Errorf("recordio: %s", overrunMsg(bufStart+pos))
			}
			return nil // end of file
		}
		// A sync marker here starts a new block; stop if the next split
		// owns it.
		if len(rest) >= syncLen && bytes.Equal(rest[:syncLen], syncMarker[:]) {
			if bufStart+pos >= end {
				return nil
			}
			pos += syncLen
			continue
		}
		klen, kn := buvarint(rest)
		vlen, vn := buvarint(rest[kn:])
		if kn == 0 || vn == 0 || klen > maxFrameLen || vlen > maxFrameLen {
			if (kn == 0 || vn == 0) && rangeLimited && len(rest) < 2*maxUvarintLen {
				return fmt.Errorf("recordio: %s", overrunMsg(bufStart+pos))
			}
			return fmt.Errorf("recordio: corrupt record frame at offset %d", bufStart+pos)
		}
		k, v := int(klen), int(vlen)
		frame := int64(kn+vn) + int64(k) + int64(v)
		if pos+frame > int64(len(buf)) {
			if rangeLimited {
				return fmt.Errorf("recordio: %s", overrunMsg(bufStart+pos))
			}
			return fmt.Errorf("recordio: truncated record at offset %d", bufStart+pos)
		}
		body := rest[kn+vn:]
		if err := fn(string(body[:k]), string(body[k:k+v])); err != nil {
			return err
		}
		pos += frame
	}
}

const maxUvarintLen = 10

func overrunMsg(off int64) string {
	return fmt.Sprintf("record block at offset %d extends past the reader's overrun budget", off)
}

// buvarint is uvarint over a byte slice.
func buvarint(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i > 9 || i == 9 && c > 1 {
				return 0, 0
			}
			return v | uint64(c)<<shift, i + 1
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}
