package dfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func newFS(t *testing.T, nodes, racks int, chunkSize int64) (*FileSystem, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.NewUniform(nodes, racks, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(c, Config{ChunkSize: chunkSize, Replication: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs, c
}

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return b
}

func TestCreateReadRoundTrip(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 100)
	data := randBytes(1234, 1)
	if err := fs.Create("data/file1", data, ""); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("data/file1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadAll mismatch")
	}
	size, err := fs.Size("data/file1")
	if err != nil || size != 1234 {
		t.Fatalf("Size = %d, %v", size, err)
	}
}

func TestChunkingExact(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 100)
	// 250 bytes with 100-byte chunks -> 3 chunks of 100,100,50.
	if err := fs.Create("f", randBytes(250, 2), ""); err != nil {
		t.Fatal(err)
	}
	chunks, err := fs.Chunks("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	wantLens := []int64{100, 100, 50}
	for i, ci := range chunks {
		if ci.Index != i || ci.Offset != int64(i)*100 || ci.Length != wantLens[i] {
			t.Fatalf("chunk %d = %+v", i, ci)
		}
		if len(ci.Hosts) != 3 {
			t.Fatalf("chunk %d has %d hosts, want 3", i, len(ci.Hosts))
		}
	}
}

func TestChunkBoundaryMultiple(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 100)
	// Exactly 200 bytes -> 2 chunks, not 3.
	if err := fs.Create("f", randBytes(200, 3), ""); err != nil {
		t.Fatal(err)
	}
	chunks, _ := fs.Chunks("f")
	if len(chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(chunks))
	}
}

func TestEmptyFile(t *testing.T) {
	fs, _ := newFS(t, 3, 1, 100)
	if err := fs.Create("empty", nil, ""); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadAll(empty) = %v, %v", got, err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs, _ := newFS(t, 3, 1, 100)
	if err := fs.Create("f", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("f", []byte("y"), ""); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestCreateInvalidPath(t *testing.T) {
	fs, _ := newFS(t, 3, 1, 100)
	for _, p := range []string{"", "dir/"} {
		if err := fs.Create(p, []byte("x"), ""); err == nil {
			t.Errorf("Create(%q) should fail", p)
		}
	}
}

func TestReadRange(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 100)
	data := randBytes(350, 4)
	if err := fs.Create("f", data, ""); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, n int64 }{
		{0, 10}, {95, 10}, {100, 100}, {250, 100}, {340, 100}, {0, 350}, {349, 1},
	}
	for _, c := range cases {
		got, err := fs.ReadRange("f", c.off, c.n)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", c.off, c.n, err)
		}
		end := c.off + c.n
		if end > 350 {
			end = 350
		}
		if !bytes.Equal(got, data[c.off:end]) {
			t.Fatalf("ReadRange(%d,%d) mismatch", c.off, c.n)
		}
	}
	// Past EOF.
	if got, err := fs.ReadRange("f", 400, 10); err != nil || got != nil {
		t.Fatalf("past-EOF read = %v, %v", got, err)
	}
	// Negative.
	if _, err := fs.ReadRange("f", -1, 10); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestRackAwarePlacement(t *testing.T) {
	fs, c := newFS(t, 9, 3, 1000)
	writer := c.Nodes()[0].ID
	if err := fs.Create("f", randBytes(500, 5), writer); err != nil {
		t.Fatal(err)
	}
	chunks, _ := fs.Chunks("f")
	for _, ci := range chunks {
		if ci.Hosts[0] != writer {
			t.Fatalf("first replica on %s, want writer %s", ci.Hosts[0], writer)
		}
		r0 := c.RackOf(ci.Hosts[0])
		if c.RackOf(ci.Hosts[1]) != r0 {
			t.Fatalf("second replica rack %s, want same rack %s", c.RackOf(ci.Hosts[1]), r0)
		}
		if c.RackOf(ci.Hosts[2]) == r0 {
			t.Fatal("third replica should be on a different rack")
		}
		seen := map[string]bool{}
		for _, h := range ci.Hosts {
			if seen[h] {
				t.Fatal("duplicate replica node")
			}
			seen[h] = true
		}
	}
}

func TestPlacementDegradesSingleRack(t *testing.T) {
	// Single-rack cluster: third replica can't be off-rack; must still
	// get 3 distinct nodes.
	fs, _ := newFS(t, 5, 1, 1000)
	if err := fs.Create("f", randBytes(100, 6), ""); err != nil {
		t.Fatal(err)
	}
	chunks, _ := fs.Chunks("f")
	if got := len(chunks[0].Hosts); got != 3 {
		t.Fatalf("hosts = %d, want 3", got)
	}
}

func TestReplicationCappedByClusterSize(t *testing.T) {
	fs, _ := newFS(t, 2, 1, 1000)
	if err := fs.Create("f", randBytes(100, 7), ""); err != nil {
		t.Fatal(err)
	}
	chunks, _ := fs.Chunks("f")
	if got := len(chunks[0].Hosts); got != 2 {
		t.Fatalf("hosts = %d, want 2 (cluster size)", got)
	}
}

func TestReadSurvivesNodeFailures(t *testing.T) {
	fs, c := newFS(t, 6, 2, 100)
	data := randBytes(500, 8)
	if err := fs.Create("f", data, ""); err != nil {
		t.Fatal(err)
	}
	// Kill two nodes; with 3 replicas every chunk still has one.
	c.Kill(c.Nodes()[0].ID)
	c.Kill(c.Nodes()[1].ID)
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after failures")
	}
}

func TestReReplicate(t *testing.T) {
	fs, c := newFS(t, 6, 2, 100)
	data := randBytes(500, 9)
	if err := fs.Create("f", data, ""); err != nil {
		t.Fatal(err)
	}
	dead := c.Nodes()[0].ID
	c.Kill(dead)
	created, err := fs.ReReplicate()
	if err != nil {
		t.Fatal(err)
	}
	// Every chunk that had a replica on the dead node must be restored.
	chunks, _ := fs.Chunks("f")
	for _, ci := range chunks {
		if len(ci.Hosts) != 3 {
			t.Fatalf("chunk %d has %d hosts after re-replication", ci.Index, len(ci.Hosts))
		}
		for _, h := range ci.Hosts {
			if h == dead {
				t.Fatal("dead node still listed as host")
			}
		}
	}
	if created == 0 {
		t.Log("note: dead node held no replicas (possible with random placement)")
	}
	if got, err := fs.ReadAll("f"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data mismatch after re-replication: %v", err)
	}
}

func TestReReplicateDataLoss(t *testing.T) {
	// 3 nodes, replication capped at 3: kill all -> no replicas left.
	fs, c := newFS(t, 3, 1, 100)
	if err := fs.Create("f", randBytes(100, 10), ""); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		c.Kill(n.ID)
	}
	if _, err := fs.ReReplicate(); err == nil {
		t.Fatal("want data-loss error")
	}
	if _, err := fs.ReadAll("f"); err == nil {
		t.Fatal("read should fail when all replicas dead")
	}
}

func TestListAndDelete(t *testing.T) {
	fs, _ := newFS(t, 3, 1, 100)
	for _, p := range []string{"in/a", "in/b", "out/c"} {
		if err := fs.Create(p, []byte("x"), ""); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.List("in"); len(got) != 2 || got[0] != "in/a" || got[1] != "in/b" {
		t.Fatalf("List(in) = %v", got)
	}
	if got := fs.List("in/"); len(got) != 2 {
		t.Fatalf("List(in/) = %v", got)
	}
	if got := fs.List(""); len(got) != 3 {
		t.Fatalf("List() = %v", got)
	}
	if err := fs.Delete("in/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("in/a") {
		t.Fatal("deleted file still exists")
	}
	if err := fs.Delete("in/a"); err == nil {
		t.Fatal("double delete should fail")
	}
	fs.DeleteDir("in")
	if got := fs.List(""); len(got) != 1 || got[0] != "out/c" {
		t.Fatalf("after DeleteDir: %v", got)
	}
	// Blocks must actually be freed.
	if s := fs.Stats(); s.Files != 1 {
		t.Fatalf("Stats.Files = %d", s.Files)
	}
}

func TestStats(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 100)
	if err := fs.Create("f", randBytes(250, 11), ""); err != nil {
		t.Fatal(err)
	}
	s := fs.Stats()
	if s.Files != 1 || s.Chunks != 3 || s.Bytes != 250 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Blocks != 9 { // 3 chunks x 3 replicas
		t.Fatalf("Blocks = %d, want 9", s.Blocks)
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	// Writing many chunks from an off-cluster client must not
	// concentrate all primaries on one node.
	fs, _ := newFS(t, 8, 2, 10)
	if err := fs.Create("big", randBytes(10*200, 12), ""); err != nil {
		t.Fatal(err)
	}
	s := fs.Stats()
	if len(s.BlocksPerNode) < 6 {
		t.Fatalf("blocks concentrated on %d nodes: %v", len(s.BlocksPerNode), s.BlocksPerNode)
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs, _ := newFS(t, 3, 1, 100)
	if _, err := fs.ReadAll("nope"); err == nil {
		t.Error("ReadAll missing file should error")
	}
	if _, err := fs.Chunks("nope"); err == nil {
		t.Error("Chunks missing file should error")
	}
	if _, err := fs.Size("nope"); err == nil {
		t.Error("Size missing file should error")
	}
	if _, err := fs.ReadRange("nope", 0, 1); err == nil {
		t.Error("ReadRange missing file should error")
	}
}

func TestConcurrentCreateRead(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 1000)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			path := fmt.Sprintf("dir/f%02d", i)
			data := randBytes(5000, int64(i))
			if err := fs.Create(path, data, ""); err != nil {
				done <- err
				return
			}
			got, err := fs.ReadAll(path)
			if err != nil {
				done <- err
				return
			}
			if !bytes.Equal(got, data) {
				done <- fmt.Errorf("%s: data mismatch", path)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(fs.List("dir")); got != 16 {
		t.Fatalf("List = %d files", got)
	}
}

func TestDefaultConfig(t *testing.T) {
	c, _ := cluster.NewUniform(3, 1, 2)
	fs, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fs.ChunkSize() != DefaultChunkSize {
		t.Fatalf("ChunkSize = %d", fs.ChunkSize())
	}
}

func TestNewNoNodes(t *testing.T) {
	c, _ := cluster.NewUniform(1, 1, 1)
	c.Kill(c.Nodes()[0].ID)
	if _, err := New(c, Config{}); err == nil {
		t.Fatal("New on dead cluster should error")
	}
}

func TestLinesSurviveChunkBoundaries(t *testing.T) {
	// Write line-oriented data whose lines straddle chunk boundaries
	// and verify ReadRange-based reconstruction (what the MapReduce
	// record reader will rely on).
	fs, _ := newFS(t, 6, 2, 64)
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "record-%03d,with,some,fields\n", i)
	}
	data := []byte(sb.String())
	if err := fs.Create("lines", data, ""); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("lines")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	chunks, _ := fs.Chunks("lines")
	if len(chunks) < 10 {
		t.Fatalf("expected many chunks, got %d", len(chunks))
	}
}

func TestChecksumFallbackOnCorruptReplica(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 100)
	data := randBytes(250, 21)
	if err := fs.Create("f", data, ""); err != nil {
		t.Fatal(err)
	}
	// Corrupt one replica of the first chunk: reads must silently fall
	// over to a clean replica.
	node, err := fs.CorruptReplica("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if node == "" {
		t.Fatal("no node reported")
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned corrupt data")
	}
}

func TestScrubChecksums(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 100)
	data := randBytes(250, 22)
	if err := fs.Create("f", data, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CorruptReplica("f", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CorruptReplica("f", 120); err != nil {
		t.Fatal(err)
	}
	removed, err := fs.ScrubChecksums()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("scrub removed %d replicas, want 2", removed)
	}
	// Replication restored: every chunk has 3 valid hosts again.
	chunks, _ := fs.Chunks("f")
	for _, ci := range chunks {
		if len(ci.Hosts) != 3 {
			t.Fatalf("chunk %d has %d hosts after scrub", ci.Index, len(ci.Hosts))
		}
	}
	if got, _ := fs.ReadAll("f"); !bytes.Equal(got, data) {
		t.Fatal("data mismatch after scrub")
	}
	// A clean filesystem scrubs to zero.
	if n, err := fs.ScrubChecksums(); err != nil || n != 0 {
		t.Fatalf("second scrub: %d, %v", n, err)
	}
}

func TestAllReplicasCorruptFailsRead(t *testing.T) {
	fs, _ := newFS(t, 3, 1, 1000)
	if err := fs.Create("f", randBytes(100, 23), ""); err != nil {
		t.Fatal(err)
	}
	// Corrupt every replica.
	for i := 0; i < 3; i++ {
		if _, err := fs.CorruptReplica("f", 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.ReadAll("f"); err == nil {
		t.Fatal("read of fully corrupt chunk should fail")
	}
	if _, err := fs.CorruptReplica("nope", 0); err == nil {
		t.Fatal("corrupting missing file should error")
	}
	if _, err := fs.CorruptReplica("f", 9999); err == nil {
		t.Fatal("corrupting past EOF should error")
	}
}

func TestBalanceEvensBlockCounts(t *testing.T) {
	// Write everything from one datanode: its local-first placement
	// concentrates primaries there; Balance must spread them.
	fs, c := newFS(t, 6, 2, 50)
	writer := c.Nodes()[0].ID
	data := randBytes(50*40, 31) // 40 chunks
	if err := fs.Create("big", data, writer); err != nil {
		t.Fatal(err)
	}
	before := fs.Stats().BlocksPerNode
	if before[writer] != 40 {
		t.Fatalf("writer holds %d blocks, want 40 (local-first placement)", before[writer])
	}
	moves := fs.Balance()
	if moves == 0 {
		t.Fatal("balancer moved nothing")
	}
	after := fs.Stats().BlocksPerNode
	maxB, minB := 0, 1<<30
	for _, n := range c.Nodes() {
		b := after[n.ID]
		if b > maxB {
			maxB = b
		}
		if b < minB {
			minB = b
		}
	}
	if maxB-minB >= 2 {
		t.Fatalf("still unbalanced after Balance: %v", after)
	}
	// Data must remain intact and replica lists consistent.
	got, err := fs.ReadAll("big")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data corrupted by balancer: %v", err)
	}
	chunks, _ := fs.Chunks("big")
	for _, ci := range chunks {
		seen := map[string]bool{}
		for _, h := range ci.Hosts {
			if seen[h] {
				t.Fatal("duplicate replica host after balance")
			}
			seen[h] = true
		}
		if len(ci.Hosts) != 3 {
			t.Fatalf("chunk %d has %d hosts", ci.Index, len(ci.Hosts))
		}
	}
}

func TestBalanceNoOpWhenEven(t *testing.T) {
	fs, _ := newFS(t, 4, 2, 100)
	if err := fs.Create("f", randBytes(400, 32), ""); err != nil {
		t.Fatal(err)
	}
	fs.Balance()
	if moves := fs.Balance(); moves != 0 {
		t.Fatalf("second balance moved %d blocks", moves)
	}
}

func TestIOStatsCountsTraffic(t *testing.T) {
	fs, _ := newFS(t, 6, 2, 100)
	if s := fs.IOStats(); s != (IOStatsSnapshot{}) {
		t.Fatalf("fresh FS has non-zero I/O stats: %+v", s)
	}
	data := randBytes(250, 7) // 3 chunks at chunk size 100
	if err := fs.Create("data/f", data, ""); err != nil {
		t.Fatal(err)
	}
	s := fs.IOStats()
	if s.BytesWritten != 250 {
		t.Errorf("BytesWritten = %d, want 250", s.BytesWritten)
	}
	if s.BytesRead != 0 || s.ChunksRead != 0 {
		t.Errorf("write alone counted reads: %+v", s)
	}
	if _, err := fs.ReadAll("data/f"); err != nil {
		t.Fatal(err)
	}
	s = fs.IOStats()
	if s.ChunksRead != 3 {
		t.Errorf("ChunksRead = %d, want 3", s.ChunksRead)
	}
	if s.BytesRead != 250 {
		t.Errorf("BytesRead = %d, want 250", s.BytesRead)
	}
	// A ranged read touches only the chunks that overlap the range.
	if _, err := fs.ReadRange("data/f", 120, 50); err != nil {
		t.Fatal(err)
	}
	s2 := fs.IOStats()
	if got := s2.ChunksRead - s.ChunksRead; got != 1 {
		t.Errorf("ReadRange touched %d chunks, want 1", got)
	}
}
