// Package dfs implements an in-process distributed file system
// modelled on HDFS as described in §III of the paper: files are
// partitioned into fixed-size chunks stored on datanodes, a namenode
// keeps the file metadata and chunk locations, and chunks are
// replicated (3 replicas by default) with the rack-aware policy — the
// first copy is written locally, the second on a datanode in the same
// rack as the first, and the third is shipped to a datanode in a
// different rack chosen at random.
//
// The chunk size is configurable; the paper's experiments use 64 MB and
// 32 MB and show it is "a crucial parameter having a big influence on
// the computational time" because it determines the number of map
// tasks.
package dfs

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
)

// DefaultChunkSize is the standard Hadoop chunk size of 64 MB.
const DefaultChunkSize = 64 << 20

// DefaultReplication is HDFS's default of 3 replicas per chunk.
const DefaultReplication = 3

// Config parameterises the file system.
type Config struct {
	// ChunkSize is the chunk ("block") size in bytes. The paper
	// evaluates 32 MB and 64 MB. Defaults to DefaultChunkSize.
	ChunkSize int64
	// Replication is the number of replicas per chunk. Defaults to
	// DefaultReplication, capped at the number of alive nodes.
	Replication int
	// Seed drives the random replica placement, making layouts
	// reproducible.
	Seed int64
}

// ChunkInfo describes one chunk of a file as reported by the namenode
// to clients (and to the MapReduce jobtracker for locality scheduling).
type ChunkInfo struct {
	// Path is the file this chunk belongs to.
	Path string
	// Index is the chunk's position within the file (0-based).
	Index int
	// Offset is the byte offset of the chunk within the file.
	Offset int64
	// Length is the chunk's length in bytes (the final chunk may be
	// short).
	Length int64
	// Hosts are the datanodes holding replicas, primary first.
	Hosts []string
}

type chunkMeta struct {
	id       string
	index    int
	offset   int64
	length   int64
	checksum uint32 // CRC32 of the chunk contents, like HDFS block checksums
	replicas []string
}

type fileMeta struct {
	size   int64
	chunks []*chunkMeta
}

type datanode struct {
	blocks map[string][]byte
}

// FileSystem is the in-process DFS. All methods are safe for
// concurrent use. The namenode role (metadata, placement,
// re-replication) and datanode role (block storage) are both played by
// this object, with the cluster supplying topology and liveness.
type FileSystem struct {
	mu      sync.RWMutex
	cfg     Config
	cluster *cluster.Cluster
	files   map[string]*fileMeta
	nodes   map[string]*datanode
	rng     *rand.Rand

	// Cumulative I/O counters (atomic: bumped under read locks too).
	ioBytesRead    atomic.Int64
	ioBytesWritten atomic.Int64
	ioChunksRead   atomic.Int64
}

// IOStatsSnapshot is a point-in-time view of cumulative DFS I/O.
// Callers diff two snapshots to attribute I/O to an interval (the
// MapReduce engine does this per job; with concurrent jobs on one file
// system the attribution is shared, as with any global counter).
type IOStatsSnapshot struct {
	// BytesRead counts logical chunk bytes served to readers.
	BytesRead int64
	// BytesWritten counts logical file bytes accepted by Create
	// (excluding replication copies).
	BytesWritten int64
	// ChunksRead counts chunk reads served.
	ChunksRead int64
}

// IOStats returns the cumulative I/O counters.
func (fs *FileSystem) IOStats() IOStatsSnapshot {
	return IOStatsSnapshot{
		BytesRead:    fs.ioBytesRead.Load(),
		BytesWritten: fs.ioBytesWritten.Load(),
		ChunksRead:   fs.ioChunksRead.Load(),
	}
}

// New creates a file system over the cluster's alive nodes.
func New(c *cluster.Cluster, cfg Config) (*FileSystem, error) {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	alive := c.Alive()
	if len(alive) == 0 {
		return nil, fmt.Errorf("dfs: cluster has no alive nodes")
	}
	fs := &FileSystem{
		cfg:     cfg,
		cluster: c,
		files:   make(map[string]*fileMeta),
		nodes:   make(map[string]*datanode),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, n := range c.Nodes() {
		fs.nodes[n.ID] = &datanode{blocks: make(map[string][]byte)}
	}
	return fs, nil
}

// ChunkSize returns the configured chunk size in bytes.
func (fs *FileSystem) ChunkSize() int64 { return fs.cfg.ChunkSize }

// Create writes a new file, splitting it into chunks and placing
// replicas rack-aware. localNode is the identity of the writing client
// ("" for an off-cluster client, in which case the primary replica
// node is chosen at random, as HDFS does). It fails if the path
// already exists.
func (fs *FileSystem) Create(path string, data []byte, localNode string) error {
	if path == "" || strings.HasSuffix(path, "/") {
		return fmt.Errorf("dfs: invalid file path %q", path)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("dfs: %s already exists", path)
	}
	meta := &fileMeta{size: int64(len(data))}
	for off := int64(0); off < int64(len(data)) || (off == 0 && len(data) == 0); off += fs.cfg.ChunkSize {
		end := off + fs.cfg.ChunkSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		cm := &chunkMeta{
			id:       fmt.Sprintf("%s#%d", path, len(meta.chunks)),
			index:    len(meta.chunks),
			offset:   off,
			length:   end - off,
			checksum: crc32.ChecksumIEEE(data[off:end]),
		}
		replicas, err := fs.placeReplicas(localNode)
		if err != nil {
			return fmt.Errorf("dfs: placing %s: %v", cm.id, err)
		}
		cm.replicas = replicas
		block := append([]byte(nil), data[off:end]...)
		for _, nodeID := range replicas {
			fs.nodes[nodeID].blocks[cm.id] = block
		}
		meta.chunks = append(meta.chunks, cm)
		if len(data) == 0 {
			break
		}
	}
	fs.files[path] = meta
	fs.ioBytesWritten.Add(int64(len(data)))
	return nil
}

// placeReplicas implements the rack-aware policy from §III. The caller
// must hold fs.mu.
func (fs *FileSystem) placeReplicas(localNode string) ([]string, error) {
	alive := fs.cluster.Alive()
	if len(alive) == 0 {
		return nil, fmt.Errorf("no alive datanodes")
	}
	want := fs.cfg.Replication
	if want > len(alive) {
		want = len(alive)
	}
	chosen := make([]string, 0, want)
	used := make(map[string]bool)
	pick := func(pred func(cluster.Node) bool) bool {
		cands := make([]cluster.Node, 0, len(alive))
		for _, n := range alive {
			if !used[n.ID] && (pred == nil || pred(n)) {
				cands = append(cands, n)
			}
		}
		if len(cands) == 0 {
			return false
		}
		n := cands[fs.rng.Intn(len(cands))]
		chosen = append(chosen, n.ID)
		used[n.ID] = true
		return true
	}

	// First copy: written locally if the writer is a datanode.
	if localNode != "" && fs.cluster.IsAlive(localNode) {
		chosen = append(chosen, localNode)
		used[localNode] = true
	} else {
		pick(nil)
	}
	firstRack := fs.cluster.RackOf(chosen[0])

	// Second copy: a datanode in the same rack as the first replica.
	if len(chosen) < want {
		if !pick(func(n cluster.Node) bool { return n.Rack == firstRack }) {
			pick(nil) // degrade: no same-rack node available
		}
	}
	// Third copy: a datanode in a different rack, chosen at random.
	if len(chosen) < want {
		if !pick(func(n cluster.Node) bool { return n.Rack != firstRack }) {
			pick(nil) // degrade: single-rack cluster
		}
	}
	// Any further replicas: random remaining nodes.
	for len(chosen) < want {
		if !pick(nil) {
			break
		}
	}
	return chosen, nil
}

// Exists reports whether path names an existing file.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the file's length in bytes.
func (fs *FileSystem) Size(path string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: %s: no such file", path)
	}
	return meta.size, nil
}

// ReadAll returns the full contents of a file, reassembled from the
// first alive replica of each chunk.
func (fs *FileSystem) ReadAll(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", path)
	}
	out := make([]byte, 0, meta.size)
	for _, cm := range meta.chunks {
		block, err := fs.readChunkLocked(cm)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
	}
	return out, nil
}

// ReadRange reads length bytes starting at offset. Reads shorter than
// length at end-of-file are returned without error (like io.ReaderAt
// semantics but truncating instead of erroring).
func (fs *FileSystem) ReadRange(path string, offset, length int64) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", path)
	}
	if offset < 0 || length < 0 {
		return nil, fmt.Errorf("dfs: negative offset/length")
	}
	if offset >= meta.size {
		return nil, nil
	}
	end := offset + length
	if end > meta.size {
		end = meta.size
	}
	out := make([]byte, 0, end-offset)
	for _, cm := range meta.chunks {
		cEnd := cm.offset + cm.length
		if cEnd <= offset || cm.offset >= end {
			continue
		}
		block, err := fs.readChunkLocked(cm)
		if err != nil {
			return nil, err
		}
		lo := int64(0)
		if offset > cm.offset {
			lo = offset - cm.offset
		}
		hi := cm.length
		if end < cEnd {
			hi = end - cm.offset
		}
		out = append(out, block[lo:hi]...)
	}
	return out, nil
}

// readChunkLocked returns the block bytes from the first alive replica
// whose checksum verifies, skipping corrupt copies the way an HDFS
// client falls over to the next replica.
func (fs *FileSystem) readChunkLocked(cm *chunkMeta) ([]byte, error) {
	corrupt := 0
	for _, nodeID := range cm.replicas {
		if !fs.cluster.IsAlive(nodeID) {
			continue
		}
		block, ok := fs.nodes[nodeID].blocks[cm.id]
		if !ok {
			continue
		}
		if crc32.ChecksumIEEE(block) != cm.checksum {
			corrupt++
			continue
		}
		fs.ioChunksRead.Add(1)
		fs.ioBytesRead.Add(int64(len(block)))
		return block, nil
	}
	if corrupt > 0 {
		return nil, fmt.Errorf("dfs: chunk %s: %d corrupt replica(s), none valid", cm.id, corrupt)
	}
	return nil, fmt.Errorf("dfs: chunk %s: all replicas unavailable", cm.id)
}

// CorruptReplica flips a byte in one replica of the chunk holding the
// given file offset — a fault-injection hook for testing checksum
// fallback. It returns the node whose copy was damaged.
func (fs *FileSystem) CorruptReplica(path string, offset int64) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[path]
	if !ok {
		return "", fmt.Errorf("dfs: %s: no such file", path)
	}
	for _, cm := range meta.chunks {
		if offset < cm.offset || offset >= cm.offset+cm.length {
			continue
		}
		for _, nodeID := range cm.replicas {
			dn := fs.nodes[nodeID]
			block, ok := dn.blocks[cm.id]
			if !ok || len(block) == 0 {
				continue
			}
			if crc32.ChecksumIEEE(block) != cm.checksum {
				continue // already corrupt; damage a fresh copy
			}
			// Copy-on-corrupt: replicas share the backing array.
			damaged := append([]byte(nil), block...)
			damaged[0] ^= 0xFF
			dn.blocks[cm.id] = damaged
			return nodeID, nil
		}
		return "", fmt.Errorf("dfs: chunk %s has no intact replica left", cm.id)
	}
	return "", fmt.Errorf("dfs: offset %d beyond %s", offset, path)
}

// ScrubChecksums verifies every stored replica against its chunk
// checksum, deletes corrupt copies, and re-replicates (the HDFS block
// scanner). It returns the number of corrupt replicas removed.
func (fs *FileSystem) ScrubChecksums() (removed int, err error) {
	fs.mu.Lock()
	for _, meta := range fs.files {
		for _, cm := range meta.chunks {
			for _, nodeID := range cm.replicas {
				dn := fs.nodes[nodeID]
				if block, ok := dn.blocks[cm.id]; ok && crc32.ChecksumIEEE(block) != cm.checksum {
					delete(dn.blocks, cm.id)
					removed++
				}
			}
		}
	}
	fs.mu.Unlock()
	if removed > 0 {
		if _, rerr := fs.ReReplicate(); rerr != nil {
			return removed, rerr
		}
	}
	return removed, nil
}

// Chunks reports the chunk layout of a file, with only alive hosts
// listed (what the namenode would tell the jobtracker).
func (fs *FileSystem) Chunks(path string) ([]ChunkInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", path)
	}
	out := make([]ChunkInfo, 0, len(meta.chunks))
	for _, cm := range meta.chunks {
		hosts := make([]string, 0, len(cm.replicas))
		for _, h := range cm.replicas {
			if fs.cluster.IsAlive(h) {
				hosts = append(hosts, h)
			}
		}
		out = append(out, ChunkInfo{
			Path:   path,
			Index:  cm.index,
			Offset: cm.offset,
			Length: cm.length,
			Hosts:  hosts,
		})
	}
	return out, nil
}

// List returns the sorted paths of all files under the given directory
// prefix ("" lists everything). A trailing slash on dir is optional.
func (fs *FileSystem) List(dir string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	prefix := dir
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	var out []string
	for p := range fs.files {
		if prefix == "" || strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a file and its blocks from all datanodes.
func (fs *FileSystem) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("dfs: %s: no such file", path)
	}
	for _, cm := range meta.chunks {
		for _, nodeID := range cm.replicas {
			delete(fs.nodes[nodeID].blocks, cm.id)
		}
	}
	delete(fs.files, path)
	return nil
}

// DeleteDir removes every file under the directory prefix. It keeps
// going past individual failures and returns the first one.
func (fs *FileSystem) DeleteDir(dir string) error {
	var first error
	for _, p := range fs.List(dir) {
		if err := fs.Delete(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReReplicate restores the replication factor of chunks that lost
// replicas to dead nodes, copying from a surviving replica to new
// nodes (what the namenode does after datanode failure detection).
// It returns the number of new replicas created and an error if any
// chunk has lost all replicas.
func (fs *FileSystem) ReReplicate() (created int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var lost []string
	for path, meta := range fs.files {
		for _, cm := range meta.chunks {
			aliveReps := cm.replicas[:0:0]
			for _, nodeID := range cm.replicas {
				if fs.cluster.IsAlive(nodeID) {
					aliveReps = append(aliveReps, nodeID)
				}
			}
			if len(aliveReps) == 0 {
				lost = append(lost, fmt.Sprintf("%s (of %s)", cm.id, path))
				continue
			}
			want := fs.cfg.Replication
			if alive := fs.cluster.Alive(); want > len(alive) {
				want = len(alive)
			}
			if len(aliveReps) >= want {
				cm.replicas = aliveReps
				continue
			}
			block, rerr := fs.readChunkLocked(cm)
			if rerr != nil {
				lost = append(lost, cm.id)
				continue
			}
			used := make(map[string]bool)
			for _, r := range aliveReps {
				used[r] = true
			}
			for _, n := range fs.cluster.Alive() {
				if len(aliveReps) >= want {
					break
				}
				if used[n.ID] {
					continue
				}
				fs.nodes[n.ID].blocks[cm.id] = block
				aliveReps = append(aliveReps, n.ID)
				used[n.ID] = true
				created++
			}
			cm.replicas = aliveReps
		}
	}
	if len(lost) > 0 {
		sort.Strings(lost)
		return created, fmt.Errorf("dfs: data loss: chunks with no surviving replica: %s", strings.Join(lost, ", "))
	}
	return created, nil
}

// Stats summarises the cluster-wide storage state.
type Stats struct {
	// Files is the number of files.
	Files int
	// Chunks is the total number of logical chunks.
	Chunks int
	// Blocks is the total number of stored replicas across datanodes.
	Blocks int
	// Bytes is the logical data size (excluding replication).
	Bytes int64
	// BlocksPerNode maps node ID to stored block count.
	BlocksPerNode map[string]int
}

// Stats returns current storage statistics.
func (fs *FileSystem) Stats() Stats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	s := Stats{BlocksPerNode: make(map[string]int)}
	for _, meta := range fs.files {
		s.Files++
		s.Chunks += len(meta.chunks)
		s.Bytes += meta.size
	}
	for nodeID, dn := range fs.nodes {
		s.Blocks += len(dn.blocks)
		if len(dn.blocks) > 0 {
			s.BlocksPerNode[nodeID] = len(dn.blocks)
		}
	}
	return s
}

// Balance evens out block counts across alive datanodes (the HDFS
// balancer): while the most loaded node holds at least two blocks more
// than the least loaded, one eligible replica is moved. A replica is
// eligible if the target node does not already hold a copy of the same
// chunk. It returns the number of block moves performed.
func (fs *FileSystem) Balance() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	alive := fs.cluster.Alive()
	if len(alive) < 2 {
		return 0
	}
	// Index: chunk id -> meta, for replica-list upkeep.
	byID := make(map[string]*chunkMeta)
	for _, meta := range fs.files {
		for _, cm := range meta.chunks {
			byID[cm.id] = cm
		}
	}
	moves := 0
	for {
		var maxN, minN *datanode
		var maxID, minID string
		for _, n := range alive {
			dn := fs.nodes[n.ID]
			if maxN == nil || len(dn.blocks) > len(maxN.blocks) {
				maxN, maxID = dn, n.ID
			}
			if minN == nil || len(dn.blocks) < len(minN.blocks) {
				minN, minID = dn, n.ID
			}
		}
		if maxN == nil || len(maxN.blocks)-len(minN.blocks) < 2 {
			return moves
		}
		moved := false
		for id, block := range maxN.blocks {
			if _, dup := minN.blocks[id]; dup {
				continue
			}
			cm := byID[id]
			if cm == nil {
				continue
			}
			minN.blocks[id] = block
			delete(maxN.blocks, id)
			for i, r := range cm.replicas {
				if r == maxID {
					cm.replicas[i] = minID
					break
				}
			}
			moves++
			moved = true
			break
		}
		if !moved {
			return moves
		}
	}
}
