package dfs

import "fmt"

// Store is the narrow storage surface task execution needs: write a
// file near a node, stream ranged reads, and stat sizes. It is the
// subset of *FileSystem a remote worker process reaches over RPC
// (rpc.RemoteStore), so the same map/reduce task code runs unchanged
// in-process and out-of-process.
type Store interface {
	// Create stores a complete file, placing the first replica on
	// localNode when it is alive (HDFS write-locality).
	Create(path string, data []byte, localNode string) error
	// ReadRange returns length bytes starting at offset.
	ReadRange(path string, offset, length int64) ([]byte, error)
	// Size returns the file's length in bytes.
	Size(path string) (int64, error)
}

var _ Store = (*FileSystem)(nil)

// Rename moves a file to a new path — a pure metadata operation, the
// chunks stay where they are. It fails if the source is missing or the
// destination already exists. The engine commits a remote task's
// attempt-unique temp output into its final part-file name with it.
func (fs *FileSystem) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[oldPath]
	if !ok {
		return fmt.Errorf("dfs: rename %s: no such file", oldPath)
	}
	if _, exists := fs.files[newPath]; exists {
		return fmt.Errorf("dfs: rename to %s: already exists", newPath)
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = meta
	return nil
}
