package privacy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gepeto"
)

func TestMeasurePredictabilityPeriodic(t *testing.T) {
	// A perfectly periodic sequence is maximally predictable.
	seq := make([]int, 200)
	for i := range seq {
		seq[i] = i % 3
	}
	rep, err := MeasurePredictability(seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.States != 3 {
		t.Fatalf("states = %d", rep.States)
	}
	if math.Abs(rep.RandomEntropy-math.Log2(3)) > 1e-9 {
		t.Fatalf("S_rand = %v", rep.RandomEntropy)
	}
	// Uniform frequencies: S_unc == S_rand.
	if math.Abs(rep.UncorrelatedEntropy-rep.RandomEntropy) > 0.01 {
		t.Fatalf("S_unc = %v, want ~%v", rep.UncorrelatedEntropy, rep.RandomEntropy)
	}
	// Order makes the sequence nearly deterministic.
	if rep.RealEntropy >= rep.UncorrelatedEntropy/2 {
		t.Fatalf("S_real = %v, want far below S_unc = %v", rep.RealEntropy, rep.UncorrelatedEntropy)
	}
	if rep.MaxPredictability < 0.9 {
		t.Fatalf("Pi_max = %v, want > 0.9 for a periodic sequence", rep.MaxPredictability)
	}
}

func TestMeasurePredictabilityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := make([]int, 500)
	prev := -1
	for i := range seq {
		// Random walk over 6 states without immediate repeats (visit
		// sequences never repeat a state back-to-back).
		s := rng.Intn(6)
		for s == prev {
			s = rng.Intn(6)
		}
		seq[i] = s
		prev = s
	}
	rep, err := MeasurePredictability(seq)
	if err != nil {
		t.Fatal(err)
	}
	// A random sequence has high entropy and low predictability.
	if rep.RealEntropy < 1.0 {
		t.Fatalf("S_real = %v, want high for random walk", rep.RealEntropy)
	}
	if rep.MaxPredictability > 0.75 {
		t.Fatalf("Pi_max = %v, want modest for random walk", rep.MaxPredictability)
	}
	// Entropy ordering: S_real <= S_unc <= S_rand (Song et al.).
	if rep.RealEntropy > rep.UncorrelatedEntropy+0.3 || rep.UncorrelatedEntropy > rep.RandomEntropy+1e-9 {
		t.Fatalf("entropy ordering violated: real=%v unc=%v rand=%v",
			rep.RealEntropy, rep.UncorrelatedEntropy, rep.RandomEntropy)
	}
}

func TestMeasurePredictabilityTooShort(t *testing.T) {
	if _, err := MeasurePredictability([]int{1, 2}); err == nil {
		t.Fatal("want error for short sequence")
	}
}

func TestGeneratedMobilityIsHighlyPredictable(t *testing.T) {
	// The §II claim, measured: commute-dominated mobility has
	// Pi_max well above chance — in line with Song et al.'s ~93%.
	raw, truth := genTruth(t, 3, 36_000, 91)
	_, ds := gepeto.PreprocessSequential(raw, 2.0, 1.0)
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		seq := StateSequence(tr, truth.POIs(tr.User), 50)
		rep, err := MeasurePredictability(seq)
		if err != nil {
			t.Fatalf("user %s: %v", tr.User, err)
		}
		chance := 1 / float64(rep.States)
		if rep.MaxPredictability < 0.6 {
			t.Errorf("user %s: Pi_max = %.2f, want >= 0.6", tr.User, rep.MaxPredictability)
		}
		if rep.MaxPredictability <= chance+0.1 {
			t.Errorf("user %s: Pi_max %.2f barely above chance %.2f", tr.User, rep.MaxPredictability, chance)
		}
		t.Logf("user %s: N=%d len=%d S_rand=%.2f S_unc=%.2f S_real=%.2f Pi_max=%.2f",
			tr.User, rep.States, rep.SequenceLength, rep.RandomEntropy,
			rep.UncorrelatedEntropy, rep.RealEntropy, rep.MaxPredictability)
	}
}

func TestStateSequenceCollapsesDwells(t *testing.T) {
	ds, truth := genTruth(t, 1, 8_000, 93)
	tr := &ds.Trails[0]
	seq := StateSequence(tr, truth.POIs(tr.User), 50)
	if len(seq) < 10 {
		t.Fatalf("sequence too short: %d", len(seq))
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			t.Fatal("consecutive duplicate states not collapsed")
		}
	}
}
