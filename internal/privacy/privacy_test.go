package privacy

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/trace"
)

// attackPipeline runs sample → preprocess → DJ-Cluster → POI
// extraction sequentially over a dataset.
func attackPipeline(t *testing.T, ds *trace.Dataset) []POI {
	t.Helper()
	sampled := gepeto.SampleSequential(ds, time.Minute, gepeto.SampleUpperLimit)
	_, pre := gepeto.PreprocessSequential(sampled, 2.0, 1.0)
	res := gepeto.DJClusterSequential(pre, gepeto.DefaultDJClusterOptions())
	pois, err := ExtractPOIs(res, TraceTimes(pre))
	if err != nil {
		t.Fatal(err)
	}
	return pois
}

func genTruth(t *testing.T, users, traces int, seed int64) (*trace.Dataset, *geolife.GroundTruth) {
	t.Helper()
	return geolife.GenerateWithTruth(geolife.Config{Users: users, TotalTraces: traces, Seed: seed})
}

func TestPOIAttackRecoversHomeAndWork(t *testing.T) {
	ds, truth := genTruth(t, 4, 40_000, 31)
	pois := attackPipeline(t, ds)
	rep := EvaluatePOIAttack(pois, truth, 50)
	if rep.Users != 4 {
		t.Fatalf("attacked %d users, want 4", rep.Users)
	}
	if rep.HomeRecovered < 3 {
		t.Errorf("home recovered for %d/4 users", rep.HomeRecovered)
	}
	if rep.WorkRecovered < 3 {
		t.Errorf("work recovered for %d/4 users", rep.WorkRecovered)
	}
	if rep.POIPrecision < 0.8 {
		t.Errorf("POI precision %.2f < 0.8", rep.POIPrecision)
	}
	if rep.POIRecall < 0.5 {
		t.Errorf("POI recall %.2f < 0.5", rep.POIRecall)
	}
	if rep.HomeRecovered > 0 && (rep.MeanHomeErrorMeters <= 0 || rep.MeanHomeErrorMeters > 50) {
		t.Errorf("mean home error %.1fm", rep.MeanHomeErrorMeters)
	}
}

func TestExtractPOIsLabeling(t *testing.T) {
	// Build a synthetic cluster result directly: one cluster visited
	// at night, one during weekday working hours.
	night := time.Date(2008, 4, 7, 23, 30, 0, 0, time.UTC) // Monday night
	day := time.Date(2008, 4, 8, 10, 0, 0, 0, time.UTC)    // Tuesday morning
	times := map[string]time.Time{}
	var homeMembers, workMembers []string
	for i := 0; i < 5; i++ {
		hm := trace.Trace{User: "u", Time: night.Add(time.Duration(i) * time.Minute)}
		wm := trace.Trace{User: "u", Time: day.Add(time.Duration(i) * time.Minute)}
		homeMembers = append(homeMembers, gepeto.TraceID(hm))
		workMembers = append(workMembers, gepeto.TraceID(wm))
		times[gepeto.TraceID(hm)] = hm.Time
		times[gepeto.TraceID(wm)] = wm.Time
	}
	res := &gepeto.DJClusterResult{Clusters: []gepeto.Cluster{
		{ID: "c0", User: "u", Members: homeMembers, Centroid: geo.Point{Lat: 39.9, Lon: 116.4}},
		{ID: "c1", User: "u", Members: workMembers, Centroid: geo.Point{Lat: 39.95, Lon: 116.45}},
	}}
	pois, err := ExtractPOIs(res, times)
	if err != nil {
		t.Fatal(err)
	}
	if len(pois) != 2 {
		t.Fatalf("%d POIs", len(pois))
	}
	labels := map[POILabel]geo.Point{}
	for _, p := range pois {
		labels[p.Label] = p.Center
	}
	if labels[LabelHome] != (geo.Point{Lat: 39.9, Lon: 116.4}) {
		t.Errorf("home mislabeled: %v", labels)
	}
	if labels[LabelWork] != (geo.Point{Lat: 39.95, Lon: 116.45}) {
		t.Errorf("work mislabeled: %v", labels)
	}
}

func TestExtractPOIsMissingTimestamp(t *testing.T) {
	res := &gepeto.DJClusterResult{Clusters: []gepeto.Cluster{
		{ID: "c0", User: "u", Members: []string{"u:12345"}},
	}}
	if _, err := ExtractPOIs(res, map[string]time.Time{}); err == nil {
		t.Fatal("want error for missing timestamp")
	}
}

func TestBuildMMCBasics(t *testing.T) {
	// Trail alternating between two POIs A and B.
	a := geo.Point{Lat: 39.90, Lon: 116.40}
	b := geo.Point{Lat: 39.95, Lon: 116.45}
	tr := &trace.Trail{User: "u"}
	ts := time.Unix(1_200_000_000, 0)
	for i := 0; i < 10; i++ {
		p := a
		if i%2 == 1 {
			p = b
		}
		for j := 0; j < 3; j++ {
			tr.Traces = append(tr.Traces, trace.Trace{User: "u", Point: geo.Destination(p, float64(j*120), 5), Time: ts})
			ts = ts.Add(time.Minute)
		}
	}
	m, err := BuildMMC(tr, []geo.Point{a, b}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if m.Visits[0] != 15 || m.Visits[1] != 15 {
		t.Fatalf("visits = %v", m.Visits)
	}
	// Perfect alternation: P(A->B) = P(B->A) = 1.
	if m.Trans[0][1] != 1 || m.Trans[1][0] != 1 {
		t.Fatalf("transitions = %v", m.Trans)
	}
	next, p, err := m.PredictNext(0)
	if err != nil || next != 1 || p != 1 {
		t.Fatalf("PredictNext(0) = %d, %v, %v", next, p, err)
	}
	if _, _, err := m.PredictNext(99); err == nil {
		t.Fatal("out-of-range state should error")
	}
	pi := m.StationaryDistribution()
	if math.Abs(pi[0]-0.5) > 0.01 || math.Abs(pi[1]-0.5) > 0.01 {
		t.Fatalf("stationary = %v, want ~[0.5 0.5]", pi)
	}
}

func TestBuildMMCNoPOIs(t *testing.T) {
	if _, err := BuildMMC(&trace.Trail{}, nil, 50); err == nil {
		t.Fatal("want error for empty POI set")
	}
}

func TestMMCSelfDistanceSmall(t *testing.T) {
	ds, truth := genTruth(t, 2, 16_000, 33)
	for _, tr := range ds.Trails {
		m1, err := BuildMMC(&tr, truth.POIs(tr.User), 50)
		if err != nil {
			t.Fatal(err)
		}
		if d := m1.Distance(m1); d > 0.05 {
			t.Errorf("self-distance %.3f > 0.05", d)
		}
	}
	// Distance between different users must dominate self-distance.
	m0, _ := BuildMMC(&ds.Trails[0], truth.POIs(ds.Trails[0].User), 50)
	m1, _ := BuildMMC(&ds.Trails[1], truth.POIs(ds.Trails[1].User), 50)
	if d := m0.Distance(m1); d < 0.5 {
		t.Errorf("cross-user distance %.3f < 0.5", d)
	}
}

func TestLinkingAttackDeanonymizes(t *testing.T) {
	// Split each user's trail in half: first half is the "known"
	// dataset, second half the pseudonymised release. The MMC linking
	// attack must re-identify most users (the §VIII attack).
	ds, truth := genTruth(t, 5, 60_000, 35)
	var known, anon []*MMC
	truthMap := map[string]string{}
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		half := len(tr.Traces) / 2
		first := &trace.Trail{User: tr.User, Traces: tr.Traces[:half]}
		second := &trace.Trail{User: "anon-" + tr.User, Traces: tr.Traces[half:]}
		pois := truth.POIs(tr.User)
		k, err := BuildMMC(first, pois, 50)
		if err != nil {
			t.Fatal(err)
		}
		// The adversary does not know the anon user's POIs a priori;
		// model them with the union of all users' POIs.
		var allPOIs []geo.Point
		for _, u := range ds.Trails {
			allPOIs = append(allPOIs, truth.POIs(u.User)...)
		}
		a, err := BuildMMC(second, allPOIs, 50)
		if err != nil {
			t.Fatal(err)
		}
		known = append(known, k)
		anon = append(anon, a)
		truthMap[a.User] = tr.User
	}
	res := LinkByMMC(known, anon, truthMap)
	if res.Total != 5 {
		t.Fatalf("attacked %d trails", res.Total)
	}
	if res.Accuracy() < 0.8 {
		t.Errorf("linking accuracy %.2f < 0.8 (matches: %v)", res.Accuracy(), res.Matches)
	}
}

func TestGaussianMaskDistortsButPreservesStructure(t *testing.T) {
	ds, _ := genTruth(t, 2, 5_000, 37)
	mask := GaussianMask{SigmaMeters: 100, Seed: 1}
	out := mask.Sanitize(ds)
	if out.NumTraces() != ds.NumTraces() {
		t.Fatal("mask must not drop traces")
	}
	rep := MeasureUtility(ds, out)
	if rep.Retention != 1 {
		t.Fatalf("retention = %v", rep.Retention)
	}
	if rep.MeanDistortionMeters < 40 || rep.MeanDistortionMeters > 200 {
		t.Fatalf("mean distortion %.1fm, want ~80m", rep.MeanDistortionMeters)
	}
	// Determinism.
	out2 := mask.Sanitize(ds)
	if out2.Trails[0].Traces[0].Point != out.Trails[0].Traces[0].Point {
		t.Fatal("same seed must give same mask")
	}
}

func TestSpatialCloakingSnapsToGrid(t *testing.T) {
	ds, _ := genTruth(t, 1, 2_000, 39)
	cloak := SpatialCloaking{CellMeters: 500}
	out := cloak.Sanitize(ds)
	// Distinct coordinates collapse drastically.
	uniq := map[geo.Point]bool{}
	for _, tr := range out.Trails {
		for _, tc := range tr.Traces {
			uniq[tc.Point] = true
		}
	}
	if len(uniq) > 50 {
		t.Fatalf("%d unique cloaked positions, want few", len(uniq))
	}
	rep := MeasureUtility(ds, out)
	if rep.MeanDistortionMeters <= 0 || rep.MeanDistortionMeters > 500 {
		t.Fatalf("distortion %.1f", rep.MeanDistortionMeters)
	}
	// Same input point always snaps to the same cell.
	p := geo.Point{Lat: 39.9042, Lon: 116.4074}
	if snapToGrid(p, 500) != snapToGrid(p, 500) {
		t.Fatal("snap not deterministic")
	}
}

func TestTemporalAggregation(t *testing.T) {
	ds, _ := genTruth(t, 2, 5_000, 41)
	agg := TemporalAggregation{Window: time.Minute}
	out := agg.Sanitize(ds)
	if out.NumTraces() >= ds.NumTraces()/5 {
		t.Fatalf("aggregation kept %d of %d traces; want strong reduction", out.NumTraces(), ds.NumTraces())
	}
	// One output trace per occupied (user, window).
	for _, tr := range out.Trails {
		seen := map[int64]bool{}
		for _, tc := range tr.Traces {
			w := tc.Time.Unix() / 60
			if seen[w] {
				t.Fatal("two aggregates in one window")
			}
			seen[w] = true
		}
	}
}

func TestMixZonesSuppressAndRepseudonymize(t *testing.T) {
	ds, truth := genTruth(t, 1, 8_000, 43)
	user := ds.Trails[0].User
	// Put a mix zone at the user's home: home visits are suppressed
	// and each pass through splits the trail under a new pseudonym.
	mz := MixZones{Centers: []geo.Point{truth.Homes[user]}, RadiusMeters: 100}
	out := mz.Sanitize(ds)
	if len(out.Trails) <= 1 {
		t.Fatalf("expected multiple pseudonym epochs, got %d trails", len(out.Trails))
	}
	for _, tr := range out.Trails {
		for _, tc := range tr.Traces {
			if geo.Haversine(tc.Point, truth.Homes[user]) <= 100 {
				t.Fatal("trace inside mix zone survived")
			}
			if tc.User == user {
				t.Fatal("raw identity leaked")
			}
		}
	}
	rep := MeasureUtility(ds, out)
	if rep.Retention >= 1 {
		t.Fatal("mix zones must suppress some traces")
	}
}

func TestPseudonymize(t *testing.T) {
	ds, _ := genTruth(t, 3, 900, 45)
	anon, mapping := Pseudonymize(ds, 7)
	if len(mapping) != 3 {
		t.Fatalf("mapping size %d", len(mapping))
	}
	users := map[string]bool{}
	for _, tr := range anon.Trails {
		users[tr.User] = true
		if mapping[tr.User] == "" {
			t.Fatalf("pseudonym %s unmapped", tr.User)
		}
		for _, tc := range tr.Traces {
			if tc.User != tr.User {
				t.Fatal("trace user not pseudonymised")
			}
		}
	}
	if len(users) != 3 {
		t.Fatalf("%d distinct pseudonyms", len(users))
	}
}

func TestSanitizationDegradesPOIAttack(t *testing.T) {
	// The core GEPETO experiment: attack the raw dataset, sanitize,
	// attack again, and verify privacy improved (lower recovery).
	ds, truth := genTruth(t, 3, 30_000, 47)

	before := PrivacyFromAttack(EvaluatePOIAttack(attackPipeline(t, ds), truth, 50))
	if before.HomeRecoveryRate < 0.6 {
		t.Fatalf("attack on raw data too weak (%.2f) for the experiment to be meaningful", before.HomeRecoveryRate)
	}
	// Gaussian masking degrades POI recall monotonically with the
	// noise scale. Home recovery is more robust: the noise is
	// zero-mean, so centroids of surviving clusters stay near the true
	// home — a known weakness of noise masking that GEPETO's
	// attack-then-measure loop exposes.
	prevRecall := before.POIRecall + 0.01
	for _, sigma := range []float64{50, 100, 300} {
		masked := GaussianMask{SigmaMeters: sigma, Seed: 2}.Sanitize(ds)
		rep := PrivacyFromAttack(EvaluatePOIAttack(attackPipeline(t, masked), truth, 50))
		if rep.POIRecall >= prevRecall {
			t.Errorf("sigma=%.0fm: POI recall %.2f did not drop below %.2f", sigma, rep.POIRecall, prevRecall)
		}
		prevRecall = rep.POIRecall
	}
	// Spatial cloaking defeats the attack outright: clusters form at
	// cell centers, far from the true POIs.
	cloaked := SpatialCloaking{CellMeters: 200}.Sanitize(ds)
	rep := PrivacyFromAttack(EvaluatePOIAttack(attackPipeline(t, cloaked), truth, 50))
	if rep.HomeRecoveryRate > 0.34 {
		t.Errorf("200m cloaking left home recovery at %.2f", rep.HomeRecoveryRate)
	}
	if rep.POIRecall > 0.2 {
		t.Errorf("200m cloaking left POI recall at %.2f", rep.POIRecall)
	}
}

func TestMeasureUtilityEmpty(t *testing.T) {
	rep := MeasureUtility(&trace.Dataset{}, &trace.Dataset{})
	if rep.Retention != 0 || rep.MeanDistortionMeters != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}

func TestAnonymitySetSize(t *testing.T) {
	ds, truth := genTruth(t, 4, 32_000, 49)
	var known, anon []*MMC
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		half := len(tr.Traces) / 2
		pois := truth.POIs(tr.User)
		k, _ := BuildMMC(&trace.Trail{User: tr.User, Traces: tr.Traces[:half]}, pois, 50)
		a, _ := BuildMMC(&trace.Trail{User: "anon-" + tr.User, Traces: tr.Traces[half:]}, pois, 50)
		known = append(known, k)
		anon = append(anon, a)
	}
	size := AnonymitySetSize(known, anon, 1.05)
	// Distinct users' POIs rarely collide: sets should be small.
	if size < 1 || size > 2 {
		t.Errorf("anonymity set size %.2f, want in [1,2]", size)
	}
	if AnonymitySetSize(nil, anon, 2) != 0 {
		t.Error("empty known set should give 0")
	}
}

func TestSanitizerNames(t *testing.T) {
	cases := []struct {
		s    Sanitizer
		want string
	}{
		{GaussianMask{SigmaMeters: 100}, "gaussian-100m"},
		{SpatialCloaking{CellMeters: 200}, "cloak-200m"},
		{TemporalAggregation{Window: time.Minute}, "aggregate-1m0s"},
		{MixZones{Centers: nil, RadiusMeters: 150}, "mixzones-0-150m"},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}
