package privacy

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/geo"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
	"repro/internal/trace"
)

// Sanitizer transforms a dataset to reduce its privacy risk. The
// paper's conclusion (§VIII) lists the mechanisms GEPETO integrates:
// geographical masks that add random noise, aggregation of several
// traces into a single coordinate, spatial cloaking, and mix zones.
type Sanitizer interface {
	// Name identifies the mechanism (for reports and CLI flags).
	Name() string
	// Sanitize returns a sanitized copy of the dataset.
	Sanitize(ds *trace.Dataset) *trace.Dataset
}

// GaussianMask perturbs every coordinate with Gaussian noise — the
// "geographical masks that modify the spatial coordinate of a mobility
// trace by adding some random noise" of §VIII.
type GaussianMask struct {
	// SigmaMeters is the noise scale.
	SigmaMeters float64
	// Seed makes the perturbation reproducible.
	Seed int64
}

// Name implements Sanitizer.
func (g GaussianMask) Name() string { return fmt.Sprintf("gaussian-%.0fm", g.SigmaMeters) }

// Sanitize implements Sanitizer.
func (g GaussianMask) Sanitize(ds *trace.Dataset) *trace.Dataset {
	rng := rand.New(rand.NewSource(g.Seed))
	out := &trace.Dataset{Trails: make([]trace.Trail, len(ds.Trails))}
	for i, tr := range ds.Trails {
		nt := trace.Trail{User: tr.User, Traces: make([]trace.Trace, len(tr.Traces))}
		for j, t := range tr.Traces {
			d := math.Abs(rng.NormFloat64()) * g.SigmaMeters
			t.Point = geo.Destination(t.Point, rng.Float64()*360, d)
			nt.Traces[j] = t
		}
		out.Trails[i] = nt
	}
	return out
}

// SpatialCloaking generalises coordinates to the center of a grid
// cell, a classic k-anonymity-style cloaking technique (Gruteser &
// Grunwald, referenced in §VIII).
type SpatialCloaking struct {
	// CellMeters is the (approximate) grid cell edge length.
	CellMeters float64
}

// Name implements Sanitizer.
func (s SpatialCloaking) Name() string { return fmt.Sprintf("cloak-%.0fm", s.CellMeters) }

// Sanitize implements Sanitizer.
func (s SpatialCloaking) Sanitize(ds *trace.Dataset) *trace.Dataset {
	out := &trace.Dataset{Trails: make([]trace.Trail, len(ds.Trails))}
	for i, tr := range ds.Trails {
		nt := trace.Trail{User: tr.User, Traces: make([]trace.Trace, len(tr.Traces))}
		for j, t := range tr.Traces {
			t.Point = snapToGrid(t.Point, s.CellMeters)
			nt.Traces[j] = t
		}
		out.Trails[i] = nt
	}
	return out
}

// snapToGrid maps p to the center of its grid cell of the given edge
// length. The longitude cell width is derived from the snapped
// latitude row (not the raw latitude) so every point of a cell snaps
// to exactly the same center.
func snapToGrid(p geo.Point, cellMeters float64) geo.Point {
	dLat := cellMeters / geo.EarthRadiusMeters * 180 / math.Pi
	latSnapped := (math.Floor(p.Lat/dLat) + 0.5) * dLat
	cos := math.Cos(latSnapped * math.Pi / 180)
	if cos < 1e-9 {
		cos = 1e-9
	}
	dLon := dLat / cos
	return geo.Point{
		Lat: latSnapped,
		Lon: (math.Floor(p.Lon/dLon) + 0.5) * dLon,
	}
}

// TemporalAggregation merges all traces inside a time window into one
// trace at their mean coordinate — "aggregate several mobility traces
// into a single spatial coordinate" (§VIII). Unlike down-sampling
// (which picks a representative), aggregation outputs the centroid.
type TemporalAggregation struct {
	// Window is the aggregation window.
	Window time.Duration
}

// Name implements Sanitizer.
func (a TemporalAggregation) Name() string {
	return fmt.Sprintf("aggregate-%s", a.Window)
}

// Sanitize implements Sanitizer.
func (a TemporalAggregation) Sanitize(ds *trace.Dataset) *trace.Dataset {
	w := int64(a.Window.Seconds())
	if w <= 0 {
		w = 60
	}
	out := &trace.Dataset{}
	for _, tr := range ds.Trails {
		nt := trace.Trail{User: tr.User}
		flush := func(lat, lon float64, n int, reprTime time.Time, alt float64) {
			if n == 0 {
				return
			}
			nt.Traces = append(nt.Traces, trace.Trace{
				User:         tr.User,
				Point:        geo.Point{Lat: lat / float64(n), Lon: lon / float64(n)},
				Time:         reprTime,
				AltitudeFeet: alt,
			})
		}
		var lat, lon, alt float64
		var n int
		cur := int64(math.MinInt64)
		var reprTime time.Time
		for _, t := range tr.Traces {
			win := t.Time.Unix() / w
			if win != cur {
				flush(lat, lon, n, reprTime, alt)
				cur, lat, lon, alt, n = win, 0, 0, 0, 0
				reprTime = t.Time
			}
			lat += t.Point.Lat
			lon += t.Point.Lon
			alt = t.AltitudeFeet
			n++
		}
		flush(lat, lon, n, reprTime, alt)
		out.Trails = append(out.Trails, nt)
	}
	return out
}

// MixZones suppresses all traces inside the given zones and changes
// the user's pseudonym after each zone crossing (Beresford & Stajano,
// referenced in §VIII): an adversary can no longer follow one
// pseudonym through a zone.
type MixZones struct {
	// Centers are the mix-zone centers.
	Centers []geo.Point
	// RadiusMeters is each zone's radius.
	RadiusMeters float64
}

// Name implements Sanitizer.
func (m MixZones) Name() string {
	return fmt.Sprintf("mixzones-%d-%.0fm", len(m.Centers), m.RadiusMeters)
}

// Sanitize implements Sanitizer.
func (m MixZones) Sanitize(ds *trace.Dataset) *trace.Dataset {
	out := &trace.Dataset{}
	for _, tr := range ds.Trails {
		epoch := 0
		inside := false
		cur := trace.Trail{User: pseudonym(tr.User, 0)}
		for _, t := range tr.Traces {
			inZone := false
			for _, c := range m.Centers {
				if geo.Haversine(t.Point, c) <= m.RadiusMeters {
					inZone = true
					break
				}
			}
			if inZone {
				// Suppress the trace; on exit the pseudonym changes.
				inside = true
				continue
			}
			if inside {
				inside = false
				epoch++
				if len(cur.Traces) > 0 {
					out.Trails = append(out.Trails, cur)
				}
				cur = trace.Trail{User: pseudonym(tr.User, epoch)}
			}
			t.User = cur.User
			cur.Traces = append(cur.Traces, t)
		}
		if len(cur.Traces) > 0 {
			out.Trails = append(out.Trails, cur)
		}
	}
	return out
}

func pseudonym(user string, epoch int) string {
	return user + "~" + strconv.Itoa(epoch)
}

// Pseudonymize replaces user identifiers with opaque pseudonyms
// ("a pseudonym is generally used as a first protection mechanism",
// §II). It returns the sanitized dataset and the pseudonym → user
// mapping (the secret an adversary tries to re-learn).
func Pseudonymize(ds *trace.Dataset, seed int64) (*trace.Dataset, map[string]string) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(ds.Trails))
	out := &trace.Dataset{Trails: make([]trace.Trail, len(ds.Trails))}
	mapping := make(map[string]string, len(ds.Trails))
	for i, tr := range ds.Trails {
		pseud := fmt.Sprintf("anon-%03d", perm[i])
		mapping[pseud] = tr.User
		nt := trace.Trail{User: pseud, Traces: make([]trace.Trace, len(tr.Traces))}
		for j, t := range tr.Traces {
			t.User = pseud
			nt.Traces[j] = t
		}
		out.Trails[i] = nt
	}
	return out, mapping
}

// --- MapReduced sanitization (the §VIII extension, built as map-only
// jobs like sampling). ---

const (
	confMaskSigma = "sanitize.gaussian.sigma"
	confMaskSeed  = "sanitize.seed"
	confCloakCell = "sanitize.cloak.cell"
)

// sanitizeJob is the typed shape of the map-only sanitizers: trace
// records (text or binary) in, binary trace records keyed by user out.
type sanitizeJob = mapreduce.TypedJob[string, trace.Trace, string, trace.Trace, string, trace.Trace]

// GaussianMaskJob builds a map-only job applying GaussianMask to
// record files — the MapReduced geographical mask of §VIII.
func GaussianMaskJob(name string, inputPaths []string, outputPath string, sigmaMeters float64, seed int64) *mapreduce.Job {
	tj := &sanitizeJob{
		Name:       name,
		InputPaths: inputPaths,
		OutputPath: outputPath,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, string, trace.Trace] {
			return &maskMapper{}
		},
		InputKey:   recordio.RawString{},
		InputValue: recordio.TraceValue{},
		MapKey:     recordio.RawString{},
		MapValue:   recordio.TraceValue{},
		Conf: map[string]string{
			confMaskSigma: strconv.FormatFloat(sigmaMeters, 'f', -1, 64),
			confMaskSeed:  strconv.FormatInt(seed, 10),
		},
	}
	return tj.Build()
}

type maskMapper struct {
	mapreduce.TypedMapperBase[string, trace.Trace]
	sigma float64
	rng   *rand.Rand
}

func (m *maskMapper) Setup(ctx *mapreduce.TaskContext) error {
	var err error
	m.sigma, err = strconv.ParseFloat(ctx.ConfDefault(confMaskSigma, "50"), 64)
	if err != nil || m.sigma < 0 {
		return fmt.Errorf("maskMapper: bad sigma: %v", err)
	}
	seed, err := strconv.ParseInt(ctx.ConfDefault(confMaskSeed, "0"), 10, 64)
	if err != nil {
		return fmt.Errorf("maskMapper: bad seed: %v", err)
	}
	// Derive a per-task stream so parallel tasks perturb independently
	// yet deterministically.
	m.rng = rand.New(rand.NewSource(seed ^ int64(hashID(ctx.TaskID))))
	return nil
}

func (m *maskMapper) Map(_ *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[string, trace.Trace]) error {
	d := math.Abs(m.rng.NormFloat64()) * m.sigma
	t.Point = geo.Destination(t.Point, m.rng.Float64()*360, d)
	emit(t.User, t)
	return nil
}

// CloakingJob builds a map-only job applying SpatialCloaking to record
// files.
func CloakingJob(name string, inputPaths []string, outputPath string, cellMeters float64) *mapreduce.Job {
	tj := &sanitizeJob{
		Name:       name,
		InputPaths: inputPaths,
		OutputPath: outputPath,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, string, trace.Trace] {
			return &cloakMapper{}
		},
		InputKey:   recordio.RawString{},
		InputValue: recordio.TraceValue{},
		MapKey:     recordio.RawString{},
		MapValue:   recordio.TraceValue{},
		Conf:       map[string]string{confCloakCell: strconv.FormatFloat(cellMeters, 'f', -1, 64)},
	}
	return tj.Build()
}

type cloakMapper struct {
	mapreduce.TypedMapperBase[string, trace.Trace]
	cell float64
}

func (m *cloakMapper) Setup(ctx *mapreduce.TaskContext) error {
	var err error
	m.cell, err = strconv.ParseFloat(ctx.ConfDefault(confCloakCell, "200"), 64)
	if err != nil || m.cell <= 0 {
		return fmt.Errorf("cloakMapper: bad cell: %v", err)
	}
	return nil
}

func (m *cloakMapper) Map(_ *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[string, trace.Trace]) error {
	t.Point = snapToGrid(t.Point, m.cell)
	emit(t.User, t)
	return nil
}

func hashID(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
