package privacy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
	"repro/internal/trace"
)

// The §VIII extension, realised: "we want to develop algorithms for
// learning a mobility model out of the mobility traces of an
// individual, such as Mobility Markov Chains", inside the MapReduced
// framework. One job builds every user's MMC in parallel: mappers
// route traces to their user's reducer, and each reducer sorts its
// user's traces chronologically, attaches them to the user's POIs
// (shipped via the distributed cache) and emits the serialized chain.

const (
	cachePOIs       = "user-pois"
	confAttachRadiu = "mmc.attach.radius"
)

// MarshalMMC renders a chain on one line:
// "user|lat,lon;lat,lon|v0,v1|p00,p01;p10,p11".
func MarshalMMC(m *MMC) string {
	states := make([]string, len(m.States))
	for i, s := range m.States {
		states[i] = fmt.Sprintf("%.6f,%.6f", s.Lat, s.Lon)
	}
	visits := make([]string, len(m.Visits))
	for i, v := range m.Visits {
		visits[i] = strconv.Itoa(v)
	}
	rows := make([]string, len(m.Trans))
	for i, row := range m.Trans {
		cells := make([]string, len(row))
		for j, p := range row {
			cells[j] = strconv.FormatFloat(p, 'g', 8, 64)
		}
		rows[i] = strings.Join(cells, ",")
	}
	return m.User + "|" + strings.Join(states, ";") + "|" +
		strings.Join(visits, ",") + "|" + strings.Join(rows, ";")
}

// UnmarshalMMC parses MarshalMMC's output.
func UnmarshalMMC(s string) (*MMC, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 4 {
		return nil, fmt.Errorf("privacy: MMC has %d sections, want 4: %q", len(parts), s)
	}
	m := &MMC{User: parts[0]}
	if parts[1] == "" {
		// A chain with no states (user had no attachable traces).
		return m, nil
	}
	for _, f := range strings.Split(parts[1], ";") {
		latS, lonS, ok := strings.Cut(f, ",")
		if !ok {
			return nil, fmt.Errorf("privacy: bad MMC state %q", f)
		}
		lat, err := strconv.ParseFloat(latS, 64)
		if err != nil {
			return nil, err
		}
		lon, err := strconv.ParseFloat(lonS, 64)
		if err != nil {
			return nil, err
		}
		m.States = append(m.States, geo.Point{Lat: lat, Lon: lon})
	}
	for _, f := range strings.Split(parts[2], ",") {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("privacy: bad MMC visit count %q", f)
		}
		m.Visits = append(m.Visits, v)
	}
	for _, rowS := range strings.Split(parts[3], ";") {
		var row []float64
		for _, cell := range strings.Split(rowS, ",") {
			p, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("privacy: bad MMC transition %q", cell)
			}
			row = append(row, p)
		}
		m.Trans = append(m.Trans, row)
	}
	n := len(m.States)
	if len(m.Visits) != n || len(m.Trans) != n {
		return nil, fmt.Errorf("privacy: inconsistent MMC dimensions %d/%d/%d", n, len(m.Visits), len(m.Trans))
	}
	for _, row := range m.Trans {
		if len(row) != n {
			return nil, fmt.Errorf("privacy: ragged MMC transition matrix")
		}
	}
	return m, nil
}

// MarshalUserPOIs renders the distributed-cache blob mapping each user
// to its POI centers.
func MarshalUserPOIs(pois map[string][]geo.Point) []byte {
	users := make([]string, 0, len(pois))
	for u := range pois {
		users = append(users, u)
	}
	sort.Strings(users)
	var sb strings.Builder
	for _, u := range users {
		pts := make([]string, len(pois[u]))
		for i, p := range pois[u] {
			pts[i] = fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
		}
		sb.WriteString(u)
		sb.WriteByte('\t')
		sb.WriteString(strings.Join(pts, ";"))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// UnmarshalUserPOIs parses MarshalUserPOIs's output.
func UnmarshalUserPOIs(blob []byte) (map[string][]geo.Point, error) {
	out := make(map[string][]geo.Point)
	for _, line := range strings.Split(strings.TrimSpace(string(blob)), "\n") {
		if line == "" {
			continue
		}
		user, rest, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("privacy: bad POI cache line %q", line)
		}
		for _, f := range strings.Split(rest, ";") {
			latS, lonS, ok := strings.Cut(f, ",")
			if !ok {
				return nil, fmt.Errorf("privacy: bad POI %q", f)
			}
			lat, err := strconv.ParseFloat(latS, 64)
			if err != nil {
				return nil, err
			}
			lon, err := strconv.ParseFloat(lonS, 64)
			if err != nil {
				return nil, err
			}
			out[user] = append(out[user], geo.Point{Lat: lat, Lon: lon})
		}
	}
	return out, nil
}

// BuildMMCsMR learns every user's Mobility Markov Chain in one
// MapReduce job. userPOIs (typically DJ-Cluster centroids per user)
// ride in the distributed cache; reducers key on the user so each
// chain is built by a single task from all of that user's traces.
func BuildMMCsMR(e *mapreduce.Engine, inputPaths []string, outputPath string, userPOIs map[string][]geo.Point, attachRadius float64) (map[string]*MMC, *mapreduce.Result, error) {
	if attachRadius <= 0 {
		attachRadius = 50
	}
	tj := &mmcBuildJob{
		Name:       "mmc-build",
		InputPaths: inputPaths,
		OutputPath: outputPath,
		Mapper: func() mapreduce.TypedMapper[string, trace.Trace, string, recordio.TimedPoint] {
			return mmcRouteMapper{}
		},
		Reducer: func() mapreduce.TypedReducer[string, recordio.TimedPoint, string, string] {
			return &mmcBuildReducer{}
		},
		InputKey:    recordio.RawString{},
		InputValue:  recordio.TraceValue{},
		MapKey:      recordio.RawString{},
		MapValue:    recordio.TimedPointCodec{},
		OutputKey:   recordio.RawString{},
		OutputValue: recordio.RawString{},
		NumReducers: e.Cluster().TotalSlots(),
		Conf: map[string]string{
			confAttachRadiu: strconv.FormatFloat(attachRadius, 'f', -1, 64),
		},
		Cache: map[string][]byte{cachePOIs: MarshalUserPOIs(userPOIs)},
	}
	res, err := e.Run(tj.Build())
	if err != nil {
		return nil, nil, err
	}
	kvs, err := e.ReadOutput(outputPath)
	if err != nil {
		return nil, res, err
	}
	out := make(map[string]*MMC, len(kvs))
	for _, kv := range kvs {
		m, err := UnmarshalMMC(kv.Value)
		if err != nil {
			return nil, res, err
		}
		out[m.User] = m
	}
	return out, res, nil
}

// mmcBuildJob is the typed shape of the chain builder: trace records
// in, (user, timestamped position) intermediates, one (user,
// serialized chain) record per user out.
type mmcBuildJob = mapreduce.TypedJob[string, trace.Trace, string, recordio.TimedPoint, string, string]

// mmcRouteMapper routes each trace to its user's reducer as a
// timestamped position.
type mmcRouteMapper struct {
	mapreduce.TypedMapperBase[string, recordio.TimedPoint]
}

func (mmcRouteMapper) Map(_ *mapreduce.TaskContext, _ string, t trace.Trace, emit mapreduce.TypedEmit[string, recordio.TimedPoint]) error {
	emit(t.User, recordio.TimedPoint{Unix: t.Time.Unix(), P: t.Point})
	return nil
}

// mmcBuildReducer rebuilds one user's chronological trail and its MMC.
type mmcBuildReducer struct {
	mapreduce.TypedReducerBase[string, string]
	pois   map[string][]geo.Point
	radius float64
}

func (r *mmcBuildReducer) Setup(ctx *mapreduce.TaskContext) error {
	blob, ok := ctx.CacheFile(cachePOIs)
	if !ok {
		return fmt.Errorf("mmcBuildReducer: POI cache missing")
	}
	var err error
	r.pois, err = UnmarshalUserPOIs(blob)
	if err != nil {
		return err
	}
	r.radius, err = strconv.ParseFloat(ctx.ConfDefault(confAttachRadiu, "50"), 64)
	return err
}

func (r *mmcBuildReducer) Reduce(ctx *mapreduce.TaskContext, user string, values []recordio.TimedPoint, emit mapreduce.TypedEmit[string, string]) error {
	pois, ok := r.pois[user]
	if !ok || len(pois) == 0 {
		ctx.Counter("mmc", "users_without_pois").Inc(1)
		return nil
	}
	events := append([]recordio.TimedPoint(nil), values...)
	// The shuffle does not preserve temporal order: sort.
	sort.Slice(events, func(i, j int) bool { return events[i].Unix < events[j].Unix })

	// Replay the BuildMMC attachment/transition logic.
	n := len(pois)
	visits := make([]int, n)
	counts := make([][]float64, n)
	for i := range counts {
		counts[i] = make([]float64, n)
	}
	prev := -1
	for _, e := range events {
		state, best := -1, r.radius
		for i, s := range pois {
			if d := geo.Haversine(e.P, s); d <= best {
				best, state = d, i
			}
		}
		if state < 0 {
			continue
		}
		visits[state]++
		if prev >= 0 && prev != state {
			counts[prev][state]++
		}
		prev = state
	}
	m := assembleMMC(user, pois, visits, counts)
	ctx.Counter("mmc", "chains_built").Inc(1)
	emit(user, MarshalMMC(m))
	return nil
}

// assembleMMC applies the same pruning and normalisation as BuildMMC.
func assembleMMC(user string, pois []geo.Point, visits []int, counts [][]float64) *MMC {
	keep := make([]int, 0, len(pois))
	for i, v := range visits {
		if v > 0 {
			keep = append(keep, i)
		}
	}
	m := &MMC{
		User:   user,
		States: make([]geo.Point, len(keep)),
		Visits: make([]int, len(keep)),
		Trans:  make([][]float64, len(keep)),
	}
	for ni, oi := range keep {
		m.States[ni] = pois[oi]
		m.Visits[ni] = visits[oi]
		m.Trans[ni] = make([]float64, len(keep))
		var rowSum float64
		for _, oj := range keep {
			rowSum += counts[oi][oj]
		}
		if rowSum == 0 {
			m.Trans[ni][ni] = 1
			continue
		}
		for nj, oj := range keep {
			m.Trans[ni][nj] = counts[oi][oj] / rowSum
		}
	}
	return m
}
