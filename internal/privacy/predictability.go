package privacy

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trace"
)

// PredictabilityReport carries the entropy measures of Song et al.,
// "Limits of predictability in human mobility" (Science 2010), which
// §II cites for "our movements are easily predictable by nature". The
// entropies are in bits per symbol over the user's POI-visit sequence.
type PredictabilityReport struct {
	// States is the number of distinct visited states (N).
	States int
	// SequenceLength is the length of the analysed visit sequence.
	SequenceLength int
	// RandomEntropy is S_rand = log2(N): a user visiting every state
	// uniformly at random.
	RandomEntropy float64
	// UncorrelatedEntropy is S_unc = -sum p_i log2 p_i: accounts for
	// visit frequencies but not order.
	UncorrelatedEntropy float64
	// RealEntropy is the Lempel-Ziv estimate of the true entropy
	// rate, accounting for temporal order.
	RealEntropy float64
	// MaxPredictability is Pi_max: the Fano-bound probability that an
	// ideal predictor names the next state correctly.
	MaxPredictability float64
}

// StateSequence reduces a trail to its sequence of POI visits:
// consecutive traces attached to the same state collapse to one
// symbol, exactly the sequence an MMC models.
func StateSequence(tr *trace.Trail, pois []geo.Point, attachRadius float64) []int {
	var seq []int
	prev := -1
	for _, t := range tr.Traces {
		state, best := -1, attachRadius
		for i, p := range pois {
			if d := geo.Haversine(t.Point, p); d <= best {
				best, state = d, i
			}
		}
		if state < 0 || state == prev {
			continue
		}
		seq = append(seq, state)
		prev = state
	}
	return seq
}

// MeasurePredictability computes the Song et al. entropy measures over
// a state sequence.
func MeasurePredictability(seq []int) (PredictabilityReport, error) {
	if len(seq) < 4 {
		return PredictabilityReport{}, fmt.Errorf("privacy: sequence of %d symbols is too short", len(seq))
	}
	counts := map[int]int{}
	for _, s := range seq {
		counts[s]++
	}
	n := len(counts)
	rep := PredictabilityReport{States: n, SequenceLength: len(seq)}
	rep.RandomEntropy = math.Log2(float64(n))
	for _, c := range counts {
		p := float64(c) / float64(len(seq))
		rep.UncorrelatedEntropy -= p * math.Log2(p)
	}
	rep.RealEntropy = lempelZivEntropy(seq)
	if n > 1 {
		rep.MaxPredictability = solveFano(rep.RealEntropy, n)
	} else {
		rep.MaxPredictability = 1
	}
	return rep, nil
}

// lempelZivEntropy estimates the entropy rate in bits/symbol with the
// Lempel-Ziv estimator used by Song et al.:
//
//	S_est = ( (1/n) * sum_i Lambda_i )^-1 * log2(n)
//
// where Lambda_i is the length of the shortest substring starting at i
// that does not appear anywhere in seq[0:i].
func lempelZivEntropy(seq []int) float64 {
	n := len(seq)
	var sum float64
	for i := 0; i < n; i++ {
		// Find the shortest prefix of seq[i:] absent from seq[:i].
		lambda := 1
		for l := 1; i+l <= n; l++ {
			if !containsSub(seq[:i], seq[i:i+l]) {
				lambda = l
				break
			}
			lambda = l + 1
		}
		sum += float64(lambda)
	}
	if sum == 0 {
		return 0
	}
	return float64(n) / sum * math.Log2(float64(n))
}

// containsSub reports whether hay contains needle as a contiguous
// subsequence.
func containsSub(hay, needle []int) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// solveFano inverts Fano's inequality
//
//	S = H(Pi) + (1 - Pi) log2(N - 1)
//
// for the maximum predictability Pi_max given entropy rate S and N
// states, by bisection on Pi in (1/N, 1).
func solveFano(entropy float64, n int) float64 {
	if entropy <= 0 {
		return 1
	}
	h := func(p float64) float64 {
		if p <= 0 || p >= 1 {
			return 0
		}
		return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	}
	f := func(pi float64) float64 {
		return h(pi) + (1-pi)*math.Log2(float64(n-1)) - entropy
	}
	lo, hi := 1/float64(n)+1e-9, 1-1e-9
	if f(lo) < 0 {
		// Entropy exceeds what N states can produce: no predictability
		// beyond chance.
		return 1 / float64(n)
	}
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
