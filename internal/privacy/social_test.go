package privacy

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/mapreduce"
	"repro/internal/trace"
)

// friendsDataset builds three users: "a" and "b" meet repeatedly at a
// café (co-located dwells), "c" never meets anyone.
func friendsDataset() *trace.Dataset {
	cafe := geo.Point{Lat: 39.91, Lon: 116.41}
	far := geo.Point{Lat: 40.05, Lon: 116.20}
	var traces []trace.Trace
	base := time.Date(2008, 4, 7, 18, 0, 0, 0, time.UTC)
	// 5 evenings of a 20-minute café meeting, samples every minute.
	for day := 0; day < 5; day++ {
		start := base.AddDate(0, 0, day)
		for m := 0; m < 20; m++ {
			ts := start.Add(time.Duration(m) * time.Minute)
			traces = append(traces,
				trace.Trace{User: "a", Point: geo.Destination(cafe, float64(m*37), 4), Time: ts},
				trace.Trace{User: "b", Point: geo.Destination(cafe, float64(m*53), 4), Time: ts.Add(10 * time.Second)},
				trace.Trace{User: "c", Point: geo.Destination(far, float64(m*29), 4), Time: ts},
			)
		}
	}
	return trace.FromTraces(traces)
}

func TestSocialLinksSequential(t *testing.T) {
	ds := friendsDataset()
	links := DiscoverSocialLinksSequential(ds, SocialOptions{})
	if len(links) != 1 {
		t.Fatalf("links = %+v, want exactly a-b", links)
	}
	l := links[0]
	if l.UserA != "a" || l.UserB != "b" {
		t.Fatalf("wrong pair: %+v", l)
	}
	// 5 meetings x 20 min spanning 10-min windows -> at least 10
	// shared buckets.
	if l.SharedWindows < 10 {
		t.Fatalf("shared windows = %d, want >= 10", l.SharedWindows)
	}
}

func TestSocialLinksThreshold(t *testing.T) {
	ds := friendsDataset()
	// An absurd threshold suppresses everything.
	links := DiscoverSocialLinksSequential(ds, SocialOptions{MinSharedWindows: 10_000})
	if len(links) != 0 {
		t.Fatalf("links = %+v, want none", links)
	}
}

func TestSocialLinksMRMatchesSequential(t *testing.T) {
	c, _ := cluster.NewUniform(4, 2, 2)
	fs, _ := dfs.New(c, dfs.Config{ChunkSize: 8 << 10, Seed: 1})
	e := mapreduce.NewEngine(c, fs, mapreduce.Options{})
	ds := friendsDataset()
	if err := geolife.WriteRecords(fs, "in", ds); err != nil {
		t.Fatal(err)
	}
	// Re-read so coordinates match record precision for both paths.
	ds, err := geolife.ReadRecords(fs, "in")
	if err != nil {
		t.Fatal(err)
	}
	opts := SocialOptions{}
	mr, results, err := DiscoverSocialLinksMR(e, []string{"in"}, "social-work", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 chained jobs, got %d", len(results))
	}
	seq := DiscoverSocialLinksSequential(ds, opts)
	if len(mr) != len(seq) {
		t.Fatalf("MR %d links vs sequential %d", len(mr), len(seq))
	}
	for i := range mr {
		if mr[i] != seq[i] {
			t.Fatalf("link %d: MR %+v vs seq %+v", i, mr[i], seq[i])
		}
	}
}

func TestSocialLinksNoFalsePositivesOnIndependentUsers(t *testing.T) {
	// Independently generated users practically never co-locate.
	ds := geolife.Generate(geolife.Config{Users: 5, TotalTraces: 25_000, Seed: 71})
	links := DiscoverSocialLinksSequential(ds, SocialOptions{})
	if len(links) != 0 {
		t.Fatalf("unexpected links between independent users: %+v", links)
	}
}

func TestHomeWorkPairsAndLinking(t *testing.T) {
	// Extract quasi-identifiers from two halves of each user's data
	// and link the pseudonymised half back (Golle & Partridge, §II).
	ds, _ := genTruth(t, 4, 40_000, 73)
	half1 := &trace.Dataset{}
	half2 := &trace.Dataset{}
	for _, tr := range ds.Trails {
		h := len(tr.Traces) / 2
		half1.Trails = append(half1.Trails, trace.Trail{User: tr.User, Traces: tr.Traces[:h]})
		anonTrail := trace.Trail{User: "anon-" + tr.User}
		for _, tc := range tr.Traces[h:] {
			tc.User = anonTrail.User
			anonTrail.Traces = append(anonTrail.Traces, tc)
		}
		half2.Trails = append(half2.Trails, anonTrail)
	}
	known := HomeWorkPairs(attackPipeline(t, half1))
	anon := HomeWorkPairs(attackPipeline(t, half2))
	if len(known) < 3 || len(anon) < 3 {
		t.Fatalf("quasi-identifiers: known=%d anon=%d, want >=3 each", len(known), len(anon))
	}
	truthMap := map[string]string{}
	for _, hw := range anon {
		truthMap[hw.User] = hw.User[len("anon-"):]
	}
	res := LinkByHomeWork(known, anon, 100, truthMap)
	if res.Accuracy() < 0.75 {
		t.Fatalf("home/work linking accuracy %.2f < 0.75 (matches %v)", res.Accuracy(), res.Matches)
	}
}

func TestHomeWorkPairsSkipsIncomplete(t *testing.T) {
	pois := []POI{
		{User: "u1", Label: LabelHome, Center: geo.Point{Lat: 1, Lon: 1}},
		{User: "u1", Label: LabelWork, Center: geo.Point{Lat: 2, Lon: 2}},
		{User: "u2", Label: LabelHome, Center: geo.Point{Lat: 3, Lon: 3}}, // no work
		{User: "u3", Label: LabelLeisure, Center: geo.Point{Lat: 4, Lon: 4}},
	}
	pairs := HomeWorkPairs(pois)
	if len(pairs) != 1 || pairs[0].User != "u1" {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestLinkByHomeWorkNoMatchOutsideRadius(t *testing.T) {
	known := []HomeWorkPair{{User: "k", Home: geo.Point{Lat: 39.9, Lon: 116.4}, Work: geo.Point{Lat: 39.95, Lon: 116.45}}}
	anon := []HomeWorkPair{{User: "a", Home: geo.Point{Lat: 40.5, Lon: 117.0}, Work: geo.Point{Lat: 40.6, Lon: 117.1}}}
	res := LinkByHomeWork(known, anon, 100, map[string]string{"a": "k"})
	if res.Matches["a"] != "" || res.Correct != 0 {
		t.Fatalf("far pair should not match: %+v", res)
	}
}

var _ = gepeto.DefaultDJClusterOptions // keep import used if helpers change

func TestSortLinksOrdering(t *testing.T) {
	links := []SocialLink{
		{UserA: "b", UserB: "c", SharedWindows: 2},
		{UserA: "a", UserB: "c", SharedWindows: 5},
		{UserA: "a", UserB: "b", SharedWindows: 2},
	}
	sortLinks(links)
	if links[0].SharedWindows != 5 {
		t.Fatal("links not sorted by count desc")
	}
	if links[1].UserA != "a" || links[2].UserA != "b" {
		t.Fatalf("tie-break by user failed: %+v", links)
	}
}
