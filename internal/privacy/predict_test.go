package privacy

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/gepeto"
	"repro/internal/trace"
)

func TestEvaluatePredictionPerfectAlternation(t *testing.T) {
	a := geo.Point{Lat: 39.90, Lon: 116.40}
	b := geo.Point{Lat: 39.95, Lon: 116.45}
	mk := func(n int) *trace.Trail {
		tr := &trace.Trail{User: "u"}
		ts := time.Unix(1_200_000_000, 0)
		for i := 0; i < n; i++ {
			p := a
			if i%2 == 1 {
				p = b
			}
			tr.Traces = append(tr.Traces, trace.Trace{User: "u", Point: p, Time: ts})
			ts = ts.Add(time.Minute)
		}
		return tr
	}
	m, err := BuildMMC(mk(20), []geo.Point{a, b}, 50)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EvaluatePrediction(m, mk(10), 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transitions != 9 {
		t.Fatalf("transitions = %d, want 9", rep.Transitions)
	}
	if rep.Accuracy() != 1.0 {
		t.Fatalf("accuracy = %v, want 1.0 (perfectly periodic)", rep.Accuracy())
	}
	// The static baseline can get at most half of an alternation.
	if rep.BaselineAccuracy() > 0.6 {
		t.Fatalf("baseline accuracy %v suspiciously high", rep.BaselineAccuracy())
	}
}

func TestEvaluatePredictionOnGeneratedMobility(t *testing.T) {
	// MMCs are built from dwell evidence, so feed the preprocessed
	// (stationary-only) trail: raw commute points can graze an
	// unrelated POI's attach radius en route and make transitions
	// look stochastic.
	raw, truth := genTruth(t, 2, 24_000, 51)
	_, ds := gepeto.PreprocessSequential(raw, 2.0, 1.0)
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		half := len(tr.Traces) / 2
		train := &trace.Trail{User: tr.User, Traces: tr.Traces[:half]}
		test := &trace.Trail{User: tr.User, Traces: tr.Traces[half:]}
		m, err := BuildMMC(train, truth.POIs(tr.User), 50)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := EvaluatePrediction(m, test, 50)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Transitions < 10 {
			t.Fatalf("user %s: only %d transitions evaluated", tr.User, rep.Transitions)
		}
		// Commute-dominated mobility is highly predictable (Song et
		// al.'s point, cited in §II): the MMC must beat 50% and the
		// naive baseline.
		if rep.Accuracy() < 0.5 {
			t.Errorf("user %s: prediction accuracy %.2f < 0.5", tr.User, rep.Accuracy())
		}
		if rep.Accuracy() <= rep.BaselineAccuracy() {
			t.Errorf("user %s: model %.2f does not beat baseline %.2f",
				tr.User, rep.Accuracy(), rep.BaselineAccuracy())
		}
	}
}

func TestEvaluatePredictionEmptyModel(t *testing.T) {
	empty := &MMC{}
	if _, err := EvaluatePrediction(empty, &trace.Trail{}, 50); err == nil {
		t.Fatal("want error for empty model")
	}
}
