package privacy

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/mapreduce"
	"repro/internal/trace"
)

func mrHarness(t *testing.T, traces int) (*mapreduce.Engine, *trace.Dataset) {
	t.Helper()
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: 64 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := mapreduce.NewEngine(c, fs, mapreduce.Options{})
	ds := geolife.Generate(geolife.Config{Users: 2, TotalTraces: traces, Seed: 61})
	if err := geolife.WriteRecords(fs, "in", ds); err != nil {
		t.Fatal(err)
	}
	ds, err = geolife.ReadRecords(fs, "in")
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestGaussianMaskJob(t *testing.T) {
	e, ds := mrHarness(t, 4000)
	res, err := e.Run(GaussianMaskJob("mask", []string{"in"}, "out", 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceTasks != 0 {
		t.Fatal("mask must be map-only")
	}
	out, err := geolife.ReadRecords(e.FS(), "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumTraces() != ds.NumTraces() {
		t.Fatalf("trace count changed: %d vs %d", out.NumTraces(), ds.NumTraces())
	}
	rep := MeasureUtility(ds, out)
	// Half-normal with sigma 100 -> mean displacement ~80 m.
	if rep.MeanDistortionMeters < 40 || rep.MeanDistortionMeters > 160 {
		t.Fatalf("mean distortion %.1f, want ~80", rep.MeanDistortionMeters)
	}
	if rep.Retention != 1 {
		t.Fatalf("retention %v", rep.Retention)
	}
}

func TestGaussianMaskJobDeterministicPerSeed(t *testing.T) {
	e1, _ := mrHarness(t, 1000)
	e2, _ := mrHarness(t, 1000)
	if _, err := e1.Run(GaussianMaskJob("mask", []string{"in"}, "out", 50, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(GaussianMaskJob("mask", []string{"in"}, "out", 50, 3)); err != nil {
		t.Fatal(err)
	}
	a, _ := geolife.ReadRecords(e1.FS(), "out")
	b, _ := geolife.ReadRecords(e2.FS(), "out")
	ta, tb := a.AllTraces(), b.AllTraces()
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("trace %d differs across identical runs", i)
		}
	}
}

func TestCloakingJob(t *testing.T) {
	e, ds := mrHarness(t, 3000)
	if _, err := e.Run(CloakingJob("cloak", []string{"in"}, "out", 400)); err != nil {
		t.Fatal(err)
	}
	out, err := geolife.ReadRecords(e.FS(), "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumTraces() != ds.NumTraces() {
		t.Fatal("cloaking must not drop traces")
	}
	uniq := map[geo.Point]bool{}
	for _, tr := range out.Trails {
		for _, tc := range tr.Traces {
			uniq[tc.Point] = true
		}
	}
	if len(uniq) > 80 {
		t.Fatalf("%d unique cloaked positions, want few", len(uniq))
	}
	// MR cloaking must agree with the sequential sanitizer up to the
	// record format's 1e-6-degree rounding.
	seq := SpatialCloaking{CellMeters: 400}.Sanitize(ds)
	sa, oa := seq.AllTraces(), out.AllTraces()
	for i := range sa {
		if d := geo.Haversine(sa[i].Point, oa[i].Point); d > 0.2 {
			t.Fatalf("trace %d: MR and sequential cloaking disagree by %.2fm", i, d)
		}
	}
}

func TestMaskJobBadConf(t *testing.T) {
	e, _ := mrHarness(t, 100)
	job := GaussianMaskJob("mask", []string{"in"}, "out", 100, 1)
	job.Conf[confMaskSigma] = "not-a-number"
	job.MaxAttempts = 1
	if _, err := e.Run(job); err == nil {
		t.Fatal("bad sigma should fail the job")
	}
	job2 := CloakingJob("cloak", []string{"in"}, "out2", 100)
	job2.Conf[confCloakCell] = "-5"
	job2.MaxAttempts = 1
	if _, err := e.Run(job2); err == nil {
		t.Fatal("negative cell should fail the job")
	}
}
