package privacy

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/trace"
)

func TestMMCMarshalRoundTrip(t *testing.T) {
	orig := &MMC{
		User:   "u7",
		States: []geo.Point{{Lat: 39.9, Lon: 116.4}, {Lat: 39.95, Lon: 116.45}},
		Visits: []int{10, 5},
		Trans:  [][]float64{{0.25, 0.75}, {1, 0}},
	}
	back, err := UnmarshalMMC(MarshalMMC(orig))
	if err != nil {
		t.Fatal(err)
	}
	if back.User != orig.User || len(back.States) != 2 {
		t.Fatalf("round-trip = %+v", back)
	}
	for i := range orig.States {
		if back.States[i] != orig.States[i] || back.Visits[i] != orig.Visits[i] {
			t.Fatalf("state %d mismatch", i)
		}
		for j := range orig.Trans[i] {
			if math.Abs(back.Trans[i][j]-orig.Trans[i][j]) > 1e-9 {
				t.Fatalf("trans %d,%d mismatch", i, j)
			}
		}
	}
}

func TestMMCMarshalEmpty(t *testing.T) {
	back, err := UnmarshalMMC(MarshalMMC(&MMC{User: "lonely"}))
	if err != nil {
		t.Fatal(err)
	}
	if back.User != "lonely" || len(back.States) != 0 {
		t.Fatalf("empty round-trip = %+v", back)
	}
}

func TestUnmarshalMMCErrors(t *testing.T) {
	bad := []string{
		"",
		"u|a,b",                   // 2 sections
		"u|xx|1|1",                // bad state
		"u|1,2|x|1",               // bad visit
		"u|1,2|1|zz",              // bad transition
		"u|1,2;3,4|1|1",           // dimension mismatch
		"u|1,2;3,4|1,2|0.5,0.5;1", // ragged matrix
	}
	for _, s := range bad {
		if _, err := UnmarshalMMC(s); err == nil {
			t.Errorf("UnmarshalMMC(%q): want error", s)
		}
	}
}

func TestUserPOIsRoundTrip(t *testing.T) {
	in := map[string][]geo.Point{
		"a": {{Lat: 39.9, Lon: 116.4}},
		"b": {{Lat: 40.0, Lon: 116.5}, {Lat: 40.1, Lon: 116.6}},
	}
	back, err := UnmarshalUserPOIs(MarshalUserPOIs(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || len(back["b"]) != 2 || back["a"][0] != in["a"][0] {
		t.Fatalf("round-trip = %+v", back)
	}
	if _, err := UnmarshalUserPOIs([]byte("nota\tpoi;line")); err == nil {
		t.Fatal("want error for bad blob")
	}
}

func TestBuildMMCsMRMatchesSequential(t *testing.T) {
	e, _ := mrHarness(t, 16_000)
	// Preprocess in MR so the DFS holds stationary traces.
	if _, err := e.RunPipeline(); err != nil {
		t.Fatal(err)
	}
	ds, err := geolife.ReadRecords(e.FS(), "in")
	if err != nil {
		t.Fatal(err)
	}
	// Ground-truth POIs via the generator config used by mrHarness.
	_, truth := geolife.GenerateWithTruth(geolife.Config{Users: 2, TotalTraces: 16_000, Seed: 61})
	userPOIs := map[string][]geo.Point{}
	for _, tr := range ds.Trails {
		userPOIs[tr.User] = truth.POIs(tr.User)
	}

	mrChains, res, err := BuildMMCsMR(e, []string{"in"}, "mmcs", userPOIs, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The distributed cache serializes POIs at 1e-6-degree precision;
	// compare the sequential build against the same rounded POIs.
	userPOIs, err = UnmarshalUserPOIs(MarshalUserPOIs(userPOIs))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Value("mmc", "chains_built"); got != 2 {
		t.Fatalf("chains_built = %d", got)
	}
	if len(mrChains) != 2 {
		t.Fatalf("MR built %d chains", len(mrChains))
	}
	for i := range ds.Trails {
		tr := &ds.Trails[i]
		seq, err := BuildMMC(tr, userPOIs[tr.User], 50)
		if err != nil {
			t.Fatal(err)
		}
		mr := mrChains[tr.User]
		if mr == nil {
			t.Fatalf("no MR chain for %s", tr.User)
		}
		if len(mr.States) != len(seq.States) {
			t.Fatalf("user %s: MR %d states vs seq %d", tr.User, len(mr.States), len(seq.States))
		}
		for s := range seq.States {
			if mr.States[s] != seq.States[s] || mr.Visits[s] != seq.Visits[s] {
				t.Fatalf("user %s state %d differs", tr.User, s)
			}
			for j := range seq.Trans[s] {
				if math.Abs(mr.Trans[s][j]-seq.Trans[s][j]) > 1e-6 {
					t.Fatalf("user %s trans %d,%d: MR %v vs seq %v",
						tr.User, s, j, mr.Trans[s][j], seq.Trans[s][j])
				}
			}
		}
		// The distance between the two representations is ~0.
		if d := mr.Distance(seq); d > 0.01 {
			t.Fatalf("user %s: MR-vs-seq MMC distance %v", tr.User, d)
		}
	}
}

func TestBuildMMCsMRUserWithoutPOIs(t *testing.T) {
	e, _ := mrHarness(t, 2000)
	// Only provide POIs for one of the two users.
	ds, _ := geolife.ReadRecords(e.FS(), "in")
	user0 := ds.Trails[0].User
	_, truth := geolife.GenerateWithTruth(geolife.Config{Users: 2, TotalTraces: 2000, Seed: 61})
	chains, res, err := BuildMMCsMR(e, []string{"in"}, "mmcs", map[string][]geo.Point{
		user0: truth.POIs(user0),
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	if res.Counters.Value("mmc", "users_without_pois") != 1 {
		t.Fatal("missing-POI user not counted")
	}
}

// TestMMCEndToEndViaDJCluster ties the whole §VIII pipeline together:
// DJ-Cluster extracts POIs per user, BuildMMCsMR learns the chains,
// and the chains support the linking attack.
func TestMMCEndToEndViaDJCluster(t *testing.T) {
	ds, _ := genTruth(t, 3, 30_000, 81)
	sampled := gepetoSample(ds)
	_, pre := gepetoPreprocess(sampled)
	clusters := gepetoCluster(pre)
	pois, err := ExtractPOIs(clusters, TraceTimes(pre))
	if err != nil {
		t.Fatal(err)
	}
	userPOIs := map[string][]geo.Point{}
	for _, p := range pois {
		userPOIs[p.User] = append(userPOIs[p.User], p.Center)
	}

	e, _ := mrHarness(t, 100) // fresh engine; we upload our own data
	if err := geolife.WriteRecords(e.FS(), "pre", pre); err != nil {
		t.Fatal(err)
	}
	chains, _, err := BuildMMCsMR(e, []string{"pre"}, "mmcs", userPOIs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 3 {
		t.Fatalf("chains = %d", len(chains))
	}
	for u, m := range chains {
		if len(m.States) < 2 {
			t.Errorf("user %s: chain has %d states", u, len(m.States))
		}
		pi := m.StationaryDistribution()
		var sum float64
		for _, p := range pi {
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("user %s: stationary distribution sums to %v", u, sum)
		}
	}
}

// Small wrappers keep the end-to-end test readable without importing
// gepeto under aliased names everywhere.
func gepetoSample(ds *trace.Dataset) *trace.Dataset {
	return sampleOneMinute(ds)
}

func sampleOneMinute(ds *trace.Dataset) *trace.Dataset {
	return gepeto.SampleSequential(ds, time.Minute, gepeto.SampleUpperLimit)
}

func gepetoPreprocess(ds *trace.Dataset) (*trace.Dataset, *trace.Dataset) {
	return gepeto.PreprocessSequential(ds, 2.0, 1.0)
}

func gepetoCluster(ds *trace.Dataset) *gepeto.DJClusterResult {
	return gepeto.DJClusterSequential(ds, gepeto.DefaultDJClusterOptions())
}
