package privacy

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/trace"
)

// PredictionReport scores an MMC's next-location prediction (§VIII:
// an MMC "can be used to predict his future locations"; the paper
// cites Song et al.'s findings that human mobility is highly
// predictable).
type PredictionReport struct {
	// Transitions is the number of next-place events evaluated.
	Transitions int
	// Correct is how many the model predicted exactly.
	Correct int
	// BaselineCorrect is how many a most-frequent-next-place-overall
	// baseline (predict the globally most visited state) would get.
	BaselineCorrect int
}

// Accuracy returns the model's hit rate.
func (r PredictionReport) Accuracy() float64 {
	if r.Transitions == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Transitions)
}

// BaselineAccuracy returns the naive baseline's hit rate.
func (r PredictionReport) BaselineAccuracy() float64 {
	if r.Transitions == 0 {
		return 0
	}
	return float64(r.BaselineCorrect) / float64(r.Transitions)
}

// EvaluatePrediction trains nothing — it replays a held-out trail
// against an already-built MMC: every transition between distinct
// states in the trail is a prediction event, scored against the
// model's most probable successor. attachRadius maps trail traces to
// model states like BuildMMC does.
func EvaluatePrediction(m *MMC, heldOut *trace.Trail, attachRadius float64) (PredictionReport, error) {
	if len(m.States) == 0 {
		return PredictionReport{}, fmt.Errorf("privacy: model has no states")
	}
	// Globally most visited state, the baseline prediction.
	mostVisited := 0
	for i, v := range m.Visits {
		if v > m.Visits[mostVisited] {
			mostVisited = i
		}
	}
	attach := func(p geo.Point) int {
		state, best := -1, attachRadius
		for i, s := range m.States {
			if d := geo.Haversine(p, s); d <= best {
				best, state = d, i
			}
		}
		return state
	}
	var rep PredictionReport
	prev := -1
	for _, t := range heldOut.Traces {
		state := attach(t.Point)
		if state < 0 {
			continue
		}
		if prev >= 0 && state != prev {
			rep.Transitions++
			predicted, _, err := m.PredictNext(prev)
			if err != nil {
				return rep, err
			}
			if predicted == state {
				rep.Correct++
			}
			if mostVisited == state {
				rep.BaselineCorrect++
			}
		}
		prev = state
	}
	return rep, nil
}
