package privacy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/trace"
)

// MMC is a Mobility Markov Chain (paper §VIII): a compact
// representation of an individual's mobility behavior whose states are
// the individual's POIs and whose transitions capture movement
// patterns between them. It can be used to predict future locations
// and to perform de-anonymization attacks.
type MMC struct {
	// User is the individual modelled ("" if unknown/anonymous).
	User string
	// States are the POI locations, in construction order.
	States []geo.Point
	// Trans[i][j] is the probability of moving from state i to j.
	Trans [][]float64
	// Visits[i] counts the trace-level visits to state i.
	Visits []int
}

// BuildMMC constructs an MMC from a trail and the user's POIs
// (typically the centroids extracted by DJ-Cluster). Each trace is
// mapped to its nearest POI within attachRadius (others are ignored);
// consecutive visits to different states form the transitions.
func BuildMMC(tr *trace.Trail, pois []geo.Point, attachRadius float64) (*MMC, error) {
	if len(pois) == 0 {
		return nil, fmt.Errorf("privacy: BuildMMC needs at least one POI")
	}
	m := &MMC{
		User:   tr.User,
		States: append([]geo.Point(nil), pois...),
		Visits: make([]int, len(pois)),
	}
	counts := make([][]float64, len(pois))
	for i := range counts {
		counts[i] = make([]float64, len(pois))
	}
	prev := -1
	for _, t := range tr.Traces {
		state := -1
		best := attachRadius
		for i, p := range m.States {
			if d := geo.Haversine(t.Point, p); d <= best {
				best, state = d, i
			}
		}
		if state < 0 {
			continue // in transit between POIs
		}
		m.Visits[state]++
		if prev >= 0 && prev != state {
			counts[prev][state]++
		}
		prev = state
	}
	// Prune unvisited candidate states and normalise transition rows
	// (shared with the MapReduce builder).
	return assembleMMC(tr.User, m.States, m.Visits, counts), nil
}

// PredictNext returns the most probable next state given the current
// state index, with its probability.
func (m *MMC) PredictNext(state int) (int, float64, error) {
	if state < 0 || state >= len(m.States) {
		return 0, 0, fmt.Errorf("privacy: state %d out of range [0,%d)", state, len(m.States))
	}
	best, bestP := state, -1.0
	for j, p := range m.Trans[state] {
		if p > bestP {
			best, bestP = j, p
		}
	}
	return best, bestP, nil
}

// StationaryDistribution estimates the long-run fraction of time spent
// in each state by damped power iteration (the small damping factor
// guarantees convergence on periodic or disconnected chains).
func (m *MMC) StationaryDistribution() []float64 {
	n := len(m.States)
	if n == 0 {
		return nil
	}
	const damping = 0.05
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < 200; iter++ {
		for j := range next {
			next[j] = damping / float64(n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += (1 - damping) * pi[i] * m.Trans[i][j]
			}
		}
		var delta float64
		for i := range pi {
			delta += math.Abs(next[i] - pi[i])
			pi[i] = next[i]
		}
		if delta < 1e-10 {
			break
		}
	}
	return pi
}

// Distance measures the dissimilarity of two MMCs: states of a and b
// are greedily matched by spatial proximity; unmatched mass and
// mismatched stationary probabilities accumulate cost, plus a
// penalty proportional to the spatial distance of matched states.
// Identical mobility behavior yields distance ~0; unrelated users
// yield large distances. Used by the de-anonymization attack.
func (m *MMC) Distance(o *MMC) float64 {
	const matchRadius = 100.0 // meters: states closer than this can be identified
	pa, pb := m.StationaryDistribution(), o.StationaryDistribution()

	type pair struct {
		i, j int
		d    float64
	}
	var pairs []pair
	for i := range m.States {
		for j := range o.States {
			if d := geo.Haversine(m.States[i], o.States[j]); d <= matchRadius {
				pairs = append(pairs, pair{i, j, d})
			}
		}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].d < pairs[y].d })
	usedA := make([]bool, len(m.States))
	usedB := make([]bool, len(o.States))
	cost := 0.0
	for _, p := range pairs {
		if usedA[p.i] || usedB[p.j] {
			continue
		}
		usedA[p.i] = true
		usedB[p.j] = true
		// Matched states: pay for stationary-probability mismatch and
		// (scaled) spatial offset.
		cost += math.Abs(pa[p.i]-pb[p.j]) + p.d/matchRadius*0.1
	}
	// Unmatched stationary mass counts fully.
	for i, used := range usedA {
		if !used {
			cost += pa[i]
		}
	}
	for j, used := range usedB {
		if !used {
			cost += pb[j]
		}
	}
	return cost
}

// LinkingResult is the outcome of a de-anonymization attack linking
// pseudonymised trails to known users.
type LinkingResult struct {
	// Matches maps each anonymous trail's pseudonym to the linked
	// known user.
	Matches map[string]string
	// Correct counts matches whose pseudonym's true user (provided to
	// Evaluate) was recovered.
	Correct int
	// Total is the number of anonymous trails attacked.
	Total int
}

// Accuracy returns the fraction of correctly linked trails.
func (r *LinkingResult) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Total)
}

// LinkByMMC performs the de-anonymization attack of §VIII: each
// anonymous MMC (built from a pseudonymised trail) is linked to the
// known MMC at minimal distance. truth maps pseudonym → true user for
// scoring ("" entries are skipped in scoring but still matched).
func LinkByMMC(known []*MMC, anonymous []*MMC, truth map[string]string) *LinkingResult {
	res := &LinkingResult{Matches: make(map[string]string)}
	for _, anon := range anonymous {
		bestUser, bestDist := "", math.Inf(1)
		for _, k := range known {
			if d := anon.Distance(k); d < bestDist {
				bestDist, bestUser = d, k.User
			}
		}
		res.Matches[anon.User] = bestUser
		res.Total++
		if want, ok := truth[anon.User]; ok && want != "" && want == bestUser {
			res.Correct++
		}
	}
	return res
}
