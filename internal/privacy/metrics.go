package privacy

import (
	"math"

	"repro/internal/geo"
	"repro/internal/trace"
)

// UtilityReport quantifies how much analytic value a sanitized dataset
// retains relative to the original — one side of the privacy/utility
// trade-off GEPETO is built to evaluate.
type UtilityReport struct {
	// MeanDistortionMeters is the mean displacement of each surviving
	// trace from its original coordinate (0 for suppression-only
	// mechanisms).
	MeanDistortionMeters float64
	// MaxDistortionMeters is the worst-case displacement.
	MaxDistortionMeters float64
	// Retention is the fraction of traces surviving sanitization.
	Retention float64
}

// MeasureUtility compares a sanitized dataset against the original.
// Traces are matched per user by timestamp; sanitizers that re-
// pseudonymise (mix zones) should be measured via Retention only,
// passing the original user mapping where available.
func MeasureUtility(original, sanitized *trace.Dataset) UtilityReport {
	// Index sanitized traces by (user, unix).
	type key struct {
		user string
		ts   int64
	}
	idx := make(map[key]geo.Point, sanitized.NumTraces())
	for _, tr := range sanitized.Trails {
		for _, t := range tr.Traces {
			idx[key{t.User, t.Time.Unix()}] = t.Point
		}
	}
	var sum, worst float64
	matched := 0
	for _, tr := range original.Trails {
		for _, t := range tr.Traces {
			p, ok := idx[key{t.User, t.Time.Unix()}]
			if !ok {
				continue
			}
			matched++
			d := geo.Haversine(t.Point, p)
			sum += d
			if d > worst {
				worst = d
			}
		}
	}
	rep := UtilityReport{}
	if matched > 0 {
		rep.MeanDistortionMeters = sum / float64(matched)
		rep.MaxDistortionMeters = worst
	}
	if n := original.NumTraces(); n > 0 {
		rep.Retention = float64(sanitized.NumTraces()) / float64(n)
	}
	return rep
}

// PrivacyReport quantifies the residual privacy risk of a dataset
// after sanitization, measured by re-running the POI inference attack.
type PrivacyReport struct {
	// HomeRecoveryRate is the fraction of users whose home the attack
	// still identifies — the headline privacy-breach number.
	HomeRecoveryRate float64
	// WorkRecoveryRate is the equivalent for work places.
	WorkRecoveryRate float64
	// POIRecall is the fraction of all true POIs still discovered.
	POIRecall float64
}

// PrivacyFromAttack converts a POI attack report into the privacy
// metrics (lower = more private).
func PrivacyFromAttack(rep POIAttackReport) PrivacyReport {
	out := PrivacyReport{POIRecall: rep.POIRecall}
	if rep.Users > 0 {
		out.HomeRecoveryRate = float64(rep.HomeRecovered) / float64(rep.Users)
		out.WorkRecoveryRate = float64(rep.WorkRecovered) / float64(rep.Users)
	}
	return out
}

// AnonymitySetSize computes, for each anonymous MMC, how many known
// MMCs are within factor x of the best-match distance — the effective
// anonymity set of the linking attack. Larger sets mean the attack is
// less certain. Returns the mean set size.
func AnonymitySetSize(known []*MMC, anonymous []*MMC, slack float64) float64 {
	if len(anonymous) == 0 || len(known) == 0 {
		return 0
	}
	if slack < 1 {
		slack = 1
	}
	var total float64
	for _, anon := range anonymous {
		best := math.Inf(1)
		dists := make([]float64, len(known))
		for i, k := range known {
			dists[i] = anon.Distance(k)
			if dists[i] < best {
				best = dists[i]
			}
		}
		count := 0
		for _, d := range dists {
			if d <= best*slack+1e-12 {
				count++
			}
		}
		total += float64(count)
	}
	return total / float64(len(anonymous))
}
