package privacy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/mapreduce"
	"repro/internal/trace"
)

// The social-link discovery attack of §II: "Discover social relations
// between individuals, by considering that two individuals that are in
// contact during a non-negligible amount of time share some kind of
// social link (false positives may happen)." Contact is modelled as
// co-location: two users observed in the same spatial cell during the
// same time window. The attack counts distinct co-located windows per
// user pair and reports pairs above a threshold.

// SocialLink is one discovered relation.
type SocialLink struct {
	// UserA and UserB are the pair, with UserA < UserB.
	UserA, UserB string
	// SharedWindows is the number of distinct (cell, window) buckets
	// in which both users were observed.
	SharedWindows int
}

// SocialOptions parameterises the co-location attack.
type SocialOptions struct {
	// CellMeters is the co-location cell size (default 50 m).
	CellMeters float64
	// WindowSeconds is the temporal bucket (default 600 s).
	WindowSeconds int64
	// MinSharedWindows is the "non-negligible amount of time"
	// threshold: pairs sharing fewer buckets are dropped (default 3).
	MinSharedWindows int
}

func (o SocialOptions) withDefaults() SocialOptions {
	if o.CellMeters <= 0 {
		o.CellMeters = 50
	}
	if o.WindowSeconds <= 0 {
		o.WindowSeconds = 600
	}
	if o.MinSharedWindows <= 0 {
		o.MinSharedWindows = 3
	}
	return o
}

// colocationKey buckets a trace into a (cell, window) identifier.
func colocationKey(p geo.Point, unix int64, o SocialOptions) string {
	c := snapToGrid(p, o.CellMeters)
	return fmt.Sprintf("%.6f,%.6f@%d", c.Lat, c.Lon, unix/o.WindowSeconds)
}

// DiscoverSocialLinksSequential runs the attack in memory.
func DiscoverSocialLinksSequential(ds *trace.Dataset, opts SocialOptions) []SocialLink {
	opts = opts.withDefaults()
	// bucket -> set of users present.
	buckets := make(map[string]map[string]bool)
	for _, tr := range ds.Trails {
		for _, t := range tr.Traces {
			k := colocationKey(t.Point, t.Time.Unix(), opts)
			set, ok := buckets[k]
			if !ok {
				set = make(map[string]bool)
				buckets[k] = set
			}
			set[t.User] = true
		}
	}
	counts := make(map[[2]string]int)
	for _, set := range buckets {
		if len(set) < 2 {
			continue
		}
		users := make([]string, 0, len(set))
		for u := range set {
			users = append(users, u)
		}
		sort.Strings(users)
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				counts[[2]string{users[i], users[j]}]++
			}
		}
	}
	var out []SocialLink
	for pair, n := range counts {
		if n >= opts.MinSharedWindows {
			out = append(out, SocialLink{UserA: pair[0], UserB: pair[1], SharedWindows: n})
		}
	}
	sortLinks(out)
	return out
}

func sortLinks(links []SocialLink) {
	sort.Slice(links, func(i, j int) bool {
		if links[i].SharedWindows != links[j].SharedWindows {
			return links[i].SharedWindows > links[j].SharedWindows
		}
		if links[i].UserA != links[j].UserA {
			return links[i].UserA < links[j].UserA
		}
		return links[i].UserB < links[j].UserB
	})
}

// Conf keys for the MapReduced attack.
const (
	confSocialCell   = "social.cell.meters"
	confSocialWindow = "social.window.seconds"
)

// DiscoverSocialLinksMR runs the attack as two chained MapReduce jobs:
//
//	job 1 — map: trace -> (cell@window, user); reduce: emit one
//	        (userA|userB, bucket) record per co-located pair per bucket;
//	job 2 — map: identity; reduce: count distinct buckets per pair.
//
// Intermediates are staged under workDir. Pairs below the threshold
// are filtered by the driver after job 2.
func DiscoverSocialLinksMR(e *mapreduce.Engine, inputPaths []string, workDir string, opts SocialOptions) ([]SocialLink, []*mapreduce.Result, error) {
	opts = opts.withDefaults()
	conf := map[string]string{
		confSocialCell:   strconv.FormatFloat(opts.CellMeters, 'f', -1, 64),
		confSocialWindow: strconv.FormatInt(opts.WindowSeconds, 10),
	}
	stage1 := workDir + "/colocated-pairs"
	stage2 := workDir + "/pair-counts"
	results, err := e.RunPipeline(
		&mapreduce.Job{
			Name:        "social-colocate",
			InputPaths:  inputPaths,
			OutputPath:  stage1,
			NewMapper:   func() mapreduce.Mapper { return &bucketMapper{} },
			NewReducer:  func() mapreduce.Reducer { return &pairReducer{} },
			NumReducers: e.Cluster().TotalSlots(),
			Conf:        conf,
		},
		&mapreduce.Job{
			Name:        "social-count",
			InputPaths:  []string{stage1},
			OutputPath:  stage2,
			NewMapper:   func() mapreduce.Mapper { return pairIdentityMapper{} },
			NewReducer:  func() mapreduce.Reducer { return countDistinctReducer{} },
			NumReducers: e.Cluster().TotalSlots(),
			Conf:        conf,
		},
	)
	if err != nil {
		return nil, results, err
	}
	kvs, err := e.ReadOutput(stage2)
	if err != nil {
		return nil, results, err
	}
	var out []SocialLink
	for _, kv := range kvs {
		a, b, ok := strings.Cut(kv.Key, "|")
		if !ok {
			return nil, results, fmt.Errorf("privacy: bad pair key %q", kv.Key)
		}
		n, err := strconv.Atoi(kv.Value)
		if err != nil {
			return nil, results, fmt.Errorf("privacy: bad pair count %q", kv.Value)
		}
		if n >= opts.MinSharedWindows {
			out = append(out, SocialLink{UserA: a, UserB: b, SharedWindows: n})
		}
	}
	sortLinks(out)
	return out, results, nil
}

// bucketMapper emits (cell@window, user) for every trace.
type bucketMapper struct {
	mapreduce.MapperBase
	opts SocialOptions
}

func (m *bucketMapper) Setup(ctx *mapreduce.TaskContext) error {
	cell, err := strconv.ParseFloat(ctx.ConfDefault(confSocialCell, "50"), 64)
	if err != nil || cell <= 0 {
		return fmt.Errorf("bucketMapper: bad cell: %v", err)
	}
	window, err := strconv.ParseInt(ctx.ConfDefault(confSocialWindow, "600"), 10, 64)
	if err != nil || window <= 0 {
		return fmt.Errorf("bucketMapper: bad window: %v", err)
	}
	m.opts = SocialOptions{CellMeters: cell, WindowSeconds: window}.withDefaults()
	return nil
}

func (m *bucketMapper) Map(_ *mapreduce.TaskContext, _, value string, emit mapreduce.Emit) error {
	t, err := geolife.ParseRecordValue(value)
	if err != nil {
		return err
	}
	emit(colocationKey(t.Point, t.Time.Unix(), m.opts), t.User)
	return nil
}

// pairReducer receives all users observed in one bucket and emits one
// (userA|userB, bucket) record per distinct co-located pair.
type pairReducer struct{ mapreduce.ReducerBase }

func (pairReducer) Reduce(_ *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	set := make(map[string]bool, len(values))
	for _, u := range values {
		set[u] = true
	}
	if len(set) < 2 {
		return nil
	}
	users := make([]string, 0, len(set))
	for u := range set {
		users = append(users, u)
	}
	sort.Strings(users)
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			emit(users[i]+"|"+users[j], key)
		}
	}
	return nil
}

// pairIdentityMapper forwards stage-1 part-file lines ("pair TAB
// bucket") unchanged.
type pairIdentityMapper struct{ mapreduce.MapperBase }

func (pairIdentityMapper) Map(_ *mapreduce.TaskContext, _, value string, emit mapreduce.Emit) error {
	pair, bucket, ok := strings.Cut(value, "\t")
	if !ok {
		return fmt.Errorf("pairIdentityMapper: bad record %q", value)
	}
	emit(pair, bucket)
	return nil
}

// countDistinctReducer counts distinct values (buckets) per pair.
type countDistinctReducer struct{ mapreduce.ReducerBase }

func (countDistinctReducer) Reduce(_ *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[v] = true
	}
	emit(key, strconv.Itoa(len(set)))
	return nil
}

// --- Home/work quasi-identifier attack (Golle & Partridge, cited in
// §II: "a combination of locations can play the role of a
// quasi-identifier if they characterize almost uniquely an individual
// in the same way as the combination of his first and last names"). ---

// HomeWorkPair is a user's home/work quasi-identifier.
type HomeWorkPair struct {
	User string
	Home geo.Point
	Work geo.Point
}

// HomeWorkPairs extracts the quasi-identifier of every user from
// labeled POIs (users lacking a home or work label are skipped).
func HomeWorkPairs(pois []POI) []HomeWorkPair {
	byUser := make(map[string]*HomeWorkPair)
	order := []string{}
	for _, p := range pois {
		hw, ok := byUser[p.User]
		if !ok {
			hw = &HomeWorkPair{User: p.User}
			byUser[p.User] = hw
			order = append(order, p.User)
		}
		switch p.Label {
		case LabelHome:
			hw.Home = p.Center
		case LabelWork:
			hw.Work = p.Center
		}
	}
	sort.Strings(order)
	var out []HomeWorkPair
	for _, u := range order {
		hw := byUser[u]
		if hw.Home != (geo.Point{}) && hw.Work != (geo.Point{}) {
			out = append(out, *hw)
		}
	}
	return out
}

// LinkByHomeWork matches each anonymous home/work pair to the known
// pair with the smallest combined distance, provided both endpoints
// are within matchRadius. truth maps pseudonym → true user for
// scoring. This is the linking attack of §II in its simplest form:
// the home/work pair alone de-anonymizes most individuals.
func LinkByHomeWork(known, anonymous []HomeWorkPair, matchRadius float64, truth map[string]string) *LinkingResult {
	res := &LinkingResult{Matches: make(map[string]string)}
	for _, anon := range anonymous {
		bestUser, bestDist := "", -1.0
		for _, k := range known {
			dh := geo.Haversine(anon.Home, k.Home)
			dw := geo.Haversine(anon.Work, k.Work)
			if dh > matchRadius || dw > matchRadius {
				continue
			}
			if d := dh + dw; bestDist < 0 || d < bestDist {
				bestDist, bestUser = d, k.User
			}
		}
		res.Matches[anon.User] = bestUser
		res.Total++
		if want, ok := truth[anon.User]; ok && want != "" && want == bestUser {
			res.Correct++
		}
	}
	return res
}
