// Package privacy implements the inference-attack and sanitization
// side of GEPETO around the clustering substrate: extraction and
// semantic labeling of points of interest (the attack the paper's
// clustering algorithms primarily serve, §VIII), Mobility Markov Chain
// models with prediction and de-anonymization attacks (the paper's
// announced MMC extension), geo-sanitization mechanisms (Gaussian
// masking, spatial cloaking, aggregation and mix zones), and
// privacy/utility metrics to evaluate the trade-off between the two —
// GEPETO's stated purpose.
package privacy

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/trace"
)

// POILabel is the semantic category inferred for a POI.
type POILabel string

// Labels assigned by the POI attack. Revealing them "is likely to
// cause a privacy breach" (§II): home and work locations are the
// canonical quasi-identifier pair.
const (
	LabelHome    POILabel = "home"
	LabelWork    POILabel = "work"
	LabelLeisure POILabel = "leisure"
)

// POI is a point of interest extracted from a user's mobility traces.
type POI struct {
	// User is the individual the POI characterises.
	User string
	// Center is the POI's location (cluster centroid).
	Center geo.Point
	// Visits is the number of traces supporting the POI.
	Visits int
	// NightVisits (18:00-06:00) and WorkHourVisits (weekday
	// 09:00-17:00) split Visits by time of day, the evidence behind
	// the label.
	NightVisits, WorkHourVisits int
	// Label is the inferred semantic category.
	Label POILabel
}

// ExtractPOIs turns a DJ-Cluster result into labeled POIs per user —
// the inference attack the paper's clustering algorithms serve
// ("the clustering algorithms that we have implemented can be used
// primarily to extract the POIs of an individual", §VIII). Cluster
// visit times drive the labeling: the cluster with the largest share
// of night-time traces becomes home, the one with the largest share of
// weekday working-hour traces becomes work, the rest are leisure.
// times maps TraceID to the trace timestamp (from the clustered
// dataset).
func ExtractPOIs(res *gepeto.DJClusterResult, times map[string]time.Time) ([]POI, error) {
	byUser := make(map[string][]POI)
	for _, c := range res.Clusters {
		if len(c.Members) == 0 {
			continue
		}
		p := POI{User: c.User, Center: c.Centroid, Visits: len(c.Members), Label: LabelLeisure}
		for _, m := range c.Members {
			ts, ok := times[m]
			if !ok {
				return nil, fmt.Errorf("privacy: no timestamp for trace %s", m)
			}
			h := ts.Hour()
			if h >= 18 || h < 6 {
				p.NightVisits++
			}
			wd := ts.Weekday()
			if h >= 9 && h < 17 && wd != time.Saturday && wd != time.Sunday {
				p.WorkHourVisits++
			}
		}
		byUser[p.User] = append(byUser[p.User], p)
	}

	var out []POI
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		pois := byUser[u]
		// Home: most night visits; Work: most working-hour visits
		// among the rest.
		sort.SliceStable(pois, func(i, j int) bool { return pois[i].NightVisits > pois[j].NightVisits })
		if len(pois) > 0 && pois[0].NightVisits > 0 {
			pois[0].Label = LabelHome
		}
		bestWork, bestScore := -1, 0
		for i := range pois {
			if pois[i].Label == LabelHome {
				continue
			}
			if pois[i].WorkHourVisits > bestScore {
				bestWork, bestScore = i, pois[i].WorkHourVisits
			}
		}
		if bestWork >= 0 {
			pois[bestWork].Label = LabelWork
		}
		out = append(out, pois...)
	}
	return out, nil
}

// TraceTimes builds the TraceID → timestamp map ExtractPOIs needs from
// the dataset that was clustered.
func TraceTimes(ds *trace.Dataset) map[string]time.Time {
	out := make(map[string]time.Time, ds.NumTraces())
	for _, tr := range ds.Trails {
		for _, t := range tr.Traces {
			out[gepeto.TraceID(t)] = t.Time
		}
	}
	return out
}

// POIAttackReport scores an extracted-POI set against ground truth.
type POIAttackReport struct {
	// Users is the number of users attacked.
	Users int
	// HomeRecovered and WorkRecovered count users whose true home /
	// work was identified (a labeled POI within MatchRadius of it).
	HomeRecovered, WorkRecovered int
	// POIPrecision is the fraction of extracted POIs lying within
	// MatchRadius of some true POI.
	POIPrecision float64
	// POIRecall is the fraction of true POIs discovered (any label).
	POIRecall float64
	// MeanHomeErrorMeters is the mean distance from each recovered
	// home POI to the true home.
	MeanHomeErrorMeters float64
	// MatchRadius is the distance threshold used (meters).
	MatchRadius float64
}

// EvaluatePOIAttack compares extracted POIs with the generator's
// ground truth — the privacy measurement GEPETO exists to make.
func EvaluatePOIAttack(pois []POI, truth *geolife.GroundTruth, matchRadius float64) POIAttackReport {
	rep := POIAttackReport{MatchRadius: matchRadius}
	byUser := make(map[string][]POI)
	for _, p := range pois {
		byUser[p.User] = append(byUser[p.User], p)
	}
	var homeErrSum float64
	truePOIs, foundPOIs := 0, 0
	goodPOIs, totalPOIs := 0, 0
	for user, ups := range byUser {
		rep.Users++
		trueHome, okH := truth.Homes[user]
		trueWork, okW := truth.Works[user]
		if !okH || !okW {
			continue
		}
		for _, p := range ups {
			totalPOIs++
			near := false
			for _, tp := range truth.POIs(user) {
				if geo.Haversine(p.Center, tp) <= matchRadius {
					near = true
					break
				}
			}
			if near {
				goodPOIs++
			}
			if p.Label == LabelHome && geo.Haversine(p.Center, trueHome) <= matchRadius {
				rep.HomeRecovered++
				homeErrSum += geo.Haversine(p.Center, trueHome)
			}
			if p.Label == LabelWork && geo.Haversine(p.Center, trueWork) <= matchRadius {
				rep.WorkRecovered++
			}
		}
		for _, tp := range truth.POIs(user) {
			truePOIs++
			for _, p := range ups {
				if geo.Haversine(p.Center, tp) <= matchRadius {
					foundPOIs++
					break
				}
			}
		}
	}
	if totalPOIs > 0 {
		rep.POIPrecision = float64(goodPOIs) / float64(totalPOIs)
	}
	if truePOIs > 0 {
		rep.POIRecall = float64(foundPOIs) / float64(truePOIs)
	}
	if rep.HomeRecovered > 0 {
		rep.MeanHomeErrorMeters = homeErrSum / float64(rep.HomeRecovered)
	}
	return rep
}
